(** Keyed scratch-buffer arena.

    Recycles the flow's big working arrays across iterations so
    steady-state GP rounds, Netbox rescans, RUDY evaluations and
    legalizer runs do no major-heap allocation.  The contract is
    deliberately the same as [Array.make]: a buffer returned by
    {!floats} / {!ints} is always zero-filled, recycled or not, so
    arena-on and arena-off runs are bit-identical.

    An arena is single-domain state: concurrent workers must each own
    their own arena (the serve daemon creates one per worker context). *)

type t

val create : unit -> t

val floats : t -> string -> int -> float array
(** [floats t key n] returns a zero-filled float array of length [n],
    recycling the buffer previously returned for [key] when its length
    matches.  The buffer is invalidated by the next [floats t key n']
    with [n' <> n]; two overlapping live uses of one key are a bug. *)

val floats_raw : t -> string -> int -> float array
(** As {!floats} but the contents are unspecified — for callers that
    fully overwrite the buffer (notably when the previous buffer for the
    key may alias the caller's own input, where zero-filling first would
    destroy it). *)

val ints : t -> string -> int -> int array
(** [ints t key n] — as {!floats}, for int arrays (zero-filled). *)

val cached : t -> string -> (unit -> 'a) -> 'a
(** [cached t key create] memoizes an arbitrary scratch structure under
    [key] ([create] runs on first use only).  The caller is responsible
    for resetting the structure before each use, and every key must be
    used at a single type. *)

val clear : t -> unit
(** Drop every buffer (subsequent requests reallocate). *)

val hits : t -> int
val misses : t -> int

val words : t -> int
(** Total float/int words currently resident in the arena. *)
