(** Process memory introspection for the per-stage memory ledger.

    All figures are high-water marks (monotone over the process
    lifetime): sampling them at every stage boundary attributes a spike
    to the first stage whose sample shows it.  Functions return [0]
    when the figure is unavailable on this platform. *)

val vm_hwm_kb : unit -> int
(** Peak resident set size (VmHWM from [/proc/self/status]), in kB.
    Counts everything the OS ever kept resident for this process: OCaml
    heaps, Bigarray payloads, stacks, mapped code. *)

val vm_rss_kb : unit -> int
(** Current resident set size (VmRSS), in kB. *)

val top_heap_kb : unit -> int
(** High-water mark of the OCaml major heap ([Gc.quick_stat]'s
    [top_heap_words]), in kB.  Excludes Bigarray payloads, which are
    malloc'd outside the major heap — the gap between {!vm_hwm_kb} and
    this figure is dominated by exactly those plus the minor heaps. *)
