(* Compact scalar arrays over Bigarray for the flat netlist core.

   OCaml [int array]s cost 8 bytes per element and [Types.direction
   array]s a full word per tag; the flat core's CSR connectivity and
   per-pin metadata dominate the netlist footprint at the million-cell
   scale.  These wrappers store the same values in 4 bytes (int32), 1
   byte (int8) or 8 bytes (unboxed float64), outside the OCaml heap —
   the GC never scans them.

   Accessors come in two flavours: [get]/[set] are bounds-checked and
   are what non-kernel code should use; [uget]/[uset] compile to a bare
   load/store (plus sign-extension) and are for the hot kernels that
   iterate CSR ranges whose bounds are established by construction.
   All of them exchange plain [int]/[float] values, so a kernel ported
   from a boxed [int array] reads identically and — the values being
   exact — produces bit-identical floats.

   [I32.guard] is the build-time overflow gate: callers that are about
   to store counts (CSR offsets, entity ids) must pass the largest one
   through it and get a clean [Failure] past 2^31-1 instead of a silent
   wrap. *)

module BA = Bigarray
module A1 = Bigarray.Array1

module I32 = struct
  type t = (int32, BA.int32_elt, BA.c_layout) A1.t

  let max_value = Int32.to_int Int32.max_int

  let guard ~what n =
    if n > max_value || n < Int32.to_int Int32.min_int then
      failwith
        (Printf.sprintf
           "%s: %d exceeds the int32 compact-array range (max %d); rebuild with a wider \
            index type"
           what n max_value)

  let make n v : t =
    let a = A1.create BA.int32 BA.c_layout n in
    A1.fill a (Int32.of_int v);
    a

  let length : t -> int = A1.dim
  let get (a : t) i = Int32.to_int (A1.get a i)
  let set (a : t) i v = A1.set a i (Int32.of_int v)
  let uget (a : t) i = Int32.to_int (A1.unsafe_get a i)
  let uset (a : t) i v = A1.unsafe_set a i (Int32.of_int v)

  let of_array ~what (xs : int array) : t =
    let n = Array.length xs in
    let a = A1.create BA.int32 BA.c_layout n in
    for i = 0 to n - 1 do
      guard ~what xs.(i);
      A1.unsafe_set a i (Int32.of_int xs.(i))
    done;
    a

  let to_array (a : t) = Array.init (A1.dim a) (fun i -> uget a i)

  let blit_array (xs : int array) ~src_off (a : t) ~dst_off ~len =
    for i = 0 to len - 1 do
      A1.set a (dst_off + i) (Int32.of_int xs.(src_off + i))
    done

  let sub_array (a : t) ~off ~len = Array.init len (fun i -> get a (off + i))
end

module I8 = struct
  type t = (int, BA.int8_unsigned_elt, BA.c_layout) A1.t

  let make n v : t =
    let a = A1.create BA.int8_unsigned BA.c_layout n in
    A1.fill a v;
    a

  let length : t -> int = A1.dim
  let get (a : t) i : int = A1.get a i
  let set (a : t) i (v : int) = A1.set a i v
  let uget (a : t) i : int = A1.unsafe_get a i
  let uset (a : t) i (v : int) = A1.unsafe_set a i v
end

module F64 = struct
  type t = (float, BA.float64_elt, BA.c_layout) A1.t

  let make n v : t =
    let a = A1.create BA.float64 BA.c_layout n in
    A1.fill a v;
    a

  let length : t -> int = A1.dim
  let get (a : t) i : float = A1.get a i
  let set (a : t) i (v : float) = A1.set a i v
  let uget (a : t) i : float = A1.unsafe_get a i
  let uset (a : t) i (v : float) = A1.unsafe_set a i v
  let of_array (xs : float array) : t = A1.of_array BA.float64 BA.c_layout xs
  let to_array (a : t) = Array.init (A1.dim a) (fun i -> uget a i)
end
