(* A keyed scratch-buffer arena: recycles the big per-round / per-rescan
   working arrays of the flow (GP gradient banks, NLCG vectors, RUDY
   grids, legalizer stores) so steady-state iterations stop allocating on
   the major heap.  [floats]/[ints] are drop-in replacements for
   [Array.make n 0.0] / [Array.make n 0]: the returned buffer is always
   zero-filled, whether it was recycled or fresh, so callers inherit no
   stale state and bit-determinism is untouched.

   An arena is confined to a single domain: give every worker its own
   (see lib/serve) — the buffers it hands out are unsynchronized.

   A buffer stays valid until the same key is requested again with a
   different length (it is then dropped and reallocated), so two live
   uses of one key must not overlap. *)

type entry =
  | Floats of float array
  | Ints of int array
  | Other of Obj.t

type t = {
  tbl : (string, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () = { tbl = Hashtbl.create 64; hits = 0; misses = 0 }

let floats t key n =
  match Hashtbl.find_opt t.tbl key with
  | Some (Floats a) when Array.length a = n ->
    t.hits <- t.hits + 1;
    Array.fill a 0 n 0.0;
    a
  | _ ->
    t.misses <- t.misses + 1;
    let a = Array.make n 0.0 in
    Hashtbl.replace t.tbl key (Floats a);
    a

(* As [floats] but with unspecified contents — for callers that fully
   overwrite the buffer before reading it (and in particular for buffers
   the caller may be handed back as their own input: zero-filling first
   would destroy the aliased source). *)
let floats_raw t key n =
  match Hashtbl.find_opt t.tbl key with
  | Some (Floats a) when Array.length a = n ->
    t.hits <- t.hits + 1;
    a
  | _ ->
    t.misses <- t.misses + 1;
    let a = Array.make n 0.0 in
    Hashtbl.replace t.tbl key (Floats a);
    a

let ints t key n =
  match Hashtbl.find_opt t.tbl key with
  | Some (Ints a) when Array.length a = n ->
    t.hits <- t.hits + 1;
    Array.fill a 0 n 0;
    a
  | _ ->
    t.misses <- t.misses + 1;
    let a = Array.make n 0 in
    Hashtbl.replace t.tbl key (Ints a);
    a

(* Memoize an arbitrary mutable scratch structure under [key].  The
   caller owns resetting it; each key must always be used at one type
   (the single [Obj] coercion below is safe exactly under that rule). *)
let cached t key create =
  match Hashtbl.find_opt t.tbl key with
  | Some (Other o) ->
    t.hits <- t.hits + 1;
    Obj.obj o
  | _ ->
    t.misses <- t.misses + 1;
    let v = create () in
    Hashtbl.replace t.tbl key (Other (Obj.repr v));
    v

let clear t =
  Hashtbl.reset t.tbl;
  t.hits <- 0;
  t.misses <- 0

let hits t = t.hits
let misses t = t.misses

(* resident float/int words, a rough footprint figure for reports *)
let words t =
  Hashtbl.fold
    (fun _ e acc ->
      match e with
      | Floats a -> acc + Array.length a
      | Ints a -> acc + Array.length a
      | Other _ -> acc)
    t.tbl 0
