(* A small string-interning pool.

   The XL presets and real Bookshelf benches repeat a handful of master
   names across a million cells; readers that allocate a fresh string
   per line (Scanf does) then hold a million identical 16-byte blocks.
   Threading every such string through [intern] collapses them to one
   shared block per distinct content.

   A pool is an ordinary single-domain value — create one per parse or
   per derivation, drop it when done (interned strings stay alive
   through their users; the pool itself holds the only index). *)

type t = { tbl : (string, string) Hashtbl.t; mutable hits : int }

let create ?(size = 64) () = { tbl = Hashtbl.create size; hits = 0 }

let intern t s =
  match Hashtbl.find_opt t.tbl s with
  | Some canonical ->
    t.hits <- t.hits + 1;
    canonical
  | None ->
    Hashtbl.add t.tbl s s;
    s

let distinct t = Hashtbl.length t.tbl
let hits t = t.hits
