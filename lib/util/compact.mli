(** Compact scalar arrays (int32 / int8 / unboxed float64) over
    [Bigarray.Array1], for the flat netlist core's CSR connectivity and
    per-pin metadata.

    Payloads live outside the OCaml heap: the GC never scans them and
    they cost exactly 4, 1 or 8 bytes per element.  [get]/[set] are
    bounds-checked; [uget]/[uset] are the unchecked variants for hot
    kernels whose index ranges are correct by construction (CSR walks).
    All accessors exchange plain [int]/[float] values. *)

module I32 : sig
  type t = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

  val max_value : int
  (** Largest storable value, [2{^31} - 1]. *)

  val guard : what:string -> int -> unit
  (** [guard ~what n] raises [Failure] with a message naming [what] and
      [n] when [n] does not fit an int32 — the fail-fast overflow gate
      for CSR offset construction. *)

  val make : int -> int -> t
  (** [make n v]: length-[n] array filled with [v]. *)

  val length : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val uget : t -> int -> int
  val uset : t -> int -> int -> unit

  val of_array : what:string -> int array -> t
  (** Copies, passing every element through {!guard}. *)

  val to_array : t -> int array
  val blit_array : int array -> src_off:int -> t -> dst_off:int -> len:int -> unit
  val sub_array : t -> off:int -> len:int -> int array
end

module I8 : sig
  type t = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

  val make : int -> int -> t
  val length : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val uget : t -> int -> int
  val uset : t -> int -> int -> unit
end

module F64 : sig
  type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

  val make : int -> float -> t
  val length : t -> int
  val get : t -> int -> float
  val set : t -> int -> float -> unit
  val uget : t -> int -> float
  val uset : t -> int -> float -> unit
  val of_array : float array -> t
  val to_array : t -> float array
end
