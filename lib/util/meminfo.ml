(* Process-level memory introspection for the per-stage memory ledger.

   Two complementary figures:

   - [vm_hwm_kb]: the kernel's high-water mark of resident set size
     (VmHWM in /proc/self/status).  Monotone over the process lifetime,
     so sampling it at a stage boundary attributes the first spike to
     the stage that introduced it: the stage whose sample first shows a
     jump is the one that touched that many pages.

   - [top_heap_kb]: the OCaml major heap's high-water mark from
     [Gc.quick_stat].  Also monotone.  The gap between the two is
     memory the runtime holds outside the major heap (minor heaps,
     Bigarray payloads, stacks, code) plus malloc fragmentation.

   Both return 0 when the figure is unavailable (non-Linux /proc), so
   ledger consumers can treat 0 as "not sampled". *)

let status_field field =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    let prefix = field ^ ":" in
    let plen = String.length prefix in
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> 0
      | line ->
        if String.length line > plen && String.sub line 0 plen = prefix then
          (* "VmHWM:     123456 kB" — first numeric token after the key *)
          let rest = String.sub line plen (String.length line - plen) in
          let rest = String.map (fun c -> if c = '\t' then ' ' else c) rest in
          let tokens = String.split_on_char ' ' rest in
          (match List.find_opt (fun t -> t <> "" && int_of_string_opt t <> None) tokens with
          | Some t -> int_of_string t
          | None -> 0)
        else scan ()
    in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

let vm_hwm_kb () = status_field "VmHWM"
let vm_rss_kb () = status_field "VmRSS"

let top_heap_kb () =
  (Gc.quick_stat ()).Gc.top_heap_words * (Sys.word_size / 8) / 1024
