(** String interning for repeated names (cell masters, library tags).

    [intern] returns a canonical shared copy of the argument: equal
    strings interned through one pool are physically equal afterwards,
    so a million repetitions of ["ram1"] cost one heap block plus the
    pointer array that holds them. *)

type t

val create : ?size:int -> unit -> t
val intern : t -> string -> string

val distinct : t -> int
(** Number of distinct strings seen. *)

val hits : t -> int
(** Number of [intern] calls that found an existing entry. *)
