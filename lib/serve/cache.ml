(* Extraction cache: structural netlist hash -> slicer result, LRU-bounded. *)

module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Slicer = Dpp_extract.Slicer
module Exmetrics = Dpp_extract.Exmetrics
module Flow = Dpp_core.Flow
module Ctx = Dpp_core.Ctx
module Config = Dpp_core.Config

(* ----- structural hash: 64-bit FNV-1a over the incidence structure ----- *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let mix h byte = Int64.mul (Int64.logxor h (Int64.of_int (byte land 0xff))) fnv_prime

let mix_int h i =
  let h = ref h in
  for shift = 0 to 7 do
    h := mix !h ((i lsr (shift * 8)) land 0xff)
  done;
  !h

let mix_float h f = mix_int h (Int64.to_int (Int64.bits_of_float f))

let mix_string h s =
  let h = ref (mix_int h (String.length s)) in
  String.iter (fun c -> h := mix !h (Char.code c)) s;
  !h

let hash_design (d : Design.t) =
  let h = ref fnv_offset in
  h := mix_float !h d.Design.die.Dpp_geom.Rect.xl;
  h := mix_float !h d.Design.die.Dpp_geom.Rect.yl;
  h := mix_float !h d.Design.die.Dpp_geom.Rect.xh;
  h := mix_float !h d.Design.die.Dpp_geom.Rect.yh;
  h := mix_float !h d.Design.row_height;
  h := mix_float !h d.Design.site_width;
  Array.iter
    (fun (c : Types.cell) ->
      h := mix_string !h c.Types.c_master;
      h := mix_float !h c.Types.c_width;
      h := mix_float !h c.Types.c_height;
      h := mix_int !h (match c.Types.c_kind with Types.Movable -> 0 | Types.Fixed -> 1 | Types.Pad -> 2))
    d.Design.cells;
  Array.iter
    (fun (n : Types.net) ->
      h := mix_float !h n.Types.n_weight;
      h := mix_int !h (Array.length n.Types.n_pins);
      Array.iter
        (fun p ->
          let pin = d.Design.pins.(p) in
          h := mix_int !h pin.Types.p_cell;
          h :=
            mix_int !h
              (match pin.Types.p_dir with Types.Input -> 0 | Types.Output -> 1 | Types.Inout -> 2);
          h := mix_float !h pin.Types.p_dx;
          h := mix_float !h pin.Types.p_dy)
        n.Types.n_pins)
    d.Design.nets;
  !h

let key_to_string k = Printf.sprintf "%016Lx" k

(* ----- bounded LRU over the hash key ----- *)

type entry = { slicer : Slicer.result; metrics : Exmetrics.t }
type stats = { hits : int; misses : int; evictions : int; size : int }

type t = {
  capacity : int;
  table : (int64, entry) Hashtbl.t;
  mutable order : int64 list;  (* most-recent first; short: capacity-bounded *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  lock : Mutex.t;
}

let create ~capacity =
  {
    capacity = max 1 capacity;
    table = Hashtbl.create 64;
    order = [];
    hits = 0;
    misses = 0;
    evictions = 0;
    lock = Mutex.create ();
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let touch t k = t.order <- k :: List.filter (fun k' -> not (Int64.equal k k')) t.order

let find t k =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some e ->
        t.hits <- t.hits + 1;
        touch t k;
        Some e
      | None ->
        t.misses <- t.misses + 1;
        None)

let add t k e =
  with_lock t (fun () ->
      if not (Hashtbl.mem t.table k) then begin
        Hashtbl.replace t.table k e;
        touch t k;
        if Hashtbl.length t.table > t.capacity then begin
          match List.rev t.order with
          | oldest :: _ ->
            Hashtbl.remove t.table oldest;
            t.order <- List.filter (fun k' -> not (Int64.equal oldest k')) t.order;
            t.evictions <- t.evictions + 1
          | [] -> ()
        end
      end
      else touch t k)

let stats t =
  with_lock t (fun () ->
      { hits = t.hits; misses = t.misses; evictions = t.evictions; size = Hashtbl.length t.table })

(* ----- flow integration ----- *)

let extract_stage t =
  {
    Flow.extract_stage with
    run =
      (fun (ctx : Ctx.t) ->
        match ctx.Ctx.config.Config.group_source with
        | Config.Ground_truth -> Flow.extract_stage.Flow.run ctx
        | Config.Extracted -> (
          let k = hash_design ctx.Ctx.design in
          match find t k with
          | Some e ->
            ctx.Ctx.extraction <- Some (e.slicer, e.metrics);
            ctx.Ctx.groups_used <- e.slicer.Slicer.groups;
            ctx
          | None ->
            let ctx = Flow.extract_stage.Flow.run ctx in
            (match ctx.Ctx.extraction with
            | Some (slicer, metrics) -> add t k { slicer; metrics }
            | None -> ());
            ctx));
  }
