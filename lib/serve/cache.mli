(** Cross-job extraction cache.

    Datapath extraction is a pure function of the netlist {e structure}
    (WL colour refinement never looks at coordinates), so its result can
    be reused across submissions of the same netlist — the common case
    for a serving workload, where clients iterate on placement settings
    or submit ECO deltas against a base they placed moments ago.

    The key is a 64-bit FNV-1a hash over the full incidence structure:
    die and row geometry, per-cell (master, width, height, kind) in id
    order, and per-net (weight, pin list with owning cell, direction and
    offsets).  Cell {e positions} are deliberately excluded.  Two designs
    with equal keys have identical cell ids, so cached groups (id sets)
    apply directly.  Entries are LRU-evicted beyond [capacity]. *)

type t

val create : capacity:int -> t
(** Thread-safe (shared by all scheduler workers); [capacity >= 1]. *)

val hash_design : Dpp_netlist.Design.t -> int64
(** The structural cache key. *)

val key_to_string : int64 -> string
(** 16-hex-digit rendering, for logs and reports. *)

type entry = { slicer : Dpp_extract.Slicer.result; metrics : Dpp_extract.Exmetrics.t }
type stats = { hits : int; misses : int; evictions : int; size : int }

val find : t -> int64 -> entry option
(** Lookup, counting a hit/miss and refreshing recency. *)

val add : t -> int64 -> entry -> unit
val stats : t -> stats

val extract_stage : t -> Dpp_core.Flow.stage
(** A drop-in replacement for {!Dpp_core.Flow.extract_stage} that
    consults the cache first and populates it on a miss.  Ground-truth
    group sourcing bypasses the cache (nothing to compute). *)
