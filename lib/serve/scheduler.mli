(** A bounded job queue drained by a fixed pool of worker domains.

    The serve layer's concurrency backbone: client handler threads
    [submit] job closures; worker {e domains} (real parallelism, unlike
    threads sharing one runtime lock) pop and run them.  The queue bound
    is the server's backpressure — a full queue answers [`Busy] instead
    of buffering unboundedly, and the client sees a [Rejected] response
    it can retry.

    Each job typically runs a full placement flow, whose kernels fan out
    over their own {!Dpp_par.Pool}; the scheduler's [workers] therefore
    sets how many {e jobs} progress concurrently, and the per-job
    [jobs] config how many domains each one uses — the sharding knob
    pair the SRV bench sweeps. *)

type t

val create : workers:int -> queue:int -> t
(** Spawn [max 1 workers] worker domains over a queue bounded at
    [max 1 queue] waiting jobs. *)

val submit : t -> (id:int -> unit) -> [ `Queued of int | `Busy ]
(** Enqueue a job closure; it runs on some worker with its assigned id.
    [`Busy] when the queue is full or the scheduler is stopping.  A
    raising job is contained (the worker survives); jobs own their own
    error reporting. *)

val pending : t -> int
(** Queued plus running jobs, a snapshot. *)

val drain : t -> unit
(** Block until no job is queued or running. *)

val shutdown : t -> unit
(** Stop accepting, let the workers finish the queue, join every worker
    domain.  After it returns, {!alive_workers} is 0 — the no-orphaned-
    domains assertion the fault-injection tests make. *)

val alive_workers : t -> int
(** Worker domains not yet joined. *)
