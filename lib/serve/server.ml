(* The dpp_serve daemon core: connection handling, job execution,
   checkpoint spooling and resume. *)

module P = Protocol
module Json = Dpp_report.Json
module Trace = Dpp_report.Trace
module Design = Dpp_netlist.Design
module Bookshelf = Dpp_netlist.Bookshelf
module Compose = Dpp_gen.Compose
module Presets = Dpp_gen.Presets
module Xl = Dpp_gen.Xl
module Config = Dpp_core.Config
module Flow = Dpp_core.Flow
module Eco = Dpp_core.Eco
module Snapshot = Dpp_core.Checkpoint.Snapshot

let src = Logs.Src.create "dpp.serve" ~doc:"placement service"

module Log = (val Logs.src_log src : Logs.LOG)

exception Interrupted of string
(* raised inside a job at a stage boundary when the server is stopping;
   the stage name is the last one checkpointed *)

type cfg = {
  workers : int;
  queue : int;
  cache_capacity : int;
  base_capacity : int;
  spool : string option;
  max_frame : int;
}

let default_cfg =
  {
    workers = 2;
    queue = 16;
    cache_capacity = 16;
    base_capacity = 16;
    spool = None;
    max_frame = P.default_max_frame;
  }

type t = {
  cfg : cfg;
  sched : Scheduler.t;
  cache : Cache.t;
  bases : (string, Design.t) Hashtbl.t;  (* spec key -> placed base design *)
  bases_lock : Mutex.t;
  abort_all : bool Atomic.t;  (* stop flag: jobs cut at the next boundary *)
  abort_after : string option Atomic.t;  (* fault-injection hook *)
  stop_requested : bool Atomic.t;
  completed : int Atomic.t;
  failed : int Atomic.t;
  mutable listener : Unix.file_descr option;
  listener_lock : Mutex.t;
}

let create ?(cfg = default_cfg) () =
  (match cfg.spool with
  | Some dir -> if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  | None -> ());
  {
    cfg;
    sched = Scheduler.create ~workers:cfg.workers ~queue:cfg.queue;
    cache = Cache.create ~capacity:cfg.cache_capacity;
    bases = Hashtbl.create 16;
    bases_lock = Mutex.create ();
    abort_all = Atomic.make false;
    abort_after = Atomic.make None;
    stop_requested = Atomic.make false;
    completed = Atomic.make 0;
    failed = Atomic.make 0;
    listener = None;
    listener_lock = Mutex.create ();
  }

let extraction_stats t = Cache.stats t.cache
let jobs_completed t = Atomic.get t.completed
let jobs_failed t = Atomic.get t.failed

(* ----- clients ----- *)

type client = { fd : Unix.file_descr; wlock : Mutex.t; mutable alive : bool }

(* A reply must never kill the job producing it: a client that vanished
   mid-stream (EPIPE/ECONNRESET) just stops receiving; the job runs on. *)
let reply (c : client) resp =
  Mutex.lock c.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.wlock)
    (fun () ->
      if c.alive then
        try P.send_response c.fd resp
        with Unix.Unix_error _ | Sys_error _ ->
          c.alive <- false;
          Log.info (fun m -> m "client went away mid-stream"))

let null_reply (_ : P.response) = ()

(* ----- design + config resolution ----- *)

let resolve_design = function
  | P.Preset { name; seed } -> (
    match Presets.by_name name with
    | Some spec -> Compose.build { spec with Compose.sp_seed = seed }
    | None -> (
      match Xl.by_name ~seed name with
      | Some d -> d
      | None -> failwith (Printf.sprintf "unknown preset %S" name)))
  | P.Bookshelf { basename } -> Bookshelf.read ~basename

let config_of_spec (s : P.job_spec) =
  let seed = match s.src with P.Preset { seed; _ } -> seed | P.Bookshelf _ -> Config.baseline.Config.seed in
  let c = { Config.baseline with Config.mode = s.mode; jobs = max 1 s.jobs; seed } in
  let c = match s.gp_rounds with Some r -> { c with Config.gp_rounds = r } | None -> c in
  let c = match s.gp_inner_iters with Some r -> { c with Config.gp_inner_iters = r } | None -> c in
  let c = match s.detail_passes with Some r -> { c with Config.detail_passes = r } | None -> c in
  c

let spec_key (s : P.job_spec) =
  (* the output path does not change what gets placed *)
  Json.encode (P.spec_to_json { s with P.out = None })

let remember_base t key design =
  Mutex.lock t.bases_lock;
  if Hashtbl.length t.bases >= t.cfg.base_capacity then Hashtbl.reset t.bases;
  Hashtbl.replace t.bases key design;
  Mutex.unlock t.bases_lock

let find_base t key =
  Mutex.lock t.bases_lock;
  let r = Hashtbl.find_opt t.bases key in
  Mutex.unlock t.bases_lock;
  r

(* ----- checkpoint spooling ----- *)

let resumable_stages = [ "legal"; "detail"; "flip" ]
let spool_path t id = Option.map (fun dir -> Filename.concat dir (Printf.sprintf "job_%d.json" id)) t.cfg.spool

(* The spool record streams: the spec object is tiny, but a snapshot
   carries the full per-cell placement, so it goes through
   [Snapshot.output] rather than a materialized Json tree.  The bytes
   are identical to the old tree-built record. *)
let write_spool ~path spec snapshot =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc "{\"spec\":";
  output_string oc (Json.encode (P.spec_to_json spec));
  (match snapshot with
  | Some s ->
    output_string oc ",\"snapshot\":";
    Snapshot.output oc s
  | None -> ());
  output_string oc "}";
  close_out oc;
  Sys.rename tmp path

(* Wrap a stage list so every resumable boundary checkpoints to the spool
   file and every boundary honours the abort flags. *)
let instrument t ~spec ~path stages =
  List.map
    (fun (s : Flow.stage) ->
      {
        s with
        Flow.run =
          (fun ctx ->
            let ctx = s.Flow.run ctx in
            (match path with
            | Some p when List.mem s.Flow.name resumable_stages ->
              write_spool ~path:p spec (Some (Snapshot.capture ~stage:s.Flow.name ctx))
            | _ -> ());
            if Atomic.get t.abort_all || Atomic.get t.abort_after = Some s.Flow.name then
              raise (Interrupted s.Flow.name);
            ctx);
      })
    stages

let flow_stages t cfg =
  List.map
    (fun (s : Flow.stage) -> if s.Flow.name = "extract" then Cache.extract_stage t.cache else s)
    (Flow.stages cfg)

(* ----- job execution ----- *)

let finish_ok t ~out design =
  (match out with Some base -> Bookshelf.write design ~basename:base | None -> ());
  Atomic.incr t.completed

let run_submit t ~id ~(spec : P.job_spec) ~reply_fn ?resume_from () =
  let t0 = Unix.gettimeofday () in
  let observer stage = reply_fn (P.Event { job = id; stage }) in
  let path = spool_path t id in
  try
    let design = resolve_design spec.P.src in
    let cfg = config_of_spec spec in
    (match path with Some p -> write_spool ~path:p spec None | None -> ());
    let result =
      match resume_from with
      | Some snap when List.mem snap.Snapshot.stage resumable_stages ->
        (* restore the boundary state and run only the remaining suffix *)
        let stages =
          instrument t ~spec ~path (Flow.resume_stages ~stages:(flow_stages t cfg) ~after:snap.Snapshot.stage)
        in
        Flow.run_stages
          ~prepare:(fun ctx -> Snapshot.restore snap ctx)
          ~observer ~check:spec.P.check ~stages design cfg
      | _ ->
        (* no snapshot (or one from a non-resumable boundary): the flow is
           deterministic, a clean re-run reproduces the same bits *)
        let stages = instrument t ~spec ~path (flow_stages t cfg) in
        Flow.run_stages ~observer ~check:spec.P.check ~stages design cfg
    in
    remember_base t (spec_key spec) result.Flow.design;
    finish_ok t ~out:spec.P.out result.Flow.design;
    (match path with Some p -> (try Sys.remove p with Sys_error _ -> ()) | None -> ());
    reply_fn
      (P.Done { job = id; hpwl = result.Flow.hpwl_final; wall_s = Unix.gettimeofday () -. t0; eco = None })
  with
  | Interrupted stage ->
    (* spool file stays behind for the restarted server to resume *)
    Atomic.incr t.failed;
    reply_fn (P.Failed { job = id; reason = Printf.sprintf "interrupted after %s (checkpointed)" stage })
  | e ->
    Atomic.incr t.failed;
    (match path with Some p -> (try Sys.remove p with Sys_error _ -> ()) | None -> ());
    reply_fn (P.Failed { job = id; reason = Printexc.to_string e })

exception Verify_failed of string

(* The differential gate: every cell the plan froze must sit exactly
   where the base placement left it — bit-for-bit, orientation included. *)
let verify_clean_region ~(base : Design.t) (r : Eco.result) =
  let d = r.Eco.flow.Flow.design in
  Array.iter
    (fun i ->
      if i < Design.num_cells base then
        if
          d.Design.x.(i) <> base.Design.x.(i)
          || d.Design.y.(i) <> base.Design.y.(i)
          || not (Dpp_geom.Orient.equal d.Design.orient.(i) base.Design.orient.(i))
        then
          raise
            (Verify_failed
               (Printf.sprintf "clean cell %d moved: (%g,%g) -> (%g,%g)" i base.Design.x.(i)
                  base.Design.y.(i) d.Design.x.(i) d.Design.y.(i))))
    r.Eco.plan.Eco.frozen

let run_eco t ~id ~(base_spec : P.job_spec) ~edits ~threshold ~verify ~reply_fn =
  let t0 = Unix.gettimeofday () in
  let observer stage = reply_fn (P.Event { job = id; stage }) in
  try
    let cfg = config_of_spec base_spec in
    let key = spec_key base_spec in
    let base =
      match find_base t key with
      | Some d -> d
      | None ->
        (* cold base: place it now and remember it for the next delta *)
        let r =
          Flow.run_stages ~check:base_spec.P.check ~stages:(flow_stages t cfg)
            (resolve_design base_spec.P.src) cfg
        in
        remember_base t key r.Flow.design;
        r.Flow.design
    in
    let edits =
      match edits with
      | P.Edits e -> e
      | P.Random_edits { ops; seed } -> Eco.random_edits ~ops ~seed base
    in
    let r = Eco.run ~observer ~check:base_spec.P.check ?threshold ~base edits cfg in
    if verify && not r.Eco.fallback then verify_clean_region ~base r;
    finish_ok t ~out:base_spec.P.out r.Eco.flow.Flow.design;
    reply_fn
      (P.Done
         {
           job = id;
           hpwl = r.Eco.flow.Flow.hpwl_final;
           wall_s = Unix.gettimeofday () -. t0;
           eco =
             Some
               {
                 P.fallback = r.Eco.fallback;
                 dirty_fraction = r.Eco.plan.Eco.dirty_fraction;
               };
         })
  with e ->
    Atomic.incr t.failed;
    reply_fn (P.Failed { job = id; reason = Printexc.to_string e })

(* ----- connection handling ----- *)

let submit_request t (req : P.request) ~reply_fn =
  (* gate the job behind the Accepted reply so the client never sees an
     Event for a job id it has not been told about yet *)
  let gate = Semaphore.Binary.make false in
  let gated f ~id =
    Semaphore.Binary.acquire gate;
    f ~id
  in
  let submitted =
    match req with
    | P.Submit spec -> Scheduler.submit t.sched (gated (fun ~id -> run_submit t ~id ~spec ~reply_fn ()))
    | P.Eco_submit { base; edits; threshold; verify } ->
      Scheduler.submit t.sched
        (gated (fun ~id -> run_eco t ~id ~base_spec:base ~edits ~threshold ~verify ~reply_fn))
    | P.Ping | P.Shutdown -> invalid_arg "submit_request: not a job"
  in
  (match submitted with
  | `Queued id -> reply_fn (P.Accepted { job = id })
  | `Busy -> reply_fn (P.Rejected { reason = "queue full" }));
  Semaphore.Binary.release gate;
  submitted

let close_listener t =
  Mutex.lock t.listener_lock;
  (match t.listener with
  | Some fd ->
    t.listener <- None;
    (* shutdown before close: close alone does not wake a thread blocked
       inside accept(2) on this fd, so a stop request sent from a client
       handler would leave the accept loop parked forever *)
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  Mutex.unlock t.listener_lock

let request_stop t =
  Atomic.set t.stop_requested true;
  close_listener t

let handle_client t fd =
  let c = { fd; wlock = Mutex.create (); alive = true } in
  let reply_fn r = reply c r in
  let rec loop () =
    match P.read_frame ~max_len:t.cfg.max_frame fd with
    | None -> ()  (* clean EOF: client done *)
    | exception P.Protocol_error reason ->
      (* framing is broken, the stream cannot be resynchronized: report
         and drop the connection; in-flight jobs are unaffected *)
      reply c (P.Rejected { reason });
      Log.info (fun m -> m "dropping client: %s" reason)
    | Some payload -> (
      match P.request_of_json (Json.parse payload) with
      | exception (P.Protocol_error reason | Json.Parse_error reason) ->
        (* bad message in a well-formed frame: framing is intact, reject
           just this message and keep serving the connection *)
        reply c (P.Rejected { reason });
        loop ()
      | P.Ping ->
        reply c P.Pong;
        loop ()
      | P.Shutdown ->
        reply c P.Pong;
        request_stop t
      | req ->
        ignore (submit_request t req ~reply_fn : [ `Queued of int | `Busy ]);
        loop ())
  in
  loop ()

(* ----- spool resume ----- *)

let resume t =
  match t.cfg.spool with
  | None -> []
  | Some dir ->
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.sort compare
    in
    List.filter_map
      (fun f ->
        let path = Filename.concat dir f in
        match
          let json = In_channel.with_open_bin path In_channel.input_all in
          let o = Json.parse json in
          let spec =
            match Json.member "spec" o with
            | Some s -> P.spec_of_json s
            | None -> raise (Json.Parse_error "spool record: missing spec")
          in
          let snapshot = Option.map Snapshot.of_json (Json.member "snapshot" o) in
          spec, snapshot
        with
        | exception e ->
          Log.err (fun m -> m "unreadable spool file %s: %s" path (Printexc.to_string e));
          None
        | spec, snapshot -> (
          (* consume the file: the job gets a fresh id and respools itself
             if it is interrupted again *)
          (try Sys.remove path with Sys_error _ -> ());
          match
            Scheduler.submit t.sched (fun ~id ->
                run_submit t ~id ~spec ~reply_fn:null_reply ?resume_from:snapshot ())
          with
          | `Queued id ->
            Log.info (fun m ->
                m "resuming spooled job as #%d%s" id
                  (match snapshot with
                  | Some s -> Printf.sprintf " from stage %s" s.Snapshot.stage
                  | None -> " from scratch"));
            Some id
          | `Busy ->
            Log.err (fun m -> m "queue full, spooled job %s dropped" f);
            None))
      files

(* ----- fault-injection and lifecycle ----- *)

let interrupt_after t stage = Atomic.set t.abort_after (Some stage)
let clear_interrupt t = Atomic.set t.abort_after None

let interrupt t =
  Atomic.set t.abort_all true;
  request_stop t

let drain t = Scheduler.drain t.sched

let shutdown t =
  request_stop t;
  Scheduler.shutdown t.sched

let alive_workers t = Scheduler.alive_workers t.sched
let stopping t = Atomic.get t.stop_requested

(* ----- socket front-end ----- *)

let listen_unix t ~path =
  if Sys.file_exists path then Unix.unlink path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  Mutex.lock t.listener_lock;
  t.listener <- Some fd;
  Mutex.unlock t.listener_lock;
  Log.app (fun m -> m "listening on %s" path);
  let rec accept_loop () =
    if not (Atomic.get t.stop_requested) then
      match Unix.accept fd with
      | cfd, _ ->
        let (_ : Thread.t) =
          Thread.create
            (fun () ->
              Fun.protect
                ~finally:(fun () -> try Unix.close cfd with Unix.Unix_error _ -> ())
                (fun () -> handle_client t cfd))
            ()
        in
        accept_loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED | Unix.EINTR), _, _)
        ->
        if not (Atomic.get t.stop_requested) then accept_loop ()
  in
  accept_loop ();
  close_listener t;
  if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ())
