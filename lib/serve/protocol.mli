(** The dpp_serve wire protocol: length-prefixed JSON frames.

    A frame is the ASCII header line ["DPP1 <len>\n"] followed by exactly
    [len] payload bytes (a single JSON document).  The length prefix makes
    message boundaries explicit, so a reader can reject an oversized frame
    {e before} allocating it and detect a truncated one (peer died
    mid-frame) instead of blocking forever on a missing terminator.

    Requests flow client -> server; responses (including the streamed
    per-stage [Event]s) flow back.  Every response carries the job id it
    belongs to, which is what lets one connection multiplex the trace
    streams of several in-flight jobs without ambiguity. *)

exception Protocol_error of string
(** Framing or message-shape violation: bad header, oversized or truncated
    frame, malformed or unknown-op payload.  Always raised in preference
    to returning garbage. *)

(** {1 Framing} *)

val magic : string
(** ["DPP1"] — the header tag, doubling as a protocol version. *)

val default_max_frame : int
(** 8 MiB payload ceiling. *)

val encode_frame : string -> string
(** Header + payload, ready for a single write. *)

val decode_frame : ?max_len:int -> string -> string * int
(** Pure single-frame decode: the payload and the number of unconsumed
    trailing bytes.  @raise Protocol_error on truncated or oversized
    input — the unit-testable core of {!read_frame}. *)

val read_frame : ?max_len:int -> Unix.file_descr -> string option
(** Blocking read of one frame; [None] on a clean EOF at a frame
    boundary.  @raise Protocol_error on a truncated frame, a bad header,
    or a declared length above [max_len] (checked before allocation). *)

val write_frame : Unix.file_descr -> string -> unit

(** {1 Messages} *)

(** Where the server finds the job's netlist.  [Preset] covers both the
    generator presets and the [xl*] scaled benches, resolved exactly as
    [dpp_place --preset] does; [Bookshelf] reads [basename.aux] from the
    server's filesystem. *)
type design_src = Preset of { name : string; seed : int } | Bookshelf of { basename : string }

type job_spec = {
  src : design_src;
  mode : Dpp_core.Config.mode;
  check : bool;  (** run the stage-boundary oracles; failures fail the job *)
  jobs : int;  (** worker-pool width for this job's kernels *)
  gp_rounds : int option;  (** config overrides; [None] keeps the default *)
  gp_inner_iters : int option;
  detail_passes : int option;
  out : string option;  (** write the placed design as Bookshelf [BASE.*] *)
}

val spec :
  ?mode:Dpp_core.Config.mode ->
  ?check:bool ->
  ?jobs:int ->
  ?gp_rounds:int ->
  ?gp_inner_iters:int ->
  ?detail_passes:int ->
  ?out:string ->
  design_src ->
  job_spec
(** Spec builder with the protocol's defaults (baseline, no check, 1 job
    worker, no overrides). *)

val spec_to_json : job_spec -> Dpp_report.Json.t
val spec_of_json : Dpp_report.Json.t -> job_spec
(** @raise Protocol_error on missing/ill-typed required fields. *)

(** The edit list of an ECO job: explicit, or generated {e server-side}
    by {!Dpp_core.Eco.random_edits} against the placed base — the seeded
    form the bench and CI smoke traffic use, since edit locality is only
    meaningful relative to the base {e placement}, which the client does
    not hold. *)
type edit_source = Edits of Dpp_core.Eco.edit list | Random_edits of { ops : int; seed : int }

type request =
  | Submit of job_spec  (** full placement job *)
  | Eco_submit of { base : job_spec; edits : edit_source; threshold : float option; verify : bool }
      (** incremental job: place (or fetch) the base, then re-place the
          edit list's dirty region via {!Dpp_core.Eco.run}.  With
          [verify], the server asserts every clean cell is bit-identical
          to the base placement and fails the job otherwise — the
          differential gate, enforced where the base is known. *)
  | Ping
  | Shutdown  (** stop accepting, drain in-flight jobs, exit *)

type eco_summary = { fallback : bool; dirty_fraction : float }

type response =
  | Accepted of { job : int }  (** job queued; its id tags every later message *)
  | Rejected of { reason : string }  (** queue full or malformed submission *)
  | Event of { job : int; stage : Dpp_report.Trace.stage }
      (** streamed after each pipeline stage of the job completes *)
  | Done of { job : int; hpwl : float; wall_s : float; eco : eco_summary option }
  | Failed of { job : int; reason : string }
  | Pong

val request_to_json : request -> Dpp_report.Json.t
val request_of_json : Dpp_report.Json.t -> request
val response_to_json : response -> Dpp_report.Json.t
val response_of_json : Dpp_report.Json.t -> response
(** @raise Protocol_error on an unknown op or missing required field. *)

val send_request : Unix.file_descr -> request -> unit
val send_response : Unix.file_descr -> response -> unit

val recv_request : ?max_len:int -> Unix.file_descr -> request option
val recv_response : ?max_len:int -> Unix.file_descr -> response option
(** Frame read + JSON parse + decode; [None] on clean EOF.
    @raise Protocol_error on any framing or message-shape violation. *)
