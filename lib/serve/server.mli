(** The placement service: concurrent job execution over a socket.

    One {!t} owns a {!Scheduler} worker-domain pool, a shared
    {!Cache} of extraction results, a bounded table of placed base
    designs (what ECO deltas are applied against), and optionally a
    {e spool} directory of checkpoint records for crash recovery.

    {b Connection model.}  Each client connection is served by one
    handler thread ({!handle_client}); job submissions go to the
    scheduler and return [Accepted] with the job id {e before} any of
    that job's streamed [Event]s (a semaphore gates the job start on the
    acknowledgement write).  Replies to a vanished client are dropped
    silently — a mid-stream disconnect never disturbs the job.

    {b Crash recovery.}  With a spool directory configured, every job
    writes its spec at start and a {!Dpp_core.Checkpoint.Snapshot} after
    each resumable stage boundary (legal, detail, flip); the record is
    deleted on completion.  {!interrupt} (the SIGTERM path) makes every
    in-flight job stop at its next boundary with the spool record left
    behind; a freshly created server over the same spool directory picks
    the records up with {!resume}, restoring the snapshot and running
    only the remaining stage suffix — or re-running from scratch when
    the job had not reached a resumable boundary, which reproduces the
    same bits because the flow is deterministic. *)

exception Interrupted of string
(** Raised inside a job when the server is stopping (or a fault-injection
    trigger fired); carries the last completed stage. *)

type cfg = {
  workers : int;  (** concurrent jobs = scheduler worker domains *)
  queue : int;  (** bounded backlog; beyond it submissions get [Rejected] *)
  cache_capacity : int;  (** extraction-cache LRU entries *)
  base_capacity : int;  (** placed base designs kept for ECO deltas *)
  spool : string option;  (** checkpoint directory; [None] disables spooling *)
  max_frame : int;  (** per-frame payload ceiling for client connections *)
}

val default_cfg : cfg
(** 2 workers, queue 16, 16-entry caches, no spool, 8 MiB frames. *)

type t

val create : ?cfg:cfg -> unit -> t
(** Spawns the worker domains; creates the spool directory if needed. *)

(** {1 Serving} *)

val handle_client : t -> Unix.file_descr -> unit
(** Serve one connection until clean EOF, an unrecoverable framing error,
    or a [Shutdown] request.  A malformed {e message} in a well-formed
    frame gets a [Rejected] reply and the connection continues; a broken
    {e frame} gets a [Rejected] reply and the connection is dropped
    (the byte stream cannot be resynchronized).  Does not close [fd].
    Used directly over a socketpair by the tests; {!listen_unix} wraps it
    in an accept loop. *)

val listen_unix : t -> path:string -> unit
(** Bind a Unix-domain socket, accept clients (one handler thread each)
    until {!request_stop} / a client [Shutdown], then unlink the socket.
    Blocks; run the scheduler drain after it returns. *)

val request_stop : t -> unit
(** Stop accepting new connections (closes the listener, so a blocked
    accept wakes up).  In-flight jobs are unaffected. *)

val stopping : t -> bool

(** {1 Jobs without a socket} *)

val submit_request :
  t -> Protocol.request -> reply_fn:(Protocol.response -> unit) -> [ `Queued of int | `Busy ]
(** Submit a [Submit]/[Eco_submit] request directly (the bench harness
    path).  [reply_fn] receives the acknowledgement, streamed events and
    the final verdict, possibly from a worker domain.
    @raise Invalid_argument on [Ping]/[Shutdown]. *)

val drain : t -> unit
(** Block until no job is queued or running. *)

val shutdown : t -> unit
(** {!request_stop}, drain the queue, join every worker domain. *)

val alive_workers : t -> int
(** 0 after {!shutdown} — the no-orphaned-domains assertion. *)

(** {1 Crash recovery} *)

val resume : t -> int list
(** Scan the spool directory and re-submit every record, consuming the
    files; returns the new job ids.  Results land where the original
    spec's [out] pointed (there is no client to stream to). *)

val interrupt : t -> unit
(** The SIGTERM path: every in-flight job stops at its next stage
    boundary (checkpoint left in the spool), and the listener closes. *)

val interrupt_after : t -> string -> unit
(** Fault injection: make every job abort right after the named stage
    completes (and checkpoints, if resumable) — a deterministic stand-in
    for SIGTERM racing a running job. *)

val clear_interrupt : t -> unit

(** {1 Introspection} *)

val extraction_stats : t -> Cache.stats
val jobs_completed : t -> int
val jobs_failed : t -> int
