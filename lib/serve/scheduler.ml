(* Bounded job queue over a fixed set of worker domains. *)

type job = { id : int; run : id:int -> unit }

type t = {
  capacity : int;
  queue : job Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;  (* a job was queued, or shutdown began *)
  idle : Condition.t;  (* a job finished or was dequeued *)
  mutable next_id : int;
  mutable running : int;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let rec worker_loop t =
  let job =
    with_lock t (fun () ->
        while Queue.is_empty t.queue && not t.stopping do
          Condition.wait t.nonempty t.lock
        done;
        if Queue.is_empty t.queue then None
        else begin
          let j = Queue.pop t.queue in
          t.running <- t.running + 1;
          Some j
        end)
  in
  match job with
  | None -> ()  (* stopping and drained: exit the domain *)
  | Some j ->
    (* the job owns its error reporting; a raise must never kill the
       worker, or the pool would silently lose capacity *)
    (try j.run ~id:j.id with _ -> ());
    with_lock t (fun () ->
        t.running <- t.running - 1;
        Condition.broadcast t.idle);
    worker_loop t

let create ~workers ~queue:capacity =
  let t =
    {
      capacity = max 1 capacity;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      next_id = 1;
      running = 0;
      stopping = false;
      domains = [];
    }
  in
  t.domains <- List.init (max 1 workers) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t run =
  with_lock t (fun () ->
      if t.stopping || Queue.length t.queue >= t.capacity then `Busy
      else begin
        let id = t.next_id in
        t.next_id <- id + 1;
        Queue.push { id; run } t.queue;
        Condition.signal t.nonempty;
        `Queued id
      end)

let pending t = with_lock t (fun () -> Queue.length t.queue + t.running)

let drain t =
  with_lock t (fun () ->
      while not (Queue.is_empty t.queue) || t.running > 0 do
        Condition.wait t.idle t.lock
      done)

let shutdown t =
  with_lock t (fun () ->
      t.stopping <- true;
      Condition.broadcast t.nonempty);
  List.iter Domain.join t.domains;
  t.domains <- []

let alive_workers t = List.length t.domains
