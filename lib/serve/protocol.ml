(* Length-prefixed frame protocol + JSON message codec for dpp_serve. *)

module Json = Dpp_report.Json
module Trace = Dpp_report.Trace
module Config = Dpp_core.Config
module Eco = Dpp_core.Eco

exception Protocol_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

(* ----- framing ----- *)

let magic = "DPP1"
let default_max_frame = 8 * 1024 * 1024
let max_header = 32

let encode_frame payload = Printf.sprintf "%s %d\n%s" magic (String.length payload) payload

let parse_header line =
  match String.index_opt line ' ' with
  | Some i when String.sub line 0 i = magic -> (
    let lens = String.sub line (i + 1) (String.length line - i - 1) in
    match int_of_string_opt lens with
    | Some len when len >= 0 -> len
    | _ -> fail "bad frame length %S" lens)
  | _ -> fail "bad frame header %S" line

(* Read exactly [n] bytes; a clean EOF at byte 0 returns [None] when
   [eof_ok]; an EOF anywhere else is a truncated frame. *)
let read_exact ?(eof_ok = false) fd buf pos n =
  let got = ref 0 in
  (try
     while !got < n do
       let r = Unix.read fd buf (pos + !got) (n - !got) in
       if r = 0 then raise Exit;
       got := !got + r
     done
   with Exit -> ());
  if !got = n then true
  else if !got = 0 && eof_ok then false
  else fail "truncated frame: wanted %d bytes, got %d" n !got

let read_frame ?(max_len = default_max_frame) fd =
  (* header: "DPP1 <len>\n", read byte-wise up to max_header *)
  let hdr = Buffer.create max_header in
  let one = Bytes.create 1 in
  let rec header first =
    if Buffer.length hdr > max_header then fail "oversized frame header"
    else if not (read_exact ~eof_ok:first fd one 0 1) then None
    else if Bytes.get one 0 = '\n' then Some (Buffer.contents hdr)
    else begin
      Buffer.add_char hdr (Bytes.get one 0);
      header false
    end
  in
  match header true with
  | None -> None
  | Some line ->
    let len = parse_header line in
    if len > max_len then fail "oversized frame: %d bytes (limit %d)" len max_len;
    let buf = Bytes.create len in
    ignore (read_exact fd buf 0 len : bool);
    Some (Bytes.to_string buf)

let write_frame fd payload =
  let s = encode_frame payload in
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write fd b !sent (n - !sent)
  done

(* Pure single-frame decode, for protocol unit tests. *)
let decode_frame ?(max_len = default_max_frame) s =
  match String.index_opt s '\n' with
  | None -> fail "truncated frame: no header terminator"
  | Some nl ->
    if nl > max_header then fail "oversized frame header";
    let len = parse_header (String.sub s 0 nl) in
    if len > max_len then fail "oversized frame: %d bytes (limit %d)" len max_len;
    if String.length s - nl - 1 < len then
      fail "truncated frame: wanted %d bytes, got %d" len (String.length s - nl - 1);
    String.sub s (nl + 1) len, String.length s - nl - 1 - len

(* ----- messages ----- *)

type design_src = Preset of { name : string; seed : int } | Bookshelf of { basename : string }

type job_spec = {
  src : design_src;
  mode : Config.mode;
  check : bool;
  jobs : int;
  gp_rounds : int option;
  gp_inner_iters : int option;
  detail_passes : int option;
  out : string option;
}

let spec ?(mode = Config.Baseline) ?(check = false) ?(jobs = 1) ?gp_rounds ?gp_inner_iters
    ?detail_passes ?out src =
  { src; mode; check; jobs; gp_rounds; gp_inner_iters; detail_passes; out }

type edit_source = Edits of Eco.edit list | Random_edits of { ops : int; seed : int }

type request =
  | Submit of job_spec
  | Eco_submit of { base : job_spec; edits : edit_source; threshold : float option; verify : bool }
  | Ping
  | Shutdown

type eco_summary = { fallback : bool; dirty_fraction : float }

type response =
  | Accepted of { job : int }
  | Rejected of { reason : string }
  | Event of { job : int; stage : Trace.stage }
  | Done of { job : int; hpwl : float; wall_s : float; eco : eco_summary option }
  | Failed of { job : int; reason : string }
  | Pong

(* ----- JSON codec ----- *)

let src_to_json = function
  | Preset { name; seed } ->
    Json.Obj [ "kind", Json.Str "preset"; "name", Json.Str name; "seed", Json.Num (float_of_int seed) ]
  | Bookshelf { basename } -> Json.Obj [ "kind", Json.Str "bookshelf"; "basename", Json.Str basename ]

let get_str key o =
  match Json.member key o with
  | Some (Json.Str s) -> s
  | _ -> fail "missing string field %S" key

let get_int key o =
  match Json.member key o with
  | Some (Json.Num f) -> int_of_float f
  | _ -> fail "missing numeric field %S" key

let get_float key o =
  match Json.member key o with
  | Some (Json.Num f) -> f
  | _ -> fail "missing numeric field %S" key

let opt_int key o = match Json.member key o with Some (Json.Num f) -> Some (int_of_float f) | _ -> None
let opt_bool key ~default o = match Json.member key o with Some (Json.Bool b) -> b | _ -> default

let src_of_json o =
  match get_str "kind" o with
  | "preset" -> Preset { name = get_str "name" o; seed = get_int "seed" o }
  | "bookshelf" -> Bookshelf { basename = get_str "basename" o }
  | k -> fail "unknown design source kind %S" k

let mode_to_string = Config.mode_to_string

let mode_of_string = function
  | "baseline" -> Config.Baseline
  | "structure-aware" | "sa" -> Config.Structure_aware
  | m -> fail "unknown mode %S" m

let opt_field key f = function None -> [] | Some v -> [ key, f v ]

let spec_to_json (s : job_spec) =
  Json.Obj
    ([
       "src", src_to_json s.src;
       "mode", Json.Str (mode_to_string s.mode);
       "check", Json.Bool s.check;
       "jobs", Json.Num (float_of_int s.jobs);
     ]
    @ opt_field "gp_rounds" (fun i -> Json.Num (float_of_int i)) s.gp_rounds
    @ opt_field "gp_inner_iters" (fun i -> Json.Num (float_of_int i)) s.gp_inner_iters
    @ opt_field "detail_passes" (fun i -> Json.Num (float_of_int i)) s.detail_passes
    @ opt_field "out" (fun p -> Json.Str p) s.out)

let spec_of_json o =
  {
    src = (match Json.member "src" o with Some s -> src_of_json s | None -> fail "missing job src");
    mode = mode_of_string (get_str "mode" o);
    check = opt_bool "check" ~default:false o;
    jobs = (match opt_int "jobs" o with Some j -> j | None -> 1);
    gp_rounds = opt_int "gp_rounds" o;
    gp_inner_iters = opt_int "gp_inner_iters" o;
    detail_passes = opt_int "detail_passes" o;
    out = (match Json.member "out" o with Some (Json.Str p) -> Some p | _ -> None);
  }

let request_to_json = function
  | Submit s -> Json.Obj [ "op", Json.Str "submit"; "spec", spec_to_json s ]
  | Eco_submit { base; edits; threshold; verify } ->
    Json.Obj
      ([ "op", Json.Str "eco"; "base", spec_to_json base ]
      @ (match edits with
        | Edits e -> [ "edits", Eco.edits_to_json e ]
        | Random_edits { ops; seed } ->
          [
            ( "random",
              Json.Obj [ "ops", Json.Num (float_of_int ops); "seed", Json.Num (float_of_int seed) ]
            );
          ])
      @ opt_field "threshold" (fun t -> Json.Num t) threshold
      @ if verify then [ "verify", Json.Bool true ] else [])
  | Ping -> Json.Obj [ "op", Json.Str "ping" ]
  | Shutdown -> Json.Obj [ "op", Json.Str "shutdown" ]

let request_of_json o =
  match get_str "op" o with
  | "submit" -> (
    match Json.member "spec" o with
    | Some s -> Submit (spec_of_json s)
    | None -> fail "submit: missing spec")
  | "eco" ->
    let base =
      match Json.member "base" o with Some s -> spec_of_json s | None -> fail "eco: missing base"
    in
    let edits =
      match Json.member "edits" o, Json.member "random" o with
      | Some e, _ -> Edits (Eco.edits_of_json e)
      | None, Some r -> Random_edits { ops = get_int "ops" r; seed = get_int "seed" r }
      | None, None -> fail "eco: missing edits or random"
    in
    let threshold = match Json.member "threshold" o with Some (Json.Num t) -> Some t | _ -> None in
    Eco_submit { base; edits; threshold; verify = opt_bool "verify" ~default:false o }
  | "ping" -> Ping
  | "shutdown" -> Shutdown
  | op -> fail "unknown request op %S" op

let response_to_json = function
  | Accepted { job } -> Json.Obj [ "op", Json.Str "accepted"; "job", Json.Num (float_of_int job) ]
  | Rejected { reason } -> Json.Obj [ "op", Json.Str "rejected"; "reason", Json.Str reason ]
  | Event { job; stage } ->
    Json.Obj
      [ "op", Json.Str "event"; "job", Json.Num (float_of_int job); "stage", Trace.stage_to_json stage ]
  | Done { job; hpwl; wall_s; eco } ->
    Json.Obj
      ([
         "op", Json.Str "done";
         "job", Json.Num (float_of_int job);
         "hpwl", Json.Num hpwl;
         "wall_s", Json.Num wall_s;
       ]
      @ opt_field "eco"
          (fun e ->
            Json.Obj [ "fallback", Json.Bool e.fallback; "dirty_fraction", Json.Num e.dirty_fraction ])
          eco)
  | Failed { job; reason } ->
    Json.Obj [ "op", Json.Str "failed"; "job", Json.Num (float_of_int job); "reason", Json.Str reason ]
  | Pong -> Json.Obj [ "op", Json.Str "pong" ]

let response_of_json o =
  match get_str "op" o with
  | "accepted" -> Accepted { job = get_int "job" o }
  | "rejected" -> Rejected { reason = get_str "reason" o }
  | "event" -> (
    match Json.member "stage" o with
    | Some s -> Event { job = get_int "job" o; stage = Trace.stage_of_json s }
    | None -> fail "event: missing stage")
  | "done" ->
    let eco =
      match Json.member "eco" o with
      | Some e ->
        Some
          {
            fallback = opt_bool "fallback" ~default:false e;
            dirty_fraction = get_float "dirty_fraction" e;
          }
      | None -> None
    in
    Done { job = get_int "job" o; hpwl = get_float "hpwl" o; wall_s = get_float "wall_s" o; eco }
  | "failed" -> Failed { job = get_int "job" o; reason = get_str "reason" o }
  | "pong" -> Pong
  | op -> fail "unknown response op %S" op

(* ----- fd-level message IO ----- *)

let decode_payload of_json payload =
  match Json.parse payload with
  | exception Json.Parse_error m -> fail "malformed payload: %s" m
  | j -> of_json j

let send_request fd r = write_frame fd (Json.encode (request_to_json r))
let send_response fd r = write_frame fd (Json.encode (response_to_json r))

let recv_request ?max_len fd =
  Option.map (decode_payload request_of_json) (read_frame ?max_len fd)

let recv_response ?max_len fd =
  Option.map (decode_payload response_of_json) (read_frame ?max_len fd)
