(** A small spawn-once domain-pool executor for the hot placement kernels.

    The pool owns [nworkers - 1] helper domains (the caller's domain is
    worker 0); helpers are spawned lazily on the first parallel {!run} and
    parked on a condition variable between jobs, so creating a pool is
    free and a pool with [nworkers = 1] never spawns anything — the serial
    path stays exactly the serial path.

    {b Determinism.}  Work is distributed by {e static chunking} over a
    {e fixed} number of chunks ({!chunk_count}) whose boundaries depend
    only on the item count, never on the worker count.  A kernel that
    accumulates into per-chunk buffers and reduces them in ascending chunk
    index order therefore produces bit-identical results at every
    [nworkers] — which worker happened to compute a chunk cannot matter,
    because IEEE arithmetic is deterministic given the same operands in
    the same order.  Kernels whose writes are disjoint per item (one slot
    per net, pin or cell) are bit-deterministic under any partition and
    simply use {!iter_chunks} for the fan-out. *)

type t

val create : nworkers:int -> t
(** [create ~nworkers] builds a pool of [max 1 nworkers] workers.  No
    domain is spawned until the first {!run} with [nworkers > 1]. *)

val nworkers : t -> int

val serial : t
(** A shared single-worker pool: every [run] executes inline on the
    calling domain, in chunk order.  Safe to use from any domain and
    never needs {!shutdown}. *)

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f w] once per worker [w] in [0 .. nworkers - 1],
    concurrently; [f 0] runs on the calling domain.  Blocks until every
    worker returns.  If any worker raises, one of the raised exceptions is
    re-raised on the caller after all workers have finished.  Not
    reentrant: a job must not call {!run} on its own pool. *)

val chunk_count : int
(** The fixed static chunk count (16).  Parallelism is capped by it, and
    every chunk-indexed reduction has exactly this many partials. *)

val chunk_bounds : n:int -> int -> int * int
(** [chunk_bounds ~n c] is the half-open item range [(lo, hi)] of chunk
    [c] over [n] items: boundaries depend only on [n]. *)

val effective_cores : int
(** [Domain.recommended_domain_count ()], sampled once at startup. *)

val auto_serial : t -> n:int -> bool
(** [auto_serial t ~n] is true when {!iter_chunks} over [n] items would
    run inline on the caller instead of fanning out: the pool has one
    worker, the machine has fewer than two effective cores, or [n] is
    below the minimum worth waking helpers for (2048 items).  Exposed so
    benchmarks can report honestly whether a sweep level actually ran in
    parallel. *)

val iter_chunks : t -> n:int -> (worker:int -> chunk:int -> lo:int -> hi:int -> unit) -> unit
(** Run the callback over all {!chunk_count} chunks of [n] items, chunks
    assigned to workers round-robin.  Empty chunks are still visited (so
    per-chunk buffers can be cleared).  [worker] identifies the executing
    worker for scratch-buffer selection only — values must not depend on
    it.  When {!auto_serial} holds, every chunk runs inline on the
    caller as worker 0 in ascending chunk order, which yields the same
    bits as the fanned-out path (chunk boundaries and merge order are
    unchanged). *)

val shutdown : t -> unit
(** Park and join the helper domains, if any were spawned.  The pool
    remains usable (helpers respawn on the next parallel {!run}).
    Idempotent. *)

val with_pool : nworkers:int -> (t -> 'a) -> 'a
(** [with_pool ~nworkers f] runs [f] over a fresh pool and guarantees
    {!shutdown}, even on exceptions. *)
