type t = {
  nworkers : int;
  mutex : Mutex.t;
  work : Condition.t;
  idle : Condition.t;
  mutable job : (int -> unit) option;
  mutable epoch : int;  (** bumped per job; helpers wake when it moves *)
  mutable pending : int;  (** helpers still running the current job *)
  mutable failure : exn option;  (** first exception raised by any worker *)
  mutable stop : bool;
  mutable helpers : unit Domain.t array;  (** spawned lazily, length nworkers - 1 *)
}

let create ~nworkers =
  {
    nworkers = max 1 nworkers;
    mutex = Mutex.create ();
    work = Condition.create ();
    idle = Condition.create ();
    job = None;
    epoch = 0;
    pending = 0;
    failure = None;
    stop = false;
    helpers = [||];
  }

let nworkers t = t.nworkers

let serial = create ~nworkers:1

let record_failure t exn =
  Mutex.lock t.mutex;
  if t.failure = None then t.failure <- Some exn;
  Mutex.unlock t.mutex

(* Helper domains park here between jobs.  [seen] is the last epoch this
   helper executed, so a broadcast cannot double-run or skip a job.  The
   starting epoch is captured by the spawner *before* the domain exists:
   reading [t.epoch] from inside the new domain would race with the first
   [run], which may bump the epoch before the helper gets scheduled. *)
let helper_loop t epoch0 w =
  let seen = ref epoch0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while (not t.stop) && t.epoch = !seen do
      Condition.wait t.work t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      seen := t.epoch;
      let job = t.job in
      Mutex.unlock t.mutex;
      (match job with
      | Some f -> ( try f w with exn -> record_failure t exn)
      | None -> ());
      Mutex.lock t.mutex;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.idle;
      Mutex.unlock t.mutex
    end
  done

let ensure_spawned t =
  if Array.length t.helpers = 0 && t.nworkers > 1 then begin
    t.stop <- false;
    let epoch0 = t.epoch in
    t.helpers <-
      Array.init (t.nworkers - 1) (fun k ->
          Domain.spawn (fun () -> helper_loop t epoch0 (k + 1)))
  end

let run t f =
  if t.nworkers = 1 then f 0
  else begin
    ensure_spawned t;
    Mutex.lock t.mutex;
    t.job <- Some f;
    t.failure <- None;
    t.pending <- t.nworkers - 1;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    (try f 0 with exn -> record_failure t exn);
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.idle t.mutex
    done;
    t.job <- None;
    let failure = t.failure in
    t.failure <- None;
    Mutex.unlock t.mutex;
    match failure with Some exn -> raise exn | None -> ()
  end

(* The chunk structure is the determinism contract: [chunk_count] is a
   constant, so per-chunk partial sums reduced in ascending chunk order
   give the same bits at every worker count. *)
let chunk_count = 16

let chunk_bounds ~n c = c * n / chunk_count, (c + 1) * n / chunk_count

(* Auto-serial fallback: fanning tiny work out to parked domains costs
   more in wake-up latency than the chunks cost to compute, and on a
   single-core machine the helpers only add scheduling overhead.  The
   fallback runs the same 16 chunks inline on the caller (as worker 0),
   in ascending chunk order — exactly the order a chunk-merged reduction
   assumes — so kernel results stay bit-identical to the fanned-out
   path and the determinism contract is untouched. *)
let effective_cores = Domain.recommended_domain_count ()

let min_parallel_items = 2048

let auto_serial t ~n = t.nworkers <= 1 || effective_cores < 2 || n < min_parallel_items

let iter_chunks t ~n f =
  if auto_serial t ~n then
    for c = 0 to chunk_count - 1 do
      let lo, hi = chunk_bounds ~n c in
      f ~worker:0 ~chunk:c ~lo ~hi
    done
  else
    run t (fun w ->
        let c = ref w in
        while !c < chunk_count do
          let lo, hi = chunk_bounds ~n !c in
          f ~worker:w ~chunk:!c ~lo ~hi;
          c := !c + t.nworkers
        done)

let shutdown t =
  if Array.length t.helpers > 0 then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.helpers;
    t.helpers <- [||];
    t.stop <- false
  end

let with_pool ~nworkers f =
  let t = create ~nworkers in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
