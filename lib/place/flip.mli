(** Cell orientation optimization: mirror a standard cell about its
    vertical axis ([N] <-> [FN]) when that shortens the HPWL of its
    incident nets.  Flipping keeps the cell's footprint and center, so it
    can never break legality, and it preserves datapath-array geometry —
    every cell is a candidate, group members included.

    A cheap, classical post-pass: typical gains are a fraction of a
    percent of HPWL, concentrated on asymmetric-pin cells.  Candidates
    are evaluated through {!Dpp_wirelen.Netbox} transactions; accepted
    flips leave the shared pin view's offsets mirrored in place, so the
    caller never rebuilds it. *)

type stats = {
  flips : int;
  gain : float;  (** weighted HPWL improvement *)
  flipped : int list;  (** ids of the cells that were flipped *)
}

val run :
  Dpp_netlist.Design.t ->
  ?pool:Dpp_par.Pool.t ->
  ?soa:Dpp_netlist.Soa.t ->
  ?skip:(int -> bool) ->
  ?netbox:Dpp_wirelen.Netbox.t ->
  cx:float array ->
  cy:float array ->
  unit ->
  stats
(** Greedy single pass over all movable cells at the given placement
    ([skip], used by incremental ECO re-placement, exempts cells — their
    orientations must stay bit-identical to the base placement);
    mutates [design.orient] (and the pin view's x-offsets) for accepted
    flips.  Multi-row macros (RAMs) are skipped — their pin symmetry
    assumptions do not hold.  [netbox], when given, must be live over
    [cx]/[cy]; when absent a private one is built.  [pool] (default
    {!Dpp_par.Pool.serial}) fans the candidate evaluation out over
    worker domains (read-only {!Dpp_wirelen.Netbox.eval_flip}); commits
    stay serial in ascending id order, so the flipped set is
    bit-identical at every worker count. *)
