module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Orient = Dpp_geom.Orient
module Pins = Dpp_wirelen.Pins
module Netbox = Dpp_wirelen.Netbox

type stats = { flips : int; gain : float; flipped : int list }

let run (d : Design.t) ?netbox ~cx ~cy () =
  let nb = match netbox with Some nb -> nb | None -> Netbox.build (Pins.build d) ~cx ~cy in
  let flips = ref 0 and gain = ref 0.0 and flipped = ref [] in
  Array.iter
    (fun i ->
      let c = Design.cell d i in
      if c.Types.c_height <= d.Design.row_height +. 1e-9 then begin
        (* mirror this cell's pin x-offsets in the shared pin view; the
           netbox keeps the offsets and its boxes consistent on commit,
           so no caller ever rebuilds the pin structure after flipping *)
        Netbox.flip_cell nb i;
        let delta = Netbox.delta nb in
        if delta < -1e-9 then begin
          Netbox.commit nb;
          d.Design.orient.(i) <- Orient.flip_x d.Design.orient.(i);
          incr flips;
          gain := !gain -. delta;
          flipped := i :: !flipped
        end
        else Netbox.rollback nb
      end)
    (Design.movable_ids d);
  { flips = !flips; gain = !gain; flipped = !flipped }
