module Design = Dpp_netlist.Design
module Soa = Dpp_netlist.Soa
module Orient = Dpp_geom.Orient
module Pins = Dpp_wirelen.Pins
module Netbox = Dpp_wirelen.Netbox
module Pool = Dpp_par.Pool

type stats = { flips : int; gain : float; flipped : int list }

let run (d : Design.t) ?(pool = Pool.serial) ?soa ?(skip = fun _ -> false) ?netbox ~cx ~cy
    () =
  let s = match soa with Some s -> s | None -> Soa.of_design d in
  let nb = match netbox with Some nb -> nb | None -> Netbox.build (Pins.of_soa s) ~cx ~cy in
  (* evaluate-parallel/commit-serial: workers score every candidate flip
     with the read-only {!Netbox.eval_flip} against the committed state;
     the serial phase re-checks each proposal transactionally in
     ascending chunk (= ascending id) order, since an earlier committed
     flip of a net neighbour can change the sign of a later delta. *)
  let cands =
    Array.to_list (Design.movable_ids d)
    |> List.filter (fun i -> (not (skip i)) && s.Soa.height.(i) <= s.Soa.row_height +. 1e-9)
    |> Array.of_list
  in
  let proposals = Array.make Pool.chunk_count [] in
  Pool.iter_chunks pool ~n:(Array.length cands) (fun ~worker:_ ~chunk ~lo ~hi ->
      let props = ref [] in
      for q = lo to hi - 1 do
        let i = cands.(q) in
        if Netbox.eval_flip nb i < -1e-9 then props := i :: !props
      done;
      proposals.(chunk) <- List.rev !props);
  let flips = ref 0 and gain = ref 0.0 and flipped = ref [] in
  Array.iter
    (List.iter (fun i ->
         (* mirror this cell's pin x-offsets in the shared pin view; the
            netbox keeps the offsets and its boxes consistent on commit,
            so no caller ever rebuilds the pin structure after flipping *)
         Netbox.flip_cell nb i;
         let delta = Netbox.delta nb in
         if delta < -1e-9 then begin
           Netbox.commit nb;
           (* s.orient aliases d.orient, so both views see the flip *)
           d.Design.orient.(i) <- Orient.flip_x d.Design.orient.(i);
           incr flips;
           gain := !gain -. delta;
           flipped := i :: !flipped
         end
         else Netbox.rollback nb))
    proposals;
  { flips = !flips; gain = !gain; flipped = !flipped }
