(** Detailed placement: HPWL-greedy local refinement on a legal placement.

    Three move types, alternated for a bounded number of passes:

    - {b window reorder}: every window of three consecutive cells in a row
      is tried in all six orders (repacked at the window's left edge, which
      preserves legality because the total width is invariant);
    - {b global swap}: cells of equal width exchange positions across rows
      when that lowers the HPWL of their incident nets;
    - {b global move}: a cell outside the median interval of its incident
      nets is moved into a free gap near that interval.

    Every pass is evaluate-parallel/commit-serial: worker domains score
    candidates with the read-only {!Dpp_wirelen.Netbox.eval_moves}
    against the committed coordinate snapshot (rows chunked for reorder,
    candidate pairs/cells chunked for swap and move), then a serial phase
    re-stages proposals transactionally in ascending chunk order and
    re-checks the delta against the then-current state, committing only
    the still-improving ones — so the weighted HPWL is monotonically
    non-increasing and the result is bit-identical at every worker
    count.  The move pass finds gaps through the sorted {!Occ} occupancy
    index instead of walking per-row lists.

    Cells matched by [skip] (snapped datapath group members in the
    structure-aware flow) are never moved; neither are movable cells
    taller than one row (they would overlap the adjacent row). *)

type stats = {
  passes : int;
  reorder_gain : float;  (** weighted HPWL improvement from window reorders *)
  swap_gain : float;  (** weighted HPWL improvement from swaps and moves *)
  moves : int;
}

val run :
  Dpp_netlist.Design.t ->
  ?pool:Dpp_par.Pool.t ->
  ?soa:Dpp_netlist.Soa.t ->
  ?max_passes:int ->
  ?skip:(int -> bool) ->
  ?bound:Dpp_geom.Rect.t ->
  ?netbox:Dpp_wirelen.Netbox.t ->
  ?hypergraph:Dpp_netlist.Hypergraph.t ->
  legal:Legal.t ->
  unit ->
  stats
(** Mutates [legal.cx]/[legal.cy] in place.  Default [max_passes] is 3;
    a pass that improves nothing stops the loop early.

    [bound] (region-bounded mode, incremental ECO): the global-move pass
    only accepts candidate slots that keep the whole cell inside the
    rectangle, so re-detailed cells never leave the dirty region (reorder
    and swap already stay put — they permute existing slots of non-skipped
    cells).

    [netbox], when given, {e must} have been built over the [legal.cx] /
    [legal.cy] arrays (the flow's shared context guarantees this); when
    absent a private one is built.  [hypergraph] likewise avoids a rebuild
    when the caller already has one. *)
