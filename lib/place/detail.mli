(** Detailed placement: HPWL-greedy local refinement on a legal placement.

    Three move types, alternated for a bounded number of passes:

    - {b window reorder}: every window of three consecutive cells in a row
      is tried in all six orders (repacked at the window's left edge, which
      preserves legality because the total width is invariant);
    - {b global swap}: cells of equal width exchange positions across rows
      when that lowers the HPWL of their incident nets;
    - {b global move}: a cell outside the median interval of its incident
      nets is moved into a free gap near that interval.

    Every candidate is evaluated through {!Dpp_wirelen.Netbox}
    transactions — an O(pins-of-the-moved-cells) delta instead of
    rescanning every pin of every touched net — and committed only when
    strictly improving, so the weighted HPWL is monotonically
    non-increasing.

    Cells matched by [skip] (snapped datapath group members in the
    structure-aware flow) are never moved. *)

type stats = {
  passes : int;
  reorder_gain : float;  (** weighted HPWL improvement from window reorders *)
  swap_gain : float;  (** weighted HPWL improvement from swaps and moves *)
  moves : int;
}

val run :
  Dpp_netlist.Design.t ->
  ?max_passes:int ->
  ?skip:(int -> bool) ->
  ?netbox:Dpp_wirelen.Netbox.t ->
  ?hypergraph:Dpp_netlist.Hypergraph.t ->
  legal:Legal.t ->
  unit ->
  stats
(** Mutates [legal.cx]/[legal.cy] in place.  Default [max_passes] is 3;
    a pass that improves nothing stops the loop early.

    [netbox], when given, {e must} have been built over the [legal.cx] /
    [legal.cy] arrays (the flow's shared context guarantees this); when
    absent a private one is built.  [hypergraph] likewise avoids a rebuild
    when the caller already has one. *)
