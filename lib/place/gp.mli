(** Nonlinear analytical global placement (NTUplace3-style).

    Minimises [W_model(x, y; gamma) + lambda * D(x, y) + beta * A(x, y)]
    over movable-cell centers with nonlinear CG, where [W] is the smooth
    wirelength ({!Dpp_wirelen.Lse} or {!Dpp_wirelen.Wa}), [D] the
    bell-shaped density potential and [A] the datapath alignment potential
    ([beta = 0] recovers the structure-oblivious baseline).

    Outer loop: [lambda] starts at the gradient-norm ratio
    [|grad W| / |grad D|] (so wirelength and spreading forces start
    balanced), multiplies by [lambda_mult] each round while [gamma]
    shrinks; stops when the exact bin overflow falls below
    [overflow_target] or after [rounds].  [beta] is likewise normalised by
    [|grad W| / |grad A|] at the start, so the configuration value is a
    dimensionless knob (1.0 = alignment force comparable to wirelength
    force; the F3 ablation sweeps it). *)

type config = {
  model : Dpp_wirelen.Model.kind;
  target_density : float;
  gamma_frac : float;  (** initial gamma = gamma_frac * bin extent; default 0.5 *)
  gamma_shrink : float;  (** default 0.8 *)
  lambda_mult : float;  (** default 2.0 *)
  rounds : int;  (** default 30 *)
  inner_iters : int;  (** NLCG iterations per round; default 60 *)
  overflow_target : float;  (** default 0.08 *)
  grid : (int * int) option;  (** density bins; default {!Dpp_density.Grid.default_dims} *)
  beta : float;  (** soft-alignment knob; 0 disables *)
  groups : Dpp_structure.Dgroup.t list;  (** soft groups (alignment penalty) *)
  rigid_groups : Dpp_structure.Dgroup.t list;
      (** rigid groups: each becomes a single macro variable — its members
          sit at exact array offsets from one movable origin, wirelength
          and density gradients summing onto that origin.  The primary
          structure-aware mode; [groups]+[beta] is the soft ablation. *)
  pool : Dpp_par.Pool.t option;
      (** worker pool for the wirelength/density kernels.  [None] (the
          default) keeps the original serial code path bit-for-bit.  With
          a pool — of {e any} size, including one worker — wirelength uses
          {!Dpp_wirelen.Par_grad} (bit-identical to serial) and density
          the chunk-merged {!Dpp_density.Bell} kernels (bit-stable across
          worker counts), so the trajectory is the same at every [jobs]
          value. *)
}

val default_config : config
(** LSE model, target density 0.9, no alignment. *)

type round_info = {
  round : int;
  hpwl : float;
  overflow : float;
  gamma : float;
  lambda : float;
  objective : float;
  align_error : float;
}

type result = {
  cx : float array;
  cy : float array;
  trace : round_info list;  (** chronological *)
  final_overflow : float;
  final_hpwl : float;
}

val run :
  ?on_round:(round_info -> unit) ->
  ?frozen:(int -> bool) ->
  ?extra_obstacles:Dpp_geom.Rect.t list ->
  Dpp_netlist.Design.t ->
  config ->
  cx:float array ->
  cy:float array ->
  result
(** [cx]/[cy] provide the start (typically {!Qp.run} output); they are not
    modified. *)
