(** Nonlinear analytical global placement (NTUplace3-style).

    Minimises [W_model(x, y; gamma) + lambda * D(x, y) + beta * A(x, y)]
    over movable-cell centers with nonlinear CG, where [W] is the smooth
    wirelength ({!Dpp_wirelen.Lse} or {!Dpp_wirelen.Wa}), [D] the
    bell-shaped density potential and [A] the datapath alignment potential
    ([beta = 0] recovers the structure-oblivious baseline).

    Outer loop: [lambda] starts at the gradient-norm ratio
    [|grad W| / |grad D|] (so wirelength and spreading forces start
    balanced), multiplies by [lambda_mult] each round while [gamma]
    shrinks; stops when the exact bin overflow falls below
    [overflow_target] or after [rounds].  [beta] is likewise normalised by
    [|grad W| / |grad A|] at the start, so the configuration value is a
    dimensionless knob (1.0 = alignment force comparable to wirelength
    force; the F3 ablation sweeps it). *)

type config = {
  model : Dpp_wirelen.Model.kind;
  target_density : float;
  gamma_frac : float;  (** initial gamma = gamma_frac * bin extent; default 0.5 *)
  gamma_shrink : float;  (** default 0.8 *)
  lambda_mult : float;  (** default 2.0 *)
  rounds : int;  (** default 30 *)
  inner_iters : int;  (** NLCG iterations per round; default 60 *)
  overflow_target : float;  (** default 0.08 *)
  grid : (int * int) option;  (** density bins; default {!Dpp_density.Grid.default_dims} *)
  beta : float;  (** soft-alignment knob; 0 disables *)
  groups : Dpp_structure.Dgroup.t list;  (** soft groups (alignment penalty) *)
  rigid_groups : Dpp_structure.Dgroup.t list;
      (** rigid groups: each becomes a single macro variable — its members
          sit at exact array offsets from one movable origin, wirelength
          and density gradients summing onto that origin.  The primary
          structure-aware mode; [groups]+[beta] is the soft ablation. *)
  pool : Dpp_par.Pool.t option;
      (** worker pool for the wirelength/density kernels.  [None] (the
          default) keeps the original serial code path bit-for-bit.  With
          a pool — of {e any} size, including one worker — wirelength uses
          {!Dpp_wirelen.Par_grad} (bit-identical to serial) and density
          the chunk-merged {!Dpp_density.Bell} kernels (bit-stable across
          worker counts), so the trajectory is the same at every [jobs]
          value. *)
  routability : bool;
      (** congestion-driven placement: every round the {!Dpp_congest.Rudy}
          map is measured over the current coordinates (sharing the flow's
          pool and pin view), and every [rt_interval] rounds the loop (a)
          inflates cells in overflowed bins — virtual area only the density
          model sees, via {!Dpp_density.Bell.set_inflation}, deflating once
          the bin recovers, under a total budget — and (b) refreshes a
          per-bin congestion penalty [mu * sum_i area_i * C(x_i, y_i)],
          with [C] the bilinear interpolation of the per-bin excess
          [max 0 (demand/supply - rt_overflow)], held fixed between
          evaluations ([mu] renormalised to half the wirelength gradient
          norm at each refresh).  A density-feasible but congested iterate
          keeps the loop alive until the ACE excess clears or stalls.  All
          bookkeeping is serial in ascending cell order and the RUDY/bell
          kernels are chunk-merged, so the trajectory stays bit-identical
          at every [jobs] value.  The inflation ledger is closed (fully
          deflated) before [run] returns. *)
  rt_interval : int;  (** rounds between congestion steering updates; default 3 *)
  rt_overflow : float;  (** bin demand/supply ratio treated as congested; default 1.0 *)
  rt_max_inflate : float;
      (** total virtual-area budget as a fraction of the movable area;
          default 0.15.  When the per-cell updates (each clamped to 2x)
          exceed it, every cell's excess is scaled back uniformly. *)
}

val default_config : config
(** LSE model, target density 0.9, no alignment. *)

type round_info = {
  round : int;
  hpwl : float;
  overflow : float;
  gamma : float;
  lambda : float;
  objective : float;
  align_error : float;
}

type rt_round = {
  rt_round : int;  (** outer round the steering update ran after *)
  rt_max : float;  (** hottest-bin demand/supply at that point *)
  rt_ace : float;  (** ACE top-5% average ratio *)
  rt_overflowed : float;  (** fraction of bins over supply *)
  rt_best : float;  (** running minimum of [rt_ace] — non-increasing *)
  rt_inflated : int;  (** cells carrying virtual area after the update *)
  rt_virtual : float;  (** total virtual area outstanding *)
  rt_budget : float;  (** the budget [rt_virtual] is clamped under *)
}

type result = {
  cx : float array;
  cy : float array;
  trace : round_info list;  (** chronological *)
  final_overflow : float;
  final_hpwl : float;
  rt_trace : rt_round list;
      (** chronological routability-steering ledger; [[]] unless
          [routability] was on and at least one steering update ran.  The
          last entry is the ledger close: [rt_virtual = 0],
          [rt_inflated = 0] (everything deflated before return).  The
          [rt_best] envelope is non-increasing across entries — the
          inflate/retry loop's monotonicity contract, checked by
          [Check.rt_ledger]. *)
}

val run :
  ?arena:Dpp_util.Arena.t ->
  ?soa:Dpp_netlist.Soa.t ->
  ?pins:Dpp_wirelen.Pins.t ->
  ?on_round:(round_info -> unit) ->
  ?frozen:(int -> bool) ->
  ?extra_obstacles:Dpp_geom.Rect.t list ->
  Dpp_netlist.Design.t ->
  config ->
  cx:float array ->
  cy:float array ->
  result
(** [cx]/[cy] provide the start (typically {!Qp.run} output); they are not
    modified.

    [soa]/[pins] reuse the caller's flat views of [d] (the flow passes
    its context's) instead of re-deriving them.  [arena] recycles the
    working buffers — gradient banks, NLCG vectors, RUDY grids — so the
    round loop does no steady-state allocation; the result's [cx]/[cy]
    then live in the arena and stay valid only until the next [run]
    against it (they may be fed back as the next start, which is
    handled).  Results are bit-identical with and without an arena. *)

type level_info = {
  level : int;  (** 1 = first coarse level, larger = coarser *)
  movables : int;  (** movable cluster count at this level *)
  rounds_run : int;
  hpwl : float;  (** coarse-netlist HPWL after the level's solve *)
  overflow : float;
  wall_s : float;
}

type ml_result = { result : result; level_trace : level_info list }

val run_multilevel :
  ?arena:Dpp_util.Arena.t ->
  ?soa:Dpp_netlist.Soa.t ->
  ?pins:Dpp_wirelen.Pins.t ->
  ?on_round:(round_info -> unit) ->
  ?on_level:(level_info -> unit) ->
  Dpp_netlist.Design.t ->
  config ->
  levels:Dpp_coarsen.level list ->
  cx:float array ->
  cy:float array ->
  ml_result
(** Multilevel V-cycle over a {!Dpp_coarsen.build} hierarchy: restrict
    the start up to the coarsest level (area-weighted cluster centroids),
    solve each level coarsest-first with a reduced config (halved inner
    iterations, loosened overflow target, per-level density grids, no
    group machinery — group clusters are single cells there), interpolate
    cluster centers down (group slices re-seeded in bit order), and
    finish with a short flat refinement of the full config on [d].
    With [levels = []] this is exactly {!run}.  [routability] stays in
    force at every level: each per-level solve re-derives its inflation
    and congestion field from its own coarse netlist's RUDY map and
    closes its ledger before interpolation, so only coordinates cross
    levels — no stale virtual area is restricted or interpolated.
    [rt_trace] in [result] is the flat refinement's ledger.  [on_round]
    observes the flat refinement only; [on_level] fires after each coarse solve,
    coarsest first.  [level_trace] lists levels in ascending order
    (finest coarse level first).  Deterministic under the same contract
    as {!run}: the trajectory depends on the config, the hierarchy and
    whether a pool was supplied — never on the pool size. *)
