(** Tetris legalization: row assignment with left-to-right packing around
    fixed obstacles (and, in the structure-aware flow, around snapped
    datapath groups).

    Cells are processed in ascending target-x order; each is offered a
    set of rows' free intervals ({!Intervals} stores, O(log n) best-gap
    queries) and takes the least-displacement feasible slot (squared
    Euclidean displacement of the cell center).  With a multi-worker
    pool, rows are partitioned into the fixed 16-chunk scheme and
    legalized chunk-locally in parallel; a cell whose best local slot
    could be beaten or tied by a row outside its chunk is spilled to a
    serial ascending-chunk merge pass that searches every row, so the
    assignment is bit-identical at every worker count.  Site-grid
    snapping is applied by {!Abacus} afterwards. *)

type t = {
  assignment : int array;  (** cell -> row index (-1 for skipped/fixed cells) *)
  cx : float array;  (** legalized centers *)
  cy : float array;
  failed : int list;  (** cells that fit in no row (die overfull) *)
}

val run :
  Dpp_netlist.Design.t ->
  ?pool:Dpp_par.Pool.t ->
  ?arena:Dpp_util.Arena.t ->
  ?soa:Dpp_netlist.Soa.t ->
  ?extra_obstacles:Dpp_geom.Rect.t list ->
  ?skip:(int -> bool) ->
  ?bound:Dpp_geom.Rect.t ->
  cx:float array ->
  cy:float array ->
  unit ->
  t
(** [skip] marks cells to leave untouched (snapped group members).  Input
    arrays are not modified.  [pool] (default {!Dpp_par.Pool.serial})
    fans the chunk-local phase out over worker domains; the result does
    not depend on the worker count.  [soa] supplies the flow's flat view
    so the sort keys and interval widths come from flat arrays; without
    it one is derived on the spot.  [arena] recycles the per-row
    free-interval stores across runs (every store is reset before use,
    so the result is bit-identical with or without one).

    [bound] is the region-bounded mode behind incremental ECO
    re-placement: only rows overlapping the rectangle get free intervals
    and those are clipped to its x-span, so every non-skipped cell is
    legalized {e inside} the bound (pass the frozen cells' rectangles as
    [extra_obstacles] to keep them from being overlapped).  The bounded
    run keeps the worker-count determinism contract. *)

val row_segments_for_test : Dpp_netlist.Design.t -> Dpp_geom.Rect.t list -> int -> (float * float) list
(** The free x-spans of a row given obstacle rectangles — shared with
    {!Abacus} and the tests. *)
