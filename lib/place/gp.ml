module Design = Dpp_netlist.Design
module Soa = Dpp_netlist.Soa
module Rect = Dpp_geom.Rect
module Pins = Dpp_wirelen.Pins
module Model = Dpp_wirelen.Model
module Par_grad = Dpp_wirelen.Par_grad
module Hpwl = Dpp_wirelen.Hpwl
module Grid = Dpp_density.Grid
module Bell = Dpp_density.Bell
module Overflow = Dpp_density.Overflow
module Nlcg = Dpp_numeric.Nlcg
module Dgroup = Dpp_structure.Dgroup
module Alignment = Dpp_structure.Alignment
module Rudy = Dpp_congest.Rudy

type config = {
  model : Model.kind;
  target_density : float;
  gamma_frac : float;
  gamma_shrink : float;
  lambda_mult : float;
  rounds : int;
  inner_iters : int;
  overflow_target : float;
  grid : (int * int) option;
  beta : float;
  groups : Dgroup.t list;  (** soft groups: alignment penalty *)
  rigid_groups : Dgroup.t list;  (** rigid groups: one macro variable each *)
  pool : Dpp_par.Pool.t option;  (** worker pool for the cost kernels *)
  routability : bool;  (** congestion-driven placement (RUDY feedback) *)
  rt_interval : int;  (** rounds between RUDY evaluations *)
  rt_overflow : float;  (** bin demand/supply ratio treated as congested *)
  rt_max_inflate : float;  (** total virtual-area budget, as a fraction of movable area *)
}

let default_config =
  {
    model = Model.Lse;
    target_density = 0.9;
    gamma_frac = 0.5;
    gamma_shrink = 0.8;
    lambda_mult = 2.0;
    rounds = 30;
    inner_iters = 60;
    overflow_target = 0.08;
    grid = None;
    beta = 0.0;
    groups = [];
    rigid_groups = [];
    pool = None;
    routability = false;
    rt_interval = 3;
    rt_overflow = 1.0;
    rt_max_inflate = 0.15;
  }

type round_info = {
  round : int;
  hpwl : float;
  overflow : float;
  gamma : float;
  lambda : float;
  objective : float;
  align_error : float;
}

type rt_round = {
  rt_round : int;
  rt_max : float;
  rt_ace : float;
  rt_overflowed : float;
  rt_best : float;
  rt_inflated : int;
  rt_virtual : float;
  rt_budget : float;
}

type result = {
  cx : float array;
  cy : float array;
  trace : round_info list;
  final_overflow : float;
  final_hpwl : float;
  rt_trace : rt_round list;
}

let grad_l1 g = Array.fold_left (fun acc v -> acc +. abs_float v) 0.0 g

let run ?arena ?soa ?pins ?on_round ?(frozen = fun _ -> false) ?(extra_obstacles = [])
    (d : Design.t) cfg ~cx ~cy =
  let nc = Design.num_cells d in
  (* Arena-backed working buffers: [afloats]/[aints] are zero-filled
     drop-ins for [Array.make], [afloats_raw] is for buffers that are
     fully overwritten before any read (a recycled buffer may alias this
     run's own inputs, so those must not be pre-zeroed). *)
  let afloats key n =
    match arena with Some a -> Dpp_util.Arena.floats a key n | None -> Array.make n 0.0
  in
  let afloats_raw key n =
    match arena with Some a -> Dpp_util.Arena.floats_raw a key n | None -> Array.make n 0.0
  in
  let aints key n =
    match arena with Some a -> Dpp_util.Arena.ints a key n | None -> Array.make n 0
  in
  (* rigid-group membership *)
  let rigid = Array.of_list cfg.rigid_groups in
  let ng = Array.length rigid in
  let member_of = aints "gp.member_of" nc in
  Array.fill member_of 0 nc (-1);
  Array.iteri
    (fun j (dg : Dgroup.t) -> Array.iter (fun c -> member_of.(c) <- j) dg.Dgroup.cells)
    rigid;
  (* free movables: not frozen, not in a rigid group *)
  let movable_free =
    Array.of_list
      (List.filter
         (fun i -> (not (frozen i)) && member_of.(i) < 0)
         (Array.to_list (Design.movable_ids d)))
  in
  let m = Array.length movable_free in
  let nvar = m + ng in
  (* one flat-core derivation per level — or none at all when the caller
     (the flow context) already owns the views for this design *)
  let soa = match soa with Some s -> s | None -> Soa.of_design d in
  let pins = match pins with Some p -> p | None -> Pins.of_soa soa in
  let nx, ny = match cfg.grid with Some (nx, ny) -> nx, ny | None -> Grid.default_dims d in
  let grid = Grid.build ~extra_obstacles d ~nx ~ny in
  (* An unreachable density target makes lambda escalate until wirelength
     is destroyed: clamp the target to the actual utilization plus slack.
     Rigid-group members still spread (they move with their macro), so
     they count toward the load. *)
  let total_cap = Grid.total_capacity grid in
  let load_area =
    Array.fold_left
      (fun acc i ->
        if frozen i then acc
        else acc +. (soa.Soa.width.(i) *. soa.Soa.height.(i)))
      0.0 (Design.movable_ids d)
  in
  let util_eff = if total_cap > 0.0 then load_area /. total_cap else 1.0 in
  let target_density = min 1.0 (max cfg.target_density (util_eff +. 0.05)) in
  let bell = Bell.create ~frozen ~soa d ~grid ~target_density in
  (* Kernel selection: with a pool, wirelength goes through Par_grad
     (bit-identical to the serial kernels) and density through the
     chunk-merged Bell kernels (bit-stable across worker counts).  Both
     are used even when the pool has one worker, so a flow's trajectory
     depends only on whether a pool was supplied — never on its size. *)
  let par = Option.map (fun pool -> Par_grad.create pool pins) cfg.pool in
  let bell_par = Option.map (fun _ -> Bell.par_create bell) cfg.pool in
  let model_value ~gamma ~cx ~cy =
    match cfg.pool, par with
    | Some pool, Some pg -> Par_grad.value pg pool cfg.model ~gamma ~cx ~cy
    | _ -> Model.value cfg.model pins ~gamma ~cx ~cy
  in
  let model_value_grad ~gamma ~cx ~cy ~gx ~gy =
    match cfg.pool, par with
    | Some pool, Some pg -> Par_grad.value_grad pg pool cfg.model ~gamma ~cx ~cy ~gx ~gy
    | _ -> Model.value_grad cfg.model pins ~gamma ~cx ~cy ~gx ~gy
  in
  let bell_value ~cx ~cy =
    match cfg.pool, bell_par with
    | Some pool, Some bp -> Bell.par_value bp pool ~cx ~cy
    | _ -> Bell.value bell ~cx ~cy
  in
  let bell_value_grad ~cx ~cy ~gx ~gy =
    match cfg.pool, bell_par with
    | Some pool, Some bp -> Bell.par_value_grad bp pool ~cx ~cy ~gx ~gy
    | _ -> Bell.value_grad bell ~cx ~cy ~gx ~gy
  in
  (* ----- routability state (RUDY feedback) -----

     Every [rt_interval] rounds the RUDY map is evaluated over the current
     coordinates, then (a) cells sitting in bins whose demand/supply ratio
     exceeds [rt_overflow] get their bell normaliser scaled up — virtual
     area only the density force sees — under a total budget of
     [rt_max_inflate * movable area], deflating again once their bin
     recovers; and (b) the per-bin excess field becomes a congestion
     penalty [mu * sum_i area_i * C(x_i, y_i)] with [C] the bilinear
     interpolation of the excess over bin centers, held fixed until the
     next evaluation.  Every step below is either serial in ascending cell
     order or routed through the pooled chunk-merged kernels, so the
     trajectory stays independent of the worker count. *)
  let rt_on = cfg.routability && cfg.rt_interval > 0 in
  let rt_cells =
    if not rt_on then [||]
    else
      Array.of_list
        (List.filter (fun i -> not (frozen i)) (Array.to_list (Design.movable_ids d)))
  in
  let inflate =
    if rt_on then begin
      let a = afloats_raw "gp.inflate" nc in
      Array.fill a 0 nc 1.0;
      a
    end
    else [||]
  in
  let rt_budget = cfg.rt_max_inflate *. load_area in
  let rt_cell_max = 2.0 in
  let gxc = afloats "gp.gxc" nc and gyc = afloats "gp.gyc" nc in
  let mu = ref 0.0 in
  let rt_field : (Rudy.t * float array) option ref = ref None in
  let rt_trace = ref [] in
  let rt_best = ref infinity in
  (* bilinear sample of the excess field at (x, y): value and gradient.
     Outside the bin-center lattice the field is extended constant, so the
     gradient vanishes there. *)
  let congest_sample (r : Rudy.t) p x y =
    let fx = ((x -. d.Design.die.Rect.xl) /. r.Rudy.bin_w) -. 0.5 in
    let fy = ((y -. d.Design.die.Rect.yl) /. r.Rudy.bin_h) -. 0.5 in
    let ux = max 0.0 (min (float_of_int (r.Rudy.nx - 1)) fx) in
    let uy = max 0.0 (min (float_of_int (r.Rudy.ny - 1)) fy) in
    let ix = min (max 0 (r.Rudy.nx - 2)) (int_of_float ux) in
    let iy = min (max 0 (r.Rudy.ny - 2)) (int_of_float uy) in
    if r.Rudy.nx < 2 || r.Rudy.ny < 2 then p.((iy * r.Rudy.nx) + ix), 0.0, 0.0
    else begin
      let tx = ux -. float_of_int ix and ty = uy -. float_of_int iy in
      let b = (iy * r.Rudy.nx) + ix in
      let p00 = p.(b) and p10 = p.(b + 1) in
      let p01 = p.(b + r.Rudy.nx) and p11 = p.(b + r.Rudy.nx + 1) in
      let v =
        ((1.0 -. tx) *. (1.0 -. ty) *. p00)
        +. (tx *. (1.0 -. ty) *. p10)
        +. ((1.0 -. tx) *. ty *. p01)
        +. (tx *. ty *. p11)
      in
      let dx =
        if Float.equal ux fx then
          (((1.0 -. ty) *. (p10 -. p00)) +. (ty *. (p11 -. p01))) /. r.Rudy.bin_w
        else 0.0
      in
      let dy =
        if Float.equal uy fy then
          (((1.0 -. tx) *. (p01 -. p00)) +. (tx *. (p11 -. p10))) /. r.Rudy.bin_h
        else 0.0
      in
      v, dx, dy
    end
  in
  let congest_value ~cx ~cy =
    match !rt_field with
    | None -> 0.0
    | Some (r, p) ->
      let acc = ref 0.0 in
      Array.iter
        (fun i ->
          let a = soa.Soa.width.(i) *. soa.Soa.height.(i) in
          let v, _, _ = congest_sample r p cx.(i) cy.(i) in
          acc := !acc +. (a *. v))
        rt_cells;
      !acc
  in
  let congest_grad ~cx ~cy ~gx ~gy =
    match !rt_field with
    | None -> ()
    | Some (r, p) ->
      Array.iter
        (fun i ->
          let a = soa.Soa.width.(i) *. soa.Soa.height.(i) in
          let _, dx, dy = congest_sample r p cx.(i) cy.(i) in
          gx.(i) <- gx.(i) +. (a *. dx);
          gy.(i) <- gy.(i) +. (a *. dy))
        rt_cells
  in
  (* fused congestion value+gradient: same cell order and value expression
     as [congest_value], so the value is bit-identical to it *)
  let congest_value_grad ~cx ~cy ~gx ~gy =
    match !rt_field with
    | None -> 0.0
    | Some (r, p) ->
      let acc = ref 0.0 in
      Array.iter
        (fun i ->
          let a = soa.Soa.width.(i) *. soa.Soa.height.(i) in
          let v, dx, dy = congest_sample r p cx.(i) cy.(i) in
          acc := !acc +. (a *. v);
          gx.(i) <- gx.(i) +. (a *. dx);
          gy.(i) <- gy.(i) +. (a *. dy))
        rt_cells;
      !acc
  in
  (* working copies of the full center arrays; fixed/frozen entries never
     change *)
  let wx = afloats_raw "gp.wx" nc and wy = afloats_raw "gp.wy" nc in
  Array.blit cx 0 wx 0 nc;
  Array.blit cy 0 wy 0 nc;
  let gx = afloats "gp.gx" nc and gy = afloats "gp.gy" nc in
  let gxd = afloats "gp.gxd" nc and gyd = afloats "gp.gyd" nc in
  let gxa = afloats "gp.gxa" nc and gya = afloats "gp.gya" nc in
  (* variable packing: [x of free cells, x of group origins,
                        y of free cells, y of group origins] *)
  let scatter v =
    for k = 0 to m - 1 do
      wx.(movable_free.(k)) <- v.(k);
      wy.(movable_free.(k)) <- v.(nvar + k)
    done;
    for j = 0 to ng - 1 do
      let dg = rigid.(j) in
      let ox = v.(m + j) and oy = v.(nvar + m + j) in
      Array.iteri
        (fun i c ->
          wx.(c) <- ox +. dg.Dgroup.off_x.(i);
          wy.(c) <- oy +. dg.Dgroup.off_y.(i))
        dg.Dgroup.cells
    done
  in
  let die = d.Design.die in
  let half_w = afloats_raw "gp.half_w" m and half_h = afloats_raw "gp.half_h" m in
  for k = 0 to m - 1 do
    half_w.(k) <- soa.Soa.width.(movable_free.(k)) /. 2.0;
    half_h.(k) <- soa.Soa.height.(movable_free.(k)) /. 2.0
  done;
  let project v =
    for k = 0 to m - 1 do
      let hw = half_w.(k) and hh = half_h.(k) in
      let lo_x = die.Rect.xl +. hw and hi_x = die.Rect.xh -. hw in
      let lo_y = die.Rect.yl +. hh and hi_y = die.Rect.yh -. hh in
      if v.(k) < lo_x then v.(k) <- lo_x else if v.(k) > hi_x then v.(k) <- hi_x;
      if v.(nvar + k) < lo_y then v.(nvar + k) <- lo_y
      else if v.(nvar + k) > hi_y then v.(nvar + k) <- hi_y
    done;
    for j = 0 to ng - 1 do
      let dg = rigid.(j) in
      let hi_x = max die.Rect.xl (die.Rect.xh -. dg.Dgroup.width) in
      let hi_y = max die.Rect.yl (die.Rect.yh -. dg.Dgroup.height) in
      if v.(m + j) < die.Rect.xl then v.(m + j) <- die.Rect.xl
      else if v.(m + j) > hi_x then v.(m + j) <- hi_x;
      if v.(nvar + m + j) < die.Rect.yl then v.(nvar + m + j) <- die.Rect.yl
      else if v.(nvar + m + j) > hi_y then v.(nvar + m + j) <- hi_y
    done
  in
  let gamma0 = cfg.gamma_frac *. max grid.Grid.bin_w grid.Grid.bin_h in
  let gamma = ref gamma0 in
  let lambda = ref 0.0 in
  let beta = ref 0.0 in
  let soft = cfg.groups in
  let eval v =
    scatter v;
    let w = model_value ~gamma:!gamma ~cx:wx ~cy:wy in
    let dv = if !lambda > 0.0 then bell_value ~cx:wx ~cy:wy else 0.0 in
    let av = if !beta > 0.0 && soft <> [] then Alignment.value soft ~cx:wx ~cy:wy else 0.0 in
    let cv = if !mu > 0.0 then congest_value ~cx:wx ~cy:wy else 0.0 in
    w +. (!lambda *. dv) +. (!beta *. av) +. (!mu *. cv)
  in
  let gather g =
    for k = 0 to m - 1 do
      let i = movable_free.(k) in
      g.(k) <- gx.(i) +. (!lambda *. gxd.(i)) +. (!beta *. gxa.(i)) +. (!mu *. gxc.(i));
      g.(nvar + k) <- gy.(i) +. (!lambda *. gyd.(i)) +. (!beta *. gya.(i)) +. (!mu *. gyc.(i))
    done;
    for j = 0 to ng - 1 do
      let sx = ref 0.0 and sy = ref 0.0 in
      Array.iter
        (fun c ->
          sx :=
            !sx +. gx.(c) +. (!lambda *. gxd.(c)) +. (!beta *. gxa.(c)) +. (!mu *. gxc.(c));
          sy :=
            !sy +. gy.(c) +. (!lambda *. gyd.(c)) +. (!beta *. gya.(c)) +. (!mu *. gyc.(c)))
        rigid.(j).Dgroup.cells;
      g.(m + j) <- !sx;
      g.(nvar + m + j) <- !sy
    done
  in
  (* One fused sweep per term: every *_value_grad kernel returns the same
     value its value-only twin computes (identical accumulation order), so
     the objective comes out of the gradient pass for free — the combining
     expression mirrors [eval] exactly for bit-identity. *)
  let fill_gradients_value () =
    Array.fill gx 0 nc 0.0;
    Array.fill gy 0 nc 0.0;
    let w = model_value_grad ~gamma:!gamma ~cx:wx ~cy:wy ~gx ~gy in
    Array.fill gxd 0 nc 0.0;
    Array.fill gyd 0 nc 0.0;
    let dv = if !lambda > 0.0 then bell_value_grad ~cx:wx ~cy:wy ~gx:gxd ~gy:gyd else 0.0 in
    Array.fill gxa 0 nc 0.0;
    Array.fill gya 0 nc 0.0;
    let av =
      if !beta > 0.0 && soft <> [] then
        Alignment.value_grad soft ~cx:wx ~cy:wy ~gx:gxa ~gy:gya
      else 0.0
    in
    let cv =
      if !mu > 0.0 then begin
        Array.fill gxc 0 nc 0.0;
        Array.fill gyc 0 nc 0.0;
        congest_value_grad ~cx:wx ~cy:wy ~gx:gxc ~gy:gyc
      end
      else 0.0
    in
    w +. (!lambda *. dv) +. (!beta *. av) +. (!mu *. cv)
  in
  let fill_gradients () = ignore (fill_gradients_value ()) in
  let grad v g =
    scatter v;
    fill_gradients ();
    gather g
  in
  let eval_grad v g =
    scatter v;
    let f = fill_gradients_value () in
    gather g;
    f
  in
  (* initial variable vector (every slot is written below) *)
  let v0 = afloats_raw "gp.v0" (2 * nvar) in
  for k = 0 to m - 1 do
    v0.(k) <- cx.(movable_free.(k));
    v0.(nvar + k) <- cy.(movable_free.(k))
  done;
  for j = 0 to ng - 1 do
    let ox, oy = Dgroup.origin_of_positions rigid.(j) ~cx ~cy in
    v0.(m + j) <- ox;
    v0.(nvar + m + j) <- oy
  done;
  project v0;
  scatter v0;
  (* lambda / beta normalisation at the start point *)
  Array.fill gx 0 nc 0.0;
  Array.fill gy 0 nc 0.0;
  ignore (model_value_grad ~gamma:!gamma ~cx:wx ~cy:wy ~gx ~gy);
  let wl_grad_norm = grad_l1 gx +. grad_l1 gy in
  Array.fill gxd 0 nc 0.0;
  Array.fill gyd 0 nc 0.0;
  ignore (bell_value_grad ~cx:wx ~cy:wy ~gx:gxd ~gy:gyd);
  let dens_grad_norm = grad_l1 gxd +. grad_l1 gyd in
  lambda := if dens_grad_norm > 0.0 then wl_grad_norm /. dens_grad_norm else 1.0;
  if cfg.beta > 0.0 && soft <> [] then begin
    Array.fill gxa 0 nc 0.0;
    Array.fill gya 0 nc 0.0;
    ignore (Alignment.value_grad soft ~cx:wx ~cy:wy ~gx:gxa ~gy:gya);
    let a_norm = grad_l1 gxa +. grad_l1 gya in
    beta := if a_norm > 0.0 then cfg.beta *. wl_grad_norm /. a_norm else 0.0
  end;
  let problem = { Nlcg.n = 2 * nvar; eval; grad; eval_grad = Some eval_grad } in
  let v = ref v0 in
  let trace = ref [] in
  let stop = ref false in
  let round = ref 0 in
  let final_overflow = ref infinity in
  (* Best-seen tracking with a scalarized score: the legalizer can absorb
     residual overflow at a wirelength cost roughly proportional to it, so
     solutions compete on [hpwl * (1 + k * excess_overflow)] rather than on
     a hard feasible/infeasible split (which lets lambda escalation
     over-spread designs that reach the target late).  The loop also stops
     once overflow stagnates, instead of letting lambda erase the
     wirelength term entirely. *)
  (* raw + blit: the recycled best_x/best_y may be this run's own [cx]/[cy]
     inputs when the caller loops placements through the same arena *)
  let best_x = afloats_raw "gp.best_x" nc and best_y = afloats_raw "gp.best_y" nc in
  Array.blit wx 0 best_x 0 nc;
  Array.blit wy 0 best_y 0 nc;
  let best_score = ref infinity and best_ovf = ref infinity in
  (* With routability on, iterates also compete on their ACE congestion
     excess: without the term, best-seen would keep a pre-inflation
     iterate whose wirelength is marginally better and throw the
     congestion work away. *)
  let score ~overflow ~hpwl ~ace =
    let rt_pen = match ace with None -> 0.0 | Some a -> max 0.0 (a -. cfg.rt_overflow) in
    hpwl *. (1.0 +. (3.0 *. max 0.0 (overflow -. cfg.overflow_target)) +. rt_pen)
  in
  let stagnant = ref 0 in
  let consider ~overflow ~hpwl ~ace =
    let sc = score ~overflow ~hpwl ~ace in
    if sc < !best_score then begin
      Array.blit wx 0 best_x 0 (Array.length wx);
      Array.blit wy 0 best_y 0 (Array.length wy);
      best_score := sc;
      best_ovf := overflow
    end;
    if overflow > cfg.overflow_target && overflow > 0.98 *. !final_overflow then incr stagnant
    else stagnant := 0
  in
  (* post-solve RUDY measurement — every round when routability is on *)
  let rt_measure () =
    let r = Rudy.compute ?pool:cfg.pool ?arena ~pins d ~cx:wx ~cy:wy in
    r, Rudy.stats r
  in
  (* steering: refresh the fixed congestion field, update the inflation
     ledger under its budget, renormalise mu — all serial in ascending
     cell order (the RUDY map itself came off the pooled scatter) *)
  let rt_stall = ref 0 and rt_prev_ace = ref infinity in
  let rt_virtual_area () =
    Array.fold_left
      (fun acc i -> acc +. ((inflate.(i) -. 1.0) *. soa.Soa.width.(i) *. soa.Soa.height.(i)))
      0.0 rt_cells
  in
  let rt_steer (r : Rudy.t) (s : Rudy.stats) =
    let nb = Array.length r.Rudy.demand in
    let p = afloats_raw "gp.rt_excess" nb in
    for b = 0 to nb - 1 do
      p.(b) <- max 0.0 ((r.Rudy.demand.(b) /. r.Rudy.supply) -. cfg.rt_overflow)
    done;
    rt_field := Some (r, p);
    let clamp_ix v = max 0 (min (r.Rudy.nx - 1) v) in
    let clamp_iy v = max 0 (min (r.Rudy.ny - 1) v) in
    Array.iter
      (fun i ->
        let ix =
          clamp_ix (int_of_float ((wx.(i) -. d.Design.die.Rect.xl) /. r.Rudy.bin_w))
        in
        let iy =
          clamp_iy (int_of_float ((wy.(i) -. d.Design.die.Rect.yl) /. r.Rudy.bin_h))
        in
        let ratio = r.Rudy.demand.((iy * r.Rudy.nx) + ix) /. r.Rudy.supply in
        if ratio > cfg.rt_overflow then
          inflate.(i) <-
            min rt_cell_max (inflate.(i) *. (1.0 +. min 0.25 (ratio -. cfg.rt_overflow)))
        else if ratio < 0.9 *. cfg.rt_overflow then
          inflate.(i) <- max 1.0 (inflate.(i) *. 0.9))
      rt_cells;
    let va = rt_virtual_area () in
    let va =
      if va > rt_budget && va > 0.0 then begin
        (* uniform scale-back of every cell's excess keeps the budget an
           invariant, not a soft goal *)
        let sc = rt_budget /. va in
        Array.iter (fun i -> inflate.(i) <- 1.0 +. ((inflate.(i) -. 1.0) *. sc)) rt_cells;
        rt_virtual_area ()
      end
      else va
    in
    Bell.set_inflation bell inflate;
    Array.fill gx 0 nc 0.0;
    Array.fill gy 0 nc 0.0;
    ignore (model_value_grad ~gamma:!gamma ~cx:wx ~cy:wy ~gx ~gy);
    Array.fill gxc 0 nc 0.0;
    Array.fill gyc 0 nc 0.0;
    congest_grad ~cx:wx ~cy:wy ~gx:gxc ~gy:gyc;
    let c_norm = grad_l1 gxc +. grad_l1 gyc in
    mu := (if c_norm > 0.0 then 0.5 *. (grad_l1 gx +. grad_l1 gy) /. c_norm else 0.0);
    let inflated =
      Array.fold_left (fun n i -> if inflate.(i) > 1.0 then n + 1 else n) 0 rt_cells
    in
    rt_best := min !rt_best s.Rudy.ace_ratio;
    rt_trace :=
      {
        rt_round = !round;
        rt_max = s.Rudy.max_ratio;
        rt_ace = s.Rudy.ace_ratio;
        rt_overflowed = s.Rudy.overflowed_bins;
        rt_best = !rt_best;
        rt_inflated = inflated;
        rt_virtual = va;
        rt_budget;
      }
      :: !rt_trace
  in
  while (not !stop) && !round < cfg.rounds do
    incr round;
    let options =
      {
        Nlcg.default_options with
        Nlcg.max_iter = cfg.inner_iters;
        grad_tol = 1e-9;
        f_tol = 1e-7;
        initial_step = max grid.Grid.bin_w grid.Grid.bin_h;
        project = Some project;
      }
    in
    let r = Nlcg.minimize ?arena ~options problem !v in
    v := r.Nlcg.x;
    scatter !v;
    (* Overflow is measured on the free cells only: rigid arrays are ~100%
       dense by construction, so counting them would eat most of the
       overflow budget and stop the loop while the glue is still clumped.
       Their current footprints become obstacles for the measurement. *)
    let overflow =
      if ng = 0 then Overflow.total_overflow ~frozen d grid ~target_density ~cx:wx ~cy:wy
      else begin
        let array_rects =
          Array.to_list
            (Array.mapi
               (fun j (dg : Dgroup.t) ->
                 let ox = !v.(m + j) and oy = !v.(nvar + m + j) in
                 Rect.make ~xl:ox ~yl:oy ~xh:(ox +. dg.Dgroup.width)
                   ~yh:(oy +. dg.Dgroup.height))
               rigid)
        in
        let grid_eval = Grid.build ~extra_obstacles:(extra_obstacles @ array_rects) d ~nx ~ny in
        let frozen_eval i = frozen i || member_of.(i) >= 0 in
        Overflow.total_overflow ~frozen:frozen_eval d grid_eval ~target_density ~cx:wx ~cy:wy
      end
    in
    let hpwl = Hpwl.total pins ~cx:wx ~cy:wy in
    let align_error = if soft <> [] then Alignment.total_error soft ~cx:wx ~cy:wy else 0.0 in
    let info =
      {
        round = !round;
        hpwl;
        overflow;
        gamma = !gamma;
        lambda = !lambda;
        objective = r.Nlcg.f;
        align_error;
      }
    in
    trace := info :: !trace;
    (match on_round with Some f -> f info | None -> ());
    let rt_ms = if rt_on then Some (rt_measure ()) else None in
    consider ~overflow ~hpwl ~ace:(Option.map (fun (_, s) -> s.Rudy.ace_ratio) rt_ms);
    final_overflow := overflow;
    (* With routability on, a density-feasible but congested iterate keeps
       the loop alive (the inflate/retry loop) until the ACE excess clears
       or stalls. *)
    let congested =
      match rt_ms with
      | Some (_, s) ->
        let c = s.Rudy.ace_ratio > cfg.rt_overflow in
        (* the stall counter judges whether steering is still paying off, so
           it only runs once at least one steering update has been applied *)
        if c && !rt_trace <> [] then begin
          if s.Rudy.ace_ratio > 0.995 *. !rt_prev_ace then incr rt_stall else rt_stall := 0;
          rt_prev_ace := s.Rudy.ace_ratio
        end;
        c
      | None -> false
    in
    if
      (overflow <= cfg.overflow_target || !stagnant >= 4)
      && ((not congested) || !rt_stall >= 3)
    then stop := true
    else begin
      if overflow > cfg.overflow_target then begin
        lambda := !lambda *. cfg.lambda_mult;
        gamma := max (!gamma *. cfg.gamma_shrink) (0.02 *. gamma0);
        (* the soft alignment force tightens along with the density force *)
        if !beta > 0.0 then beta := !beta *. sqrt cfg.lambda_mult
      end;
      if rt_on && !round mod cfg.rt_interval = 0 then
        match rt_ms with Some (r, s) -> rt_steer r s | None -> ()
    end
  done;
  (* ledger close: the virtual area is a per-solve artifact — deflate
     everything so the density model (shared [bell] state) and the trace
     both end with zero inflation outstanding *)
  if rt_on then begin
    Array.fill inflate 0 nc 1.0;
    Bell.reset_inflation bell;
    match !rt_trace with
    | [] -> ()
    | last :: _ ->
      rt_trace :=
        { last with rt_round = !round; rt_inflated = 0; rt_virtual = 0.0 } :: !rt_trace
  end;
  (* return the best solution seen, not necessarily the last iterate *)
  Array.blit best_x 0 wx 0 (Array.length wx);
  Array.blit best_y 0 wy 0 (Array.length wy);
  {
    cx = best_x;
    cy = best_y;
    trace = List.rev !trace;
    final_overflow = (if !best_score = infinity then !final_overflow else !best_ovf);
    final_hpwl = Hpwl.total pins ~cx:wx ~cy:wy;
    rt_trace = List.rev !rt_trace;
  }

(* ----- multilevel V-cycle ----- *)

type level_info = {
  level : int;
  movables : int;
  rounds_run : int;
  hpwl : float;
  overflow : float;
  wall_s : float;
}

type ml_result = { result : result; level_trace : level_info list }

(* Coarse levels solve a smaller, structurally simpler problem: group
   clusters are single cells there, so the rigid/soft machinery is off,
   and the loose overflow target just has to spread clusters enough that
   interpolation hands the next level a de-clumped start. *)
let coarse_config cfg =
  {
    cfg with
    inner_iters = max 15 (cfg.inner_iters / 2);
    overflow_target = max cfg.overflow_target 0.10;
    grid = None;
    beta = 0.0;
    groups = [];
    rigid_groups = [];
  }

(* The flat refinement starts from an interpolated placement that is
   already globally spread, so it needs far fewer lambda rounds than a
   cold start — this is where the multilevel speedup comes from. *)
let refine_config cfg = { cfg with rounds = min cfg.rounds (max 4 (cfg.rounds / 3)) }

let run_multilevel ?arena ?soa ?pins ?on_round ?on_level (d : Design.t) cfg
    ~(levels : Dpp_coarsen.level list) ~cx ~cy =
  match levels with
  | [] -> { result = run ?arena ?soa ?pins ?on_round d cfg ~cx ~cy; level_trace = [] }
  | levels ->
    let larr = Array.of_list levels in
    let nl = Array.length larr in
    (* restriction: propagate the current centers up the hierarchy *)
    let coords = Array.make (nl + 1) (cx, cy) in
    coords.(0) <- (Array.copy cx, Array.copy cy);
    for k = 0 to nl - 1 do
      let fcx, fcy = coords.(k) in
      coords.(k + 1) <- Dpp_coarsen.cluster_centers ?arena larr.(k) ~cx:fcx ~cy:fcy
    done;
    let timer = Dpp_util.Timer.create () in
    let trace = ref [] in
    (* coarsest-first: solve each level, prolongate into the next finer *)
    for k = nl - 1 downto 0 do
      let lvl = larr.(k) in
      let ccx, ccy = coords.(k + 1) in
      let name = Printf.sprintf "L%d" (k + 1) in
      let r =
        Dpp_util.Timer.time timer name (fun () ->
            run lvl.Dpp_coarsen.coarse (coarse_config cfg) ~cx:ccx ~cy:ccy)
      in
      let info =
        {
          level = k + 1;
          movables = Array.length (Design.movable_ids lvl.Dpp_coarsen.coarse);
          rounds_run = List.length r.trace;
          hpwl = r.final_hpwl;
          overflow = r.final_overflow;
          wall_s = Dpp_util.Timer.get timer name;
        }
      in
      trace := info :: !trace;
      (match on_level with Some f -> f info | None -> ());
      let fcx, fcy = coords.(k) in
      Dpp_coarsen.interpolate lvl ~ccx:r.cx ~ccy:r.cy ~cx:fcx ~cy:fcy
    done;
    let fcx, fcy = coords.(0) in
    (* only the flat refinement shares the arena: the coarse levels all
       have different sizes, so recycling across them would just thrash
       the buffers (their views are also per-level by construction) *)
    let r = run ?arena ?soa ?pins ?on_round d (refine_config cfg) ~cx:fcx ~cy:fcy in
    { result = r; level_trace = !trace }
