module Design = Dpp_netlist.Design
module Soa = Dpp_netlist.Soa
module Rect = Dpp_geom.Rect
module Pool = Dpp_par.Pool

type t = {
  assignment : int array;
  cx : float array;
  cy : float array;
  failed : int list;
}

let src = Logs.Src.create "dpp.legal" ~doc:"legalization"

module Log = (val Logs.src_log src : Logs.LOG)

(* Free segments of row [r]: the die span minus obstacle x-intervals, as
   ascending (lo, hi) pairs.  Each segment is shrunk inward to the site
   grid (origin [die.xl]): obstacles need not be site-aligned (foreign
   benchmarks, pad rings at fractional x), but placed cells are, so a
   cell flush against a fractional segment edge would be pushed into the
   obstacle by the later site snap.  Aligning here makes the capacity the
   legalizer fits against and the positions Abacus emits agree. *)
let row_segments (d : Design.t) obstacles r =
  let die = d.Design.die in
  let site = d.Design.site_width in
  let align_up v = die.Rect.xl +. (ceil (((v -. die.Rect.xl) /. site) -. 1e-9) *. site) in
  let align_down v = die.Rect.xl +. (floor (((v -. die.Rect.xl) /. site) +. 1e-9) *. site) in
  let y_lo = Design.row_y d r and y_hi = Design.row_y d r +. d.Design.row_height in
  let blocked =
    List.filter_map
      (fun (ob : Rect.t) ->
        if ob.Rect.yl < y_hi -. 1e-9 && ob.Rect.yh > y_lo +. 1e-9 then
          Some (max die.Rect.xl ob.Rect.xl, min die.Rect.xh ob.Rect.xh)
        else None)
      obstacles
    |> List.sort compare
  in
  let segments = ref [] in
  let add lo hi =
    let lo = align_up lo and hi = align_down hi in
    if hi -. lo > 1e-9 then segments := (lo, hi) :: !segments
  in
  let cursor = ref die.Rect.xl in
  List.iter
    (fun (lo, hi) ->
      if lo > !cursor then add !cursor lo;
      cursor := max !cursor hi)
    blocked;
  if !cursor < die.Rect.xh then add !cursor die.Rect.xh;
  List.rev !segments

let row_segments_for_test = row_segments

(* Greedy free-interval legalization, parallel over row chunks.

   Rows are split into the pool's fixed 16 chunks; each chunk owns its
   rows' {!Intervals} stores and legalizes the cells whose target row
   falls inside it, in ascending (target_x, id) order.  A cell is
   committed chunk-locally only when no row {e outside} the chunk could
   beat or tie the local best (the vertical distance to the nearest
   foreign row alone already costs more); otherwise it is spilled.
   Spills are resolved in a serial merge pass, ascending chunk order,
   searching every row.  Chunk boundaries depend only on the row count,
   chunk-local work only on the chunk's own rows and bucket, and the
   merge order is fixed — so the assignment is bit-identical at every
   worker count.

   Unlike cursor-based Tetris this never strands capacity behind a
   cursor, so it only fails when the die is genuinely overfull.  Within
   a row set, the search expands outward from the target row and stops
   once the vertical displacement alone exceeds the best cost found. *)
let run (d : Design.t) ?(pool = Pool.serial) ?arena ?soa ?(extra_obstacles = [])
    ?(skip = fun _ -> false) ?bound ~cx ~cy () =
  let s = match soa with Some s -> s | None -> Soa.of_design d in
  let nc = Soa.num_cells s in
  let nrows = d.Design.num_rows in
  let rh = d.Design.row_height in
  (* region-bounded mode: only rows overlapping [bound] get free
     intervals, and those intervals are clipped to the bound's x-span, so
     every legalized cell lands inside the bound.  Target rows are clamped
     into the bound; everything else (chunking, spill merge) is untouched,
     so the bounded run keeps the worker-count determinism contract. *)
  let row_lo, row_hi =
    match bound with
    | None -> 0, nrows
    | Some (b : Rect.t) ->
      let lo = Design.row_of_y d (b.Rect.yl +. 1e-9) in
      let hi = Design.row_of_y d (b.Rect.yh -. 1e-9) + 1 in
      max 0 lo, min nrows (max hi (lo + 1))
  in
  let clip_segments segs =
    match bound with
    | None -> segs
    | Some (b : Rect.t) ->
      List.filter_map
        (fun (lo, hi) ->
          let lo = max lo b.Rect.xl and hi = min hi b.Rect.xh in
          if hi -. lo > 1e-9 then Some (lo, hi) else None)
        segs
  in
  let fixed_rects = ref [] in
  for i = nc - 1 downto 0 do
    if Dpp_util.Compact.I8.get s.Soa.kind i = Soa.kind_fixed then
      match Rect.intersection (Soa.cell_rect s i) d.Design.die with
      | Some r -> fixed_rects := r :: !fixed_rects
      | None -> ()
  done;
  let obstacles = extra_obstacles @ !fixed_rects in
  let out_cx = Array.copy cx and out_cy = Array.copy cy in
  let assignment = Array.make nc (-1) in
  let todo = ref [] in
  for i = nc - 1 downto 0 do
    if Dpp_util.Compact.I8.get s.Soa.kind i = Soa.kind_movable && not (skip i) then
      todo := (cx.(i) -. (s.Soa.width.(i) /. 2.0), i) :: !todo
  done;
  let todo = List.sort compare !todo in
  if nrows = 0 then
    { assignment; cx = out_cx; cy = out_cy; failed = List.map snd todo }
  else begin
    (* every store is reset below before any read, so recycling the
       array across runs (the serve daemon's repeated legalizations) is
       free; the key carries the row count so a dimension change misses *)
    let stores =
      match arena with
      | Some a ->
        Dpp_util.Arena.cached a
          (Printf.sprintf "legal.stores.%d" nrows)
          (fun () -> Array.init nrows (fun _ -> Intervals.create ()))
      | None -> Array.init nrows (fun _ -> Intervals.create ())
    in
    (* best (cost, row, interval index, xl) over rows [lo, hi), expanding
       outward from the target row with the vertical-displacement prune *)
    let search_rows ~lo ~hi target_row w target_xl =
      let best = ref None in
      let consider r =
        match Intervals.best_fit stores.(r) ~w ~target:target_xl with
        | None -> ()
        | Some (dx, idx, xl) ->
          let dy = abs_float (float_of_int (r - target_row)) *. rh in
          let cost = (dx *. dx) +. (dy *. dy) in
          (match !best with
          | Some (bc, _, _, _) when bc <= cost -> ()
          | Some _ | None -> best := Some (cost, r, idx, xl))
      in
      let dr = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let lo_row = target_row - !dr and hi_row = target_row + !dr in
        let any_valid = ref false in
        if lo_row >= lo && lo_row < hi then begin
          any_valid := true;
          consider lo_row
        end;
        if !dr > 0 && hi_row < hi && hi_row >= lo then begin
          any_valid := true;
          consider hi_row
        end;
        let vert = float_of_int !dr *. rh in
        (match !best with
        | Some (bc, _, _, _) when vert *. vert > bc -> continue_ := false
        | Some _ | None -> ());
        if not !any_valid then continue_ := false;
        incr dr
      done;
      !best
    in
    let accept i r idx xl w =
      Intervals.alloc stores.(r) idx ~xl ~w;
      assignment.(i) <- r;
      out_cx.(i) <- xl +. (w /. 2.0);
      out_cy.(i) <- Design.row_y d r +. (rh /. 2.0)
    in
    (* bucket cells by the chunk owning their target row *)
    let chunk_of_row = Array.make nrows 0 in
    for c = 0 to Pool.chunk_count - 1 do
      let lo, hi = Pool.chunk_bounds ~n:nrows c in
      for r = lo to hi - 1 do
        chunk_of_row.(r) <- c
      done
    done;
    let buckets = Array.make Pool.chunk_count [] in
    List.iter
      (fun (target_xl, i) ->
        let tr = Design.row_of_y d (cy.(i) -. (s.Soa.height.(i) /. 2.0)) in
        let tr = max row_lo (min (row_hi - 1) tr) in
        buckets.(chunk_of_row.(tr)) <- (target_xl, tr, i) :: buckets.(chunk_of_row.(tr)))
      todo;
    Array.iteri (fun c b -> buckets.(c) <- List.rev b) buckets;
    let spills = Array.make Pool.chunk_count [] in
    Pool.iter_chunks pool ~n:nrows (fun ~worker:_ ~chunk ~lo ~hi ->
        for r = lo to hi - 1 do
          Intervals.reset stores.(r)
            (if r < row_lo || r >= row_hi then []
             else clip_segments (row_segments d obstacles r))
        done;
        let spill = ref [] in
        List.iter
          (fun (target_xl, target_row, i) ->
            let w = s.Soa.width.(i) in
            (* cheapest any row outside this chunk could possibly be *)
            let foreign_vert =
              let below = if lo > 0 then Some (target_row - lo + 1) else None in
              let above = if hi < nrows then Some (hi - target_row) else None in
              match below, above with
              | None, None -> infinity
              | Some s, None | None, Some s -> float_of_int s *. rh
              | Some a, Some b -> float_of_int (min a b) *. rh
            in
            match search_rows ~lo ~hi target_row w target_xl with
            | Some (bc, r, idx, xl) when foreign_vert *. foreign_vert > bc ->
              accept i r idx xl w
            | Some _ | None -> spill := (target_xl, target_row, i) :: !spill)
          buckets.(chunk);
        spills.(chunk) <- List.rev !spill);
    (* serial merge: spilled cells see every row, ascending chunk order *)
    let failed = ref [] in
    for c = 0 to Pool.chunk_count - 1 do
      List.iter
        (fun (target_xl, target_row, i) ->
          let w = s.Soa.width.(i) in
          match search_rows ~lo:0 ~hi:nrows target_row w target_xl with
          | Some (_, r, idx, xl) -> accept i r idx xl w
          | None ->
            Log.err (fun m ->
                m "no row fits cell %s (w=%.1f)" s.Soa.cell_name.(i) w);
            failed := i :: !failed)
        spills.(c)
    done;
    { assignment; cx = out_cx; cy = out_cy; failed = List.rev !failed }
  end
