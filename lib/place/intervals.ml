(* A sorted-array store of disjoint free x-intervals — the legalizer's
   per-row capacity structure.  Replaces the former (lo, hi) list: queries
   binary-search to the target and expand outward with distance pruning
   instead of scanning every interval, and allocations split exactly the
   queried interval (indexed, so two intervals with identical bounds can
   never be confused). *)

type t = {
  mutable lo : float array;
  mutable hi : float array;
  mutable len : int;
}

let create () = { lo = Array.make 8 0.0; hi = Array.make 8 0.0; len = 0 }

let length t = t.len

let get t k =
  if k < 0 || k >= t.len then invalid_arg "Intervals.get";
  t.lo.(k), t.hi.(k)

let to_list t = List.init t.len (fun k -> t.lo.(k), t.hi.(k))

let ensure t n =
  if n > Array.length t.lo then begin
    let cap = max n (2 * Array.length t.lo) in
    let lo = Array.make cap 0.0 and hi = Array.make cap 0.0 in
    Array.blit t.lo 0 lo 0 t.len;
    Array.blit t.hi 0 hi 0 t.len;
    t.lo <- lo;
    t.hi <- hi
  end

let reset t segments =
  t.len <- 0;
  List.iter
    (fun (l, h) ->
      ensure t (t.len + 1);
      t.lo.(t.len) <- l;
      t.hi.(t.len) <- h;
      t.len <- t.len + 1)
    segments

let of_segments segments =
  let t = create () in
  reset t segments;
  t

(* Rightmost interval with lo <= target, or -1. *)
let locate t target =
  let l = ref 0 and r = ref (t.len - 1) and ans = ref (-1) in
  while !l <= !r do
    let m = (!l + !r) / 2 in
    if t.lo.(m) <= target then begin
      ans := m;
      l := m + 1
    end
    else r := m - 1
  done;
  !ans

let best_fit t ~w ~target =
  (* least |xl - target| over intervals that fit a width-w cell; strict
     improvement with a center-outward scan, pruned by the distance lower
     bounds the sorted order provides.  [target] is the desired left
     edge. *)
  let best = ref None in
  let best_cost = ref infinity in
  let consider k =
    let lo = t.lo.(k) and hi = t.hi.(k) in
    if hi -. lo >= w -. 1e-9 then begin
      let xl = min (max target lo) (hi -. w) in
      let cost = abs_float (xl -. target) in
      if cost < !best_cost then begin
        best_cost := cost;
        best := Some (cost, k, xl)
      end
    end
  in
  let k0 = locate t target in
  if k0 >= 0 then consider k0;
  (* rightward: feasible xl >= lo.(k) > target, so cost >= lo.(k) - target *)
  let k = ref (k0 + 1) in
  while !k < t.len && t.lo.(!k) -. target < !best_cost do
    consider !k;
    incr k
  done;
  (* leftward: feasible xl <= hi.(k) - w < target, so cost >= target - hi + w *)
  let k = ref (k0 - 1) in
  while !k >= 0 && target -. t.hi.(!k) +. w < !best_cost do
    consider !k;
    decr k
  done;
  !best

let remove t k =
  Array.blit t.lo (k + 1) t.lo k (t.len - k - 1);
  Array.blit t.hi (k + 1) t.hi k (t.len - k - 1);
  t.len <- t.len - 1

let insert_at t k ~lo ~hi =
  ensure t (t.len + 1);
  Array.blit t.lo k t.lo (k + 1) (t.len - k);
  Array.blit t.hi k t.hi (k + 1) (t.len - k);
  t.lo.(k) <- lo;
  t.hi.(k) <- hi;
  t.len <- t.len + 1

let alloc t k ~xl ~w =
  if k < 0 || k >= t.len then invalid_arg "Intervals.alloc";
  let lo = t.lo.(k) and hi = t.hi.(k) in
  let left = xl -. lo > 1e-9 and right = hi -. (xl +. w) > 1e-9 in
  match left, right with
  | true, true ->
    t.hi.(k) <- xl;
    insert_at t (k + 1) ~lo:(xl +. w) ~hi
  | true, false -> t.hi.(k) <- xl
  | false, true -> t.lo.(k) <- xl +. w
  | false, false -> remove t k
