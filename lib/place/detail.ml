module Design = Dpp_netlist.Design
module Soa = Dpp_netlist.Soa
module Pins = Dpp_wirelen.Pins
module Netbox = Dpp_wirelen.Netbox
module Hypergraph = Dpp_netlist.Hypergraph
module Pool = Dpp_par.Pool

type stats = { passes : int; reorder_gain : float; swap_gain : float; moves : int }

let permutations3 = [ [ 0; 1; 2 ]; [ 0; 2; 1 ]; [ 1; 0; 2 ]; [ 1; 2; 0 ]; [ 2; 0; 1 ]; [ 2; 1; 0 ] ]

(* Multi-row movable cells are never reordered, swapped or moved (a tall
   cell in a single-row slot would overlap the adjacent row); they still
   block gaps through the occupancy index, like Flip skips them. *)
let single_row (s : Soa.t) i = s.Soa.height.(i) <= s.Soa.row_height +. 1e-9

let by_x cx a b =
  let c = Float.compare cx.(a) cx.(b) in
  if c <> 0 then c else compare a b

(* Every pass follows the evaluate-parallel/commit-serial scheme: worker
   domains score candidates with the read-only {!Netbox.eval_moves}
   against the committed coordinate snapshot, writing proposals into
   per-chunk buffers; then a serial phase walks the chunks in ascending
   order, re-stages each proposal transactionally and re-checks [delta]
   against the then-current state (earlier commits may have consumed the
   gain), committing only the still-improving ones.  Chunk boundaries and
   scan orders depend on the design alone, so the result is bit-identical
   at every worker count. *)

let reorder_pass (s : Soa.t) pool nb skip (legal : Legal.t) =
  let cx = legal.Legal.cx and cy = legal.Legal.cy in
  let nrows = s.Soa.num_rows in
  (* rows -> cells sorted by x *)
  let per_row = Array.make nrows [] in
  for i = Soa.num_cells s - 1 downto 0 do
    let r = legal.Legal.assignment.(i) in
    if r >= 0 && (not (skip i)) && single_row s i then per_row.(r) <- i :: per_row.(r)
  done;
  let proposals = Array.make Pool.chunk_count [] in
  Pool.iter_chunks pool ~n:nrows (fun ~worker:_ ~chunk ~lo ~hi ->
      let props = ref [] in
      let xs = Array.make 3 0.0 and ys = Array.make 3 0.0 in
      for r = lo to hi - 1 do
        let cells = List.sort (by_x cx) per_row.(r) |> Array.of_list in
        let n = Array.length cells in
        let idx = ref 0 in
        while !idx + 2 < n do
          let w3 = [| cells.(!idx); cells.(!idx + 1); cells.(!idx + 2) |] in
          (* contiguity check: reordering across a gap/obstacle would move
             cells into occupied space *)
          let widths = Array.map (fun i -> s.Soa.width.(i)) w3 in
          let left =
            Array.fold_left min infinity
              (Array.mapi (fun k i -> cx.(i) -. (widths.(k) /. 2.0)) w3)
          in
          let total = widths.(0) +. widths.(1) +. widths.(2) in
          let right =
            Array.fold_left max neg_infinity
              (Array.mapi (fun k i -> cx.(i) +. (widths.(k) /. 2.0)) w3)
          in
          let accepted = ref false in
          if right -. left <= total +. 1e-6 then begin
            (* repack in permuted order from the left edge; keep the best
               strictly-improving permutation *)
            let best = ref 0.0 and best_perm = ref None in
            List.iter
              (fun perm ->
                let cursor = ref left in
                List.iter
                  (fun k ->
                    let w = widths.(k) in
                    xs.(k) <- !cursor +. (w /. 2.0);
                    ys.(k) <- cy.(w3.(k));
                    cursor := !cursor +. w)
                  perm;
                let delta = Netbox.eval_moves nb ~k:3 w3 xs ys in
                if delta < !best -. 1e-9 then begin
                  best := delta;
                  best_perm := Some perm
                end)
              permutations3;
            match !best_perm with
            | Some perm ->
              props := (left, w3, widths, perm) :: !props;
              accepted := true;
              (* windows of one proposal never overlap the next *)
              idx := !idx + 3
            | None -> ()
          end;
          if not !accepted then incr idx
        done
      done;
      proposals.(chunk) <- List.rev !props);
  let gain = ref 0.0 and moves = ref 0 in
  Array.iter
    (List.iter (fun (left, w3, widths, perm) ->
         let cursor = ref left in
         List.iter
           (fun k ->
             let i = w3.(k) in
             let w = widths.(k) in
             Netbox.move_cell nb i (!cursor +. (w /. 2.0)) cy.(i);
             cursor := !cursor +. w)
           perm;
         let delta = Netbox.delta nb in
         if delta < -1e-9 then begin
           Netbox.commit nb;
           gain := !gain -. delta;
           incr moves
         end
         else Netbox.rollback nb))
    proposals;
  !gain, !moves

let swap_pass (s : Soa.t) pool nb skip (legal : Legal.t) =
  let cx = legal.Legal.cx and cy = legal.Legal.cy in
  (* bucket by exact footprint (bitwise width and height), then by x
     order: candidates are the nearest few in the same bucket.  The old
     key quantized width to 1/16 site, so cells of slightly different
     widths could be swapped into overlap. *)
  let buckets = Hashtbl.create 16 in
  for i = 0 to Soa.num_cells s - 1 do
    if
      Dpp_util.Compact.I8.get s.Soa.kind i = Soa.kind_movable
      && legal.Legal.assignment.(i) >= 0
      && (not (skip i))
      && single_row s i
    then begin
      let key = Int64.bits_of_float s.Soa.width.(i), Int64.bits_of_float s.Soa.height.(i) in
      Hashtbl.replace buckets key (i :: Option.value ~default:[] (Hashtbl.find_opt buckets key))
    end
  done;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) buckets [] |> List.sort compare in
  let cands = ref [] in
  List.iter
    (fun key ->
      let arr = Array.of_list (Hashtbl.find buckets key) in
      Array.sort (by_x cx) arr;
      let n = Array.length arr in
      for k = 0 to n - 2 do
        (* try swapping with the next few cells in x order that sit on a
           different row *)
        let i = arr.(k) in
        for kj = k + 1 to min (n - 1) (k + 4) do
          let j = arr.(kj) in
          if legal.Legal.assignment.(i) <> legal.Legal.assignment.(j) then
            cands := (i, j) :: !cands
        done
      done)
    keys;
  let cands = Array.of_list (List.rev !cands) in
  let proposals = Array.make Pool.chunk_count [] in
  Pool.iter_chunks pool ~n:(Array.length cands) (fun ~worker:_ ~chunk ~lo ~hi ->
      let props = ref [] in
      let cells = Array.make 2 0 and xs = Array.make 2 0.0 and ys = Array.make 2 0.0 in
      for q = lo to hi - 1 do
        let i, j = cands.(q) in
        cells.(0) <- i;
        cells.(1) <- j;
        xs.(0) <- cx.(j);
        ys.(0) <- cy.(j);
        xs.(1) <- cx.(i);
        ys.(1) <- cy.(i);
        if Netbox.eval_moves nb ~k:2 cells xs ys < -1e-9 then props := (i, j) :: !props
      done;
      proposals.(chunk) <- List.rev !props);
  let gain = ref 0.0 and moves = ref 0 in
  Array.iter
    (List.iter (fun (i, j) ->
         (* earlier commits may have moved either cell; exchanging the
            current positions of two equal-footprint cells stays legal,
            but same-row pairs are no longer swaps *)
         if legal.Legal.assignment.(i) <> legal.Legal.assignment.(j) then begin
           let xi = cx.(i) and yi = cy.(i) and xj = cx.(j) and yj = cy.(j) in
           Netbox.move_cell nb i xj yj;
           Netbox.move_cell nb j xi yi;
           let delta = Netbox.delta nb in
           if delta < -1e-9 then begin
             Netbox.commit nb;
             let ri = legal.Legal.assignment.(i) in
             legal.Legal.assignment.(i) <- legal.Legal.assignment.(j);
             legal.Legal.assignment.(j) <- ri;
             gain := !gain -. delta;
             incr moves
           end
           else Netbox.rollback nb
         end))
    proposals;
  !gain, !moves

(* FastDP-style global move: each cell has an "optimal region" -- the
   median interval of its incident nets' bounding boxes computed without
   the cell itself.  A cell outside its region is moved into a free gap
   near the region if that lowers the HPWL of its nets. *)
let move_pass (d : Design.t) (s : Soa.t) pool nb h skip bound (legal : Legal.t) =
  let cx = legal.Legal.cx and cy = legal.Legal.cy in
  let occ = Occ.build ~soa:s d ~cx ~cy in
  let die = d.Design.die in
  (* median interval of incident-net spans along one axis, cell excluded *)
  let optimal_region i axis_pos =
    let los = ref [] and his = ref [] in
    Hypergraph.iter_nets_of_cell h i (fun n ->
        let lo = ref infinity and hi = ref neg_infinity in
        Hypergraph.iter_cells_of_net h n (fun c ->
            if c <> i then begin
              let v = axis_pos c in
              if v < !lo then lo := v;
              if v > !hi then hi := v
            end);
        if !lo <= !hi then begin
          los := !lo :: !los;
          his := !hi :: !his
        end);
    match !los with
    | [] -> None
    | _ ->
      let med l =
        let a = Array.of_list l in
        Array.sort Float.compare a;
        a.(Array.length a / 2)
      in
      let lo = med !los and hi = med !his in
      Some (min lo hi, max lo hi)
  in
  let site = d.Design.site_width in
  let align_up v =
    die.Dpp_geom.Rect.xl +. (ceil (((v -. die.Dpp_geom.Rect.xl) /. site) -. 1e-9) *. site)
  in
  let cands =
    Array.to_list (Design.movable_ids d)
    |> List.filter (fun i ->
           (not (skip i)) && legal.Legal.assignment.(i) >= 0 && single_row s i)
    |> Array.of_list
  in
  let proposals = Array.make Pool.chunk_count [] in
  Pool.iter_chunks pool ~n:(Array.length cands) (fun ~worker:_ ~chunk ~lo ~hi ->
      let props = ref [] in
      let cell1 = Array.make 1 0 and xs1 = Array.make 1 0.0 and ys1 = Array.make 1 0.0 in
      for q = lo to hi - 1 do
        let i = cands.(q) in
        let w = s.Soa.width.(i) in
        match optimal_region i (fun c -> cx.(c)), optimal_region i (fun c -> cy.(c)) with
        | Some (xlo, xhi), Some (ylo, yhi) ->
          let tx = min (max cx.(i) xlo) xhi and ty = min (max cy.(i) ylo) yhi in
          let already_there =
            abs_float (tx -. cx.(i)) < 1.0 && abs_float (ty -. cy.(i)) < d.Design.row_height
          in
          if not already_there then begin
            let target_row = Design.row_of_y d (ty -. (s.Soa.height.(i) /. 2.0)) in
            (* search free gaps in rows near the target; in region-bounded
               mode (incremental ECO) a candidate slot must keep the whole
               cell inside the bound *)
            let slot_ok r cand_cx =
              match bound with
              | None -> true
              | Some (b : Dpp_geom.Rect.t) ->
                let y_lo = Design.row_y d r in
                cand_cx -. (w /. 2.0) >= b.Dpp_geom.Rect.xl -. 1e-9
                && cand_cx +. (w /. 2.0) <= b.Dpp_geom.Rect.xh +. 1e-9
                && y_lo >= b.Dpp_geom.Rect.yl -. 1e-9
                && y_lo +. d.Design.row_height <= b.Dpp_geom.Rect.yh +. 1e-9
            in
            let best = ref None in
            for dr = -1 to 1 do
              let r = target_row + dr in
              if r >= 0 && r < d.Design.num_rows then begin
                let row_cy = Design.row_y d r +. (d.Design.row_height /. 2.0) in
                match Occ.best_gap occ r ~w ~tx ~align:align_up with
                | Some (gcost, cand_cx) when slot_ok r cand_cx ->
                  let cost = gcost +. abs_float (row_cy -. ty) in
                  (match !best with
                  | Some (bc, _, _) when bc <= cost -> ()
                  | Some _ | None -> best := Some (cost, r, cand_cx))
                | Some _ | None -> ()
              end
            done;
            match !best with
            | Some (_, r, cand_cx) ->
              cell1.(0) <- i;
              xs1.(0) <- cand_cx;
              ys1.(0) <- Design.row_y d r +. (d.Design.row_height /. 2.0);
              if Netbox.eval_moves nb ~k:1 cell1 xs1 ys1 < -1e-9 then
                props := (i, r, cand_cx) :: !props
            | None -> ()
          end
        | _, _ -> ()
      done;
      proposals.(chunk) <- List.rev !props);
  let gain = ref 0.0 and moves = ref 0 in
  Array.iter
    (List.iter (fun (i, r, cand_cx) ->
         let w = s.Soa.width.(i) in
         let xl = cand_cx -. (w /. 2.0) and xh = cand_cx +. (w /. 2.0) in
         (* an earlier commit may have taken the gap *)
         if Occ.is_free occ r ~xl ~xh ~ignore:i then begin
           let orow = legal.Legal.assignment.(i) in
           Netbox.move_cell nb i cand_cx (Design.row_y d r +. (d.Design.row_height /. 2.0));
           let delta = Netbox.delta nb in
           if delta < -1e-9 then begin
             Netbox.commit nb;
             legal.Legal.assignment.(i) <- r;
             Occ.remove occ ~row:orow ~cell:i;
             Occ.insert occ ~row:r ~cell:i ~xl ~xh;
             gain := !gain -. delta;
             incr moves
           end
           else Netbox.rollback nb
         end))
    proposals;
  !gain, !moves

let run (d : Design.t) ?(pool = Pool.serial) ?soa ?(max_passes = 3) ?(skip = fun _ -> false)
    ?bound ?netbox ?hypergraph ~legal () =
  let s = match soa with Some s -> s | None -> Soa.of_design d in
  let nb =
    match netbox with
    | Some nb -> nb
    | None -> Netbox.build (Pins.of_soa s) ~cx:legal.Legal.cx ~cy:legal.Legal.cy
  in
  let h = match hypergraph with Some h -> h | None -> Hypergraph.build d in
  let reorder_gain = ref 0.0 and swap_gain = ref 0.0 and moves = ref 0 in
  let pass = ref 0 in
  let improved = ref true in
  while !improved && !pass < max_passes do
    incr pass;
    let g1, m1 = reorder_pass s pool nb skip legal in
    let g2, m2 = swap_pass s pool nb skip legal in
    let g3, m3 = move_pass d s pool nb h skip bound legal in
    reorder_gain := !reorder_gain +. g1;
    swap_gain := !swap_gain +. g2 +. g3;
    moves := !moves + m1 + m2 + m3;
    improved := g1 +. g2 +. g3 > 1e-6
  done;
  { passes = !pass; reorder_gain = !reorder_gain; swap_gain = !swap_gain; moves = !moves }
