module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Pins = Dpp_wirelen.Pins
module Netbox = Dpp_wirelen.Netbox
module Hypergraph = Dpp_netlist.Hypergraph

type stats = { passes : int; reorder_gain : float; swap_gain : float; moves : int }

let permutations3 = [ [ 0; 1; 2 ]; [ 0; 2; 1 ]; [ 1; 0; 2 ]; [ 1; 2; 0 ]; [ 2; 0; 1 ]; [ 2; 1; 0 ] ]

let reorder_pass (d : Design.t) nb skip (legal : Legal.t) =
  let cx = legal.Legal.cx and cy = legal.Legal.cy in
  let gain = ref 0.0 and moves = ref 0 in
  (* rows -> cells sorted by x *)
  let per_row = Array.make d.Design.num_rows [] in
  for i = Design.num_cells d - 1 downto 0 do
    let r = legal.Legal.assignment.(i) in
    if r >= 0 && not (skip i) then per_row.(r) <- i :: per_row.(r)
  done;
  Array.iter
    (fun cells ->
      let cells =
        List.sort (fun a b -> Float.compare cx.(a) cx.(b)) cells |> Array.of_list
      in
      let n = Array.length cells in
      let idx = ref 0 in
      while !idx + 2 < n do
        let w3 = [| cells.(!idx); cells.(!idx + 1); cells.(!idx + 2) |] in
        (* contiguity check: reordering across a gap/obstacle would move
           cells into occupied space.  Span bounds are computed fresh from
           the live coordinates (an earlier accepted window may have
           permuted cells, so the sorted-array order can be stale). *)
        let widths = Array.map (fun i -> (Design.cell d i).Types.c_width) w3 in
        let left =
          Array.fold_left min infinity
            (Array.mapi (fun k i -> cx.(i) -. (widths.(k) /. 2.0)) w3)
        in
        let total = widths.(0) +. widths.(1) +. widths.(2) in
        let right =
          Array.fold_left max neg_infinity
            (Array.mapi (fun k i -> cx.(i) +. (widths.(k) /. 2.0)) w3)
        in
        if right -. left <= total +. 1e-6 then begin
          (* repack in permuted order from the left edge, staged on the
             netbox; keep the best strictly-improving permutation *)
          let stage perm =
            let cursor = ref left in
            List.iter
              (fun k ->
                let i = w3.(k) in
                let w = widths.(k) in
                Netbox.move_cell nb i (!cursor +. (w /. 2.0)) cy.(i);
                cursor := !cursor +. w)
              perm
          in
          let best = ref (0.0, None) in
          List.iter
            (fun perm ->
              stage perm;
              let delta = Netbox.delta nb in
              (match !best with
              | b, _ when delta < b -. 1e-9 -> best := delta, Some perm
              | _ -> ());
              Netbox.rollback nb)
            permutations3;
          match !best with
          | delta, Some perm ->
            stage perm;
            Netbox.commit nb;
            gain := !gain -. delta;
            incr moves;
            (* skip past the permuted cells: the sorted order within the
               window is now stale *)
            idx := !idx + 2
          | _, None -> ()
        end;
        incr idx
      done)
    per_row;
  !gain, !moves

let swap_pass (d : Design.t) nb skip (legal : Legal.t) =
  let cx = legal.Legal.cx and cy = legal.Legal.cy in
  let gain = ref 0.0 and moves = ref 0 in
  (* bucket by width, then by x order: candidates are the nearest few in
     the same bucket *)
  let buckets = Hashtbl.create 16 in
  Array.iter
    (fun i ->
      if legal.Legal.assignment.(i) >= 0 && not (skip i) then begin
        let w = (Design.cell d i).Types.c_width in
        let key = int_of_float (Float.round (w *. 16.0)) in
        Hashtbl.replace buckets key (i :: Option.value ~default:[] (Hashtbl.find_opt buckets key))
      end)
    (Design.movable_ids d);
  Hashtbl.iter
    (fun _ cells ->
      let arr = Array.of_list cells in
      Array.sort (fun a b -> Float.compare cx.(a) cx.(b)) arr;
      let n = Array.length arr in
      for k = 0 to n - 2 do
        (* try swapping with the next few cells in x order that sit on a
           different row *)
        let i = arr.(k) in
        let j_end = min (n - 1) (k + 4) in
        for kj = k + 1 to j_end do
          let j = arr.(kj) in
          if legal.Legal.assignment.(i) <> legal.Legal.assignment.(j) then begin
            let xi = cx.(i) and yi = cy.(i) and xj = cx.(j) and yj = cy.(j) in
            Netbox.move_cell nb i xj yj;
            Netbox.move_cell nb j xi yi;
            let delta = Netbox.delta nb in
            if delta < -1e-9 then begin
              Netbox.commit nb;
              let ri = legal.Legal.assignment.(i) in
              legal.Legal.assignment.(i) <- legal.Legal.assignment.(j);
              legal.Legal.assignment.(j) <- ri;
              gain := !gain -. delta;
              incr moves
            end
            else Netbox.rollback nb
          end
        done
      done)
    buckets;
  !gain, !moves


(* FastDP-style global move: each cell has an "optimal region" -- the
   median interval of its incident nets' bounding boxes computed without
   the cell itself.  A cell outside its region is moved into a free gap
   near the region if that lowers the HPWL of its nets. *)
let move_pass (d : Design.t) nb h skip (legal : Legal.t) =
  let cx = legal.Legal.cx and cy = legal.Legal.cy in
  let gain = ref 0.0 and moves = ref 0 in
  (* occupancy: per row, sorted (xl, xh, cell) of placed movables; fixed
     cells and snapped groups appear as pseudo-entries so gaps are real *)
  let rows = Array.make d.Design.num_rows [] in
  for i = Design.num_cells d - 1 downto 0 do
    let c = Design.cell d i in
    match c.Types.c_kind with
    | Types.Movable ->
      let r0 = Design.row_of_y d (cy.(i) -. (c.Types.c_height /. 2.0) +. 1e-9) in
      let r1 = Design.row_of_y d (cy.(i) +. (c.Types.c_height /. 2.0) -. 1e-9) in
      for r = max 0 r0 to min (d.Design.num_rows - 1) r1 do
        rows.(r) <-
          (cx.(i) -. (c.Types.c_width /. 2.0), cx.(i) +. (c.Types.c_width /. 2.0), i)
          :: rows.(r)
      done
    | Types.Fixed ->
      let rect = Design.cell_rect d i in
      let r0 = Design.row_of_y d (rect.Dpp_geom.Rect.yl +. 1e-9) in
      let r1 = Design.row_of_y d (rect.Dpp_geom.Rect.yh -. 1e-9) in
      for r = r0 to r1 do
        rows.(r) <- (rect.Dpp_geom.Rect.xl, rect.Dpp_geom.Rect.xh, -1) :: rows.(r)
      done
    | Types.Pad -> ()
  done;
  Array.iteri (fun r l -> rows.(r) <- List.sort compare l) rows;
  let die = d.Design.die in
  (* median interval of incident-net spans along one axis, cell excluded *)
  let optimal_region i axis_pos =
    let los = ref [] and his = ref [] in
    Hypergraph.iter_nets_of_cell h i (fun n ->
        let lo = ref infinity and hi = ref neg_infinity in
        Hypergraph.iter_cells_of_net h n (fun c ->
            if c <> i then begin
              let v = axis_pos c in
              if v < !lo then lo := v;
              if v > !hi then hi := v
            end);
        if !lo <= !hi then begin
          los := !lo :: !los;
          his := !hi :: !his
        end);
    match !los with
    | [] -> None
    | _ ->
      let med l =
        let a = Array.of_list l in
        Array.sort Float.compare a;
        a.(Array.length a / 2)
      in
      let lo = med !los and hi = med !his in
      Some (min lo hi, max lo hi)
  in
  let site = d.Design.site_width in
  let align_up v = die.Dpp_geom.Rect.xl +. (ceil (((v -. die.Dpp_geom.Rect.xl) /. site) -. 1e-9) *. site) in
  let try_cell i =
    if (not (skip i)) && legal.Legal.assignment.(i) >= 0 then begin
      let c = Design.cell d i in
      let w = c.Types.c_width in
      match optimal_region i (fun c -> cx.(c)), optimal_region i (fun c -> cy.(c)) with
      | Some (xlo, xhi), Some (ylo, yhi) ->
        let tx = min (max cx.(i) xlo) xhi and ty = min (max cy.(i) ylo) yhi in
        let already_there = abs_float (tx -. cx.(i)) < 1.0 && abs_float (ty -. cy.(i)) < d.Design.row_height in
        if not already_there then begin
          let target_row = Design.row_of_y d (ty -. (c.Types.c_height /. 2.0)) in
          (* search free gaps in rows near the target *)
          let best = ref None in
          for dr = -1 to 1 do
            let r = target_row + dr in
            if r >= 0 && r < d.Design.num_rows then begin
              let row_cy = Design.row_y d r +. (d.Design.row_height /. 2.0) in
              (* walk the sorted occupancy of row r for gaps >= w *)
              let cursor = ref die.Dpp_geom.Rect.xl in
              let consider_gap lo hi =
                if hi -. lo >= w then begin
                  let xl = align_up (min (max (tx -. (w /. 2.0)) lo) (hi -. w)) in
                  if xl >= lo -. 1e-9 && xl +. w <= hi +. 1e-9 then begin
                    let cand_cx = xl +. (w /. 2.0) in
                    let cost = abs_float (cand_cx -. tx) +. abs_float (row_cy -. ty) in
                    match !best with
                    | Some (bc, _, _) when bc <= cost -> ()
                    | Some _ | None -> best := Some (cost, r, cand_cx)
                  end
                end
              in
              List.iter
                (fun (lo, hi, _) ->
                  if lo > !cursor then consider_gap !cursor lo;
                  cursor := max !cursor hi)
                rows.(r);
              if die.Dpp_geom.Rect.xh > !cursor then consider_gap !cursor die.Dpp_geom.Rect.xh
            end
          done;
          match !best with
          | Some (_, r, cand_cx) ->
            let orow = legal.Legal.assignment.(i) in
            Netbox.move_cell nb i cand_cx (Design.row_y d r +. (d.Design.row_height /. 2.0));
            let delta = Netbox.delta nb in
            if delta < -1e-9 then begin
              Netbox.commit nb;
              legal.Legal.assignment.(i) <- r;
              gain := !gain -. delta;
              incr moves;
              (* update occupancy: remove from the old row, insert into the
                 new one *)
              rows.(orow) <- List.filter (fun (_, _, c) -> c <> i) rows.(orow);
              rows.(r) <-
                List.sort compare ((cand_cx -. (w /. 2.0), cand_cx +. (w /. 2.0), i) :: rows.(r))
            end
            else Netbox.rollback nb
          | None -> ()
        end
      | _, _ -> ()
    end
  in
  Array.iter try_cell (Design.movable_ids d);
  !gain, !moves

let run (d : Design.t) ?(max_passes = 3) ?(skip = fun _ -> false) ?netbox ?hypergraph ~legal () =
  let nb =
    match netbox with
    | Some nb -> nb
    | None -> Netbox.build (Pins.build d) ~cx:legal.Legal.cx ~cy:legal.Legal.cy
  in
  let h = match hypergraph with Some h -> h | None -> Hypergraph.build d in
  let reorder_gain = ref 0.0 and swap_gain = ref 0.0 and moves = ref 0 in
  let pass = ref 0 in
  let improved = ref true in
  while !improved && !pass < max_passes do
    incr pass;
    let g1, m1 = reorder_pass d nb skip legal in
    let g2, m2 = swap_pass d nb skip legal in
    let g3, m3 = move_pass d nb h skip legal in
    reorder_gain := !reorder_gain +. g1;
    swap_gain := !swap_gain +. g2 +. g3;
    moves := !moves + m1 + m2 + m3;
    improved := g1 +. g2 +. g3 > 1e-6
  done;
  { passes = !pass; reorder_gain = !reorder_gain; swap_gain = !swap_gain; moves = !moves }
