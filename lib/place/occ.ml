(* Per-row occupancy index for the detailed-placement move pass.  Each row
   keeps its placed entries sorted by left edge in parallel arrays, so gap
   queries binary-search to the target and expand outward with distance
   pruning, and an accepted move is two O(entries-shifted) splices instead
   of the old List.filter + full re-sort. *)

module Design = Dpp_netlist.Design
module Soa = Dpp_netlist.Soa
module Rect = Dpp_geom.Rect

type t = {
  xls : float array array;  (* per row, sorted ascending *)
  xhs : float array array;
  cells : int array array;  (* -1 for fixed pseudo-entries *)
  lens : int array;
  maxw : float array;  (* upper bound on any entry width in the row *)
  die_xl : float;
  die_xh : float;
}

let num_rows t = Array.length t.lens

let row_entries t r = List.init t.lens.(r) (fun k -> t.xls.(r).(k), t.xhs.(r).(k), t.cells.(r).(k))

let build ?soa (d : Design.t) ~cx ~cy =
  let s = match soa with Some s -> s | None -> Soa.of_design d in
  let nrows = d.Design.num_rows in
  let rows = Array.make nrows [] in
  for i = Soa.num_cells s - 1 downto 0 do
    let kind = Dpp_util.Compact.I8.get s.Soa.kind i in
    if kind = Soa.kind_movable then begin
      let h = s.Soa.height.(i) and w = s.Soa.width.(i) in
      let r0 = Design.row_of_y d (cy.(i) -. (h /. 2.0) +. 1e-9) in
      let r1 = Design.row_of_y d (cy.(i) +. (h /. 2.0) -. 1e-9) in
      for r = max 0 r0 to min (nrows - 1) r1 do
        rows.(r) <- (cx.(i) -. (w /. 2.0), cx.(i) +. (w /. 2.0), i) :: rows.(r)
      done
    end
    else if kind = Soa.kind_fixed then begin
      let rect = Soa.cell_rect s i in
      let r0 = Design.row_of_y d (rect.Rect.yl +. 1e-9) in
      let r1 = Design.row_of_y d (rect.Rect.yh -. 1e-9) in
      for r = max 0 r0 to min (nrows - 1) r1 do
        rows.(r) <- (rect.Rect.xl, rect.Rect.xh, -1) :: rows.(r)
      done
    end
  done;
  let xls = Array.make nrows [||] and xhs = Array.make nrows [||] in
  let cells = Array.make nrows [||] and lens = Array.make nrows 0 in
  let maxw = Array.make nrows 0.0 in
  Array.iteri
    (fun r l ->
      let a = Array.of_list (List.sort compare l) in
      let n = Array.length a in
      xls.(r) <- Array.make (max 8 n) 0.0;
      xhs.(r) <- Array.make (max 8 n) 0.0;
      cells.(r) <- Array.make (max 8 n) (-1);
      lens.(r) <- n;
      Array.iteri
        (fun k (xl, xh, c) ->
          xls.(r).(k) <- xl;
          xhs.(r).(k) <- xh;
          cells.(r).(k) <- c;
          if xh -. xl > maxw.(r) then maxw.(r) <- xh -. xl)
        a)
    rows;
  { xls; xhs; cells; lens; maxw; die_xl = d.Design.die.Rect.xl; die_xh = d.Design.die.Rect.xh }

(* First entry of row [r] with xl >= x, i.e. count of entries left of x. *)
let lower_bound t r x =
  let xls = t.xls.(r) in
  let l = ref 0 and h = ref t.lens.(r) in
  while !l < !h do
    let m = (!l + !h) / 2 in
    if xls.(m) < x then l := m + 1 else h := m
  done;
  !l

let best_gap t r ~w ~tx ~align =
  (* Gap k is the free span between entry k-1's right edge and entry k's
     left edge (die boundaries at the ends); overlapping entries make a
     gap empty, which the width test rejects.  Scan outward from the gap
     nearest the target center [tx], pruning on the distance lower bounds
     the sorted order gives. *)
  let n = t.lens.(r) in
  let xls = t.xls.(r) and xhs = t.xhs.(r) in
  let gap_lo k = if k = 0 then t.die_xl else xhs.(k - 1) in
  let gap_hi k = if k = n then t.die_xh else xls.(k) in
  let best = ref None in
  let best_cost = ref infinity in
  let consider k =
    let lo = gap_lo k and hi = gap_hi k in
    if hi -. lo >= w then begin
      let xl = align (min (max (tx -. (w /. 2.0)) lo) (hi -. w)) in
      if xl >= lo -. 1e-9 && xl +. w <= hi +. 1e-9 then begin
        let cand_cx = xl +. (w /. 2.0) in
        let cost = abs_float (cand_cx -. tx) in
        if cost < !best_cost then begin
          best_cost := cost;
          best := Some (cost, cand_cx)
        end
      end
    end
  in
  let k0 = lower_bound t r tx in
  consider k0;
  (* rightward gaps start at xhs.(k-1) >= xls.(k-1) >= tx, so the candidate
     center is at least gap_lo + w/2 - tx away from the target *)
  let k = ref (k0 + 1) in
  while !k <= n && gap_lo !k +. (w /. 2.0) -. tx < !best_cost do
    consider !k;
    incr k
  done;
  (* leftward gaps end at xls.(k) <= tx *)
  let k = ref (k0 - 1) in
  while !k >= 0 && tx -. (gap_hi !k -. (w /. 2.0)) < !best_cost do
    consider !k;
    decr k
  done;
  !best

let is_free t r ~xl ~xh ~ignore =
  (* any entry overlapping [xl, xh) (beyond a 1e-9 sliver) other than
     [ignore]?  Entries left of xl - maxw cannot reach xl. *)
  let n = t.lens.(r) in
  let xls = t.xls.(r) and xhs = t.xhs.(r) and cells = t.cells.(r) in
  let k = ref (lower_bound t r (xl -. t.maxw.(r))) in
  let free = ref true in
  while !free && !k < n && xls.(!k) < xh -. 1e-9 do
    if cells.(!k) <> ignore && xhs.(!k) > xl +. 1e-9 then free := false;
    incr k
  done;
  !free

let remove t ~row ~cell =
  let n = t.lens.(row) in
  let cells = t.cells.(row) in
  let k = ref (-1) in
  for q = 0 to n - 1 do
    if cells.(q) = cell then k := q
  done;
  if !k >= 0 then begin
    Array.blit t.xls.(row) (!k + 1) t.xls.(row) !k (n - !k - 1);
    Array.blit t.xhs.(row) (!k + 1) t.xhs.(row) !k (n - !k - 1);
    Array.blit cells (!k + 1) cells !k (n - !k - 1);
    t.lens.(row) <- n - 1
  end

let insert t ~row ~cell ~xl ~xh =
  let n = t.lens.(row) in
  if n + 1 > Array.length t.xls.(row) then begin
    let cap = max (n + 1) (2 * Array.length t.xls.(row)) in
    let grow a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 n;
      b
    in
    t.xls.(row) <- grow t.xls.(row) 0.0;
    t.xhs.(row) <- grow t.xhs.(row) 0.0;
    t.cells.(row) <- grow t.cells.(row) (-1)
  end;
  let k = lower_bound t row xl in
  Array.blit t.xls.(row) k t.xls.(row) (k + 1) (n - k);
  Array.blit t.xhs.(row) k t.xhs.(row) (k + 1) (n - k);
  Array.blit t.cells.(row) k t.cells.(row) (k + 1) (n - k);
  t.xls.(row).(k) <- xl;
  t.xhs.(row).(k) <- xh;
  t.cells.(row).(k) <- cell;
  t.lens.(row) <- n + 1;
  if xh -. xl > t.maxw.(row) then t.maxw.(row) <- xh -. xl
