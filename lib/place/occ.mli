(** Per-row occupancy index for the detailed-placement move pass.

    Each row's placed footprints (movable cells plus fixed pseudo-entries,
    [cell = -1]) are kept sorted by left edge in parallel arrays.
    {!best_gap} binary-searches to the target and expands outward with
    distance pruning; {!remove}/{!insert} splice in place.  This replaces
    the old per-row [(xl, xh, cell) list] that paid a full [List.filter]
    plus re-[List.sort] on every accepted move. *)

type t

val build :
  ?soa:Dpp_netlist.Soa.t -> Dpp_netlist.Design.t -> cx:float array -> cy:float array -> t
(** Index every movable cell (tall cells appear in each spanned row) and
    every fixed cell clipped to its rows; pads are ignored.  [soa]
    supplies the flow's flat view (widths/heights/kinds are read from
    flat arrays); without it one is derived on the spot. *)

val num_rows : t -> int

val row_entries : t -> int -> (float * float * int) list
(** Sorted [(xl, xh, cell)] entries of one row — test/bench introspection. *)

val best_gap : t -> int -> w:float -> tx:float -> align:(float -> float) -> (float * float) option
(** [best_gap t r ~w ~tx ~align] is [Some (cost, cand_cx)] for the free
    gap of row [r] that admits a width-[w] cell with center nearest [tx]
    after [align] snaps the left edge to the site grid
    ([cost = |cand_cx - tx|]), or [None].  Read-only, so safe to call
    concurrently from worker domains; the scan order depends only on the
    index contents, never on the worker count. *)

val is_free : t -> int -> xl:float -> xh:float -> ignore:int -> bool
(** No entry other than [ignore] overlaps [\[xl, xh\]] by more than 1e-9
    in row [r].  Used by the serial commit phase to re-validate a gap a
    parallel evaluation proposed (an earlier commit may have taken it). *)

val remove : t -> row:int -> cell:int -> unit
(** Drop [cell]'s entry from [row] (no-op if absent). *)

val insert : t -> row:int -> cell:int -> xl:float -> xh:float -> unit
