(** Sorted-array store of disjoint free x-intervals — the legalizer's
    per-row capacity structure.

    Intervals are kept sorted by left edge in two parallel float arrays.
    {!best_fit} binary-searches to the target and expands outward with
    distance pruning (O(log n + scanned)), replacing the former full-list
    walk; {!alloc} splits the interval {e by index}, so two intervals that
    happen to share identical [(lo, hi)] bounds are never confused (the
    old list rewrite matched on float equality and split both). *)

type t

val create : unit -> t
(** An empty store. *)

val reset : t -> (float * float) list -> unit
(** Reload the store from a list of [(lo, hi)] segments, assumed disjoint
    and sorted ascending (as {!Legal.row_segments} produces).  Reuses the
    backing arrays. *)

val of_segments : (float * float) list -> t

val length : t -> int

val get : t -> int -> float * float
(** [(lo, hi)] of the interval at an index, as last returned by
    {!best_fit}.  Indices are invalidated by {!alloc} and {!reset}. *)

val to_list : t -> (float * float) list
(** All intervals, ascending. *)

val best_fit : t -> w:float -> target:float -> (float * int * float) option
(** [best_fit t ~w ~target] finds the interval that can hold a width-[w]
    cell with left edge nearest [target]: [Some (cost, idx, xl)] where
    [xl] is the clamped placement and [cost = |xl - target|], or [None]
    if no interval fits.  Ties resolve to the interval nearest the
    binary-search start, deterministically — the scan order depends only
    on the store contents, never on worker count. *)

val alloc : t -> int -> xl:float -> w:float -> unit
(** Carve [\[xl, xl + w)] out of the interval at index [idx], keeping any
    left/right remnant wider than 1e-9.  The segment must lie inside the
    interval (as {!best_fit} guarantees). *)
