module Rect = Dpp_geom.Rect
module Orient = Dpp_geom.Orient
module Dyn = Dpp_util.Dyn

(* Mutable staging records; frozen into Types.cell/net/pin at [finish]. *)
type staged_cell = {
  sc_name : string;
  sc_master : string;
  sc_w : float;
  sc_h : float;
  sc_kind : Types.cell_kind;
  mutable sc_x : float;
  mutable sc_y : float;
  mutable sc_orient : Orient.t;
  sc_pins : int Dyn.t;
}

type staged_pin = {
  sp_cell : int;
  sp_dir : Types.direction;
  sp_dx : float;
  sp_dy : float;
  mutable sp_net : int;
}

type staged_net = { sn_name : string; sn_weight : float; sn_pins : int array }

type t = {
  b_name : string;
  mutable b_die : Rect.t;
  b_row_height : float;
  b_site_width : float;
  mutable b_num_rows : int;
  b_cells : staged_cell Dyn.t;
  b_pins : staged_pin Dyn.t;
  b_nets : staged_net Dyn.t;
  b_cell_names : (string, int) Hashtbl.t;
  b_groups : Groups.t Dyn.t;
  mutable b_finished : bool;
}

let rows_of_die ~die ~row_height =
  let h = Rect.height die in
  let rows = h /. row_height in
  let num_rows = int_of_float (Float.round rows) in
  if num_rows <= 0 || abs_float (rows -. float_of_int num_rows) > 1e-6 then
    invalid_arg "Builder: die height must be a positive multiple of row height";
  num_rows

let create ?(name = "design") ~die ~row_height ~site_width () =
  if row_height <= 0.0 || site_width <= 0.0 then
    invalid_arg "Builder.create: non-positive row height or site width";
  let num_rows = rows_of_die ~die ~row_height in
  {
    b_name = name;
    b_die = die;
    b_row_height = row_height;
    b_site_width = site_width;
    b_num_rows = num_rows;
    b_cells = Dyn.create ();
    b_pins = Dyn.create ();
    b_nets = Dyn.create ();
    b_cell_names = Hashtbl.create 1024;
    b_groups = Dyn.create ();
    b_finished = false;
  }

let check_alive t = if t.b_finished then invalid_arg "Builder: already finished"

let set_die t die =
  check_alive t;
  t.b_num_rows <- rows_of_die ~die ~row_height:t.b_row_height;
  t.b_die <- die

let add_cell t ~name ~master ~w ~h ~kind =
  check_alive t;
  if Hashtbl.mem t.b_cell_names name then
    invalid_arg (Printf.sprintf "Builder.add_cell: duplicate cell name %S" name);
  (match kind with
  | Types.Movable when w <= 0.0 || h <= 0.0 ->
    invalid_arg "Builder.add_cell: movable cell must have positive dimensions"
  | Types.Movable | Types.Fixed | Types.Pad -> ());
  let id = Dyn.length t.b_cells in
  Dyn.push t.b_cells
    {
      sc_name = name;
      sc_master = master;
      sc_w = w;
      sc_h = h;
      sc_kind = kind;
      sc_x = 0.0;
      sc_y = 0.0;
      sc_orient = Orient.N;
      sc_pins = Dyn.create ();
    };
  Hashtbl.add t.b_cell_names name id;
  id

let add_pin t ~cell ~dir ?dx ?dy () =
  check_alive t;
  if cell < 0 || cell >= Dyn.length t.b_cells then invalid_arg "Builder.add_pin: bad cell id";
  let c = Dyn.get t.b_cells cell in
  let dx = Option.value dx ~default:(c.sc_w /. 2.0) in
  let dy = Option.value dy ~default:(c.sc_h /. 2.0) in
  let id = Dyn.length t.b_pins in
  Dyn.push t.b_pins { sp_cell = cell; sp_dir = dir; sp_dx = dx; sp_dy = dy; sp_net = -1 };
  Dyn.push c.sc_pins id;
  id

let add_net t ?name ?(weight = 1.0) pins =
  check_alive t;
  if pins = [] then invalid_arg "Builder.add_net: empty pin list";
  let id = Dyn.length t.b_nets in
  let name = Option.value name ~default:(Printf.sprintf "net_%d" id) in
  List.iter
    (fun p ->
      if p < 0 || p >= Dyn.length t.b_pins then invalid_arg "Builder.add_net: bad pin id";
      let sp = Dyn.get t.b_pins p in
      if sp.sp_net >= 0 then
        invalid_arg (Printf.sprintf "Builder.add_net: pin %d already connected" p);
      sp.sp_net <- id)
    pins;
  Dyn.push t.b_nets { sn_name = name; sn_weight = weight; sn_pins = Array.of_list pins };
  id

let set_position t i ~x ~y =
  check_alive t;
  let c = Dyn.get t.b_cells i in
  c.sc_x <- x;
  c.sc_y <- y

let set_orient t i o =
  check_alive t;
  (Dyn.get t.b_cells i).sc_orient <- o

let add_group t g =
  check_alive t;
  Dyn.push t.b_groups g

let cell_id t name = Hashtbl.find_opt t.b_cell_names name

let cell_dims t i =
  if i < 0 || i >= Dyn.length t.b_cells then invalid_arg "Builder.cell_dims: bad cell id";
  let c = Dyn.get t.b_cells i in
  c.sc_w, c.sc_h

let num_cells t = Dyn.length t.b_cells

let movable_area t =
  let acc = ref 0.0 in
  Dyn.iter
    (fun sc ->
      match sc.sc_kind with
      | Types.Movable -> acc := !acc +. (sc.sc_w *. sc.sc_h)
      | Types.Fixed | Types.Pad -> ())
    t.b_cells;
  !acc
let num_nets t = Dyn.length t.b_nets

let finish t =
  check_alive t;
  t.b_finished <- true;
  let nc = Dyn.length t.b_cells in
  let cells =
    Array.init nc (fun i ->
        let sc = Dyn.get t.b_cells i in
        {
          Types.c_id = i;
          c_name = sc.sc_name;
          c_master = sc.sc_master;
          c_width = sc.sc_w;
          c_height = sc.sc_h;
          c_kind = sc.sc_kind;
          c_pins = Dyn.to_array sc.sc_pins;
        })
  in
  let pins =
    Array.init (Dyn.length t.b_pins) (fun i ->
        let sp = Dyn.get t.b_pins i in
        {
          Types.p_id = i;
          p_cell = sp.sp_cell;
          p_net = sp.sp_net;
          p_dir = sp.sp_dir;
          p_dx = sp.sp_dx;
          p_dy = sp.sp_dy;
        })
  in
  let nets =
    Array.init (Dyn.length t.b_nets) (fun i ->
        let sn = Dyn.get t.b_nets i in
        { Types.n_id = i; n_name = sn.sn_name; n_weight = sn.sn_weight; n_pins = sn.sn_pins })
  in
  let x = Array.init nc (fun i -> (Dyn.get t.b_cells i).sc_x) in
  let y = Array.init nc (fun i -> (Dyn.get t.b_cells i).sc_y) in
  let orient = Array.init nc (fun i -> (Dyn.get t.b_cells i).sc_orient) in
  let groups = Array.to_list (Dyn.to_array t.b_groups) in
  List.iter
    (fun g ->
      Array.iter
        (fun row ->
          Array.iter
            (fun c ->
              if c >= nc then
                invalid_arg
                  (Printf.sprintf "Builder.finish: group %s references unknown cell %d"
                     g.Groups.g_name c))
            row)
        g.Groups.g_rows)
    groups;
  {
    Design.name = t.b_name;
    die = t.b_die;
    row_height = t.b_row_height;
    site_width = t.b_site_width;
    num_rows = t.b_num_rows;
    cells;
    nets;
    pins;
    x;
    y;
    orient;
    groups;
  }
