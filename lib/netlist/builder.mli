(** Incremental netlist construction.  The generator and the Bookshelf
    parser both target this API; {!finish} freezes everything into an
    immutable-shape {!Design.t}.

    Ids are handed out contiguously in creation order, so a builder-driven
    generator is fully deterministic. *)

type t

val create :
  ?name:string ->
  die:Dpp_geom.Rect.t ->
  row_height:float ->
  site_width:float ->
  unit ->
  t
(** @raise Invalid_argument if the die height is not a positive multiple of
    the row height (within 1e-6). *)

val set_die : t -> Dpp_geom.Rect.t -> unit
(** Replace the die outline (the generator sizes the die only after it
    knows the total cell area).  Same multiple-of-row-height constraint as
    {!create}. *)

val add_cell :
  t ->
  name:string ->
  master:string ->
  w:float ->
  h:float ->
  kind:Types.cell_kind ->
  int
(** Returns the new cell id.  Cell names must be unique.
    @raise Invalid_argument on a duplicate name or non-positive movable
    dimensions. *)

val add_pin : t -> cell:int -> dir:Types.direction -> ?dx:float -> ?dy:float -> unit -> int
(** Returns the new pin id.  Offsets default to the cell center. *)

val add_net : t -> ?name:string -> ?weight:float -> int list -> int
(** [add_net t pins] connects the given pin ids (each still unconnected)
    into a new net and returns its id.
    @raise Invalid_argument if a pin is already on a net or the list is
    empty. *)

val set_position : t -> int -> x:float -> y:float -> unit
(** Lower-left placement of a cell (e.g. for pads and fixed macros). *)

val set_orient : t -> int -> Dpp_geom.Orient.t -> unit

val add_group : t -> Groups.t -> unit
(** Attach a ground-truth datapath group (cell ids must already exist). *)

val cell_id : t -> string -> int option
(** Look up a cell by name. *)

val cell_dims : t -> int -> float * float
(** Width and height of an already-added cell — lets a streaming parser
    convert center-relative pin offsets without keeping its own copy of
    the node table. *)

val num_cells : t -> int

val movable_area : t -> float
(** Total area of movable cells added so far (drives die sizing). *)

val num_nets : t -> int

val finish : t -> Design.t
(** Freeze.  The builder may not be used afterwards.
    @raise Invalid_argument if a group references an unknown cell id. *)
