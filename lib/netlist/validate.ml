module Rect = Dpp_geom.Rect

type severity = Warning | Error

type issue = { severity : severity; subject : string; message : string }

let issue severity subject fmt =
  Printf.ksprintf (fun message -> { severity; subject; message }) fmt

let net_subject (n : Types.net) = Printf.sprintf "net %s" n.n_name

(* A pin has no name of its own; identify it by its owning cell when the
   cell reference is valid, falling back to the raw pin id. *)
let pin_subject d (p : Types.pin) =
  if p.p_cell >= 0 && p.p_cell < Design.num_cells d then
    Printf.sprintf "pin %d of cell %s" p.p_id (Design.cell d p.p_cell).Types.c_name
  else Printf.sprintf "pin %d" p.p_id

let check_references d acc =
  let acc = ref acc in
  let nc = Design.num_cells d and nn = Design.num_nets d and np = Design.num_pins d in
  Array.iter
    (fun (p : Types.pin) ->
      if p.p_cell < 0 || p.p_cell >= nc then
        acc := issue Error (pin_subject d p) "references bad cell %d" p.p_cell :: !acc
      else begin
        let c = Design.cell d p.p_cell in
        if not (Array.exists (fun q -> q = p.p_id) c.c_pins) then
          acc :=
            issue Error (pin_subject d p) "missing from cell %s pin list" c.c_name :: !acc
      end;
      if p.p_net >= nn then
        acc := issue Error (pin_subject d p) "references bad net %d" p.p_net :: !acc;
      if p.p_net < 0 then acc := issue Warning (pin_subject d p) "is unconnected" :: !acc)
    d.Design.pins;
  Array.iter
    (fun (n : Types.net) ->
      Array.iter
        (fun p ->
          if p < 0 || p >= np then
            acc := issue Error (net_subject n) "references bad pin %d" p :: !acc
          else if (Design.pin d p).p_net <> n.n_id then
            acc :=
              issue Error (net_subject n) "lists %s owned by another net"
                (pin_subject d (Design.pin d p))
              :: !acc)
        n.n_pins)
    d.Design.nets;
  !acc

let check_net_degrees d acc =
  Array.fold_left
    (fun acc (n : Types.net) ->
      match Array.length n.n_pins with
      | 0 -> issue Error (net_subject n) "has no pins" :: acc
      | 1 -> issue Warning (net_subject n) "has a single pin" :: acc
      | _ -> acc)
    acc d.Design.nets

let check_names d acc =
  let seen = Hashtbl.create (Design.num_cells d) in
  Array.fold_left
    (fun acc (c : Types.cell) ->
      if Hashtbl.mem seen c.c_name then
        issue Error (Printf.sprintf "cell %s" c.c_name) "duplicate cell name" :: acc
      else begin
        Hashtbl.add seen c.c_name ();
        acc
      end)
    acc d.Design.cells

let check_geometry d acc =
  let die = d.Design.die in
  Array.fold_left
    (fun acc (c : Types.cell) ->
      let subject = Printf.sprintf "cell %s" c.c_name in
      let acc =
        if Types.is_fixed_kind c.c_kind then begin
          let r = Design.cell_rect d c.c_id in
          if not (Rect.overlaps r (Rect.expand die 1e-9)) && not (Rect.contains_rect die r) then
            issue Warning subject "fixed cell lies outside the die" :: acc
          else acc
        end
        else acc
      in
      match c.c_kind with
      | Types.Movable ->
        let acc =
          if c.c_width > Rect.width die then
            issue Error subject "movable cell wider than the die" :: acc
          else acc
        in
        (* multi-row movable macros are allowed when row-aligned in height *)
        let rows = c.c_height /. d.Design.row_height in
        if c.c_height > Rect.height die then
          issue Error subject "movable cell taller than the die" :: acc
        else if abs_float (rows -. Float.round rows) > 1e-6 then
          issue Error subject "movable cell height is not a row multiple" :: acc
        else acc
      | Types.Fixed | Types.Pad -> acc)
    acc d.Design.cells

let check_utilization d acc =
  let u = Design.utilization d in
  if u > 1.0 then issue Error "design" "utilization %.3f exceeds capacity" u :: acc
  else if u > 0.95 then issue Warning "design" "utilization %.3f is very high" u :: acc
  else acc

let check_groups d acc =
  let nc = Design.num_cells d in
  let owner = Hashtbl.create 64 in
  List.fold_left
    (fun acc g ->
      let subject = Printf.sprintf "group %s" g.Groups.g_name in
      Array.fold_left
        (fun acc row ->
          Array.fold_left
            (fun acc c ->
              if c < 0 then acc
              else if c >= nc then issue Error subject "references bad cell %d" c :: acc
              else begin
                let cname = (Design.cell d c).Types.c_name in
                let acc =
                  if Types.is_fixed_kind (Design.cell d c).c_kind then
                    issue Error subject "contains fixed cell %s" cname :: acc
                  else acc
                in
                match Hashtbl.find_opt owner c with
                | Some other when other <> g.Groups.g_name ->
                  issue Error
                    (Printf.sprintf "cell %s" cname)
                    "is in groups %s and %s" other g.Groups.g_name
                  :: acc
                | Some _ ->
                  issue Error subject "cell %s appears twice in the group" cname :: acc
                | None ->
                  Hashtbl.add owner c g.Groups.g_name;
                  acc
              end)
            acc row)
        acc g.Groups.g_rows)
    acc d.Design.groups

let check d =
  []
  |> check_references d
  |> check_net_degrees d
  |> check_names d
  |> check_geometry d
  |> check_utilization d
  |> check_groups d
  |> List.rev

let errors issues = List.filter (fun i -> i.severity = Error) issues

let is_clean issues = errors issues = []

let pp_issue ppf i =
  let tag = match i.severity with Warning -> "warning" | Error -> "error" in
  Format.fprintf ppf "[%s] %s: %s" tag i.subject i.message
