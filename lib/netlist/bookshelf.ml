module Rect = Dpp_geom.Rect
module Orient = Dpp_geom.Orient

exception Parse_error of string

let parse_error file line fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error (Printf.sprintf "%s:%d: %s" file line msg))) fmt

(* ------------------------------------------------------------------ *)
(* Writing                                                            *)
(* ------------------------------------------------------------------ *)

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let write_nodes (d : Design.t) path =
  with_out path (fun oc ->
      Printf.fprintf oc "UCLA nodes 1.0\n\n";
      let terminals =
        Array.fold_left
          (fun n (c : Types.cell) -> if Types.is_fixed_kind c.c_kind then n + 1 else n)
          0 d.Design.cells
      in
      Printf.fprintf oc "NumNodes : %d\n" (Design.num_cells d);
      Printf.fprintf oc "NumTerminals : %d\n" terminals;
      Array.iter
        (fun (c : Types.cell) ->
          (* ISPD convention: [terminal_NI] is a terminal that does not
             block placement — exactly our [Pad] kind, so the kind
             round-trips instead of collapsing into [Fixed]. *)
          let term =
            match c.c_kind with
            | Types.Pad -> " terminal_NI"
            | Types.Fixed -> " terminal"
            | Types.Movable -> ""
          in
          Printf.fprintf oc "  %s %.4f %.4f%s\n" c.c_name c.c_width c.c_height term)
        d.Design.cells)

let write_nets (d : Design.t) path =
  with_out path (fun oc ->
      Printf.fprintf oc "UCLA nets 1.0\n\n";
      Printf.fprintf oc "NumNets : %d\n" (Design.num_nets d);
      Printf.fprintf oc "NumPins : %d\n" (Design.num_pins d);
      Array.iter
        (fun (n : Types.net) ->
          Printf.fprintf oc "NetDegree : %d  %s\n" (Array.length n.n_pins) n.n_name;
          Array.iter
            (fun pid ->
              let p = Design.pin d pid in
              let c = Design.cell d p.p_cell in
              (* Bookshelf offsets are from the cell center. *)
              let dx = p.p_dx -. (c.c_width /. 2.0) in
              let dy = p.p_dy -. (c.c_height /. 2.0) in
              Printf.fprintf oc "  %s %s : %.4f %.4f\n" c.c_name
                (Types.direction_to_string p.p_dir)
                dx dy)
            n.n_pins)
        d.Design.nets)

let write_pl (d : Design.t) path =
  with_out path (fun oc ->
      Printf.fprintf oc "UCLA pl 1.0\n\n";
      Array.iter
        (fun (c : Types.cell) ->
          let i = c.Types.c_id in
          let fixed = if Types.is_fixed_kind c.c_kind then " /FIXED" else "" in
          Printf.fprintf oc "%s %.4f %.4f : %s%s\n" c.c_name d.Design.x.(i) d.Design.y.(i)
            (Orient.to_string d.Design.orient.(i))
            fixed)
        d.Design.cells)

let write_scl (d : Design.t) path =
  with_out path (fun oc ->
      Printf.fprintf oc "UCLA scl 1.0\n\n";
      Printf.fprintf oc "NumRows : %d\n\n" d.Design.num_rows;
      let die = d.Design.die in
      let sites =
        int_of_float (Float.round (Rect.width die /. d.Design.site_width))
      in
      for r = 0 to d.Design.num_rows - 1 do
        Printf.fprintf oc "CoreRow Horizontal\n";
        Printf.fprintf oc "  Coordinate : %.4f\n" (Design.row_y d r);
        Printf.fprintf oc "  Height : %.4f\n" d.Design.row_height;
        Printf.fprintf oc "  Sitewidth : %.4f\n" d.Design.site_width;
        Printf.fprintf oc "  Sitespacing : %.4f\n" d.Design.site_width;
        Printf.fprintf oc "  Siteorient : 1\n";
        Printf.fprintf oc "  Sitesymmetry : 1\n";
        Printf.fprintf oc "  SubrowOrigin : %.4f  NumSites : %d\n" die.Rect.xl sites;
        Printf.fprintf oc "End\n"
      done)

let write_masters (d : Design.t) path =
  with_out path (fun oc ->
      Array.iter
        (fun (c : Types.cell) -> Printf.fprintf oc "%s %s\n" c.c_name c.c_master)
        d.Design.cells)

let write_groups (d : Design.t) path =
  with_out path (fun oc ->
      List.iter
        (fun g ->
          Printf.fprintf oc "Group %s %d %d\n" g.Groups.g_name (Groups.num_slices g)
            (Groups.num_stages g);
          Array.iter
            (fun row ->
              output_char oc ' ';
              Array.iter
                (fun c ->
                  output_char oc ' ';
                  output_string oc
                    (if c < 0 then "-" else (Design.cell d c).Types.c_name))
                row;
              output_char oc '\n')
            g.Groups.g_rows)
        d.Design.groups)

let write (d : Design.t) ~basename =
  let b = Filename.basename basename in
  write_nodes d (basename ^ ".nodes");
  write_nets d (basename ^ ".nets");
  write_pl d (basename ^ ".pl");
  write_scl d (basename ^ ".scl");
  write_masters d (basename ^ ".masters");
  if d.Design.groups <> [] then write_groups d (basename ^ ".groups");
  with_out (basename ^ ".aux") (fun oc ->
      let groups_file = if d.Design.groups <> [] then " " ^ b ^ ".groups" else "" in
      Printf.fprintf oc "RowBasedPlacement : %s.nodes %s.nets %s.pl %s.scl %s.masters%s\n" b b b
        b b groups_file)

(* ------------------------------------------------------------------ *)
(* Reading                                                            *)
(* ------------------------------------------------------------------ *)

type line_reader = { lr_file : string; mutable lr_num : int; lr_ic : in_channel }

let open_reader path = { lr_file = path; lr_num = 0; lr_ic = open_in path }

let next_line lr =
  match In_channel.input_line lr.lr_ic with
  | None -> None
  | Some l ->
    lr.lr_num <- lr.lr_num + 1;
    Some l

let is_blank s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') s

let is_comment s =
  let s = String.trim s in
  String.length s >= 1 && s.[0] = '#'

(* Next meaningful line, tokenized on whitespace (':' split out). *)
let rec next_tokens lr =
  match next_line lr with
  | None -> None
  | Some l when is_blank l || is_comment l -> next_tokens lr
  | Some l when lr.lr_num = 1 && String.length l >= 4 && String.sub l 0 4 = "UCLA" ->
    next_tokens lr
  | Some l ->
    let l = String.map (fun c -> if c = '\t' || c = '\r' then ' ' else c) l in
    let l =
      String.concat " : " (String.split_on_char ':' l)
    in
    let toks = List.filter (fun s -> s <> "") (String.split_on_char ' ' l) in
    if toks = [] then next_tokens lr else Some toks

let float_tok lr s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> parse_error lr.lr_file lr.lr_num "expected a number, got %S" s

let int_tok lr s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> parse_error lr.lr_file lr.lr_num "expected an integer, got %S" s

let with_reader path f =
  let lr = open_reader path in
  Fun.protect ~finally:(fun () -> close_in lr.lr_ic) (fun () -> f lr)

(* The reader streams every per-cell / per-pin file straight into the
   Builder: no whole-file [raw_node array] or [raw_net array] is ever
   materialized, so a 1M-cell design parses with O(1) transient memory on
   top of the Builder's own storage.  The price is two passes over [.pl]
   (the cell kind must be known at [add_cell] time, so pass 1 collects just
   the /FIXED name set — O(#fixed), typically pads and macros only — and
   pass 2 re-streams positions through [Builder.cell_id]). *)

(* Pass 1 over [.pl]: which cells are marked /FIXED. *)
let read_fixed_names path =
  with_reader path (fun lr ->
      let tbl = Hashtbl.create 64 in
      let rec loop () =
        match next_tokens lr with
        | None -> ()
        | Some (name :: _x :: _y :: ":" :: _o :: rest) ->
          if List.mem "/FIXED" rest then Hashtbl.replace tbl name ();
          loop ()
        | Some toks -> parse_error lr.lr_file lr.lr_num "bad pl line: %s" (String.concat " " toks)
      in
      loop ();
      tbl)

(* Pass 2 over [.pl]: apply position/orientation to already-added cells. *)
let stream_pl path b =
  with_reader path (fun lr ->
      let rec loop () =
        match next_tokens lr with
        | None -> ()
        | Some (name :: x :: y :: ":" :: o :: _rest) ->
          let orient =
            match Orient.of_string o with
            | Some o -> o
            | None -> parse_error lr.lr_file lr.lr_num "bad orientation %S" o
          in
          (match Builder.cell_id b name with
          | Some id ->
            Builder.set_position b id ~x:(float_tok lr x) ~y:(float_tok lr y);
            Builder.set_orient b id orient
          | None -> ());
          loop ()
        | Some toks -> parse_error lr.lr_file lr.lr_num "bad pl line: %s" (String.concat " " toks)
      in
      loop ())

(* Streaming pre-scan used only when the .scl carries no NumSites (the
   die-width fallback needs the widest node). *)
let scan_max_node_width path =
  with_reader path (fun lr ->
      let m = ref 0.0 in
      let rec loop () =
        match next_tokens lr with
        | None -> ()
        | Some [ "NumNodes"; ":"; _ ] | Some [ "NumTerminals"; ":"; _ ] -> loop ()
        | Some (_name :: w :: _h :: _rest) ->
          m := max !m (float_tok lr w);
          loop ()
        | Some toks ->
          parse_error lr.lr_file lr.lr_num "bad node line: %s" (String.concat " " toks)
      in
      loop ();
      !m)

let stream_nodes path b ~fixed_names ~masters =
  with_reader path (fun lr ->
      let rec loop () =
        match next_tokens lr with
        | None -> ()
        | Some [ "NumNodes"; ":"; _ ] | Some [ "NumTerminals"; ":"; _ ] -> loop ()
        | Some (name :: w :: h :: rest) ->
          let terminal = List.mem "terminal" rest in
          let terminal_ni = List.mem "terminal_NI" rest in
          let w = float_tok lr w and h = float_tok lr h in
          let kind =
            (* [terminal_NI] is a non-blocking terminal -> Pad exactly;
               a plain [terminal] (or /FIXED in the .pl) is Fixed unless
               it has no area, the usual pad encoding in foreign
               benchmarks. *)
            if terminal_ni then Types.Pad
            else if terminal || Hashtbl.mem fixed_names name then
              if w *. h <= 1e-9 then Types.Pad else Types.Fixed
            else Types.Movable
          in
          let master =
            match Hashtbl.find_opt masters name with Some m -> m | None -> "UNKNOWN"
          in
          ignore (Builder.add_cell b ~name ~master ~w ~h ~kind);
          loop ()
        | Some toks ->
          parse_error lr.lr_file lr.lr_num "bad node line: %s" (String.concat " " toks)
      in
      loop ())

let stream_nets path b =
  with_reader path (fun lr ->
      let current_name = ref "" in
      let current_pins = ref [] in
      let current_left = ref 0 in
      let flush () =
        if !current_name <> "" then begin
          if !current_left <> 0 then
            parse_error lr.lr_file lr.lr_num "net %s: wrong pin count" !current_name;
          ignore (Builder.add_net b ~name:!current_name (List.rev !current_pins));
          current_name := "";
          current_pins := []
        end
      in
      let rec loop () =
        match next_tokens lr with
        | None -> flush ()
        | Some [ "NumNets"; ":"; _ ] | Some [ "NumPins"; ":"; _ ] -> loop ()
        | Some [ "NetDegree"; ":"; k; name ] ->
          flush ();
          current_name := name;
          current_left := int_tok lr k;
          loop ()
        | Some [ "NetDegree"; ":"; k ] ->
          flush ();
          current_name := Printf.sprintf "n%d" (Builder.num_nets b);
          current_left := int_tok lr k;
          loop ()
        | Some [ cell; dir; ":"; dx; dy ] when !current_name <> "" ->
          let d =
            match Types.direction_of_string dir with
            | Some d -> d
            | None -> parse_error lr.lr_file lr.lr_num "bad pin direction %S" dir
          in
          (match Builder.cell_id b cell with
          | None ->
            raise
              (Parse_error (Printf.sprintf "net %s: unknown cell %s" !current_name cell))
          | Some cid ->
            let cw, ch = Builder.cell_dims b cid in
            (* center-relative -> lower-left-relative *)
            let dx = float_tok lr dx +. (cw /. 2.0) in
            let dy = float_tok lr dy +. (ch /. 2.0) in
            current_pins := Builder.add_pin b ~cell:cid ~dir:d ~dx ~dy () :: !current_pins);
          decr current_left;
          loop ()
        | Some toks ->
          parse_error lr.lr_file lr.lr_num "bad nets line: %s" (String.concat " " toks)
      in
      loop ())

type raw_rows = {
  rr_count : int;
  rr_y0 : float;
  rr_height : float;
  rr_site_width : float;
  rr_x0 : float;
  rr_sites : int;
}

let read_scl path =
  with_reader path (fun lr ->
      let count = ref 0 in
      let y0 = ref infinity in
      let height = ref 0.0 in
      let site_width = ref 1.0 in
      let x0 = ref 0.0 in
      let sites = ref 0 in
      let rec loop () =
        match next_tokens lr with
        | None -> ()
        | Some [ "NumRows"; ":"; _ ] -> loop ()
        | Some [ "CoreRow"; "Horizontal" ] ->
          incr count;
          loop ()
        | Some [ "Coordinate"; ":"; y ] ->
          y0 := min !y0 (float_tok lr y);
          loop ()
        | Some [ "Height"; ":"; h ] ->
          height := float_tok lr h;
          loop ()
        | Some [ "Sitewidth"; ":"; w ] ->
          site_width := float_tok lr w;
          loop ()
        | Some [ "SubrowOrigin"; ":"; x; "NumSites"; ":"; n ] ->
          x0 := float_tok lr x;
          sites := max !sites (int_tok lr n);
          loop ()
        | Some _ -> loop ()
      in
      loop ();
      if !count = 0 || !height <= 0.0 then
        parse_error lr.lr_file lr.lr_num "scl file defines no usable rows";
      {
        rr_count = !count;
        rr_y0 = !y0;
        rr_height = !height;
        rr_site_width = !site_width;
        rr_x0 = !x0;
        rr_sites = !sites;
      })

let read_masters path =
  with_reader path (fun lr ->
      let tbl = Hashtbl.create 1024 in
      (* the tokenizer allocates a fresh string per line, so a million
         cells of "ram1" would otherwise pin a million identical blocks *)
      let pool = Dpp_util.Strpool.create () in
      let rec loop () =
        match next_tokens lr with
        | None -> ()
        | Some [ name; master ] ->
          Hashtbl.replace tbl name (Dpp_util.Strpool.intern pool master);
          loop ()
        | Some toks ->
          parse_error lr.lr_file lr.lr_num "bad masters line: %s" (String.concat " " toks)
      in
      loop ();
      tbl)

let read_groups path =
  with_reader path (fun lr ->
      let groups = ref [] in
      let rec read_rows n acc =
        if n = 0 then List.rev acc
        else
          match next_tokens lr with
          | None -> parse_error lr.lr_file lr.lr_num "truncated group"
          | Some toks -> read_rows (n - 1) (Array.of_list toks :: acc)
      in
      let rec loop () =
        match next_tokens lr with
        | None -> ()
        | Some [ "Group"; name; slices; stages ] ->
          let slices = int_tok lr slices and stages = int_tok lr stages in
          let rows = read_rows slices [] in
          List.iter
            (fun r ->
              if Array.length r <> stages then
                parse_error lr.lr_file lr.lr_num "group %s: bad row width" name)
            rows;
          groups := (name, Array.of_list rows) :: !groups;
          loop ()
        | Some toks ->
          parse_error lr.lr_file lr.lr_num "bad groups line: %s" (String.concat " " toks)
      in
      loop ();
      List.rev !groups)

let read ~basename =
  let dir = Filename.dirname basename in
  let aux_path = basename ^ ".aux" in
  let files =
    with_reader aux_path (fun lr ->
        match next_tokens lr with
        | Some (_ :: ":" :: files) -> files
        | _ -> parse_error lr.lr_file lr.lr_num "bad aux file")
  in
  let find_ext ext =
    List.find_opt (fun f -> Filename.check_suffix f ext) files
    |> Option.map (fun f -> Filename.concat dir f)
  in
  let require ext =
    match find_ext ext with
    | Some f -> f
    | None -> raise (Parse_error (Printf.sprintf "%s: missing %s entry" aux_path ext))
  in
  let nodes_path = require ".nodes" in
  let nets_path = require ".nets" in
  let pl_path = require ".pl" in
  let rows = read_scl (require ".scl") in
  let masters =
    match find_ext ".masters" with Some f -> read_masters f | None -> Hashtbl.create 0
  in
  let raw_groups = match find_ext ".groups" with Some f -> read_groups f | None -> [] in
  let die_w =
    if rows.rr_sites > 0 then float_of_int rows.rr_sites *. rows.rr_site_width
    else
      (* Fall back to the extent of the placement. *)
      scan_max_node_width nodes_path *. 4.0
  in
  let die =
    Rect.make ~xl:rows.rr_x0 ~yl:rows.rr_y0 ~xh:(rows.rr_x0 +. die_w)
      ~yh:(rows.rr_y0 +. (float_of_int rows.rr_count *. rows.rr_height))
  in
  let b =
    Builder.create ~name:(Filename.basename basename) ~die ~row_height:rows.rr_height
      ~site_width:rows.rr_site_width ()
  in
  let fixed_names = read_fixed_names pl_path in
  stream_nodes nodes_path b ~fixed_names ~masters;
  stream_pl pl_path b;
  stream_nets nets_path b;
  List.iter
    (fun (name, rows) ->
      let id_rows =
        Array.map
          (Array.map (fun cname ->
               if cname = "-" then -1
               else
                 match Builder.cell_id b cname with
                 | Some id -> id
                 | None ->
                   raise (Parse_error (Printf.sprintf "group %s: unknown cell %s" name cname))))
          rows
      in
      Builder.add_group b (Groups.make name id_rows))
    raw_groups;
  Builder.finish b
