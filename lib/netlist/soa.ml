module Rect = Dpp_geom.Rect
module Orient = Dpp_geom.Orient

type t = {
  name : string;
  die : Rect.t;
  row_height : float;
  site_width : float;
  num_rows : int;
  num_cells : int;
  num_nets : int;
  num_pins : int;
  (* cell fields, indexed by cell id *)
  cell_name : string array;
  cell_master : string array;
  width : float array;
  height : float array;
  kind : int array;
  x : float array;
  y : float array;
  orient : Orient.t array;
  (* cell -> pins CSR, preserving each cell's pin-list order *)
  cell_pin_off : int array;
  cell_pin : int array;
  (* net fields, indexed by net id *)
  net_name : string array;
  net_weight : float array;
  (* net -> pins CSR, preserving each net's pin-array order *)
  net_pin_off : int array;
  net_pin : int array;
  (* pin fields, indexed by pin id *)
  pin_cell : int array;
  pin_net : int array;
  pin_dir : Types.direction array;
  pin_dx : float array;
  pin_dy : float array;
  groups : Groups.t list;
}

let kind_movable = 0
let kind_fixed = 1
let kind_pad = 2

let code_of_kind = function
  | Types.Movable -> kind_movable
  | Types.Fixed -> kind_fixed
  | Types.Pad -> kind_pad

let kind_of_code = function
  | 0 -> Types.Movable
  | 1 -> Types.Fixed
  | _ -> Types.Pad

let is_fixed t i = t.kind.(i) <> kind_movable

let of_design (d : Design.t) =
  let nc = Design.num_cells d in
  let nn = Design.num_nets d in
  let np = Design.num_pins d in
  let cell_name = Array.make nc "" in
  let cell_master = Array.make nc "" in
  let width = Array.make nc 0.0 in
  let height = Array.make nc 0.0 in
  let kind = Array.make nc kind_movable in
  let cell_pin_off = Array.make (nc + 1) 0 in
  for i = 0 to nc - 1 do
    let c = d.Design.cells.(i) in
    cell_name.(i) <- c.Types.c_name;
    cell_master.(i) <- c.Types.c_master;
    width.(i) <- c.Types.c_width;
    height.(i) <- c.Types.c_height;
    kind.(i) <- code_of_kind c.Types.c_kind;
    cell_pin_off.(i + 1) <- cell_pin_off.(i) + Array.length c.Types.c_pins
  done;
  let cell_pin = Array.make (max 1 cell_pin_off.(nc)) 0 in
  for i = 0 to nc - 1 do
    let pins = d.Design.cells.(i).Types.c_pins in
    Array.blit pins 0 cell_pin cell_pin_off.(i) (Array.length pins)
  done;
  let net_name = Array.make nn "" in
  let net_weight = Array.make nn 0.0 in
  let net_pin_off = Array.make (nn + 1) 0 in
  for n = 0 to nn - 1 do
    let nt = d.Design.nets.(n) in
    net_name.(n) <- nt.Types.n_name;
    net_weight.(n) <- nt.Types.n_weight;
    net_pin_off.(n + 1) <- net_pin_off.(n) + Array.length nt.Types.n_pins
  done;
  let net_pin = Array.make (max 1 net_pin_off.(nn)) 0 in
  for n = 0 to nn - 1 do
    let pins = d.Design.nets.(n).Types.n_pins in
    Array.blit pins 0 net_pin net_pin_off.(n) (Array.length pins)
  done;
  let pin_cell = Array.make np 0 in
  let pin_net = Array.make np (-1) in
  let pin_dir = Array.make np Types.Inout in
  let pin_dx = Array.make np 0.0 in
  let pin_dy = Array.make np 0.0 in
  for p = 0 to np - 1 do
    let pin = d.Design.pins.(p) in
    pin_cell.(p) <- pin.Types.p_cell;
    pin_net.(p) <- pin.Types.p_net;
    pin_dir.(p) <- pin.Types.p_dir;
    pin_dx.(p) <- pin.Types.p_dx;
    pin_dy.(p) <- pin.Types.p_dy
  done;
  {
    name = d.Design.name;
    die = d.Design.die;
    row_height = d.Design.row_height;
    site_width = d.Design.site_width;
    num_rows = d.Design.num_rows;
    num_cells = nc;
    num_nets = nn;
    num_pins = np;
    cell_name;
    cell_master;
    width;
    height;
    kind;
    (* the coordinate and orientation arrays are ALIASED, not copied: the
       flat view and the record view always agree on live placement state,
       so in-place moves (flip, apply_centers) need no synchronization *)
    x = d.Design.x;
    y = d.Design.y;
    orient = d.Design.orient;
    cell_pin_off;
    cell_pin;
    net_name;
    net_weight;
    net_pin_off;
    net_pin;
    pin_cell;
    pin_net;
    pin_dir;
    pin_dx;
    pin_dy;
    groups = d.Design.groups;
  }

let to_design t =
  let cells =
    Array.init t.num_cells (fun i ->
        {
          Types.c_id = i;
          c_name = t.cell_name.(i);
          c_master = t.cell_master.(i);
          c_width = t.width.(i);
          c_height = t.height.(i);
          c_kind = kind_of_code t.kind.(i);
          c_pins = Array.sub t.cell_pin t.cell_pin_off.(i) (t.cell_pin_off.(i + 1) - t.cell_pin_off.(i));
        })
  in
  let nets =
    Array.init t.num_nets (fun n ->
        {
          Types.n_id = n;
          n_name = t.net_name.(n);
          n_weight = t.net_weight.(n);
          n_pins = Array.sub t.net_pin t.net_pin_off.(n) (t.net_pin_off.(n + 1) - t.net_pin_off.(n));
        })
  in
  let pins =
    Array.init t.num_pins (fun p ->
        {
          Types.p_id = p;
          p_cell = t.pin_cell.(p);
          p_net = t.pin_net.(p);
          p_dir = t.pin_dir.(p);
          p_dx = t.pin_dx.(p);
          p_dy = t.pin_dy.(p);
        })
  in
  {
    Design.name = t.name;
    die = t.die;
    row_height = t.row_height;
    site_width = t.site_width;
    num_rows = t.num_rows;
    cells;
    nets;
    pins;
    x = Array.copy t.x;
    y = Array.copy t.y;
    orient = Array.copy t.orient;
    groups = t.groups;
  }

let num_cells t = t.num_cells
let num_nets t = t.num_nets
let num_pins t = t.num_pins
let net_degree t n = t.net_pin_off.(n + 1) - t.net_pin_off.(n)
let cell_degree t i = t.cell_pin_off.(i + 1) - t.cell_pin_off.(i)

let max_net_degree t =
  let m = ref 1 in
  for n = 0 to t.num_nets - 1 do
    let d = net_degree t n in
    if d > !m then m := d
  done;
  !m

let oriented_dims t i = Orient.apply t.orient.(i) ~w:t.width.(i) ~h:t.height.(i)

let cell_rect t i =
  let w, h = oriented_dims t i in
  Rect.make ~xl:t.x.(i) ~yl:t.y.(i) ~xh:(t.x.(i) +. w) ~yh:(t.y.(i) +. h)
