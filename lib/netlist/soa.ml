module Rect = Dpp_geom.Rect
module Orient = Dpp_geom.Orient
module I32 = Dpp_util.Compact.I32
module I8 = Dpp_util.Compact.I8
module F64 = Dpp_util.Compact.F64

type t = {
  name : string;
  die : Rect.t;
  row_height : float;
  site_width : float;
  num_rows : int;
  num_cells : int;
  num_nets : int;
  num_pins : int;
  (* cell fields, indexed by cell id *)
  cell_name : string array;
  cell_master : string array;  (* interned: one block per distinct master *)
  width : float array;
  height : float array;
  kind : I8.t;
  x : float array;
  y : float array;
  orient : Orient.t array;
  (* cell -> pins CSR, preserving each cell's pin-list order *)
  cell_pin_off : I32.t;
  cell_pin : I32.t;
  (* net fields, indexed by net id *)
  net_name : string array;
  net_weight : float array;
  (* net -> pins CSR, preserving each net's pin-array order *)
  net_pin_off : I32.t;
  net_pin : I32.t;
  (* pin fields, indexed by pin id *)
  pin_cell : I32.t;
  pin_net : I32.t;
  pin_dir : I8.t;
  pin_dx : F64.t;
  pin_dy : F64.t;
  groups : Groups.t list;
}

let kind_movable = 0
let kind_fixed = 1
let kind_pad = 2

let code_of_kind = function
  | Types.Movable -> kind_movable
  | Types.Fixed -> kind_fixed
  | Types.Pad -> kind_pad

let kind_of_code = function
  | 0 -> Types.Movable
  | 1 -> Types.Fixed
  | _ -> Types.Pad

let code_of_dir = function Types.Input -> 0 | Types.Output -> 1 | Types.Inout -> 2
let dir_of_code = function 0 -> Types.Input | 1 -> Types.Output | _ -> Types.Inout

let is_fixed t i = I8.uget t.kind i <> kind_movable

(* The int32 CSR overflow gate: entity counts and pin offsets must fit an
   int32 slot.  A design past 2^31 pins fails fast at derivation time
   with the counted total, never by silent wraparound inside a kernel. *)
let guard_pin_count ~name counted =
  if counted > I32.max_value then
    failwith
      (Printf.sprintf
         "Soa.of_design(%s): counted %d pins, which exceeds the int32 CSR offset range \
          (max %d)"
         name counted I32.max_value)

let of_design (d : Design.t) =
  let nc = Design.num_cells d in
  let nn = Design.num_nets d in
  let np = Design.num_pins d in
  guard_pin_count ~name:d.Design.name np;
  let pool = Dpp_util.Strpool.create () in
  let cell_name = Array.make nc "" in
  let cell_master = Array.make nc "" in
  let width = Array.make nc 0.0 in
  let height = Array.make nc 0.0 in
  let kind = I8.make nc kind_movable in
  let cell_pin_off = I32.make (nc + 1) 0 in
  for i = 0 to nc - 1 do
    let c = d.Design.cells.(i) in
    cell_name.(i) <- c.Types.c_name;
    cell_master.(i) <- Dpp_util.Strpool.intern pool c.Types.c_master;
    width.(i) <- c.Types.c_width;
    height.(i) <- c.Types.c_height;
    I8.set kind i (code_of_kind c.Types.c_kind);
    I32.set cell_pin_off (i + 1) (I32.get cell_pin_off i + Array.length c.Types.c_pins)
  done;
  let cell_pin = I32.make (max 1 (I32.get cell_pin_off nc)) 0 in
  for i = 0 to nc - 1 do
    let pins = d.Design.cells.(i).Types.c_pins in
    I32.blit_array pins ~src_off:0 cell_pin ~dst_off:(I32.get cell_pin_off i)
      ~len:(Array.length pins)
  done;
  let net_name = Array.make nn "" in
  let net_weight = Array.make nn 0.0 in
  let net_pin_off = I32.make (nn + 1) 0 in
  for n = 0 to nn - 1 do
    let nt = d.Design.nets.(n) in
    net_name.(n) <- Dpp_util.Strpool.intern pool nt.Types.n_name;
    net_weight.(n) <- nt.Types.n_weight;
    I32.set net_pin_off (n + 1) (I32.get net_pin_off n + Array.length nt.Types.n_pins)
  done;
  let net_pin = I32.make (max 1 (I32.get net_pin_off nn)) 0 in
  for n = 0 to nn - 1 do
    let pins = d.Design.nets.(n).Types.n_pins in
    I32.blit_array pins ~src_off:0 net_pin ~dst_off:(I32.get net_pin_off n)
      ~len:(Array.length pins)
  done;
  let pin_cell = I32.make (max 1 np) 0 in
  let pin_net = I32.make (max 1 np) (-1) in
  let pin_dir = I8.make (max 1 np) (code_of_dir Types.Inout) in
  let pin_dx = F64.make (max 1 np) 0.0 in
  let pin_dy = F64.make (max 1 np) 0.0 in
  for p = 0 to np - 1 do
    let pin = d.Design.pins.(p) in
    I32.set pin_cell p pin.Types.p_cell;
    I32.set pin_net p pin.Types.p_net;
    I8.set pin_dir p (code_of_dir pin.Types.p_dir);
    F64.set pin_dx p pin.Types.p_dx;
    F64.set pin_dy p pin.Types.p_dy
  done;
  {
    name = d.Design.name;
    die = d.Design.die;
    row_height = d.Design.row_height;
    site_width = d.Design.site_width;
    num_rows = d.Design.num_rows;
    num_cells = nc;
    num_nets = nn;
    num_pins = np;
    cell_name;
    cell_master;
    width;
    height;
    kind;
    (* the coordinate and orientation arrays are ALIASED, not copied: the
       flat view and the record view always agree on live placement state,
       so in-place moves (flip, apply_centers) need no synchronization *)
    x = d.Design.x;
    y = d.Design.y;
    orient = d.Design.orient;
    cell_pin_off;
    cell_pin;
    net_name;
    net_weight;
    net_pin_off;
    net_pin;
    pin_cell;
    pin_net;
    pin_dir;
    pin_dx;
    pin_dy;
    groups = d.Design.groups;
  }

let to_design t =
  let cells =
    Array.init t.num_cells (fun i ->
        let lo = I32.get t.cell_pin_off i in
        {
          Types.c_id = i;
          c_name = t.cell_name.(i);
          c_master = t.cell_master.(i);
          c_width = t.width.(i);
          c_height = t.height.(i);
          c_kind = kind_of_code (I8.get t.kind i);
          c_pins = I32.sub_array t.cell_pin ~off:lo ~len:(I32.get t.cell_pin_off (i + 1) - lo);
        })
  in
  let nets =
    Array.init t.num_nets (fun n ->
        let lo = I32.get t.net_pin_off n in
        {
          Types.n_id = n;
          n_name = t.net_name.(n);
          n_weight = t.net_weight.(n);
          n_pins = I32.sub_array t.net_pin ~off:lo ~len:(I32.get t.net_pin_off (n + 1) - lo);
        })
  in
  let pins =
    Array.init t.num_pins (fun p ->
        {
          Types.p_id = p;
          p_cell = I32.get t.pin_cell p;
          p_net = I32.get t.pin_net p;
          p_dir = dir_of_code (I8.get t.pin_dir p);
          p_dx = F64.get t.pin_dx p;
          p_dy = F64.get t.pin_dy p;
        })
  in
  {
    Design.name = t.name;
    die = t.die;
    row_height = t.row_height;
    site_width = t.site_width;
    num_rows = t.num_rows;
    cells;
    nets;
    pins;
    x = Array.copy t.x;
    y = Array.copy t.y;
    orient = Array.copy t.orient;
    groups = t.groups;
  }

let num_cells t = t.num_cells
let num_nets t = t.num_nets
let num_pins t = t.num_pins
let net_degree t n = I32.uget t.net_pin_off (n + 1) - I32.uget t.net_pin_off n
let cell_degree t i = I32.uget t.cell_pin_off (i + 1) - I32.uget t.cell_pin_off i

let max_net_degree t =
  let m = ref 1 in
  for n = 0 to t.num_nets - 1 do
    let d = net_degree t n in
    if d > !m then m := d
  done;
  !m

let oriented_dims t i = Orient.apply t.orient.(i) ~w:t.width.(i) ~h:t.height.(i)

let cell_rect t i =
  let w, h = oriented_dims t i in
  Rect.make ~xl:t.x.(i) ~yl:t.y.(i) ~xh:(t.x.(i) +. w) ~yh:(t.y.(i) +. h)

(* resident bytes of the compact (non-aliased) payloads, for the memory
   ledger and the bytes-per-cell accounting in DESIGN.md *)
let compact_bytes t =
  (4 * (I32.length t.cell_pin_off + I32.length t.cell_pin + I32.length t.net_pin_off
       + I32.length t.net_pin + I32.length t.pin_cell + I32.length t.pin_net))
  + I8.length t.kind + I8.length t.pin_dir
  + (8 * (F64.length t.pin_dx + F64.length t.pin_dy))
