(** Structural sanity checks.  The flow refuses to place a design with
    [Error]-severity issues; [Warning]s are logged and tolerated. *)

type severity = Warning | Error

type issue = {
  severity : severity;
  subject : string;
      (** the named entity the issue is about — ["cell <name>"],
          ["net <name>"], ["group <name>"], ["pin <id> of cell <name>"], or
          ["design"] — so downstream reports (e.g. [Dpp_check] violations)
          can attribute failures without re-deriving names from indices *)
  message : string;
}

val check : Design.t -> issue list
(** Runs every check:
    - pin/net/cell cross-references are in range and mutually consistent
    - net degrees: degree-0 nets are errors, degree-1 nets warnings
    - duplicate cell names are errors
    - fixed cells and pads outside the die are warnings
    - movable cells wider/taller than the die, or whose height is not a
      whole number of rows (multi-row movable macros are allowed), are
      errors
    - utilization above 1.0 is an error, above 0.95 a warning
    - group annotations referencing fixed cells or out-of-range ids are
      errors; a cell in two groups is an error *)

val errors : issue list -> issue list
val is_clean : issue list -> bool
(** No [Error]-severity issues. *)

val pp_issue : Format.formatter -> issue -> unit
(** ["[severity] subject: message"]. *)
