(** The flat structure-of-arrays netlist core.

    Every hot kernel in the flow — smooth wirelength gradients, bell
    density, RUDY congestion, the incremental net-box cache, and the
    legalization/detail/flip occupancy scans — iterates over this view:
    one plain [float array] (or [int array]) per field, plus CSR
    adjacency for both directions of the cell/net/pin incidence.  The
    boxed {!Types.cell}/{!Types.net}/{!Types.pin} records stay the
    canonical {e construction and I/O} representation ({!Builder},
    {!Bookshelf}, {!Validate}, the oracles); a [Soa.t] is derived from a
    {!Design.t} once per flow and kept authoritative from then on.

    {2 Handles and index conventions}

    A handle is a bare [int]: cell ids, net ids and pin ids are exactly
    the indices of {!Design.t}'s dense entity arrays.  CSR adjacency
    follows the usual two-array convention — for nets,
    [net_pin.(net_pin_off.(n) .. net_pin_off.(n+1) - 1)] are net [n]'s
    pin ids {e in the net's original pin order}, so kernels ported from
    the record path accumulate floats in the identical order and produce
    bit-identical results.  The cell-side CSR ([cell_pin_off]/[cell_pin])
    preserves each cell's pin-list order the same way.

    {2 Aliasing contract}

    [x], [y] and [orient] {e alias} the source design's mutable arrays:
    the flat view and the record view always agree on live placement
    state, and in-place updates (the flip stage's orientation writes,
    {!Dpp_wirelen.Pins.apply_centers}) are visible through both.  All
    other arrays are private copies; mutating them does not write back.
    {!to_design} deep-copies everything, so the round trip
    [to_design (of_design d)] is field-for-field equal to [d] while
    sharing no mutable state with it. *)

type t = {
  name : string;
  die : Dpp_geom.Rect.t;
  row_height : float;
  site_width : float;
  num_rows : int;
  num_cells : int;
  num_nets : int;
  num_pins : int;
  cell_name : string array;
  cell_master : string array;
  width : float array;  (** unoriented cell width, indexed by cell id *)
  height : float array;
  kind : int array;  (** {!kind_movable} / {!kind_fixed} / {!kind_pad} *)
  x : float array;  (** lower-left x — aliases [Design.x] *)
  y : float array;  (** lower-left y — aliases [Design.y] *)
  orient : Dpp_geom.Orient.t array;  (** aliases [Design.orient] *)
  cell_pin_off : int array;  (** cell->pin CSR offsets, length [num_cells + 1] *)
  cell_pin : int array;  (** pin ids, cell pin-list order preserved *)
  net_name : string array;
  net_weight : float array;
  net_pin_off : int array;  (** net->pin CSR offsets, length [num_nets + 1] *)
  net_pin : int array;  (** pin ids, net pin-array order preserved *)
  pin_cell : int array;  (** owning cell id per pin *)
  pin_net : int array;  (** net id per pin, [-1] when unconnected *)
  pin_dir : Types.direction array;
  pin_dx : float array;  (** offset from the cell's lower-left corner, N orientation *)
  pin_dy : float array;
  groups : Groups.t list;
}

val of_design : Design.t -> t
(** Derive the flat view.  O(cells + nets + pins); [x]/[y]/[orient] are
    aliased (see the module contract), everything else is copied. *)

val to_design : t -> Design.t
(** Rebuild a record-view design.  Exact field-for-field inverse of
    {!of_design} (entity ids are the array indices, as {!Builder}
    guarantees); coordinate arrays are fresh copies. *)

val kind_movable : int
val kind_fixed : int
val kind_pad : int
val code_of_kind : Types.cell_kind -> int
val kind_of_code : int -> Types.cell_kind

val is_fixed : t -> int -> bool
(** Fixed cells and pads are immovable. *)

val num_cells : t -> int
val num_nets : t -> int
val num_pins : t -> int

val net_degree : t -> int -> int
val cell_degree : t -> int -> int
val max_net_degree : t -> int
(** At least 1, so degree-sized scratch buffers are never empty. *)

val oriented_dims : t -> int -> float * float
(** Width and height of cell [i] at its current orientation. *)

val cell_rect : t -> int -> Dpp_geom.Rect.t
(** Bounding box of cell [i] at its current position and orientation —
    same values as {!Design.cell_rect}. *)
