(** The flat structure-of-arrays netlist core.

    Every hot kernel in the flow — smooth wirelength gradients, bell
    density, RUDY congestion, the incremental net-box cache, and the
    legalization/detail/flip occupancy scans — iterates over this view:
    one plain [float array] (or [int array]) per field, plus CSR
    adjacency for both directions of the cell/net/pin incidence.  The
    boxed {!Types.cell}/{!Types.net}/{!Types.pin} records stay the
    canonical {e construction and I/O} representation ({!Builder},
    {!Bookshelf}, {!Validate}, the oracles); a [Soa.t] is derived from a
    {!Design.t} once per flow and kept authoritative from then on.

    {2 Compact backing}

    CSR connectivity and per-pin metadata are stored in
    {!Dpp_util.Compact} Bigarrays — int32 for pin/cell/net indices (4
    bytes per slot instead of 8), int8 for [kind]/[pin_dir], unboxed
    float64 for pin offsets.  The payloads live outside the OCaml heap,
    so the GC never scans the netlist's bulk.  Index values are plain
    [int]s at every accessor; {!of_design} fails fast with [Failure]
    when a design's pin count exceeds the int32 range (see
    {!guard_pin_count}).

    {2 Handles and index conventions}

    A handle is a bare [int]: cell ids, net ids and pin ids are exactly
    the indices of {!Design.t}'s dense entity arrays.  CSR adjacency
    follows the usual two-array convention — for nets,
    [net_pin.(net_pin_off.(n) .. net_pin_off.(n+1) - 1)] are net [n]'s
    pin ids {e in the net's original pin order}, so kernels ported from
    the record path accumulate floats in the identical order and produce
    bit-identical results.  The cell-side CSR ([cell_pin_off]/[cell_pin])
    preserves each cell's pin-list order the same way.

    {2 Aliasing contract}

    [x], [y] and [orient] {e alias} the source design's mutable arrays:
    the flat view and the record view always agree on live placement
    state, and in-place updates (the flip stage's orientation writes,
    {!Dpp_wirelen.Pins.apply_centers}) are visible through both.  All
    other arrays are private copies; mutating them does not write back.
    {!to_design} deep-copies everything, so the round trip
    [to_design (of_design d)] is field-for-field equal to [d] while
    sharing no mutable state with it. *)

type t = {
  name : string;
  die : Dpp_geom.Rect.t;
  row_height : float;
  site_width : float;
  num_rows : int;
  num_cells : int;
  num_nets : int;
  num_pins : int;
  cell_name : string array;
  cell_master : string array;  (** interned: one shared block per distinct master *)
  width : float array;  (** unoriented cell width, indexed by cell id *)
  height : float array;
  kind : Dpp_util.Compact.I8.t;
      (** {!kind_movable} / {!kind_fixed} / {!kind_pad} *)
  x : float array;  (** lower-left x — aliases [Design.x] *)
  y : float array;  (** lower-left y — aliases [Design.y] *)
  orient : Dpp_geom.Orient.t array;  (** aliases [Design.orient] *)
  cell_pin_off : Dpp_util.Compact.I32.t;
      (** cell->pin CSR offsets, length [num_cells + 1] *)
  cell_pin : Dpp_util.Compact.I32.t;  (** pin ids, cell pin-list order preserved *)
  net_name : string array;  (** interned through the same pool as [cell_master] *)
  net_weight : float array;
  net_pin_off : Dpp_util.Compact.I32.t;
      (** net->pin CSR offsets, length [num_nets + 1] *)
  net_pin : Dpp_util.Compact.I32.t;  (** pin ids, net pin-array order preserved *)
  pin_cell : Dpp_util.Compact.I32.t;  (** owning cell id per pin *)
  pin_net : Dpp_util.Compact.I32.t;  (** net id per pin, [-1] when unconnected *)
  pin_dir : Dpp_util.Compact.I8.t;  (** {!code_of_dir} codes *)
  pin_dx : Dpp_util.Compact.F64.t;
      (** offset from the cell's lower-left corner, N orientation *)
  pin_dy : Dpp_util.Compact.F64.t;
  groups : Groups.t list;
}

val of_design : Design.t -> t
(** Derive the flat view.  O(cells + nets + pins); [x]/[y]/[orient] are
    aliased (see the module contract), everything else is copied. *)

val to_design : t -> Design.t
(** Rebuild a record-view design.  Exact field-for-field inverse of
    {!of_design} (entity ids are the array indices, as {!Builder}
    guarantees); coordinate arrays are fresh copies. *)

val guard_pin_count : name:string -> int -> unit
(** The int32 CSR overflow gate: raises [Failure] with a counted-pins
    message when the total pin count does not fit an int32 offset slot.
    {!of_design} routes every design through it. *)

val kind_movable : int
val kind_fixed : int
val kind_pad : int
val code_of_kind : Types.cell_kind -> int
val kind_of_code : int -> Types.cell_kind

val code_of_dir : Types.direction -> int
(** [Input] = 0, [Output] = 1, [Inout] = 2 — the [pin_dir] int8 codes. *)

val dir_of_code : int -> Types.direction

val is_fixed : t -> int -> bool
(** Fixed cells and pads are immovable. *)

val num_cells : t -> int
val num_nets : t -> int
val num_pins : t -> int

val net_degree : t -> int -> int
val cell_degree : t -> int -> int
val max_net_degree : t -> int
(** At least 1, so degree-sized scratch buffers are never empty. *)

val oriented_dims : t -> int -> float * float
(** Width and height of cell [i] at its current orientation. *)

val cell_rect : t -> int -> Dpp_geom.Rect.t
(** Bounding box of cell [i] at its current position and orientation —
    same values as {!Design.cell_rect}. *)

val compact_bytes : t -> int
(** Total bytes of the off-heap compact payloads (CSR + per-pin
    metadata), for memory-ledger reporting. *)
