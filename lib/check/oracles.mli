(** The oracle library: composable placement invariant checks, each
    returning a structured {!Violation.t} list (empty = invariant holds).

    Oracles are deliberately independent of the flow's context type so they
    can be applied to any design + coordinate pair — from the staged
    pipeline's [--check] mode, from the fuzz harness, or from user
    debugging sessions.  Coordinates are cell {e centers}, as everywhere in
    the placer. *)

val finite : Dpp_netlist.Design.t -> cx:float array -> cy:float array -> Violation.t list
(** Every movable cell's coordinates are finite (NaN/infinity poisoning is
    the cheapest-to-catch symptom of a numerical bug). *)

val overlap_bounds :
  ?tolerance:float ->
  Dpp_netlist.Design.t ->
  cx:float array ->
  cy:float array ->
  Violation.t list
(** No movable cell overlaps another movable or fixed cell, and every
    movable cell lies fully inside the die. *)

val row_site :
  ?tolerance:float ->
  Dpp_netlist.Design.t ->
  cx:float array ->
  cy:float array ->
  Violation.t list
(** Every movable cell sits exactly on a row and on the site grid — the
    post-legalization alignment invariant. *)

val legal :
  ?tolerance:float ->
  Dpp_netlist.Design.t ->
  cx:float array ->
  cy:float array ->
  Violation.t list
(** The full legality invariant: {!overlap_bounds} and {!row_site} in one
    audit pass. *)

val group_integrity :
  ?tol:float ->
  Dpp_netlist.Design.t ->
  Dpp_structure.Dgroup.t list ->
  cx:float array ->
  cy:float array ->
  Violation.t list
(** Each given (snapped) datapath group is an exact rigid array: members
    sit at their idealized offsets from a common origin (alignment error
    below [tol], default 1e-6), no member appears in two groups, and every
    member is inside the die. *)

val netbox_sync :
  ?pool:Dpp_par.Pool.t ->
  ?tol:float ->
  ?net_name:(int -> string) ->
  Dpp_wirelen.Netbox.t ->
  Violation.t list
(** The incremental HPWL cache agrees with a fresh rescan of the live
    coordinates: every committed per-net box and the running total
    ({!Dpp_wirelen.Netbox.audit}).  This is the oracle that catches stages
    writing to the shared coordinate arrays behind the cache's back. *)

val gradient :
  ?pool:Dpp_par.Pool.t ->
  ?samples:int ->
  ?eps:float ->
  ?tol:float ->
  seed:int ->
  model:Dpp_wirelen.Model.kind ->
  gamma:float ->
  Dpp_netlist.Design.t ->
  Violation.t list
(** The analytic gradient of the chosen smooth wirelength model matches a
    central finite difference on [samples] (default 12) randomly chosen
    movable coordinates (relative error below [tol], default 1e-3).
    Deterministic in [seed] — and in the pool size: samples land in
    per-sample slots reduced in a fixed order.  The difference is taken
    over the perturbed cell's incident nets only (everything else cancels
    exactly), so cost is O(local degree) per sample rather than a full
    objective evaluation; with [pool], the analytic gradient and the
    sample batch both fan out over the workers.  Evaluates at the
    design's current placement. *)

val congestion :
  ?pool:Dpp_par.Pool.t ->
  ?pins:Dpp_wirelen.Pins.t ->
  ?tol:float ->
  Dpp_netlist.Design.t ->
  stats:Dpp_congest.Rudy.stats ->
  cx:float array ->
  cy:float array ->
  Violation.t list
(** The stored congestion statistics agree with a freshly recomputed
    {!Dpp_congest.Rudy} map over the same coordinates (relative error
    below [tol], default 1e-9 — with the same pool the recomputation is
    bit-identical, so this catches stale stats, not float noise).  This is
    the oracle that catches a flow reporting congestion for coordinates a
    later mutation moved away from. *)

val rt_ledger : ?tol:float -> Dpp_place.Gp.rt_round list -> Violation.t list
(** Bookkeeping invariants of a routability-steering ledger
    ({!Dpp_place.Gp.result.rt_trace}): entries in round order; the
    [rt_best] envelope is exactly the running minimum of [rt_ace]
    (monotone non-increasing across the inflate/retry loop); outstanding
    virtual area is finite, non-negative and never exceeds the budget;
    and the final entry closes the ledger (zero virtual area, zero
    inflated cells — everything deflated at flow end).  The empty list is
    vacuously clean. *)

val validate : Dpp_netlist.Design.t -> Violation.t list
(** {!Dpp_netlist.Validate} errors lifted to violations, carrying the
    validator's named subjects (cell/net/group names, not bare indices). *)

val bookshelf_roundtrip : Dpp_netlist.Design.t -> Violation.t list
(** Write the design to a temporary directory in Bookshelf format, read it
    back, and compare: entity counts, per-cell name/master/kind/shape and
    position, per-net connected-pin multisets, and group membership.
    Unconnected pins are excluded from the comparison (the format cannot
    represent them; see {!Dpp_netlist.Bookshelf}).  Temporary files are
    always removed. *)

val cluster_integrity : ?tol:float -> Dpp_coarsen.level -> Violation.t list
(** Integrity of one coarsening level: the cluster/member maps form an
    exact partition of the fine cells (every fine cell in exactly one
    cluster, maps mutually inverse); movable clusters contain only
    movable cells and conserve member area within relative tolerance
    [tol] (default 1e-6) — group clusters own their idealized array
    footprint, so their member area may only fall {e below} it; fixed
    cells and pads survive as verbatim singletons (kind, shape,
    position); and every collapsed datapath group's cluster holds
    exactly the group's member set — no {!Dpp_structure.Dgroup} is ever
    split across clusters. *)
