type t = { oracle : string; subject : string; detail : string }

let v ~oracle ~subject fmt =
  Printf.ksprintf (fun detail -> { oracle; subject; detail }) fmt

let to_string t = Printf.sprintf "%s: %s: %s" t.oracle t.subject t.detail

let strings vs = List.map to_string vs

let pp ppf t = Format.pp_print_string ppf (to_string t)

let summary = function
  | [] -> "ok"
  | [ x ] -> to_string x
  | x :: rest -> Printf.sprintf "%s (+%d more)" (to_string x) (List.length rest)
