(** Structured violation reports — what every oracle returns instead of a
    bare bool, so a failure carries enough context to act on: which oracle
    fired, which named entity it fired on, and what exactly disagreed. *)

type t = {
  oracle : string;  (** oracle identifier, e.g. ["legal"] or ["netbox"] *)
  subject : string;  (** named entity, e.g. ["cell a12"] or ["net n_sum_3"] *)
  detail : string;  (** human-readable description of the disagreement *)
}

val v : oracle:string -> subject:string -> ('a, unit, string, t) format4 -> 'a
(** [v ~oracle ~subject fmt ...] builds one violation with a formatted
    detail string. *)

val to_string : t -> string
(** ["oracle: subject: detail"]. *)

val strings : t list -> string list

val pp : Format.formatter -> t -> unit

val summary : t list -> string
(** ["ok"] for an empty list; otherwise the first violation plus a count of
    the rest — the one-line form stage traces embed. *)
