module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Design = Dpp_netlist.Design
module Validate = Dpp_netlist.Validate
module Bookshelf = Dpp_netlist.Bookshelf
module Groups = Dpp_netlist.Groups
module Pins = Dpp_wirelen.Pins
module Netbox = Dpp_wirelen.Netbox
module Model = Dpp_wirelen.Model
module Par_grad = Dpp_wirelen.Par_grad
module Dgroup = Dpp_structure.Dgroup
module Legality = Dpp_place.Legality
module Rng = Dpp_util.Rng

let cell_name d i = (Design.cell d i).Types.c_name

let finite d ~cx ~cy =
  Array.fold_left
    (fun acc i ->
      let bad v axis =
        Violation.v ~oracle:"finite"
          ~subject:(Printf.sprintf "cell %s" (cell_name d i))
          "%s coordinate is %s" axis
          (if Float.is_nan v then "NaN" else "infinite")
      in
      let acc = if Float.is_finite cx.(i) then acc else bad cx.(i) "x" :: acc in
      if Float.is_finite cy.(i) then acc else bad cy.(i) "y" :: acc)
    []
    (Design.movable_ids d)
  |> List.rev

let of_legality ~oracle d violation =
  let subj i = Printf.sprintf "cell %s" (cell_name d i) in
  match violation with
  | Legality.Outside i -> Violation.v ~oracle ~subject:(subj i) "lies outside the die"
  | Legality.Off_row i -> Violation.v ~oracle ~subject:(subj i) "bottom edge is off-row"
  | Legality.Off_site i -> Violation.v ~oracle ~subject:(subj i) "is off the site grid"
  | Legality.Overlap (i, j) ->
    Violation.v ~oracle ~subject:(subj i) "overlaps movable cell %s" (cell_name d j)
  | Legality.Overlaps_fixed (i, j) ->
    Violation.v ~oracle ~subject:(subj i) "overlaps fixed cell %s" (cell_name d j)

let audit ?tolerance ~oracle ~keep d ~cx ~cy =
  Legality.check ?tolerance d ~cx ~cy
  |> List.filter keep
  |> List.map (of_legality ~oracle d)

let overlap_bounds ?tolerance d ~cx ~cy =
  audit ?tolerance ~oracle:"overlap-bounds"
    ~keep:(function
      | Legality.Outside _ | Legality.Overlap _ | Legality.Overlaps_fixed _ -> true
      | Legality.Off_row _ | Legality.Off_site _ -> false)
    d ~cx ~cy

let row_site ?tolerance d ~cx ~cy =
  audit ?tolerance ~oracle:"row-site"
    ~keep:(function
      | Legality.Off_row _ | Legality.Off_site _ -> true
      | Legality.Outside _ | Legality.Overlap _ | Legality.Overlaps_fixed _ -> false)
    d ~cx ~cy

let legal ?tolerance d ~cx ~cy =
  audit ?tolerance ~oracle:"legal" ~keep:(fun _ -> true) d ~cx ~cy

let group_integrity ?(tol = 1e-6) d dgroups ~cx ~cy =
  let acc = ref [] in
  let owner = Hashtbl.create 256 in
  List.iter
    (fun (dg : Dgroup.t) ->
      let gname = dg.Dgroup.group.Groups.g_name in
      let subject = Printf.sprintf "group %s" gname in
      Array.iter
        (fun c ->
          (match Hashtbl.find_opt owner c with
          | Some other when other <> gname ->
            acc :=
              Violation.v ~oracle:"groups"
                ~subject:(Printf.sprintf "cell %s" (cell_name d c))
                "belongs to both group %s and group %s" other gname
              :: !acc
          | _ -> Hashtbl.replace owner c gname);
          let r =
            Rect.of_center ~cx:cx.(c) ~cy:cy.(c) ~w:(Design.cell d c).Types.c_width
              ~h:(Design.cell d c).Types.c_height
          in
          if not (Rect.contains_rect (Rect.expand d.Design.die 1e-6) r) then
            acc :=
              Violation.v ~oracle:"groups"
                ~subject:(Printf.sprintf "cell %s" (cell_name d c))
                "member of group %s lies outside the die" gname
              :: !acc)
        dg.Dgroup.cells;
      let err = Dgroup.alignment_error dg ~cx ~cy in
      if err > tol then
        acc :=
          Violation.v ~oracle:"groups" ~subject
            "snapped array has alignment error %.3g (tolerance %.3g)" err tol
          :: !acc)
    dgroups;
  List.rev !acc

let netbox_sync ?pool ?tol ?(net_name = fun n -> Printf.sprintf "#%d" n) nb =
  Netbox.audit ?pool ?tol nb
  |> List.map (fun (net, msg) ->
         match net with
         | Some n ->
           Violation.v ~oracle:"netbox" ~subject:(Printf.sprintf "net %s" (net_name n)) "%s"
             msg
         | None -> Violation.v ~oracle:"netbox" ~subject:"total" "%s" msg)

let gradient ?pool ?(samples = 12) ?(eps = 1e-5) ?(tol = 1e-3) ~seed ~model ~gamma d =
  let pins = Pins.build d in
  let cx, cy = Pins.centers_of_design d in
  let nc = Design.num_cells d in
  let gx = Array.make nc 0.0 and gy = Array.make nc 0.0 in
  (match pool with
  | Some pool ->
    let pg = Par_grad.create pool pins in
    ignore (Par_grad.value_grad pg pool model ~gamma ~cx ~cy ~gx ~gy)
  | None -> ignore (Model.value_grad model pins ~gamma ~cx ~cy ~gx ~gy));
  let movable = Design.movable_ids d in
  let rng = Rng.create seed in
  let n = min samples (Array.length movable) in
  let picks =
    if n = 0 then [||]
    else
      Array.map
        (fun k -> movable.(k))
        (Rng.sample_without_replacement rng n (Array.length movable))
  in
  (* Only nets incident to the perturbed cell change under the
     perturbation, so the central difference is taken over those nets
     alone — O(local degree) per sample instead of a full objective
     evaluation, and better conditioned (no cancellation against the
     unchanged rest of the design).  Samples are batched over the pool;
     each lands in its own slot and nothing shared is mutated. *)
  let axis =
    match model with
    | Model.Lse -> Dpp_wirelen.Lse.axis_value_grad
    | Model.Wa -> Dpp_wirelen.Wa.axis_value_grad
  in
  let incident_nets i =
    let nets = ref [] in
    Array.iter
      (fun p ->
        let nid = (Design.pin d p).Types.p_net in
        if
          nid >= 0
          && Array.length (Design.net d nid).Types.n_pins >= 2
          && not (List.mem nid !nets)
        then nets := nid :: !nets)
      (Design.cell d i).Types.c_pins;
    List.rev !nets
  in
  let eval_nets (view : Pins.t) nets ~pert ~dx ~dy =
    List.fold_left
      (fun acc nid ->
        let np = (Design.net d nid).Types.n_pins in
        let k = Array.length np in
        for idx = 0 to k - 1 do
          let p = np.(idx) in
          let c = Dpp_util.Compact.I32.get view.Pins.pin_cell p in
          let px = if c = pert then cx.(c) +. dx else cx.(c) in
          let py = if c = pert then cy.(c) +. dy else cy.(c) in
          view.Pins.scratch_x.(idx) <- px +. view.Pins.off_x.(p);
          view.Pins.scratch_y.(idx) <- py +. view.Pins.off_y.(p)
        done;
        let vx = axis view.Pins.scratch_x k ~gamma ~w:view.Pins.scratch_w ~u:view.Pins.scratch_u ~v:view.Pins.scratch_v ~want_grad:false in
        let vy = axis view.Pins.scratch_y k ~gamma ~w:view.Pins.scratch_w ~u:view.Pins.scratch_u ~v:view.Pins.scratch_v ~want_grad:false in
        acc +. ((Design.net d nid).Types.n_weight *. (vx +. vy)))
      0.0 nets
  in
  let num_x = Array.make (max 1 n) 0.0 and num_y = Array.make (max 1 n) 0.0 in
  let sample_range (view : Pins.t) lo hi =
    for s = lo to hi - 1 do
      let i = picks.(s) in
      let nets = incident_nets i in
      num_x.(s) <-
        (eval_nets view nets ~pert:i ~dx:eps ~dy:0.0
        -. eval_nets view nets ~pert:i ~dx:(-.eps) ~dy:0.0)
        /. (2.0 *. eps);
      num_y.(s) <-
        (eval_nets view nets ~pert:i ~dx:0.0 ~dy:eps
        -. eval_nets view nets ~pert:i ~dx:0.0 ~dy:(-.eps))
        /. (2.0 *. eps)
    done
  in
  (match pool with
  | None -> sample_range pins 0 n
  | Some pool ->
    let views =
      Array.init
        (Dpp_par.Pool.nworkers pool)
        (fun w -> if w = 0 then pins else Pins.clone_scratch pins)
    in
    Dpp_par.Pool.iter_chunks pool ~n (fun ~worker ~chunk:_ ~lo ~hi ->
        sample_range views.(worker) lo hi));
  let acc = ref [] in
  let check numeric g axis i =
    let err = abs_float (numeric -. g.(i)) /. max 1.0 (abs_float numeric) in
    if err > tol then
      acc :=
        Violation.v ~oracle:"gradient"
          ~subject:(Printf.sprintf "cell %s" (cell_name d i))
          "%s %s-gradient %.6g disagrees with finite difference %.6g (rel err %.3g)"
          (Model.kind_to_string model) axis g.(i) numeric err
        :: !acc
  in
  Array.iteri
    (fun s i ->
      check num_x.(s) gx "x" i;
      check num_y.(s) gy "y" i)
    picks;
  List.rev !acc

(* ----- routability / congestion ----- *)

module Rudy = Dpp_congest.Rudy
module Gp = Dpp_place.Gp

let congestion ?pool ?pins ?(tol = 1e-9) d ~(stats : Rudy.stats) ~cx ~cy =
  let oracle = "congestion" in
  let r = Rudy.compute ?pool ?pins d ~cx ~cy in
  let s = Rudy.stats r in
  let acc = ref [] in
  let check subject fresh stored =
    let err = abs_float (fresh -. stored) /. max 1.0 (abs_float fresh) in
    if err > tol then
      acc :=
        Violation.v ~oracle ~subject
          "stored %.9g disagrees with recomputed %.9g (rel err %.3g)" stored fresh err
        :: !acc
  in
  check "max_ratio" s.Rudy.max_ratio stats.Rudy.max_ratio;
  check "avg_ratio" s.Rudy.avg_ratio stats.Rudy.avg_ratio;
  check "p95_ratio" s.Rudy.p95_ratio stats.Rudy.p95_ratio;
  check "ace_ratio" s.Rudy.ace_ratio stats.Rudy.ace_ratio;
  check "overflowed_bins" s.Rudy.overflowed_bins stats.Rudy.overflowed_bins;
  List.rev !acc

let rt_ledger ?(tol = 1e-9) (rounds : Gp.rt_round list) =
  let oracle = "rt-ledger" in
  let acc = ref [] in
  let add subject fmt =
    Printf.ksprintf
      (fun detail -> acc := Violation.v ~oracle ~subject "%s" detail :: !acc)
      fmt
  in
  let best = ref infinity in
  let prev_round = ref min_int in
  List.iter
    (fun (r : Gp.rt_round) ->
      let subject = Printf.sprintf "round %d" r.Gp.rt_round in
      if r.Gp.rt_round < !prev_round then
        add subject "steering rounds out of order (previous %d)" !prev_round;
      prev_round := r.Gp.rt_round;
      best := min !best r.Gp.rt_ace;
      if abs_float (r.Gp.rt_best -. !best) > tol *. max 1.0 (abs_float !best) then
        add subject "best-ACE envelope %.9g is not the running minimum %.9g" r.Gp.rt_best
          !best;
      if not (Float.is_finite r.Gp.rt_virtual) || r.Gp.rt_virtual < 0.0 then
        add subject "virtual area %.9g is negative or non-finite" r.Gp.rt_virtual;
      if r.Gp.rt_virtual > r.Gp.rt_budget +. (tol *. max 1.0 r.Gp.rt_budget) then
        add subject "virtual area %.9g exceeds the budget %.9g" r.Gp.rt_virtual
          r.Gp.rt_budget;
      if r.Gp.rt_inflated < 0 then
        add subject "negative inflated-cell count %d" r.Gp.rt_inflated)
    rounds;
  (match List.rev rounds with
  | last :: _ ->
    if last.Gp.rt_virtual <> 0.0 || last.Gp.rt_inflated <> 0 then
      add "close" "ledger not closed: %.9g virtual area over %d cells outstanding"
        last.Gp.rt_virtual last.Gp.rt_inflated
  | [] -> ());
  List.rev !acc

let validate d =
  Validate.check d |> Validate.errors
  |> List.map (fun (i : Validate.issue) ->
         Violation.v ~oracle:"validate" ~subject:i.Validate.subject "%s" i.Validate.message)

(* ----- Bookshelf write -> read -> compare ----- *)

let with_temp_dir f =
  let dir = Filename.temp_file "dpp_check" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun file -> Sys.remove (Filename.concat dir file)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* Per net, the multiset of connected endpoints (cell name, pin offset).
   Offsets pass through the writer at finite decimal precision, so the
   multisets are matched under a tolerance rather than compared exactly.
   Unconnected pins are not representable in Bookshelf, so they never
   enter the comparison. *)
let net_endpoints d n =
  Array.to_list (Design.net d n).Types.n_pins
  |> List.map (fun p ->
         let pin = Design.pin d p in
         (cell_name d pin.Types.p_cell, pin.Types.p_dx, pin.Types.p_dy))

let endpoints_match ?(tol = 1e-3) a b =
  let remaining = ref b in
  List.length a = List.length b
  && List.for_all
       (fun (cn, dx, dy) ->
         let rec pick acc = function
           | [] -> false
           | (cn', dx', dy') :: rest
             when cn = cn'
                  && abs_float (dx -. dx') <= tol
                  && abs_float (dy -. dy') <= tol ->
             remaining := List.rev_append acc rest;
             true
           | e :: rest -> pick (e :: acc) rest
         in
         pick [] !remaining)
       a

let bookshelf_roundtrip d =
  let oracle = "bookshelf" in
  let fail =
    try
      with_temp_dir (fun dir ->
          let base = Filename.concat dir "rt" in
          Bookshelf.write d ~basename:base;
          Ok (Bookshelf.read ~basename:base))
    with
    | Bookshelf.Parse_error msg -> Error (Printf.sprintf "re-read failed: %s" msg)
    | Sys_error msg -> Error (Printf.sprintf "I/O failed: %s" msg)
  in
  match fail with
  | Error msg -> [ Violation.v ~oracle ~subject:"design" "%s" msg ]
  | Ok d' ->
    let acc = ref [] in
    let add subject fmt = Printf.ksprintf (fun detail ->
        acc := Violation.v ~oracle ~subject "%s" detail :: !acc) fmt
    in
    let check_count what a b = if a <> b then add "design" "%s count %d became %d" what a b in
    check_count "cell" (Design.num_cells d) (Design.num_cells d');
    check_count "net" (Design.num_nets d) (Design.num_nets d');
    check_count "row" d.Design.num_rows d'.Design.num_rows;
    check_count "group" (List.length d.Design.groups) (List.length d'.Design.groups);
    if Design.num_cells d = Design.num_cells d' then
      for i = 0 to Design.num_cells d - 1 do
        let c = Design.cell d i and c' = Design.cell d' i in
        let subject = Printf.sprintf "cell %s" c.Types.c_name in
        if c.Types.c_name <> c'.Types.c_name then
          add subject "name became %s" c'.Types.c_name;
        if c.Types.c_master <> c'.Types.c_master then
          add subject "master %s became %s" c.Types.c_master c'.Types.c_master;
        if Types.is_fixed_kind c.Types.c_kind <> Types.is_fixed_kind c'.Types.c_kind then
          add subject "fixedness changed";
        if abs_float (c.Types.c_width -. c'.Types.c_width) > 1e-3 then
          add subject "width %.4f became %.4f" c.Types.c_width c'.Types.c_width;
        if abs_float (c.Types.c_height -. c'.Types.c_height) > 1e-3 then
          add subject "height %.4f became %.4f" c.Types.c_height c'.Types.c_height;
        if
          abs_float (d.Design.x.(i) -. d'.Design.x.(i)) > 1e-3
          || abs_float (d.Design.y.(i) -. d'.Design.y.(i)) > 1e-3
        then
          add subject "position (%.4f, %.4f) became (%.4f, %.4f)" d.Design.x.(i)
            d.Design.y.(i) d'.Design.x.(i) d'.Design.y.(i)
      done;
    if Design.num_nets d = Design.num_nets d' then
      for n = 0 to Design.num_nets d - 1 do
        if not (endpoints_match (net_endpoints d n) (net_endpoints d' n)) then
          add
            (Printf.sprintf "net %s" (Design.net d n).Types.n_name)
            "connected pin multiset changed"
      done;
    if List.length d.Design.groups = List.length d'.Design.groups then
      List.iter2
        (fun g g' ->
          let subject = Printf.sprintf "group %s" g.Groups.g_name in
          if g.Groups.g_name <> g'.Groups.g_name then
            add subject "name became %s" g'.Groups.g_name;
          if
            Groups.num_slices g <> Groups.num_slices g'
            || Groups.num_stages g <> Groups.num_stages g'
          then add subject "shape changed";
          if Groups.jaccard g g' < 1.0 then add subject "membership changed")
        d.Design.groups d'.Design.groups;
    List.rev !acc

(* ----- multilevel cluster integrity ----- *)

let cluster_integrity ?(tol = 1e-6) (lvl : Dpp_coarsen.level) =
  let oracle = "clusters" in
  let fine = lvl.Dpp_coarsen.fine and coarse = lvl.Dpp_coarsen.coarse in
  let nf = Design.num_cells fine and k = Design.num_cells coarse in
  let acc = ref [] in
  let add subject fmt =
    Printf.ksprintf
      (fun detail -> acc := Violation.v ~oracle ~subject "%s" detail :: !acc)
      fmt
  in
  let level_subject = Printf.sprintf "level %s" coarse.Design.name in
  if Array.length lvl.Dpp_coarsen.cluster_of <> nf then
    add level_subject "cluster map covers %d of %d fine cells"
      (Array.length lvl.Dpp_coarsen.cluster_of) nf
  else if Array.length lvl.Dpp_coarsen.members <> k then
    add level_subject "member map covers %d of %d clusters"
      (Array.length lvl.Dpp_coarsen.members) k
  else begin
    (* partition: every fine cell in exactly one cluster, maps inverse *)
    let seen = Array.make nf 0 in
    Array.iteri
      (fun cid ms ->
        Array.iter
          (fun i ->
            if i < 0 || i >= nf then add level_subject "cluster %d lists bad cell id %d" cid i
            else begin
              seen.(i) <- seen.(i) + 1;
              if lvl.Dpp_coarsen.cluster_of.(i) <> cid then
                add
                  (Printf.sprintf "cell %s" (cell_name fine i))
                  "listed in cluster %d but mapped to %d" cid
                  lvl.Dpp_coarsen.cluster_of.(i)
            end)
          ms)
      lvl.Dpp_coarsen.members;
    Array.iteri
      (fun i n ->
        if n <> 1 then
          add (Printf.sprintf "cell %s" (cell_name fine i)) "appears in %d clusters" n)
      seen;
    (* kinds and areas: movables cluster into movables with conserved
       area (group clusters own their idealized array footprint, which
       includes spacing, so member area may only fall below it);
       fixed/pads are preserved one-to-one *)
    let is_group = Array.make k false in
    List.iter (fun (cid, _) -> is_group.(cid) <- true) lvl.Dpp_coarsen.group_of;
    for cid = 0 to k - 1 do
      let ms = lvl.Dpp_coarsen.members.(cid) in
      let c = Design.cell coarse cid in
      let subject = Printf.sprintf "cluster %s" c.Types.c_name in
      if Array.length ms = 0 then add subject "is empty"
      else begin
        let movable_members =
          Array.for_all
            (fun i -> (Design.cell fine i).Types.c_kind = Types.Movable)
            ms
        in
        if c.Types.c_kind = Types.Movable then begin
          if not movable_members then add subject "mixes fixed cells into a movable cluster";
          let member_area =
            Array.fold_left
              (fun a i ->
                let fc = Design.cell fine i in
                a +. (fc.Types.c_width *. fc.Types.c_height))
              0.0 ms
          in
          let coarse_area = c.Types.c_width *. c.Types.c_height in
          let rel = tol *. (1.0 +. coarse_area) in
          if is_group.(cid) then begin
            if member_area > coarse_area +. rel then
              add subject "member area %.6g exceeds group footprint %.6g" member_area
                coarse_area
          end
          else if abs_float (member_area -. coarse_area) > rel then
            add subject "area %.6g became %.6g" member_area coarse_area
        end
        else if Array.length ms <> 1 then
          add subject "fixed cluster has %d members" (Array.length ms)
        else begin
          let i = ms.(0) in
          let fc = Design.cell fine i in
          if fc.Types.c_kind <> c.Types.c_kind then
            add subject "kind changed for fixed cell %s" fc.Types.c_name;
          if
            abs_float (fc.Types.c_width -. c.Types.c_width) > tol
            || abs_float (fc.Types.c_height -. c.Types.c_height) > tol
            || abs_float (fine.Design.x.(i) -. coarse.Design.x.(cid)) > tol
            || abs_float (fine.Design.y.(i) -. coarse.Design.y.(cid)) > tol
          then add subject "fixed cell %s not preserved verbatim" fc.Types.c_name
        end
      end
    done;
    (* dgroups intact: each collapsed group's cluster holds exactly the
       group's members — a bit-slice is never split across clusters *)
    List.iter
      (fun (cid, (dg : Dgroup.t)) ->
        let subject = Printf.sprintf "cluster %s" (Design.cell coarse cid).Types.c_name in
        if cid < 0 || cid >= k then add level_subject "group cluster id %d out of range" cid
        else begin
          let ms = lvl.Dpp_coarsen.members.(cid) in
          let sorted_group = Array.copy dg.Dgroup.cells in
          Array.sort compare sorted_group;
          if ms <> sorted_group then
            add subject "holds %d cells but its datapath group has %d (membership differs)"
              (Array.length ms)
              (Array.length dg.Dgroup.cells)
          else
            Array.iter
              (fun i ->
                if lvl.Dpp_coarsen.cluster_of.(i) <> cid then
                  add subject "group member %s escaped to cluster %d" (cell_name fine i)
                    lvl.Dpp_coarsen.cluster_of.(i))
              dg.Dgroup.cells
        end)
      lvl.Dpp_coarsen.group_of
  end;
  List.rev !acc
