(* Library root: re-export the violation type and expose the oracles at the
   top level, so callers write [Dpp_check.legal] / [Dpp_check.Violation.t]. *)

module Violation = Violation
include Oracles
