(** Nonlinear conjugate gradient (Polak–Ribière+ with automatic restarts)
    over a smooth unconstrained objective — the engine under global
    placement.  An optional projection hook keeps iterates inside the die. *)

type problem = {
  n : int;  (** number of variables *)
  eval : float array -> float;  (** objective value *)
  grad : float array -> float array -> unit;  (** [grad x g] fills [g] *)
  eval_grad : (float array -> float array -> float) option;
      (** optional fused pass: [eval_grad x g] fills [g] and returns the
          objective value in one sweep over the problem's kernels.  The
          value MUST be bit-identical to [eval x] — the optimizer
          substitutes one for the other freely. *)
}

val problem :
  n:int ->
  eval:(float array -> float) ->
  grad:(float array -> float array -> unit) ->
  ?eval_grad:(float array -> float array -> float) ->
  unit ->
  problem

type options = {
  max_iter : int;
  grad_tol : float;  (** stop when [||g||_inf <= grad_tol] *)
  f_tol : float;  (** stop when the relative decrease over an iteration falls below this *)
  initial_step : float;  (** first trial step of the very first line search *)
  project : (float array -> unit) option;
      (** in-place feasibility projection applied after every accepted step *)
  on_iterate : (int -> float -> float -> unit) option;
      (** [on_iterate k f gnorm] callback for convergence traces *)
}

val default_options : options
(** 100 iterations, [grad_tol 1e-6], [f_tol 1e-9], [initial_step 1.0],
    no projection, no callback. *)

type result = {
  x : float array;
  f : float;
  iterations : int;
  grad_norm : float;
  converged : bool;  (** a tolerance fired (as opposed to hitting max_iter or stalling) *)
  f_evals : int;
}

val minimize : ?arena:Dpp_util.Arena.t -> ?options:options -> problem -> float array -> result
(** [minimize p x0] starts from a copy of [x0].

    With [~arena], the five working vectors come from the arena instead
    of fresh allocation, making repeated solves of the same size (the GP
    round loop) allocation-free.  [result.x] is then an arena buffer:
    it remains valid only until the next [minimize] against the same
    arena — which may receive it back as its [x0] (the GP loop does
    exactly that).  Results are bit-identical with and without an
    arena. *)
