type result = { step : float; f_new : float; evaluations : int; ok : bool }

let armijo ?(c1 = 1e-4) ?(shrink = 0.5) ?(max_trials = 30) ~f ~x ~d ~f0 ~slope ~step0 ~scratch () =
  let n = Array.length x in
  if Array.length d <> n || Array.length scratch <> n then
    invalid_arg "Linesearch.armijo: size mismatch";
  let fill t =
    for i = 0 to n - 1 do
      scratch.(i) <- x.(i) +. (t *. d.(i))
    done
  in
  let trial t =
    fill t;
    f scratch
  in
  (* After the first Armijo-acceptable step, keep shrinking while that
     still improves the value: plain backtracking can otherwise accept a
     large "mirror" step that overshoots a valley to the far slope with a
     tiny decrease and then ping-pongs forever. *)
  let rec refine t ft k =
    if k >= max_trials then { step = t; f_new = ft; evaluations = k; ok = true }
    else begin
      let t' = t *. shrink in
      let ft' = trial t' in
      if Float.is_finite ft' && ft' < ft then refine t' ft' (k + 1)
      else begin
        (* restore scratch to the winning step: its value is already known,
           so this is a pure vector fill, not another objective pass *)
        fill t;
        { step = t; f_new = ft; evaluations = k + 1; ok = true }
      end
    end
  in
  let rec search t k =
    if k > max_trials then begin
      Vec.copy_into x scratch;
      { step = 0.0; f_new = f0; evaluations = k - 1; ok = false }
    end
    else begin
      let ft = trial t in
      if Float.is_finite ft && ft <= f0 +. (c1 *. t *. slope) then refine t ft k
      else search (t *. shrink) (k + 1)
    end
  in
  search step0 1
