type problem = {
  n : int;
  eval : float array -> float;
  grad : float array -> float array -> unit;
  eval_grad : (float array -> float array -> float) option;
}

let problem ~n ~eval ~grad ?eval_grad () = { n; eval; grad; eval_grad }

type options = {
  max_iter : int;
  grad_tol : float;
  f_tol : float;
  initial_step : float;
  project : (float array -> unit) option;
  on_iterate : (int -> float -> float -> unit) option;
}

let default_options =
  {
    max_iter = 100;
    grad_tol = 1e-6;
    f_tol = 1e-9;
    initial_step = 1.0;
    project = None;
    on_iterate = None;
  }

type result = {
  x : float array;
  f : float;
  iterations : int;
  grad_norm : float;
  converged : bool;
  f_evals : int;
}

let minimize ?arena ?(options = default_options) p x0 =
  if Array.length x0 <> p.n then invalid_arg "Nlcg.minimize: x0 size mismatch";
  (* With an arena the five working vectors are recycled across calls —
     the steady-state GP rounds' main residual allocation.  [x] is then
     an arena buffer too: it escapes in the result, and stays valid only
     until the next [minimize] against the same arena (the GP loop feeds
     it straight back in as the next round's start point). *)
  let alloc key =
    match arena with
    | Some a -> Dpp_util.Arena.floats a ("nlcg." ^ key) p.n
    | None -> Array.make p.n 0.0
  in
  (* raw: x is fully overwritten by the blit below, and the recycled
     buffer may BE [x0] (the previous call's result fed back in) — a
     zero-fill would destroy it before the copy *)
  let x =
    match arena with
    | Some a -> Dpp_util.Arena.floats_raw a "nlcg.x" p.n
    | None -> Array.make p.n 0.0
  in
  if x != x0 then Array.blit x0 0 x 0 p.n;
  (match options.project with Some proj -> proj x | None -> ());
  let g = alloc "g" in
  let g_prev = alloc "g_prev" in
  let d = alloc "d" in
  let scratch = alloc "scratch" in
  let f_evals = ref 0 in
  let eval x =
    incr f_evals;
    p.eval x
  in
  (* Fused value+gradient at a point where both are needed: one pass over
     the objective's kernels instead of two.  The caller guarantees the
     fused value is bit-identical to [eval]'s. *)
  let eval_and_grad x g =
    match p.eval_grad with
    | Some eg ->
      incr f_evals;
      eg x g
    | None ->
      let fv = eval x in
      p.grad x g;
      fv
  in
  (* [scratch] holds the accepted pre-projection point; if projection left
     every coordinate unchanged, the line-search value is still exact and
     the re-evaluation can be skipped (the objective is deterministic). *)
  let projection_moved x scratch =
    let moved = ref false in
    (try
       for i = 0 to p.n - 1 do
         if x.(i) <> scratch.(i) then begin
           moved := true;
           raise Exit
         end
       done
     with Exit -> ());
    !moved
  in
  let f = ref (eval_and_grad x g) in
  for i = 0 to p.n - 1 do
    d.(i) <- -.g.(i)
  done;
  let gnorm = ref (Vec.nrm_inf g) in
  let step_hint = ref options.initial_step in
  let iter = ref 0 in
  let converged = ref (!gnorm <= options.grad_tol) in
  let stalled = ref false in
  while (not !converged) && (not !stalled) && !iter < options.max_iter do
    let slope = Vec.dot g d in
    (* If CG produced an ascent direction, restart on steepest descent. *)
    let slope =
      if slope >= 0.0 then begin
        for i = 0 to p.n - 1 do
          d.(i) <- -.g.(i)
        done;
        Vec.dot g d
      end
      else slope
    in
    if slope >= 0.0 then stalled := true (* zero gradient, nothing to do *)
    else begin
      let ls =
        Linesearch.armijo ~f:eval ~x ~d ~f0:!f ~slope ~step0:!step_hint ~scratch ()
      in
      if not ls.Linesearch.ok then begin
        (* Retry once from steepest descent with a unit-scaled step. *)
        for i = 0 to p.n - 1 do
          d.(i) <- -.g.(i)
        done;
        let slope = Vec.dot g d in
        let ls2 =
          Linesearch.armijo ~f:eval ~x ~d ~f0:!f ~slope
            ~step0:(1.0 /. max 1.0 (Vec.nrm_inf g))
            ~scratch ()
        in
        if not ls2.Linesearch.ok then stalled := true
        else begin
          Vec.copy_into scratch x;
          let moved =
            match options.project with
            | Some proj ->
              proj x;
              projection_moved x scratch
            | None -> false
          in
          let f_old = !f in
          Vec.copy_into g g_prev;
          if moved then f := eval_and_grad x g
          else begin
            f := ls2.Linesearch.f_new;
            p.grad x g
          end;
          for i = 0 to p.n - 1 do
            d.(i) <- -.g.(i)
          done;
          step_hint := max 1e-12 (2.0 *. ls2.Linesearch.step);
          gnorm := Vec.nrm_inf g;
          incr iter;
          (match options.on_iterate with Some cb -> cb !iter !f !gnorm | None -> ());
          if !gnorm <= options.grad_tol then converged := true
          else if
            abs_float (f_old -. !f) <= options.f_tol *. (abs_float f_old +. 1e-30)
          then converged := true
        end
      end
      else begin
        Vec.copy_into scratch x;
        let moved =
          match options.project with
          | Some proj ->
            proj x;
            projection_moved x scratch
          | None -> false
        in
        let f_old = !f in
        Vec.copy_into g g_prev;
        (* Projection may have moved the point; recompute f there only if it
           actually did (fused with the gradient pass), otherwise the
           line-search value is exact and only the gradient is needed. *)
        if moved then f := eval_and_grad x g
        else begin
          f := ls.Linesearch.f_new;
          p.grad x g
        end;
        (* Polak–Ribière+ beta. *)
        let gg_prev = Vec.dot g_prev g_prev in
        let beta =
          if gg_prev <= 0.0 then 0.0
          else begin
            let num = ref 0.0 in
            for i = 0 to p.n - 1 do
              num := !num +. (g.(i) *. (g.(i) -. g_prev.(i)))
            done;
            max 0.0 (!num /. gg_prev)
          end
        in
        for i = 0 to p.n - 1 do
          d.(i) <- -.g.(i) +. (beta *. d.(i))
        done;
        step_hint := max 1e-12 (2.0 *. ls.Linesearch.step);
        gnorm := Vec.nrm_inf g;
        incr iter;
        (match options.on_iterate with Some cb -> cb !iter !f !gnorm | None -> ());
        if !gnorm <= options.grad_tol then converged := true
        else if abs_float (f_old -. !f) <= options.f_tol *. (abs_float f_old +. 1e-30) then
          converged := true
      end
    end
  done;
  { x; f = !f; iterations = !iter; grad_norm = !gnorm; converged = !converged; f_evals = !f_evals }
