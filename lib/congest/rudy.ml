module Rect = Dpp_geom.Rect
module Design = Dpp_netlist.Design
module Soa = Dpp_netlist.Soa
module Pins = Dpp_wirelen.Pins

type t = {
  nx : int;
  ny : int;
  bin_w : float;
  bin_h : float;
  demand : float array;
  supply : float;
}

let default_dims (d : Design.t) =
  let movable = Array.length (Design.movable_ids d) in
  let side = int_of_float (Float.round (sqrt (float_of_int movable /. 4.0))) in
  let side = max 8 (min 256 side) in
  side, side

module Pool = Dpp_par.Pool

let compute ?pool ?arena ?pins ?nx ?ny (d : Design.t) ~cx ~cy =
  let dnx, dny = default_dims d in
  (* a non-positive request (or a degenerate derivation) collapses to the
     single-bin grid rather than a zero-length demand array *)
  let nx = max 1 (Option.value nx ~default:dnx)
  and ny = max 1 (Option.value ny ~default:dny) in
  let die = d.Design.die in
  (* zero-extent dies (all rows degenerate, or a single-point outline)
     would make every bin zero-area and the normalisation below divide by
     zero; fall back to unit bins so the map stays finite *)
  let bin_w =
    let w = Rect.width die /. float_of_int nx in
    if w > 0.0 then w else 1.0
  in
  let bin_h =
    let h = Rect.height die /. float_of_int ny in
    if h > 0.0 then h else 1.0
  in
  (* arena-recycled buffers make the routability loop's every-round RUDY
     evaluation allocation-free; [floats] zero-fills, so the scatter sees
     exactly what a fresh [Array.make] would.  The returned map then
     aliases the arena: it is invalidated by the next [compute] against
     the same arena. *)
  let afloats key n =
    match arena with Some a -> Dpp_util.Arena.floats a key n | None -> Array.make n 0.0
  in
  let demand = afloats "rudy.demand" (nx * ny) in
  (* the flow hands down its shared pin view; standalone callers pay one
     flat-core derivation *)
  let pins = match pins with Some p -> p | None -> Pins.build d in
  let soa = pins.Pins.soa in
  let clamp_ix v = max 0 (min (nx - 1) v) in
  let clamp_iy v = max 0 (min (ny - 1) v) in
  (* [wrow] hoists the per-column x-overlap widths of the net box across
     the window's rows; the widths and the (w > 0 && h > 0 then w *. h)
     gate are exactly [Rect.overlap_area]'s floats, so the scatter is
     bit-identical to the old per-bin [Rect.make] + [overlap_area] pair
     without its per-bin allocation. *)
  let scatter_net (view : Pins.t) (wrow : float array) grid n =
    let k = Pins.load_net view ~cx ~cy n in
    if k >= 2 then begin
      let xmin = ref view.Pins.scratch_x.(0) and xmax = ref view.Pins.scratch_x.(0) in
      let ymin = ref view.Pins.scratch_y.(0) and ymax = ref view.Pins.scratch_y.(0) in
      for i = 1 to k - 1 do
        let x = view.Pins.scratch_x.(i) and y = view.Pins.scratch_y.(i) in
        if x < !xmin then xmin := x;
        if x > !xmax then xmax := x;
        if y < !ymin then ymin := y;
        if y > !ymax then ymax := y
      done;
      (* degenerate boxes get one wire-width of extent *)
      let w = max 1.0 (!xmax -. !xmin) and h = max 1.0 (!ymax -. !ymin) in
      let weight = soa.Soa.net_weight.(n) in
      let density = weight *. (w +. h) /. (w *. h) in
      let box_xl = !xmin and box_yl = !ymin in
      let box_xh = !xmin +. w and box_yh = !ymin +. h in
      let ix0 = clamp_ix (int_of_float (floor ((box_xl -. die.Rect.xl) /. bin_w))) in
      let ix1 = clamp_ix (int_of_float (ceil ((box_xh -. die.Rect.xl) /. bin_w)) - 1) in
      let iy0 = clamp_iy (int_of_float (floor ((box_yl -. die.Rect.yl) /. bin_h))) in
      let iy1 = clamp_iy (int_of_float (ceil ((box_yh -. die.Rect.yl) /. bin_h)) - 1) in
      for ix = ix0 to ix1 do
        let bxl = die.Rect.xl +. (float_of_int ix *. bin_w) in
        let bxh = die.Rect.xl +. (float_of_int (ix + 1) *. bin_w) in
        wrow.(ix) <- min box_xh bxh -. max box_xl bxl
      done;
      for iy = iy0 to iy1 do
        let byl = die.Rect.yl +. (float_of_int iy *. bin_h) in
        let byh = die.Rect.yl +. (float_of_int (iy + 1) *. bin_h) in
        let hh = min box_yh byh -. max box_yl byl in
        if hh > 0.0 then begin
          let row = iy * nx in
          for ix = ix0 to ix1 do
            let ww = wrow.(ix) in
            if ww > 0.0 then begin
              let ov = ww *. hh in
              if ov > 0.0 then grid.(row + ix) <- grid.(row + ix) +. (density *. ov)
            end
          done
        end
      done
    end
  in
  (match pool with
  | None ->
    let wrow = afloats "rudy.wrow" nx in
    for n = 0 to Soa.num_nets soa - 1 do
      scatter_net pins wrow demand n
    done
  | Some pool ->
    (* Chunk-local demand grids merged per bin in ascending chunk order:
       the chunk layout is fixed, so the map is bit-stable across worker
       counts (though not bit-equal to the serial scatter). *)
    let views =
      Array.init (Pool.nworkers pool) (fun w -> if w = 0 then pins else Pins.clone_scratch pins)
    in
    let chunk_demand =
      Array.init Pool.chunk_count (fun c -> afloats (Printf.sprintf "rudy.chunk%d" c) (nx * ny))
    in
    let chunk_wrow =
      Array.init Pool.chunk_count (fun c -> afloats (Printf.sprintf "rudy.wrow%d" c) nx)
    in
    Pool.iter_chunks pool ~n:(Soa.num_nets soa) (fun ~worker ~chunk ~lo ~hi ->
        let grid = chunk_demand.(chunk) in
        let wrow = chunk_wrow.(chunk) in
        for n = lo to hi - 1 do
          scatter_net views.(worker) wrow grid n
        done);
    Pool.iter_chunks pool ~n:(nx * ny) (fun ~worker:_ ~chunk:_ ~lo ~hi ->
        for b = lo to hi - 1 do
          let acc = ref 0.0 in
          for c = 0 to Pool.chunk_count - 1 do
            acc := !acc +. chunk_demand.(c).(b)
          done;
          demand.(b) <- acc.contents
        done));
  (* express demand as density per area unit: divide by bin area *)
  let bin_area = bin_w *. bin_h in
  Array.iteri (fun i v -> demand.(i) <- v /. bin_area) demand;
  { nx; ny; bin_w; bin_h; demand; supply = 1.0 }

type stats = {
  max_ratio : float;
  avg_ratio : float;
  p95_ratio : float;
  ace_ratio : float;
  overflowed_bins : float;
}

let ace_fraction = 0.05

let stats t =
  let ratios = Array.map (fun v -> v /. t.supply) t.demand in
  let n = Array.length ratios in
  let over = Array.fold_left (fun acc r -> if r > 1.0 then acc + 1 else acc) 0 ratios in
  (* ACE-style top-k average: mean utilisation of the hottest 5% of bins
     (at least one), the congestion headline less noisy than the single
     hottest bin *)
  let sorted = Array.copy ratios in
  Array.sort (fun a b -> Float.compare b a) sorted;
  let k = max 1 (int_of_float (ace_fraction *. float_of_int n)) in
  let top = ref 0.0 in
  for i = 0 to k - 1 do
    top := !top +. sorted.(i)
  done;
  {
    max_ratio = Dpp_util.Statx.maximum ratios;
    avg_ratio = Dpp_util.Statx.mean ratios;
    p95_ratio = Dpp_util.Statx.quantile ratios 0.95;
    ace_ratio = !top /. float_of_int k;
    overflowed_bins = float_of_int over /. float_of_int (max 1 n);
  }

let ratio_at t ~ix ~iy = t.demand.((iy * t.nx) + ix) /. t.supply

let hotspots t ~count =
  let all = ref [] in
  for iy = 0 to t.ny - 1 do
    for ix = 0 to t.nx - 1 do
      all := (ix, iy, ratio_at t ~ix ~iy) :: !all
    done
  done;
  List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a) !all
  |> List.filteri (fun i _ -> i < count)
