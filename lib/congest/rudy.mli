(** RUDY routing-demand estimation (Rectangular Uniform wire DensitY,
    Spindler & Johannes, DATE'07) — the standard router-free congestion
    proxy, and the metric family behind the paper's routability claims.

    Each net spreads an estimated wire volume uniformly over its bounding
    box: a net with half-perimeter [w + h] and wire width 1 contributes
    demand density [(w + h) / (w * h)] to every point of its box.  Summing
    over nets gives a demand map whose hot spots track real router
    congestion remarkably well for its cost.

    Demand is reported per bin, normalised by a uniform per-bin routing
    supply so 1.0 means "demand equals the average supply". *)

type t = {
  nx : int;
  ny : int;
  bin_w : float;
  bin_h : float;
  demand : float array;  (** row-major [iy * nx + ix], in wirelength/area units *)
  supply : float;  (** uniform per-area routing supply used for normalisation *)
}

val compute :
  ?pool:Dpp_par.Pool.t ->
  ?arena:Dpp_util.Arena.t ->
  ?pins:Dpp_wirelen.Pins.t ->
  ?nx:int ->
  ?ny:int ->
  Dpp_netlist.Design.t ->
  cx:float array ->
  cy:float array ->
  t
(** Default grid: {!Dpp_density.Grid.default_dims}-like sizing (~4 cells
    per bin, clamped to 8..256 per side).  [pins] reuses an existing pin
    view (the flow passes its shared one); without it the call derives a
    fresh flat core from [d] — avoid that on large designs.  The supply is calibrated so the
    design-wide average utilisation of routing area is meaningful across
    designs: [supply = total demand / die area] would always average 1, so
    instead the supply is [2 * sqrt(total cell area) / die area]-free:
    we use the simple convention [supply = 1.0] wiring unit per unit area,
    leaving interpretation to the ratio statistics below.

    With [pool], nets scatter into {!Dpp_par.Pool.chunk_count} fixed
    chunk-local grids merged per bin in ascending chunk order: the map is
    bit-stable across worker counts (but not bit-equal to the serial
    scatter, whose single grid accumulates in net order).

    With [arena], the demand grid and the chunk-local scratch come from
    the arena instead of fresh allocation (bit-identical result): the
    routability loop evaluates RUDY every round without allocating.  The
    returned map then aliases arena buffers — it is invalidated by the
    next [compute] against the same arena.

    Degenerate inputs are clamped rather than rejected: non-positive
    [nx]/[ny] collapse to the single-bin grid, and a zero-extent die
    (zero-height rows, point outlines) falls back to unit bins so the
    per-area normalisation never divides by zero. *)

type stats = {
  max_ratio : float;  (** hottest bin demand / supply *)
  avg_ratio : float;
  p95_ratio : float;  (** 95th percentile *)
  ace_ratio : float;
      (** ACE-style metric: mean demand/supply over the hottest 5% of bins
          (at least one) — the headline congestion-overflow number the
          routability loop steers and reports *)
  overflowed_bins : float;  (** fraction of bins with demand > supply *)
}

val stats : t -> stats

val ratio_at : t -> ix:int -> iy:int -> float
(** Demand/supply of one bin. *)

val hotspots : t -> count:int -> (int * int * float) list
(** The [count] hottest bins as [(ix, iy, ratio)], hottest first. *)
