type check = { ok : bool; oracles : string list; violations : string list }

type level = { index : int; movables : int; hpwl : float; overflow : float; wall_s : float }

type stage = {
  name : string;
  wall_s : float;
  t_s : float;
  hpwl_before : float;
  hpwl_after : float;
  overflow : float option;
  vm_hwm_kb : int;
  heap_kb : int;
  levels : level list;
  check : check option;
  extra : (string * Json.t) list;
}

type t = { design : string; mode : string; total_s : float; stages : stage list }

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num v = if Float.is_finite v then Printf.sprintf "%.12g" v else "null"

let string_array ss =
  Printf.sprintf "[%s]" (String.concat "," (List.map (fun s -> "\"" ^ escape s ^ "\"") ss))

let check_to_json c =
  Printf.sprintf {|{"ok":%b,"oracles":%s,"violations":%s}|} c.ok (string_array c.oracles)
    (string_array c.violations)

let level_to_json l =
  Printf.sprintf {|{"index":%d,"movables":%d,"hpwl":%s,"overflow":%s,"wall_s":%s}|} l.index
    l.movables (num l.hpwl) (num l.overflow) (num l.wall_s)

let stage_to_string s =
  Printf.sprintf
    {|{"name":"%s","wall_s":%s,"t_s":%s,"hpwl_before":%s,"hpwl_after":%s,"overflow":%s,"vm_hwm_kb":%d,"heap_kb":%d,"levels":[%s],"check":%s%s}|}
    (escape s.name) (num s.wall_s) (num s.t_s) (num s.hpwl_before) (num s.hpwl_after)
    (match s.overflow with Some v -> num v | None -> "null")
    s.vm_hwm_kb s.heap_kb
    (String.concat "," (List.map level_to_json s.levels))
    (match s.check with Some c -> check_to_json c | None -> "null")
    (String.concat ""
       (List.map
          (fun (k, v) -> Printf.sprintf {|,"%s":%s|} (escape k) (Json.encode v))
          s.extra))

let to_json t =
  Printf.sprintf {|{"design":"%s","mode":"%s","total_s":%s,"stages":[%s]}|}
    (escape t.design) (escape t.mode) (num t.total_s)
    (String.concat "," (List.map stage_to_string t.stages))

(* Structural variant for embedding a stage record inside a larger JSON
   document (the serve layer's event payload).  Extra fields append after
   the known ones, mirroring [stage_to_string]. *)
let stage_to_json s =
  let strs l = Json.Arr (List.map (fun x -> Json.Str x) l) in
  Json.Obj
    ([
       "name", Json.Str s.name;
       "wall_s", Json.Num s.wall_s;
       "t_s", Json.Num s.t_s;
       "hpwl_before", Json.Num s.hpwl_before;
       "hpwl_after", Json.Num s.hpwl_after;
       "overflow", (match s.overflow with Some v -> Json.Num v | None -> Json.Null);
       "vm_hwm_kb", Json.Num (float_of_int s.vm_hwm_kb);
       "heap_kb", Json.Num (float_of_int s.heap_kb);
       ( "levels",
         Json.Arr
           (List.map
              (fun l ->
                Json.Obj
                  [
                    "index", Json.Num (float_of_int l.index);
                    "movables", Json.Num (float_of_int l.movables);
                    "hpwl", Json.Num l.hpwl;
                    "overflow", Json.Num l.overflow;
                    "wall_s", Json.Num l.wall_s;
                  ])
              s.levels) );
       ( "check",
         match s.check with
         | Some c ->
           Json.Obj
             [ "ok", Json.Bool c.ok; "oracles", strs c.oracles; "violations", strs c.violations ]
         | None -> Json.Null );
     ]
    @ s.extra)

(* ----- parsing (the read side of the event-stream / trace schema) -----

   Tolerant by design: unknown per-stage fields are collected into
   [extra] and re-emitted by [stage_to_json], so producers can evolve the
   schema (the serving layer's event stream adds per-stage payloads like
   ["eco"]) without breaking older readers.  The [levels] array is
   likewise accepted on {e any} stage, not just [gp] — an earlier reader
   rejected it elsewhere, which made every schema extension a parse
   error. *)

let known_stage_fields =
  [
    "name"; "wall_s"; "t_s"; "hpwl_before"; "hpwl_after"; "overflow"; "vm_hwm_kb";
    "heap_kb"; "levels"; "check";
  ]

let get_num ?(default = 0.0) key v =
  match Json.member key v with Some (Json.Num f) -> f | _ -> default

let get_str ?(default = "") key v =
  match Json.member key v with Some (Json.Str s) -> s | _ -> default

let check_of_json v =
  let strings key =
    match Json.member key v with
    | Some (Json.Arr xs) ->
      List.filter_map (function Json.Str s -> Some s | _ -> None) xs
    | _ -> []
  in
  {
    ok = (match Json.member "ok" v with Some (Json.Bool b) -> b | _ -> false);
    oracles = strings "oracles";
    violations = strings "violations";
  }

let level_of_json v =
  {
    index = int_of_float (get_num "index" v);
    movables = int_of_float (get_num "movables" v);
    hpwl = get_num "hpwl" v;
    overflow = get_num "overflow" v;
    wall_s = get_num "wall_s" v;
  }

let stage_of_json v =
  match v with
  | Json.Obj fields ->
    {
      name = get_str "name" v;
      wall_s = get_num "wall_s" v;
      t_s = get_num "t_s" v;
      hpwl_before = get_num "hpwl_before" v;
      hpwl_after = get_num "hpwl_after" v;
      overflow =
        (match Json.member "overflow" v with Some (Json.Num f) -> Some f | _ -> None);
      vm_hwm_kb = int_of_float (get_num "vm_hwm_kb" v);
      heap_kb = int_of_float (get_num "heap_kb" v);
      levels =
        (match Json.member "levels" v with
        | Some (Json.Arr xs) -> List.map level_of_json xs
        | _ -> []);
      check =
        (match Json.member "check" v with
        | Some (Json.Obj _ as c) -> Some (check_of_json c)
        | _ -> None);
      extra = List.filter (fun (k, _) -> not (List.mem k known_stage_fields)) fields;
    }
  | _ -> raise (Json.Parse_error "stage: expected an object")

let of_json v =
  match v with
  | Json.Obj _ ->
    {
      design = get_str "design" v;
      mode = get_str "mode" v;
      total_s = get_num "total_s" v;
      stages =
        (match Json.member "stages" v with
        | Some (Json.Arr xs) -> List.map stage_of_json xs
        | _ -> []);
    }
  | _ -> raise (Json.Parse_error "trace: expected an object")

let write ~path traces =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "[\n";
      List.iteri
        (fun i t ->
          if i > 0 then output_string oc ",\n";
          output_string oc (to_json t))
        traces;
      output_string oc "\n]\n")
