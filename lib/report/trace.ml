type check = { ok : bool; oracles : string list; violations : string list }

type level = { index : int; movables : int; hpwl : float; overflow : float; wall_s : float }

type stage = {
  name : string;
  wall_s : float;
  t_s : float;
  hpwl_before : float;
  hpwl_after : float;
  overflow : float option;
  levels : level list;
  check : check option;
}

type t = { design : string; mode : string; total_s : float; stages : stage list }

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num v = if Float.is_finite v then Printf.sprintf "%.12g" v else "null"

let string_array ss =
  Printf.sprintf "[%s]" (String.concat "," (List.map (fun s -> "\"" ^ escape s ^ "\"") ss))

let check_to_json c =
  Printf.sprintf {|{"ok":%b,"oracles":%s,"violations":%s}|} c.ok (string_array c.oracles)
    (string_array c.violations)

let level_to_json l =
  Printf.sprintf {|{"index":%d,"movables":%d,"hpwl":%s,"overflow":%s,"wall_s":%s}|} l.index
    l.movables (num l.hpwl) (num l.overflow) (num l.wall_s)

let stage_to_json s =
  Printf.sprintf
    {|{"name":"%s","wall_s":%s,"t_s":%s,"hpwl_before":%s,"hpwl_after":%s,"overflow":%s,"levels":[%s],"check":%s}|}
    (escape s.name) (num s.wall_s) (num s.t_s) (num s.hpwl_before) (num s.hpwl_after)
    (match s.overflow with Some v -> num v | None -> "null")
    (String.concat "," (List.map level_to_json s.levels))
    (match s.check with Some c -> check_to_json c | None -> "null")

let to_json t =
  Printf.sprintf {|{"design":"%s","mode":"%s","total_s":%s,"stages":[%s]}|}
    (escape t.design) (escape t.mode) (num t.total_s)
    (String.concat "," (List.map stage_to_json t.stages))

let write ~path traces =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "[\n";
      List.iteri
        (fun i t ->
          if i > 0 then output_string oc ",\n";
          output_string oc (to_json t))
        traces;
      output_string oc "\n]\n")
