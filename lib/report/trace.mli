(** Structured per-stage flow traces, serialized as JSON.

    One {!stage} record is emitted per pipeline stage by the flow's
    observer hook; a {!t} bundles the stages of one complete run.  The
    JSON schema (consumed by [dpp_place --trace] and the bench harness):

    {v
      [ { "design": "<name>", "mode": "baseline|structure-aware",
          "total_s": <float>,
          "stages": [ { "name": "<stage>", "wall_s": <float>,
                        "hpwl_before": <float>, "hpwl_after": <float>,
                        "overflow": <float|null> }, ... ] }, ... ]
    v}

    [overflow] is [null] for stages where no density evaluation happens
    (every stage except global placement). *)

type stage = {
  name : string;
  wall_s : float;  (** wall-clock seconds spent in the stage *)
  hpwl_before : float;  (** weighted HPWL entering the stage *)
  hpwl_after : float;
  overflow : float option;  (** density overflow, when the stage tracks it *)
}

type t = { design : string; mode : string; total_s : float; stages : stage list }

val to_json : t -> string
(** One run as a compact JSON object. *)

val write : path:string -> t list -> unit
(** Write runs as a JSON array (pretty enough: one object per line). *)
