(** Structured per-stage flow traces, serialized as JSON.

    One {!stage} record is emitted per pipeline stage by the flow's
    observer hook; a {!t} bundles the stages of one complete run.  The
    JSON schema (consumed by [dpp_place --trace] and the bench harness):

    {v
      [ { "design": "<name>", "mode": "baseline|structure-aware",
          "total_s": <float>,
          "stages": [ { "name": "<stage>", "wall_s": <float>,
                        "t_s": <float>,
                        "hpwl_before": <float>, "hpwl_after": <float>,
                        "overflow": <float|null>,
                        "levels": [ { "index": <int>, "movables": <int>,
                                      "hpwl": <float>, "overflow": <float>,
                                      "wall_s": <float> }, ... ],
                        "check": null | { "ok": <bool>,
                                          "oracles": [<string>...],
                                          "violations": [<string>...] } },
                      ... ] }, ... ]
    v}

    [overflow] is [null] for stages where no density evaluation happens
    (every stage except global placement).  [check] is [null] unless the
    run was made in [--check] mode, in which case it carries the verdict of
    the invariant oracles that ran at this stage boundary. *)

type check = {
  ok : bool;  (** no oracle reported a violation *)
  oracles : string list;  (** which oracles ran at this boundary *)
  violations : string list;  (** rendered violation reports, empty when ok *)
}

type level = {
  index : int;  (** 1 = first coarse level, larger = coarser *)
  movables : int;  (** movable cluster count at this level *)
  hpwl : float;  (** coarse-netlist HPWL after the level's solve *)
  overflow : float;
  wall_s : float;
}

type stage = {
  name : string;
  wall_s : float;  (** wall-clock seconds spent in the stage *)
  t_s : float;
      (** wall-clock offset of the stage's completion from the start of the
          run — monotonically non-decreasing across a run's stages *)
  hpwl_before : float;  (** weighted HPWL entering the stage *)
  hpwl_after : float;
  overflow : float option;  (** density overflow, when the stage tracks it *)
  vm_hwm_kb : int;
      (** process VmHWM sampled at the stage boundary, in kB — monotone
          across a run's stages, so the stage whose sample first jumps is
          the one that spiked resident memory; [0] when unavailable *)
  heap_kb : int;
      (** OCaml major-heap high-water mark ([Gc.quick_stat] top-heap) at
          the stage boundary, in kB; [0] when unavailable *)
  levels : level list;
      (** multilevel V-cycle solves, ascending level order; empty for
          every stage except a multilevel gp stage *)
  check : check option;  (** oracle verdict, when the run checks stages *)
  extra : (string * Json.t) list;
      (** unknown per-stage fields, preserved verbatim so the schema can
          evolve: a producer may attach new keys (the serve layer's event
          stream does) and [to_json (stage_of_json s)] round-trips them
          instead of erroring.  Empty for stages built by the flow. *)
}

type t = { design : string; mode : string; total_s : float; stages : stage list }

val to_json : t -> string
(** One run as a compact JSON object. *)

val stage_to_json : stage -> Json.t
(** One stage record as a JSON object — the serve layer's per-stage event
    payload.  [extra] fields are appended verbatim. *)

val stage_of_json : Json.t -> stage
(** Tolerant stage parser: known fields are decoded ([levels] is accepted
    on {e any} stage, not just [gp]); unrecognized object fields land in
    {!stage.extra} and survive a re-encode.  Missing numeric fields
    default to [0.].
    @raise Json.Parse_error if the value is not an object. *)

val of_json : Json.t -> t
(** Parse one run object (an element of the array {!write} emits).
    @raise Json.Parse_error if the value is not an object. *)

val write : path:string -> t list -> unit
(** Write runs as a JSON array (pretty enough: one object per line). *)
