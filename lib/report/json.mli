(** Minimal JSON reader — just enough to parse back what this library
    writes ({!Trace}, bench dumps), so schema tests and downstream tools do
    not need an external JSON dependency.  Full RFC 8259 grammar for
    values; strings support the standard escapes plus [\uXXXX] (decoded as
    a raw byte for code points below 256, ['?'] otherwise). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised with ["offset N: message"] on malformed input. *)

val parse : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** Field lookup in an [Obj] ([None] on missing field or non-object). *)

val encode : t -> string
(** Compact serialization; [parse (encode v)] reproduces [v] up to float
    formatting ([%.12g], integral floats printed without a point).
    Non-finite numbers encode as [null], matching the {!Trace} writer. *)

val add_to_buffer : Buffer.t -> t -> unit
(** Streaming {!encode} into an existing buffer — same bytes, no
    intermediate strings. *)

val num_string : float -> string
(** The canonical number formatting {!encode} uses, for writers that
    stream JSON without building a {!t}. *)

val escape_string : string -> string
(** The canonical string-content escaping (quotes not included). *)

val to_list : t -> t list
(** Elements of an [Arr]. @raise Parse_error on any other constructor. *)

val to_float : t -> float
(** @raise Parse_error unless [Num]. *)

val to_string : t -> string
(** @raise Parse_error unless [Str]. *)

val to_bool : t -> bool
(** @raise Parse_error unless [Bool]. *)
