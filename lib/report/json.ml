type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail pos fmt = Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "offset %d: %s" pos m))) fmt

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail !pos "expected %C, found %C" c c'
    | None -> fail !pos "expected %C, found end of input" c
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail !pos "invalid literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail !pos "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail !pos "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 >= n then fail !pos "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            try int_of_string ("0x" ^ hex) with Failure _ -> fail !pos "bad \\u escape"
          in
          Buffer.add_char b (if code < 256 then Char.chr code else '?');
          pos := !pos + 4
        | c -> fail !pos "bad escape %C" c);
        advance ();
        loop ()
      | c ->
        Buffer.add_char b c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    if !pos = start then fail !pos "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail start "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          key, parse_value ()
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail !pos "trailing garbage";
  v

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num_string f =
  if Float.is_finite f then
    if Float.is_integer f && abs_float f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.12g" f
  else "null"

let escape_string = escape

(* The streaming encoder is the primitive: one pass into the buffer, no
   intermediate per-node strings, so encoding a value is O(output bytes)
   in allocation rather than O(nodes) retained tree fragments. *)
let rec add_to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f -> Buffer.add_string b (num_string f)
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | Arr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        add_to_buffer b x)
      xs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b "\":";
        add_to_buffer b v)
      fields;
    Buffer.add_char b '}'

let encode v =
  let b = Buffer.create 256 in
  add_to_buffer b v;
  Buffer.contents b

let to_list = function Arr xs -> xs | _ -> raise (Parse_error "expected an array")
let to_float = function Num f -> f | _ -> raise (Parse_error "expected a number")
let to_string = function Str s -> s | _ -> raise (Parse_error "expected a string")
let to_bool = function Bool b -> b | _ -> raise (Parse_error "expected a bool")
