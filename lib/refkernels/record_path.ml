(* Record-path reference kernels: the pre-SoA implementations of the hot
   kernels, preserved verbatim as the bit-equivalence oracle for the flat
   core (and as the baseline side of the XL speedup bench).  Nothing in
   the flow uses this library — it iterates boxed [Types.cell]/[net]/[pin]
   records exactly the way the production kernels did before the
   structure-of-arrays port, so "SoA result = record result, bitwise" is a
   meaningful statement.  Serial only: the parallel kernels were already
   chunk-order-defined and are gated by their own determinism tests. *)

module Rect = Dpp_geom.Rect
module Orient = Dpp_geom.Orient
module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Grid = Dpp_density.Grid

(* ------------------------------------------------------------------ *)
(* Record-backed pin view (the old Dpp_wirelen.Pins)                   *)
(* ------------------------------------------------------------------ *)

module Rpins = struct
  type t = {
    design : Design.t;
    pin_cell : int array;
    off_x : float array;
    off_y : float array;
    scratch_x : float array;
    scratch_y : float array;
    scratch_w : float array;
  }

  let build (d : Design.t) =
    let np = Design.num_pins d in
    let pin_cell = Array.make np 0 in
    let off_x = Array.make np 0.0 in
    let off_y = Array.make np 0.0 in
    for p = 0 to np - 1 do
      let pin = Design.pin d p in
      let ci = pin.Types.p_cell in
      let c = Design.cell d ci in
      pin_cell.(p) <- ci;
      let dx, dy =
        Orient.apply_offset d.Design.orient.(ci) ~w:c.Types.c_width ~h:c.Types.c_height
          (pin.Types.p_dx, pin.Types.p_dy)
      in
      let ow, oh = Orient.apply d.Design.orient.(ci) ~w:c.Types.c_width ~h:c.Types.c_height in
      off_x.(p) <- dx -. (ow /. 2.0);
      off_y.(p) <- dy -. (oh /. 2.0)
    done;
    let max_deg =
      Array.fold_left
        (fun m (n : Types.net) -> max m (Array.length n.Types.n_pins))
        1 d.Design.nets
    in
    {
      design = d;
      pin_cell;
      off_x;
      off_y;
      scratch_x = Array.make max_deg 0.0;
      scratch_y = Array.make max_deg 0.0;
      scratch_w = Array.make max_deg 0.0;
    }

  let pin_x t ~cx p = cx.(t.pin_cell.(p)) +. t.off_x.(p)

  let pin_y t ~cy p = cy.(t.pin_cell.(p)) +. t.off_y.(p)

  let load_net t ~cx ~cy n =
    let pins = (Design.net t.design n).Types.n_pins in
    let k = Array.length pins in
    for i = 0 to k - 1 do
      let p = pins.(i) in
      t.scratch_x.(i) <- pin_x t ~cx p;
      t.scratch_y.(i) <- pin_y t ~cy p
    done;
    k
end

(* ------------------------------------------------------------------ *)
(* HPWL                                                                *)
(* ------------------------------------------------------------------ *)

let hpwl_net (t : Rpins.t) ~cx ~cy n =
  let k = Rpins.load_net t ~cx ~cy n in
  if k < 2 then 0.0
  else begin
    let xmin = ref t.Rpins.scratch_x.(0) and xmax = ref t.Rpins.scratch_x.(0) in
    let ymin = ref t.Rpins.scratch_y.(0) and ymax = ref t.Rpins.scratch_y.(0) in
    for i = 1 to k - 1 do
      let x = t.Rpins.scratch_x.(i) and y = t.Rpins.scratch_y.(i) in
      if x < !xmin then xmin := x;
      if x > !xmax then xmax := x;
      if y < !ymin then ymin := y;
      if y > !ymax then ymax := y
    done;
    !xmax -. !xmin +. !ymax -. !ymin
  end

let hpwl_total (t : Rpins.t) ~cx ~cy =
  let acc = ref 0.0 in
  let nn = Design.num_nets t.Rpins.design in
  for n = 0 to nn - 1 do
    let w = (Design.net t.Rpins.design n).Types.n_weight in
    acc := !acc +. (w *. hpwl_net t ~cx ~cy n)
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Per-net bounding boxes (the Netbox build/rescan reference)          *)
(* ------------------------------------------------------------------ *)

let net_box (t : Rpins.t) ~cx ~cy n =
  let k = Rpins.load_net t ~cx ~cy n in
  if k = 0 then 0.0, 0.0, 0.0, 0.0
  else begin
    let xmin = ref t.Rpins.scratch_x.(0) and xmax = ref t.Rpins.scratch_x.(0) in
    let ymin = ref t.Rpins.scratch_y.(0) and ymax = ref t.Rpins.scratch_y.(0) in
    for i = 1 to k - 1 do
      let x = t.Rpins.scratch_x.(i) and y = t.Rpins.scratch_y.(i) in
      if x < !xmin then xmin := x;
      if x > !xmax then xmax := x;
      if y < !ymin then ymin := y;
      if y > !ymax then ymax := y
    done;
    !xmin, !xmax, !ymin, !ymax
  end

(* ------------------------------------------------------------------ *)
(* WA wirelength                                                       *)
(* ------------------------------------------------------------------ *)

let wa_axis (a : float array) k ~gamma ~(w : float array) ~want_grad =
  let amax = ref a.(0) and amin = ref a.(0) in
  for i = 1 to k - 1 do
    if a.(i) > !amax then amax := a.(i);
    if a.(i) < !amin then amin := a.(i)
  done;
  let nmax = ref 0.0 and dmax = ref 0.0 in
  let nmin = ref 0.0 and dmin = ref 0.0 in
  for i = 0 to k - 1 do
    let u = exp ((a.(i) -. !amax) /. gamma) in
    let v = exp ((!amin -. a.(i)) /. gamma) in
    nmax := !nmax +. (a.(i) *. u);
    dmax := !dmax +. u;
    nmin := !nmin +. (a.(i) *. v);
    dmin := !dmin +. v
  done;
  let f = !nmax /. !dmax in
  let g = !nmin /. !dmin in
  if want_grad then
    for i = 0 to k - 1 do
      let u = exp ((a.(i) -. !amax) /. gamma) in
      let v = exp ((!amin -. a.(i)) /. gamma) in
      let df = u *. (1.0 +. ((a.(i) -. f) /. gamma)) /. !dmax in
      let dg = v *. (1.0 -. ((a.(i) -. g) /. gamma)) /. !dmin in
      w.(i) <- df -. dg
    done;
  f -. g

let wa_value_grad (t : Rpins.t) ~gamma ~cx ~cy ~gx ~gy =
  let acc = ref 0.0 in
  let d = t.Rpins.design in
  for n = 0 to Design.num_nets d - 1 do
    let pins = (Design.net d n).Types.n_pins in
    let k = Rpins.load_net t ~cx ~cy n in
    if k >= 2 then begin
      let wn = (Design.net d n).Types.n_weight in
      let vx = wa_axis t.Rpins.scratch_x k ~gamma ~w:t.Rpins.scratch_w ~want_grad:true in
      for i = 0 to k - 1 do
        let c = t.Rpins.pin_cell.(pins.(i)) in
        gx.(c) <- gx.(c) +. (wn *. t.Rpins.scratch_w.(i))
      done;
      let vy = wa_axis t.Rpins.scratch_y k ~gamma ~w:t.Rpins.scratch_w ~want_grad:true in
      for i = 0 to k - 1 do
        let c = t.Rpins.pin_cell.(pins.(i)) in
        gy.(c) <- gy.(c) +. (wn *. t.Rpins.scratch_w.(i))
      done;
      acc := !acc +. (wn *. (vx +. vy))
    end
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* LSE wirelength                                                      *)
(* ------------------------------------------------------------------ *)

let lse_axis (a : float array) k ~gamma ~(w : float array) ~want_grad =
  let amax = ref a.(0) and amin = ref a.(0) in
  for i = 1 to k - 1 do
    if a.(i) > !amax then amax := a.(i);
    if a.(i) < !amin then amin := a.(i)
  done;
  let splus = ref 0.0 and sminus = ref 0.0 in
  for i = 0 to k - 1 do
    splus := !splus +. exp ((a.(i) -. !amax) /. gamma);
    sminus := !sminus +. exp ((!amin -. a.(i)) /. gamma)
  done;
  if want_grad then
    for i = 0 to k - 1 do
      w.(i) <-
        (exp ((a.(i) -. !amax) /. gamma) /. !splus)
        -. (exp ((!amin -. a.(i)) /. gamma) /. !sminus)
    done;
  !amax -. !amin +. (gamma *. (log !splus +. log !sminus))

let lse_value_grad (t : Rpins.t) ~gamma ~cx ~cy ~gx ~gy =
  let acc = ref 0.0 in
  let d = t.Rpins.design in
  for n = 0 to Design.num_nets d - 1 do
    let pins = (Design.net d n).Types.n_pins in
    let k = Rpins.load_net t ~cx ~cy n in
    if k >= 2 then begin
      let wn = (Design.net d n).Types.n_weight in
      let vx = lse_axis t.Rpins.scratch_x k ~gamma ~w:t.Rpins.scratch_w ~want_grad:true in
      for i = 0 to k - 1 do
        let c = t.Rpins.pin_cell.(pins.(i)) in
        gx.(c) <- gx.(c) +. (wn *. t.Rpins.scratch_w.(i))
      done;
      let vy = lse_axis t.Rpins.scratch_y k ~gamma ~w:t.Rpins.scratch_w ~want_grad:true in
      for i = 0 to k - 1 do
        let c = t.Rpins.pin_cell.(pins.(i)) in
        gy.(c) <- gy.(c) +. (wn *. t.Rpins.scratch_w.(i))
      done;
      acc := !acc +. (wn *. (vx +. vy))
    end
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* RUDY congestion (serial scatter)                                    *)
(* ------------------------------------------------------------------ *)

let rudy (t : Rpins.t) ~nx ~ny ~cx ~cy =
  let d = t.Rpins.design in
  let die = d.Design.die in
  let bin_w = Rect.width die /. float_of_int nx in
  let bin_h = Rect.height die /. float_of_int ny in
  let demand = Array.make (nx * ny) 0.0 in
  let clamp_ix v = max 0 (min (nx - 1) v) in
  let clamp_iy v = max 0 (min (ny - 1) v) in
  for n = 0 to Design.num_nets d - 1 do
    let k = Rpins.load_net t ~cx ~cy n in
    if k >= 2 then begin
      let xmin = ref t.Rpins.scratch_x.(0) and xmax = ref t.Rpins.scratch_x.(0) in
      let ymin = ref t.Rpins.scratch_y.(0) and ymax = ref t.Rpins.scratch_y.(0) in
      for i = 1 to k - 1 do
        let x = t.Rpins.scratch_x.(i) and y = t.Rpins.scratch_y.(i) in
        if x < !xmin then xmin := x;
        if x > !xmax then xmax := x;
        if y < !ymin then ymin := y;
        if y > !ymax then ymax := y
      done;
      let w = max 1.0 (!xmax -. !xmin) and h = max 1.0 (!ymax -. !ymin) in
      let weight = (Design.net d n).Types.n_weight in
      let density = weight *. (w +. h) /. (w *. h) in
      let box = Rect.make ~xl:!xmin ~yl:!ymin ~xh:(!xmin +. w) ~yh:(!ymin +. h) in
      let ix0 = clamp_ix (int_of_float (floor ((box.Rect.xl -. die.Rect.xl) /. bin_w))) in
      let ix1 = clamp_ix (int_of_float (ceil ((box.Rect.xh -. die.Rect.xl) /. bin_w)) - 1) in
      let iy0 = clamp_iy (int_of_float (floor ((box.Rect.yl -. die.Rect.yl) /. bin_h))) in
      let iy1 = clamp_iy (int_of_float (ceil ((box.Rect.yh -. die.Rect.yl) /. bin_h)) - 1) in
      for iy = iy0 to iy1 do
        for ix = ix0 to ix1 do
          let bin =
            Rect.make
              ~xl:(die.Rect.xl +. (float_of_int ix *. bin_w))
              ~yl:(die.Rect.yl +. (float_of_int iy *. bin_h))
              ~xh:(die.Rect.xl +. (float_of_int (ix + 1) *. bin_w))
              ~yh:(die.Rect.yl +. (float_of_int (iy + 1) *. bin_h))
          in
          let ov = Rect.overlap_area box bin in
          if ov > 0.0 then
            demand.((iy * nx) + ix) <- demand.((iy * nx) + ix) +. (density *. ov)
        done
      done
    end
  done;
  let bin_area = bin_w *. bin_h in
  Array.iteri (fun i v -> demand.(i) <- v /. bin_area) demand;
  demand

(* ------------------------------------------------------------------ *)
(* Bell-shaped density (serial)                                        *)
(* ------------------------------------------------------------------ *)

module Rbell = struct
  type t = {
    grid : Grid.t;
    movable : int array;
    cell_w : float array;
    cell_h : float array;
    radius_x : float array;
    radius_y : float array;
    normalizer : float array;
    target : float array;
    phi : float array;
  }

  let theta ~r d =
    let d = abs_float d in
    if d >= r then 0.0
    else if d <= r /. 2.0 then 1.0 -. (2.0 *. d *. d /. (r *. r))
    else begin
      let e = d -. r in
      2.0 *. e *. e /. (r *. r)
    end

  let theta_deriv ~r d =
    let s = if d < 0.0 then -1.0 else 1.0 in
    let d = abs_float d in
    if d >= r then 0.0
    else if d <= r /. 2.0 then s *. (-4.0 *. d /. (r *. r))
    else s *. (4.0 *. (d -. r) /. (r *. r))

  let lattice_sum ~r ~step =
    let k = int_of_float (ceil (r /. step)) + 1 in
    let acc = ref 0.0 in
    for i = -k to k do
      acc := !acc +. theta ~r (float_of_int i *. step)
    done;
    !acc

  let create ?(frozen = fun _ -> false) (d : Design.t) ~grid ~target_density =
    let nc = Design.num_cells d in
    let movable =
      Array.of_list
        (List.filter (fun i -> not (frozen i)) (Array.to_list (Design.movable_ids d)))
    in
    let cell_w = Array.make nc 0.0 and cell_h = Array.make nc 0.0 in
    let radius_x = Array.make nc 0.0 and radius_y = Array.make nc 0.0 in
    let normalizer = Array.make nc 0.0 in
    Array.iter
      (fun i ->
        let c = Design.cell d i in
        cell_w.(i) <- c.Types.c_width;
        cell_h.(i) <- c.Types.c_height;
        radius_x.(i) <- (c.Types.c_width /. 2.0) +. grid.Grid.bin_w;
        radius_y.(i) <- (c.Types.c_height /. 2.0) +. grid.Grid.bin_h;
        let sx = lattice_sum ~r:radius_x.(i) ~step:grid.Grid.bin_w in
        let sy = lattice_sum ~r:radius_y.(i) ~step:grid.Grid.bin_h in
        let s = sx *. sy in
        normalizer.(i) <-
          (if s > 0.0 then c.Types.c_width *. c.Types.c_height /. s else 0.0))
      movable;
    let target = Array.map (fun cap -> target_density *. cap) grid.Grid.capacity in
    {
      grid;
      movable;
      cell_w;
      cell_h;
      radius_x;
      radius_y;
      normalizer;
      target;
      phi = Array.make (Array.length grid.Grid.capacity) 0.0;
    }

  let iter_window t i x y f =
    let g = t.grid in
    let rx = t.radius_x.(i) and ry = t.radius_y.(i) in
    let ix0, ix1 =
      Grid.range_of_interval ~lo:(x -. rx) ~hi:(x +. rx) ~origin:g.Grid.die.Rect.xl
        ~step:g.Grid.bin_w ~n:g.Grid.nx
    in
    let iy0, iy1 =
      Grid.range_of_interval ~lo:(y -. ry) ~hi:(y +. ry) ~origin:g.Grid.die.Rect.yl
        ~step:g.Grid.bin_h ~n:g.Grid.ny
    in
    for iy = iy0 to iy1 do
      let ty = theta ~r:ry (y -. Grid.bin_center_y g iy) in
      if ty > 0.0 then
        for ix = ix0 to ix1 do
          let tx = theta ~r:rx (x -. Grid.bin_center_x g ix) in
          if tx > 0.0 then f ix iy tx ty
        done
    done

  let fill_phi t ~cx ~cy =
    Array.fill t.phi 0 (Array.length t.phi) 0.0;
    Array.iter
      (fun i ->
        let cv = t.normalizer.(i) in
        iter_window t i cx.(i) cy.(i) (fun ix iy tx ty ->
            let b = Grid.index t.grid ix iy in
            t.phi.(b) <- t.phi.(b) +. (cv *. tx *. ty)))
      t.movable

  let penalty t =
    let acc = ref 0.0 in
    for b = 0 to Array.length t.phi - 1 do
      let e = t.phi.(b) -. t.target.(b) in
      acc := !acc +. (e *. e)
    done;
    !acc

  let value_grad t ~cx ~cy ~gx ~gy =
    fill_phi t ~cx ~cy;
    let g = t.grid in
    Array.iter
      (fun i ->
        let cv = t.normalizer.(i) in
        let x = cx.(i) and y = cy.(i) in
        let rx = t.radius_x.(i) and ry = t.radius_y.(i) in
        iter_window t i x y (fun ix iy tx ty ->
            let b = Grid.index g ix iy in
            let e = 2.0 *. (t.phi.(b) -. t.target.(b)) in
            let dtx = theta_deriv ~r:rx (x -. Grid.bin_center_x g ix) in
            let dty = theta_deriv ~r:ry (y -. Grid.bin_center_y g iy) in
            gx.(i) <- gx.(i) +. (e *. cv *. dtx *. ty);
            gy.(i) <- gy.(i) +. (e *. cv *. tx *. dty)))
      t.movable;
    penalty t
end
