(** Congestion-stress preset for the routability loop: a narrow-channel
    design whose wirelength optimum is badly routable.

    A full-height fixed blocker splits the die at mid-x — a cell-free
    routing channel every cross wire must span.  [pairs] left/right cell
    pairs are wired by 2-pin cross nets across the channel.  Two anchor
    nets with decoupled axes hold each cell: a strong 3-pin net to the
    corner pads of its side (bounding box spans the full die height, so
    it is a pure horizontal pull that keeps the cell from being dragged
    across the channel to its partner), and a weak 2-pin net to a
    mid-height pad on the same side — the design's only vertical
    preference.  The quadratic init therefore stacks every pair at
    mid-height and a congestion-blind GP keeps the stack, piling the
    cross-net bounding boxes into one hot RUDY band across the channel.
    Vertical spreading — the congestion-driven fix — fights only the weak
    stacking nets, so its HPWL cost stays under 2% while the band's ACE
    congestion drops by over 20%.

    Deterministic in [seed]; carries no ground-truth groups.  Passes
    {!Dpp_netlist.Validate} with no errors. *)

val name : string
(** ["rt_channel"] *)

val build : ?seed:int -> ?pairs:int -> unit -> Dpp_netlist.Design.t
(** [seed] defaults to 1, [pairs] to 240 (480 movable cells).
    @raise Invalid_argument when [pairs < 2]. *)

val by_name : ?seed:int -> ?pairs:int -> string -> Dpp_netlist.Design.t option
(** [Some] design iff the name is {!name} — the hook the [dpp_place]
    preset chain and the bench layer use. *)
