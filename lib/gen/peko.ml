module Rect = Dpp_geom.Rect
module Orient = Dpp_geom.Orient
module Types = Dpp_netlist.Types
module Design = Dpp_netlist.Design

(* PEKO-style instance (Cong, Romesis, Xie: "Optimality and Scalability
   Study of Existing Placement Algorithms" / the PEKO suite): a placement
   example with known exact optimal HPWL, used to report an absolute
   optimality gap instead of only relative wirelength.

   Construction: an R x C grid of unit cells (1 site wide, 1 row tall),
   one pin per cell at the cell center.  Each grid row is partitioned into
   consecutive runs following the degree cycle [2;3;2;4;2;3;2;8]; each run
   becomes one net over exactly those cells.  In the constructed placement
   (cell (r,c) at site c of row r) every net spans k consecutive sites in
   one row, so its HPWL is (k-1) * site_width with zero vertical extent.

   Optimality: k non-overlapping unit cells admit no placement whose pin
   bounding box beats the best a x b site window with a*b >= k, i.e.
   (a-1)*site_width + (b-1)*row_height minimized.  Because row_height
   (10) exceeds (k_max-1)*site_width (7) for every degree used, the
   single-row window is that minimum, so (k-1)*site_width is a true lower
   bound per net.  Nets are pairwise cell-disjoint, so the constructed
   placement attains every bound simultaneously:

     optimal HPWL  =  sum over nets of (degree-1) * site_width

   exactly — any flow's final HPWL divided by this value is its
   optimality gap. *)

let degree_cycle = [| 2; 3; 2; 4; 2; 3; 2; 8 |]

let cycle_cells = Array.fold_left ( + ) 0 degree_cycle (* 26 *)

let cycle_hpwl = Array.fold_left (fun a d -> a + d - 1) 0 degree_cycle (* 18 *)

let build ?(utilization = 0.8) ~name ~cells () =
  if cells < 64 then invalid_arg "Peko.build: at least 64 cells";
  if utilization <= 0.0 || utilization > 0.95 then
    invalid_arg "Peko.build: utilization must be in (0, 0.95]";
  let rh = Stdcells.row_height and sw = Stdcells.site_width in
  (* near-square die: rows * rh ~ cols * sw / utilization *)
  let rows =
    max 2
      (int_of_float
         (Float.round (sqrt (float_of_int cells *. sw /. (rh /. utilization)))))
  in
  let cols0 = cells / rows in
  let cols = max cycle_cells (cols0 - (cols0 mod cycle_cells)) in
  let nc = rows * cols in
  let nets_per_row = cols / cycle_cells * Array.length degree_cycle in
  let nn = rows * nets_per_row in
  let cell_id r c = (r * cols) + c in
  (* one pin per cell; pin id = cell id *)
  let nets = Array.make nn Types.{ n_id = 0; n_name = ""; n_weight = 1.0; n_pins = [||] } in
  let pin_is_driver = Array.make nc false in
  let pin2net = Array.make nc (-1) in
  let cursor = ref 0 in
  for r = 0 to rows - 1 do
    let c = ref 0 in
    while !c < cols do
      let d = degree_cycle.((!cursor - (r * nets_per_row)) mod Array.length degree_cycle) in
      let pins = Array.init d (fun j -> cell_id r (!c + j)) in
      Array.iter (fun p -> pin2net.(p) <- !cursor) pins;
      pin_is_driver.(pins.(0)) <- true;
      nets.(!cursor) <- { Types.n_id = !cursor; n_name = Printf.sprintf "pk%d" !cursor; n_weight = 1.0; n_pins = pins };
      incr cursor;
      c := !c + d
    done
  done;
  assert (!cursor = nn);
  let cells_arr =
    Array.init nc (fun i ->
        {
          Types.c_id = i;
          c_name = Printf.sprintf "p%d" i;
          c_master = "PEKO_U";
          c_width = sw;
          c_height = rh;
          c_kind = Types.Movable;
          c_pins = [| i |];
        })
  in
  let pins_arr =
    Array.init nc (fun i ->
        {
          Types.p_id = i;
          p_cell = i;
          p_net = pin2net.(i);
          p_dir = (if pin_is_driver.(i) then Types.Output else Types.Input);
          p_dx = sw /. 2.0;
          p_dy = rh /. 2.0;
        })
  in
  let die_w = Float.round (float_of_int cols *. sw /. utilization) in
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:die_w ~yh:(float_of_int rows *. rh) in
  (* ship the design at the constructed optimum (a legal placement
     attaining the bound); the flow's init stage replaces it anyway *)
  let x = Array.init nc (fun i -> float_of_int (i mod cols) *. sw) in
  let y = Array.init nc (fun i -> float_of_int (i / cols) *. rh) in
  let d =
    {
      Design.name;
      die;
      row_height = rh;
      site_width = sw;
      num_rows = rows;
      cells = cells_arr;
      nets;
      pins = pins_arr;
      x;
      y;
      orient = Array.make nc Orient.N;
      groups = [];
    }
  in
  let opt =
    float_of_int rows *. float_of_int (cols / cycle_cells) *. float_of_int cycle_hpwl *. sw
  in
  d, opt
