(** PEKO-style placement examples with analytically known optimal HPWL
    (after Cong, Romesis and Xie's PEKO suite), so XL-scale runs can report
    an absolute optimality gap instead of only relative wirelength.

    An R x C grid of unit cells, one center pin each; each grid row is cut
    into consecutive runs by the degree cycle [2;3;2;4;2;3;2;8], one net
    per run.  Nets are cell-disjoint and row_height > (max_degree - 1) *
    site_width, so every net's true lower bound is the single-row window
    (degree - 1) * site_width and the constructed placement attains all of
    them simultaneously.  See DESIGN.md "PEKO construction" for the
    argument. *)

val degree_cycle : int array

val build :
  ?utilization:float ->
  name:string ->
  cells:int ->
  unit ->
  Dpp_netlist.Design.t * float
(** [build ~name ~cells ()] returns the design (shipped at its constructed
    optimal placement — legal, and attaining the bound) and the exact
    optimal HPWL.  Fully deterministic; [cells] is rounded to a full R x C
    grid with C a multiple of 26.  [utilization] defaults to 0.8. *)
