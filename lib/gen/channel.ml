module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Builder = Dpp_netlist.Builder
module Rng = Dpp_util.Rng

let name = "rt_channel"

(* Geometry: a 640x320 die split by a full-height fixed blocker over
   x in [240, 400] — a narrow cell-free routing channel every cross wire
   must span.  [pairs] left/right movable pairs are wired by 2-pin cross
   nets across the channel.  Two anchor nets with decoupled axes hold
   each cell:

   - a [hold_weight] 3-pin net to the two corner pads of the cell's side.
     Its bounding box spans the full die height, so it is a pure
     horizontal pull — strong enough (>= the cross weight) that dragging
     a cell across the channel to its partner never pays, which is what
     keeps the cross spans wide;
   - a [stack_weight] 2-pin net to a mid-height pad on the same side.
     Along y it is the only preference the design has, so the quadratic
     init stacks every pair at mid-height and a congestion-blind GP keeps
     the stack — the cross-net bounding boxes pile into one hot RUDY band
     across the channel.

   Vertical spreading — the congestion-driven fix — therefore fights only
   the weak stacking nets: its HPWL cost is a fraction of a percent while
   the band congestion drops by whole multiples. *)
let die_w = 640.0

let die_h = 320.0

let row_h = 8.0

let blocker_w = 160.0

(* blocked x band: cells live in x < channel_lo or x > channel_hi *)
let channel_lo = 240.0

let channel_hi = 400.0

let cell_w = 4.0

(* Cross-net wire weight: keeps the total RUDY mass well under the die
   area, so congestion stays a local property of the stacked band instead
   of saturating the whole map. *)
let wire_weight = 0.25

(* Horizontal hold: must beat [wire_weight] or GP drags left cells across
   the channel and the cross spans collapse. *)
let hold_weight = 0.3

(* Vertical stacking: weak, so congestion-driven spreading is nearly
   HPWL-free — but strong enough to hold the stack against the density
   spreading of a congestion-blind GP. *)
let stack_weight = 0.04

let build ?(seed = 1) ?(pairs = 240) () =
  if pairs < 2 then invalid_arg "Channel.build: need at least 2 pairs";
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:die_w ~yh:die_h in
  let b = Builder.create ~name ~die ~row_height:row_h ~site_width:1.0 () in
  let blocker =
    Builder.add_cell b ~name:"blk_0" ~master:"BLOCK" ~w:blocker_w ~h:die_h
      ~kind:Types.Fixed
  in
  Builder.set_position b blocker ~x:channel_lo ~y:0.0;
  let pad idx x y =
    let id =
      Builder.add_cell b
        ~name:(Printf.sprintf "pad_%d" idx)
        ~master:"PAD" ~w:1.0 ~h:1.0 ~kind:Types.Pad
    in
    Builder.set_position b id ~x ~y;
    id
  in
  let mid_y = (die_h /. 2.0) -. 0.5 in
  let l_bot = pad 0 0.0 0.0 and l_top = pad 1 0.0 (die_h -. 1.0) in
  let l_mid = pad 2 0.0 mid_y in
  let r_bot = pad 3 (die_w -. 1.0) 0.0 and r_top = pad 4 (die_w -. 1.0) (die_h -. 1.0) in
  let r_mid = pad 5 (die_w -. 1.0) mid_y in
  let rng = Rng.create seed in
  let mk_cell side i x_lo x_hi =
    let id =
      Builder.add_cell b
        ~name:(Printf.sprintf "%s_%d" side i)
        ~master:"STD" ~w:cell_w ~h:row_h ~kind:Types.Movable
    in
    Builder.set_position b id ~x:(Rng.float_in rng x_lo (x_hi -. cell_w))
      ~y:(Rng.float_in rng 0.0 (die_h -. row_h));
    id
  in
  let left = Array.init pairs (fun i -> mk_cell "l" i 0.0 channel_lo) in
  let right = Array.init pairs (fun i -> mk_cell "r" i channel_hi die_w) in
  let pin id = Builder.add_pin b ~cell:id ~dir:Types.Inout () in
  let pad_pin id = Builder.add_pin b ~cell:id ~dir:Types.Inout ~dx:0.5 ~dy:0.5 () in
  Array.iteri
    (fun i l ->
      ignore
        (Builder.add_net b
           ~name:(Printf.sprintf "x_%d" i)
           ~weight:wire_weight
           [ pin l; pin right.(i) ]))
    left;
  let anchor side bot top mid cells =
    Array.iteri
      (fun i c ->
        ignore
          (Builder.add_net b
             ~name:(Printf.sprintf "h%s_%d" side i)
             ~weight:hold_weight
             [ pin c; pad_pin bot; pad_pin top ]);
        ignore
          (Builder.add_net b
             ~name:(Printf.sprintf "s%s_%d" side i)
             ~weight:stack_weight
             [ pin c; pad_pin mid ]))
      cells
  in
  anchor "l" l_bot l_top l_mid left;
  anchor "r" r_bot r_top r_mid right;
  Builder.finish b

let by_name ?seed ?pairs n = if String.equal n name then Some (build ?seed ?pairs ()) else None
