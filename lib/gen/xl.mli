(** XL preset family: 10k–1M-cell datapath-heavy designs built by direct
    flat-array construction (entity counts are computed in closed form and
    every table is filled by ascending-index loops), so generation never
    materializes intermediate lists or hash tables — the Builder path would
    dominate memory at 10^6 cells.

    Structure: a chain of DFF-bounded datapath tiles ([32] slices x [8]
    stages) linked by 32-wide bit-parallel buses, a slice-spanning control
    net per tile, exact ground-truth groups, and a ~20% random glue cloud
    on degree-3 nets.  Deterministic in [seed]. *)

val slices : int

val stages : int

val presets : (string * int) list
(** [name, target cell count]: [xl10k] .. [xl1m]. *)

val preset_names : string list

val preset_cells : string -> int option

val build :
  ?seed:int -> ?utilization:float -> name:string -> cells:int -> unit -> Dpp_netlist.Design.t
(** [build ~name ~cells ()] emits a design of roughly [cells] movables
    (~80% in labelled tiles, rest glue) plus 64 boundary pads.  Passes
    {!Dpp_netlist.Validate} with no errors.  [cells] must be >= 1000;
    [utilization] defaults to 0.7. *)

val by_name : ?seed:int -> string -> Dpp_netlist.Design.t option
(** Build one of {!presets} by name. *)
