module Rect = Dpp_geom.Rect
module Orient = Dpp_geom.Orient
module Types = Dpp_netlist.Types
module Design = Dpp_netlist.Design
module Groups = Dpp_netlist.Groups
module Rng = Dpp_util.Rng

(* The XL family targets 10^5..10^6 cells, where the Builder's per-entity
   hash tables and pin lists would dominate generation time and memory.
   Everything here is computed in closed form — entity counts first, then
   one flat array per entity table filled by ascending-index loops — so no
   intermediate list or hash table is ever materialized.

   Structure: a chain of datapath tiles, each [slices] bit-slices wide and
   [stages] pipeline stages deep (DFF-bounded, FA/XOR/NAND/MUX/AOI/OR
   middle stages).  Per slice, degree-2 nets link stage k to k+1; tiles
   chain through [slices]-wide buses (the bit-parallel inter-block buses
   the extractor keys on); per tile a control cell drives a slice-spanning
   control net (clk/we signature).  Each tile carries its exact
   ground-truth group (slices x stages).  The remaining ~20% of cells are
   a random glue cloud wired by degree-3 nets over two seed-derived
   permutations. *)

let slices = 32
let stages = 8

let stage_masters =
  [| "DFF"; "FA"; "XOR2"; "NAND2"; "MUX2"; "AOI21"; "OR2"; "DFF" |]

let glue_masters = [| "NAND2"; "NOR2"; "AOI21"; "XOR2" |]

let master name =
  match Stdcells.find name with
  | Some m -> m
  | None -> invalid_arg ("Xl.build: unknown master " ^ name)

let presets =
  [
    "xl10k", 10_000;
    "xl25k", 25_000;
    "xl50k", 50_000;
    "xl100k", 100_000;
    "xl250k", 250_000;
    "xl500k", 500_000;
    "xl1m", 1_000_000;
  ]

let preset_names = List.map fst presets

let preset_cells name = List.assoc_opt name presets

let build ?(seed = 1) ?(utilization = 0.7) ~name ~cells () =
  if cells < 1_000 then invalid_arg "Xl.build: at least 1000 cells";
  let w = slices and s = stages in
  let per_tile = (w * s) + 1 in
  let dp_target = int_of_float (0.8 *. float_of_int cells) in
  let tiles = max 1 (dp_target / per_tile) in
  let glue = max 0 (cells - (tiles * per_tile)) in
  let num_pads = 2 * w in
  let nc = (tiles * w * s) + tiles + glue + num_pads in
  (* ---- cell id layout: dp | control | glue | pads ---- *)
  let dp_id t wi k = (((t * w) + wi) * s) + k in
  let ctl_id t = (tiles * w * s) + t in
  let glue_id j = (tiles * w * s) + tiles + j in
  let pad_base = (tiles * w * s) + tiles + glue in
  let pad_in wi = pad_base + wi in
  let pad_out wi = pad_base + w + wi in
  (* ---- pin layout: contiguous per cell, prefix-summed ----
     dp stage 0: [in; ctl_in; out]   dp other: [in; out]
     control:    [out]               glue:     [inA; inB; out]   pad: [pin] *)
  let pins_of_cell c =
    if c < tiles * w * s then if c mod s = 0 then 3 else 2
    else if c < tiles * w * s + tiles then 1
    else if c < pad_base then 3
    else 1
  in
  let pin_base = Array.make (nc + 1) 0 in
  for c = 0 to nc - 1 do
    pin_base.(c + 1) <- pin_base.(c) + pins_of_cell c
  done;
  let np = pin_base.(nc) in
  let p_in t wi k = pin_base.(dp_id t wi k) in
  let p_ctl t wi = pin_base.(dp_id t wi 0) + 1 in
  let p_out t wi k = pin_base.(dp_id t wi k) + (if k = 0 then 2 else 1) in
  let p_ctlout t = pin_base.(ctl_id t) in
  let p_ga j = pin_base.(glue_id j) in
  let p_gb j = pin_base.(glue_id j) + 1 in
  let p_gout j = pin_base.(glue_id j) + 2 in
  let p_pad c = pin_base.(c) in
  (* ---- nets: stage | bus | control | pad-in | pad-out | glue ---- *)
  let nn =
    (tiles * w * (s - 1)) + ((tiles - 1) * w) + tiles + w + w + glue
  in
  let nets = Array.make (max 1 nn) Types.{ n_id = 0; n_name = ""; n_weight = 1.0; n_pins = [||] } in
  let pin2net = Array.make (max 1 np) (-1) in
  let cursor = ref 0 in
  let add_net nm pins =
    let id = !cursor in
    Array.iter (fun p -> pin2net.(p) <- id) pins;
    nets.(id) <- { Types.n_id = id; n_name = nm; n_weight = 1.0; n_pins = pins };
    incr cursor
  in
  for t = 0 to tiles - 1 do
    for wi = 0 to w - 1 do
      for k = 0 to s - 2 do
        add_net
          (Printf.sprintf "t%d_b%d_n%d" t wi k)
          [| p_out t wi k; p_in t wi (k + 1) |]
      done
    done
  done;
  for t = 0 to tiles - 2 do
    for wi = 0 to w - 1 do
      add_net (Printf.sprintf "bus%d_%d" t wi) [| p_out t wi (s - 1); p_in (t + 1) wi 0 |]
    done
  done;
  for t = 0 to tiles - 1 do
    let pins = Array.make (w + 1) 0 in
    pins.(0) <- p_ctlout t;
    for wi = 0 to w - 1 do
      pins.(wi + 1) <- p_ctl t wi
    done;
    add_net (Printf.sprintf "t%d_clk" t) pins
  done;
  for wi = 0 to w - 1 do
    add_net (Printf.sprintf "pi%d_n" wi) [| p_pad (pad_in wi); p_in 0 wi 0 |]
  done;
  for wi = 0 to w - 1 do
    add_net (Printf.sprintf "po%d_n" wi) [| p_out (tiles - 1) wi (s - 1); p_pad (pad_out wi) |]
  done;
  if glue > 0 then begin
    let rng = Rng.create seed in
    let perm1 = Array.init glue Fun.id in
    let perm2 = Array.init glue Fun.id in
    Rng.shuffle rng perm1;
    Rng.shuffle rng perm2;
    for j = 0 to glue - 1 do
      add_net (Printf.sprintf "gn%d" j) [| p_gout j; p_ga perm1.(j); p_gb perm2.(j) |]
    done
  end;
  assert (!cursor = nn);
  (* ---- cells and pins ---- *)
  let stage_m = Array.map master stage_masters in
  let glue_m = Array.map master glue_masters in
  let buf_m = master "BUF" in
  let rh = Stdcells.row_height in
  let cells_arr =
    Array.make (max 1 nc) Types.{ c_id = 0; c_name = ""; c_master = ""; c_width = 0.0; c_height = 0.0; c_kind = Movable; c_pins = [||] }
  in
  let pins_arr =
    Array.make (max 1 np)
      Types.{ p_id = 0; p_cell = 0; p_net = -1; p_dir = Inout; p_dx = 0.0; p_dy = 0.0 }
  in
  let mk_pin ~id ~cell ~dir ~dx ~dy =
    pins_arr.(id) <- { Types.p_id = id; p_cell = cell; p_net = pin2net.(id); p_dir = dir; p_dx = dx; p_dy = dy }
  in
  let mk_cell ~id ~nm ~(m : Stdcells.master) ~kind =
    let npins = pins_of_cell id in
    cells_arr.(id) <-
      {
        Types.c_id = id;
        c_name = nm;
        c_master = m.Stdcells.m_name;
        c_width = m.Stdcells.m_width;
        c_height = rh;
        c_kind = kind;
        c_pins = Array.init npins (fun j -> pin_base.(id) + j);
      }
  in
  let movable_area = ref 0.0 in
  for t = 0 to tiles - 1 do
    for wi = 0 to w - 1 do
      for k = 0 to s - 1 do
        let id = dp_id t wi k in
        let m = stage_m.(k) in
        mk_cell ~id ~nm:(Printf.sprintf "t%d_b%d_s%d" t wi k) ~m ~kind:Types.Movable;
        movable_area := !movable_area +. (m.Stdcells.m_width *. rh);
        let ox, oy = Stdcells.pin_offset m ~index:0 in
        mk_pin ~id:(p_in t wi k) ~cell:id ~dir:Types.Input ~dx:ox ~dy:oy;
        if k = 0 then begin
          let cx2, cy2 = Stdcells.pin_offset m ~index:1 in
          mk_pin ~id:(p_ctl t wi) ~cell:id ~dir:Types.Input ~dx:cx2 ~dy:cy2
        end;
        let ox, oy = Stdcells.pin_offset m ~index:m.Stdcells.m_inputs in
        mk_pin ~id:(p_out t wi k) ~cell:id ~dir:Types.Output ~dx:ox ~dy:oy
      done
    done
  done;
  for t = 0 to tiles - 1 do
    let id = ctl_id t in
    mk_cell ~id ~nm:(Printf.sprintf "t%d_ctl" t) ~m:buf_m ~kind:Types.Movable;
    movable_area := !movable_area +. (buf_m.Stdcells.m_width *. rh);
    let ox, oy = Stdcells.pin_offset buf_m ~index:buf_m.Stdcells.m_inputs in
    mk_pin ~id:(p_ctlout t) ~cell:id ~dir:Types.Output ~dx:ox ~dy:oy
  done;
  for j = 0 to glue - 1 do
    let id = glue_id j in
    let m = glue_m.(j mod Array.length glue_m) in
    mk_cell ~id ~nm:(Printf.sprintf "g%d" j) ~m ~kind:Types.Movable;
    movable_area := !movable_area +. (m.Stdcells.m_width *. rh);
    let ax, ay = Stdcells.pin_offset m ~index:0 in
    mk_pin ~id:(p_ga j) ~cell:id ~dir:Types.Input ~dx:ax ~dy:ay;
    let bx, by = Stdcells.pin_offset m ~index:1 in
    mk_pin ~id:(p_gb j) ~cell:id ~dir:Types.Input ~dx:bx ~dy:by;
    let ox, oy = Stdcells.pin_offset m ~index:m.Stdcells.m_inputs in
    mk_pin ~id:(p_gout j) ~cell:id ~dir:Types.Output ~dx:ox ~dy:oy
  done;
  for wi = 0 to w - 1 do
    let id = pad_in wi in
    cells_arr.(id) <-
      { Types.c_id = id; c_name = Printf.sprintf "pi%d" wi; c_master = "PAD_IN"; c_width = 1.0;
        c_height = 1.0; c_kind = Types.Pad; c_pins = [| p_pad id |] };
    mk_pin ~id:(p_pad id) ~cell:id ~dir:Types.Output ~dx:0.5 ~dy:0.5;
    let id = pad_out wi in
    cells_arr.(id) <-
      { Types.c_id = id; c_name = Printf.sprintf "po%d" wi; c_master = "PAD_OUT"; c_width = 1.0;
        c_height = 1.0; c_kind = Types.Pad; c_pins = [| p_pad id |] };
    mk_pin ~id:(p_pad id) ~cell:id ~dir:Types.Input ~dx:0.5 ~dy:0.5
  done;
  (* ---- die, positions, pads on the boundary ---- *)
  let die = Compose.die_for_area ~movable_area:!movable_area ~utilization in
  let num_rows = int_of_float (Float.round (Rect.height die /. rh)) in
  let x = Array.make nc 0.0 and y = Array.make nc 0.0 in
  let orient = Array.make nc Orient.N in
  let perimeter = 2.0 *. (Rect.width die +. Rect.height die) in
  for i = 0 to num_pads - 1 do
    let id = pad_base + i in
    let sp = (float_of_int i +. 0.5) /. float_of_int num_pads *. perimeter in
    let dw = Rect.width die and dh = Rect.height die in
    let px, py =
      if sp < dw then sp, 0.0
      else if sp < dw +. dh then dw -. 1.0, sp -. dw
      else if sp < (2.0 *. dw) +. dh then dw -. (sp -. dw -. dh), dh -. 1.0
      else 0.0, dh -. (sp -. (2.0 *. dw) -. dh)
    in
    x.(id) <- max 0.0 (min (dw -. 1.0) px);
    y.(id) <- max 0.0 (min (dh -. 1.0) py)
  done;
  (* ---- ground-truth groups: one per tile ---- *)
  let groups = ref [] in
  for t = tiles - 1 downto 0 do
    let rows = Array.init w (fun wi -> Array.init s (fun k -> dp_id t wi k)) in
    groups := Groups.make (Printf.sprintf "xl_t%d" t) rows :: !groups
  done;
  {
    Design.name;
    die;
    row_height = rh;
    site_width = Stdcells.site_width;
    num_rows;
    cells = cells_arr;
    nets;
    pins = pins_arr;
    x;
    y;
    orient;
    groups = !groups;
  }

let by_name ?seed nm =
  match preset_cells nm with
  | None -> None
  | Some cells -> Some (build ?seed ~name:nm ~cells ())
