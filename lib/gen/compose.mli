(** Whole-design assembly: datapath blocks + random glue + pads + die.

    The paper's benchmarks are proprietary industrial datapath designs;
    this module is the substitution — it builds designs with the same
    structural signature (bit-sliced arrays wired by bit-parallel buses and
    slice-spanning control nets, embedded in irregular logic) and, unlike
    the originals, carries exact ground-truth group labels.

    Stitching is bus-aware: output buses (e.g. an adder's [s0..s31]) are
    connected bit-by-bit to equal-width input buses (e.g. a register bank's
    [d0..d31]) so inter-block regularity survives, exactly the property the
    extractor keys on; leftover scalar ports go to random drivers or pads. *)

type block_spec =
  | Adder of int  (** bits *)
  | Alu of int
  | Shifter of int
  | Regbank of int
  | Comparator of int
  | Multiplier of int
  | Muxtree of int * int  (** bits, inputs *)
  | Cselect of int * int  (** bits, block size *)
  | Prienc of int
  | Ram of int * int * int  (** width in sites, height in rows, data bits *)

type spec = {
  sp_name : string;
  sp_seed : int;
  sp_blocks : block_spec list;
  sp_random_cells : int;
  sp_utilization : float;  (** target core utilization, e.g. 0.7 *)
}

val block_spec_to_string : block_spec -> string

val die_for_area : movable_area:float -> utilization:float -> Dpp_geom.Rect.t
(** Die outline sized so [movable_area / core_area = utilization], height a
    row multiple (shared with the direct-construction {!Xl} generator). *)

val build : spec -> Dpp_netlist.Design.t
(** Deterministic in [sp_seed].  The result carries the ground-truth groups
    of every instantiated block, passes {!Dpp_netlist.Validate} with no
    errors, and has all pads placed on the die boundary. *)
