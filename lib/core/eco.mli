(** Incremental ECO re-placement: apply a small edit list to an already
    placed design and re-run only the post-placement stages — legalize,
    detail, flip — inside the region the edits actually disturbed.

    The contract that makes the mode testable: every {e clean} cell (not
    in the dirty set) keeps its base position and orientation bit for bit
    — clean cells are frozen through the stage [skip] sets and their
    outlines become obstacles for the bounded stages — while the full
    result still passes every {!Dpp_check} legality oracle.  The dirty
    region is derived from the {!Dpp_wirelen.Netbox.dirty_nets} delta
    export: the coordinate edits are replayed through a netbox
    transaction against the base placement and the nets whose committed
    boxes moved (plus the rewired ones) bound the region.

    When the edits disturb more than [threshold] of the movable cells the
    incremental machinery would churn most of the die anyway, so {!run}
    falls back to the full flow on the edited design. *)

(** One netlist/placement edit, id-referenced against the base design. *)
type edit =
  | Move of { cell : int; dx : float; dy : float }
      (** displace a cell's target position (composes across edits) *)
  | Resize of { cell : int; scale : float }
      (** scale a movable cell's width (snapped to the site grid) *)
  | Rewire of { net : int; pin_index : int; to_cell : int }
      (** move the [pin_index]-th pin of a net onto another cell (pin
          offset resets to the new cell's center) *)
  | Add of { near : int; w : float; nets : int list }
      (** a new single-row movable cell spawned at [near]'s position,
          with one pin on each listed net *)

val edit_to_json : edit -> Dpp_report.Json.t
val edit_of_json : Dpp_report.Json.t -> edit
(** @raise Dpp_report.Json.Parse_error on a malformed edit object. *)

val edits_to_json : edit list -> Dpp_report.Json.t
val edits_of_json : Dpp_report.Json.t -> edit list
(** The wire format the serve protocol carries edit lists in. *)

type applied = {
  edited : Dpp_netlist.Design.t;
      (** rebuilt design: base ids preserved, added cells appended *)
  seeds : int array;
      (** cells that {e must} re-place — moved, resized, or added.  Rewire
          endpoints keep a legal placement; their nets reach the plan
          through [struct_nets] instead, so distant fanout does not
          inflate the dirty region *)
  anchors : int array;
      (** seeds plus rewire targets and add sites — the cells whose
          outlines bound the dirty region's hull *)
  struct_nets : int array;  (** nets rewired or grown by an added pin *)
  moves : (int * float * float) list;  (** cell, dx, dy — net displacement *)
}

val apply : Dpp_netlist.Design.t -> edit list -> applied
(** Rebuild the netlist with the edits folded in.  The base design is not
    modified.  @raise Invalid_argument on an empty edit list or an edit
    referencing an out-of-range id (a resize of a non-movable cell, a
    non-positive scale or width). *)

type plan = {
  applied : applied;
  region : Dpp_geom.Rect.t;  (** row-aligned dirty region, clipped to the die *)
  dirty : int array;  (** movable single-row cells that get re-placed *)
  frozen : int array;  (** movable cells pinned at their base placement *)
  obstacles : Dpp_geom.Rect.t list;
      (** frozen outlines the bounded stages pack around *)
  dirty_fraction : float;  (** |dirty| / movables of the edited design *)
}

val plan :
  ?expand:float ->
  ?freeze:int array ->
  ?obstacles:Dpp_geom.Rect.t list ->
  Dpp_netlist.Design.t ->
  edit list ->
  plan
(** Compute the dirty region and cell partition for an edit list against
    a placed base design.  [expand] (default 2 row heights) is the
    initial margin around the disturbed hull; the region then grows until
    the dirty cells fit with 25% slack (or the whole die is dirty).
    [freeze] pins extra cells (e.g. snapped datapath group members from
    the base run); [obstacles] carries the base run's snapped-group
    outlines. *)

type result = {
  flow : Flow.result;
  plan : plan;
  fallback : bool;  (** true when the dirty fraction forced a full re-place *)
}

val default_threshold : float
(** 0.25 — above a quarter of the movables dirty, re-place from scratch. *)

val run :
  ?observer:(Dpp_report.Trace.stage -> unit) ->
  ?check:bool ->
  ?threshold:float ->
  ?expand:float ->
  ?freeze:int array ->
  ?obstacles:Dpp_geom.Rect.t list ->
  base:Dpp_netlist.Design.t ->
  edit list ->
  Config.t ->
  result
(** Incrementally re-place [base] (which must already be legally placed —
    a {!Flow.run} result design) under the edit list.  Below the dirty
    threshold this runs {!Flow.eco_stages} with the plan's region, skip
    sets, and obstacles installed; above it, the full flow on the edited
    design.  [observer] and [check] behave as in {!Flow.run} (in check
    mode the full legality oracles hold from the legalize boundary on,
    clean region included). *)

val random_edits : ?ops:int -> seed:int -> Dpp_netlist.Design.t -> edit list
(** A deterministic, seeded edit list of [ops] edits (default 4), cycling
    move/resize/add/rewire and clustered around one random anchor cell so
    the dirty region stays a few percent of the die — the traffic shape
    the SRV bench, the fuzz harness, and the CI smoke job replay.
    @raise Invalid_argument when the design has no single-row movable
    cell. *)
