type mode = Baseline | Structure_aware

type group_source = Extracted | Ground_truth

type structure_style = Rigid_macros | Soft_alignment

type ml_mode = Ml_auto | Ml_on | Ml_off

type t = {
  mode : mode;
  group_source : group_source;
  structure : structure_style;
  model : Dpp_wirelen.Model.kind;
  target_density : float;
  beta : float;
  min_coupling : float;
  max_slice_span : float;
  gp_rounds : int;
  gp_inner_iters : int;
  overflow_target : float;
  detail_passes : int;
  extract : Dpp_extract.Slicer.config;
  seed : int;
  jobs : int;
  multilevel : ml_mode;
  ml_threshold : int;
  ml_min_cells : int;
  ml_max_levels : int;
  routability : bool;
  rt_interval : int;
  rt_overflow : float;
  rt_max_inflate : float;
}

let baseline =
  {
    mode = Baseline;
    group_source = Extracted;
    structure = Rigid_macros;
    model = Dpp_wirelen.Model.Lse;
    target_density = 0.9;
    beta = 1.0;
    min_coupling = 0.7;
    max_slice_span = 1.5;
    gp_rounds = 30;
    gp_inner_iters = 60;
    overflow_target = 0.08;
    detail_passes = 3;
    extract = Dpp_extract.Slicer.default_config;
    seed = 1;
    jobs = 1;
    multilevel = Ml_auto;
    ml_threshold = 1500;
    ml_min_cells = 500;
    ml_max_levels = 3;
    routability = false;
    rt_interval = 3;
    rt_overflow = 1.0;
    rt_max_inflate = 0.15;
  }

let structure_aware = { baseline with mode = Structure_aware }

let multilevel_enabled t ~movables =
  match t.multilevel with
  | Ml_on -> true
  | Ml_off -> false
  | Ml_auto -> movables > t.ml_threshold

let with_mode mode t = { t with mode }
let with_structure structure t = { t with structure }
let with_beta beta t = { t with beta }
let with_model model t = { t with model }

let mode_to_string = function Baseline -> "baseline" | Structure_aware -> "structure-aware"
