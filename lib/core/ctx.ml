module Design = Dpp_netlist.Design
module Soa = Dpp_netlist.Soa
module Groups = Dpp_netlist.Groups
module Hypergraph = Dpp_netlist.Hypergraph
module Pins = Dpp_wirelen.Pins
module Netbox = Dpp_wirelen.Netbox
module Hpwl = Dpp_wirelen.Hpwl

type t = {
  design : Design.t;
  config : Config.t;
  pool : Dpp_par.Pool.t;
  arena : Dpp_util.Arena.t;
      (** per-context scratch arena: recycled by GP rounds, netbox
          rescans and RUDY grids.  Single-domain — each serve worker
          context owns its own. *)
  soa : Soa.t;
  pins : Pins.t;
  hypergraph : Hypergraph.t Lazy.t;
  mutable cx : float array;
  mutable cy : float array;
  mutable netbox : Netbox.t option;
  mutable netbox_retired : Netbox.t option;
      (** last invalidated netbox, kept as the reuse donor for the next
          build over the same pin view *)
  mutable skip : int -> bool;
  mutable skip_ids : int array;
  mutable flip_skip : int -> bool;
  mutable flip_skip_ids : int array;
  mutable bound : Dpp_geom.Rect.t option;
  mutable obstacles : Dpp_geom.Rect.t list;
  mutable legal : Dpp_place.Legal.t option;
  mutable groups_used : Groups.t list;
  mutable extraction : (Dpp_extract.Slicer.result * Dpp_extract.Exmetrics.t) option;
  mutable dgroups : Dpp_structure.Dgroup.t list;
  mutable macro_dgs : Dpp_structure.Dgroup.t list;
  mutable rigid_dgs : Dpp_structure.Dgroup.t list;
  mutable soft_dgs : Dpp_structure.Dgroup.t list;
  mutable gp : Dpp_place.Gp.result option;
  mutable ml_levels : Dpp_coarsen.level list;
  mutable gp_levels : Dpp_place.Gp.level_info list;
  mutable detail_stats : Dpp_place.Detail.stats option;
  mutable flip_stats : Dpp_place.Flip.stats option;
  mutable hpwl_init : float;
  mutable hpwl_legal : float;
  mutable steiner_final : float;
  mutable congestion : Dpp_congest.Rudy.stats option;
  mutable critical_delay : float;
}

let create design config =
  let cx, cy = Pins.centers_of_design design in
  let soa = Soa.of_design design in
  {
    design;
    config;
    pool = Dpp_par.Pool.create ~nworkers:config.Config.jobs;
    arena = Dpp_util.Arena.create ();
    soa;
    pins = Pins.of_soa soa;
    hypergraph = lazy (Hypergraph.build design);
    cx;
    cy;
    netbox = None;
    netbox_retired = None;
    skip = (fun _ -> false);
    skip_ids = [||];
    flip_skip = (fun _ -> false);
    flip_skip_ids = [||];
    bound = None;
    obstacles = [];
    legal = None;
    groups_used = [];
    extraction = None;
    dgroups = [];
    macro_dgs = [];
    rigid_dgs = [];
    soft_dgs = [];
    gp = None;
    ml_levels = [];
    gp_levels = [];
    detail_stats = None;
    flip_stats = None;
    hpwl_init = 0.0;
    hpwl_legal = 0.0;
    steiner_final = 0.0;
    congestion = None;
    critical_delay = 0.0;
  }

(* install a skip predicate together with the id set behind it, so
   checkpoint snapshots can serialize it (a bare closure cannot be) *)
let set_skip t ids =
  let h = Hashtbl.create (max 16 (Array.length ids)) in
  Array.iter (fun i -> Hashtbl.replace h i ()) ids;
  t.skip_ids <- ids;
  t.skip <- (fun i -> Hashtbl.mem h i)

let set_flip_skip t ids =
  let h = Hashtbl.create (max 16 (Array.length ids)) in
  Array.iter (fun i -> Hashtbl.replace h i ()) ids;
  t.flip_skip_ids <- ids;
  t.flip_skip <- (fun i -> Hashtbl.mem h i)

let set_coords t cx cy =
  t.cx <- cx;
  t.cy <- cy;
  (* the invalidated cache becomes the storage donor for the next build *)
  (match t.netbox with Some nb -> t.netbox_retired <- Some nb | None -> ());
  t.netbox <- None

let netbox t =
  match t.netbox with
  | Some nb -> nb
  | None ->
    let nb = Netbox.build ~pool:t.pool ?reuse:t.netbox_retired t.pins ~cx:t.cx ~cy:t.cy in
    t.netbox_retired <- None;
    t.netbox <- Some nb;
    nb

let hpwl t =
  match t.netbox with
  | Some nb -> Netbox.total nb
  | None -> Hpwl.total t.pins ~cx:t.cx ~cy:t.cy
