module Rng = Dpp_util.Rng
module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Builder = Dpp_netlist.Builder
module Design = Dpp_netlist.Design
module Validate = Dpp_netlist.Validate
module Pins = Dpp_wirelen.Pins
module Hpwl = Dpp_wirelen.Hpwl
module Netbox = Dpp_wirelen.Netbox
module Model = Dpp_wirelen.Model
module Par_grad = Dpp_wirelen.Par_grad
module Pool = Dpp_par.Pool
module Grid = Dpp_density.Grid
module Bell = Dpp_density.Bell
module Rudy = Dpp_congest.Rudy
module Check = Dpp_check

type case = {
  seed : int;
  cells : int;
  nets : int;
  moves : int;
  dp_fraction : float;
  jobs : int;
  eco_ops : int;
}

type failure = { case : case; kind : string; stage : string; detail : string list }

let case_of_seed seed =
  let rng = Rng.create seed in
  {
    seed;
    cells = 120 + Rng.int rng 280;
    nets = 40 + Rng.int rng 120;
    moves = 160 + Rng.int rng 340;
    dp_fraction = float_of_int (Rng.int rng 8) /. 10.0;
    jobs = 1;
    eco_ops = 3 + Rng.int rng 6;
  }

let replay_command c =
  Printf.sprintf "dpp_fuzz --seed %d --cells %d --nets %d --moves %d --dp-fraction %g --eco-ops %d%s"
    c.seed c.cells c.nets c.moves c.dp_fraction c.eco_ops
    (if c.jobs = 1 then "" else Printf.sprintf " --jobs %d" c.jobs)

let pp_failure ppf f =
  Format.fprintf ppf "seed %d failed [%s] at %s:@\n" f.case.seed f.kind f.stage;
  List.iter (fun line -> Format.fprintf ppf "  %s@\n" line) f.detail;
  Format.fprintf ppf "replay: %s" (replay_command f.case)

(* ----- the adversarial micro-design generator -----

   Deliberately nastier than the benchmark generator: degenerate single-pin
   nets, unconnected pins, fixed blockers, coincident pin offsets — the
   corners the incremental cache's extreme-multiplicity bookkeeping and the
   Bookshelf round trip must survive. *)

let random_design ~seed ~cells ~nets =
  let cells = max 8 cells and nets = max 2 nets in
  let rng = Rng.create (seed lxor 0x5f3759df) in
  let widths = Array.init cells (fun _ -> float_of_int (2 + Rng.int rng 5)) in
  let rows = max 4 (int_of_float (sqrt (float_of_int cells)) + 1) in
  let row_height = 10.0 in
  let total_w = Array.fold_left ( +. ) 0.0 widths in
  (* ~50% utilization, and never narrower than the widest cell *)
  let die_w =
    max (Array.fold_left max 8.0 widths) (2.0 *. total_w /. float_of_int rows)
  in
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:die_w ~yh:(row_height *. float_of_int rows) in
  let b = Builder.create ~name:(Printf.sprintf "fz%d" seed) ~die ~row_height ~site_width:1.0 () in
  let pin_pool = ref [] in
  for k = 0 to cells - 1 do
    let w = widths.(k) in
    let kind = if Rng.bernoulli rng 0.1 then Types.Fixed else Types.Movable in
    let id =
      Builder.add_cell b ~name:(Printf.sprintf "c%d" k) ~master:"X" ~w ~h:row_height ~kind
    in
    let npins = 1 + Rng.int rng 3 in
    for _ = 1 to npins do
      (* coincident offsets (the die corner of the cell) are common on
         purpose: equal extremes exercise the multiplicity counters *)
      let dx = if Rng.bool rng then 0.0 else Rng.float rng w in
      let dy = if Rng.bool rng then 0.0 else Rng.float rng row_height in
      let dir = if Rng.bool rng then Types.Input else Types.Output in
      pin_pool := Builder.add_pin b ~cell:id ~dir ~dx ~dy () :: !pin_pool
    done;
    Builder.set_position b id
      ~x:(Rng.float rng (die_w -. w))
      ~y:(float_of_int (Rng.int rng rows) *. row_height)
  done;
  let pool = Array.of_list !pin_pool in
  Rng.shuffle rng pool;
  let cursor = ref 0 in
  let take () =
    if !cursor < Array.length pool then begin
      let p = pool.(!cursor) in
      incr cursor;
      Some p
    end
    else None
  in
  for _ = 1 to nets do
    (* ~10% degenerate single-pin nets; leftovers stay unconnected *)
    let deg = if Rng.bernoulli rng 0.1 then 1 else 2 + Rng.int rng 5 in
    let ps = List.filter_map (fun _ -> take ()) (List.init deg Fun.id) in
    if ps <> [] then ignore (Builder.add_net b ps)
  done;
  Builder.finish b

(* ----- differential move/flip/commit/rollback sequences ----- *)

let netbox_differential (c : case) d =
  let pins = Pins.build d in
  let cx, cy = Pins.centers_of_design d in
  let nb = Netbox.build pins ~cx ~cy in
  let rng = Rng.create ((c.seed * 31) + 7) in
  let die = d.Design.die in
  let movable = Design.movable_ids d in
  if Array.length movable = 0 then None
  else begin
    let fail = ref None in
    let ops = ref 0 in
    while !fail = None && !ops < c.moves do
      incr ops;
      let staged = 1 + Rng.int rng 3 in
      for _ = 1 to staged do
        let i = Rng.choose rng movable in
        if Rng.bernoulli rng 0.2 then Netbox.flip_cell nb i
        else
          Netbox.move_cell nb i
            (Rng.float_in rng die.Rect.xl die.Rect.xh)
            (Rng.float_in rng die.Rect.yl die.Rect.yh)
      done;
      let before = Netbox.total nb in
      let delta = Netbox.delta nb in
      if Rng.bool rng then begin
        Netbox.commit nb;
        let expected = before +. delta in
        if abs_float (Netbox.total nb -. expected) > 1e-6 *. (1.0 +. abs_float expected)
        then
          fail :=
            Some
              (Printf.sprintf "op %d: total after commit %.9g <> pre-commit total+delta %.9g"
                 !ops (Netbox.total nb) expected)
      end
      else Netbox.rollback nb;
      if !fail = None && (!ops mod 16 = 0 || !ops = c.moves) then begin
        let fresh = Hpwl.total pins ~cx ~cy in
        if abs_float (Netbox.total nb -. fresh) > 1e-6 *. (1.0 +. abs_float fresh) then
          fail :=
            Some
              (Printf.sprintf "op %d: netbox total %.9g <> fresh rescan total %.9g" !ops
                 (Netbox.total nb) fresh)
        else
          match Netbox.audit nb with
          | [] -> ()
          | (_, msg) :: _ -> fail := Some (Printf.sprintf "op %d: %s" !ops msg)
      end
    done;
    !fail
  end

let unit_checks (c : case) =
  let d = random_design ~seed:c.seed ~cells:(c.cells / 4) ~nets:c.nets in
  match Check.bookshelf_roundtrip d with
  | _ :: _ as vs -> Some ("bookshelf", "roundtrip", Check.Violation.strings vs)
  | [] -> (
    let gamma = max 1.0 (0.02 *. Rect.width d.Design.die) in
    let grad model = Check.gradient ~samples:4 ~seed:c.seed ~model ~gamma d in
    match grad Model.Lse @ grad Model.Wa with
    | _ :: _ as vs -> Some ("gradient", "finite-difference", Check.Violation.strings vs)
    | [] -> (
      match netbox_differential c d with
      | Some msg -> Some ("netbox", "differential", [ msg ])
      | None -> None))

let first_mismatch ~what a b =
  let bad = ref None in
  for i = Array.length a - 1 downto 0 do
    if not (Float.equal a.(i) b.(i)) then bad := Some i
  done;
  Option.map
    (fun i -> Printf.sprintf "%s[%d]: %.17g vs %.17g" what i a.(i) b.(i))
    !bad

(* ----- SoA-vs-record differential -----

   The flat core's two promises, checked on the adversarial micro-designs
   (single-pin nets, unconnected pins, fixed blockers, coincident pin
   offsets): [Soa.to_design (Soa.of_design d)] reproduces [d] field for
   field, and every SoA kernel is bit-identical ([Float.equal], no
   tolerance) to the preserved record-path implementation in
   [Dpp_refkernels.Record_path]. *)

let soa_checks (c : case) =
  let module Soa = Dpp_netlist.Soa in
  let module R = Dpp_refkernels.Record_path in
  let d = random_design ~seed:c.seed ~cells:(c.cells / 4) ~nets:c.nets in
  let fail = ref None in
  let record stage msg = if !fail = None then fail := Some (stage, [ msg ]) in
  let d' = Soa.to_design (Soa.of_design d) in
  if d' <> d then record "roundtrip" "to_design (of_design d) differs from d";
  if !fail = None then begin
    let pins = Pins.build d in
    let rp = R.Rpins.build d in
    let cx, cy = Pins.centers_of_design d in
    let nc = Design.num_cells d in
    let gamma = max 1.0 (0.02 *. Rect.width d.Design.die) in
    let h = Hpwl.total pins ~cx ~cy and hr = R.hpwl_total rp ~cx ~cy in
    if not (Float.equal h hr) then
      record "hpwl" (Printf.sprintf "soa %.17g vs record %.17g" h hr);
    List.iter
      (fun (name, soa_f, ref_f) ->
        let gx = Array.make nc 0.0 and gy = Array.make nc 0.0 in
        let gx' = Array.make nc 0.0 and gy' = Array.make nc 0.0 in
        let v = soa_f ~gx ~gy and v' = ref_f ~gx:gx' ~gy:gy' in
        if not (Float.equal v v') then
          record name (Printf.sprintf "value: soa %.17g vs record %.17g" v v');
        Option.iter (record name) (first_mismatch ~what:(name ^ " gx") gx gx');
        Option.iter (record name) (first_mismatch ~what:(name ^ " gy") gy gy'))
      [
        ( "wa",
          (fun ~gx ~gy -> Model.value_grad Model.Wa pins ~gamma ~cx ~cy ~gx ~gy),
          fun ~gx ~gy -> R.wa_value_grad rp ~gamma ~cx ~cy ~gx ~gy );
        ( "lse",
          (fun ~gx ~gy -> Model.value_grad Model.Lse pins ~gamma ~cx ~cy ~gx ~gy),
          fun ~gx ~gy -> R.lse_value_grad rp ~gamma ~cx ~cy ~gx ~gy );
      ];
    if !fail = None then begin
      let nx, ny = Grid.default_dims d in
      let grid = Grid.build d ~nx ~ny in
      let bell = Bell.create d ~grid ~target_density:0.9 in
      let rbell = R.Rbell.create d ~grid ~target_density:0.9 in
      let gx = Array.make nc 0.0 and gy = Array.make nc 0.0 in
      let gx' = Array.make nc 0.0 and gy' = Array.make nc 0.0 in
      let v = Bell.value_grad bell ~cx ~cy ~gx ~gy in
      let v' = R.Rbell.value_grad rbell ~cx ~cy ~gx:gx' ~gy:gy' in
      if not (Float.equal v v') then
        record "bell" (Printf.sprintf "penalty: soa %.17g vs record %.17g" v v');
      Option.iter (record "bell") (first_mismatch ~what:"gx" gx gx');
      Option.iter (record "bell") (first_mismatch ~what:"gy" gy gy');
      let rd = Rudy.compute ~pins ~nx ~ny d ~cx ~cy in
      let rr = R.rudy rp ~nx ~ny ~cx ~cy in
      Option.iter (record "rudy") (first_mismatch ~what:"demand" rd.Rudy.demand rr)
    end;
    if !fail = None then begin
      let nb = Netbox.build pins ~cx ~cy in
      for n = 0 to Design.num_nets d - 1 do
        if Array.length (Design.net d n).Types.n_pins >= 2 then begin
          let a0, a1, a2, a3 = Netbox.net_box nb n in
          let b0, b1, b2, b3 = R.net_box rp ~cx ~cy n in
          if
            not
              (Float.equal a0 b0 && Float.equal a1 b1 && Float.equal a2 b2
             && Float.equal a3 b3)
          then record "netbox" (Printf.sprintf "net %d box differs from record rescan" n)
        end
      done
    end
  end;
  Option.map (fun (stage, detail) -> "soa", stage, detail) !fail

(* ----- parallel-vs-serial differentials (jobs > 1) -----

   The wirelength and netbox kernels promise bit-identity with the serial
   code; the chunk-merged bell/RUDY kernels promise bit-stability across
   worker counts (jobs-N vs jobs-1 over the same pooled kernel).  Both
   promises are checked here with [Float.equal] — no tolerance. *)

let par_checks (c : case) =
  if c.jobs <= 1 then None
  else begin
    let d = random_design ~seed:c.seed ~cells:(c.cells / 4) ~nets:c.nets in
    let pins = Pins.build d in
    let cx, cy = Pins.centers_of_design d in
    let nc = Design.num_cells d in
    let gamma = max 1.0 (0.02 *. Rect.width d.Design.die) in
    Pool.with_pool ~nworkers:c.jobs @@ fun pool ->
    Pool.with_pool ~nworkers:1 @@ fun pool1 ->
    let fail = ref None in
    let record stage msg = if !fail = None then fail := Some (stage, [ msg ]) in
    (* wirelength: pooled kernel must equal the serial kernel exactly *)
    List.iter
      (fun kind ->
        let name = Model.kind_to_string kind in
        let gx = Array.make nc 0.0 and gy = Array.make nc 0.0 in
        let v = Model.value_grad kind pins ~gamma ~cx ~cy ~gx ~gy in
        let pg = Par_grad.create pool pins in
        let gx' = Array.make nc 0.0 and gy' = Array.make nc 0.0 in
        let v' = Par_grad.value_grad pg pool kind ~gamma ~cx ~cy ~gx:gx' ~gy:gy' in
        if not (Float.equal v v') then
          record "gradient"
            (Printf.sprintf "%s value: serial %.17g vs %d-worker %.17g" name v c.jobs v');
        Option.iter (record "gradient")
          (first_mismatch ~what:(name ^ " gx") gx gx');
        Option.iter (record "gradient")
          (first_mismatch ~what:(name ^ " gy") gy gy'))
      [ Model.Lse; Model.Wa ];
    (* density: the pooled kernel must not depend on the worker count *)
    if !fail = None then begin
      let nx, ny = Grid.default_dims d in
      let grid = Grid.build d ~nx ~ny in
      let bell = Bell.create d ~grid ~target_density:0.9 in
      let run p =
        let bp = Bell.par_create bell in
        let gx = Array.make nc 0.0 and gy = Array.make nc 0.0 in
        let v = Bell.par_value_grad bp p ~cx ~cy ~gx ~gy in
        v, gx, gy
      in
      let v, gx, gy = run pool1 in
      let v', gx', gy' = run pool in
      if not (Float.equal v v') then
        record "bell"
          (Printf.sprintf "penalty: 1-worker %.17g vs %d-worker %.17g" v c.jobs v');
      Option.iter (record "bell") (first_mismatch ~what:"gx" gx gx');
      Option.iter (record "bell") (first_mismatch ~what:"gy" gy gy')
    end;
    (* RUDY: same worker-count independence over the pooled scatter *)
    if !fail = None then begin
      let r1 = Rudy.compute ~pool:pool1 d ~cx ~cy in
      let rn = Rudy.compute ~pool d ~cx ~cy in
      Option.iter (record "rudy")
        (first_mismatch ~what:"demand" r1.Rudy.demand rn.Rudy.demand)
    end;
    (* netbox: pooled build/audit must equal the serial ones exactly *)
    if !fail = None then begin
      let nb = Netbox.build pins ~cx ~cy in
      let nbp = Netbox.build ~pool pins ~cx ~cy in
      if not (Float.equal (Netbox.total nb) (Netbox.total nbp)) then
        record "netbox"
          (Printf.sprintf "total: serial %.17g vs %d-worker %.17g" (Netbox.total nb)
             c.jobs (Netbox.total nbp));
      for n = 0 to Design.num_nets d - 1 do
        if Array.length (Design.net d n).Types.n_pins >= 2 then begin
          let a0, a1, a2, a3 = Netbox.net_box nb n in
          let b0, b1, b2, b3 = Netbox.net_box nbp n in
          if
            not
              (Float.equal a0 b0 && Float.equal a1 b1 && Float.equal a2 b2
             && Float.equal a3 b3)
          then record "netbox" (Printf.sprintf "net %d box differs under pooled build" n)
        end
      done;
      match Netbox.audit ~pool nbp with
      | [] -> ()
      | (_, msg) :: _ -> record "netbox" (Printf.sprintf "pooled audit: %s" msg)
    end;
    Option.map (fun (stage, detail) -> "par", stage, detail) !fail
  end

(* ----- back-end stage determinism (jobs > 1) -----

   Legal, Detail and Flip run evaluate-parallel/commit-serial on the
   pool; their promise is that assignment, coordinates and orientations
   do not depend on the worker count.  Each run rebuilds the design from
   the seed (Flip mutates orientations and the shared pin view's
   offsets, so runs must not share state). *)

let backend_checks (c : case) =
  if c.jobs <= 1 then None
  else begin
    let run_backend jobs =
      let d = random_design ~seed:c.seed ~cells:(c.cells / 4) ~nets:c.nets in
      let cx, cy = Pins.centers_of_design d in
      Pool.with_pool ~nworkers:jobs @@ fun pool ->
      let legal = Dpp_place.Legal.run d ~pool ~cx ~cy () in
      let nb =
        Netbox.build (Pins.build d) ~cx:legal.Dpp_place.Legal.cx
          ~cy:legal.Dpp_place.Legal.cy
      in
      let h = Dpp_netlist.Hypergraph.build d in
      ignore (Dpp_place.Detail.run d ~pool ~max_passes:2 ~netbox:nb ~hypergraph:h ~legal ());
      ignore
        (Dpp_place.Flip.run d ~pool ~netbox:nb ~cx:legal.Dpp_place.Legal.cx
           ~cy:legal.Dpp_place.Legal.cy ());
      ( legal.Dpp_place.Legal.assignment,
        legal.Dpp_place.Legal.cx,
        legal.Dpp_place.Legal.cy,
        Array.copy d.Design.orient )
    in
    let a1, x1, y1, o1 = run_backend 1 in
    let an, xn, yn, on_ = run_backend c.jobs in
    let fail = ref None in
    let record msg = if !fail = None then fail := Some msg in
    if a1 <> an then record "row assignment depends on the worker count";
    Option.iter record (first_mismatch ~what:"cx" x1 xn);
    Option.iter record (first_mismatch ~what:"cy" y1 yn);
    if o1 <> on_ then record "orientations depend on the worker count";
    Option.map (fun msg -> "backend", [ msg ]) !fail
  end

let flow_config (c : case) =
  {
    Config.structure_aware with
    Config.gp_rounds = 6;
    gp_inner_iters = 20;
    detail_passes = 2;
    seed = c.seed;
    jobs = c.jobs;
  }

let flow_checks (c : case) =
  let spec =
    Dpp_gen.Presets.scaled
      ~name:(Printf.sprintf "fuzz%d" c.seed)
      ~seed:c.seed ~cells:(max 100 c.cells) ~dp_fraction:c.dp_fraction
  in
  let d = Dpp_gen.Compose.build spec in
  try
    ignore (Flow.run_both ~check:true d (flow_config c));
    (* whole-flow determinism differential: the headline guarantee is that
       the trajectory does not depend on the worker count, so the final
       coordinates at jobs-N must equal those at jobs-1 bit for bit *)
    if c.jobs <= 1 then None
    else begin
      let cfg = flow_config c in
      let r1 = Flow.run d { cfg with Config.jobs = 1 } in
      let rn = Flow.run d { cfg with Config.jobs = c.jobs } in
      let diff axis a b =
        Option.map
          (fun m -> Printf.sprintf "final %s coordinates diverge: %s" axis m)
          (first_mismatch ~what:axis a b)
      in
      (* the per-stage HPWL trace pins down which stage diverged first;
         now that Legal/Detail/Flip are pooled it covers them too *)
      let trace r =
        List.map (fun (s : Dpp_report.Trace.stage) -> s.Dpp_report.Trace.hpwl_after)
          r.Flow.stage_trace
        |> Array.of_list
      in
      let names r =
        List.map (fun (s : Dpp_report.Trace.stage) -> s.Dpp_report.Trace.name)
          r.Flow.stage_trace
      in
      let trace_diff =
        if names r1 <> names rn then Some "stage lists diverge across worker counts"
        else
          Option.map
            (fun m -> Printf.sprintf "per-stage HPWL trace diverges: %s" m)
            (first_mismatch ~what:"hpwl_after" (trace r1) (trace rn))
      in
      match
        ( diff "x" r1.Flow.design.Design.x rn.Flow.design.Design.x,
          diff "y" r1.Flow.design.Design.y rn.Flow.design.Design.y,
          trace_diff )
      with
      | None, None, None -> None
      | Some m, _, _ | _, Some m, _ | _, _, Some m -> Some ("par-determinism", [ m ])
    end
  with
  | Flow.Check_failed { stage; violations } -> Some (stage, violations)
  | Flow.Invalid_design issues ->
    Some
      ( "validate",
        List.map (fun i -> Format.asprintf "%a" Validate.pp_issue i) issues )

(* ----- multilevel-vs-flat differential -----

   The multilevel V-cycle promises the same flow contract as flat global
   placement: every invariant oracle stays clean at every stage boundary
   (including the cluster-integrity oracle at the gp boundary — no
   datapath group split across clusters, areas conserved), and the final
   quality stays within a bounded factor of the flat result.  Both runs
   go through check mode, so a dirty level fails here before the quality
   comparison is even reached.  The thresholds force the V-cycle on at
   fuzz-case sizes, where it would normally not engage. *)

let ml_hpwl_factor = 1.6

let ml_checks (c : case) =
  let spec =
    Dpp_gen.Presets.scaled
      ~name:(Printf.sprintf "fuzzml%d" c.seed)
      ~seed:c.seed ~cells:(max 100 c.cells) ~dp_fraction:c.dp_fraction
  in
  let d = Dpp_gen.Compose.build spec in
  let cfg ml =
    {
      (flow_config c) with
      Config.multilevel = ml;
      ml_threshold = 0;
      ml_min_cells = 40;
      ml_max_levels = 2;
    }
  in
  try
    let ml = Flow.run ~check:true d (cfg Config.Ml_on) in
    let flat = Flow.run ~check:true d (cfg Config.Ml_off) in
    let ratio = ml.Flow.hpwl_final /. flat.Flow.hpwl_final in
    if Float.is_finite ratio && ratio <= ml_hpwl_factor then None
    else
      Some
        ( "multilevel-vs-flat",
          [
            Printf.sprintf "multilevel HPWL %.0f vs flat %.0f: ratio %.3f above bound %.2f"
              ml.Flow.hpwl_final flat.Flow.hpwl_final ratio ml_hpwl_factor;
          ] )
  with
  | Flow.Check_failed { stage; violations } ->
    Some (Printf.sprintf "multilevel-%s" stage, violations)
  | Flow.Invalid_design issues ->
    Some
      ( "multilevel-validate",
        List.map (fun i -> Format.asprintf "%a" Validate.pp_issue i) issues )

(* ----- routability differential -----

   Two promises fuzzed with routability steering on: the virtual-area
   inflation is a pure density-model overlay (setting factors and
   resetting restores the potential bit for bit), and a
   congestion-steered flow still satisfies every stage oracle — legality,
   group rigidity, the congestion/rt-ledger audits — while staying within
   a bounded HPWL factor of the congestion-blind flow on the same
   design. *)

let rt_hpwl_factor = 1.5

let rt_checks (c : case) =
  (* inflation round trip on the adversarial micro-designs *)
  let d = random_design ~seed:c.seed ~cells:(c.cells / 4) ~nets:c.nets in
  let cx, cy = Pins.centers_of_design d in
  let nx, ny = Grid.default_dims d in
  let grid = Grid.build d ~nx ~ny in
  let bell = Bell.create d ~grid ~target_density:0.9 in
  let v0 = Bell.value bell ~cx ~cy in
  let rng = Rng.create ((c.seed * 17) + 3) in
  let factors =
    Array.init (Design.num_cells d) (fun _ -> 1.0 +. Rng.float rng 1.0)
  in
  Bell.set_inflation bell factors;
  Bell.reset_inflation bell;
  let v1 = Bell.value bell ~cx ~cy in
  Bell.set_inflation bell (Array.make (Design.num_cells d) 1.0);
  let v2 = Bell.value bell ~cx ~cy in
  if not (Float.equal v0 v1) then
    Some
      ( "inflation-roundtrip",
        [ Printf.sprintf "reset_inflation: %.17g vs pristine %.17g" v1 v0 ] )
  else if not (Float.equal v0 v2) then
    Some
      ( "inflation-roundtrip",
        [ Printf.sprintf "all-ones inflation: %.17g vs pristine %.17g" v2 v0 ] )
  else begin
    (* steered-vs-blind flow differential under full check mode *)
    let spec =
      Dpp_gen.Presets.scaled
        ~name:(Printf.sprintf "fuzzrt%d" c.seed)
        ~seed:c.seed ~cells:(max 100 c.cells) ~dp_fraction:c.dp_fraction
    in
    let d = Dpp_gen.Compose.build spec in
    let cfg = flow_config c in
    try
      let on =
        Flow.run ~check:true d { cfg with Config.routability = true; rt_interval = 2 }
      in
      let off = Flow.run d cfg in
      let ratio = on.Flow.hpwl_final /. off.Flow.hpwl_final in
      if Float.is_finite ratio && ratio <= rt_hpwl_factor then None
      else
        Some
          ( "routability-vs-blind",
            [
              Printf.sprintf "steered HPWL %.0f vs blind %.0f: ratio %.3f above bound %.2f"
                on.Flow.hpwl_final off.Flow.hpwl_final ratio rt_hpwl_factor;
            ] )
    with
    | Flow.Check_failed { stage; violations } ->
      Some (Printf.sprintf "routability-%s" stage, violations)
    | Flow.Invalid_design issues ->
      Some
        ( "routability-validate",
          List.map (fun i -> Format.asprintf "%a" Validate.pp_issue i) issues )
  end

(* ----- incremental-ECO differential -----

   The ECO contract fuzzed here: for a seeded edit list against a placed
   base, the incremental path must (a) keep every frozen cell bit-identical
   to the base placement and (b) pass the full legality oracles from the
   legalize boundary on (Eco.run's check mode).  A fallback run trivially
   satisfies both, so fallbacks are not failures.  On failure the edit
   list itself is minimized: greedily drop edits while the failure still
   reproduces — the seeded generator only ever references base cell ids,
   so every sublist is a valid edit list. *)

let eco_edit_failure ~base ~cfg es =
  if es = [] then None
  else
    match Eco.run ~check:true ~base es cfg with
    | (r : Eco.result) ->
      if r.Eco.fallback then None
      else begin
        let rd = r.Eco.flow.Flow.design in
        let bad = ref None in
        Array.iter
          (fun i ->
            if
              !bad = None
              && not
                   (Float.equal rd.Design.x.(i) base.Design.x.(i)
                   && Float.equal rd.Design.y.(i) base.Design.y.(i)
                   && rd.Design.orient.(i) = base.Design.orient.(i))
            then bad := Some i)
          r.Eco.plan.Eco.frozen;
        Option.map
          (fun i ->
            ( "clean-region",
              [
                Printf.sprintf "frozen cell %d moved: base (%.17g, %.17g) -> eco (%.17g, %.17g)"
                  i base.Design.x.(i) base.Design.y.(i) rd.Design.x.(i) rd.Design.y.(i);
              ] ))
          !bad
      end
    | exception Flow.Check_failed { stage; violations } -> Some (stage, violations)
    | exception Invalid_argument m -> Some ("apply", [ m ])

(* Greedy one-at-a-time delta debugging over the edit list, to fixpoint. *)
let minimize_edits failing edits =
  let rec drop es =
    let n = List.length es in
    if n <= 1 then es
    else begin
      let rec try_k k =
        if k >= n then es
        else begin
          let es' = List.filteri (fun i _ -> i <> k) es in
          match failing es' with Some _ -> drop es' | None -> try_k (k + 1)
        end
      in
      try_k 0
    end
  in
  drop edits

let eco_checks (c : case) =
  let spec =
    Dpp_gen.Presets.scaled
      ~name:(Printf.sprintf "fuzzeco%d" c.seed)
      ~seed:c.seed ~cells:(max 100 c.cells) ~dp_fraction:c.dp_fraction
  in
  let d = Dpp_gen.Compose.build spec in
  let cfg = { (flow_config c) with Config.mode = Config.Baseline } in
  let base = (Flow.run d cfg).Flow.design in
  let failing = eco_edit_failure ~base ~cfg in
  match Eco.random_edits ~ops:c.eco_ops ~seed:c.seed base with
  | exception Invalid_argument m -> Some ("edit-gen", [ m ])
  | edits -> (
    match failing edits with
    | None -> None
    | Some _ ->
      let minimal = minimize_edits failing edits in
      let stage, detail =
        match failing minimal with Some f -> f | None -> Option.get (failing edits)
      in
      Some
        ( stage,
          detail
          @ [
              Printf.sprintf "minimal edit list (%d of %d edits): %s" (List.length minimal)
                (List.length edits)
                (Dpp_report.Json.encode (Eco.edits_to_json minimal));
            ] ))

let run_case ?(flow = true) (c : case) =
  match unit_checks c with
  | Some (kind, stage, detail) -> Some { case = c; kind; stage; detail }
  | None -> (
    match soa_checks c with
    | Some (kind, stage, detail) -> Some { case = c; kind; stage; detail }
    | None -> (
    match par_checks c with
    | Some (kind, stage, detail) -> Some { case = c; kind; stage; detail }
    | None -> (
      match backend_checks c with
      | Some (stage, detail) -> Some { case = c; kind = "par"; stage; detail }
      | None ->
        if not flow then None
        else (
          match flow_checks c with
          | Some (stage, detail) -> Some { case = c; kind = "flow"; stage; detail }
          | None -> (
            match ml_checks c with
            | Some (stage, detail) -> Some { case = c; kind = "multilevel"; stage; detail }
            | None -> (
              match rt_checks c with
              | Some (stage, detail) ->
                Some { case = c; kind = "routability"; stage; detail }
              | None -> (
                match eco_checks c with
                | Some (stage, detail) -> Some { case = c; kind = "eco"; stage; detail }
                | None -> None)))))))

let shrink rerun failure =
  let rec go (f : failure) =
    let c = f.case in
    let candidates =
      [
        (* Presets.scaled refuses designs under 100 cells *)
        { c with cells = max 100 (c.cells / 2) };
        { c with nets = max 1 (c.nets / 2) };
        { c with moves = max 1 (c.moves / 2) };
        { c with jobs = (if c.jobs > 2 then c.jobs / 2 else 1) };
        { c with eco_ops = max 1 (c.eco_ops / 2) };
      ]
      |> List.filter (fun c' -> c' <> c)
    in
    match List.find_map rerun candidates with Some f' -> go f' | None -> f
  in
  go failure
