module Design = Dpp_netlist.Design
module Validate = Dpp_netlist.Validate
module Groups = Dpp_netlist.Groups
module Pins = Dpp_wirelen.Pins
module Hpwl = Dpp_wirelen.Hpwl
module Rsmt = Dpp_steiner.Rsmt
module Slicer = Dpp_extract.Slicer
module Exmetrics = Dpp_extract.Exmetrics
module Dgroup = Dpp_structure.Dgroup
module Alignment = Dpp_structure.Alignment
module Shaping = Dpp_structure.Shaping
module Qp = Dpp_place.Qp
module Gp = Dpp_place.Gp
module Legal = Dpp_place.Legal
module Abacus = Dpp_place.Abacus
module Detail = Dpp_place.Detail
module Trace = Dpp_report.Trace
module Json = Dpp_report.Json

exception Invalid_design of Validate.issue list

exception Check_failed of { stage : string; violations : string list }

type result = {
  design : Design.t;
  config : Config.t;
  hpwl_init : float;
  hpwl_gp : float;
  hpwl_legal : float;
  hpwl_final : float;
  steiner_final : float;
  congestion : Dpp_congest.Rudy.stats;
  critical_delay : float;
  overflow_gp : float;
  align_error_final : float;
  groups_used : Groups.t list;
  extraction : (Slicer.result * Exmetrics.t) option;
  trace : Gp.round_info list;
  rt_trace : Gp.rt_round list;
  stage_trace : Trace.stage list;
  times : (string * float) list;
  total_time : float;
}

type stage = { name : string; run : Ctx.t -> Ctx.t }

let src = Logs.Src.create "dpp.flow" ~doc:"placement flow"

module Log = (val Logs.src_log src : Logs.LOG)

let copy_design (d : Design.t) =
  { d with Design.x = Array.copy d.Design.x; y = Array.copy d.Design.y;
           orient = Array.copy d.Design.orient }

(* groups small enough to snap become rigid macros (primary mode);
   oversized ones and every group in the soft-ablation mode take the
   alignment-penalty path instead *)
let snap_fraction = 0.25

(* ----- stages ----- *)

let extract_stage =
  {
    name = "extract";
    run =
      (fun (ctx : Ctx.t) ->
        let d = ctx.Ctx.design and cfg = ctx.Ctx.config in
        (match cfg.Config.group_source with
        | Config.Ground_truth -> ctx.Ctx.groups_used <- d.Design.groups
        | Config.Extracted ->
          let r = Slicer.run d cfg.Config.extract in
          let metrics =
            Exmetrics.compare_to_truth ~truth:d.Design.groups ~found:r.Slicer.groups
          in
          Log.info (fun m ->
              m "extraction: %d groups, precision %.3f recall %.3f"
                (List.length r.Slicer.groups) metrics.Exmetrics.precision
                metrics.Exmetrics.recall);
          ctx.Ctx.extraction <- Some (r, metrics);
          ctx.Ctx.groups_used <- r.Slicer.groups);
        ctx);
  }

let init_stage =
  {
    name = "init";
    run =
      (fun (ctx : Ctx.t) ->
        let d = ctx.Ctx.design and cfg = ctx.Ctx.config in
        let qp = Qp.run ~seed:cfg.Config.seed d in
        Ctx.set_coords ctx qp.Qp.cx qp.Qp.cy;
        (* idealized arrays are oriented by the connectivity-driven initial
           placement, so alignment works with the net forces, not against
           them *)
        (* regularity evaluation: structures dominated by boundary coupling
           lose wirelength when constrained, so they are dropped here *)
        let groups_kept =
          List.filter
            (fun g ->
              Dgroup.internal_coupling d g >= cfg.Config.min_coupling
              && Dgroup.slice_span d g <= cfg.Config.max_slice_span)
            ctx.Ctx.groups_used
        in
        ctx.Ctx.dgroups <-
          (if groups_kept = [] then []
           else Dgroup.build_all_ordered d groups_kept ~cx:ctx.Ctx.cx ~cy:ctx.Ctx.cy);
        let die_area = Dpp_geom.Rect.area d.Design.die in
        let rigid, soft =
          match cfg.Config.mode, cfg.Config.structure with
          | Config.Baseline, _ -> [], []
          | Config.Structure_aware, Config.Soft_alignment -> [], ctx.Ctx.dgroups
          | Config.Structure_aware, Config.Rigid_macros ->
            List.partition
              (fun dg ->
                dg.Dgroup.width *. dg.Dgroup.height <= snap_fraction *. die_area)
              ctx.Ctx.dgroups
        in
        ctx.Ctx.rigid_dgs <- rigid;
        ctx.Ctx.soft_dgs <- soft;
        (* movable multi-row macros ride the rigid machinery in both modes *)
        ctx.Ctx.macro_dgs <- List.map (Dgroup.of_movable_macro d) (Dgroup.movable_macros d);
        ctx.Ctx.hpwl_init <- Ctx.hpwl ctx;
        ctx);
  }

let gp_stage =
  {
    name = "gp";
    run =
      (fun (ctx : Ctx.t) ->
        let d = ctx.Ctx.design and cfg = ctx.Ctx.config in
        let gp_cfg =
          {
            Gp.default_config with
            Gp.model = cfg.Config.model;
            target_density = cfg.Config.target_density;
            rounds = cfg.Config.gp_rounds;
            inner_iters = cfg.Config.gp_inner_iters;
            overflow_target = cfg.Config.overflow_target;
            beta =
              (match cfg.Config.mode with
              | Config.Baseline -> 0.0
              | Config.Structure_aware -> cfg.Config.beta);
            groups = ctx.Ctx.soft_dgs;
            rigid_groups = ctx.Ctx.rigid_dgs @ ctx.Ctx.macro_dgs;
            pool = Some ctx.Ctx.pool;
            routability = cfg.Config.routability;
            rt_interval = cfg.Config.rt_interval;
            rt_overflow = cfg.Config.rt_overflow;
            rt_max_inflate = cfg.Config.rt_max_inflate;
          }
        in
        let movables = Array.length (Design.movable_ids d) in
        let levels =
          if Config.multilevel_enabled cfg ~movables then
            (* bit-slices and movable macros seed the first-level
               clusters, so no group is ever split across clusters *)
            Dpp_coarsen.build ~arena:ctx.Ctx.arena
              ~groups:(ctx.Ctx.dgroups @ ctx.Ctx.macro_dgs)
              ~min_cells:cfg.Config.ml_min_cells ~max_levels:cfg.Config.ml_max_levels
              ~seed:cfg.Config.seed d
          else []
        in
        ctx.Ctx.ml_levels <- levels;
        let mlr =
          Gp.run_multilevel ~arena:ctx.Ctx.arena ~soa:ctx.Ctx.soa ~pins:ctx.Ctx.pins d
            gp_cfg ~levels ~cx:ctx.Ctx.cx ~cy:ctx.Ctx.cy
        in
        ctx.Ctx.gp <- Some mlr.Gp.result;
        ctx.Ctx.gp_levels <- mlr.Gp.level_trace;
        Ctx.set_coords ctx mlr.Gp.result.Gp.cx mlr.Gp.result.Gp.cy;
        ctx);
  }

let snap_stage =
  {
    name = "snap";
    run =
      (fun (ctx : Ctx.t) ->
        let d = ctx.Ctx.design and cfg = ctx.Ctx.config in
        let cx = ctx.Ctx.cx and cy = ctx.Ctx.cy in
        (* movable multi-row macros must become row-aligned obstacles in
           every mode: the row legalizer cannot handle them *)
        let placed_macros = Shaping.snap ~max_die_fraction:1.0 d ctx.Ctx.macro_dgs ~cx ~cy in
        let placed_groups =
          match cfg.Config.mode with
          | Config.Baseline -> []
          | Config.Structure_aware ->
            (* soft groups that fit also snap (they were pulled toward
               arrays by the penalty); Shaping drops oversized ones *)
            Shaping.snap ~max_die_fraction:snap_fraction
              ~extra_obstacles:(Shaping.obstacles placed_macros) d ctx.Ctx.dgroups ~cx ~cy
        in
        let placed = placed_macros @ placed_groups in
        List.iter (fun p -> Shaping.apply p ~cx ~cy) placed;
        let members = Hashtbl.create 1024 in
        List.iter
          (fun p ->
            Array.iter (fun c -> Hashtbl.replace members c ()) p.Shaping.dgroup.Dgroup.cells)
          placed;
        ctx.Ctx.obstacles <- Shaping.obstacles placed;
        let ids = Hashtbl.fold (fun c () acc -> c :: acc) members [] in
        Ctx.set_skip ctx (Array.of_list (List.sort compare ids));
        ctx);
  }

let legal_stage =
  {
    name = "legal";
    run =
      (fun (ctx : Ctx.t) ->
        let d = ctx.Ctx.design in
        let l =
          Legal.run d ~pool:ctx.Ctx.pool ~arena:ctx.Ctx.arena ~soa:ctx.Ctx.soa
            ~extra_obstacles:ctx.Ctx.obstacles ~skip:ctx.Ctx.skip ?bound:ctx.Ctx.bound
            ~cx:ctx.Ctx.cx ~cy:ctx.Ctx.cy ()
        in
        Abacus.run d ~extra_obstacles:ctx.Ctx.obstacles ~skip:ctx.Ctx.skip
          ~target_cx:ctx.Ctx.cx ~legal:l ();
        if l.Legal.failed <> [] then
          Log.err (fun m -> m "%d cells could not be legalized" (List.length l.Legal.failed));
        ctx.Ctx.legal <- Some l;
        Ctx.set_coords ctx l.Legal.cx l.Legal.cy;
        ctx.Ctx.hpwl_legal <- Ctx.hpwl ctx;
        ctx);
  }

let detail_stage =
  {
    name = "detail";
    run =
      (fun (ctx : Ctx.t) ->
        let legal = Option.get ctx.Ctx.legal in
        let stats =
          Detail.run ctx.Ctx.design ~pool:ctx.Ctx.pool ~soa:ctx.Ctx.soa
            ~max_passes:ctx.Ctx.config.Config.detail_passes
            ~skip:ctx.Ctx.skip ?bound:ctx.Ctx.bound ~netbox:(Ctx.netbox ctx)
            ~hypergraph:(Lazy.force ctx.Ctx.hypergraph) ~legal ()
        in
        ctx.Ctx.detail_stats <- Some stats;
        ctx);
  }

let flip_stage =
  {
    name = "flip";
    run =
      (fun (ctx : Ctx.t) ->
        (* orientation optimization: free HPWL, cannot affect legality.
           Accepted flips mirror the shared pin view's offsets in place
           through the netbox, so the pin view built at context creation
           stays valid — no rebuild. *)
        let stats =
          Dpp_place.Flip.run ctx.Ctx.design ~pool:ctx.Ctx.pool ~soa:ctx.Ctx.soa
            ~skip:ctx.Ctx.flip_skip ~netbox:(Ctx.netbox ctx) ~cx:ctx.Ctx.cx
            ~cy:ctx.Ctx.cy ()
        in
        ctx.Ctx.flip_stats <- Some stats;
        ctx);
  }

let metrics_stage =
  {
    name = "metrics";
    run =
      (fun (ctx : Ctx.t) ->
        let d = ctx.Ctx.design in
        let cx = ctx.Ctx.cx and cy = ctx.Ctx.cy in
        ctx.Ctx.steiner_final <- Rsmt.total ctx.Ctx.pins ~cx ~cy;
        let rudy = Dpp_congest.Rudy.compute ~pool:ctx.Ctx.pool ~pins:ctx.Ctx.pins d ~cx ~cy in
        ctx.Ctx.congestion <- Some (Dpp_congest.Rudy.stats rudy);
        let sta = Dpp_timing.Sta.build d in
        let timing = Dpp_timing.Sta.analyze sta ~cx ~cy in
        ctx.Ctx.critical_delay <- timing.Dpp_timing.Sta.critical_delay;
        ctx);
  }

let stages (cfg : Config.t) =
  (match cfg.Config.mode with
  | Config.Baseline -> []
  | Config.Structure_aware -> [ extract_stage ])
  @ [ init_stage; gp_stage; snap_stage; legal_stage; detail_stage; flip_stage; metrics_stage ]

let eco_stages = [ legal_stage; detail_stage; flip_stage; metrics_stage ]

let resume_stages ~stages:stage_list ~after =
  let rec drop = function
    | [] -> []
    | s :: rest -> if s.name = after then rest else drop rest
  in
  if List.exists (fun s -> s.name = after) stage_list then drop stage_list
  else invalid_arg (Printf.sprintf "resume_stages: no stage named %S" after)

(* ----- driver ----- *)

let run_stages ?prepare ?observer ?(check = false) ~stages:stage_list (input : Design.t)
    (cfg : Config.t) =
  let issues = Validate.check input in
  if not (Validate.is_clean issues) then raise (Invalid_design (Validate.errors issues));
  List.iter
    (fun i ->
      match i.Validate.severity with
      | Validate.Warning -> Log.warn (fun m -> m "%a" Validate.pp_issue i)
      | Validate.Error -> ())
    issues;
  let t_start = Unix.gettimeofday () in
  let ctx = Ctx.create (copy_design input) cfg in
  (match prepare with Some f -> f ctx | None -> ());
  (* the worker pool must not outlive the flow, even on Check_failed *)
  Fun.protect ~finally:(fun () -> Dpp_par.Pool.shutdown ctx.Ctx.pool) @@ fun () ->
  let reports = ref [] in
  let hpwl_before = ref (Ctx.hpwl ctx) in
  List.iter
    (fun stage ->
      let g0 = Gc.quick_stat () in
      let t0 = Unix.gettimeofday () in
      let _ = stage.run ctx in
      let wall = Unix.gettimeofday () -. t0 in
      let g1 = Gc.quick_stat () in
      let hpwl_after = Ctx.hpwl ctx in
      let overflow =
        if stage.name = "gp" then Option.map (fun g -> g.Gp.final_overflow) ctx.Ctx.gp
        else None
      in
      let verdict = if check then Some (Checkpoint.run ~stage:stage.name ctx) else None in
      let levels =
        if stage.name <> "gp" then []
        else
          List.map
            (fun (l : Gp.level_info) ->
              {
                Trace.index = l.Gp.level;
                movables = l.Gp.movables;
                hpwl = l.Gp.hpwl;
                overflow = l.Gp.overflow;
                wall_s = l.Gp.wall_s;
              })
            ctx.Ctx.gp_levels
      in
      (* schema-tolerant extras: congestion/steiner headline numbers ride
         the stage records without widening the core schema.  Every stage
         additionally carries its Gc.quick_stat delta — the allocation
         ledger behind the scratch-arena work (a stage that recycles its
         buffers shows near-zero major Mwords here). *)
      let gc_extra =
        [
          ( "gc_minor_mwords",
            Json.Num ((g1.Gc.minor_words -. g0.Gc.minor_words) /. 1e6) );
          ( "gc_major_mwords",
            Json.Num ((g1.Gc.major_words -. g0.Gc.major_words) /. 1e6) );
          ( "gc_majors",
            Json.Num (float_of_int (g1.Gc.major_collections - g0.Gc.major_collections)) );
        ]
      in
      let extra =
        match stage.name with
        | "gp" -> (
          match ctx.Ctx.gp with
          | Some g when g.Gp.rt_trace <> [] ->
            let last = List.nth g.Gp.rt_trace (List.length g.Gp.rt_trace - 1) in
            [
              "rt_rounds", Json.Num (float_of_int (List.length g.Gp.rt_trace));
              "rt_best_ace", Json.Num last.Gp.rt_best;
            ]
          | _ -> [])
        | "metrics" -> (
          match ctx.Ctx.congestion with
          | Some s ->
            [
              "steiner", Json.Num ctx.Ctx.steiner_final;
              "rudy_max", Json.Num s.Dpp_congest.Rudy.max_ratio;
              "rudy_ace", Json.Num s.Dpp_congest.Rudy.ace_ratio;
            ]
          | None -> [])
        | _ -> []
      in
      let extra = extra @ gc_extra in
      let rep =
        {
          Trace.name = stage.name;
          wall_s = wall;
          t_s = Unix.gettimeofday () -. t_start;
          hpwl_before = !hpwl_before;
          hpwl_after;
          overflow;
          (* memory ledger samples: both are high-water marks, so the
             stage whose record first shows a jump is the one that
             spiked the footprint *)
          vm_hwm_kb = Dpp_util.Meminfo.vm_hwm_kb ();
          heap_kb = Dpp_util.Meminfo.top_heap_kb ();
          levels;
          check = verdict;
          extra;
        }
      in
      reports := rep :: !reports;
      (match observer with Some f -> f rep | None -> ());
      (* attribute the first violation to the stage that introduced it:
         every earlier boundary was checked clean *)
      (match verdict with
      | Some { Trace.ok = false; violations; _ } ->
        raise (Check_failed { stage = stage.name; violations })
      | _ -> ());
      hpwl_before := hpwl_after)
    stage_list;
  let stage_trace = List.rev !reports in
  let d = ctx.Ctx.design in
  let fx = ctx.Ctx.cx and fy = ctx.Ctx.cy in
  (* report the exact recomputed metric, not the incrementally accumulated
     one (they agree to float-accumulation order; tables want the former) *)
  let hpwl_final = Hpwl.total ctx.Ctx.pins ~cx:fx ~cy:fy in
  let align_error_final =
    if ctx.Ctx.dgroups = [] then 0.0
    else Alignment.total_error ctx.Ctx.dgroups ~cx:fx ~cy:fy
  in
  Pins.apply_centers d fx fy;
  (* partial pipelines (incremental ECO, checkpoint resume) never run a gp
     stage; the gp-derived fields then report the placement they started
     from instead of erroring *)
  let gp = ctx.Ctx.gp in
  {
    design = d;
    config = cfg;
    hpwl_init = ctx.Ctx.hpwl_init;
    hpwl_gp = (match gp with Some g -> g.Gp.final_hpwl | None -> ctx.Ctx.hpwl_init);
    hpwl_legal = ctx.Ctx.hpwl_legal;
    hpwl_final;
    steiner_final = ctx.Ctx.steiner_final;
    congestion = Option.get ctx.Ctx.congestion;
    critical_delay = ctx.Ctx.critical_delay;
    overflow_gp = (match gp with Some g -> g.Gp.final_overflow | None -> 0.0);
    align_error_final;
    groups_used = ctx.Ctx.groups_used;
    extraction = ctx.Ctx.extraction;
    trace = (match gp with Some g -> g.Gp.trace | None -> []);
    rt_trace = (match gp with Some g -> g.Gp.rt_trace | None -> []);
    stage_trace;
    times = List.map (fun (r : Trace.stage) -> r.Trace.name, r.Trace.wall_s) stage_trace;
    total_time = Unix.gettimeofday () -. t_start;
  }

let run ?observer ?check (input : Design.t) (cfg : Config.t) =
  run_stages ?observer ?check ~stages:(stages cfg) input cfg

let trace_of_result (r : result) =
  {
    Trace.design = r.design.Design.name;
    mode = Config.mode_to_string r.config.Config.mode;
    total_s = r.total_time;
    stages = r.stage_trace;
  }

let run_both ?check input cfg =
  let base = run ?check input { cfg with Config.mode = Config.Baseline } in
  let sa = run ?check input { cfg with Config.mode = Config.Structure_aware } in
  base, sa
