module Design = Dpp_netlist.Design
module Builder = Dpp_netlist.Builder
module Types = Dpp_netlist.Types
module Pins = Dpp_wirelen.Pins
module Netbox = Dpp_wirelen.Netbox
module Rect = Dpp_geom.Rect
module Json = Dpp_report.Json

let src = Logs.Src.create "dpp.eco" ~doc:"incremental ECO re-placement"

module Log = (val Logs.src_log src : Logs.LOG)

type edit =
  | Move of { cell : int; dx : float; dy : float }
  | Resize of { cell : int; scale : float }
  | Rewire of { net : int; pin_index : int; to_cell : int }
  | Add of { near : int; w : float; nets : int list }

(* ----- JSON codec (shared by the serve protocol and the fuzz replay) ----- *)

let edit_to_json = function
  | Move { cell; dx; dy } ->
    Json.Obj
      [ "op", Json.Str "move"; "cell", Json.Num (float_of_int cell);
        "dx", Json.Num dx; "dy", Json.Num dy ]
  | Resize { cell; scale } ->
    Json.Obj
      [ "op", Json.Str "resize"; "cell", Json.Num (float_of_int cell);
        "scale", Json.Num scale ]
  | Rewire { net; pin_index; to_cell } ->
    Json.Obj
      [ "op", Json.Str "rewire"; "net", Json.Num (float_of_int net);
        "pin", Json.Num (float_of_int pin_index);
        "cell", Json.Num (float_of_int to_cell) ]
  | Add { near; w; nets } ->
    Json.Obj
      [ "op", Json.Str "add"; "near", Json.Num (float_of_int near); "w", Json.Num w;
        "nets", Json.Arr (List.map (fun n -> Json.Num (float_of_int n)) nets) ]

let num key v =
  match Json.member key v with
  | Some (Json.Num f) -> f
  | _ -> raise (Json.Parse_error (Printf.sprintf "edit: missing number %S" key))

let int key v = int_of_float (num key v)

let edit_of_json v =
  match Json.member "op" v with
  | Some (Json.Str "move") -> Move { cell = int "cell" v; dx = num "dx" v; dy = num "dy" v }
  | Some (Json.Str "resize") -> Resize { cell = int "cell" v; scale = num "scale" v }
  | Some (Json.Str "rewire") ->
    Rewire { net = int "net" v; pin_index = int "pin" v; to_cell = int "cell" v }
  | Some (Json.Str "add") ->
    Add
      {
        near = int "near" v;
        w = num "w" v;
        nets =
          (match Json.member "nets" v with
          | Some (Json.Arr xs) -> List.map (fun x -> int_of_float (Json.to_float x)) xs
          | _ -> []);
      }
  | _ -> raise (Json.Parse_error "edit: missing or unknown \"op\"")

let edits_to_json edits = Json.Arr (List.map edit_to_json edits)

let edits_of_json = function
  | Json.Arr xs -> List.map edit_of_json xs
  | _ -> raise (Json.Parse_error "edits: expected an array")

(* ----- edit application: rebuild the netlist with edits folded in -----

   Ids are preserved for every base entity (cells, nets, and group
   references stay valid) because the builder hands them out in creation
   order; cells added by [Add] edits take the ids after the base range. *)

let site_round (d : Design.t) w =
  let s = d.Design.site_width in
  Float.max s (Float.round (w /. s) *. s)

type applied = {
  edited : Design.t;
  seeds : int array;  (** cells that must re-place: moved, resized, added *)
  anchors : int array;  (** seeds plus rewire targets and add sites *)
  struct_nets : int array;  (** nets rewired or grown by an added pin *)
  moves : (int * float * float) list;  (** cell, dx, dy — net displacement *)
}

let apply (base : Design.t) (edits : edit list) =
  if edits = [] then invalid_arg "Eco.apply: empty edit list";
  let nc = Design.num_cells base and nn = Design.num_nets base in
  let check_cell c ctx =
    if c < 0 || c >= nc then invalid_arg (Printf.sprintf "Eco.apply: %s cell %d out of range" ctx c)
  in
  let moves = Hashtbl.create 16 and resizes = Hashtbl.create 16 in
  let rewires = Hashtbl.create 16 in
  let adds = ref [] in
  List.iter
    (fun e ->
      match e with
      | Move { cell; dx; dy } ->
        check_cell cell "move";
        let px, py = try Hashtbl.find moves cell with Not_found -> (0.0, 0.0) in
        Hashtbl.replace moves cell (px +. dx, py +. dy)
      | Resize { cell; scale } ->
        check_cell cell "resize";
        if (Design.cell base cell).Types.c_kind <> Types.Movable then
          invalid_arg "Eco.apply: resize of a non-movable cell";
        if not (Float.is_finite scale) || scale <= 0.0 then
          invalid_arg "Eco.apply: non-positive resize scale";
        let p = try Hashtbl.find resizes cell with Not_found -> 1.0 in
        Hashtbl.replace resizes cell (p *. scale)
      | Rewire { net; pin_index; to_cell } ->
        if net < 0 || net >= nn then invalid_arg "Eco.apply: rewire net out of range";
        check_cell to_cell "rewire";
        let np = Array.length (Design.net base net).Types.n_pins in
        if pin_index < 0 || pin_index >= np then
          invalid_arg "Eco.apply: rewire pin index out of range";
        Hashtbl.replace rewires (net, pin_index) to_cell
      | Add { near; w; nets } ->
        check_cell near "add";
        if not (Float.is_finite w) || w <= 0.0 then
          invalid_arg "Eco.apply: non-positive added-cell width";
        List.iter
          (fun n -> if n < 0 || n >= nn then invalid_arg "Eco.apply: add net out of range")
          nets;
        adds := (near, w, nets) :: !adds)
    edits;
  let adds = List.rev !adds in
  let b =
    Builder.create ~name:base.Design.name ~die:base.Design.die
      ~row_height:base.Design.row_height ~site_width:base.Design.site_width ()
  in
  for i = 0 to nc - 1 do
    let c = Design.cell base i in
    let w =
      match Hashtbl.find_opt resizes i with
      | Some s -> site_round base (c.Types.c_width *. s)
      | None -> c.Types.c_width
    in
    let id =
      Builder.add_cell b ~name:c.Types.c_name ~master:c.Types.c_master ~w
        ~h:c.Types.c_height ~kind:c.Types.c_kind
    in
    assert (id = i);
    let dx, dy = try Hashtbl.find moves i with Not_found -> (0.0, 0.0) in
    Builder.set_position b i ~x:(base.Design.x.(i) +. dx) ~y:(base.Design.y.(i) +. dy);
    Builder.set_orient b i base.Design.orient.(i)
  done;
  let added_ids =
    List.mapi
      (fun j (near, w, _) ->
        let id =
          Builder.add_cell b
            ~name:(Printf.sprintf "eco_add_%d" j)
            ~master:"eco" ~w:(site_round base w) ~h:base.Design.row_height
            ~kind:Types.Movable
        in
        Builder.set_position b id ~x:base.Design.x.(near) ~y:base.Design.y.(near);
        id)
      adds
  in
  (* per-net extra pins contributed by added cells *)
  let extras = Array.make nn [] in
  List.iteri
    (fun j (_, _, nets) ->
      let id = List.nth added_ids j in
      List.iter (fun n -> extras.(n) <- id :: extras.(n)) nets)
    adds;
  Array.iteri (fun n e -> extras.(n) <- List.rev e) extras;
  for n = 0 to nn - 1 do
    let net = Design.net base n in
    let base_pins =
      Array.to_list
        (Array.mapi
           (fun k p ->
             let pin = Design.pin base p in
             match Hashtbl.find_opt rewires (n, k) with
             | Some to_cell ->
               (* the pin jumps to another cell: old offsets are relative to
                  the old master's outline, so the default (center) is used *)
               Builder.add_pin b ~cell:to_cell ~dir:pin.Types.p_dir ()
             | None ->
               Builder.add_pin b ~cell:pin.Types.p_cell ~dir:pin.Types.p_dir
                 ~dx:pin.Types.p_dx ~dy:pin.Types.p_dy ())
           net.Types.n_pins)
    in
    let extra_pins =
      List.map (fun cell -> Builder.add_pin b ~cell ~dir:Types.Inout ()) extras.(n)
    in
    let id = Builder.add_net b ~name:net.Types.n_name ~weight:net.Types.n_weight
        (base_pins @ extra_pins)
    in
    assert (id = n)
  done;
  List.iter (Builder.add_group b) base.Design.groups;
  let edited = Builder.finish b in
  (* only cells whose outline or position changed {e must} re-place:
     moved, resized, added.  Rewire endpoints keep a legal placement — the
     affected net reaches the plan through [struct_nets] instead, so
     distant fanout does not inflate the dirty region *)
  let seed_set = Hashtbl.create 64 in
  let seed c = Hashtbl.replace seed_set c () in
  Hashtbl.iter (fun c _ -> seed c) moves;
  Hashtbl.iter (fun c _ -> seed c) resizes;
  List.iter seed added_ids;
  (* anchors bound the dirty region's hull; rewire targets and add sites
     belong there even though they are not forced to re-place *)
  let anchor_set = Hashtbl.copy seed_set in
  let anchor c = Hashtbl.replace anchor_set c () in
  Hashtbl.iter (fun _ to_cell -> anchor to_cell) rewires;
  List.iter (fun (near, _, _) -> anchor near) adds;
  let snet_set = Hashtbl.create 16 in
  Hashtbl.iter (fun (n, _) _ -> Hashtbl.replace snet_set n ()) rewires;
  Array.iteri (fun n e -> if e <> [] then Hashtbl.replace snet_set n ()) extras;
  let sorted_keys h = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) h []) in
  {
    edited;
    seeds = Array.of_list (sorted_keys seed_set);
    anchors = Array.of_list (sorted_keys anchor_set);
    struct_nets = Array.of_list (sorted_keys snet_set);
    moves =
      List.sort compare
        (Hashtbl.fold (fun c (dx, dy) acc -> (c, dx, dy) :: acc) moves []);
  }

(* ----- dirty-region planning ----- *)

type plan = {
  applied : applied;
  region : Rect.t;  (** row-aligned dirty region, clipped to the die *)
  dirty : int array;  (** movable single-row cells that get re-placed *)
  frozen : int array;  (** movable cells pinned at their base placement *)
  obstacles : Rect.t list;  (** frozen outlines the bounded stages pack around *)
  dirty_fraction : float;  (** |dirty| / movables of the edited design *)
}

let row_align (d : Design.t) (r : Rect.t) =
  let die = d.Design.die in
  let rh = d.Design.row_height in
  let yl = Design.row_y d (Design.row_of_y d (r.Rect.yl +. 1e-9)) in
  let yh = Design.row_y d (Design.row_of_y d (r.Rect.yh -. 1e-9)) +. rh in
  Rect.make
    ~xl:(Float.max die.Rect.xl r.Rect.xl)
    ~yl:(Float.max die.Rect.yl yl)
    ~xh:(Float.min die.Rect.xh r.Rect.xh)
    ~yh:(Float.min die.Rect.yh yh)

let y_overlaps (region : Rect.t) (r : Rect.t) =
  r.Rect.yl < region.Rect.yh -. 1e-9 && r.Rect.yh > region.Rect.yl +. 1e-9

let plan ?(expand = 2.0) ?(freeze = [||]) ?(obstacles = []) (base : Design.t) edits =
  let a = apply base edits in
  let d = a.edited in
  let rh = d.Design.row_height in
  let n = Design.num_cells d in
  (* replay the coordinate edits through a netbox to learn which net boxes
     actually moved: this is the [Netbox.dirty_nets] delta export *)
  let pins = Pins.build d in
  let cx, cy = Pins.centers_of_design d in
  let nb_cx = Array.copy cx and nb_cy = Array.copy cy in
  List.iter
    (fun (i, dx, dy) ->
      nb_cx.(i) <- cx.(i) -. dx;
      nb_cy.(i) <- cy.(i) -. dy)
    a.moves;
  let nb = Netbox.build pins ~cx:nb_cx ~cy:nb_cy in
  List.iter (fun (i, dx, dy) -> Netbox.move_cell nb i (nb_cx.(i) +. dx) (nb_cy.(i) +. dy)) a.moves;
  Netbox.commit nb;
  let moved_nets = Netbox.dirty_nets nb in
  (* hull of the edit sites: anchor cells at both their old and new outline *)
  let hull = ref None in
  let grow (r : Rect.t) =
    hull := Some (match !hull with None -> r | Some h -> Rect.hull h r)
  in
  Array.iter
    (fun i ->
      let r = Design.cell_rect d i in
      grow r;
      match List.find_opt (fun (c, _, _) -> c = i) a.moves with
      | Some (_, dx, dy) -> grow (Rect.translate r ~dx:(-.dx) ~dy:(-.dy))
      | None -> ())
    a.anchors;
  let seed_hull =
    match !hull with Some r -> r | None -> Design.cell_rect d 0
  in
  (* moved/rewired net boxes extend the region, but only within a bounded
     neighbourhood of the edit sites: a die-spanning net (clock-like
     fanout) must not drag the whole die into the region — its far-away
     pins belong to frozen cells anyway *)
  let neighbourhood = Rect.expand seed_hull (8.0 *. rh) in
  let grow_net n =
    let deg = Array.length (Design.net d n).Types.n_pins in
    if deg >= 2 then begin
      let xmin, xmax, ymin, ymax = Netbox.net_box nb n in
      let box = Rect.make ~xl:xmin ~yl:ymin ~xh:xmax ~yh:ymax in
      match Rect.intersection box neighbourhood with
      | Some clipped -> grow clipped
      | None -> ()
    end
  in
  Array.iter grow_net moved_nets;
  Array.iter grow_net a.struct_nets;
  let seed_rect = match !hull with Some r -> r | None -> seed_hull in
  let frozen_by_caller = Hashtbl.create 16 in
  Array.iter (fun i -> Hashtbl.replace frozen_by_caller i ()) freeze;
  let movable = Design.movable_ids d in
  let single_row i = d.Design.cells.(i).Types.c_height <= rh +. 1e-9 in
  let is_seed = Hashtbl.create 64 in
  Array.iter (fun i -> Hashtbl.replace is_seed i ()) a.seeds;
  (* grow the region until the displaced cells fit with slack (cells of
     the dirty rows that stay clean act as hard obstacles, so the dirty
     set needs visibly more free area than its own footprint) *)
  (* only cells fully contained in the region are re-placed; a cell
     straddling the boundary stays frozen and acts as an obstacle, so the
     region's free area and the dirty footprint stay comparable (counting
     straddlers dirty makes the capacity ratio track the local density
     and the region balloons to the die on dense placements) *)
  let classify region =
    let inner = Rect.expand region 1e-6 in
    let dirty = ref [] and frozen = ref [] in
    Array.iter
      (fun i ->
        let eligible =
          single_row i
          && (not (Hashtbl.mem frozen_by_caller i))
          && (Hashtbl.mem is_seed i || Rect.contains_rect inner (Design.cell_rect d i))
        in
        if eligible then dirty := i :: !dirty else frozen := i :: !frozen)
      movable;
    Array.of_list (List.rev !dirty), Array.of_list (List.rev !frozen)
  in
  let capacity region dirty frozen =
    let need = Array.fold_left (fun acc i ->
        acc +. (d.Design.cells.(i).Types.c_width *. d.Design.cells.(i).Types.c_height))
        0.0 dirty
    in
    let blocked = ref 0.0 in
    let count r = blocked := !blocked +. Rect.overlap_area r region in
    Array.iter (fun i -> count (Design.cell_rect d i)) frozen;
    for i = 0 to n - 1 do
      if Types.is_fixed_kind d.Design.cells.(i).Types.c_kind then
        count (Design.cell_rect d i)
    done;
    List.iter count obstacles;
    need, Rect.area region -. !blocked
  in
  let region = ref (row_align d (Rect.expand seed_rect (expand *. rh))) in
  let dirty = ref [||] and frozen = ref [||] in
  let stop = ref false in
  while not !stop do
    let dt, fr = classify !region in
    dirty := dt;
    frozen := fr;
    let need, free = capacity !region dt fr in
    Log.debug (fun m ->
        m "region %.0fx%.0f: dirty=%d need=%.0f free=%.0f" (Rect.width !region)
          (Rect.height !region) (Array.length dt) need free);
    (* legalized placements are locally near-solid, so a multiplicative
       slack would balloon the region to the die; the dirty cells came out
       of this very area, so fitting back needs only their own footprint
       plus the edits' net new demand (already inside [need]) *)
    if free >= 1.0005 *. need || Rect.equal !region (row_align d d.Design.die) then
      stop := true
    else region := row_align d (Rect.expand !region (2.0 *. rh))
  done;
  let region = !region and dirty = !dirty and frozen = !frozen in
  (* frozen movables sharing the region's rows bound what legalization and
     abacus may pack into those rows *)
  let frozen_obstacles =
    Array.to_list frozen
    |> List.filter_map (fun i ->
           let r = Design.cell_rect d i in
           if y_overlaps region r then Some r else None)
  in
  let movables = Float.max 1.0 (float_of_int (Array.length movable)) in
  {
    applied = a;
    region;
    dirty;
    frozen;
    obstacles = obstacles @ frozen_obstacles;
    dirty_fraction = float_of_int (Array.length dirty) /. movables;
  }

(* ----- the incremental flow ----- *)

type result = {
  flow : Flow.result;
  plan : plan;
  fallback : bool;  (** true when the dirty fraction forced a full re-place *)
}

let default_threshold = 0.25

let run ?observer ?check ?(threshold = default_threshold) ?expand ?freeze ?obstacles
    ~base edits (cfg : Config.t) =
  let p = plan ?expand ?freeze ?obstacles base edits in
  if p.dirty_fraction > threshold then begin
    Log.info (fun m ->
        m "dirty fraction %.3f > %.3f: falling back to the full flow" p.dirty_fraction
          threshold);
    let flow = Flow.run ?observer ?check p.applied.edited cfg in
    { flow; plan = p; fallback = true }
  end
  else begin
    Log.info (fun m ->
        m "incremental: %d dirty cells (%.3f), region %.0fx%.0f"
          (Array.length p.dirty) p.dirty_fraction (Rect.width p.region)
          (Rect.height p.region));
    let prepare (ctx : Ctx.t) =
      Ctx.set_skip ctx p.frozen;
      Ctx.set_flip_skip ctx p.frozen;
      ctx.Ctx.bound <- Some p.region;
      ctx.Ctx.obstacles <- p.obstacles;
      ctx.Ctx.hpwl_init <- Ctx.hpwl ctx
    in
    let flow =
      Flow.run_stages ~prepare ?observer ?check ~stages:Flow.eco_stages p.applied.edited cfg
    in
    { flow; plan = p; fallback = false }
  end

(* ----- seeded edit generation (bench, fuzz, and smoke-test traffic) ----- *)

let random_edits ?(ops = 4) ~seed (d : Design.t) =
  let rng = Dpp_util.Rng.create seed in
  let rh = d.Design.row_height and site = d.Design.site_width in
  let single_row =
    Design.movable_ids d |> Array.to_list
    |> List.filter (fun i -> (Design.cell d i).Types.c_height <= rh +. 1e-9)
    |> Array.of_list
  in
  if Array.length single_row = 0 then invalid_arg "random_edits: no single-row movable cells";
  let pick a = a.(Dpp_util.Rng.int rng (Array.length a)) in
  let anchor = pick single_row in
  (* cluster every edit around one anchor so the dirty region stays local *)
  let near =
    let l =
      List.filter
        (fun i ->
          abs_float (Design.cell_center_x d i -. Design.cell_center_x d anchor)
          < Rect.width d.Design.die /. 8.0
          && abs_float (Design.cell_center_y d i -. Design.cell_center_y d anchor) < 3.0 *. rh)
        (Array.to_list single_row)
    in
    if l = [] then [| anchor |] else Array.of_list l
  in
  let nets_of c =
    (Design.cell d c).Types.c_pins |> Array.to_list
    |> List.filter_map (fun p ->
           let n = (Design.pin d p).Types.p_net in
           if n >= 0 then Some n else None)
  in
  List.init (max 1 ops) (fun k ->
      match k mod 4 with
      | 0 ->
        Move
          {
            cell = (if k = 0 then anchor else pick near);
            dx = float_of_int (1 + Dpp_util.Rng.int rng 4) *. site;
            dy = (if Dpp_util.Rng.int rng 2 = 0 then rh else -.rh);
          }
      | 1 -> Resize { cell = pick near; scale = 1.0 +. (0.25 *. float_of_int (1 + Dpp_util.Rng.int rng 2)) }
      | 2 ->
        let c = pick near in
        let nets = match nets_of c with n :: _ -> [ n ] | [] -> [] in
        Add { near = c; w = float_of_int (2 + Dpp_util.Rng.int rng 3) *. site; nets }
      | _ -> (
        let c = pick near in
        match nets_of c with
        | n :: _ -> Rewire { net = n; pin_index = 0; to_cell = pick near }
        | [] -> Move { cell = c; dx = site; dy = 0.0 }))
