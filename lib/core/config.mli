(** Flow configuration — the one record a user tweaks.

    [Baseline] is the structure-oblivious analytical placer (standing in
    for NTUplace3); [Structure_aware] is the paper's flow: extraction,
    alignment forces in GP, group snapping, structure-preserving
    legalization and detailed placement. *)

type mode = Baseline | Structure_aware

type group_source =
  | Extracted  (** run the datapath extractor (the paper's flow) *)
  | Ground_truth  (** use the generator's labels (oracle ablation) *)

type structure_style =
  | Rigid_macros
      (** groups become single macro variables in GP (exact arrays by
          construction) — the primary mode *)
  | Soft_alignment
      (** groups get the quadratic alignment penalty weighted by [beta];
          the ablation mode (and what oversized groups fall back to) *)

type ml_mode =
  | Ml_auto  (** multilevel GP when the design has more than [ml_threshold] movables *)
  | Ml_on
  | Ml_off

type t = {
  mode : mode;
  group_source : group_source;
  structure : structure_style;
  model : Dpp_wirelen.Model.kind;
  target_density : float;
  beta : float;  (** alignment weight knob (dimensionless, 1.0 nominal) *)
  min_coupling : float;
      (** groups whose {!Dpp_structure.Dgroup.internal_coupling} falls
          below this are not constrained at all (default 0.7) *)
  max_slice_span : float;
      (** groups whose {!Dpp_structure.Dgroup.slice_span} exceeds this are
          not constrained (butterfly wiring; default 1.5) *)
  gp_rounds : int;
  gp_inner_iters : int;
  overflow_target : float;
  detail_passes : int;
  extract : Dpp_extract.Slicer.config;
  seed : int;
  jobs : int;
      (** worker domains for the cost kernels (default 1).  The placement
          trajectory is independent of this value — see [Dpp_par.Pool]. *)
  multilevel : ml_mode;
      (** multilevel (coarsen → place → interpolate → refine) global
          placement; [Ml_auto] (the default) turns it on above
          [ml_threshold] movable cells *)
  ml_threshold : int;  (** [Ml_auto] cut-over, in movable cells (default 1500) *)
  ml_min_cells : int;
      (** coarsening stops once a level has at most this many movables
          (default 500) *)
  ml_max_levels : int;  (** maximum coarse levels (default 3) *)
  routability : bool;
      (** congestion-driven GP: RUDY feedback inflates cells in overflowed
          bins (virtual area in the density model) and adds a congestion
          penalty to the gradient — see {!Dpp_place.Gp.config}.  Off by
          default; deterministic at every [jobs] value. *)
  rt_interval : int;  (** GP rounds between congestion steering updates (default 3) *)
  rt_overflow : float;
      (** RUDY bin demand/supply ratio treated as congested (default 1.0) *)
  rt_max_inflate : float;
      (** total virtual-area budget as a fraction of movable area
          (default 0.15) *)
}

val baseline : t
(** LSE, density 0.9, 30 rounds x 60 iterations, overflow 0.08, 3 detail
    passes, seed 1. *)

val structure_aware : t
(** [baseline] with [mode = Structure_aware], [beta = 1.0], extracted
    groups. *)

val multilevel_enabled : t -> movables:int -> bool
(** Whether a design with that many movable cells runs the multilevel
    V-cycle under this configuration. *)

val with_mode : mode -> t -> t
val with_structure : structure_style -> t -> t
val with_beta : float -> t -> t
val with_model : Dpp_wirelen.Model.kind -> t -> t
val mode_to_string : mode -> string
