(** The end-to-end placement flow — the library's main entry point.

    {v
      validate -> [extract] -> QP init -> nonlinear GP (+ alignment)
               -> [group snap] -> Tetris + Abacus -> detailed placement
               -> flip -> metrics
    v}

    Bracketed stages run only in [Structure_aware] mode.  The input design
    is never modified; the result carries a placed copy.

    The flow is an explicit {!stage} list over one shared {!Ctx.t}: each
    stage reads and mutates the context (design copy, pin view, live
    coordinates, incremental {!Dpp_wirelen.Netbox} cost cache) and the
    driver wraps every stage with timing and HPWL bookkeeping, reported
    through the [observer] hook and the result's [stage_trace]. *)

exception Invalid_design of Dpp_netlist.Validate.issue list
(** Raised when validation reports errors. *)

exception Check_failed of { stage : string; violations : string list }
(** Raised in check mode when a stage boundary fails its {!Checkpoint}
    oracles.  [stage] is the stage that {e introduced} the violation —
    every earlier boundary was checked clean — so a corrupted cache or an
    illegal placement is attributed where it happened, not three stages
    later as a mysteriously worse HPWL. *)

type result = {
  design : Dpp_netlist.Design.t;  (** placed copy of the input *)
  config : Config.t;
  hpwl_init : float;  (** after quadratic init *)
  hpwl_gp : float;
  hpwl_legal : float;
  hpwl_final : float;  (** after detailed placement and flipping *)
  steiner_final : float;
  congestion : Dpp_congest.Rudy.stats;  (** RUDY demand statistics at the final placement *)
  critical_delay : float;  (** lite-STA critical path delay at the final placement *)
  overflow_gp : float;
  align_error_final : float;  (** 0 when no groups are in play *)
  groups_used : Dpp_netlist.Groups.t list;  (** groups that steered placement *)
  extraction : (Dpp_extract.Slicer.result * Dpp_extract.Exmetrics.t) option;
      (** present when extraction ran; metrics compare against the design's
          ground-truth labels (empty truth yields trivial metrics) *)
  trace : Dpp_place.Gp.round_info list;
  rt_trace : Dpp_place.Gp.rt_round list;
      (** the GP routability-steering ledger (flat refinement in multilevel
          runs); [[]] unless [routability] was on and steering ran *)
  stage_trace : Dpp_report.Trace.stage list;
      (** one record per pipeline stage, flow order *)
  times : (string * float) list;  (** stage name -> seconds, flow order *)
  total_time : float;
}

type stage = { name : string; run : Ctx.t -> Ctx.t }
(** One pipeline step.  Stages communicate only through the context. *)

val stages : Config.t -> stage list
(** The stage list the driver executes for a given configuration (the
    extract stage is present only in [Structure_aware] mode). *)

val extract_stage : stage
(** The extraction stage on its own — the serve layer substitutes a
    cache-backed variant for it by name. *)

val run :
  ?observer:(Dpp_report.Trace.stage -> unit) ->
  ?check:bool ->
  Dpp_netlist.Design.t ->
  Config.t ->
  result
(** [observer] fires after each stage completes, with that stage's trace
    record (name, wall time, HPWL before/after, overflow when tracked).
    With [~check:true] the {!Checkpoint} oracles validate the context at
    every stage boundary (verdicts land in the trace records, including
    the one handed to [observer]) and the first violation raises
    {!Check_failed}. *)

val run_stages :
  ?prepare:(Ctx.t -> unit) ->
  ?observer:(Dpp_report.Trace.stage -> unit) ->
  ?check:bool ->
  stages:stage list ->
  Dpp_netlist.Design.t ->
  Config.t ->
  result
(** Like {!run} but over an explicit stage list — the hook the mutation
    tests and the fuzz harness use to splice fault-injection stages into
    the pipeline, and the one incremental ECO re-placement and checkpoint
    resume build on.  [prepare] runs right after context creation, before
    any stage — it may install coordinates, skip sets, obstacles, and the
    ECO [bound].  The list must end in a metrics stage for the result to
    be assembled; when no gp stage is present the gp-derived result
    fields report the starting placement. *)

val eco_stages : stage list
(** [legal; detail; flip; metrics] — the incremental ECO re-placement
    suffix.  Driven by the context's [bound], [skip], [flip_skip] and
    [obstacles] (see {!Eco}), all installed through [prepare]. *)

val resume_stages : stages:stage list -> after:string -> stage list
(** The suffix of [stages] strictly after the named stage — the stage
    list a checkpoint resume runs.
    @raise Invalid_argument if no stage has that name. *)

val trace_of_result : result -> Dpp_report.Trace.t
(** The result's stage trace bundled for {!Dpp_report.Trace.write}. *)

val run_both : ?check:bool -> Dpp_netlist.Design.t -> Config.t -> result * result
(** Baseline and structure-aware on the same design with otherwise equal
    settings — the Table 3 comparison.  The given config's [mode] is
    ignored. *)
