module Check = Dpp_check
module Trace = Dpp_report.Trace
module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Dgroup = Dpp_structure.Dgroup

(* Stages from legalization onward must maintain full legality; earlier
   stages work on intermediate (overlapping, off-grid) placements. *)
let legality_from = [ "legal"; "detail"; "flip"; "metrics" ]

let snapped_dgroups (ctx : Ctx.t) =
  List.filter
    (fun (dg : Dgroup.t) -> Array.for_all ctx.Ctx.skip dg.Dgroup.cells)
    (ctx.Ctx.dgroups @ ctx.Ctx.macro_dgs)

let run ~stage (ctx : Ctx.t) =
  let d = ctx.Ctx.design in
  let cx = ctx.Ctx.cx and cy = ctx.Ctx.cy in
  let oracles = ref [] and violations = ref [] in
  let oracle name vs =
    oracles := name :: !oracles;
    violations := !violations @ vs
  in
  oracle "finite" (Check.finite d ~cx ~cy);
  (match ctx.Ctx.netbox with
  | Some nb ->
    oracle "netbox"
      (Check.netbox_sync ~pool:ctx.Ctx.pool
         ~net_name:(fun n -> (Design.net d n).Types.n_name)
         nb)
  | None -> ());
  (match (stage, ctx.Ctx.ml_levels) with
  | "gp", (_ :: _ as levels) ->
    oracle "clusters" (List.concat_map Check.cluster_integrity levels)
  | _ -> ());
  if List.mem stage legality_from then begin
    oracle "legal" (Check.legal d ~cx ~cy);
    match snapped_dgroups ctx with
    | [] -> ()
    | snapped -> oracle "groups" (Check.group_integrity d snapped ~cx ~cy)
  end;
  {
    Trace.ok = !violations = [];
    oracles = List.rev !oracles;
    violations = Check.Violation.strings !violations;
  }
