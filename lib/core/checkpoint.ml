module Check = Dpp_check
module Trace = Dpp_report.Trace
module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Dgroup = Dpp_structure.Dgroup

(* Stages from legalization onward must maintain full legality; earlier
   stages work on intermediate (overlapping, off-grid) placements. *)
let legality_from = [ "legal"; "detail"; "flip"; "metrics" ]

let snapped_dgroups (ctx : Ctx.t) =
  List.filter
    (fun (dg : Dgroup.t) -> Array.for_all ctx.Ctx.skip dg.Dgroup.cells)
    (ctx.Ctx.dgroups @ ctx.Ctx.macro_dgs)

let run ~stage (ctx : Ctx.t) =
  let d = ctx.Ctx.design in
  let cx = ctx.Ctx.cx and cy = ctx.Ctx.cy in
  let oracles = ref [] and violations = ref [] in
  let oracle name vs =
    oracles := name :: !oracles;
    violations := !violations @ vs
  in
  oracle "finite" (Check.finite d ~cx ~cy);
  (match ctx.Ctx.netbox with
  | Some nb ->
    oracle "netbox"
      (Check.netbox_sync ~pool:ctx.Ctx.pool
         ~net_name:(fun n -> (Design.net d n).Types.n_name)
         nb)
  | None -> ());
  (match (stage, ctx.Ctx.ml_levels) with
  | "gp", (_ :: _ as levels) ->
    oracle "clusters" (List.concat_map Check.cluster_integrity levels)
  | _ -> ());
  (match (stage, ctx.Ctx.gp) with
  | "gp", Some g -> oracle "rt-ledger" (Check.rt_ledger g.Dpp_place.Gp.rt_trace)
  | _ -> ());
  (match (stage, ctx.Ctx.congestion) with
  | "metrics", Some stats ->
    oracle "congestion"
      (Check.congestion ~pool:ctx.Ctx.pool ~pins:ctx.Ctx.pins d ~stats ~cx ~cy)
  | _ -> ());
  if List.mem stage legality_from then begin
    oracle "legal" (Check.legal d ~cx ~cy);
    match snapped_dgroups ctx with
    | [] -> ()
    | snapped -> oracle "groups" (Check.group_integrity d snapped ~cx ~cy)
  end;
  {
    Trace.ok = !violations = [];
    oracles = List.rev !oracles;
    violations = Check.Violation.strings !violations;
  }

module Snapshot = struct
  module Json = Dpp_report.Json
  module Orient = Dpp_geom.Orient
  module Rect = Dpp_geom.Rect
  module Legal = Dpp_place.Legal

  type t = {
    stage : string;
    design : string;
    cx : float array;
    cy : float array;
    orient : Orient.t array;
    skip_ids : int array;
    flip_skip_ids : int array;
    obstacles : Rect.t list;
    bound : Rect.t option;
    assignment : int array;
    failed : int list;
  }

  let capture ~stage (ctx : Ctx.t) =
    {
      stage;
      design = ctx.Ctx.design.Design.name;
      cx = Array.copy ctx.Ctx.cx;
      cy = Array.copy ctx.Ctx.cy;
      orient = Array.copy ctx.Ctx.design.Design.orient;
      skip_ids = Array.copy ctx.Ctx.skip_ids;
      flip_skip_ids = Array.copy ctx.Ctx.flip_skip_ids;
      obstacles = ctx.Ctx.obstacles;
      bound = ctx.Ctx.bound;
      assignment =
        (match ctx.Ctx.legal with
        | Some l -> Array.copy l.Legal.assignment
        | None -> [||]);
      failed = (match ctx.Ctx.legal with Some l -> l.Legal.failed | None -> []);
    }

  let restore (s : t) (ctx : Ctx.t) =
    let d = ctx.Ctx.design in
    let n = Array.length d.Design.orient in
    if Array.length s.orient <> n || Array.length s.cx <> n then
      invalid_arg "Snapshot.restore: cell count mismatch";
    (* orientations first: accepted flips must be visible through the
       soa/pin views (they alias [d.orient]) before coordinates adopt the
       snapshot placement *)
    for i = 0 to n - 1 do
      if not (Orient.equal d.Design.orient.(i) s.orient.(i)) then begin
        d.Design.orient.(i) <- s.orient.(i);
        Dpp_wirelen.Pins.flip_cell_x ctx.Ctx.pins i
      end
    done;
    Ctx.set_coords ctx (Array.copy s.cx) (Array.copy s.cy);
    Ctx.set_skip ctx s.skip_ids;
    Ctx.set_flip_skip ctx s.flip_skip_ids;
    ctx.Ctx.obstacles <- s.obstacles;
    ctx.Ctx.bound <- s.bound;
    if Array.length s.assignment > 0 then
      ctx.Ctx.legal <-
        Some
          {
            Legal.assignment = Array.copy s.assignment;
            cx = ctx.Ctx.cx;
            cy = ctx.Ctx.cy;
            failed = s.failed;
          }

  (* ----- JSON codec (the spool format the serve layer persists) ----- *)

  let rect_of_json = function
    | Json.Arr [ a; b; c; d ] ->
      Rect.make ~xl:(Json.to_float a) ~yl:(Json.to_float b) ~xh:(Json.to_float c)
        ~yh:(Json.to_float d)
    | _ -> raise (Json.Parse_error "snapshot: malformed rectangle")

  (* Streaming emit: a million-cell snapshot is four ~1M-element arrays,
     and materializing them as a Json tree costs ~50 bytes of boxed
     nodes per element before a single byte reaches the spool file.
     Writing fields straight through [puts] keeps the writer O(1) in
     retained memory; the byte stream is exactly what the old
     [Json.encode (to_json s)] path produced, so spools stay
     interchangeable across versions. *)
  let emit ~(puts : string -> unit) s =
    let num f = puts (Json.num_string f) in
    let str v =
      puts "\"";
      puts (Json.escape_string v);
      puts "\""
    in
    let floats a =
      puts "[";
      Array.iteri
        (fun i f ->
          if i > 0 then puts ",";
          num f)
        a;
      puts "]"
    in
    let ints a =
      puts "[";
      Array.iteri
        (fun i x ->
          if i > 0 then puts ",";
          num (float_of_int x))
        a;
      puts "]"
    in
    let rect (r : Rect.t) =
      puts "[";
      num r.Rect.xl;
      puts ",";
      num r.Rect.yl;
      puts ",";
      num r.Rect.xh;
      puts ",";
      num r.Rect.yh;
      puts "]"
    in
    puts "{\"stage\":";
    str s.stage;
    puts ",\"design\":";
    str s.design;
    puts ",\"cx\":";
    floats s.cx;
    puts ",\"cy\":";
    floats s.cy;
    puts ",\"orient\":[";
    Array.iteri
      (fun i o ->
        if i > 0 then puts ",";
        str (Orient.to_string o))
      s.orient;
    puts "]";
    puts ",\"skip_ids\":";
    ints s.skip_ids;
    puts ",\"flip_skip_ids\":";
    ints s.flip_skip_ids;
    puts ",\"obstacles\":[";
    List.iteri
      (fun i r ->
        if i > 0 then puts ",";
        rect r)
      s.obstacles;
    puts "]";
    puts ",\"bound\":";
    (match s.bound with Some r -> rect r | None -> puts "null");
    puts ",\"assignment\":";
    ints s.assignment;
    puts ",\"failed\":";
    ints (Array.of_list s.failed);
    puts "}"

  let output oc s = emit ~puts:(output_string oc) s

  let encode s =
    let b = Buffer.create 4096 in
    emit ~puts:(Buffer.add_string b) s;
    Buffer.contents b

  let float_array key v =
    match Json.member key v with
    | Some (Json.Arr xs) -> Array.of_list (List.map Json.to_float xs)
    | _ -> raise (Json.Parse_error (Printf.sprintf "snapshot: missing array %S" key))

  let int_array key v = Array.map int_of_float (float_array key v)

  let str key v =
    match Json.member key v with
    | Some (Json.Str s) -> s
    | _ -> raise (Json.Parse_error (Printf.sprintf "snapshot: missing string %S" key))

  let of_json v =
    {
      stage = str "stage" v;
      design = str "design" v;
      cx = float_array "cx" v;
      cy = float_array "cy" v;
      orient =
        (match Json.member "orient" v with
        | Some (Json.Arr xs) ->
          Array.of_list
            (List.map
               (fun x ->
                 match Orient.of_string (Json.to_string x) with
                 | Some o -> o
                 | None -> raise (Json.Parse_error "snapshot: bad orientation"))
               xs)
        | _ -> raise (Json.Parse_error "snapshot: missing array \"orient\""));
      skip_ids = int_array "skip_ids" v;
      flip_skip_ids = int_array "flip_skip_ids" v;
      obstacles =
        (match Json.member "obstacles" v with
        | Some (Json.Arr xs) -> List.map rect_of_json xs
        | _ -> []);
      bound =
        (match Json.member "bound" v with
        | Some Json.Null | None -> None
        | Some r -> Some (rect_of_json r));
      assignment = int_array "assignment" v;
      failed = Array.to_list (int_array "failed" v);
    }

  let decode s = of_json (Json.parse s)

  let save ~path s =
    (* write-then-rename so a kill mid-write never leaves a torn spool
       file for the restarted server to trip over *)
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output oc s);
    Sys.rename tmp path

  let load ~path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> decode (really_input_string ic (in_channel_length ic)))
end
