(** Seeded differential fuzzing of the placement flow and its incremental
    caches — the engine behind [bin/dpp_fuzz] and [test/test_fuzz].

    A {!case} is derived deterministically from a single integer seed
    ({!case_of_seed}), so every failure replays from one command line.
    Each case runs three layers of checks, cheapest first:

    - {b unit}: an adversarial micro-design (single-pin nets, unconnected
      pins, fixed blockers, coincident pin offsets) goes through the
      Bookshelf round-trip oracle and the WA/LSE
      gradient-vs-finite-difference oracle;
    - {b differential}: random move/flip/commit/rollback sequences against
      the {!Dpp_wirelen.Netbox} incremental cache, cross-checked against
      the fresh-rescan HPWL evaluator and the cache's own audit;
    - {b flow}: a generated benchmark ({!Dpp_gen.Presets.scaled} across the
      case's size/regularity point) is placed by both the baseline and the
      structure-aware pipeline with stage checking on; any
      {!Flow.Check_failed} becomes a failure attributed to its stage;
    - {b multilevel-vs-flat}: the same benchmark is placed once with the
      multilevel V-cycle forced on (thresholds lowered so it engages at
      fuzz sizes) and once forced flat, both in check mode — so the
      cluster-integrity oracle gates every level boundary — and the final
      HPWLs must agree within a bounded factor;
    - {b routability}: the virtual-area inflation overlay must round-trip
      bit for bit on the density potential
      ({!Dpp_density.Bell.set_inflation} / [reset_inflation]), and a
      congestion-steered flow ([routability] on, short steering interval,
      full check mode — so the legality, group-rigidity, congestion and
      rt-ledger oracles all gate it) must stay within a bounded HPWL
      factor of the congestion-blind flow on the same design;
    - {b eco}: a seeded {!Eco.random_edits} list is replayed incrementally
      against a placed base ({!Eco.run} in check mode); every frozen cell
      must stay bit-identical to the base placement and the result must
      pass the legality oracles.  On failure the {e edit list itself} is
      minimized (greedy one-at-a-time delta debugging) and the minimal
      still-failing list is printed as JSON, replayable through
      [dpp_serve eco --edits].

    On failure, {!shrink} greedily halves the case (fewer cells, fewer
    nets, shorter move sequence, fewer ECO edits) while the failure
    reproduces, yielding a minimal reproducer. *)

type case = {
  seed : int;
  cells : int;  (** flow design size (the micro-design scales with it) *)
  nets : int;  (** extra random nets in the micro-design *)
  moves : int;  (** length of the move/flip/commit/rollback sequence *)
  dp_fraction : float;  (** datapath fraction of the flow design *)
  jobs : int;
      (** worker domains; above 1 a fourth layer runs parallel-vs-serial
          differentials on every pooled kernel, plus a jobs-N vs jobs-1
          whole-flow determinism differential — all with [Float.equal],
          no tolerance *)
  eco_ops : int;  (** length of the seeded ECO edit list *)
}

type failure = {
  case : case;
  kind : string;
      (** ["bookshelf"], ["gradient"], ["netbox"], ["par"], ["flow"] or
          ["multilevel"] *)
  stage : string;  (** offending pipeline stage, or the sub-check name *)
  detail : string list;  (** rendered violation reports *)
}

val case_of_seed : int -> case
(** Deterministic: equal seeds yield equal cases.  [jobs] is always 1;
    callers raise it explicitly (e.g. from [dpp_fuzz --jobs]). *)

val replay_command : case -> string
(** The one-command reproducer, e.g.
    ["dpp_fuzz --seed 7 --cells 140 --nets 52 --moves 80 --dp-fraction 0.3 --eco-ops 4"]. *)

val pp_failure : Format.formatter -> failure -> unit

val random_design : seed:int -> cells:int -> nets:int -> Dpp_netlist.Design.t
(** The adversarial micro-design generator (also used directly by tests).
    Deterministic in [seed]; at least 8 cells and 2 nets. *)

val run_case : ?flow:bool -> case -> failure option
(** Run every check layer on one case; [~flow:false] skips the (orders of
    magnitude slower) full-pipeline layer. *)

val shrink : (case -> failure option) -> failure -> failure
(** [shrink rerun f] greedily halves [cells] / [nets] / [moves] while
    [rerun] keeps failing, returning the smallest still-failing case's
    failure.  [rerun] is typically [run_case] with the original layers. *)
