(** Stage-boundary invariant checking: the policy mapping each pipeline
    stage to the {!Dpp_check} oracles that must hold when it finishes.

    Every boundary checks coordinate finiteness and, whenever the context
    carries a live {!Dpp_wirelen.Netbox}, its agreement with a fresh
    rescan.  From legalization onward the full legality audit and the
    snapped-group rigidity oracle join in.  Earlier stages (init, gp, snap)
    legitimately hold overlapping or off-grid intermediate placements, so
    legality is not asserted there.

    Used by {!Flow.run} in check mode; a failing verdict there raises
    {!Flow.Check_failed} attributed to the stage that introduced it. *)

val run : stage:string -> Ctx.t -> Dpp_report.Trace.check
(** Run the oracles configured for the named stage against the context's
    current state.  Never raises; the verdict carries rendered violation
    reports. *)
