(** Stage-boundary invariant checking: the policy mapping each pipeline
    stage to the {!Dpp_check} oracles that must hold when it finishes.

    Every boundary checks coordinate finiteness and, whenever the context
    carries a live {!Dpp_wirelen.Netbox}, its agreement with a fresh
    rescan.  From legalization onward the full legality audit and the
    snapped-group rigidity oracle join in.  Earlier stages (init, gp, snap)
    legitimately hold overlapping or off-grid intermediate placements, so
    legality is not asserted there.

    Used by {!Flow.run} in check mode; a failing verdict there raises
    {!Flow.Check_failed} attributed to the stage that introduced it. *)

val run : stage:string -> Ctx.t -> Dpp_report.Trace.check
(** Run the oracles configured for the named stage against the context's
    current state.  Never raises; the verdict carries rendered violation
    reports. *)

(** Stage-boundary snapshots: everything a context holds that the post-gp
    stages are a pure function of — centers, orientations, the frozen-cell
    sets, obstacle outlines, the ECO bound, and the row assignment.
    Restoring one into a fresh context and running the remaining stages
    reproduces the interrupted run bit-for-bit, which is what the serve
    layer's crash recovery (SIGTERM mid-job -> restart -> resume) relies
    on.  Serialized as a single JSON object (the server's spool format). *)
module Snapshot : sig
  type t = {
    stage : string;  (** last {e completed} stage *)
    design : string;  (** design name, for spool-file sanity checks *)
    cx : float array;  (** cell centers *)
    cy : float array;
    orient : Dpp_geom.Orient.t array;
    skip_ids : int array;
    flip_skip_ids : int array;
    obstacles : Dpp_geom.Rect.t list;
    bound : Dpp_geom.Rect.t option;
    assignment : int array;  (** row assignment; [[||]] before legal *)
    failed : int list;
  }

  val capture : stage:string -> Ctx.t -> t
  (** Copy the context's restorable state (arrays are copied, so later
      stages cannot mutate the snapshot). *)

  val restore : t -> Ctx.t -> unit
  (** Install the snapshot into a context freshly created over the same
      design (a {!Flow.run_stages} [prepare] hook).  Orientation diffs are
      applied to both the design and the shared pin view, so no rebuild is
      needed.  @raise Invalid_argument on a cell-count mismatch. *)

  val of_json : Dpp_report.Json.t -> t
  (** The spool object; the serve layer embeds it next to the job spec. *)

  val output : out_channel -> t -> unit
  (** Stream the snapshot's JSON straight to a channel — no intermediate
      tree or string, O(1) retained memory however large the design. *)

  val encode : t -> string
  val decode : string -> t
  (** @raise Dpp_report.Json.Parse_error on malformed input. *)

  val save : path:string -> t -> unit
  (** Atomic (write to a temp file, then rename), so a kill mid-write
      never leaves a torn spool file. *)

  val load : path:string -> t
end
