(** The shared placement context threaded through the flow's stages.

    One [t] is allocated per {!Flow.run}: it owns the placed design copy,
    the pin view (built {e once} — the flip stage keeps its offsets
    consistent in place), a lazily built hypergraph, the live coordinate
    arrays, and, from legalization onward, the {!Dpp_wirelen.Netbox}
    incremental-cost cache that the detailed-placement and flip stages
    evaluate their moves against.  Stages communicate exclusively by
    mutating the context, which is what later scaling work (parallel
    passes, sharded density, cross-run caching) builds on. *)

type t = {
  design : Dpp_netlist.Design.t;  (** the placed copy being optimized *)
  config : Config.t;
  pool : Dpp_par.Pool.t;
      (** worker pool sized from [config.jobs], shared by every stage's
          cost kernels; {!Flow.run} shuts it down when the flow ends *)
  arena : Dpp_util.Arena.t;
      (** per-context scratch arena recycled by GP rounds, netbox
          rescans and RUDY evaluations; single-domain — each serve
          worker context owns its own *)
  soa : Dpp_netlist.Soa.t;
      (** the flat structure-of-arrays view of [design], derived once at
          context creation and authoritative for every hot kernel; its
          [x]/[y]/[orient] arrays alias the design's, so in-place mutation
          (flips) stays visible through both views *)
  pins : Dpp_wirelen.Pins.t;  (** built once at context creation, over [soa] *)
  hypergraph : Dpp_netlist.Hypergraph.t Lazy.t;
  mutable cx : float array;  (** live cell centers — the current best placement *)
  mutable cy : float array;
  mutable netbox : Dpp_wirelen.Netbox.t option;
      (** incremental HPWL cache over [cx]/[cy]; [None] until first use,
          dropped by {!set_coords} *)
  mutable netbox_retired : Dpp_wirelen.Netbox.t option;
      (** last cache dropped by {!set_coords}, recycled as the storage
          donor of the next {!netbox} build *)
  mutable skip : int -> bool;  (** cells frozen by group snapping (or by ECO) *)
  mutable skip_ids : int array;
      (** the id set behind [skip], maintained by {!set_skip} so
          checkpoint snapshots can serialize the predicate *)
  mutable flip_skip : int -> bool;
      (** cells whose orientation must not change — identity in the full
          flow, the frozen clean set in incremental ECO re-placement *)
  mutable flip_skip_ids : int array;
  mutable bound : Dpp_geom.Rect.t option;
      (** dirty-region rectangle for incremental ECO re-placement;
          [None] (the full flow) leaves legalization and detailed
          placement unconstrained *)
  mutable obstacles : Dpp_geom.Rect.t list;  (** snapped group/macro outlines *)
  mutable legal : Dpp_place.Legal.t option;
  mutable groups_used : Dpp_netlist.Groups.t list;
  mutable extraction : (Dpp_extract.Slicer.result * Dpp_extract.Exmetrics.t) option;
  mutable dgroups : Dpp_structure.Dgroup.t list;
  mutable macro_dgs : Dpp_structure.Dgroup.t list;
  mutable rigid_dgs : Dpp_structure.Dgroup.t list;
  mutable soft_dgs : Dpp_structure.Dgroup.t list;
  mutable gp : Dpp_place.Gp.result option;
  mutable ml_levels : Dpp_coarsen.level list;
      (** the coarsening hierarchy the gp stage ran on ([[]] = flat GP);
          kept for the cluster-integrity oracle and the trace *)
  mutable gp_levels : Dpp_place.Gp.level_info list;
      (** per-level V-cycle solve records, ascending level order *)
  mutable detail_stats : Dpp_place.Detail.stats option;
  mutable flip_stats : Dpp_place.Flip.stats option;
  mutable hpwl_init : float;
  mutable hpwl_legal : float;
  mutable steiner_final : float;
  mutable congestion : Dpp_congest.Rudy.stats option;
  mutable critical_delay : float;
}

val create : Dpp_netlist.Design.t -> Config.t -> t
(** Derives the flat view and pin view and captures the design's
    current centers. *)

val set_skip : t -> int array -> unit
(** Install [skip] as membership in the given id set, recording the set
    in [skip_ids].  Stages must use this (not assign the closure
    directly) so {!Checkpoint.Snapshot} can persist the frozen set. *)

val set_flip_skip : t -> int array -> unit
(** Same, for the flip stage's exemption set. *)

val set_coords : t -> float array -> float array -> unit
(** Adopt new live coordinate arrays (e.g. a stage's output), dropping
    any netbox built over the old ones. *)

val netbox : t -> Dpp_wirelen.Netbox.t
(** The incremental cache over the current coordinates, built on first
    use after each {!set_coords}. *)

val hpwl : t -> float
(** Weighted HPWL at the current coordinates — O(1) off the netbox when
    one is live, a full rescan otherwise. *)
