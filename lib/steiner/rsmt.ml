module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Pins = Dpp_wirelen.Pins

let manhattan (x1, y1) (x2, y2) = abs_float (x1 -. x2) +. abs_float (y1 -. y2)

let hpwl3 points =
  let xs = Array.map fst points and ys = Array.map snd points in
  let fmax = Array.fold_left max neg_infinity and fmin = Array.fold_left min infinity in
  fmax xs -. fmin xs +. fmax ys -. fmin ys

let max_iterated_degree = 10

(* Iterated 1-Steiner: repeatedly add the Hanan-grid point that shrinks the
   MST the most.  Terminals stay; added Steiner points of degree <= 2 would
   be redundant but the MST length is what we report, so we skip cleanup. *)
let iterated_one_steiner points =
  let base = Mst.length points in
  let xs = Array.map fst points and ys = Array.map snd points in
  let current = ref (Array.to_list points) in
  let best_len = ref base in
  let k = Array.length points in
  let max_added = max 1 (k - 2) in
  let added = ref 0 in
  let improved = ref true in
  while !improved && !added < max_added do
    improved := false;
    let cur_arr = Array.of_list !current in
    let best_gain = ref 1e-9 in
    let best_point = ref None in
    Array.iter
      (fun hx ->
        Array.iter
          (fun hy ->
            let cand = (hx, hy) in
            if not (Array.exists (fun p -> p = cand) cur_arr) then begin
              let len = Mst.length (Array.append cur_arr [| cand |]) in
              let gain = !best_len -. len in
              if gain > !best_gain then begin
                best_gain := gain;
                best_point := Some (cand, len)
              end
            end)
          ys)
      xs;
    match !best_point with
    | Some (p, len) ->
      current := p :: !current;
      best_len := len;
      incr added;
      improved := true
    | None -> ()
  done;
  !best_len

let length points =
  match Array.length points with
  | 0 | 1 -> 0.0
  | 2 -> manhattan points.(0) points.(1)
  | 3 -> hpwl3 points
  | k when k <= max_iterated_degree -> iterated_one_steiner points
  | _ -> Mst.length points

let net_length t ~cx ~cy n =
  let k = Pins.load_net t ~cx ~cy n in
  let points = Array.init k (fun i -> t.Pins.scratch_x.(i), t.Pins.scratch_y.(i)) in
  length points

let total t ~cx ~cy =
  let acc = ref 0.0 in
  let s = t.Pins.soa in
  for n = 0 to Dpp_netlist.Soa.num_nets s - 1 do
    let w = s.Dpp_netlist.Soa.net_weight.(n) in
    acc := !acc +. (w *. net_length t ~cx ~cy n)
  done;
  !acc

let total_of_design d =
  let t = Pins.build d in
  let cx, cy = Pins.centers_of_design d in
  total t ~cx ~cy
