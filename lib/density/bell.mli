(** Bell-shaped smooth density potential (Kahng–Wang function, as used by
    NTUplace3).  Each movable cell [v] spreads its area over nearby bins
    through a C¹ bump

    {v
      theta(d) = 1 - 2 d^2 / R^2        for 0    <= d <= R/2
               = 2 (d - R)^2 / R^2      for R/2  <= d <= R
               = 0                      otherwise
    v}

    per axis, where [d] is the center distance to the bin center and
    [R = cell_extent/2 + bin_extent] is the influence radius.  The per-cell
    normaliser [C_v] makes the contributions sum to the cell area.  The
    penalty is [sum_b (phi_b - target_b)^2] with
    [target_b = target_density * capacity_b].

    The quadratic penalty and its analytic gradient are what the global
    placer adds as [lambda * D]. *)

type t

val create :
  ?frozen:(int -> bool) ->
  ?soa:Dpp_netlist.Soa.t ->
  Dpp_netlist.Design.t ->
  grid:Grid.t ->
  target_density:float ->
  t
(** [frozen] excludes movable cells that a later flow phase treats as
    obstacles (snapped group members); their area must then be subtracted
    from the grid capacity by the caller.  [soa] supplies the flow's flat
    view so the construction scan reads flat arrays; without it one is
    derived on the spot. *)

val of_soa :
  ?frozen:(int -> bool) -> Dpp_netlist.Soa.t -> grid:Grid.t -> target_density:float -> t
(** {!create} directly over the flat core (no [Design.t] needed). *)

val grid : t -> Grid.t

val value : t -> cx:float array -> cy:float array -> float

val value_grad :
  t -> cx:float array -> cy:float array -> gx:float array -> gy:float array -> float
(** Gradients accumulate into [gx]/[gy]; fixed-cell slots stay untouched. *)

val bin_potential : t -> cx:float array -> cy:float array -> float array
(** The smoothed per-bin area field (fresh array), for inspection/tests. *)

val set_inflation : t -> float array -> unit
(** [set_inflation t factors] scales each movable cell's normaliser by
    [factors.(i)] (indexed by cell id, each finite and [>= 1.0]) over its
    uninflated base.  Since the normaliser makes a cell's bell
    contributions sum to its area, this is exactly the routability loop's
    virtual-area cell inflation: the density force sees a larger cell,
    geometry is untouched.  Factors are absolute (not cumulative): calling
    with all-ones is identical to {!reset_inflation}.  Mutations are
    visible to existing {!par} handles — both kernel families read the
    live normaliser on every evaluation.
    @raise Invalid_argument on a NaN/infinite or sub-1.0 factor. *)

val reset_inflation : t -> unit
(** Restore every normaliser to its uninflated base — the ledger-closing
    deflation at the end of a routability-driven solve.  After this the
    potential is bit-identical to a freshly built [t]. *)

val theta : r:float -> float -> float
(** The raw bump function, exposed for unit tests. *)

val theta_deriv : r:float -> float -> float
(** d(theta)/dd, exposed for gradient tests. *)

(** {2 Domain-parallel evaluation}

    The bell field is a scatter (many cells hit the same bin), so the
    parallel kernel accumulates into {!Dpp_par.Pool.chunk_count} fixed
    chunk-local bin fields and folds them per bin in ascending chunk
    order.  That makes {!par_value} / {!par_value_grad} {e bit-stable
    across worker counts} (the chunk layout never depends on the pool
    size) but not bit-equal to the serial {!value} / {!value_grad}, whose
    single accumulator sums in movable-cell order — which is why the flow
    always routes through the [par] kernels once a pool exists, even with
    one worker. *)

type par

val par_create : t -> par
(** Allocates the chunk-local bin fields ([chunk_count * nbins] floats). *)

val par_value : par -> Dpp_par.Pool.t -> cx:float array -> cy:float array -> float

val par_value_grad :
  par ->
  Dpp_par.Pool.t ->
  cx:float array ->
  cy:float array ->
  gx:float array ->
  gy:float array ->
  float
(** Same accumulate-into-[gx]/[gy] contract as {!value_grad}; per-cell
    slots are write-disjoint across workers. *)
