module Rect = Dpp_geom.Rect
module Design = Dpp_netlist.Design
module Soa = Dpp_netlist.Soa

type t = {
  grid : Grid.t;
  movable : int array;
  cell_w : float array;  (** indexed by cell id *)
  cell_h : float array;
  radius_x : float array;
  radius_y : float array;
  normalizer : float array;
  base_normalizer : float array;
      (** the uninflated normalizers; [normalizer] is this array scaled by
          the routability loop's per-cell inflation factors *)
  target : float array;  (** per bin *)
  phi : float array;  (** scratch bin field *)
  tx_row : float array;  (** per-column theta row, hoisted across the window's rows *)
  dtx_row : float array;  (** per-column theta' row (gradient kernels) *)
}

let theta ~r d =
  let d = abs_float d in
  if d >= r then 0.0
  else if d <= r /. 2.0 then 1.0 -. (2.0 *. d *. d /. (r *. r))
  else begin
    let e = d -. r in
    2.0 *. e *. e /. (r *. r)
  end

let theta_deriv ~r d =
  let s = if d < 0.0 then -1.0 else 1.0 in
  let d = abs_float d in
  if d >= r then 0.0
  else if d <= r /. 2.0 then s *. (-4.0 *. d /. (r *. r))
  else s *. (4.0 *. (d -. r) /. (r *. r))

(* Sum of theta over an infinite regular bin lattice, evaluated once per
   distinct radius: positions the center on a bin center (the symmetric
   worst case) — the sum is nearly shift-invariant, which is all the
   normaliser needs. *)
let lattice_sum ~r ~step =
  let k = int_of_float (ceil (r /. step)) + 1 in
  let acc = ref 0.0 in
  for i = -k to k do
    acc := !acc +. theta ~r (float_of_int i *. step)
  done;
  !acc

let grid t = t.grid

let of_soa ?(frozen = fun _ -> false) (s : Soa.t) ~grid ~target_density =
  if target_density <= 0.0 then invalid_arg "Bell.create: non-positive target density";
  let nc = Soa.num_cells s in
  (* movable ids ascending, frozen ones dropped — the same id sequence
     [Design.movable_ids] yields, walked off the flat kind array *)
  let n_mov = ref 0 in
  for i = 0 to nc - 1 do
    if (not (Soa.is_fixed s i)) && not (frozen i) then incr n_mov
  done;
  let movable = Array.make !n_mov 0 in
  let k = ref 0 in
  for i = 0 to nc - 1 do
    if (not (Soa.is_fixed s i)) && not (frozen i) then begin
      movable.(!k) <- i;
      incr k
    end
  done;
  let cell_w = Array.make nc 0.0 and cell_h = Array.make nc 0.0 in
  let radius_x = Array.make nc 0.0 and radius_y = Array.make nc 0.0 in
  let normalizer = Array.make nc 0.0 in
  Array.iter
    (fun i ->
      let w = s.Soa.width.(i) and h = s.Soa.height.(i) in
      cell_w.(i) <- w;
      cell_h.(i) <- h;
      radius_x.(i) <- (w /. 2.0) +. grid.Grid.bin_w;
      radius_y.(i) <- (h /. 2.0) +. grid.Grid.bin_h;
      let sx = lattice_sum ~r:radius_x.(i) ~step:grid.Grid.bin_w in
      let sy = lattice_sum ~r:radius_y.(i) ~step:grid.Grid.bin_h in
      let sum = sx *. sy in
      normalizer.(i) <- (if sum > 0.0 then w *. h /. sum else 0.0))
    movable;
  let target = Array.map (fun cap -> target_density *. cap) grid.Grid.capacity in
  {
    grid;
    movable;
    cell_w;
    cell_h;
    radius_x;
    radius_y;
    normalizer;
    base_normalizer = Array.copy normalizer;
    target;
    phi = Array.make (Array.length grid.Grid.capacity) 0.0;
    tx_row = Array.make grid.Grid.nx 0.0;
    dtx_row = Array.make grid.Grid.nx 0.0;
  }

(* The normalizer makes a cell's bell contributions sum to its area, so
   scaling it by a factor >= 1 is exactly "virtual area added to the
   density model": the spreading force sees an inflated cell while the
   geometry (radii, overlap, legality) is untouched.  Serial and pooled
   kernels both read [normalizer] afresh on every evaluation, so a
   mutation here is visible to an existing [par] handle. *)
let set_inflation t factors =
  Array.iter
    (fun i ->
      let f = factors.(i) in
      if not (Float.is_finite f) || f < 1.0 then
        invalid_arg "Bell.set_inflation: factors must be finite and >= 1";
      t.normalizer.(i) <- t.base_normalizer.(i) *. f)
    t.movable

let reset_inflation t =
  Array.iter (fun i -> t.normalizer.(i) <- t.base_normalizer.(i)) t.movable

let create ?frozen ?soa (d : Design.t) ~grid ~target_density =
  let s = match soa with Some s -> s | None -> Soa.of_design d in
  of_soa ?frozen s ~grid ~target_density

(* The hot kernels below inline their window walks directly — a closure
   callback taking float arguments (the old [iter_window] helper) boxes
   them on every bin visit, which used to dominate the kernels'
   allocation.  lib/refkernels keeps an independent closure-based copy of
   the window walk as the equivalence oracle. *)

(* Scatter one cell's bell contribution into [phi].  The per-column theta
   values are hoisted into [tx_row] once per cell instead of being
   recomputed for every window row — same floats, and the accumulation
   still walks (iy outer, ix inner), so [phi] is bit-identical to the
   closure-based reference in lib/refkernels. *)
let scatter_cell t ~(tx_row : float array) (phi : float array) i x y cv =
  let g = t.grid in
  let rx = t.radius_x.(i) and ry = t.radius_y.(i) in
  let ix0, ix1 =
    Grid.range_of_interval ~lo:(x -. rx) ~hi:(x +. rx) ~origin:g.Grid.die.Rect.xl
      ~step:g.Grid.bin_w ~n:g.Grid.nx
  in
  let iy0, iy1 =
    Grid.range_of_interval ~lo:(y -. ry) ~hi:(y +. ry) ~origin:g.Grid.die.Rect.yl
      ~step:g.Grid.bin_h ~n:g.Grid.ny
  in
  for ix = ix0 to ix1 do
    tx_row.(ix) <- theta ~r:rx (x -. Grid.bin_center_x g ix)
  done;
  for iy = iy0 to iy1 do
    let ty = theta ~r:ry (y -. Grid.bin_center_y g iy) in
    if ty > 0.0 then begin
      let row = iy * g.Grid.nx in
      for ix = ix0 to ix1 do
        let tx = tx_row.(ix) in
        if tx > 0.0 then phi.(row + ix) <- phi.(row + ix) +. (cv *. tx *. ty)
      done
    end
  done

let fill_phi t ~cx ~cy =
  Array.fill t.phi 0 (Array.length t.phi) 0.0;
  Array.iter
    (fun i -> scatter_cell t ~tx_row:t.tx_row t.phi i cx.(i) cy.(i) t.normalizer.(i))
    t.movable

let penalty t =
  let acc = ref 0.0 in
  for b = 0 to Array.length t.phi - 1 do
    let e = t.phi.(b) -. t.target.(b) in
    acc := !acc +. (e *. e)
  done;
  !acc

let value t ~cx ~cy =
  fill_phi t ~cx ~cy;
  penalty t

(* Accumulate one cell's density gradient against the (frozen) [phi]
   field.  [tx]/[theta'] per column and [ty]/[theta'] per row are each
   computed once — the old closure recomputed both derivs per bin — and
   the (iy outer, ix inner) accumulation order into gx/gy is unchanged,
   so the sums are bit-identical. *)
let grad_cell t ~(tx_row : float array) ~(dtx_row : float array) i x y cv ~(gx : float array)
    ~(gy : float array) =
  let g = t.grid in
  let rx = t.radius_x.(i) and ry = t.radius_y.(i) in
  let ix0, ix1 =
    Grid.range_of_interval ~lo:(x -. rx) ~hi:(x +. rx) ~origin:g.Grid.die.Rect.xl
      ~step:g.Grid.bin_w ~n:g.Grid.nx
  in
  let iy0, iy1 =
    Grid.range_of_interval ~lo:(y -. ry) ~hi:(y +. ry) ~origin:g.Grid.die.Rect.yl
      ~step:g.Grid.bin_h ~n:g.Grid.ny
  in
  for ix = ix0 to ix1 do
    let dx = x -. Grid.bin_center_x g ix in
    tx_row.(ix) <- theta ~r:rx dx;
    dtx_row.(ix) <- theta_deriv ~r:rx dx
  done;
  for iy = iy0 to iy1 do
    let dy = y -. Grid.bin_center_y g iy in
    let ty = theta ~r:ry dy in
    if ty > 0.0 then begin
      let dty = theta_deriv ~r:ry dy in
      let row = iy * g.Grid.nx in
      for ix = ix0 to ix1 do
        let tx = tx_row.(ix) in
        if tx > 0.0 then begin
          let b = row + ix in
          let e = 2.0 *. (t.phi.(b) -. t.target.(b)) in
          gx.(i) <- gx.(i) +. (e *. cv *. dtx_row.(ix) *. ty);
          gy.(i) <- gy.(i) +. (e *. cv *. tx *. dty)
        end
      done
    end
  done

let value_grad t ~cx ~cy ~gx ~gy =
  fill_phi t ~cx ~cy;
  Array.iter
    (fun i ->
      grad_cell t ~tx_row:t.tx_row ~dtx_row:t.dtx_row i cx.(i) cy.(i) t.normalizer.(i) ~gx
        ~gy)
    t.movable;
  penalty t

let bin_potential t ~cx ~cy =
  fill_phi t ~cx ~cy;
  Array.copy t.phi

module Pool = Dpp_par.Pool

type par = {
  bell : t;
  chunk_phi : float array array;  (** [Pool.chunk_count] local bin fields *)
  chunk_tx : float array array;
      (** per-chunk theta rows: chunks run on different domains concurrently,
          so they must not share the serial kernels' [t.tx_row] *)
  chunk_dtx : float array array;
}

let par_create bell =
  let nx = bell.grid.Grid.nx in
  {
    bell;
    chunk_phi =
      Array.init Pool.chunk_count (fun _ -> Array.make (Array.length bell.phi) 0.0);
    chunk_tx = Array.init Pool.chunk_count (fun _ -> Array.make nx 0.0);
    chunk_dtx = Array.init Pool.chunk_count (fun _ -> Array.make nx 0.0);
  }

(* Chunked phi accumulation: each of the [Pool.chunk_count] fixed chunks
   of the movable list lands in its own local bin field, and every bin is
   then folded over the chunks in ascending chunk order.  The chunk
   layout never depends on the worker count, so the result is bit-stable
   across pool sizes — though not bit-equal to [fill_phi], whose single
   accumulator sums contributions in movable order. *)
let fill_phi_par p pool ~cx ~cy =
  let t = p.bell in
  let nbins = Array.length t.phi in
  Pool.iter_chunks pool ~n:(Array.length t.movable) (fun ~worker:_ ~chunk ~lo ~hi ->
      let local = p.chunk_phi.(chunk) in
      let tx_row = p.chunk_tx.(chunk) in
      Array.fill local 0 nbins 0.0;
      for k = lo to hi - 1 do
        let i = t.movable.(k) in
        scatter_cell t ~tx_row local i cx.(i) cy.(i) t.normalizer.(i)
      done);
  Pool.iter_chunks pool ~n:nbins (fun ~worker:_ ~chunk:_ ~lo ~hi ->
      for b = lo to hi - 1 do
        let acc = ref 0.0 in
        for c = 0 to Pool.chunk_count - 1 do
          acc := !acc +. p.chunk_phi.(c).(b)
        done;
        t.phi.(b) <- acc.contents
      done)

let par_value p pool ~cx ~cy =
  fill_phi_par p pool ~cx ~cy;
  penalty p.bell

let par_value_grad p pool ~cx ~cy ~gx ~gy =
  fill_phi_par p pool ~cx ~cy;
  let t = p.bell in
  (* Each movable cell owns its gx/gy slots and reads the (now frozen)
     phi field, so the fan-out is write-disjoint and the per-cell window
     walk keeps the serial accumulation order — deterministic under any
     partition. *)
  Pool.iter_chunks pool ~n:(Array.length t.movable) (fun ~worker:_ ~chunk ~lo ~hi ->
      let tx_row = p.chunk_tx.(chunk) in
      let dtx_row = p.chunk_dtx.(chunk) in
      for k = lo to hi - 1 do
        let i = t.movable.(k) in
        grad_cell t ~tx_row ~dtx_row i cx.(i) cy.(i) t.normalizer.(i) ~gx ~gy
      done);
  penalty t
