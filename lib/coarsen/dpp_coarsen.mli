(** Structure-aware netlist coarsening for multilevel global placement.

    A {!level} maps a fine design onto a coarse one: every fine cell
    belongs to exactly one cluster, every cluster is one coarse cell.
    The first level seeds one cluster per datapath group ({!Dpp_structure.Dgroup})
    — a bit-slice is never split across clusters — then matches the
    remaining movable cells by heavy-edge scores over the hypergraph,
    with an area cap and seeded deterministic tie-breaking.  Fixed cells
    and pads are preserved one-to-one.

    Determinism: all randomness comes from the caller's seed through
    {!Dpp_util.Rng}; building the same design with the same seed yields
    identical levels, independent of wall clock or worker count. *)

type level = {
  fine : Dpp_netlist.Design.t;
  coarse : Dpp_netlist.Design.t;
  cluster_of : int array;
      (** fine cell id -> coarse cell id; defined for {e every} fine
          cell (fixed cells map to their preserved singleton) *)
  members : int array array;
      (** coarse cell id -> fine member ids, ascending *)
  group_of : (int * Dpp_structure.Dgroup.t) list;
      (** coarse ids that collapse a whole datapath group, with the
          group they carry (its member order is the bit order) *)
  protected : bool array;
      (** coarse ids that must stay singletons at deeper levels (group
          clusters and clusters inherited from protected fine cells) *)
}

val build :
  ?arena:Dpp_util.Arena.t ->
  ?groups:Dpp_structure.Dgroup.t list ->
  ?min_cells:int ->
  ?max_levels:int ->
  ?area_cap_factor:float ->
  seed:int ->
  Dpp_netlist.Design.t ->
  level list
(** [build ~groups ~seed d] is the coarsening hierarchy, finest level
    first ([levels.(k).coarse == levels.(k+1).fine]).  [groups] seeds
    the first level only (deeper levels keep those clusters intact as
    protected singletons).  Stops when the coarse design has at most
    [min_cells] movables (default 500), after [max_levels] levels
    (default 3), or when a level shrinks the movable count by less than
    10%.  [area_cap_factor] (default 4.0) bounds a merged cluster's area
    to that multiple of the level's mean movable-cell area.  Returns
    [[]] when the design is already at or below the floor, or when its
    largest connected component of movable cells is itself at or below
    [min_cells] — a PEKO-style dust of tiny islands where heavy-edge
    matching degenerates; flat GP is the better start there. *)

val cluster_centers :
  ?arena:Dpp_util.Arena.t ->
  level ->
  cx:float array ->
  cy:float array ->
  float array * float array
(** Area-weighted centroid of each cluster's members, evaluated over the
    fine center arrays — the upward (restriction) half of the V-cycle.
    Fixed singletons keep their fine centers.  With [arena], the returned
    arrays are arena buffers keyed by the coarse design's name: valid
    until the next restriction over the same hierarchy, which is exactly
    the V-cycle's reuse pattern. *)

val interpolate :
  level -> ccx:float array -> ccy:float array -> cx:float array -> cy:float array -> unit
(** The downward (prolongation) half: writes each movable member's
    center into the fine arrays [cx]/[cy] from its cluster's solved
    center [ccx]/[ccy].  Plain cluster members land on the cluster
    center; group clusters are re-seeded in bit order at their idealized
    array offsets from the cluster's (clamped) origin.  Fixed cells are
    left untouched. *)
