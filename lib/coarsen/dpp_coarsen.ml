module Rng = Dpp_util.Rng
module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Design = Dpp_netlist.Design
module Builder = Dpp_netlist.Builder
module Hypergraph = Dpp_netlist.Hypergraph
module Dgroup = Dpp_structure.Dgroup

let src = Logs.Src.create "dpp.coarsen" ~doc:"multilevel coarsening"

module Log = (val Logs.src_log src : Logs.LOG)

type level = {
  fine : Design.t;
  coarse : Design.t;
  cluster_of : int array;
  members : int array array;
  group_of : (int * Dgroup.t) list;
  protected : bool array;
}

(* nets wider than this are control/clock-like: they connect everything
   to everything and would make every pair look like a heavy edge *)
let max_net_degree = 16

let cell_area (d : Design.t) i =
  let c = Design.cell d i in
  c.Types.c_width *. c.Types.c_height

(* Merged clusters keep the exact member area; the shape spreads over
   just enough rows that no cluster grows wider than half the die. *)
let cluster_shape (d : Design.t) ~area =
  let die_w = Rect.width d.Design.die in
  let rh = d.Design.row_height in
  let rows = max 1 (int_of_float (ceil (area /. rh /. (0.5 *. die_w)))) in
  let h = float_of_int rows *. rh in
  area /. h, h

(* Per-level scratch comes from the caller's arena when one is given:
   the V-cycle builds levels strictly one after another, so each level's
   matching buffers recycle the previous level's instead of piling up
   garbage for the major GC to find mid-coarsening. *)
let scratch_ints ?arena key n =
  match arena with Some a -> Dpp_util.Arena.ints a key n | None -> Array.make n 0

let scratch_floats ?arena key n =
  match arena with Some a -> Dpp_util.Arena.floats a key n | None -> Array.make n 0.0

let coarsen_once ?arena ~rng ~groups ~protect ~area_cap_factor (fine : Design.t) =
  let nc = Design.num_cells fine in
  let cluster_of = Array.make nc (-1) in
  let next = ref 0 in
  let new_cluster () =
    let c = !next in
    incr next;
    c
  in
  (* 1. structure-aware seeds: each datapath group collapses into one
     cluster, so a bit-slice is never split across clusters *)
  let group_of = ref [] in
  List.iter
    (fun (dg : Dgroup.t) ->
      let eligible =
        Array.length dg.Dgroup.cells > 0
        && Array.for_all
             (fun c ->
               cluster_of.(c) < 0
               && (not (protect c))
               && (Design.cell fine c).Types.c_kind = Types.Movable)
             dg.Dgroup.cells
      in
      if eligible then begin
        let cid = new_cluster () in
        Array.iter (fun c -> cluster_of.(c) <- cid) dg.Dgroup.cells;
        group_of := (cid, dg) :: !group_of
      end
      else
        Log.debug (fun m ->
            m "group with %d cells not clustered (overlap or fixed member)"
              (Array.length dg.Dgroup.cells)))
    groups;
  let group_of = List.rev !group_of in
  (* 2. heavy-edge matching over the remaining movables, visited in a
     seeded shuffle; ties break on the lower cell id so the result is a
     pure function of (design, groups, seed) *)
  let h = Hypergraph.build fine in
  let movable = Design.movable_ids fine in
  let free = Array.of_list (List.filter (fun i -> cluster_of.(i) < 0) (Array.to_list movable)) in
  let mean_area =
    if Array.length movable = 0 then 1.0
    else
      Array.fold_left (fun acc i -> acc +. cell_area fine i) 0.0 movable
      /. float_of_int (Array.length movable)
  in
  let area_cap = area_cap_factor *. mean_area in
  let order = Array.copy free in
  Rng.shuffle rng order;
  let protected_src = Array.make nc false in
  (* candidate scores live in a flat array indexed by cell id, with a
     per-u stamp (the id of the seed that last touched the slot) instead
     of clearing between seeds — the Hashtbl this replaces dominated the
     matching pass on 100k+ cell designs.  The winner rule (max score,
     lower id on ties) has a unique answer, so scanning the touched list
     in insertion order picks the same mate the unordered fold did. *)
  let score = scratch_floats ?arena "coarsen.score" nc in
  let stamp = scratch_ints ?arena "coarsen.stamp" nc in
  (* a recycled stamp buffer holds stale cell ids, which are exactly the
     values the stamping scheme uses — reset to the impossible seed *)
  Array.fill stamp 0 nc (-1);
  let touched = ref (Array.make 256 0) in
  let n_touched = ref 0 in
  let push v =
    if !n_touched = Array.length !touched then begin
      let bigger = Array.make (2 * !n_touched) 0 in
      Array.blit !touched 0 bigger 0 !n_touched;
      touched := bigger
    end;
    !touched.(!n_touched) <- v;
    incr n_touched
  in
  Array.iter
    (fun u ->
      if cluster_of.(u) < 0 then
        if protect u then begin
          (* clusters formed at an earlier level stay intact: singleton *)
          let cid = new_cluster () in
          cluster_of.(u) <- cid;
          protected_src.(u) <- true
        end
        else begin
          n_touched := 0;
          let a_u = cell_area fine u in
          Hypergraph.iter_nets_of_cell h u (fun n ->
              let deg = Hypergraph.net_degree h n in
              if deg >= 2 && deg <= max_net_degree then begin
                let w = (Design.net fine n).Types.n_weight /. float_of_int (deg - 1) in
                Hypergraph.iter_cells_of_net h n (fun v ->
                    if
                      v <> u
                      && cluster_of.(v) < 0
                      && (not (protect v))
                      && (Design.cell fine v).Types.c_kind = Types.Movable
                      && a_u +. cell_area fine v <= area_cap
                    then begin
                      if stamp.(v) <> u then begin
                        stamp.(v) <- u;
                        score.(v) <- 0.0;
                        push v
                      end;
                      score.(v) <- w +. score.(v)
                    end)
              end);
          let best_v = ref (-1) in
          let best_s = ref 0.0 in
          for t = 0 to !n_touched - 1 do
            let v = (!touched).(t) in
            let s = score.(v) in
            if !best_v < 0 || not (!best_s > s || (Float.equal !best_s s && !best_v < v))
            then begin
              best_v := v;
              best_s := s
            end
          done;
          let cid = new_cluster () in
          cluster_of.(u) <- cid;
          if !best_v >= 0 then cluster_of.(!best_v) <- cid
        end)
    order;
  (* 3. fixed cells and pads are preserved one-to-one *)
  Array.iteri
    (fun i (c : Types.cell) ->
      if c.Types.c_kind <> Types.Movable then cluster_of.(i) <- new_cluster ())
    fine.Design.cells;
  let k = !next in
  let counts = scratch_ints ?arena "coarsen.counts" k in
  Array.iter (fun cid -> counts.(cid) <- counts.(cid) + 1) cluster_of;
  let members = Array.init k (fun cid -> Array.make counts.(cid) (-1)) in
  let fill = scratch_ints ?arena "coarsen.fill" k in
  for i = 0 to nc - 1 do
    let cid = cluster_of.(i) in
    members.(cid).(fill.(cid)) <- i;
    fill.(cid) <- fill.(cid) + 1
  done;
  (* 4. the coarse design: one cell per cluster, ids equal cluster ids *)
  let is_group = Array.make k false in
  List.iter (fun (cid, _) -> is_group.(cid) <- true) group_of;
  let group_dims = Array.make k (0.0, 0.0) in
  List.iter
    (fun (cid, (dg : Dgroup.t)) -> group_dims.(cid) <- (dg.Dgroup.width, dg.Dgroup.height))
    group_of;
  let die = fine.Design.die in
  let b =
    Builder.create ~name:(fine.Design.name ^ "#") ~die ~row_height:fine.Design.row_height
      ~site_width:fine.Design.site_width ()
  in
  let protected = Array.make k false in
  for cid = 0 to k - 1 do
    let ms = members.(cid) in
    let id =
      if Array.length ms = 1 then begin
        let i = ms.(0) in
        let c = Design.cell fine i in
        let id =
          Builder.add_cell b
            ~name:(Printf.sprintf "k%d" cid)
            ~master:c.Types.c_master ~w:c.Types.c_width ~h:c.Types.c_height
            ~kind:c.Types.c_kind
        in
        Builder.set_position b id ~x:fine.Design.x.(i) ~y:fine.Design.y.(i);
        Builder.set_orient b id fine.Design.orient.(i);
        protected.(cid) <- protected_src.(i);
        id
      end
      else begin
        let w, h =
          if is_group.(cid) then group_dims.(cid)
          else begin
            let area = Array.fold_left (fun acc i -> acc +. cell_area fine i) 0.0 ms in
            cluster_shape fine ~area
          end
        in
        let id =
          Builder.add_cell b
            ~name:(Printf.sprintf "k%d" cid)
            ~master:"cluster" ~w ~h ~kind:Types.Movable
        in
        Builder.set_position b id
          ~x:(((die.Rect.xl +. die.Rect.xh) /. 2.0) -. (w /. 2.0))
          ~y:(((die.Rect.yl +. die.Rect.yh) /. 2.0) -. (h /. 2.0));
        protected.(cid) <- is_group.(cid);
        id
      end
    in
    assert (id = cid)
  done;
  (* 5. coarse nets: one net per distinct incident-cluster set (weights
     merged), one center pin per (net, cluster); single-cluster nets are
     internal and vanish.  Keys are visited in first-seen order over the
     ascending fine nets, so net ids are deterministic too. *)
  let net_keys = Hashtbl.create (Design.num_nets fine) in
  let key_order = ref [] in
  for n = 0 to Design.num_nets fine - 1 do
    let net = Design.net fine n in
    let cs =
      Array.to_list (Array.map (fun p -> cluster_of.((Design.pin fine p).Types.p_cell)) net.Types.n_pins)
      |> List.sort_uniq compare
    in
    match cs with
    | [] | [ _ ] -> ()
    | _ -> (
      match Hashtbl.find_opt net_keys cs with
      | Some w -> Hashtbl.replace net_keys cs (w +. net.Types.n_weight)
      | None ->
        Hashtbl.add net_keys cs net.Types.n_weight;
        key_order := cs :: !key_order)
  done;
  List.iter
    (fun cs ->
      let weight = Hashtbl.find net_keys cs in
      let pins = List.map (fun cid -> Builder.add_pin b ~cell:cid ~dir:Types.Inout ()) cs in
      ignore (Builder.add_net b ~weight pins))
    (List.rev !key_order);
  let coarse = Builder.finish b in
  { fine; coarse; cluster_of; members; group_of; protected }

(* Size of the largest connected component of movable cells (connectivity
   through nets of any degree).  PEKO-style benches decompose into
   thousands of tiny islands; heavy-edge matching over such dust produces
   near-random clusters and the V-cycle then amplifies rather than
   reduces the wirelength gap (the 33.8x PEKO regression).  When even
   the largest island is at or below the flat-GP floor, coarsening has
   nothing to exploit and [build] falls back to flat GP. *)
let largest_movable_component (d : Design.t) =
  let nc = Design.num_cells d in
  if nc = 0 then 0
  else begin
    let uf = Dpp_util.Union_find.create nc in
    for n = 0 to Design.num_nets d - 1 do
      let pins = (Design.net d n).Types.n_pins in
      if Array.length pins >= 2 then begin
        let c0 = (Design.pin d pins.(0)).Types.p_cell in
        for k = 1 to Array.length pins - 1 do
          Dpp_util.Union_find.union uf c0 (Design.pin d pins.(k)).Types.p_cell
        done
      end
    done;
    let counts = Array.make nc 0 in
    let best = ref 0 in
    Array.iter
      (fun i ->
        let r = Dpp_util.Union_find.find uf i in
        counts.(r) <- counts.(r) + 1;
        if counts.(r) > !best then best := counts.(r))
      (Design.movable_ids d);
    !best
  end

let build ?arena ?(groups = []) ?(min_cells = 500) ?(max_levels = 3)
    ?(area_cap_factor = 4.0) ~seed (root : Design.t) =
  let rng = Rng.create (seed lxor 0x436f6172) in
  let rec go acc depth fine groups protect =
    let n_mov = Array.length (Design.movable_ids fine) in
    if depth >= max_levels || n_mov <= min_cells then List.rev acc
    else begin
      let lvl = coarsen_once ?arena ~rng:(Rng.split rng) ~groups ~protect ~area_cap_factor fine in
      let n_coarse = Array.length (Design.movable_ids lvl.coarse) in
      Log.info (fun m ->
          m "level %d: %d -> %d movables (%d group clusters)" (depth + 1) n_mov n_coarse
            (List.length lvl.group_of));
      if float_of_int n_coarse > 0.9 *. float_of_int n_mov then List.rev acc
      else go (lvl :: acc) (depth + 1) lvl.coarse [] (fun i -> lvl.protected.(i))
    end
  in
  let n_mov = Array.length (Design.movable_ids root) in
  if n_mov > min_cells then begin
    let lcc = largest_movable_component root in
    if lcc <= min_cells then begin
      Log.info (fun m ->
          m "disconnected design: largest movable component %d <= %d; flat GP fallback" lcc
            min_cells);
      []
    end
    else go [] 0 root groups (fun _ -> false)
  end
  else go [] 0 root groups (fun _ -> false)

let cluster_centers ?arena (lvl : level) ~cx ~cy =
  let k = Design.num_cells lvl.coarse in
  (* keyed by the coarse design's name, which encodes the level depth
     ("name#", "name##", ...) — each level of one V-cycle holds its own
     buffer, while repeated V-cycles over one hierarchy recycle.  Every
     slot is written below, so the raw (non-zeroing) variant is safe:
     the recycled buffer can never be this call's [cx]/[cy] input (those
     live under different keys or outside the arena). *)
  let raw key n =
    match arena with
    | Some a -> Dpp_util.Arena.floats_raw a key n
    | None -> Array.make n 0.0
  in
  let ccx = raw ("coarsen.ccx:" ^ lvl.coarse.Design.name) k
  and ccy = raw ("coarsen.ccy:" ^ lvl.coarse.Design.name) k in
  for cid = 0 to k - 1 do
    let ms = lvl.members.(cid) in
    if Array.length ms = 1 then begin
      ccx.(cid) <- cx.(ms.(0));
      ccy.(cid) <- cy.(ms.(0))
    end
    else begin
      let area = ref 0.0 and sx = ref 0.0 and sy = ref 0.0 in
      Array.iter
        (fun i ->
          let a = cell_area lvl.fine i in
          area := !area +. a;
          sx := !sx +. (a *. cx.(i));
          sy := !sy +. (a *. cy.(i)))
        ms;
      let a = if !area > 0.0 then !area else 1.0 in
      ccx.(cid) <- !sx /. a;
      ccy.(cid) <- !sy /. a
    end
  done;
  ccx, ccy

let interpolate (lvl : level) ~ccx ~ccy ~cx ~cy =
  let die = lvl.fine.Design.die in
  let is_group = Array.make (Design.num_cells lvl.coarse) false in
  List.iter (fun (cid, _) -> is_group.(cid) <- true) lvl.group_of;
  (* group clusters re-seed their members in bit order at the idealized
     array offsets from the solved cluster center *)
  List.iter
    (fun (cid, (dg : Dgroup.t)) ->
      let w = dg.Dgroup.width and h = dg.Dgroup.height in
      let ox = ccx.(cid) -. (w /. 2.0) and oy = ccy.(cid) -. (h /. 2.0) in
      let ox = min (max ox die.Rect.xl) (max die.Rect.xl (die.Rect.xh -. w)) in
      let oy = min (max oy die.Rect.yl) (max die.Rect.yl (die.Rect.yh -. h)) in
      Array.iteri
        (fun k i ->
          cx.(i) <- ox +. dg.Dgroup.off_x.(k);
          cy.(i) <- oy +. dg.Dgroup.off_y.(k))
        dg.Dgroup.cells)
    lvl.group_of;
  Array.iteri
    (fun cid ms ->
      if (not is_group.(cid)) && (Design.cell lvl.coarse cid).Types.c_kind = Types.Movable
      then
        Array.iter
          (fun i ->
            let c = Design.cell lvl.fine i in
            let hw = c.Types.c_width /. 2.0 and hh = c.Types.c_height /. 2.0 in
            cx.(i) <- min (max ccx.(cid) (die.Rect.xl +. hw)) (die.Rect.xh -. hw);
            cy.(i) <- min (max ccy.(cid) (die.Rect.yl +. hh)) (die.Rect.yh -. hh))
          ms)
    lvl.members
