(** Weighted-average smooth wirelength (Hsu, Balabanov, Chang — the model
    the same authors introduced in their TSV placement line and proved to
    dominate log-sum-exp in modelling error).  Per net and axis,

    [W = sum x e^(x/gamma) / sum e^(x/gamma) - sum x e^(-x/gamma) / sum e^(-x/gamma)]

    which {e underestimates} HPWL and converges to it as [gamma -> 0].
    Implemented with the max/min-shift normalisation the TCAD'13 paper calls
    out as necessary for numerical stability. *)

val value : Pins.t -> gamma:float -> cx:float array -> cy:float array -> float

val value_grad :
  Pins.t ->
  gamma:float ->
  cx:float array ->
  cy:float array ->
  gx:float array ->
  gy:float array ->
  float
(** Same contract as {!Lse.value_grad}: gradients accumulate into [gx]/[gy]. *)

val error_bound : gamma:float -> float
(** Per-net, per-axis worst-case deviation from HPWL: the WA model error is
    bounded by [gamma] times a small constant; we use the loose bound
    [4 * gamma] from the TCAD analysis for tests. *)

val axis_value_grad :
  float array ->
  int ->
  gamma:float ->
  w:float array ->
  u:float array ->
  v:float array ->
  want_grad:bool ->
  float
(** Same contract as {!Lse.axis_value_grad}: the per-net, per-axis kernel,
    exposed so {!Par_grad} and the batched gradient oracle reuse the exact
    serial arithmetic. *)
