module Soa = Dpp_netlist.Soa
module I32 = Dpp_util.Compact.I32
module Pool = Dpp_par.Pool

type t = {
  pins : Pins.t;
  cx : float array;
  cy : float array;
  pin_net : I32.t;
  (* net -> pins CSR, aliased from the flat core: allocation-free,
     cache-friendly rescans *)
  net_off : I32.t;
  net_pin : I32.t;
  weight : float array;
  degree : int array;
  (* committed per-net boxes with extreme multiplicities *)
  xmin : float array;
  xmax : float array;
  ymin : float array;
  ymax : float array;
  nxmin : int array;
  nxmax : int array;
  nymin : int array;
  nymax : int array;
  (* staged copies, valid for nets with stamp = txn *)
  sxmin : float array;
  sxmax : float array;
  symin : float array;
  symax : float array;
  snxmin : int array;
  snxmax : int array;
  snymin : int array;
  snymax : int array;
  stamp : int array;
  cell_stamp : int array;
  mutable txn : int;
  (* transaction journals: preallocated stacks, no per-move allocation *)
  mutable touched : int array;
  mutable n_touched : int;
  mutable moved_cell : int array;
  mutable moved_x : float array;
  mutable moved_y : float array;
  mutable n_moved : int;
  mutable mirrored : int array;
  mutable n_mirrored : int;
  mutable total : float;
  mutable active : bool;
  (* dirty-set export: nets whose committed box changed since the last
     [clear_dirty] (or since build), in first-dirtied order *)
  dirty_mark : bool array;
  mutable dirty : int array;
  mutable n_dirty : int;
}

(* Nets up to this degree skip the multiplicity bookkeeping entirely: any
   staged change just marks them rescan-dirty, and the O(degree) rescan at
   [delta] time costs about as much as one pin's counter cascade would. *)
let small_degree = 8

(* Recompute net [n]'s box and extreme multiplicities from the live
   coordinates into the given arrays.  Only called for degree >= 2. *)
let scan_into t n ~bxmin ~bxmax ~bymin ~bymax ~cxmin ~cxmax ~cymin ~cymax =
  let pin_cell = t.pins.Pins.pin_cell in
  let off_x = t.pins.Pins.off_x and off_y = t.pins.Pins.off_y in
  let xmin = ref infinity and xmax = ref neg_infinity in
  let ymin = ref infinity and ymax = ref neg_infinity in
  let nxmin = ref 0 and nxmax = ref 0 and nymin = ref 0 and nymax = ref 0 in
  for i = I32.uget t.net_off n to I32.uget t.net_off (n + 1) - 1 do
    let p = I32.uget t.net_pin i in
    let c = I32.uget pin_cell p in
    let x = t.cx.(c) +. off_x.(p) and y = t.cy.(c) +. off_y.(p) in
    if x < !xmin then begin xmin := x; nxmin := 1 end
    else if x = !xmin then incr nxmin;
    if x > !xmax then begin xmax := x; nxmax := 1 end
    else if x = !xmax then incr nxmax;
    if y < !ymin then begin ymin := y; nymin := 1 end
    else if y = !ymin then incr nymin;
    if y > !ymax then begin ymax := y; nymax := 1 end
    else if y = !ymax then incr nymax
  done;
  bxmin.(n) <- !xmin;
  bxmax.(n) <- !xmax;
  bymin.(n) <- !ymin;
  bymax.(n) <- !ymax;
  cxmin.(n) <- !nxmin;
  cxmax.(n) <- !nxmax;
  cymin.(n) <- !nymin;
  cymax.(n) <- !nymax

let clear_dirty t =
  for k = 0 to t.n_dirty - 1 do
    t.dirty_mark.(t.dirty.(k)) <- false
  done;
  t.n_dirty <- 0

let build ?pool ?reuse (pins : Pins.t) ~cx ~cy =
  let s = pins.Pins.soa in
  let nn = Soa.num_nets s in
  let t =
    match reuse with
    | Some (old : t)
      when old.pins == pins && Array.length old.xmin = nn && not old.active ->
      (* Recycle every per-net array of a retired cache over the same pin
         view: the box scan below overwrites all of them, the stamps stay
         valid because [txn] keeps counting up, and the dirty set is
         emptied so the rebuilt cache starts clean.  Only the (small)
         record itself is fresh — rescans allocate nothing. *)
      clear_dirty old;
      { old with cx; cy; total = 0.0 }
    | _ ->
    {
      pins;
      cx;
      cy;
      pin_net = s.Soa.pin_net;
      net_off = s.Soa.net_pin_off;
      net_pin = s.Soa.net_pin;
      weight = s.Soa.net_weight;
      degree = Array.init nn (fun n -> Soa.net_degree s n);
      xmin = Array.make nn 0.0;
      xmax = Array.make nn 0.0;
      ymin = Array.make nn 0.0;
      ymax = Array.make nn 0.0;
      nxmin = Array.make nn 0;
      nxmax = Array.make nn 0;
      nymin = Array.make nn 0;
      nymax = Array.make nn 0;
      sxmin = Array.make nn 0.0;
      sxmax = Array.make nn 0.0;
      symin = Array.make nn 0.0;
      symax = Array.make nn 0.0;
      snxmin = Array.make nn 0;
      snxmax = Array.make nn 0;
      snymin = Array.make nn 0;
      snymax = Array.make nn 0;
      stamp = Array.make nn (-1);
      cell_stamp = Array.make (Soa.num_cells s) (-1);
      txn = 0;
      touched = Array.make 64 0;
      n_touched = 0;
      moved_cell = Array.make 16 0;
      moved_x = Array.make 16 0.0;
      moved_y = Array.make 16 0.0;
      n_moved = 0;
      mirrored = Array.make 16 0;
      n_mirrored = 0;
      total = 0.0;
      active = false;
      dirty_mark = Array.make nn false;
      dirty = Array.make 64 0;
      n_dirty = 0;
    }
  in
  (* Per-net scans write disjoint slots, so they can fan out over a pool;
     the total is then folded serially in ascending net order, which makes
     the pooled build bit-identical to the serial one. *)
  let scan_range lo hi =
    for n = lo to hi - 1 do
      if t.degree.(n) >= 2 then
        scan_into t n ~bxmin:t.xmin ~bxmax:t.xmax ~bymin:t.ymin ~bymax:t.ymax ~cxmin:t.nxmin
          ~cxmax:t.nxmax ~cymin:t.nymin ~cymax:t.nymax
    done
  in
  (match pool with
  | None -> scan_range 0 nn
  | Some pool ->
    Pool.iter_chunks pool ~n:nn (fun ~worker:_ ~chunk:_ ~lo ~hi -> scan_range lo hi));
  for n = 0 to nn - 1 do
    if t.degree.(n) >= 2 then
      t.total <-
        t.total
        +. (t.weight.(n) *. (t.xmax.(n) -. t.xmin.(n) +. t.ymax.(n) -. t.ymin.(n)))
  done;
  t

let total t = t.total
let in_transaction t = t.active
let net_box t n = t.xmin.(n), t.xmax.(n), t.ymin.(n), t.ymax.(n)

let grow_int a = let b = Array.make (2 * Array.length a) 0 in Array.blit a 0 b 0 (Array.length a); b
let grow_float a = let b = Array.make (2 * Array.length a) 0.0 in Array.blit a 0 b 0 (Array.length a); b

(* Small-net variant of [touch]: no staged copy, no counters — small nets
   are unconditionally rescanned by [resolve], so just record the touch. *)
let touch_dirty t n =
  if t.stamp.(n) <> t.txn then begin
    t.stamp.(n) <- t.txn;
    if t.n_touched = Array.length t.touched then t.touched <- grow_int t.touched;
    t.touched.(t.n_touched) <- n;
    t.n_touched <- t.n_touched + 1
  end

let touch t n =
  if t.stamp.(n) <> t.txn then begin
    t.stamp.(n) <- t.txn;
    if t.n_touched = Array.length t.touched then t.touched <- grow_int t.touched;
    t.touched.(t.n_touched) <- n;
    t.n_touched <- t.n_touched + 1;
    t.sxmin.(n) <- t.xmin.(n);
    t.sxmax.(n) <- t.xmax.(n);
    t.symin.(n) <- t.ymin.(n);
    t.symax.(n) <- t.ymax.(n);
    t.snxmin.(n) <- t.nxmin.(n);
    t.snxmax.(n) <- t.nxmax.(n);
    t.snymin.(n) <- t.nymin.(n);
    t.snymax.(n) <- t.nymax.(n)
  end

(* Extreme-multiplicity bookkeeping.  Values are always computed as
   [coordinate +. offset], so a pin sitting at an extreme compares equal
   bit-for-bit.  When a counter hits 0 the bound is stale (strict): the
   true extreme moved away and only a full rescan can recover it — that
   rescan is deferred to [delta]/[commit], and only runs for nets where a
   moved pin was the unique extreme. *)
let remove_x t n v =
  if v = t.sxmin.(n) then t.snxmin.(n) <- t.snxmin.(n) - 1;
  if v = t.sxmax.(n) then t.snxmax.(n) <- t.snxmax.(n) - 1

let remove_y t n v =
  if v = t.symin.(n) then t.snymin.(n) <- t.snymin.(n) - 1;
  if v = t.symax.(n) then t.snymax.(n) <- t.snymax.(n) - 1

let add_x t n v =
  if v < t.sxmin.(n) then begin
    t.sxmin.(n) <- v;
    t.snxmin.(n) <- 1
  end
  else if v = t.sxmin.(n) then t.snxmin.(n) <- t.snxmin.(n) + 1;
  if v > t.sxmax.(n) then begin
    t.sxmax.(n) <- v;
    t.snxmax.(n) <- 1
  end
  else if v = t.sxmax.(n) then t.snxmax.(n) <- t.snxmax.(n) + 1

let add_y t n v =
  if v < t.symin.(n) then begin
    t.symin.(n) <- v;
    t.snymin.(n) <- 1
  end
  else if v = t.symin.(n) then t.snymin.(n) <- t.snymin.(n) + 1;
  if v > t.symax.(n) then begin
    t.symax.(n) <- v;
    t.snymax.(n) <- 1
  end
  else if v = t.symax.(n) then t.snymax.(n) <- t.snymax.(n) + 1

let move_cell t i nx ny =
  t.active <- true;
  if t.cell_stamp.(i) <> t.txn then begin
    t.cell_stamp.(i) <- t.txn;
    if t.n_moved = Array.length t.moved_cell then begin
      t.moved_cell <- grow_int t.moved_cell;
      t.moved_x <- grow_float t.moved_x;
      t.moved_y <- grow_float t.moved_y
    end;
    t.moved_cell.(t.n_moved) <- i;
    t.moved_x.(t.n_moved) <- t.cx.(i);
    t.moved_y.(t.n_moved) <- t.cy.(i);
    t.n_moved <- t.n_moved + 1
  end;
  let ox = t.cx.(i) and oy = t.cy.(i) in
  let off_x = t.pins.Pins.off_x and off_y = t.pins.Pins.off_y in
  let s = t.pins.Pins.soa in
  for k = I32.uget s.Soa.cell_pin_off i to I32.uget s.Soa.cell_pin_off (i + 1) - 1 do
    let p = I32.uget s.Soa.cell_pin k in
    let n = I32.uget t.pin_net p in
    if n >= 0 then begin
      let deg = t.degree.(n) in
      if deg >= 2 then
        if deg <= small_degree then touch_dirty t n
        else begin
          touch t n;
          remove_x t n (ox +. off_x.(p));
          remove_y t n (oy +. off_y.(p));
          add_x t n (nx +. off_x.(p));
          add_y t n (ny +. off_y.(p))
        end
    end
  done;
  t.cx.(i) <- nx;
  t.cy.(i) <- ny

let flip_cell t i =
  t.active <- true;
  if t.n_mirrored = Array.length t.mirrored then t.mirrored <- grow_int t.mirrored;
  t.mirrored.(t.n_mirrored) <- i;
  t.n_mirrored <- t.n_mirrored + 1;
  let x = t.cx.(i) in
  let off_x = t.pins.Pins.off_x in
  let s = t.pins.Pins.soa in
  for k = I32.uget s.Soa.cell_pin_off i to I32.uget s.Soa.cell_pin_off (i + 1) - 1 do
    let p = I32.uget s.Soa.cell_pin k in
    let off = off_x.(p) in
    let n = I32.uget t.pin_net p in
    if n >= 0 then begin
      let deg = t.degree.(n) in
      if deg >= 2 then
        if deg <= small_degree then touch_dirty t n
        else begin
          touch t n;
          remove_x t n (x +. off);
          add_x t n (x -. off)
        end
    end;
    off_x.(p) <- -.off
  done

(* Counter-free staged box rescan for small nets (their committed and
   staged multiplicity slots are never read). *)
let scan_box t n =
  let pin_cell = t.pins.Pins.pin_cell in
  let off_x = t.pins.Pins.off_x and off_y = t.pins.Pins.off_y in
  let xmin = ref infinity and xmax = ref neg_infinity in
  let ymin = ref infinity and ymax = ref neg_infinity in
  for i = I32.uget t.net_off n to I32.uget t.net_off (n + 1) - 1 do
    let p = I32.uget t.net_pin i in
    let c = I32.uget pin_cell p in
    let x = t.cx.(c) +. off_x.(p) and y = t.cy.(c) +. off_y.(p) in
    if x < !xmin then xmin := x;
    if x > !xmax then xmax := x;
    if y < !ymin then ymin := y;
    if y > !ymax then ymax := y
  done;
  t.sxmin.(n) <- !xmin;
  t.sxmax.(n) <- !xmax;
  t.symin.(n) <- !ymin;
  t.symax.(n) <- !ymax

let resolve t n =
  if t.degree.(n) <= small_degree then scan_box t n
  else if t.snxmin.(n) = 0 || t.snxmax.(n) = 0 || t.snymin.(n) = 0 || t.snymax.(n) = 0 then
    scan_into t n ~bxmin:t.sxmin ~bxmax:t.sxmax ~bymin:t.symin ~bymax:t.symax ~cxmin:t.snxmin
      ~cxmax:t.snxmax ~cymin:t.snymin ~cymax:t.snymax

let delta t =
  let acc = ref 0.0 in
  for k = 0 to t.n_touched - 1 do
    let n = t.touched.(k) in
    resolve t n;
    let staged = t.sxmax.(n) -. t.sxmin.(n) +. t.symax.(n) -. t.symin.(n) in
    let committed = t.xmax.(n) -. t.xmin.(n) +. t.ymax.(n) -. t.ymin.(n) in
    acc := !acc +. (t.weight.(n) *. (staged -. committed))
  done;
  !acc

let finish t =
  t.txn <- t.txn + 1;
  t.n_touched <- 0;
  t.n_moved <- 0;
  t.n_mirrored <- 0;
  t.active <- false

let mark_dirty t n =
  if not t.dirty_mark.(n) then begin
    t.dirty_mark.(n) <- true;
    if t.n_dirty = Array.length t.dirty then t.dirty <- grow_int t.dirty;
    t.dirty.(t.n_dirty) <- n;
    t.n_dirty <- t.n_dirty + 1
  end

let dirty_nets t =
  let a = Array.sub t.dirty 0 t.n_dirty in
  Array.sort compare a;
  a

let commit t =
  if t.active then begin
    t.total <- t.total +. delta t;
    for k = 0 to t.n_touched - 1 do
      let n = t.touched.(k) in
      if
        t.xmin.(n) <> t.sxmin.(n)
        || t.xmax.(n) <> t.sxmax.(n)
        || t.ymin.(n) <> t.symin.(n)
        || t.ymax.(n) <> t.symax.(n)
      then mark_dirty t n;
      t.xmin.(n) <- t.sxmin.(n);
      t.xmax.(n) <- t.sxmax.(n);
      t.ymin.(n) <- t.symin.(n);
      t.ymax.(n) <- t.symax.(n);
      t.nxmin.(n) <- t.snxmin.(n);
      t.nxmax.(n) <- t.snxmax.(n);
      t.nymin.(n) <- t.snymin.(n);
      t.nymax.(n) <- t.snymax.(n)
    done;
    finish t
  end

let audit ?pool ?(tol = 1e-6) t =
  if t.active then [ None, "audit called inside an open transaction" ]
  else begin
    let pin_cell = t.pins.Pins.pin_cell in
    let off_x = t.pins.Pins.off_x and off_y = t.pins.Pins.off_y in
    let nn = Soa.num_nets t.pins.Pins.soa in
    (* Fresh boxes land in per-net slots (parallel-safe); the compare /
       total pass below then runs serially in the legacy [downto] order,
       so the pooled audit reports exactly what the serial one does. *)
    let fxmin = Array.make (max 1 nn) 0.0 and fxmax = Array.make (max 1 nn) 0.0 in
    let fymin = Array.make (max 1 nn) 0.0 and fymax = Array.make (max 1 nn) 0.0 in
    let rescan_range lo hi =
      for n = lo to hi - 1 do
        if t.degree.(n) >= 2 then begin
          let xmin = ref infinity and xmax = ref neg_infinity in
          let ymin = ref infinity and ymax = ref neg_infinity in
          for i = I32.uget t.net_off n to I32.uget t.net_off (n + 1) - 1 do
            let p = I32.uget t.net_pin i in
            let c = I32.uget pin_cell p in
            let x = t.cx.(c) +. off_x.(p) and y = t.cy.(c) +. off_y.(p) in
            if x < !xmin then xmin := x;
            if x > !xmax then xmax := x;
            if y < !ymin then ymin := y;
            if y > !ymax then ymax := y
          done;
          fxmin.(n) <- !xmin;
          fxmax.(n) <- !xmax;
          fymin.(n) <- !ymin;
          fymax.(n) <- !ymax
        end
      done
    in
    (match pool with
    | None -> rescan_range 0 nn
    | Some pool ->
      Pool.iter_chunks pool ~n:nn (fun ~worker:_ ~chunk:_ ~lo ~hi -> rescan_range lo hi));
    let mismatches = ref [] in
    let fresh_total = ref 0.0 in
    for n = nn - 1 downto 0 do
      if t.degree.(n) >= 2 then begin
        let span = fxmax.(n) -. fxmin.(n) +. fymax.(n) -. fymin.(n) in
        fresh_total := !fresh_total +. (t.weight.(n) *. span);
        let slack = tol *. (1.0 +. abs_float span) in
        let bad got want tag =
          if abs_float (got -. want) > slack then
            mismatches :=
              ( Some n,
                Printf.sprintf "cached %s %.9g but a fresh rescan finds %.9g" tag got want )
              :: !mismatches
        in
        bad t.xmin.(n) fxmin.(n) "xmin";
        bad t.xmax.(n) fxmax.(n) "xmax";
        bad t.ymin.(n) fymin.(n) "ymin";
        bad t.ymax.(n) fymax.(n) "ymax"
      end
    done;
    let slack = tol *. (1.0 +. abs_float !fresh_total) in
    if abs_float (t.total -. !fresh_total) > slack then
      mismatches :=
        ( None,
          Printf.sprintf "cached total %.9g but a fresh rescan finds %.9g" t.total
            !fresh_total )
        :: !mismatches;
    !mismatches
  end

(* ----- pure candidate evaluation -----

   The evaluate-parallel/commit-serial contract of the detailed-placement
   stages needs a delta oracle that many worker domains can call at once
   against the committed state.  These functions never touch [t]'s staged
   slots, journals, or live arrays: they rescan the candidate's nets with
   the hypothetical coordinates substituted on the fly and compare against
   the committed boxes.  Only valid outside a transaction. *)

let eval_moves t ~k cells xs ys =
  let s = t.pins.Pins.soa in
  let pin_cell = t.pins.Pins.pin_cell in
  let off_x = t.pins.Pins.off_x and off_y = t.pins.Pins.off_y in
  (* distinct incident nets of the k moved cells; k is tiny (<= 3), so a
     list with linear membership is cheaper than any hashing *)
  let nets = ref [] in
  for j = 0 to k - 1 do
    let c = cells.(j) in
    for q = I32.uget s.Soa.cell_pin_off c to I32.uget s.Soa.cell_pin_off (c + 1) - 1 do
      let n = I32.uget t.pin_net (I32.uget s.Soa.cell_pin q) in
      if n >= 0 && t.degree.(n) >= 2 && not (List.mem n !nets) then nets := n :: !nets
    done
  done;
  let moved_index c =
    let j = ref (-1) in
    for q = 0 to k - 1 do
      if cells.(q) = c then j := q
    done;
    !j
  in
  let acc = ref 0.0 in
  List.iter
    (fun n ->
      let xmin = ref infinity and xmax = ref neg_infinity in
      let ymin = ref infinity and ymax = ref neg_infinity in
      for i = I32.uget t.net_off n to I32.uget t.net_off (n + 1) - 1 do
        let p = I32.uget t.net_pin i in
        let c = I32.uget pin_cell p in
        let j = moved_index c in
        let bx = if j >= 0 then xs.(j) else t.cx.(c) in
        let by = if j >= 0 then ys.(j) else t.cy.(c) in
        let x = bx +. off_x.(p) and y = by +. off_y.(p) in
        if x < !xmin then xmin := x;
        if x > !xmax then xmax := x;
        if y < !ymin then ymin := y;
        if y > !ymax then ymax := y
      done;
      let staged = !xmax -. !xmin +. !ymax -. !ymin in
      let committed = t.xmax.(n) -. t.xmin.(n) +. t.ymax.(n) -. t.ymin.(n) in
      acc := !acc +. (t.weight.(n) *. (staged -. committed)))
    !nets;
  !acc

let eval_flip t i =
  let s = t.pins.Pins.soa in
  let pin_cell = t.pins.Pins.pin_cell in
  let off_x = t.pins.Pins.off_x in
  let nets = ref [] in
  for q = I32.uget s.Soa.cell_pin_off i to I32.uget s.Soa.cell_pin_off (i + 1) - 1 do
    let n = I32.uget t.pin_net (I32.uget s.Soa.cell_pin q) in
    if n >= 0 && t.degree.(n) >= 2 && not (List.mem n !nets) then nets := n :: !nets
  done;
  let acc = ref 0.0 in
  List.iter
    (fun n ->
      let xmin = ref infinity and xmax = ref neg_infinity in
      for q = I32.uget t.net_off n to I32.uget t.net_off (n + 1) - 1 do
        let p = I32.uget t.net_pin q in
        let c = I32.uget pin_cell p in
        let off = if c = i then -.off_x.(p) else off_x.(p) in
        let x = t.cx.(c) +. off in
        if x < !xmin then xmin := x;
        if x > !xmax then xmax := x
      done;
      acc :=
        !acc +. (t.weight.(n) *. (!xmax -. !xmin -. (t.xmax.(n) -. t.xmin.(n)))))
    !nets;
  !acc

let rollback t =
  if t.active then begin
    for k = 0 to t.n_moved - 1 do
      let i = t.moved_cell.(k) in
      t.cx.(i) <- t.moved_x.(k);
      t.cy.(i) <- t.moved_y.(k)
    done;
    let s = t.pins.Pins.soa in
    for k = 0 to t.n_mirrored - 1 do
      let i = t.mirrored.(k) in
      for q = I32.uget s.Soa.cell_pin_off i to I32.uget s.Soa.cell_pin_off (i + 1) - 1 do
        let p = I32.uget s.Soa.cell_pin q in
        t.pins.Pins.off_x.(p) <- -.t.pins.Pins.off_x.(p)
      done
    done;
    finish t
  end
