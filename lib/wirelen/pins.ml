module Design = Dpp_netlist.Design
module Soa = Dpp_netlist.Soa
module Types = Dpp_netlist.Types
module I32 = Dpp_util.Compact.I32
module F64 = Dpp_util.Compact.F64

type t = {
  soa : Soa.t;
  pin_cell : I32.t;
  off_x : float array;
  off_y : float array;
  scratch_x : float array;
  scratch_y : float array;
  scratch_w : float array;
  scratch_w2 : float array;
  scratch_u : float array;  (** per-pin exp cache for the smooth-WL kernels *)
  scratch_v : float array;
}

let of_soa (s : Soa.t) =
  let np = Soa.num_pins s in
  let off_x = Array.make np 0.0 in
  let off_y = Array.make np 0.0 in
  for p = 0 to np - 1 do
    let ci = I32.uget s.Soa.pin_cell p in
    (* offsets respect the cell's orientation at build time (orientation is
       constant during an optimization phase; the flip pass rebuilds) *)
    let dx, dy =
      Dpp_geom.Orient.apply_offset s.Soa.orient.(ci) ~w:s.Soa.width.(ci) ~h:s.Soa.height.(ci)
        (F64.uget s.Soa.pin_dx p, F64.uget s.Soa.pin_dy p)
    in
    let ow, oh = Dpp_geom.Orient.apply s.Soa.orient.(ci) ~w:s.Soa.width.(ci) ~h:s.Soa.height.(ci) in
    off_x.(p) <- dx -. (ow /. 2.0);
    off_y.(p) <- dy -. (oh /. 2.0)
  done;
  let max_deg = Soa.max_net_degree s in
  {
    soa = s;
    pin_cell = s.Soa.pin_cell;
    off_x;
    off_y;
    scratch_x = Array.make max_deg 0.0;
    scratch_y = Array.make max_deg 0.0;
    scratch_w = Array.make max_deg 0.0;
    scratch_w2 = Array.make max_deg 0.0;
    scratch_u = Array.make max_deg 0.0;
    scratch_v = Array.make max_deg 0.0;
  }

let build (d : Design.t) = of_soa (Soa.of_design d)

let max_net_degree t = Array.length t.scratch_x

(* Scratch buffers are the only mutable per-evaluation state, so a view
   with fresh buffers is all another domain needs to evaluate nets
   concurrently against the shared geometry. *)
let clone_scratch t =
  let k = Array.length t.scratch_x in
  {
    t with
    scratch_x = Array.make k 0.0;
    scratch_y = Array.make k 0.0;
    scratch_w = Array.make k 0.0;
    scratch_w2 = Array.make k 0.0;
    scratch_u = Array.make k 0.0;
    scratch_v = Array.make k 0.0;
  }

let flip_cell_x t i =
  let s = t.soa in
  for k = I32.uget s.Soa.cell_pin_off i to I32.uget s.Soa.cell_pin_off (i + 1) - 1 do
    let p = I32.uget s.Soa.cell_pin k in
    t.off_x.(p) <- -.t.off_x.(p)
  done

let pin_x t ~cx p = Array.unsafe_get cx (I32.uget t.pin_cell p) +. Array.unsafe_get t.off_x p
let pin_y t ~cy p = Array.unsafe_get cy (I32.uget t.pin_cell p) +. Array.unsafe_get t.off_y p

let load_net t ~cx ~cy n =
  let s = t.soa in
  let lo = I32.uget s.Soa.net_pin_off n in
  let k = I32.uget s.Soa.net_pin_off (n + 1) - lo in
  for i = 0 to k - 1 do
    let p = I32.uget s.Soa.net_pin (lo + i) in
    t.scratch_x.(i) <- pin_x t ~cx p;
    t.scratch_y.(i) <- pin_y t ~cy p
  done;
  k

let centers_of_design (d : Design.t) =
  let n = Design.num_cells d in
  let cx = Array.init n (fun i -> Design.cell_center_x d i) in
  let cy = Array.init n (fun i -> Design.cell_center_y d i) in
  cx, cy

let apply_centers (d : Design.t) cx cy =
  for i = 0 to Design.num_cells d - 1 do
    if not (Types.is_fixed_kind (Design.cell d i).Types.c_kind) then
      Design.set_center d i cx.(i) cy.(i)
  done
