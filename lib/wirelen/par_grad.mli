(** Domain-parallel evaluation of the smooth wirelength models.

    Nets are fanned out over the pool in fixed static chunks; each worker
    evaluates its nets with the {e exact} per-net serial kernels
    ({!Lse.axis_value_grad} / {!Wa.axis_value_grad}) into per-net value
    slots and per-pin gradient slots, and the calling domain reduces those
    slots in the serial kernel's own order (nets ascending; per cell, pins
    ordered by net then position).

    The guarantee is therefore strict: for any worker count — including
    one — {!value} and {!value_grad} return {e bit-identical} floats to
    {!Lse.value} / {!Lse.value_grad} / {!Wa.value} / {!Wa.value_grad}.
    [test/test_par.ml] asserts this with [Float.equal] per element. *)

type t

val create : Dpp_par.Pool.t -> Pins.t -> t
(** Per-run state: one scratch view per worker (worker 0 reuses the given
    view) plus the per-net / per-pin fan-out buffers.  Use with the pool
    it was created for (or any pool with no more workers). *)

val value :
  t -> Dpp_par.Pool.t -> Model.kind -> gamma:float -> cx:float array -> cy:float array -> float
(** Bit-identical to {!Model.value} on the same inputs. *)

val value_grad :
  t ->
  Dpp_par.Pool.t ->
  Model.kind ->
  gamma:float ->
  cx:float array ->
  cy:float array ->
  gx:float array ->
  gy:float array ->
  float
(** Bit-identical to {!Model.value_grad}; gradients are accumulated into
    [gx]/[gy] exactly like the serial kernels (callers zero them). *)
