(** Incremental per-net bounding boxes — the shared cost substrate of the
    detailed-placement stages.

    Caches, per net, the committed HPWL bounding box plus the multiplicity
    of pins sitting on each of the four extremes.  A candidate move is
    evaluated transactionally: {!move_cell} / {!flip_cell} stage coordinate
    or pin-offset changes (written to the live arrays immediately, boxes
    updated in O(pins of the cell)), {!delta} answers the weighted HPWL
    change, and the caller either {!commit}s or {!rollback}s.  A staged net
    falls back to an O(degree) rescan only when a moved pin was the unique
    extreme of its box; every other update is O(1) per pin.

    Totals and deltas are weighted exactly like {!Hpwl.total}, so after
    any sequence of commits [total t = Hpwl.total pins ~cx ~cy] up to
    float accumulation order. *)

type t

val build : ?pool:Dpp_par.Pool.t -> ?reuse:t -> Pins.t -> cx:float array -> cy:float array -> t
(** Scans every net once.  [cx]/[cy] are captured, not copied: the cache
    owns coordinate updates from here on (move through {!move_cell}).
    With [pool], the per-net scans fan out over the worker domains; the
    result is bit-identical to the serial build at any worker count.

    [reuse] recycles the per-net arrays of a retired cache built over the
    same pin view (the flow's rebuild-after-coords-change pattern),
    making rescans allocation-free; the donor must not be handed out
    again — the rebuilt cache owns its storage.  Ignored when the donor
    does not match (different pins, different net count, or mid
    transaction). *)

val total : t -> float
(** Committed weighted HPWL (ignores any open transaction). *)

val in_transaction : t -> bool

val net_box : t -> int -> float * float * float * float
(** Committed [(xmin, xmax, ymin, ymax)] of one net (meaningless for
    degree < 2). *)

val move_cell : t -> int -> float -> float -> unit
(** [move_cell t i x y] stages moving cell [i]'s center to [(x, y)]:
    writes the live arrays and updates the staged boxes of its nets.
    Opens a transaction if none is active; staging the same cell again
    within one transaction composes (the journal keeps the original
    position). *)

val flip_cell : t -> int -> unit
(** Stage mirroring cell [i]'s pin x-offsets about its center (the [N] <->
    [FN] orientation flip).  Mutates [pins.off_x] in place; {!rollback}
    restores it. *)

val delta : t -> float
(** Weighted HPWL change of the staged moves relative to the committed
    state; 0 outside a transaction.  Resolves any pending rescans. *)

val commit : t -> unit
(** Accept the staged moves: folds staged boxes into the committed state
    and adds {!delta} to {!total}.  No-op outside a transaction. *)

val rollback : t -> unit
(** Discard the staged moves, restoring coordinates and pin offsets.
    No-op outside a transaction. *)

val eval_moves : t -> k:int -> int array -> float array -> float array -> float
(** [eval_moves t ~k cells xs ys] is the weighted HPWL delta that {e would}
    result from moving the first [k] cells of [cells] to the corresponding
    [(xs.(j), ys.(j))] centers, evaluated purely against the committed
    state: no transaction is opened, no live array is written.  Because it
    is read-only it is safe to call concurrently from many worker domains
    — this is the evaluator behind the detailed-placement stages'
    evaluate-parallel/commit-serial scheme (the serial commit re-checks
    each accepted candidate through {!move_cell}/{!delta} against the
    then-current state).  Must be called outside a transaction; a cell
    must appear at most once in [cells.(0..k-1)]. *)

val eval_flip : t -> int -> float
(** [eval_flip t i] is the weighted HPWL delta of mirroring cell [i]'s pin
    x-offsets, evaluated purely against the committed state (the
    orientation-flip analogue of {!eval_moves}; same concurrency
    contract). *)

val dirty_nets : t -> int array
(** Ids of the nets whose {e committed} box changed in at least one
    {!commit} since the cache was built (or since the last
    {!clear_dirty}), ascending.  Rolled-back transactions never dirty a
    net, and neither does a commit that happens to restore a box to its
    exact previous extent.  This is the delta export the incremental ECO
    flow uses to bound its dirty region: apply an edit list through
    {!move_cell}/{!flip_cell} + {!commit}, then ask which nets moved. *)

val clear_dirty : t -> unit
(** Reset the dirty set (e.g. after consuming {!dirty_nets}). *)

val audit : ?pool:Dpp_par.Pool.t -> ?tol:float -> t -> (int option * string) list
(** Compare every committed per-net box and the committed total against a
    fresh rescan of the live coordinates and pin offsets.  Returns one
    [(Some net, message)] entry per disagreeing box and a [(None, message)]
    entry when the running total disagrees, empty when the cache is
    consistent.  [tol] (default 1e-6) is scaled by the magnitude compared.
    Must be called outside a transaction (an open transaction is itself
    reported as a mismatch).  This is the oracle behind the flow's
    [--check] mode: any write to the coordinate arrays that bypasses
    {!move_cell} shows up here.  With [pool], the fresh per-net rescans
    fan out over the worker domains while the comparison and total keep
    the serial order — same report, bit for bit, at any worker count. *)
