module Soa = Dpp_netlist.Soa
module I32 = Dpp_util.Compact.I32

(* Per-axis stable log-sum-exp over the scratch buffer [a.(0..k-1)]:
   returns (lse_plus + lse_minus) where
     lse_plus  = gamma * log sum exp(a_i / gamma)     = amax + gamma*log S+
     lse_minus = gamma * log sum exp(-a_i / gamma)    = -amin + gamma*log S-
   If [w] is non-empty it also receives the softmax gradient weights
     w_i = exp((a_i - amax)/gamma)/S+ - exp((amin - a_i)/gamma)/S- .
   [u]/[v] cache the summation loop's exponentials for the gradient loop
   ([exp] dominates the kernel); the cached floats are exactly what the old
   recomputation produced, so results are bit-identical. *)
let axis_value_grad (a : float array) k ~gamma ~(w : float array) ~(u : float array)
    ~(v : float array) ~want_grad =
  let amax = ref a.(0) and amin = ref a.(0) in
  for i = 1 to k - 1 do
    if a.(i) > !amax then amax := a.(i);
    if a.(i) < !amin then amin := a.(i)
  done;
  let splus = ref 0.0 and sminus = ref 0.0 in
  for i = 0 to k - 1 do
    let ui = exp ((a.(i) -. !amax) /. gamma) in
    let vi = exp ((!amin -. a.(i)) /. gamma) in
    if want_grad then begin
      u.(i) <- ui;
      v.(i) <- vi
    end;
    splus := !splus +. ui;
    sminus := !sminus +. vi
  done;
  if want_grad then
    for i = 0 to k - 1 do
      w.(i) <- (u.(i) /. !splus) -. (v.(i) /. !sminus)
    done;
  !amax -. !amin +. (gamma *. (log !splus +. log !sminus))

let value t ~gamma ~cx ~cy =
  let acc = ref 0.0 in
  let s = t.Pins.soa in
  for n = 0 to Soa.num_nets s - 1 do
    let k = Pins.load_net t ~cx ~cy n in
    if k >= 2 then begin
      let wn = s.Soa.net_weight.(n) in
      let vx =
        axis_value_grad t.Pins.scratch_x k ~gamma ~w:t.Pins.scratch_w ~u:t.Pins.scratch_u ~v:t.Pins.scratch_v ~want_grad:false
      in
      let vy =
        axis_value_grad t.Pins.scratch_y k ~gamma ~w:t.Pins.scratch_w ~u:t.Pins.scratch_u ~v:t.Pins.scratch_v ~want_grad:false
      in
      acc := !acc +. (wn *. (vx +. vy))
    end
  done;
  !acc

let value_grad t ~gamma ~cx ~cy ~gx ~gy =
  let acc = ref 0.0 in
  let s = t.Pins.soa in
  for n = 0 to Soa.num_nets s - 1 do
    let lo = I32.uget s.Soa.net_pin_off n in
    let k = Pins.load_net t ~cx ~cy n in
    if k >= 2 then begin
      let wn = s.Soa.net_weight.(n) in
      let vx = axis_value_grad t.Pins.scratch_x k ~gamma ~w:t.Pins.scratch_w ~u:t.Pins.scratch_u ~v:t.Pins.scratch_v ~want_grad:true in
      for i = 0 to k - 1 do
        let c = I32.uget t.Pins.pin_cell (I32.uget s.Soa.net_pin (lo + i)) in
        gx.(c) <- gx.(c) +. (wn *. t.Pins.scratch_w.(i))
      done;
      let vy = axis_value_grad t.Pins.scratch_y k ~gamma ~w:t.Pins.scratch_w ~u:t.Pins.scratch_u ~v:t.Pins.scratch_v ~want_grad:true in
      for i = 0 to k - 1 do
        let c = I32.uget t.Pins.pin_cell (I32.uget s.Soa.net_pin (lo + i)) in
        gy.(c) <- gy.(c) +. (wn *. t.Pins.scratch_w.(i))
      done;
      acc := !acc +. (wn *. (vx +. vy))
    end
  done;
  !acc

let upper_bound_gap ~gamma ~degree = gamma *. log (float_of_int (max 1 degree))
