(** Log-sum-exp smooth wirelength (Naylor et al. patent; the NTUplace3
    objective).  Per net and axis,

    [W = gamma * (log sum exp(x/gamma) + log sum exp(-x/gamma))]

    which overestimates HPWL and converges to it as [gamma -> 0].  Both
    value and gradient are computed with max-subtraction so large
    coordinates never overflow. *)

val value : Pins.t -> gamma:float -> cx:float array -> cy:float array -> float
(** Weighted total over all nets. *)

val value_grad :
  Pins.t ->
  gamma:float ->
  cx:float array ->
  cy:float array ->
  gx:float array ->
  gy:float array ->
  float
(** Weighted total; per-cell-center gradients are {e accumulated} into
    [gx]/[gy] (callers zero them first).  Fixed cells receive gradient
    contributions too — the placer simply ignores those slots. *)

val upper_bound_gap : gamma:float -> degree:int -> float
(** Theoretical per-net, per-axis gap bound [gamma * log(degree)]:
    [hpwl <= lse <= hpwl + 2 * gap].  Used by tests. *)

val axis_value_grad :
  float array ->
  int ->
  gamma:float ->
  w:float array ->
  u:float array ->
  v:float array ->
  want_grad:bool ->
  float
(** The per-net, per-axis building block over the first [k] entries of a
    scratch buffer; with [want_grad] the softmax weights land in [w].
    Exposed for {!Par_grad} (which runs it per net on worker domains) and
    the batched finite-difference oracle — the per-net arithmetic is
    {e exactly} what {!value_grad} runs, which is what makes the parallel
    path bit-identical to the serial one. *)
