module Soa = Dpp_netlist.Soa

(* Weighted-average on one axis over scratch [a.(0..k-1)].  Fills [w] with
   d(value)/d(a_i) when [want_grad]. *)
let axis_value_grad (a : float array) k ~gamma ~(w : float array) ~want_grad =
  let amax = ref a.(0) and amin = ref a.(0) in
  for i = 1 to k - 1 do
    if a.(i) > !amax then amax := a.(i);
    if a.(i) < !amin then amin := a.(i)
  done;
  let nmax = ref 0.0 and dmax = ref 0.0 in
  let nmin = ref 0.0 and dmin = ref 0.0 in
  for i = 0 to k - 1 do
    let u = exp ((a.(i) -. !amax) /. gamma) in
    let v = exp ((!amin -. a.(i)) /. gamma) in
    nmax := !nmax +. (a.(i) *. u);
    dmax := !dmax +. u;
    nmin := !nmin +. (a.(i) *. v);
    dmin := !dmin +. v
  done;
  let f = !nmax /. !dmax in
  let g = !nmin /. !dmin in
  if want_grad then
    for i = 0 to k - 1 do
      let u = exp ((a.(i) -. !amax) /. gamma) in
      let v = exp ((!amin -. a.(i)) /. gamma) in
      let df = u *. (1.0 +. ((a.(i) -. f) /. gamma)) /. !dmax in
      let dg = v *. (1.0 -. ((a.(i) -. g) /. gamma)) /. !dmin in
      w.(i) <- df -. dg
    done;
  f -. g

let value t ~gamma ~cx ~cy =
  let acc = ref 0.0 in
  let s = t.Pins.soa in
  for n = 0 to Soa.num_nets s - 1 do
    let k = Pins.load_net t ~cx ~cy n in
    if k >= 2 then begin
      let wn = s.Soa.net_weight.(n) in
      let vx = axis_value_grad t.Pins.scratch_x k ~gamma ~w:t.Pins.scratch_w ~want_grad:false in
      let vy = axis_value_grad t.Pins.scratch_y k ~gamma ~w:t.Pins.scratch_w ~want_grad:false in
      acc := !acc +. (wn *. (vx +. vy))
    end
  done;
  !acc

let value_grad t ~gamma ~cx ~cy ~gx ~gy =
  let acc = ref 0.0 in
  let s = t.Pins.soa in
  for n = 0 to Soa.num_nets s - 1 do
    let lo = s.Soa.net_pin_off.(n) in
    let k = Pins.load_net t ~cx ~cy n in
    if k >= 2 then begin
      let wn = s.Soa.net_weight.(n) in
      let vx = axis_value_grad t.Pins.scratch_x k ~gamma ~w:t.Pins.scratch_w ~want_grad:true in
      for i = 0 to k - 1 do
        let c = t.Pins.pin_cell.(s.Soa.net_pin.(lo + i)) in
        gx.(c) <- gx.(c) +. (wn *. t.Pins.scratch_w.(i))
      done;
      let vy = axis_value_grad t.Pins.scratch_y k ~gamma ~w:t.Pins.scratch_w ~want_grad:true in
      for i = 0 to k - 1 do
        let c = t.Pins.pin_cell.(s.Soa.net_pin.(lo + i)) in
        gy.(c) <- gy.(c) +. (wn *. t.Pins.scratch_w.(i))
      done;
      acc := !acc +. (wn *. (vx +. vy))
    end
  done;
  !acc

let error_bound ~gamma = 4.0 *. gamma
