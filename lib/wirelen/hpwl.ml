module Soa = Dpp_netlist.Soa

let net t ~cx ~cy n =
  let k = Pins.load_net t ~cx ~cy n in
  if k < 2 then 0.0
  else begin
    let xmin = ref t.Pins.scratch_x.(0) and xmax = ref t.Pins.scratch_x.(0) in
    let ymin = ref t.Pins.scratch_y.(0) and ymax = ref t.Pins.scratch_y.(0) in
    for i = 1 to k - 1 do
      let x = t.Pins.scratch_x.(i) and y = t.Pins.scratch_y.(i) in
      if x < !xmin then xmin := x;
      if x > !xmax then xmax := x;
      if y < !ymin then ymin := y;
      if y > !ymax then ymax := y
    done;
    !xmax -. !xmin +. !ymax -. !ymin
  end

let total t ~cx ~cy =
  let acc = ref 0.0 in
  let s = t.Pins.soa in
  let nn = Soa.num_nets s in
  for n = 0 to nn - 1 do
    let w = s.Soa.net_weight.(n) in
    acc := !acc +. (w *. net t ~cx ~cy n)
  done;
  !acc

let total_of_design d =
  let t = Pins.build d in
  let cx, cy = Pins.centers_of_design d in
  total t ~cx ~cy

let per_net t ~cx ~cy =
  Array.init (Soa.num_nets t.Pins.soa) (fun n -> net t ~cx ~cy n)
