(** Precomputed pin geometry for the smooth wirelength models.

    Global placement treats every cell as its center point plus fixed pin
    offsets, evaluated at the orientation each cell has when the structure
    is built (orientations are constant within an optimization phase; the
    flip pass rebuilds).  This caches, per pin, the offset of the pin from
    its cell center, and carries the flat {!Dpp_netlist.Soa} view the hot
    kernels iterate — model evaluation never touches the cell records. *)

type t = {
  soa : Dpp_netlist.Soa.t;  (** the flat netlist view the kernels scan *)
  pin_cell : Dpp_util.Compact.I32.t;  (** owning cell per pin (aliases [soa.pin_cell]) *)
  off_x : float array;  (** pin x offset from cell center *)
  off_y : float array;
  scratch_x : float array;  (** per-net pin coordinate buffers, max degree long *)
  scratch_y : float array;
  scratch_w : float array;  (** softmax weight buffer for gradients *)
  scratch_w2 : float array;
  scratch_u : float array;  (** per-pin exp caches for the smooth-WL kernels *)
  scratch_v : float array;
}

val of_soa : Dpp_netlist.Soa.t -> t
(** Build the pin view over an existing flat core — the flow's path: the
    context derives one {!Dpp_netlist.Soa.t} and every kernel shares it. *)

val build : Dpp_netlist.Design.t -> t
(** [build d = of_soa (Soa.of_design d)] — convenience for tests and
    standalone tools. *)

val max_net_degree : t -> int

val clone_scratch : t -> t
(** A view sharing the flat core, pin-ownership and offset arrays but
    owning fresh scratch buffers — one per worker domain, so parallel
    kernels can evaluate different nets concurrently.  Offsets stay shared
    on purpose: the flip stage's in-place mirroring remains visible to
    every view. *)

val flip_cell_x : t -> int -> unit
(** Mirror cell [i]'s pin x offsets in place — the pin-view effect of an
    [N] <-> [FN] orientation change, identical to what a committed
    {!Netbox.flip_cell} applies.  For callers that adopt an orientation
    array {e before} any netbox exists (checkpoint resume); the caller
    must keep [design.orient] in step. *)

val pin_x : t -> cx:float array -> int -> float
(** Pin absolute x given cell centers [cx]. *)

val pin_y : t -> cy:float array -> int -> float

val load_net : t -> cx:float array -> cy:float array -> int -> int
(** Copy the pin coordinates of net [n] into the scratch buffers; returns
    the pin count.  Pins are ordered as in the net's pin array. *)

val centers_of_design : Dpp_netlist.Design.t -> float array * float array
(** Current cell-center coordinate arrays (fresh). *)

val apply_centers : Dpp_netlist.Design.t -> float array -> float array -> unit
(** Write center coordinates back into the design's lower-left storage for
    movable cells only (fixed cells and pads are never moved). *)
