module Soa = Dpp_netlist.Soa
module I32 = Dpp_util.Compact.I32
module Pool = Dpp_par.Pool

type t = {
  pins : Pins.t;
  views : Pins.t array;  (* per-worker scratch views over the shared geometry *)
  net_val : float array;  (* per net: weighted smooth value, 0 for degree < 2 *)
  pin_gx : float array;  (* per pin: weighted x-gradient contribution *)
  pin_gy : float array;
}

let create pool pins =
  let s = pins.Pins.soa in
  {
    pins;
    views = Array.init (Pool.nworkers pool) (fun w -> if w = 0 then pins else Pins.clone_scratch pins);
    net_val = Array.make (max 1 (Soa.num_nets s)) 0.0;
    pin_gx = Array.make (max 1 (Soa.num_pins s)) 0.0;
    pin_gy = Array.make (max 1 (Soa.num_pins s)) 0.0;
  }

let axis_kernel = function
  | Model.Lse -> Lse.axis_value_grad
  | Model.Wa -> Wa.axis_value_grad

(* Fan-out: each worker evaluates whole nets into slots owned by exactly
   one net (net_val) or one pin (pin_gx / pin_gy), so the stored values
   are independent of how nets were partitioned across workers. *)
let scan t pool kind ~gamma ~cx ~cy ~want_grad =
  let s = t.pins.Pins.soa in
  let axis = axis_kernel kind in
  Pool.iter_chunks pool ~n:(Soa.num_nets s) (fun ~worker ~chunk:_ ~lo ~hi ->
      let view = t.views.(worker) in
      for n = lo to hi - 1 do
        let plo = I32.uget s.Soa.net_pin_off n in
        let k = Pins.load_net view ~cx ~cy n in
        if k >= 2 then begin
          let wn = s.Soa.net_weight.(n) in
          let vx = axis view.Pins.scratch_x k ~gamma ~w:view.Pins.scratch_w ~u:view.Pins.scratch_u ~v:view.Pins.scratch_v ~want_grad in
          if want_grad then
            for i = 0 to k - 1 do
              t.pin_gx.(I32.uget s.Soa.net_pin (plo + i)) <- wn *. view.Pins.scratch_w.(i)
            done;
          let vy = axis view.Pins.scratch_y k ~gamma ~w:view.Pins.scratch_w ~u:view.Pins.scratch_u ~v:view.Pins.scratch_v ~want_grad in
          if want_grad then
            for i = 0 to k - 1 do
              t.pin_gy.(I32.uget s.Soa.net_pin (plo + i)) <- wn *. view.Pins.scratch_w.(i)
            done;
          t.net_val.(n) <- wn *. (vx +. vy)
        end
        else t.net_val.(n) <- 0.0
      done)

(* Reduce on the calling domain, in exactly the serial kernel's order:
   the value folds nets ascending, and each cell's gradient slot receives
   its pins' contributions ordered by (net, pin position) — the same
   addition sequence Lse.value_grad / Wa.value_grad perform, so the
   result is bit-identical to the serial path at every worker count. *)
let reduce t ~want_grad ~gx ~gy =
  let s = t.pins.Pins.soa in
  let pin_cell = t.pins.Pins.pin_cell in
  let net_pin = s.Soa.net_pin in
  let acc = ref 0.0 in
  for n = 0 to Soa.num_nets s - 1 do
    let lo = I32.uget s.Soa.net_pin_off n and hi = I32.uget s.Soa.net_pin_off (n + 1) in
    if hi - lo >= 2 then begin
      if want_grad then begin
        for i = lo to hi - 1 do
          let p = I32.uget net_pin i in
          let c = I32.uget pin_cell p in
          gx.(c) <- gx.(c) +. t.pin_gx.(p)
        done;
        for i = lo to hi - 1 do
          let p = I32.uget net_pin i in
          let c = I32.uget pin_cell p in
          gy.(c) <- gy.(c) +. t.pin_gy.(p)
        done
      end;
      acc := !acc +. t.net_val.(n)
    end
  done;
  !acc

let no_grad = [||]

(* The fan-out/reduce pair is bit-identical to the serial kernels at any
   worker count (see [reduce]), so when the pool would run the scan on
   the calling domain anyway we skip the net_val/pin_g staging entirely
   and call the serial kernel — same floats, none of the staging-array
   traffic. *)
let serial_effective t pool = Pool.auto_serial pool ~n:(Soa.num_nets t.pins.Pins.soa)

let value t pool kind ~gamma ~cx ~cy =
  if serial_effective t pool then Model.value kind t.pins ~gamma ~cx ~cy
  else begin
    scan t pool kind ~gamma ~cx ~cy ~want_grad:false;
    reduce t ~want_grad:false ~gx:no_grad ~gy:no_grad
  end

let value_grad t pool kind ~gamma ~cx ~cy ~gx ~gy =
  if serial_effective t pool then Model.value_grad kind t.pins ~gamma ~cx ~cy ~gx ~gy
  else begin
    scan t pool kind ~gamma ~cx ~cy ~want_grad:true;
    reduce t ~want_grad:true ~gx ~gy
  end
