(* Kernel-level profiler for the GP hot path: times each cost kernel in
   isolation over the generated XL presets and reports wall-clock plus
   GC allocation deltas.  This is the measurement harness behind the
   numbers in DESIGN.md ("Profiling methodology") and the CI perf guard —
   the flow's end-to-end numbers come from `bench -e XL`; this tool
   answers *where inside a GP round* the time goes. *)

module Design = Dpp_netlist.Design
module Soa = Dpp_netlist.Soa
module Pins = Dpp_wirelen.Pins
module Model = Dpp_wirelen.Model
module Par_grad = Dpp_wirelen.Par_grad
module Hpwl = Dpp_wirelen.Hpwl
module Netbox = Dpp_wirelen.Netbox
module Grid = Dpp_density.Grid
module Bell = Dpp_density.Bell
module Rudy = Dpp_congest.Rudy
module Pool = Dpp_par.Pool

type sample = {
  name : string;
  wall_s : float;  (* per repetition *)
  minor_mw : float;  (* minor words allocated per rep, in Mwords *)
  major_mw : float;
  value : float;  (* kernel result, so work cannot be dead-code-eliminated *)
}

let time_kernel ~reps name f =
  (* one warmup rep so lazy setup does not pollute the measurement *)
  let v0 = f () in
  let s0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let v = ref v0 in
  for _ = 1 to reps do
    v := f ()
  done;
  let t1 = Unix.gettimeofday () in
  let s1 = Gc.quick_stat () in
  let r = float_of_int reps in
  {
    name;
    wall_s = (t1 -. t0) /. r;
    minor_mw = (s1.Gc.minor_words -. s0.Gc.minor_words) /. r /. 1e6;
    major_mw = (s1.Gc.major_words -. s0.Gc.major_words) /. r /. 1e6;
    value = !v;
  }

let () =
  let preset = if Array.length Sys.argv > 1 then Sys.argv.(1) else "xl100k" in
  let reps = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 5 in
  let jobs = if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3) else 1 in
  let d =
    match Dpp_gen.Xl.by_name ~seed:1 preset with
    | Some d -> d
    | None -> failwith ("unknown XL preset: " ^ preset)
  in
  let pool = Pool.create ~nworkers:jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let soa = Soa.of_design d in
  let pins = Pins.of_soa soa in
  let cx, cy = Pins.centers_of_design d in
  let nc = Design.num_cells d in
  let nx, ny = Grid.default_dims d in
  let grid = Grid.build d ~nx ~ny in
  let bell = Bell.create ~soa d ~grid ~target_density:0.9 in
  let par = Par_grad.create pool pins in
  let bell_par = Bell.par_create bell in
  let gx = Array.make nc 0.0 and gy = Array.make nc 0.0 in
  let gamma = 0.5 *. max grid.Grid.bin_w grid.Grid.bin_h in
  let zero2 () =
    Array.fill gx 0 nc 0.0;
    Array.fill gy 0 nc 0.0
  in
  Printf.printf "preset %s: %d cells, %d nets, %d pins, %dx%d bins, jobs %d, reps %d\n%!"
    preset nc (Soa.num_nets soa) (Soa.num_pins soa) grid.Grid.nx grid.Grid.ny jobs reps;
  let samples =
    [
      time_kernel ~reps "lse_value(serial)" (fun () ->
          Model.value Model.Lse pins ~gamma ~cx ~cy);
      time_kernel ~reps "lse_grad(serial)" (fun () ->
          zero2 ();
          Model.value_grad Model.Lse pins ~gamma ~cx ~cy ~gx ~gy);
      time_kernel ~reps "wa_grad(serial)" (fun () ->
          zero2 ();
          Model.value_grad Model.Wa pins ~gamma ~cx ~cy ~gx ~gy);
      time_kernel ~reps "lse_value(pool)" (fun () ->
          Par_grad.value par pool Model.Lse ~gamma ~cx ~cy);
      time_kernel ~reps "lse_grad(pool)" (fun () ->
          zero2 ();
          Par_grad.value_grad par pool Model.Lse ~gamma ~cx ~cy ~gx ~gy);
      time_kernel ~reps "bell_value(serial)" (fun () -> Bell.value bell ~cx ~cy);
      time_kernel ~reps "bell_grad(serial)" (fun () ->
          zero2 ();
          Bell.value_grad bell ~cx ~cy ~gx ~gy);
      time_kernel ~reps "bell_value(pool)" (fun () -> Bell.par_value bell_par pool ~cx ~cy);
      time_kernel ~reps "bell_grad(pool)" (fun () ->
          zero2 ();
          Bell.par_value_grad bell_par pool ~cx ~cy ~gx ~gy);
      time_kernel ~reps "hpwl" (fun () -> Hpwl.total pins ~cx ~cy);
      time_kernel ~reps "rudy" (fun () ->
          let r = Rudy.compute ~pool ~pins d ~cx ~cy in
          (Rudy.stats r).Rudy.ace_ratio);
      time_kernel ~reps "netbox_build" (fun () ->
          let nb = Netbox.build ~pool pins ~cx ~cy in
          Netbox.total nb);
    ]
  in
  Printf.printf "%-20s %10s %12s %12s %16s\n" "kernel" "ms/rep" "minor Mw/rep" "major Mw/rep"
    "value";
  List.iter
    (fun s ->
      Printf.printf "%-20s %10.2f %12.3f %12.3f %16.6g\n" s.name (s.wall_s *. 1000.0)
        s.minor_mw s.major_mw s.value)
    samples
