(* dpp_place: place a design (Bookshelf input or built-in preset) with the
   baseline or structure-aware flow.

     dpp_place --preset dp_add32 --mode sa
     dpp_place --bookshelf path/to/design --mode baseline --out placed   *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let load ~preset ~bookshelf =
  match preset, bookshelf with
  | Some name, None -> (
    match Dpp_gen.Presets.by_name name with
    | Some spec -> Ok (Dpp_gen.Compose.build spec)
    | None -> (
      match Dpp_gen.Xl.by_name name with
      | Some d -> Ok d
      | None -> (
        match Dpp_gen.Channel.by_name name with
        | Some d -> Ok d
        | None ->
          Error
            (Printf.sprintf "unknown preset %S (available: %s)" name
               (String.concat ", "
                  (Dpp_gen.Presets.names @ Dpp_gen.Xl.preset_names
                 @ [ Dpp_gen.Channel.name ]))))))
  | None, Some base -> (
    try Ok (Dpp_netlist.Bookshelf.read ~basename:base) with
    | Dpp_netlist.Bookshelf.Parse_error msg -> Error msg
    | Sys_error msg -> Error msg)
  | Some _, Some _ -> Error "give either --preset or --bookshelf, not both"
  | None, None -> Error "give --preset <name> or --bookshelf <basename>"

let run verbose preset bookshelf mode beta density seed jobs multilevel flat routability out
    svg compare trace check =
  setup_logs verbose;
  match if multilevel && flat then Error "give either --multilevel or --flat, not both"
        else load ~preset ~bookshelf with
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    1
  | Ok design -> (
    let ml_mode =
      if multilevel then Dpp_core.Config.Ml_on
      else if flat then Dpp_core.Config.Ml_off
      else Dpp_core.Config.Ml_auto
    in
    let cfg =
      {
        Dpp_core.Config.structure_aware with
        Dpp_core.Config.beta;
        target_density = density;
        seed;
        jobs;
        multilevel = ml_mode;
        routability;
      }
    in
    let report tag (r : Dpp_core.Flow.result) =
      Printf.printf "%s: HPWL %.0f  Steiner %.0f  overflow %.3f  groups %d  time %.2fs\n" tag
        r.Dpp_core.Flow.hpwl_final r.Dpp_core.Flow.steiner_final r.Dpp_core.Flow.overflow_gp
        (List.length r.Dpp_core.Flow.groups_used)
        r.Dpp_core.Flow.total_time;
      let c = r.Dpp_core.Flow.congestion in
      Printf.printf "  congestion: max %.3f  ACE(5%%) %.3f  overflowed bins %.1f%%%s\n"
        c.Dpp_congest.Rudy.max_ratio c.Dpp_congest.Rudy.ace_ratio
        (100.0 *. c.Dpp_congest.Rudy.overflowed_bins)
        (match r.Dpp_core.Flow.rt_trace with
        | [] -> ""
        | rt -> Printf.sprintf "  (rt steering: %d updates)" (List.length rt - 1));
      List.iter
        (fun (st : Dpp_report.Trace.stage) ->
          let gc key =
            match List.assoc_opt key st.Dpp_report.Trace.extra with
            | Some (Dpp_report.Json.Num v) -> v
            | _ -> 0.0
          in
          Printf.printf
            "  %-8s %6.2fs  gc: minor %8.1f Mw  major %7.1f Mw  majors %3.0f  mem: hwm %8.1f MB  heap %8.1f MB\n"
            st.Dpp_report.Trace.name st.Dpp_report.Trace.wall_s (gc "gc_minor_mwords")
            (gc "gc_major_mwords") (gc "gc_majors")
            (float_of_int st.Dpp_report.Trace.vm_hwm_kb /. 1024.0)
            (float_of_int st.Dpp_report.Trace.heap_kb /. 1024.0))
        r.Dpp_core.Flow.stage_trace
    in
    let write_trace results =
      match trace with
      | None -> ()
      | Some path ->
        Dpp_report.Trace.write ~path (List.map Dpp_core.Flow.trace_of_result results);
        Printf.printf "stage trace written to %s\n" path
    in
    try
      if compare then begin
        let base, sa = Dpp_core.Flow.run_both ~check design cfg in
        report "baseline" base;
        report "structure-aware" sa;
        Printf.printf "HPWL ratio (sa/base): %.4f\n"
          (sa.Dpp_core.Flow.hpwl_final /. base.Dpp_core.Flow.hpwl_final);
        write_trace [ base; sa ];
        0
      end
      else begin
        let cfg =
          match mode with
          | "baseline" | "base" -> { cfg with Dpp_core.Config.mode = Dpp_core.Config.Baseline }
          | "sa" | "structure-aware" ->
            { cfg with Dpp_core.Config.mode = Dpp_core.Config.Structure_aware }
          | other ->
            Printf.eprintf "unknown mode %S, using structure-aware\n" other;
            cfg
        in
        let r = Dpp_core.Flow.run ~check design cfg in
        report (Dpp_core.Config.mode_to_string r.Dpp_core.Flow.config.Dpp_core.Config.mode) r;
        write_trace [ r ];
        (match out with
        | Some base ->
          Dpp_netlist.Bookshelf.write r.Dpp_core.Flow.design ~basename:base;
          Printf.printf "placement written to %s.*\n" base
        | None -> ());
        (match svg with
        | Some path ->
          let placed =
            Dpp_netlist.Design.with_groups r.Dpp_core.Flow.design r.Dpp_core.Flow.groups_used
          in
          Dpp_viz.Plot.placement ~title:(Dpp_core.Config.mode_to_string cfg.Dpp_core.Config.mode)
            placed ~path;
          Printf.printf "plot written to %s\n" path
        | None -> ());
        0
      end
    with
    | Dpp_core.Flow.Invalid_design issues ->
      Printf.eprintf "design has %d validation errors; first: %s\n" (List.length issues)
        (match issues with
        | i :: _ -> Format.asprintf "%a" Dpp_netlist.Validate.pp_issue i
        | [] -> "?");
      1
    | Dpp_core.Flow.Check_failed { stage; violations } ->
      Printf.eprintf "invariant check failed after stage %s (%d violations):\n" stage
        (List.length violations);
      List.iter (fun v -> Printf.eprintf "  %s\n" v) violations;
      2)

let cmd =
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging.") in
  let preset =
    Arg.(value & opt (some string) None & info [ "preset" ] ~docv:"NAME" ~doc:"Built-in benchmark name.")
  in
  let bookshelf =
    Arg.(value & opt (some string) None & info [ "bookshelf" ] ~docv:"BASE" ~doc:"Bookshelf basename (reads BASE.aux).")
  in
  let mode =
    Arg.(value & opt string "sa" & info [ "mode" ] ~docv:"MODE" ~doc:"baseline or sa (structure-aware).")
  in
  let beta = Arg.(value & opt float 1.0 & info [ "beta" ] ~doc:"Soft-alignment weight knob.") in
  let density = Arg.(value & opt float 0.9 & info [ "density" ] ~doc:"Target placement density.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Flow random seed.") in
  let jobs =
    Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N" ~doc:"Worker domains for the cost kernels. The resulting placement is identical at every value.")
  in
  let multilevel =
    Arg.(value & flag & info [ "multilevel" ] ~doc:"Force the multilevel global-placement V-cycle (coarsen, place coarse, interpolate, refine) regardless of design size. By default it engages automatically above the movable-cell threshold.")
  in
  let flat =
    Arg.(value & flag & info [ "flat" ] ~doc:"Force flat (single-level) global placement, disabling the multilevel V-cycle.")
  in
  let routability =
    Arg.(value & flag & info [ "routability" ] ~doc:"Congestion-driven global placement: steer the RUDY congestion map into the density model (cell inflation) and the gradient (per-bin penalty). Deterministic at every --jobs value.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"BASE" ~doc:"Write the placed design as Bookshelf BASE.*.")
  in
  let compare = Arg.(value & flag & info [ "compare" ] ~doc:"Run both flows and report the ratio.") in
  let svg =
    Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE" ~doc:"Write an SVG plot of the placement.")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:"Write the per-stage JSON trace (timing, HPWL before/after, overflow) to FILE.")
  in
  let check =
    Arg.(value & flag & info [ "check" ] ~doc:"Validate invariant oracles (legality, group rigidity, incremental-cache consistency) at every stage boundary; the first violation aborts with exit code 2 and names the offending stage.")
  in
  let term =
    Term.(const run $ verbose $ preset $ bookshelf $ mode $ beta $ density $ seed $ jobs $ multilevel $ flat $ routability $ out $ svg $ compare $ trace $ check)
  in
  Cmd.v (Cmd.info "dpp_place" ~doc:"Structure-aware analytical placement") term

let () = exit (Cmd.eval' cmd)
