(* dpp_fuzz: seeded differential fuzzing of the placement flow.

     dpp_fuzz --count 8                 # sweep seeds 1..8, shrink failures
     dpp_fuzz --seed 7                  # replay one seed exactly
     dpp_fuzz --seed 7 --cells 100 --nets 8 --moves 12 --dp-fraction 0
                                        # replay a shrunk reproducer
     dpp_fuzz --count 100 --budget 30   # bounded CI smoke run           *)

open Cmdliner
module Fuzz = Dpp_core.Fuzz

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Error))

let override v field c = match v with None -> c | Some x -> field c x

let build_case ~cells ~nets ~moves ~dp ~jobs ~eco_ops seed =
  Fuzz.case_of_seed seed
  |> override cells (fun c cells -> { c with Fuzz.cells })
  |> override nets (fun c nets -> { c with Fuzz.nets })
  |> override moves (fun c moves -> { c with Fuzz.moves })
  |> override dp (fun c dp_fraction -> { c with Fuzz.dp_fraction })
  |> override eco_ops (fun c eco_ops -> { c with Fuzz.eco_ops })
  |> fun c -> { c with Fuzz.jobs }

let run verbose seed base_seed count budget skip_flow cells nets moves dp jobs eco_ops =
  setup_logs verbose;
  let flow = not skip_flow in
  let case_of = build_case ~cells ~nets ~moves ~dp ~jobs ~eco_ops in
  let seeds =
    match seed with Some s -> [ s ] | None -> List.init count (fun i -> base_seed + i)
  in
  let t0 = Unix.gettimeofday () in
  let in_budget () =
    match budget with None -> true | Some b -> Unix.gettimeofday () -. t0 < b
  in
  let ran = ref 0 in
  let first_failure =
    List.find_map
      (fun s ->
        if not (in_budget ()) then None
        else begin
          incr ran;
          let c = case_of s in
          if verbose then Printf.printf "seed %d: %s\n%!" s (Fuzz.replay_command c);
          Fuzz.run_case ~flow c
        end)
      seeds
  in
  match first_failure with
  | None ->
    Printf.printf "dpp_fuzz: %d case%s ok (%.1fs)\n" !ran
      (if !ran = 1 then "" else "s")
      (Unix.gettimeofday () -. t0);
    0
  | Some failure ->
    let minimal = Fuzz.shrink (Fuzz.run_case ~flow) failure in
    Printf.eprintf "%s\n" (Format.asprintf "%a" Fuzz.pp_failure failure);
    if minimal.Fuzz.case <> failure.Fuzz.case then
      Printf.eprintf "shrunk to: %s\n" (Fuzz.replay_command minimal.Fuzz.case);
    1

let cmd =
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose progress.") in
  let seed =
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc:"Replay exactly one case derived from this seed.")
  in
  let base_seed =
    Arg.(value & opt int 1 & info [ "base-seed" ] ~docv:"N" ~doc:"First seed of the sweep.")
  in
  let count =
    Arg.(value & opt int 5 & info [ "count" ] ~docv:"N" ~doc:"Number of consecutive seeds to sweep.")
  in
  let budget =
    Arg.(value & opt (some float) None & info [ "budget" ] ~docv:"SECONDS" ~doc:"Stop starting new cases once this much wall time has elapsed.")
  in
  let skip_flow =
    Arg.(value & flag & info [ "skip-flow" ] ~doc:"Only run the unit and differential layers (no full pipeline runs).")
  in
  let cells =
    Arg.(value & opt (some int) None & info [ "cells" ] ~docv:"N" ~doc:"Override the case's design size (for replaying shrunk reproducers).")
  in
  let nets =
    Arg.(value & opt (some int) None & info [ "nets" ] ~docv:"N" ~doc:"Override the case's random net count.")
  in
  let moves =
    Arg.(value & opt (some int) None & info [ "moves" ] ~docv:"N" ~doc:"Override the case's move-sequence length.")
  in
  let dp =
    Arg.(value & opt (some float) None & info [ "dp-fraction" ] ~docv:"F" ~doc:"Override the case's datapath fraction.")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N" ~doc:"Worker domains. Above 1 adds a parallel-vs-serial differential layer (bit-exact kernel equivalence plus whole-flow determinism across worker counts).")
  in
  let eco_ops =
    Arg.(value & opt (some int) None & info [ "eco-ops" ] ~docv:"N" ~doc:"Override the case's ECO edit-list length (for replaying shrunk reproducers).")
  in
  let term =
    Term.(
      const run $ verbose $ seed $ base_seed $ count $ budget $ skip_flow $ cells $ nets
      $ moves $ dp $ jobs $ eco_ops)
  in
  Cmd.v
    (Cmd.info "dpp_fuzz"
       ~doc:"Seeded differential fuzzing of the placement flow and its incremental caches")
    term

let () = exit (Cmd.eval' cmd)
