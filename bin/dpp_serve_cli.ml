(* dpp_serve: the placement service daemon and its line client.

     dpp_serve daemon --socket /tmp/dpp.sock --workers 4 --spool /tmp/dpp.spool
     dpp_serve submit --socket /tmp/dpp.sock --preset dp_mix_l --check --out placed
     dpp_serve eco    --socket /tmp/dpp.sock --preset dp_mix_l --random-edits 4 --edit-seed 7
     dpp_serve ping   --socket /tmp/dpp.sock
     dpp_serve stop   --socket /tmp/dpp.sock                                      *)

open Cmdliner
module P = Dpp_serve.Protocol
module Server = Dpp_serve.Server
module Eco = Dpp_core.Eco
module Json = Dpp_report.Json
module Trace = Dpp_report.Trace

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

(* ----- daemon ----- *)

let daemon verbose socket workers queue spool =
  setup_logs verbose;
  let cfg = { Server.default_cfg with Server.workers; queue; spool } in
  let t = Server.create ~cfg () in
  let resumed = Server.resume t in
  if resumed <> [] then
    Printf.printf "resumed %d spooled job(s): %s\n%!" (List.length resumed)
      (String.concat ", " (List.map string_of_int resumed));
  let stop _ = Server.interrupt t in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Server.listen_unix t ~path:socket;
  (* listener is down; let in-flight jobs finish (or hit their abort
     boundary and spool themselves), then join the worker domains *)
  Server.drain t;
  Server.shutdown t;
  Printf.printf "served %d job(s), %d failed\n%!" (Server.jobs_completed t) (Server.jobs_failed t);
  0

(* ----- client plumbing ----- *)

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let stream_until_done fd =
  let rec loop code =
    match P.recv_response fd with
    | None ->
      Printf.eprintf "server closed the connection\n";
      if code = 0 then 1 else code
    | Some (P.Accepted { job }) ->
      Printf.printf "job %d accepted\n%!" job;
      loop code
    | Some (P.Rejected { reason }) ->
      Printf.eprintf "rejected: %s\n" reason;
      1
    | Some (P.Event { job; stage }) ->
      Printf.printf "job %d: %-8s %8.3fs  hpwl %.0f -> %.0f\n%!" job stage.Trace.name
        stage.Trace.wall_s stage.Trace.hpwl_before stage.Trace.hpwl_after;
      loop code
    | Some (P.Done { job; hpwl; wall_s; eco }) ->
      (match eco with
      | Some e ->
        Printf.printf "job %d done in %.3fs: hpwl %.0f (eco %s, dirty %.3f)\n%!" job wall_s hpwl
          (if e.P.fallback then "fallback" else "incremental")
          e.P.dirty_fraction
      | None -> Printf.printf "job %d done in %.3fs: hpwl %.0f\n%!" job wall_s hpwl);
      0
    | Some P.Pong -> loop code
    | Some (P.Failed { job; reason }) ->
      Printf.eprintf "job %d failed: %s\n" job reason;
      1
  in
  loop 0

let src_of ~preset ~bookshelf ~seed =
  match preset, bookshelf with
  | Some name, None -> Ok (P.Preset { name; seed })
  | None, Some basename -> Ok (P.Bookshelf { basename })
  | Some _, Some _ -> Error "give either --preset or --bookshelf, not both"
  | None, None -> Error "give --preset <name> or --bookshelf <basename>"

let spec_of ~src ~mode ~check ~jobs ~fast ~out =
  let mode =
    match mode with
    | "baseline" -> Dpp_core.Config.Baseline
    | "sa" | "structure-aware" -> Dpp_core.Config.Structure_aware
    | m -> failwith (Printf.sprintf "unknown mode %S" m)
  in
  let s = P.spec ~mode ~check ~jobs ?out src in
  if fast then { s with P.gp_rounds = Some 6; gp_inner_iters = Some 15; detail_passes = Some 1 }
  else s

let with_conn socket f =
  match connect socket with
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "cannot connect to %s: %s\n" socket (Unix.error_message e);
    1
  | fd -> Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ()) (fun () -> f fd)

let submit verbose socket preset bookshelf seed mode check jobs fast out =
  setup_logs verbose;
  match src_of ~preset ~bookshelf ~seed with
  | Error e ->
    Printf.eprintf "%s\n" e;
    1
  | Ok src ->
    with_conn socket (fun fd ->
        P.send_request fd (P.Submit (spec_of ~src ~mode ~check ~jobs ~fast ~out));
        stream_until_done fd)

let eco verbose socket preset bookshelf seed mode check jobs fast out edits_file random_edits
    edit_seed threshold verify =
  setup_logs verbose;
  match src_of ~preset ~bookshelf ~seed with
  | Error e ->
    Printf.eprintf "%s\n" e;
    1
  | Ok src -> (
    let base = spec_of ~src ~mode ~check ~jobs ~fast ~out in
    match
      match edits_file with
      | Some path ->
        P.Edits (Eco.edits_of_json (Json.parse (In_channel.with_open_bin path In_channel.input_all)))
      | None ->
        (* generated server-side against the placed base, where locality
           is meaningful *)
        P.Random_edits { ops = random_edits; seed = edit_seed }
    with
    | exception e ->
      Printf.eprintf "cannot build edit list: %s\n" (Printexc.to_string e);
      1
    | edits ->
      with_conn socket (fun fd ->
          P.send_request fd (P.Eco_submit { base; edits; threshold; verify });
          stream_until_done fd))

let ping verbose socket =
  setup_logs verbose;
  with_conn socket (fun fd ->
      P.send_request fd P.Ping;
      match P.recv_response fd with
      | Some P.Pong ->
        Printf.printf "pong\n";
        0
      | _ ->
        Printf.eprintf "no pong\n";
        1)

let stop verbose socket =
  setup_logs verbose;
  with_conn socket (fun fd ->
      P.send_request fd P.Shutdown;
      match P.recv_response fd with
      | Some P.Pong ->
        Printf.printf "server stopping\n";
        0
      | _ ->
        Printf.eprintf "no acknowledgement\n";
        1)

(* ----- terms ----- *)

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging.")

let socket =
  Arg.(
    value
    & opt string "/tmp/dpp_serve.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let preset =
  Arg.(value & opt (some string) None & info [ "preset" ] ~docv:"NAME" ~doc:"Built-in benchmark name.")

let bookshelf =
  Arg.(
    value
    & opt (some string) None
    & info [ "bookshelf" ] ~docv:"BASE" ~doc:"Bookshelf basename on the server's filesystem.")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator/flow seed.")
let mode = Arg.(value & opt string "baseline" & info [ "mode" ] ~docv:"MODE" ~doc:"baseline or sa.")
let check = Arg.(value & flag & info [ "check" ] ~doc:"Run the stage-boundary invariant oracles.")
let jobs = Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N" ~doc:"Worker domains per job.")

let fast =
  Arg.(
    value & flag
    & info [ "fast" ] ~doc:"Short flow (few GP rounds) — smoke tests and latency probes.")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"BASE" ~doc:"Server-side Bookshelf output basename.")

let daemon_cmd =
  let workers = Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc:"Concurrent jobs.") in
  let queue = Arg.(value & opt int 16 & info [ "queue" ] ~docv:"N" ~doc:"Job queue bound.") in
  let spool =
    Arg.(
      value
      & opt (some string) None
      & info [ "spool" ] ~docv:"DIR" ~doc:"Checkpoint directory for crash recovery.")
  in
  Cmd.v
    (Cmd.info "daemon" ~doc:"Run the placement service")
    Term.(const daemon $ verbose $ socket $ workers $ queue $ spool)

let submit_cmd =
  Cmd.v
    (Cmd.info "submit" ~doc:"Submit a full placement job and stream its trace")
    Term.(
      const submit $ verbose $ socket $ preset $ bookshelf $ seed $ mode $ check $ jobs $ fast $ out)

let eco_cmd =
  let edits_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "edits" ] ~docv:"FILE" ~doc:"JSON edit list (see Dpp_core.Eco).")
  in
  let random_edits =
    Arg.(
      value & opt int 4
      & info [ "random-edits" ] ~docv:"N" ~doc:"Generate N seeded edits when no --edits file is given.")
  in
  let edit_seed = Arg.(value & opt int 7 & info [ "edit-seed" ] ~docv:"S" ~doc:"Edit-list seed.") in
  let threshold =
    Arg.(
      value
      & opt (some float) None
      & info [ "threshold" ] ~docv:"F" ~doc:"Dirty-fraction fallback threshold override.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Fail the job unless every clean cell of the incremental result is bit-identical to \
             the base placement.")
  in
  Cmd.v
    (Cmd.info "eco" ~doc:"Submit an incremental ECO job against a base placement")
    Term.(
      const eco $ verbose $ socket $ preset $ bookshelf $ seed $ mode $ check $ jobs $ fast $ out
      $ edits_file $ random_edits $ edit_seed $ threshold $ verify)

let ping_cmd = Cmd.v (Cmd.info "ping" ~doc:"Liveness probe") Term.(const ping $ verbose $ socket)

let stop_cmd =
  Cmd.v (Cmd.info "stop" ~doc:"Ask the daemon to drain and exit") Term.(const stop $ verbose $ socket)

let cmd =
  Cmd.group
    (Cmd.info "dpp_serve" ~doc:"Placement as a service: job daemon and client")
    [ daemon_cmd; submit_cmd; eco_cmd; ping_cmd; stop_cmd ]

let () = exit (Cmd.eval' cmd)
