(* dpp_gen_cli: generate synthetic datapath benchmarks as Bookshelf files.

     dpp_gen_cli --preset dp_add32 --out /tmp/dp_add32
     dpp_gen_cli --preset xl100k --out /tmp/xl100k
     dpp_gen_cli --cells 5000 --dp-fraction 0.6 --seed 3 --out /tmp/custom
     dpp_gen_cli --peko --cells 100000 --out /tmp/peko100k  *)

open Cmdliner

let emit d ~extra out =
  let stats = Dpp_netlist.Nstats.compute d in
  Format.printf "%a@." Dpp_netlist.Nstats.pp stats;
  extra ();
  match out with
  | Some base ->
    Dpp_netlist.Bookshelf.write d ~basename:base;
    Printf.printf "written to %s.{aux,nodes,nets,pl,scl,masters%s}\n" base
      (if d.Dpp_netlist.Design.groups <> [] then ",groups" else "");
    0
  | None ->
    Printf.printf "(no --out given: stats only)\n";
    0

let run preset cells dp_fraction seed peko out list_presets =
  if list_presets then begin
    List.iter print_endline Dpp_gen.Presets.names;
    List.iter print_endline Dpp_gen.Xl.preset_names;
    0
  end
  else if peko then begin
    let d, opt = Dpp_gen.Peko.build ~name:"peko" ~cells () in
    emit d out ~extra:(fun () ->
        (* the gap denominator: final_hpwl / optimal_hpwl - 1 *)
        Printf.printf "PEKO optimal HPWL : %.1f\n" opt)
  end
  else begin
    match preset with
    | Some name when Dpp_gen.Xl.preset_cells name <> None ->
      let d = Option.get (Dpp_gen.Xl.by_name ~seed name) in
      emit d out ~extra:(fun () -> ())
    | _ -> (
      let spec =
        match preset with
        | Some name -> (
          match Dpp_gen.Presets.by_name name with
          | Some s -> Ok s
          | None -> Error (Printf.sprintf "unknown preset %S" name))
        | None -> (
          try Ok (Dpp_gen.Presets.scaled ~name:"custom" ~seed ~cells ~dp_fraction)
          with Invalid_argument msg -> Error msg)
      in
      match spec with
      | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
      | Ok spec ->
        let d = Dpp_gen.Compose.build spec in
        emit d out ~extra:(fun () -> ()))
  end

let cmd =
  let preset =
    Arg.(
      value
      & opt (some string) None
      & info [ "preset" ] ~docv:"NAME"
          ~doc:"Built-in benchmark to generate (dp_* suite or xl10k..xl1m).")
  in
  let cells = Arg.(value & opt int 2000 & info [ "cells" ] ~doc:"Target movable cell count (custom design or --peko).") in
  let dp_fraction =
    Arg.(value & opt float 0.5 & info [ "dp-fraction" ] ~doc:"Datapath fraction of movable cells (custom design).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let peko =
    Arg.(
      value & flag
      & info [ "peko" ]
          ~doc:
            "Generate a PEKO-style instance with analytically known optimal HPWL \
             (printed, so downstream runs can report an optimality gap).")
  in
  let out = Arg.(value & opt (some string) None & info [ "out" ] ~docv:"BASE" ~doc:"Bookshelf output basename.") in
  let list_presets = Arg.(value & flag & info [ "list" ] ~doc:"List preset names and exit.") in
  let term = Term.(const run $ preset $ cells $ dp_fraction $ seed $ peko $ out $ list_presets) in
  Cmd.v (Cmd.info "dpp_gen" ~doc:"Synthetic datapath benchmark generator") term

let () = exit (Cmd.eval' cmd)
