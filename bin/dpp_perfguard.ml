(* Perf-regression guard: compare a freshly produced BENCH_xl.json
   against the committed reference and fail when any watched wall-clock
   or memory number regresses past its tolerance factor.

   Watched wall-clock numbers: the xl100k full-flow wall time and every
   per-size SoA kernel time present in both files.  The wall tolerance
   defaults to 2.5x — CI runners are slow and noisy relative to the
   machine the reference was recorded on, so this only catches
   order-of-magnitude regressions (an accidentally quadratic loop, a
   lost optimization), not jitter.

   Watched memory numbers: per-size [vm_hwm_kb] and [top_heap_kb] from
   the sweep, and the xl1m full-flow [vm_hwm_kb] when both files carry
   one.  Resident footprint is far less noisy than wall time — the
   same binary on the same input allocates the same bytes — so the
   memory tolerance defaults to a much tighter 1.3x.  A change that
   re-boxes the compact netlist core or leaks a per-level buffer trips
   this gate even on a fast runner.

   Sizes, kernels or memory fields present in only one file are
   skipped, so the guard keeps working when the sweep is capped via
   DPP_XL_MAX or when an older reference predates the memory ledger. *)

module Json = Dpp_report.Json

let usage () =
  prerr_endline "usage: dpp_perfguard REFERENCE.json FRESH.json [WALL_TOL] [MEM_TOL]";
  exit 2

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let num path v =
  match v with
  | Some (Json.Num f) -> Some f
  | _ ->
    Printf.eprintf "warning: %s missing or not a number, skipped\n" path;
    None

(* memory fields are optional (older references predate the ledger) —
   no warning when absent, the join just skips them *)
let num_opt v = match v with Some (Json.Num f) -> Some f | _ -> None

let () =
  let ref_path, fresh_path, wall_tol, mem_tol =
    match Array.to_list Sys.argv with
    | [ _; r; f ] -> r, f, 2.5, 1.3
    | [ _; r; f; t ] -> r, f, float_of_string t, 1.3
    | [ _; r; f; t; m ] -> r, f, float_of_string t, float_of_string m
    | _ -> usage ()
  in
  let reference = Json.parse (read_file ref_path) in
  let fresh = Json.parse (read_file fresh_path) in
  let failures = ref 0 in
  let check label r f =
    match r, f with
    | Some r, Some f when r > 0.0 ->
      let ratio = f /. r in
      let bad = ratio > wall_tol in
      if bad then incr failures;
      Printf.printf "%-28s ref %8.3f s  fresh %8.3f s  %5.2fx %s\n" label r f ratio
        (if bad then "FAIL" else "ok")
    | _ -> ()
  in
  let check_mem label r f =
    match r, f with
    | Some r, Some f when r > 0.0 ->
      let ratio = f /. r in
      let bad = ratio > mem_tol in
      if bad then incr failures;
      Printf.printf "%-28s ref %8.1f MB fresh %8.1f MB %5.2fx %s\n" label (r /. 1024.)
        (f /. 1024.) ratio
        (if bad then "FAIL" else "ok")
    | _ -> ()
  in
  let flow_wall doc =
    num "flow.wall_s" (Option.bind (Json.member "flow" doc) (Json.member "wall_s"))
  in
  check "flow xl100k" (flow_wall reference) (flow_wall fresh);
  (* per-size kernel times and memory marks, joined by size name *)
  let sizes doc =
    match Json.member "sizes" doc with
    | Some (Json.Arr xs) ->
      List.filter_map
        (fun x ->
          match Json.member "name" x with Some (Json.Str n) -> Some (n, x) | _ -> None)
        xs
    | _ -> []
  in
  let ref_sizes = sizes reference in
  List.iter
    (fun (name, fx) ->
      match List.assoc_opt name ref_sizes with
      | None -> ()
      | Some rx ->
        (match Json.member "kernels" rx, Json.member "kernels" fx with
        | Some (Json.Obj rk), Some (Json.Obj fk) ->
          List.iter
            (fun (kname, rv) ->
              match List.assoc_opt kname fk with
              | None -> ()
              | Some fv ->
                check
                  (Printf.sprintf "%s %s" name kname)
                  (num "soa_s" (Json.member "soa_s" rv))
                  (num "soa_s" (Json.member "soa_s" fv)))
            rk
        | _ -> ());
        List.iter
          (fun field ->
            check_mem
              (Printf.sprintf "%s %s" name field)
              (num_opt (Json.member field rx))
              (num_opt (Json.member field fx)))
          [ "vm_hwm_kb"; "top_heap_kb" ])
    (sizes fresh);
  (* the non-gating-in-CI xl1m flow still gates here when both files
     recorded it: its VmHWM is the number the compact core exists for *)
  let xl1m_hwm doc =
    num_opt (Option.bind (Json.member "flow_xl1m" doc) (Json.member "vm_hwm_kb"))
  in
  check_mem "flow xl1m vm_hwm" (xl1m_hwm reference) (xl1m_hwm fresh);
  if !failures > 0 then begin
    Printf.printf "%d regression(s) past tolerance (wall %.1fx, mem %.1fx)\n" !failures
      wall_tol mem_tol;
    exit 1
  end
  else Printf.printf "perf guard clean (wall tolerance %.1fx, mem %.1fx)\n" wall_tol mem_tol
