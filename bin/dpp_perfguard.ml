(* Perf-regression guard: compare a freshly produced BENCH_xl.json
   against the committed reference and fail when any watched wall-clock
   number regresses past a generous tolerance factor.

   Watched numbers: the xl100k full-flow wall time and every per-size
   SoA kernel time present in both files.  The tolerance defaults to
   2.5x — CI runners are slow and noisy relative to the machine the
   reference was recorded on, so this only catches order-of-magnitude
   regressions (an accidentally quadratic loop, a lost optimization),
   not jitter.  Sizes or kernels present in only one file are skipped,
   so the guard keeps working when the sweep is capped via DPP_XL_MAX. *)

module Json = Dpp_report.Json

let usage () =
  prerr_endline "usage: dpp_perfguard REFERENCE.json FRESH.json [TOLERANCE]";
  exit 2

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let num path v =
  match v with
  | Some (Json.Num f) -> Some f
  | _ ->
    Printf.eprintf "warning: %s missing or not a number, skipped\n" path;
    None

let () =
  let ref_path, fresh_path, tol =
    match Array.to_list Sys.argv with
    | [ _; r; f ] -> r, f, 2.5
    | [ _; r; f; t ] -> r, f, float_of_string t
    | _ -> usage ()
  in
  let reference = Json.parse (read_file ref_path) in
  let fresh = Json.parse (read_file fresh_path) in
  let failures = ref 0 in
  let check label r f =
    match r, f with
    | Some r, Some f when r > 0.0 ->
      let ratio = f /. r in
      let bad = ratio > tol in
      if bad then incr failures;
      Printf.printf "%-28s ref %8.3f s  fresh %8.3f s  %5.2fx %s\n" label r f ratio
        (if bad then "FAIL" else "ok")
    | _ -> ()
  in
  let flow_wall doc =
    num "flow.wall_s" (Option.bind (Json.member "flow" doc) (Json.member "wall_s"))
  in
  check "flow xl100k" (flow_wall reference) (flow_wall fresh);
  (* per-size kernel times, joined by size name *)
  let sizes doc =
    match Json.member "sizes" doc with
    | Some (Json.Arr xs) ->
      List.filter_map
        (fun x ->
          match Json.member "name" x with Some (Json.Str n) -> Some (n, x) | _ -> None)
        xs
    | _ -> []
  in
  let ref_sizes = sizes reference in
  List.iter
    (fun (name, fx) ->
      match List.assoc_opt name ref_sizes with
      | None -> ()
      | Some rx -> (
        match Json.member "kernels" rx, Json.member "kernels" fx with
        | Some (Json.Obj rk), Some (Json.Obj fk) ->
          List.iter
            (fun (kname, rv) ->
              match List.assoc_opt kname fk with
              | None -> ()
              | Some fv ->
                check
                  (Printf.sprintf "%s %s" name kname)
                  (num "soa_s" (Json.member "soa_s" rv))
                  (num "soa_s" (Json.member "soa_s" fv)))
            rk
        | _ -> ()))
    (sizes fresh);
  if !failures > 0 then begin
    Printf.printf "%d regression(s) past %.1fx tolerance\n" !failures tol;
    exit 1
  end
  else Printf.printf "perf guard clean (tolerance %.1fx)\n" tol
