(* Tests for Dpp_numeric: Vec, Csr, Pcg, Linesearch, Nlcg. *)

module Vec = Dpp_numeric.Vec
module Csr = Dpp_numeric.Csr
module Pcg = Dpp_numeric.Pcg
module Linesearch = Dpp_numeric.Linesearch
module Nlcg = Dpp_numeric.Nlcg

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* ---------------- Vec ---------------- *)

let test_vec_ops () =
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 4.0; 5.0; 6.0 |] in
  check_float "dot" 32.0 (Vec.dot x y);
  check_float "nrm2" (sqrt 14.0) (Vec.nrm2 x);
  check_float "nrm_inf" 3.0 (Vec.nrm_inf x);
  let z = Array.copy y in
  Vec.axpy 2.0 x z;
  Alcotest.(check (array (float 1e-12))) "axpy" [| 6.0; 9.0; 12.0 |] z;
  let s = Vec.sub x y in
  Alcotest.(check (array (float 1e-12))) "sub" [| -3.0; -3.0; -3.0 |] s;
  check_float "max_abs_diff" 3.0 (Vec.max_abs_diff x y)

let test_vec_mismatch () =
  Alcotest.(check bool) "length mismatch raises" true
    (try
       ignore (Vec.dot [| 1.0 |] [| 1.0; 2.0 |]);
       false
     with Invalid_argument _ -> true)

(* ---------------- Csr ---------------- *)

let test_csr_build () =
  let b = Csr.Triplets.create ~rows:3 ~cols:3 in
  Csr.Triplets.add b 0 0 2.0;
  Csr.Triplets.add b 0 0 1.0;
  (* duplicate sums *)
  Csr.Triplets.add b 1 2 4.0;
  Csr.Triplets.add b 2 1 5.0;
  Csr.Triplets.add b 2 2 0.0;
  (* explicit zero dropped *)
  let a = Csr.Triplets.to_csr b in
  check_float "dup merged" 3.0 (Csr.get a 0 0);
  check_float "entry" 4.0 (Csr.get a 1 2);
  check_float "absent" 0.0 (Csr.get a 0 1);
  Alcotest.(check int) "nnz (zero dropped)" 3 (Csr.nnz a)

let test_csr_mul () =
  let b = Csr.Triplets.create ~rows:2 ~cols:2 in
  Csr.Triplets.add b 0 0 1.0;
  Csr.Triplets.add b 0 1 2.0;
  Csr.Triplets.add b 1 0 3.0;
  Csr.Triplets.add b 1 1 4.0;
  let a = Csr.Triplets.to_csr b in
  let y = Array.make 2 0.0 in
  Csr.mul a [| 1.0; 1.0 |] y;
  Alcotest.(check (array (float 1e-12))) "mul" [| 3.0; 7.0 |] y

let test_csr_transpose_symmetric () =
  let b = Csr.Triplets.create ~rows:3 ~cols:3 in
  Csr.Triplets.add b 0 1 2.0;
  Csr.Triplets.add b 1 0 2.0;
  Csr.Triplets.add b 2 2 1.0;
  let a = Csr.Triplets.to_csr b in
  Alcotest.(check bool) "symmetric" true (Csr.is_symmetric a);
  let t = Csr.transpose a in
  check_float "transpose entry" 2.0 (Csr.get t 1 0)

let prop_csr_mul_matches_dense =
  let gen =
    QCheck.Gen.(
      let* n = 1 -- 6 in
      let* entries = list_size (0 -- 20) (triple (0 -- (n - 1)) (0 -- (n - 1)) (float_range (-5.0) 5.0)) in
      let* x = list_repeat n (float_range (-3.0) 3.0) in
      return (n, entries, Array.of_list x))
  in
  QCheck.Test.make ~name:"csr mul matches dense" ~count:200 (QCheck.make gen)
    (fun (n, entries, x) ->
      let dense = Array.make_matrix n n 0.0 in
      let b = Csr.Triplets.create ~rows:n ~cols:n in
      List.iter
        (fun (i, j, v) ->
          dense.(i).(j) <- dense.(i).(j) +. v;
          Csr.Triplets.add b i j v)
        entries;
      let a = Csr.Triplets.to_csr b in
      let y = Array.make n 0.0 in
      Csr.mul a x y;
      let ok = ref true in
      for i = 0 to n - 1 do
        let want = ref 0.0 in
        for j = 0 to n - 1 do
          want := !want +. (dense.(i).(j) *. x.(j))
        done;
        if abs_float (!want -. y.(i)) > 1e-7 then ok := false
      done;
      !ok)

(* ---------------- Pcg ---------------- *)

(* random SPD system: L + diag, L a graph Laplacian *)
let laplacian_system seed n =
  let rng = Dpp_util.Rng.create seed in
  let b = Csr.Triplets.create ~rows:n ~cols:n in
  for _ = 1 to 3 * n do
    let i = Dpp_util.Rng.int rng n and j = Dpp_util.Rng.int rng n in
    if i <> j then begin
      let w = Dpp_util.Rng.float rng 2.0 +. 0.1 in
      Csr.Triplets.add b i i w;
      Csr.Triplets.add b j j w;
      Csr.Triplets.add b i j (-.w);
      Csr.Triplets.add b j i (-.w)
    end
  done;
  for i = 0 to n - 1 do
    Csr.Triplets.add b i i 1.0
  done;
  Csr.Triplets.to_csr b

let test_pcg_solves () =
  let n = 50 in
  let a = laplacian_system 5 n in
  let x_true = Array.init n (fun i -> sin (float_of_int i)) in
  let rhs = Array.make n 0.0 in
  Csr.mul a x_true rhs;
  let x, stats = Pcg.solve ~tol:1e-10 a rhs in
  Alcotest.(check bool) "converged" true stats.Pcg.converged;
  Alcotest.(check bool) "accurate" true (Vec.max_abs_diff x x_true < 1e-6)

let test_pcg_identity () =
  let b = Csr.Triplets.create ~rows:3 ~cols:3 in
  for i = 0 to 2 do
    Csr.Triplets.add b i i 1.0
  done;
  let a = Csr.Triplets.to_csr b in
  let x, stats = Pcg.solve a [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check bool) "identity immediate" true (stats.Pcg.iterations <= 2);
  Alcotest.(check (array (float 1e-8))) "solution" [| 1.0; 2.0; 3.0 |] x

let test_pcg_warm_start () =
  let n = 30 in
  let a = laplacian_system 6 n in
  let x_true = Array.init n (fun i -> float_of_int (i mod 5)) in
  let rhs = Array.make n 0.0 in
  Csr.mul a x_true rhs;
  let _, cold = Pcg.solve ~tol:1e-10 a rhs in
  let _, warm = Pcg.solve ~tol:1e-10 ~x0:x_true a rhs in
  Alcotest.(check bool) "warm start cheaper" true (warm.Pcg.iterations <= cold.Pcg.iterations)

let test_pcg_operator () =
  (* matrix-free 2x2: A = [[2,0],[0,4]] *)
  let mul x y =
    y.(0) <- 2.0 *. x.(0);
    y.(1) <- 4.0 *. x.(1)
  in
  let x, stats = Pcg.solve_operator ~n:2 ~mul ~diag:[| 2.0; 4.0 |] [| 2.0; 8.0 |] in
  Alcotest.(check bool) "converged" true stats.Pcg.converged;
  Alcotest.(check (array (float 1e-8))) "solution" [| 1.0; 2.0 |] x

(* ---------------- Linesearch ---------------- *)

let test_armijo_quadratic () =
  (* f(x) = x^2 from x=1 along d=-1: any step in (0,2) acceptable-ish *)
  let f v = v.(0) *. v.(0) in
  let scratch = [| 0.0 |] in
  let r =
    Linesearch.armijo ~f ~x:[| 1.0 |] ~d:[| -1.0 |] ~f0:1.0 ~slope:(-2.0) ~step0:1.0 ~scratch ()
  in
  Alcotest.(check bool) "ok" true r.Linesearch.ok;
  Alcotest.(check bool) "decreased" true (r.Linesearch.f_new < 1.0)

let test_armijo_failure () =
  (* ascent direction: no step satisfies Armijo with negative slope claim *)
  let f v = v.(0) *. v.(0) in
  let scratch = [| 0.0 |] in
  let r =
    Linesearch.armijo ~max_trials:8 ~f ~x:[| 1.0 |] ~d:[| 1.0 |] ~f0:1.0 ~slope:(-2.0)
      ~step0:1.0 ~scratch ()
  in
  Alcotest.(check bool) "fails" false r.Linesearch.ok;
  check_float "scratch restored" 1.0 scratch.(0)

(* ---------------- Nlcg ---------------- *)

let test_nlcg_quadratic_bowl () =
  let p =
    {
      Nlcg.n = 2;
      eval = (fun v -> ((v.(0) -. 3.0) ** 2.0) +. (10.0 *. ((v.(1) +. 1.0) ** 2.0)));
      grad =
        (fun v g ->
          g.(0) <- 2.0 *. (v.(0) -. 3.0);
          g.(1) <- 20.0 *. (v.(1) +. 1.0));
      eval_grad = None;
    }
  in
  let r = Nlcg.minimize p [| 0.0; 0.0 |] in
  check_close 1e-3 "x0" 3.0 r.Nlcg.x.(0);
  check_close 1e-3 "x1" (-1.0) r.Nlcg.x.(1);
  Alcotest.(check bool) "converged" true r.Nlcg.converged

let test_nlcg_rosenbrock () =
  let p =
    {
      Nlcg.n = 2;
      eval =
        (fun v ->
          let a = 1.0 -. v.(0) and b = v.(1) -. (v.(0) *. v.(0)) in
          (a *. a) +. (100.0 *. b *. b));
      grad =
        (fun v g ->
          let b = v.(1) -. (v.(0) *. v.(0)) in
          g.(0) <- (-2.0 *. (1.0 -. v.(0))) -. (400.0 *. v.(0) *. b);
          g.(1) <- 200.0 *. b);
      eval_grad = None;
    }
  in
  let options = { Nlcg.default_options with Nlcg.max_iter = 5000; f_tol = 0.0; grad_tol = 1e-7 } in
  let r = Nlcg.minimize ~options p [| -1.2; 1.0 |] in
  Alcotest.(check bool) "near optimum" true
    (abs_float (r.Nlcg.x.(0) -. 1.0) < 1e-2 && abs_float (r.Nlcg.x.(1) -. 1.0) < 2e-2)

let test_nlcg_projection () =
  (* minimise (x-5)^2 constrained to x <= 2 by projection *)
  let p =
    {
      Nlcg.n = 1;
      eval = (fun v -> (v.(0) -. 5.0) ** 2.0);
      grad = (fun v g -> g.(0) <- 2.0 *. (v.(0) -. 5.0));
      eval_grad = None;
    }
  in
  let project v = if v.(0) > 2.0 then v.(0) <- 2.0 in
  let options = { Nlcg.default_options with Nlcg.project = Some project } in
  let r = Nlcg.minimize ~options p [| 0.0 |] in
  Alcotest.(check bool) "at bound" true (r.Nlcg.x.(0) <= 2.0 +. 1e-9);
  Alcotest.(check bool) "reaches bound" true (r.Nlcg.x.(0) > 1.9)

let test_nlcg_monotone =
  QCheck.Test.make ~name:"nlcg decreases a random convex quadratic" ~count:50
    QCheck.(pair (float_range 0.5 10.0) (float_range (-5.0) 5.0))
    (fun (a, c) ->
      let p =
        {
          Nlcg.n = 1;
          eval = (fun v -> a *. ((v.(0) -. c) ** 2.0));
          grad = (fun v g -> g.(0) <- 2.0 *. a *. (v.(0) -. c));
          eval_grad = None;
        }
      in
      let f0 = p.Nlcg.eval [| 100.0 |] in
      let options = { Nlcg.default_options with Nlcg.max_iter = 500; f_tol = 0.0 } in
      let r = Nlcg.minimize ~options p [| 100.0 |] in
      (* must make substantial progress toward the optimum (the Armijo-only
         line search is deliberately cheap, not exact) *)
      r.Nlcg.f <= f0 +. 1e-9 && (r.Nlcg.f <= 1e-3 *. f0 || abs_float (r.Nlcg.x.(0) -. c) < 1.0))

let suite =
  [
    Alcotest.test_case "vec ops" `Quick test_vec_ops;
    Alcotest.test_case "vec mismatch" `Quick test_vec_mismatch;
    Alcotest.test_case "csr build" `Quick test_csr_build;
    Alcotest.test_case "csr mul" `Quick test_csr_mul;
    Alcotest.test_case "csr transpose/symmetric" `Quick test_csr_transpose_symmetric;
    QCheck_alcotest.to_alcotest prop_csr_mul_matches_dense;
    Alcotest.test_case "pcg solves laplacian" `Quick test_pcg_solves;
    Alcotest.test_case "pcg identity" `Quick test_pcg_identity;
    Alcotest.test_case "pcg warm start" `Quick test_pcg_warm_start;
    Alcotest.test_case "pcg operator" `Quick test_pcg_operator;
    Alcotest.test_case "armijo quadratic" `Quick test_armijo_quadratic;
    Alcotest.test_case "armijo failure" `Quick test_armijo_failure;
    Alcotest.test_case "nlcg bowl" `Quick test_nlcg_quadratic_bowl;
    Alcotest.test_case "nlcg rosenbrock" `Quick test_nlcg_rosenbrock;
    Alcotest.test_case "nlcg projection" `Quick test_nlcg_projection;
    QCheck_alcotest.to_alcotest test_nlcg_monotone;
  ]
