(* Tests for the flat SoA netlist core: the of_design/to_design round
   trip, CSR adjacency invariants, the x/y/orient aliasing contract, and
   bit-identity of every SoA kernel against the preserved record-path
   implementations in Dpp_refkernels — on each benchmark preset, with the
   pooled kernels checked at 1/2/4 worker domains. *)

module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Soa = Dpp_netlist.Soa
module Pins = Dpp_wirelen.Pins
module Hpwl = Dpp_wirelen.Hpwl
module Model = Dpp_wirelen.Model
module Par_grad = Dpp_wirelen.Par_grad
module Netbox = Dpp_wirelen.Netbox
module Grid = Dpp_density.Grid
module Bell = Dpp_density.Bell
module Rudy = Dpp_congest.Rudy
module Pool = Dpp_par.Pool
module R = Dpp_refkernels.Record_path
module Fuzz = Dpp_core.Fuzz
module I32 = Dpp_util.Compact.I32

let designs_under_test () =
  List.map
    (fun spec -> Dpp_gen.Compose.build spec)
    (List.filter_map Dpp_gen.Presets.by_name [ "dp_add16"; "dp_mix_s"; "rand_ctrl" ])
  @ [ Fuzz.random_design ~seed:5 ~cells:150 ~nets:60; Tutil.random_design 3 ]

(* ----- round trip ----- *)

let test_roundtrip_presets () =
  List.iter
    (fun d ->
      let d' = Soa.to_design (Soa.of_design d) in
      Alcotest.(check bool)
        (d.Design.name ^ ": to_design (of_design d) = d")
        true (d' = d))
    (designs_under_test ())

let prop_roundtrip_random =
  QCheck.Test.make ~name:"soa round trip on random designs" ~count:40 QCheck.small_int
    (fun seed ->
      let d = Fuzz.random_design ~seed ~cells:(60 + (seed mod 90)) ~nets:40 in
      Soa.to_design (Soa.of_design d) = d)

let test_roundtrip_shares_nothing () =
  let d = Tutil.random_design 11 in
  let s = Soa.of_design d in
  let d' = Soa.to_design s in
  (* the round-tripped design owns fresh coordinate arrays *)
  let saved = d'.Design.x.(0) in
  d.Design.x.(0) <- d.Design.x.(0) +. 7.0;
  Alcotest.(check (float 0.0)) "to_design copies coordinates" saved d'.Design.x.(0);
  d.Design.x.(0) <- d.Design.x.(0) -. 7.0

let test_aliasing_contract () =
  let d = Tutil.random_design 12 in
  let s = Soa.of_design d in
  d.Design.x.(1) <- 123.5;
  Alcotest.(check (float 0.0)) "soa.x aliases design.x" 123.5 s.Soa.x.(1);
  s.Soa.y.(2) <- 77.25;
  Alcotest.(check (float 0.0)) "writes through soa.y are visible" 77.25 d.Design.y.(2)

(* ----- CSR invariants ----- *)

let test_csr_consistency () =
  List.iter
    (fun d ->
      let s = Soa.of_design d in
      let name = d.Design.name in
      Alcotest.(check int) (name ^ ": cell csr total") s.Soa.num_pins
        (I32.get s.Soa.cell_pin_off s.Soa.num_cells);
      for c = 0 to s.Soa.num_cells - 1 do
        for k = I32.get s.Soa.cell_pin_off c to I32.get s.Soa.cell_pin_off (c + 1) - 1 do
          if I32.get s.Soa.pin_cell (I32.get s.Soa.cell_pin k) <> c then
            Alcotest.failf "%s: pin %d listed under cell %d but owned by %d" name
              (I32.get s.Soa.cell_pin k) c
              (I32.get s.Soa.pin_cell (I32.get s.Soa.cell_pin k))
        done
      done;
      for n = 0 to s.Soa.num_nets - 1 do
        let pins = (Design.net d n).Types.n_pins in
        let lo = I32.get s.Soa.net_pin_off n in
        Alcotest.(check int) (name ^ ": net degree") (Array.length pins)
          (Soa.net_degree s n);
        Array.iteri
          (fun i p ->
            if I32.get s.Soa.net_pin (lo + i) <> p then
              Alcotest.failf "%s: net %d pin order not preserved at slot %d" name n i;
            if I32.get s.Soa.pin_net p <> n then
              Alcotest.failf "%s: pin_net inverse broken for pin %d" name p)
          pins
      done)
    (designs_under_test ())

(* ----- kernel equivalence vs the record path ----- *)

let grad_equal ~what n soa_f ref_f =
  let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
  let gx' = Array.make n 0.0 and gy' = Array.make n 0.0 in
  let v = soa_f ~gx ~gy and v' = ref_f ~gx:gx' ~gy:gy' in
  if not (Float.equal v v') then
    Alcotest.failf "%s: value %.17g vs record %.17g" what v v';
  if not (Array.for_all2 Float.equal gx gx' && Array.for_all2 Float.equal gy gy') then
    Alcotest.failf "%s: gradient differs from the record path" what

let test_kernels_match_record_path () =
  List.iter
    (fun d ->
      let name = d.Design.name in
      let pins = Pins.build d in
      let rp = R.Rpins.build d in
      let cx, cy = Pins.centers_of_design d in
      let n = Design.num_cells d in
      let gamma = max 1.0 (0.02 *. Dpp_geom.Rect.width d.Design.die) in
      if not (Float.equal (Hpwl.total pins ~cx ~cy) (R.hpwl_total rp ~cx ~cy)) then
        Alcotest.failf "%s: hpwl differs from the record path" name;
      grad_equal ~what:(name ^ " wa") n
        (fun ~gx ~gy -> Model.value_grad Model.Wa pins ~gamma ~cx ~cy ~gx ~gy)
        (fun ~gx ~gy -> R.wa_value_grad rp ~gamma ~cx ~cy ~gx ~gy);
      grad_equal ~what:(name ^ " lse") n
        (fun ~gx ~gy -> Model.value_grad Model.Lse pins ~gamma ~cx ~cy ~gx ~gy)
        (fun ~gx ~gy -> R.lse_value_grad rp ~gamma ~cx ~cy ~gx ~gy);
      let nx, ny = Grid.default_dims d in
      let grid = Grid.build d ~nx ~ny in
      let bell = Bell.create ~soa:pins.Pins.soa d ~grid ~target_density:0.9 in
      let rbell = R.Rbell.create d ~grid ~target_density:0.9 in
      grad_equal ~what:(name ^ " bell") n
        (fun ~gx ~gy -> Bell.value_grad bell ~cx ~cy ~gx ~gy)
        (fun ~gx ~gy -> R.Rbell.value_grad rbell ~cx ~cy ~gx ~gy);
      let rd = Rudy.compute ~pins ~nx ~ny d ~cx ~cy in
      let rr = R.rudy rp ~nx ~ny ~cx ~cy in
      if not (Array.for_all2 Float.equal rd.Rudy.demand rr) then
        Alcotest.failf "%s: rudy demand map differs from the record path" name;
      let nb = Netbox.build pins ~cx ~cy in
      for net = 0 to Design.num_nets d - 1 do
        if Array.length (Design.net d net).Types.n_pins >= 2 then begin
          let a0, a1, a2, a3 = Netbox.net_box nb net in
          let b0, b1, b2, b3 = R.net_box rp ~cx ~cy net in
          if
            not
              (Float.equal a0 b0 && Float.equal a1 b1 && Float.equal a2 b2
             && Float.equal a3 b3)
          then Alcotest.failf "%s: net %d box differs from the record rescan" name net
        end
      done)
    (designs_under_test ())

(* pooled kernels at 1/2/4 worker domains: the gradient and netbox paths
   must equal the serial (= record-identical) results exactly; the
   chunk-merged bell/RUDY paths must not depend on the worker count *)
let test_kernels_jobs_1_2_4 () =
  List.iter
    (fun d ->
      let name = d.Design.name in
      let pins = Pins.build d in
      let rp = R.Rpins.build d in
      let cx, cy = Pins.centers_of_design d in
      let n = Design.num_cells d in
      let gamma = max 1.0 (0.02 *. Dpp_geom.Rect.width d.Design.die) in
      let nx, ny = Grid.default_dims d in
      let grid = Grid.build d ~nx ~ny in
      let bell = Bell.create ~soa:pins.Pins.soa d ~grid ~target_density:0.9 in
      let at_jobs jobs =
        Pool.with_pool ~nworkers:jobs @@ fun pool ->
        let pg = Par_grad.create pool pins in
        let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
        let v = Par_grad.value_grad pg pool Model.Wa ~gamma ~cx ~cy ~gx ~gy in
        let bp = Bell.par_create bell in
        let bx = Array.make n 0.0 and by = Array.make n 0.0 in
        let bv = Bell.par_value_grad bp pool ~cx ~cy ~gx:bx ~gy:by in
        let rd = Rudy.compute ~pool ~pins ~nx ~ny d ~cx ~cy in
        let nb = Netbox.build ~pool pins ~cx ~cy in
        v, gx, gy, bv, bx, by, rd.Rudy.demand, Netbox.total nb
      in
      (* anchor: the pooled gradient must equal the record path too *)
      let gx' = Array.make n 0.0 and gy' = Array.make n 0.0 in
      let vr = R.wa_value_grad rp ~gamma ~cx ~cy ~gx:gx' ~gy:gy' in
      let v1, px1, py1, b1, bx1, by1, rd1, nt1 = at_jobs 1 in
      if not (Float.equal v1 vr && Array.for_all2 Float.equal px1 gx') then
        Alcotest.failf "%s: pooled wa at 1 worker differs from the record path" name;
      ignore py1;
      List.iter
        (fun jobs ->
          let v, px, py, bv, bx, by, rd, nt = at_jobs jobs in
          let ok =
            Float.equal v1 v
            && Array.for_all2 Float.equal px1 px
            && Array.for_all2 Float.equal py1 py
            && Float.equal b1 bv
            && Array.for_all2 Float.equal bx1 bx
            && Array.for_all2 Float.equal by1 by
            && Array.for_all2 Float.equal rd1 rd
            && Float.equal nt1 nt
          in
          if not ok then
            Alcotest.failf "%s: pooled kernels at %d workers differ from 1" name jobs)
        [ 2; 4 ])
    (designs_under_test ())

(* ----- XL generator and PEKO ----- *)

let test_xl_deterministic_and_valid () =
  let d1 = Option.get (Dpp_gen.Xl.by_name ~seed:1 "xl10k") in
  let d2 = Option.get (Dpp_gen.Xl.by_name ~seed:1 "xl10k") in
  Alcotest.(check bool) "xl generator deterministic" true (d1 = d2);
  let issues = Dpp_netlist.Validate.check d1 in
  Alcotest.(check bool)
    (String.concat "; "
       (List.map
          (fun (i : Dpp_netlist.Validate.issue) -> i.Dpp_netlist.Validate.message)
          (Dpp_netlist.Validate.errors issues)))
    true
    (Dpp_netlist.Validate.errors issues = []);
  (* target size honored within the tile/pad rounding *)
  let cells = Design.num_cells d1 in
  Alcotest.(check bool)
    (Printf.sprintf "xl10k size %d within 5%% of 10000" cells)
    true
    (abs (cells - 10_000) < 500);
  (* the flat core digests it unchanged *)
  Alcotest.(check bool) "xl round trip" true (Soa.to_design (Soa.of_design d1) = d1)

let test_peko_optimum_attained () =
  let d, opt = Dpp_gen.Peko.build ~name:"peko" ~cells:2_000 () in
  let issues = Dpp_netlist.Validate.check d in
  Alcotest.(check bool) "peko validates" true (Dpp_netlist.Validate.errors issues = []);
  let pins = Pins.build d in
  let cx, cy = Pins.centers_of_design d in
  (* the shipped placement attains the analytic optimum exactly: every
     net spans (degree - 1) consecutive unit sites in one row *)
  Alcotest.(check (float 0.0)) "shipped placement HPWL = optimal HPWL" opt
    (Hpwl.total pins ~cx ~cy);
  (* and no placement can beat it, per net: spot-check the bound shape *)
  Array.iter
    (fun (n : Types.net) ->
      let k = Array.length n.Types.n_pins in
      Alcotest.(check bool) "net degree from the cycle" true (k >= 2 && k <= 8))
    d.Design.nets

(* The int32 CSR overflow gate: a pin total past the int32 range must
   fail fast at derivation time with the counted number in the message,
   and the largest representable total must pass silently. *)
let test_int32_overflow_guard () =
  let over = I32.max_value + 1 in
  (match Soa.guard_pin_count ~name:"synthetic_xl" over with
  | () -> Alcotest.fail "guard_pin_count accepted a pin total past the int32 range"
  | exception Failure msg ->
    let contains needle =
      let nl = String.length needle and hl = String.length msg in
      let rec go i = i + nl <= hl && (String.sub msg i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "message names the design" true (contains "synthetic_xl");
    Alcotest.(check bool) "message carries the counted pin total" true
      (contains (string_of_int over)));
  (* the boundary itself is representable: no failure at exactly max *)
  Soa.guard_pin_count ~name:"at_the_edge" I32.max_value

let suite =
  [
    Alcotest.test_case "round trip on presets and fuzz designs" `Quick
      test_roundtrip_presets;
    Alcotest.test_case "int32 csr overflow guard" `Quick test_int32_overflow_guard;
    QCheck_alcotest.to_alcotest prop_roundtrip_random;
    Alcotest.test_case "round trip shares no mutable state" `Quick
      test_roundtrip_shares_nothing;
    Alcotest.test_case "x/y aliasing contract" `Quick test_aliasing_contract;
    Alcotest.test_case "csr adjacency consistent" `Quick test_csr_consistency;
    Alcotest.test_case "kernels bit-identical to record path" `Quick
      test_kernels_match_record_path;
    Alcotest.test_case "pooled kernels at jobs 1/2/4" `Quick test_kernels_jobs_1_2_4;
    Alcotest.test_case "xl generator deterministic and valid" `Quick
      test_xl_deterministic_and_valid;
    Alcotest.test_case "peko ships at its analytic optimum" `Quick
      test_peko_optimum_attained;
  ]
