(* Tests for the seeded differential fuzz engine: case derivation and the
   micro-design generator are deterministic, clean seeds stay clean, and
   the shrinker converges to a minimal reproducer. *)

module Design = Dpp_netlist.Design
module Fuzz = Dpp_core.Fuzz

let test_case_of_seed_deterministic () =
  Alcotest.(check bool) "equal seeds, equal cases" true
    (Fuzz.case_of_seed 42 = Fuzz.case_of_seed 42);
  Alcotest.(check bool) "different seeds, different cases" true
    (Fuzz.case_of_seed 42 <> Fuzz.case_of_seed 43)

let test_case_bounds () =
  List.iter
    (fun s ->
      let c = Fuzz.case_of_seed s in
      Alcotest.(check bool) "cells in range" true (c.Fuzz.cells >= 120 && c.Fuzz.cells < 400);
      Alcotest.(check bool) "nets in range" true (c.Fuzz.nets >= 40 && c.Fuzz.nets < 160);
      Alcotest.(check bool) "moves in range" true (c.Fuzz.moves >= 160 && c.Fuzz.moves < 500);
      Alcotest.(check bool) "dp fraction in range" true
        (c.Fuzz.dp_fraction >= 0.0 && c.Fuzz.dp_fraction <= 0.7))
    [ 1; 2; 3; 100; 12345 ]

let test_replay_command () =
  let c =
    { Fuzz.seed = 7; cells = 140; nets = 52; moves = 80; dp_fraction = 0.3; jobs = 1; eco_ops = 4 }
  in
  Alcotest.(check string) "one-command reproducer"
    "dpp_fuzz --seed 7 --cells 140 --nets 52 --moves 80 --dp-fraction 0.3 --eco-ops 4"
    (Fuzz.replay_command c)

let test_replay_command_jobs () =
  let c =
    { Fuzz.seed = 7; cells = 140; nets = 52; moves = 80; dp_fraction = 0.3; jobs = 4; eco_ops = 4 }
  in
  Alcotest.(check string) "reproducer carries the worker count"
    "dpp_fuzz --seed 7 --cells 140 --nets 52 --moves 80 --dp-fraction 0.3 --eco-ops 4 --jobs 4"
    (Fuzz.replay_command c)

let test_random_design_deterministic () =
  let build () = Fuzz.random_design ~seed:9 ~cells:50 ~nets:15 in
  let d1 = build () and d2 = build () in
  Alcotest.(check int) "cells" (Design.num_cells d1) (Design.num_cells d2);
  Alcotest.(check int) "nets" (Design.num_nets d1) (Design.num_nets d2);
  Alcotest.(check int) "pins" (Design.num_pins d1) (Design.num_pins d2);
  Alcotest.(check bool) "positions" true (d1.Design.x = d2.Design.x && d1.Design.y = d2.Design.y)

let test_random_design_is_adversarial () =
  let d = Fuzz.random_design ~seed:4 ~cells:80 ~nets:30 in
  let module Types = Dpp_netlist.Types in
  let has_fixed =
    Array.exists (fun (c : Types.cell) -> Types.is_fixed_kind c.Types.c_kind) d.Design.cells
  in
  let has_single_pin =
    Array.exists (fun (n : Types.net) -> Array.length n.Types.n_pins = 1) d.Design.nets
  in
  let has_unconnected =
    Array.exists (fun (p : Types.pin) -> p.Types.p_net < 0) d.Design.pins
  in
  Alcotest.(check bool) "has fixed blockers" true has_fixed;
  Alcotest.(check bool) "has single-pin nets" true has_single_pin;
  Alcotest.(check bool) "has unconnected pins" true has_unconnected

let test_clean_seeds () =
  List.iter
    (fun s ->
      match Fuzz.run_case ~flow:false (Fuzz.case_of_seed s) with
      | None -> ()
      | Some f -> Alcotest.failf "seed %d failed: %s" s (Format.asprintf "%a" Fuzz.pp_failure f))
    [ 1; 2; 3; 4 ]

(* jobs > 1 adds the parallel-vs-serial differential layer: clean seeds
   must stay clean there too (the layer itself asserts bit-exact kernel
   equivalence across worker counts) *)
let test_clean_par_seeds () =
  List.iter
    (fun s ->
      let c = { (Fuzz.case_of_seed s) with Fuzz.jobs = 3 } in
      match Fuzz.run_case ~flow:false c with
      | None -> ()
      | Some f -> Alcotest.failf "seed %d failed: %s" s (Format.asprintf "%a" Fuzz.pp_failure f))
    [ 1; 2 ]

let test_clean_flow_case () =
  match Fuzz.run_case (Fuzz.case_of_seed 1) with
  | None -> ()
  | Some f -> Alcotest.failf "flow case failed: %s" (Format.asprintf "%a" Fuzz.pp_failure f)

(* Shrinking against a synthetic predicate: the failure depends only on the
   move count, so the shrinker must drive cells and nets to their floors
   and moves to the smallest still-failing power-of-two fraction. *)
let test_shrink_minimizes () =
  let rerun (c : Fuzz.case) =
    if c.Fuzz.moves >= 64 then
      Some { Fuzz.case = c; kind = "synthetic"; stage = "predicate"; detail = [] }
    else None
  in
  let start =
    { Fuzz.seed = 1; cells = 300; nets = 80; moves = 500; dp_fraction = 0.5; jobs = 1; eco_ops = 4 }
  in
  let failure = Option.get (rerun start) in
  let minimal = Fuzz.shrink rerun failure in
  let c = minimal.Fuzz.case in
  Alcotest.(check int) "cells at the generator floor" 100 c.Fuzz.cells;
  Alcotest.(check int) "nets at the floor" 1 c.Fuzz.nets;
  Alcotest.(check bool)
    (Printf.sprintf "moves minimal: %d in [64, 128)" c.Fuzz.moves)
    true
    (c.Fuzz.moves >= 64 && c.Fuzz.moves < 128);
  Alcotest.(check bool) "minimal case still fails" true (rerun c <> None)

(* A failure that needs at least two workers must shrink to jobs = 2, not
   jobs = 1 (where the parallel layer would no longer run at all). *)
let test_shrink_jobs () =
  let rerun (c : Fuzz.case) =
    if c.Fuzz.jobs >= 2 then
      Some { Fuzz.case = c; kind = "synthetic"; stage = "predicate"; detail = [] }
    else None
  in
  let start =
    { Fuzz.seed = 3; cells = 100; nets = 1; moves = 1; dp_fraction = 0.0; jobs = 8; eco_ops = 4 }
  in
  let failure = Option.get (rerun start) in
  let minimal = Fuzz.shrink rerun failure in
  Alcotest.(check int) "jobs shrunk to the smallest failing count" 2
    minimal.Fuzz.case.Fuzz.jobs

let test_shrink_keeps_nonshrinkable () =
  let rerun (c : Fuzz.case) =
    if c.Fuzz.cells >= 100 then
      Some { Fuzz.case = c; kind = "synthetic"; stage = "predicate"; detail = [] }
    else None
  in
  let start =
    { Fuzz.seed = 2; cells = 100; nets = 1; moves = 1; dp_fraction = 0.0; jobs = 1; eco_ops = 1 }
  in
  let failure = Option.get (rerun start) in
  let minimal = Fuzz.shrink rerun failure in
  Alcotest.(check bool) "already-minimal case unchanged" true
    (minimal.Fuzz.case = start)

let suite =
  [
    Alcotest.test_case "case derivation deterministic" `Quick test_case_of_seed_deterministic;
    Alcotest.test_case "case parameter bounds" `Quick test_case_bounds;
    Alcotest.test_case "replay command format" `Quick test_replay_command;
    Alcotest.test_case "replay command carries jobs" `Quick test_replay_command_jobs;
    Alcotest.test_case "micro-design deterministic" `Quick test_random_design_deterministic;
    Alcotest.test_case "micro-design is adversarial" `Quick test_random_design_is_adversarial;
    Alcotest.test_case "clean seeds stay clean" `Quick test_clean_seeds;
    Alcotest.test_case "clean seeds stay clean in parallel" `Quick test_clean_par_seeds;
    Alcotest.test_case "clean flow case" `Slow test_clean_flow_case;
    Alcotest.test_case "shrinker minimizes" `Quick test_shrink_minimizes;
    Alcotest.test_case "shrinker minimizes jobs" `Quick test_shrink_jobs;
    Alcotest.test_case "shrinker keeps minimal case" `Quick test_shrink_keeps_nonshrinkable;
  ]
