(* Tests for Dpp_place: Qp, Gp, Legal, Abacus, Detail, Legality. *)

module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Builder = Dpp_netlist.Builder
module Design = Dpp_netlist.Design
module Pins = Dpp_wirelen.Pins
module Hpwl = Dpp_wirelen.Hpwl
module Qp = Dpp_place.Qp
module Gp = Dpp_place.Gp
module Legal = Dpp_place.Legal
module Abacus = Dpp_place.Abacus
module Detail = Dpp_place.Detail
module Legality = Dpp_place.Legality
module Compose = Dpp_gen.Compose

let place_design seed =
  Compose.build
    {
      Compose.sp_name = "pl";
      sp_seed = seed;
      sp_blocks = [ Compose.Adder 8 ];
      sp_random_cells = 250;
      sp_utilization = 0.7;
    }

(* ---------------- Qp ---------------- *)

let test_qp_pulls_connected_cells_together () =
  (* two movables connected to opposite fixed pads end between them *)
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:100.0 ~yh:50.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let pad x =
    let id = Builder.add_cell b ~name:(Printf.sprintf "p%f" x) ~master:"PAD" ~w:1.0 ~h:1.0 ~kind:Types.Pad in
    Builder.set_position b id ~x ~y:25.0;
    Builder.add_pin b ~cell:id ~dir:Types.Output ()
  in
  let p_left = pad 0.0 and p_right = pad 99.0 in
  let mk name =
    let id = Builder.add_cell b ~name ~master:"X" ~w:2.0 ~h:10.0 ~kind:Types.Movable in
    let i = Builder.add_pin b ~cell:id ~dir:Types.Input () in
    let o = Builder.add_pin b ~cell:id ~dir:Types.Output () in
    id, i, o
  in
  let a, ai, ao = mk "a" in
  let c, ci, co = mk "c" in
  ignore (Builder.add_net b [ p_left; ai ]);
  ignore (Builder.add_net b [ ao; ci ]);
  ignore (Builder.add_net b [ co; p_right ]);
  let d = Builder.finish b in
  let r = Qp.run ~seed:1 d in
  Alcotest.(check bool) "a left of c" true (r.Qp.cx.(a) < r.Qp.cx.(c));
  Alcotest.(check bool) "a in left-middle" true (r.Qp.cx.(a) > 10.0 && r.Qp.cx.(a) < 60.0);
  Alcotest.(check bool) "c in right-middle" true (r.Qp.cx.(c) > 40.0 && r.Qp.cx.(c) < 90.0)

let test_qp_inside_die () =
  let d = place_design 71 in
  let r = Qp.run ~seed:1 d in
  let die = d.Design.die in
  Array.iter
    (fun i ->
      Alcotest.(check bool) "center inside" true
        (r.Qp.cx.(i) >= die.Rect.xl && r.Qp.cx.(i) <= die.Rect.xh
        && r.Qp.cy.(i) >= die.Rect.yl
        && r.Qp.cy.(i) <= die.Rect.yh))
    (Design.movable_ids d)

let test_qp_deterministic () =
  let d = place_design 72 in
  let a = Qp.run ~seed:5 d and b = Qp.run ~seed:5 d in
  Alcotest.(check bool) "same result" true (a.Qp.cx = b.Qp.cx && a.Qp.cy = b.Qp.cy)

let test_qp_improves_hpwl () =
  let d = place_design 73 in
  let pins = Pins.build d in
  (* start: everything at die center via QP result vs cells at (0, 0) *)
  let nc = Design.num_cells d in
  let zero_x = Array.init nc (fun i -> Design.cell_center_x d i) in
  let zero_y = Array.init nc (fun i -> Design.cell_center_y d i) in
  let before = Hpwl.total pins ~cx:zero_x ~cy:zero_y in
  let r = Qp.run ~seed:1 d in
  let after = Hpwl.total pins ~cx:r.Qp.cx ~cy:r.Qp.cy in
  Alcotest.(check bool) "qp reduces wirelength vs piled-at-origin" true (after < before)

(* ---------------- Gp ---------------- *)

let test_gp_reduces_overflow () =
  let d = place_design 74 in
  let qp = Qp.run ~seed:1 d in
  let grid = Dpp_density.Grid.build d ~nx:16 ~ny:16 in
  let before =
    Dpp_density.Overflow.total_overflow d grid ~target_density:0.9 ~cx:qp.Qp.cx ~cy:qp.Qp.cy
  in
  let gp = Gp.run d Gp.default_config ~cx:qp.Qp.cx ~cy:qp.Qp.cy in
  Alcotest.(check bool) "overflow reduced" true (gp.Gp.final_overflow < before);
  Alcotest.(check bool) "reaches target-ish" true (gp.Gp.final_overflow < 0.15)

let test_gp_trace_monotone_overflow () =
  let d = place_design 75 in
  let qp = Qp.run ~seed:1 d in
  let gp = Gp.run d { Gp.default_config with Gp.rounds = 8 } ~cx:qp.Qp.cx ~cy:qp.Qp.cy in
  Alcotest.(check bool) "trace nonempty" true (gp.Gp.trace <> []);
  (* overflow should broadly decrease over rounds *)
  let ovfs = List.map (fun (ri : Gp.round_info) -> ri.Gp.overflow) gp.Gp.trace in
  let first = List.hd ovfs and last = List.nth ovfs (List.length ovfs - 1) in
  Alcotest.(check bool) "first >= last" true (first >= last -. 0.02)

let test_gp_rigid_groups_stay_arrays () =
  let d =
    Compose.build
      {
        Compose.sp_name = "gr";
        sp_seed = 76;
        sp_blocks = [ Compose.Adder 16 ];
        sp_random_cells = 200;
        sp_utilization = 0.7;
      }
  in
  let qp = Qp.run ~seed:1 d in
  let dgs = Dpp_structure.Dgroup.build_all d d.Design.groups in
  let cfg = { Gp.default_config with Gp.rigid_groups = dgs } in
  let gp = Gp.run d cfg ~cx:qp.Qp.cx ~cy:qp.Qp.cy in
  List.iter
    (fun dg ->
      Alcotest.(check (float 1e-6)) "rigid group is an exact array" 0.0
        (Dpp_structure.Dgroup.alignment_error dg ~cx:gp.Gp.cx ~cy:gp.Gp.cy))
    dgs

let test_gp_soft_groups_reduce_alignment_error () =
  let d =
    Compose.build
      {
        Compose.sp_name = "gs";
        sp_seed = 77;
        sp_blocks = [ Compose.Adder 16 ];
        sp_random_cells = 200;
        sp_utilization = 0.7;
      }
  in
  let qp = Qp.run ~seed:1 d in
  let dgs = Dpp_structure.Dgroup.build_all d d.Design.groups in
  let base = Gp.run d Gp.default_config ~cx:qp.Qp.cx ~cy:qp.Qp.cy in
  let soft =
    Gp.run d { Gp.default_config with Gp.groups = dgs; beta = 2.0 } ~cx:qp.Qp.cx ~cy:qp.Qp.cy
  in
  let err r = Dpp_structure.Alignment.total_error dgs ~cx:r.Gp.cx ~cy:r.Gp.cy in
  Alcotest.(check bool) "soft alignment tightens groups" true (err soft < err base)

(* ---------------- Legal + Abacus ---------------- *)

let run_legalization d =
  let qp = Qp.run ~seed:1 d in
  let gp = Gp.run d Gp.default_config ~cx:qp.Qp.cx ~cy:qp.Qp.cy in
  let legal = Legal.run d ~cx:gp.Gp.cx ~cy:gp.Gp.cy () in
  Abacus.run d ~target_cx:gp.Gp.cx ~legal ();
  gp, legal

let test_legalization_is_legal () =
  let d = place_design 78 in
  let _, legal = run_legalization d in
  Alcotest.(check (list string)) "no failures" []
    (List.map string_of_int legal.Legal.failed);
  let v = Legality.check d ~cx:legal.Legal.cx ~cy:legal.Legal.cy in
  if v <> [] then
    Alcotest.failf "%d violations, first: %s" (List.length v)
      (Format.asprintf "%a" (Legality.pp_violation d) (List.hd v))

let test_legalization_respects_obstacles () =
  let d = place_design 79 in
  let qp = Qp.run ~seed:1 d in
  let die = d.Design.die in
  let ob =
    Rect.make ~xl:die.Rect.xl ~yl:die.Rect.yl
      ~xh:(die.Rect.xl +. (Rect.width die /. 3.0))
      ~yh:(die.Rect.yl +. 30.0)
  in
  let legal = Legal.run d ~extra_obstacles:[ ob ] ~cx:qp.Qp.cx ~cy:qp.Qp.cy () in
  Array.iter
    (fun i ->
      if legal.Legal.assignment.(i) >= 0 then begin
        let c = Design.cell d i in
        let r =
          Rect.of_center ~cx:legal.Legal.cx.(i) ~cy:legal.Legal.cy.(i) ~w:c.Types.c_width
            ~h:c.Types.c_height
        in
        if Rect.overlap_area r ob > 1e-6 then Alcotest.failf "cell %d inside obstacle" i
      end)
    (Design.movable_ids d)

let test_legalization_skip () =
  let d = place_design 80 in
  let qp = Qp.run ~seed:1 d in
  let skip i = i < 5 in
  let legal = Legal.run d ~skip ~cx:qp.Qp.cx ~cy:qp.Qp.cy () in
  for i = 0 to 4 do
    if not (Types.is_fixed_kind (Design.cell d i).Types.c_kind) then begin
      Alcotest.(check int) "skipped unassigned" (-1) legal.Legal.assignment.(i);
      Alcotest.(check (float 1e-12)) "skipped untouched" qp.Qp.cx.(i) legal.Legal.cx.(i)
    end
  done

let test_abacus_reduces_displacement () =
  let d = place_design 81 in
  let qp = Qp.run ~seed:1 d in
  let gp = Gp.run d Gp.default_config ~cx:qp.Qp.cx ~cy:qp.Qp.cy in
  let legal1 = Legal.run d ~cx:gp.Gp.cx ~cy:gp.Gp.cy () in
  let disp l =
    Array.fold_left
      (fun acc i ->
        if l.Legal.assignment.(i) >= 0 then acc +. abs_float (l.Legal.cx.(i) -. gp.Gp.cx.(i))
        else acc)
      0.0 (Design.movable_ids d)
  in
  let before = disp legal1 in
  Abacus.run d ~target_cx:gp.Gp.cx ~legal:legal1 ();
  let after = disp legal1 in
  Alcotest.(check bool) "abacus does not worsen displacement" true (after <= before +. 1e-6)

(* ---------------- Detail ---------------- *)

let test_detail_improves_and_stays_legal () =
  let d = place_design 82 in
  let gp, legal = run_legalization d in
  let pins = Pins.build d in
  let before = Hpwl.total pins ~cx:legal.Legal.cx ~cy:legal.Legal.cy in
  let stats = Detail.run d ~max_passes:3 ~legal () in
  let after = Hpwl.total pins ~cx:legal.Legal.cx ~cy:legal.Legal.cy in
  ignore gp;
  Alcotest.(check bool) "hpwl not worse" true (after <= before +. 1e-6);
  Alcotest.(check bool) "claimed gain matches" true
    (abs_float (before -. after -. (stats.Detail.reorder_gain +. stats.Detail.swap_gain)) < 1e-3);
  let v = Legality.check d ~cx:legal.Legal.cx ~cy:legal.Legal.cy in
  if v <> [] then
    Alcotest.failf "detail broke legality: %s"
      (Format.asprintf "%a" (Legality.pp_violation d) (List.hd v))

let test_detail_skip_frozen () =
  let d = place_design 83 in
  let _, legal = run_legalization d in
  let frozen = Array.copy legal.Legal.cx in
  let skip i = i mod 7 = 0 in
  ignore (Detail.run d ~max_passes:2 ~skip ~legal ());
  Array.iter
    (fun i ->
      if skip i && legal.Legal.assignment.(i) >= 0 then
        Alcotest.(check (float 1e-12)) "frozen cell untouched" frozen.(i) legal.Legal.cx.(i))
    (Design.movable_ids d)

(* ---------------- Legality ---------------- *)

let test_legality_detects_violations () =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:40.0 ~yh:20.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let c0 = Builder.add_cell b ~name:"a" ~master:"X" ~w:4.0 ~h:10.0 ~kind:Types.Movable in
  let c1 = Builder.add_cell b ~name:"b" ~master:"X" ~w:4.0 ~h:10.0 ~kind:Types.Movable in
  let d = Builder.finish b in
  let cx = [| 2.0; 4.0 |] and cy = [| 5.0; 5.0 |] in
  (* overlapping pair *)
  let v = Legality.check d ~cx ~cy in
  Alcotest.(check bool) "overlap found" true
    (List.exists (function Legality.Overlap (a, b) -> a = c0 && b = c1 | _ -> false) v);
  (* clean placement passes *)
  let cx = [| 2.0; 10.0 |] in
  Alcotest.(check bool) "clean passes" true (Legality.is_legal d ~cx ~cy);
  (* off-row *)
  let cy2 = [| 6.0; 5.0 |] in
  let v = Legality.check d ~cx ~cy:cy2 in
  Alcotest.(check bool) "off-row found" true
    (List.exists (function Legality.Off_row _ -> true | _ -> false) v)

let suite =
  [
    Alcotest.test_case "qp pulls chain" `Quick test_qp_pulls_connected_cells_together;
    Alcotest.test_case "qp inside die" `Quick test_qp_inside_die;
    Alcotest.test_case "qp deterministic" `Quick test_qp_deterministic;
    Alcotest.test_case "qp improves hpwl" `Quick test_qp_improves_hpwl;
    Alcotest.test_case "gp reduces overflow" `Slow test_gp_reduces_overflow;
    Alcotest.test_case "gp trace" `Slow test_gp_trace_monotone_overflow;
    Alcotest.test_case "gp rigid groups" `Slow test_gp_rigid_groups_stay_arrays;
    Alcotest.test_case "gp soft groups" `Slow test_gp_soft_groups_reduce_alignment_error;
    Alcotest.test_case "legalization legal" `Slow test_legalization_is_legal;
    Alcotest.test_case "legalization obstacles" `Quick test_legalization_respects_obstacles;
    Alcotest.test_case "legalization skip" `Quick test_legalization_skip;
    Alcotest.test_case "abacus displacement" `Slow test_abacus_reduces_displacement;
    Alcotest.test_case "detail improves" `Slow test_detail_improves_and_stays_legal;
    Alcotest.test_case "detail skip" `Slow test_detail_skip_frozen;
    Alcotest.test_case "legality detects" `Quick test_legality_detects_violations;
  ]

(* appended: orientation-flip pass *)

let test_flip_improves_and_preserves_legality () =
  let d = place_design 84 in
  let _, legal = run_legalization d in
  let pins_before = Pins.build d in
  let before = Hpwl.total pins_before ~cx:legal.Legal.cx ~cy:legal.Legal.cy in
  let stats = Dpp_place.Flip.run d ~cx:legal.Legal.cx ~cy:legal.Legal.cy () in
  let pins_after = Pins.build d in
  let after = Hpwl.total pins_after ~cx:legal.Legal.cx ~cy:legal.Legal.cy in
  Alcotest.(check bool) "hpwl not worse" true (after <= before +. 1e-6);
  Alcotest.(check (float 1e-3)) "claimed gain" (before -. after) stats.Dpp_place.Flip.gain;
  Alcotest.(check bool) "some flips found" true (stats.Dpp_place.Flip.flips > 0);
  (* flipping never moves footprints *)
  let v = Legality.check d ~cx:legal.Legal.cx ~cy:legal.Legal.cy in
  Alcotest.(check int) "still legal" 0 (List.length v)

let test_flip_orientation_recorded () =
  let d = place_design 85 in
  let _, legal = run_legalization d in
  let stats = Dpp_place.Flip.run d ~cx:legal.Legal.cx ~cy:legal.Legal.cy () in
  let flipped =
    Array.fold_left
      (fun acc o -> if o = Dpp_geom.Orient.FN then acc + 1 else acc)
      0 d.Design.orient
  in
  Alcotest.(check int) "orient array matches stats" stats.Dpp_place.Flip.flips flipped

let test_pins_respect_orientation () =
  (* a 2-cell design: flipping one cell mirrors its pin offset *)
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:40.0 ~yh:20.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let c0 = Builder.add_cell b ~name:"a" ~master:"X" ~w:4.0 ~h:10.0 ~kind:Types.Movable in
  let p0 = Builder.add_pin b ~cell:c0 ~dir:Types.Output ~dx:1.0 ~dy:5.0 () in
  let c1 = Builder.add_cell b ~name:"b" ~master:"X" ~w:4.0 ~h:10.0 ~kind:Types.Movable in
  let p1 = Builder.add_pin b ~cell:c1 ~dir:Types.Input ~dx:1.0 ~dy:5.0 () in
  ignore (Builder.add_net b [ p0; p1 ]);
  Builder.set_position b c0 ~x:0.0 ~y:0.0;
  Builder.set_position b c1 ~x:20.0 ~y:0.0;
  let d = Builder.finish b in
  let pins_n = Pins.build d in
  d.Design.orient.(c0) <- Dpp_geom.Orient.FN;
  let pins_fn = Pins.build d in
  (* offset from center was 1.0 - 2.0 = -1.0; mirrored becomes +1.0 *)
  Alcotest.(check (float 1e-9)) "N offset" (-1.0) pins_n.Pins.off_x.(p0);
  Alcotest.(check (float 1e-9)) "FN offset" 1.0 pins_fn.Pins.off_x.(p0);
  (* and agrees with the slow pin_position path *)
  let px, _ = Design.pin_position d p0 in
  Alcotest.(check (float 1e-9)) "pin_position agrees" px
    (Design.cell_center_x d c0 +. pins_fn.Pins.off_x.(p0))

let suite =
  suite
  @ [
      Alcotest.test_case "flip improves" `Slow test_flip_improves_and_preserves_legality;
      Alcotest.test_case "flip orientation recorded" `Slow test_flip_orientation_recorded;
      Alcotest.test_case "pins respect orientation" `Quick test_pins_respect_orientation;
    ]

(* appended: parallel back-end regressions — exact-footprint swaps, tall
   cells, and the indexed interval store *)

module Intervals = Dpp_place.Intervals
module Occ = Dpp_place.Occ

(* Widths 4.0 and 4.01 landed in one bucket under the old 1/16-site
   quantized swap key; swapping them slid the wider cell into its
   neighbour.  Detail must keep the placement legal. *)
let test_swap_requires_exact_footprint () =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:40.0 ~yh:20.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:0.005 () in
  let mk name ~w ~x ~y =
    let id = Builder.add_cell b ~name ~master:"X" ~w ~h:10.0 ~kind:Types.Movable in
    let p = Builder.add_pin b ~cell:id ~dir:Types.Input ~dx:(w /. 2.0) ~dy:5.0 () in
    Builder.set_position b id ~x ~y;
    id, p
  in
  (* row 0: p then r abutting it; row 1: q, whose width differs from p's
     by one site *)
  let p, pp = mk "p" ~w:4.0 ~x:0.0 ~y:0.0 in
  let _r, _ = mk "r" ~w:4.01 ~x:4.0 ~y:0.0 in
  let q, qp = mk "q" ~w:4.01 ~x:0.0 ~y:10.0 in
  let pad name x y =
    let id = Builder.add_cell b ~name ~master:"PAD" ~w:1.0 ~h:1.0 ~kind:Types.Pad in
    Builder.set_position b id ~x ~y;
    Builder.add_pin b ~cell:id ~dir:Types.Output ()
  in
  (* p wants q's row and vice versa: the cross-row swap is attractive *)
  ignore (Builder.add_net b [ pad "a" 2.0 19.0; pp ]);
  ignore (Builder.add_net b [ pad "bb" 2.0 1.0; qp ]);
  let d = Builder.finish b in
  let nc = Design.num_cells d in
  let cx = Array.init nc (fun i -> Design.cell_center_x d i) in
  let cy = Array.init nc (fun i -> Design.cell_center_y d i) in
  let legal = Legal.run d ~cx ~cy () in
  ignore (Detail.run d ~max_passes:2 ~legal ());
  (* the move pass may relocate p and q legally; what the old quantized
     bucket did was *swap* their footprints, sliding the wider q into r *)
  ignore p;
  ignore q;
  let v = Legality.check d ~cx:legal.Legal.cx ~cy:legal.Legal.cy in
  if v <> [] then
    Alcotest.failf "detail broke legality: %s"
      (Format.asprintf "%a" (Legality.pp_violation d) (List.hd v))

(* A 2-row movable cell must not be treated as single-row by the detail
   passes, however attractive the move. *)
let test_detail_skips_tall_cells () =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:40.0 ~yh:20.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let t = Builder.add_cell b ~name:"t" ~master:"TALL" ~w:4.0 ~h:20.0 ~kind:Types.Movable in
  let tp = Builder.add_pin b ~cell:t ~dir:Types.Input ~dx:2.0 ~dy:10.0 () in
  Builder.set_position b t ~x:0.0 ~y:0.0;
  let pad = Builder.add_cell b ~name:"far" ~master:"PAD" ~w:1.0 ~h:1.0 ~kind:Types.Pad in
  Builder.set_position b pad ~x:38.0 ~y:10.0;
  ignore (Builder.add_net b [ Builder.add_pin b ~cell:pad ~dir:Types.Output (); tp ]);
  let d = Builder.finish b in
  let nc = Design.num_cells d in
  let cx = Array.init nc (fun i -> Design.cell_center_x d i) in
  let cy = Array.init nc (fun i -> Design.cell_center_y d i) in
  (* hand the tall cell to Detail as a placed row-0 cell, the way a
     caller without the flow's macro handling would *)
  let legal = { Legal.assignment = Array.make nc 0; cx; cy; failed = [] } in
  ignore (Detail.run d ~max_passes:2 ~legal ());
  Alcotest.(check (float 1e-12)) "tall cell x untouched" 2.0 legal.Legal.cx.(t);
  Alcotest.(check (float 1e-12)) "tall cell y untouched" 10.0 legal.Legal.cy.(t);
  let stats = Dpp_place.Flip.run d ~cx:legal.Legal.cx ~cy:legal.Legal.cy () in
  Alcotest.(check int) "flip skips tall cells too" 0 stats.Dpp_place.Flip.flips

(* The old list-based split matched intervals by float equality of the
   bounds, so two identical intervals were both split; the indexed store
   allocates exactly the queried one. *)
let test_intervals_duplicate_bounds () =
  let t = Intervals.of_segments [ 0.0, 10.0; 0.0, 10.0 ] in
  (match Intervals.best_fit t ~w:4.0 ~target:0.0 with
  | None -> Alcotest.fail "no fit in duplicate intervals"
  | Some (cost, idx, xl) ->
    Alcotest.(check (float 1e-12)) "cost" 0.0 cost;
    Alcotest.(check (float 1e-12)) "xl" 0.0 xl;
    Intervals.alloc t idx ~xl ~w:4.0);
  Alcotest.(check int) "both intervals survive" 2 (Intervals.length t);
  let untouched =
    List.filter (fun (l, h) -> l = 0.0 && h = 10.0) (Intervals.to_list t)
  in
  Alcotest.(check int) "exactly one interval was split" 1 (List.length untouched)

let test_intervals_best_fit_and_split () =
  let t = Intervals.of_segments [ 0.0, 10.0; 20.0, 22.0; 30.0, 50.0 ] in
  (* nearest feasible interval wins, clamped to its bounds *)
  (match Intervals.best_fit t ~w:4.0 ~target:21.0 with
  | Some (_, _, xl) -> Alcotest.(check (float 1e-12)) "skips too-small interval" 30.0 xl
  | None -> Alcotest.fail "no fit");
  (match Intervals.best_fit t ~w:4.0 ~target:3.0 with
  | Some (cost, idx, xl) ->
    Alcotest.(check (float 1e-12)) "exact target" 0.0 cost;
    Alcotest.(check (float 1e-12)) "left interval" 3.0 xl;
    Intervals.alloc t idx ~xl ~w:4.0
  | None -> Alcotest.fail "no fit");
  Alcotest.(check bool) "split keeps both remnants" true
    (Intervals.to_list t = [ 0.0, 3.0; 7.0, 10.0; 20.0, 22.0; 30.0, 50.0 ]);
  Alcotest.(check bool) "nothing fits width 30" true
    (Intervals.best_fit t ~w:30.0 ~target:0.0 = None)

(* A fixed macro spanning rows 0-1 must block both rows' segments and
   leave row 2 whole. *)
let test_row_segments_multirow_macro () =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:40.0 ~yh:30.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let m = Builder.add_cell b ~name:"m" ~master:"RAM" ~w:10.0 ~h:20.0 ~kind:Types.Fixed in
  Builder.set_position b m ~x:10.0 ~y:0.0;
  let d = Builder.finish b in
  let obstacles = [ Design.cell_rect d m ] in
  let segs r = Legal.row_segments_for_test d obstacles r in
  Alcotest.(check bool) "row 0 split" true (segs 0 = [ 0.0, 10.0; 20.0, 40.0 ]);
  Alcotest.(check bool) "row 1 split" true (segs 1 = [ 0.0, 10.0; 20.0, 40.0 ]);
  Alcotest.(check bool) "row 2 whole" true (segs 2 = [ 0.0, 40.0 ])

let suite =
  suite
  @ [
      Alcotest.test_case "swap requires exact footprint" `Quick
        test_swap_requires_exact_footprint;
      Alcotest.test_case "detail skips tall cells" `Quick test_detail_skips_tall_cells;
      Alcotest.test_case "intervals duplicate bounds" `Quick test_intervals_duplicate_bounds;
      Alcotest.test_case "intervals best fit and split" `Quick
        test_intervals_best_fit_and_split;
      Alcotest.test_case "row segments multirow macro" `Quick
        test_row_segments_multirow_macro;
    ]
