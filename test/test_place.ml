(* Tests for Dpp_place: Qp, Gp, Legal, Abacus, Detail, Legality. *)

module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Builder = Dpp_netlist.Builder
module Design = Dpp_netlist.Design
module Pins = Dpp_wirelen.Pins
module Hpwl = Dpp_wirelen.Hpwl
module Qp = Dpp_place.Qp
module Gp = Dpp_place.Gp
module Legal = Dpp_place.Legal
module Abacus = Dpp_place.Abacus
module Detail = Dpp_place.Detail
module Legality = Dpp_place.Legality
module Compose = Dpp_gen.Compose

let place_design seed =
  Compose.build
    {
      Compose.sp_name = "pl";
      sp_seed = seed;
      sp_blocks = [ Compose.Adder 8 ];
      sp_random_cells = 250;
      sp_utilization = 0.7;
    }

(* ---------------- Qp ---------------- *)

let test_qp_pulls_connected_cells_together () =
  (* two movables connected to opposite fixed pads end between them *)
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:100.0 ~yh:50.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let pad x =
    let id = Builder.add_cell b ~name:(Printf.sprintf "p%f" x) ~master:"PAD" ~w:1.0 ~h:1.0 ~kind:Types.Pad in
    Builder.set_position b id ~x ~y:25.0;
    Builder.add_pin b ~cell:id ~dir:Types.Output ()
  in
  let p_left = pad 0.0 and p_right = pad 99.0 in
  let mk name =
    let id = Builder.add_cell b ~name ~master:"X" ~w:2.0 ~h:10.0 ~kind:Types.Movable in
    let i = Builder.add_pin b ~cell:id ~dir:Types.Input () in
    let o = Builder.add_pin b ~cell:id ~dir:Types.Output () in
    id, i, o
  in
  let a, ai, ao = mk "a" in
  let c, ci, co = mk "c" in
  ignore (Builder.add_net b [ p_left; ai ]);
  ignore (Builder.add_net b [ ao; ci ]);
  ignore (Builder.add_net b [ co; p_right ]);
  let d = Builder.finish b in
  let r = Qp.run ~seed:1 d in
  Alcotest.(check bool) "a left of c" true (r.Qp.cx.(a) < r.Qp.cx.(c));
  Alcotest.(check bool) "a in left-middle" true (r.Qp.cx.(a) > 10.0 && r.Qp.cx.(a) < 60.0);
  Alcotest.(check bool) "c in right-middle" true (r.Qp.cx.(c) > 40.0 && r.Qp.cx.(c) < 90.0)

let test_qp_inside_die () =
  let d = place_design 71 in
  let r = Qp.run ~seed:1 d in
  let die = d.Design.die in
  Array.iter
    (fun i ->
      Alcotest.(check bool) "center inside" true
        (r.Qp.cx.(i) >= die.Rect.xl && r.Qp.cx.(i) <= die.Rect.xh
        && r.Qp.cy.(i) >= die.Rect.yl
        && r.Qp.cy.(i) <= die.Rect.yh))
    (Design.movable_ids d)

let test_qp_deterministic () =
  let d = place_design 72 in
  let a = Qp.run ~seed:5 d and b = Qp.run ~seed:5 d in
  Alcotest.(check bool) "same result" true (a.Qp.cx = b.Qp.cx && a.Qp.cy = b.Qp.cy)

let test_qp_improves_hpwl () =
  let d = place_design 73 in
  let pins = Pins.build d in
  (* start: everything at die center via QP result vs cells at (0, 0) *)
  let nc = Design.num_cells d in
  let zero_x = Array.init nc (fun i -> Design.cell_center_x d i) in
  let zero_y = Array.init nc (fun i -> Design.cell_center_y d i) in
  let before = Hpwl.total pins ~cx:zero_x ~cy:zero_y in
  let r = Qp.run ~seed:1 d in
  let after = Hpwl.total pins ~cx:r.Qp.cx ~cy:r.Qp.cy in
  Alcotest.(check bool) "qp reduces wirelength vs piled-at-origin" true (after < before)

(* ---------------- Gp ---------------- *)

let test_gp_reduces_overflow () =
  let d = place_design 74 in
  let qp = Qp.run ~seed:1 d in
  let grid = Dpp_density.Grid.build d ~nx:16 ~ny:16 in
  let before =
    Dpp_density.Overflow.total_overflow d grid ~target_density:0.9 ~cx:qp.Qp.cx ~cy:qp.Qp.cy
  in
  let gp = Gp.run d Gp.default_config ~cx:qp.Qp.cx ~cy:qp.Qp.cy in
  Alcotest.(check bool) "overflow reduced" true (gp.Gp.final_overflow < before);
  Alcotest.(check bool) "reaches target-ish" true (gp.Gp.final_overflow < 0.15)

let test_gp_trace_monotone_overflow () =
  let d = place_design 75 in
  let qp = Qp.run ~seed:1 d in
  let gp = Gp.run d { Gp.default_config with Gp.rounds = 8 } ~cx:qp.Qp.cx ~cy:qp.Qp.cy in
  Alcotest.(check bool) "trace nonempty" true (gp.Gp.trace <> []);
  (* overflow should broadly decrease over rounds *)
  let ovfs = List.map (fun (ri : Gp.round_info) -> ri.Gp.overflow) gp.Gp.trace in
  let first = List.hd ovfs and last = List.nth ovfs (List.length ovfs - 1) in
  Alcotest.(check bool) "first >= last" true (first >= last -. 0.02)

let test_gp_rigid_groups_stay_arrays () =
  let d =
    Compose.build
      {
        Compose.sp_name = "gr";
        sp_seed = 76;
        sp_blocks = [ Compose.Adder 16 ];
        sp_random_cells = 200;
        sp_utilization = 0.7;
      }
  in
  let qp = Qp.run ~seed:1 d in
  let dgs = Dpp_structure.Dgroup.build_all d d.Design.groups in
  let cfg = { Gp.default_config with Gp.rigid_groups = dgs } in
  let gp = Gp.run d cfg ~cx:qp.Qp.cx ~cy:qp.Qp.cy in
  List.iter
    (fun dg ->
      Alcotest.(check (float 1e-6)) "rigid group is an exact array" 0.0
        (Dpp_structure.Dgroup.alignment_error dg ~cx:gp.Gp.cx ~cy:gp.Gp.cy))
    dgs

let test_gp_soft_groups_reduce_alignment_error () =
  let d =
    Compose.build
      {
        Compose.sp_name = "gs";
        sp_seed = 77;
        sp_blocks = [ Compose.Adder 16 ];
        sp_random_cells = 200;
        sp_utilization = 0.7;
      }
  in
  let qp = Qp.run ~seed:1 d in
  let dgs = Dpp_structure.Dgroup.build_all d d.Design.groups in
  let base = Gp.run d Gp.default_config ~cx:qp.Qp.cx ~cy:qp.Qp.cy in
  let soft =
    Gp.run d { Gp.default_config with Gp.groups = dgs; beta = 2.0 } ~cx:qp.Qp.cx ~cy:qp.Qp.cy
  in
  let err r = Dpp_structure.Alignment.total_error dgs ~cx:r.Gp.cx ~cy:r.Gp.cy in
  Alcotest.(check bool) "soft alignment tightens groups" true (err soft < err base)

(* ---------------- Legal + Abacus ---------------- *)

let run_legalization d =
  let qp = Qp.run ~seed:1 d in
  let gp = Gp.run d Gp.default_config ~cx:qp.Qp.cx ~cy:qp.Qp.cy in
  let legal = Legal.run d ~cx:gp.Gp.cx ~cy:gp.Gp.cy () in
  Abacus.run d ~target_cx:gp.Gp.cx ~legal ();
  gp, legal

let test_legalization_is_legal () =
  let d = place_design 78 in
  let _, legal = run_legalization d in
  Alcotest.(check (list string)) "no failures" []
    (List.map string_of_int legal.Legal.failed);
  let v = Legality.check d ~cx:legal.Legal.cx ~cy:legal.Legal.cy in
  if v <> [] then
    Alcotest.failf "%d violations, first: %s" (List.length v)
      (Format.asprintf "%a" (Legality.pp_violation d) (List.hd v))

let test_legalization_respects_obstacles () =
  let d = place_design 79 in
  let qp = Qp.run ~seed:1 d in
  let die = d.Design.die in
  let ob =
    Rect.make ~xl:die.Rect.xl ~yl:die.Rect.yl
      ~xh:(die.Rect.xl +. (Rect.width die /. 3.0))
      ~yh:(die.Rect.yl +. 30.0)
  in
  let legal = Legal.run d ~extra_obstacles:[ ob ] ~cx:qp.Qp.cx ~cy:qp.Qp.cy () in
  Array.iter
    (fun i ->
      if legal.Legal.assignment.(i) >= 0 then begin
        let c = Design.cell d i in
        let r =
          Rect.of_center ~cx:legal.Legal.cx.(i) ~cy:legal.Legal.cy.(i) ~w:c.Types.c_width
            ~h:c.Types.c_height
        in
        if Rect.overlap_area r ob > 1e-6 then Alcotest.failf "cell %d inside obstacle" i
      end)
    (Design.movable_ids d)

let test_legalization_skip () =
  let d = place_design 80 in
  let qp = Qp.run ~seed:1 d in
  let skip i = i < 5 in
  let legal = Legal.run d ~skip ~cx:qp.Qp.cx ~cy:qp.Qp.cy () in
  for i = 0 to 4 do
    if not (Types.is_fixed_kind (Design.cell d i).Types.c_kind) then begin
      Alcotest.(check int) "skipped unassigned" (-1) legal.Legal.assignment.(i);
      Alcotest.(check (float 1e-12)) "skipped untouched" qp.Qp.cx.(i) legal.Legal.cx.(i)
    end
  done

let test_abacus_reduces_displacement () =
  let d = place_design 81 in
  let qp = Qp.run ~seed:1 d in
  let gp = Gp.run d Gp.default_config ~cx:qp.Qp.cx ~cy:qp.Qp.cy in
  let legal1 = Legal.run d ~cx:gp.Gp.cx ~cy:gp.Gp.cy () in
  let disp l =
    Array.fold_left
      (fun acc i ->
        if l.Legal.assignment.(i) >= 0 then acc +. abs_float (l.Legal.cx.(i) -. gp.Gp.cx.(i))
        else acc)
      0.0 (Design.movable_ids d)
  in
  let before = disp legal1 in
  Abacus.run d ~target_cx:gp.Gp.cx ~legal:legal1 ();
  let after = disp legal1 in
  Alcotest.(check bool) "abacus does not worsen displacement" true (after <= before +. 1e-6)

(* ---------------- Detail ---------------- *)

let test_detail_improves_and_stays_legal () =
  let d = place_design 82 in
  let gp, legal = run_legalization d in
  let pins = Pins.build d in
  let before = Hpwl.total pins ~cx:legal.Legal.cx ~cy:legal.Legal.cy in
  let stats = Detail.run d ~max_passes:3 ~legal () in
  let after = Hpwl.total pins ~cx:legal.Legal.cx ~cy:legal.Legal.cy in
  ignore gp;
  Alcotest.(check bool) "hpwl not worse" true (after <= before +. 1e-6);
  Alcotest.(check bool) "claimed gain matches" true
    (abs_float (before -. after -. (stats.Detail.reorder_gain +. stats.Detail.swap_gain)) < 1e-3);
  let v = Legality.check d ~cx:legal.Legal.cx ~cy:legal.Legal.cy in
  if v <> [] then
    Alcotest.failf "detail broke legality: %s"
      (Format.asprintf "%a" (Legality.pp_violation d) (List.hd v))

let test_detail_skip_frozen () =
  let d = place_design 83 in
  let _, legal = run_legalization d in
  let frozen = Array.copy legal.Legal.cx in
  let skip i = i mod 7 = 0 in
  ignore (Detail.run d ~max_passes:2 ~skip ~legal ());
  Array.iter
    (fun i ->
      if skip i && legal.Legal.assignment.(i) >= 0 then
        Alcotest.(check (float 1e-12)) "frozen cell untouched" frozen.(i) legal.Legal.cx.(i))
    (Design.movable_ids d)

(* ---------------- Legality ---------------- *)

let test_legality_detects_violations () =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:40.0 ~yh:20.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let c0 = Builder.add_cell b ~name:"a" ~master:"X" ~w:4.0 ~h:10.0 ~kind:Types.Movable in
  let c1 = Builder.add_cell b ~name:"b" ~master:"X" ~w:4.0 ~h:10.0 ~kind:Types.Movable in
  let d = Builder.finish b in
  let cx = [| 2.0; 4.0 |] and cy = [| 5.0; 5.0 |] in
  (* overlapping pair *)
  let v = Legality.check d ~cx ~cy in
  Alcotest.(check bool) "overlap found" true
    (List.exists (function Legality.Overlap (a, b) -> a = c0 && b = c1 | _ -> false) v);
  (* clean placement passes *)
  let cx = [| 2.0; 10.0 |] in
  Alcotest.(check bool) "clean passes" true (Legality.is_legal d ~cx ~cy);
  (* off-row *)
  let cy2 = [| 6.0; 5.0 |] in
  let v = Legality.check d ~cx ~cy:cy2 in
  Alcotest.(check bool) "off-row found" true
    (List.exists (function Legality.Off_row _ -> true | _ -> false) v)

let suite =
  [
    Alcotest.test_case "qp pulls chain" `Quick test_qp_pulls_connected_cells_together;
    Alcotest.test_case "qp inside die" `Quick test_qp_inside_die;
    Alcotest.test_case "qp deterministic" `Quick test_qp_deterministic;
    Alcotest.test_case "qp improves hpwl" `Quick test_qp_improves_hpwl;
    Alcotest.test_case "gp reduces overflow" `Slow test_gp_reduces_overflow;
    Alcotest.test_case "gp trace" `Slow test_gp_trace_monotone_overflow;
    Alcotest.test_case "gp rigid groups" `Slow test_gp_rigid_groups_stay_arrays;
    Alcotest.test_case "gp soft groups" `Slow test_gp_soft_groups_reduce_alignment_error;
    Alcotest.test_case "legalization legal" `Slow test_legalization_is_legal;
    Alcotest.test_case "legalization obstacles" `Quick test_legalization_respects_obstacles;
    Alcotest.test_case "legalization skip" `Quick test_legalization_skip;
    Alcotest.test_case "abacus displacement" `Slow test_abacus_reduces_displacement;
    Alcotest.test_case "detail improves" `Slow test_detail_improves_and_stays_legal;
    Alcotest.test_case "detail skip" `Slow test_detail_skip_frozen;
    Alcotest.test_case "legality detects" `Quick test_legality_detects_violations;
  ]

(* appended: orientation-flip pass *)

let test_flip_improves_and_preserves_legality () =
  let d = place_design 84 in
  let _, legal = run_legalization d in
  let pins_before = Pins.build d in
  let before = Hpwl.total pins_before ~cx:legal.Legal.cx ~cy:legal.Legal.cy in
  let stats = Dpp_place.Flip.run d ~cx:legal.Legal.cx ~cy:legal.Legal.cy () in
  let pins_after = Pins.build d in
  let after = Hpwl.total pins_after ~cx:legal.Legal.cx ~cy:legal.Legal.cy in
  Alcotest.(check bool) "hpwl not worse" true (after <= before +. 1e-6);
  Alcotest.(check (float 1e-3)) "claimed gain" (before -. after) stats.Dpp_place.Flip.gain;
  Alcotest.(check bool) "some flips found" true (stats.Dpp_place.Flip.flips > 0);
  (* flipping never moves footprints *)
  let v = Legality.check d ~cx:legal.Legal.cx ~cy:legal.Legal.cy in
  Alcotest.(check int) "still legal" 0 (List.length v)

let test_flip_orientation_recorded () =
  let d = place_design 85 in
  let _, legal = run_legalization d in
  let stats = Dpp_place.Flip.run d ~cx:legal.Legal.cx ~cy:legal.Legal.cy () in
  let flipped =
    Array.fold_left
      (fun acc o -> if o = Dpp_geom.Orient.FN then acc + 1 else acc)
      0 d.Design.orient
  in
  Alcotest.(check int) "orient array matches stats" stats.Dpp_place.Flip.flips flipped

let test_pins_respect_orientation () =
  (* a 2-cell design: flipping one cell mirrors its pin offset *)
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:40.0 ~yh:20.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let c0 = Builder.add_cell b ~name:"a" ~master:"X" ~w:4.0 ~h:10.0 ~kind:Types.Movable in
  let p0 = Builder.add_pin b ~cell:c0 ~dir:Types.Output ~dx:1.0 ~dy:5.0 () in
  let c1 = Builder.add_cell b ~name:"b" ~master:"X" ~w:4.0 ~h:10.0 ~kind:Types.Movable in
  let p1 = Builder.add_pin b ~cell:c1 ~dir:Types.Input ~dx:1.0 ~dy:5.0 () in
  ignore (Builder.add_net b [ p0; p1 ]);
  Builder.set_position b c0 ~x:0.0 ~y:0.0;
  Builder.set_position b c1 ~x:20.0 ~y:0.0;
  let d = Builder.finish b in
  let pins_n = Pins.build d in
  d.Design.orient.(c0) <- Dpp_geom.Orient.FN;
  let pins_fn = Pins.build d in
  (* offset from center was 1.0 - 2.0 = -1.0; mirrored becomes +1.0 *)
  Alcotest.(check (float 1e-9)) "N offset" (-1.0) pins_n.Pins.off_x.(p0);
  Alcotest.(check (float 1e-9)) "FN offset" 1.0 pins_fn.Pins.off_x.(p0);
  (* and agrees with the slow pin_position path *)
  let px, _ = Design.pin_position d p0 in
  Alcotest.(check (float 1e-9)) "pin_position agrees" px
    (Design.cell_center_x d c0 +. pins_fn.Pins.off_x.(p0))

let suite =
  suite
  @ [
      Alcotest.test_case "flip improves" `Slow test_flip_improves_and_preserves_legality;
      Alcotest.test_case "flip orientation recorded" `Slow test_flip_orientation_recorded;
      Alcotest.test_case "pins respect orientation" `Quick test_pins_respect_orientation;
    ]
