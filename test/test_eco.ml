(* Incremental ECO re-placement: edit application, dirty-region planning,
   and the differential guarantee — clean cells bit-identical to the base
   placement while the full result stays legal. *)

module Rect = Dpp_geom.Rect
module Orient = Dpp_geom.Orient
module Types = Dpp_netlist.Types
module Design = Dpp_netlist.Design
module Pins = Dpp_wirelen.Pins
module Legality = Dpp_place.Legality
module Config = Dpp_core.Config
module Flow = Dpp_core.Flow
module Eco = Dpp_core.Eco
module Json = Dpp_report.Json

let base_cfg =
  { Config.baseline with Config.gp_rounds = 6; gp_inner_iters = 15; detail_passes = 1 }

let place spec_name cfg =
  let spec = Option.get (Dpp_gen.Presets.by_name spec_name) in
  let d = Dpp_gen.Compose.build spec in
  (Flow.run d cfg).Flow.design

let tiny_base =
  lazy
    (let d =
       Dpp_gen.Compose.build
         {
           Dpp_gen.Compose.sp_name = "eco_tiny";
           sp_seed = 17;
           sp_blocks = [ Dpp_gen.Compose.Adder 16; Regbank 16 ];
           sp_random_cells = 200;
           sp_utilization = 0.7;
         }
     in
     (Flow.run d base_cfg).Flow.design)

let seeded_edits (d : Design.t) seed =
  let rng = Dpp_util.Rng.create seed in
  let movable = Design.movable_ids d in
  let single_row =
    Array.to_list movable
    |> List.filter (fun i -> (Design.cell d i).Types.c_height <= d.Design.row_height +. 1e-9)
    |> Array.of_list
  in
  let pick a = a.(Dpp_util.Rng.int rng (Array.length a)) in
  let anchor = pick single_row in
  (* keep every edit near one anchor so the dirty region stays small *)
  let near =
    Array.of_list
      (List.filter
         (fun i ->
           abs_float (Design.cell_center_x d i -. Design.cell_center_x d anchor)
           < Rect.width d.Design.die /. 8.0
           && abs_float (Design.cell_center_y d i -. Design.cell_center_y d anchor)
              < 3.0 *. d.Design.row_height)
         (Array.to_list single_row))
  in
  let nets_of c =
    (Design.cell d c).Types.c_pins |> Array.to_list
    |> List.filter_map (fun p ->
           let n = (Design.pin d p).Types.p_net in
           if n >= 0 then Some n else None)
  in
  let rh = d.Design.row_height in
  [
    Eco.Move { cell = anchor; dx = 3.0 *. d.Design.site_width; dy = rh };
    Eco.Resize { cell = pick near; scale = 1.5 };
    Eco.Add { near = pick near; w = 3.0 *. d.Design.site_width; nets = nets_of anchor };
  ]
  @
  match nets_of (pick near) with
  | n :: _ -> [ Eco.Rewire { net = n; pin_index = 0; to_cell = pick near } ]
  | [] -> []

let check_differential ?(threshold = Eco.default_threshold) base edits =
  let r = Eco.run ~check:true ~threshold ~base edits base_cfg in
  let d = r.Eco.flow.Flow.design in
  (* full result legal (also asserted stage-by-stage via ~check) *)
  let cx, cy = Pins.centers_of_design d in
  Alcotest.(check int) "legal" 0 (List.length (Legality.check d ~cx ~cy));
  if not r.Eco.fallback then begin
    Alcotest.(check bool) "has dirty cells" true (Array.length r.Eco.plan.Eco.dirty > 0);
    (* clean cells bit-identical to the base placement *)
    Array.iter
      (fun i ->
        if Design.num_cells base > i then begin
          Alcotest.(check bool)
            (Printf.sprintf "clean cell %d x" i)
            true
            (d.Design.x.(i) = base.Design.x.(i) && d.Design.y.(i) = base.Design.y.(i));
          Alcotest.(check bool)
            (Printf.sprintf "clean cell %d orient" i)
            true
            (Orient.equal d.Design.orient.(i) base.Design.orient.(i))
        end)
      r.Eco.plan.Eco.frozen
  end;
  r

(* ----- unit: edit application ----- *)

let tiny () = Lazy.force tiny_base

let test_apply_preserves_ids () =
  let base = tiny () in
  let a = Eco.apply base [ Eco.Move { cell = 0; dx = 1.0; dy = 0.0 } ] in
  Alcotest.(check int) "cells" (Design.num_cells base) (Design.num_cells a.Eco.edited);
  Alcotest.(check int) "nets" (Design.num_nets base) (Design.num_nets a.Eco.edited);
  Alcotest.(check string)
    "names" (Design.cell base 5).Types.c_name (Design.cell a.Eco.edited 5).Types.c_name;
  Alcotest.(check (list string))
    "groups"
    (List.map (fun g -> g.Dpp_netlist.Groups.g_name) base.Design.groups)
    (List.map (fun g -> g.Dpp_netlist.Groups.g_name) a.Eco.edited.Design.groups);
  Alcotest.(check bool)
    "moved" true
    (abs_float (a.Eco.edited.Design.x.(0) -. (base.Design.x.(0) +. 1.0)) < 1e-9)

let test_apply_resize_and_add () =
  let base = tiny () in
  let m = (Design.movable_ids base).(0) in
  let a =
    Eco.apply base
      [
        Eco.Resize { cell = m; scale = 2.0 };
        Eco.Add { near = m; w = 2.5 *. base.Design.site_width; nets = [ 0 ] };
      ]
  in
  let d = a.Eco.edited in
  let w0 = (Design.cell base m).Types.c_width in
  let w1 = (Design.cell d m).Types.c_width in
  Alcotest.(check bool) "width grew" true (w1 > w0);
  Alcotest.(check bool)
    "site multiple" true
    (Float.rem w1 d.Design.site_width < 1e-9
    || d.Design.site_width -. Float.rem w1 d.Design.site_width < 1e-9);
  Alcotest.(check int) "one added cell" (Design.num_cells base + 1) (Design.num_cells d);
  let added = Design.num_cells base in
  Alcotest.(check bool) "added is movable" true
    ((Design.cell d added).Types.c_kind = Types.Movable);
  (* net 0 gained the new cell's pin *)
  let owners n dd =
    Array.to_list (Design.net dd n).Types.n_pins
    |> List.map (fun p -> (Design.pin dd p).Types.p_cell)
  in
  Alcotest.(check int) "net 0 grew"
    (List.length (owners 0 base) + 1)
    (List.length (owners 0 d));
  Alcotest.(check bool) "added on net 0" true (List.mem added (owners 0 d));
  Alcotest.(check bool) "seeds include added" true (Array.mem added a.Eco.seeds);
  Alcotest.(check bool) "net 0 structural" true (Array.mem 0 a.Eco.struct_nets)

let test_apply_rewire () =
  let base = tiny () in
  let n = 0 in
  let to_cell = (Design.movable_ids base).(3) in
  let a = Eco.apply base [ Eco.Rewire { net = n; pin_index = 0; to_cell } ] in
  let p = (Design.net a.Eco.edited n).Types.n_pins.(0) in
  Alcotest.(check int) "pin moved" to_cell (Design.pin a.Eco.edited p).Types.p_cell;
  (* rewire endpoints keep a legal placement, so they are not hard seeds;
     the net itself is flagged structural *)
  Alcotest.(check bool) "net structural" true (Array.mem n a.Eco.struct_nets);
  Alcotest.(check (array int)) "no hard seeds" [||] a.Eco.seeds;
  Alcotest.(check (array int)) "target anchors the region" [| to_cell |] a.Eco.anchors

let test_apply_rejects_bad_edits () =
  let base = tiny () in
  let raises e =
    match Eco.apply base [ e ] with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "bad cell" true (raises (Eco.Move { cell = -1; dx = 0.; dy = 0. }));
  Alcotest.(check bool) "bad scale" true
    (raises (Eco.Resize { cell = 0; scale = 0.0 }));
  Alcotest.(check bool) "bad net" true
    (raises (Eco.Rewire { net = 99999; pin_index = 0; to_cell = 0 }));
  Alcotest.(check bool) "empty" true
    (match Eco.apply base [] with exception Invalid_argument _ -> true | _ -> false)

let test_edit_json_roundtrip () =
  let edits =
    [
      Eco.Move { cell = 3; dx = 1.5; dy = -10.0 };
      Eco.Resize { cell = 7; scale = 2.0 };
      Eco.Rewire { net = 11; pin_index = 2; to_cell = 5 };
      Eco.Add { near = 1; w = 4.0; nets = [ 2; 9 ] };
    ]
  in
  let back = Eco.edits_of_json (Json.parse (Json.encode (Eco.edits_to_json edits))) in
  Alcotest.(check bool) "roundtrip" true (edits = back)

(* ----- planning ----- *)

let test_plan_bounds_dirty_set () =
  let base = tiny () in
  let edits = seeded_edits base 42 in
  let p = Eco.plan base edits in
  Alcotest.(check bool) "some dirty" true (Array.length p.Eco.dirty > 0);
  Alcotest.(check bool) "not everything dirty" true (p.Eco.dirty_fraction < 1.0);
  Alcotest.(check bool) "region inside die" true
    (Rect.contains_rect base.Design.die p.Eco.region);
  (* dirty and frozen partition the movables *)
  let movables = Array.length (Design.movable_ids p.Eco.applied.Eco.edited) in
  Alcotest.(check int) "partition" movables
    (Array.length p.Eco.dirty + Array.length p.Eco.frozen)

(* ----- differential: incremental == base on the clean region ----- *)

let test_differential_dp_mix_l () =
  let base = place "dp_mix_l" base_cfg in
  List.iter
    (fun seed ->
      let r = check_differential base (seeded_edits base seed) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d incremental" seed)
        false r.Eco.fallback)
    [ 1; 2 ]

let test_differential_xl10k () =
  match Dpp_gen.Xl.by_name "xl10k" with
  | None -> Alcotest.fail "xl10k preset missing"
  | Some d ->
    let cfg =
      { Config.baseline with Config.gp_rounds = 4; gp_inner_iters = 10; detail_passes = 1 }
    in
    let base = (Flow.run d cfg).Flow.design in
    let r = check_differential base (seeded_edits base 7) in
    Alcotest.(check bool) "incremental path" false r.Eco.fallback

let test_fallback_above_threshold () =
  let base = tiny () in
  let r = check_differential ~threshold:0.0 base (seeded_edits base 3) in
  Alcotest.(check bool) "fell back" true r.Eco.fallback

let test_eco_deterministic () =
  let base = tiny () in
  let edits = seeded_edits base 5 in
  let r1 = Eco.run ~base edits base_cfg in
  let r2 = Eco.run ~base edits base_cfg in
  Alcotest.(check bool) "bit-identical" true
    (r1.Eco.flow.Flow.design.Design.x = r2.Eco.flow.Flow.design.Design.x
    && r1.Eco.flow.Flow.design.Design.y = r2.Eco.flow.Flow.design.Design.y
    && r1.Eco.flow.Flow.design.Design.orient = r2.Eco.flow.Flow.design.Design.orient)

let suite =
  [
    Alcotest.test_case "apply preserves ids" `Quick test_apply_preserves_ids;
    Alcotest.test_case "apply resize+add" `Quick test_apply_resize_and_add;
    Alcotest.test_case "apply rewire" `Quick test_apply_rewire;
    Alcotest.test_case "apply rejects bad edits" `Quick test_apply_rejects_bad_edits;
    Alcotest.test_case "edit json roundtrip" `Quick test_edit_json_roundtrip;
    Alcotest.test_case "plan bounds dirty set" `Quick test_plan_bounds_dirty_set;
    Alcotest.test_case "differential dp_mix_l" `Slow test_differential_dp_mix_l;
    Alcotest.test_case "differential xl10k" `Slow test_differential_xl10k;
    Alcotest.test_case "fallback above threshold" `Quick test_fallback_above_threshold;
    Alcotest.test_case "eco deterministic" `Quick test_eco_deterministic;
  ]
