(* The serving layer: protocol round-trips (including truncated and
   oversized frames), the extraction cache, the scheduler pool, socketpair
   end-to-end jobs with concurrent clients, and the fault-injection
   matrix — disconnect mid-stream, malformed frames mid-job, and a
   simulated SIGTERM with checkpoint/restart/resume to identical bits. *)

module P = Dpp_serve.Protocol
module Cache = Dpp_serve.Cache
module Scheduler = Dpp_serve.Scheduler
module Server = Dpp_serve.Server
module Json = Dpp_report.Json
module Trace = Dpp_report.Trace
module Config = Dpp_core.Config
module Flow = Dpp_core.Flow
module Eco = Dpp_core.Eco
module Snapshot = Dpp_core.Checkpoint.Snapshot
module Design = Dpp_netlist.Design

(* ----- shared fixtures ----- *)

let test_dir =
  lazy
    (let dir = Filename.concat (Filename.get_temp_dir_name ()) "dpp_serve_test" in
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
     dir)

let in_dir name = Filename.concat (Lazy.force test_dir) name

let tiny_design () =
  Dpp_gen.Compose.build
    {
      Dpp_gen.Compose.sp_name = "srv_tiny";
      sp_seed = 23;
      sp_blocks = [ Dpp_gen.Compose.Adder 16; Regbank 16 ];
      sp_random_cells = 150;
      sp_utilization = 0.7;
    }

(* one Bookshelf copy of the tiny design, shared by every server job *)
let tiny_base =
  lazy
    (let base = in_dir "srv_tiny" in
     Dpp_netlist.Bookshelf.write (tiny_design ()) ~basename:base;
     base)

let tiny_spec ?check ?out () =
  P.spec ?check ?out ~gp_rounds:4 ~gp_inner_iters:10 ~detail_passes:1
    (P.Bookshelf { basename = Lazy.force tiny_base })

let fast_cfg =
  { Config.baseline with Config.gp_rounds = 4; gp_inner_iters = 10; detail_passes = 1 }

(* collect a client's responses in submission order, thread-safely *)
let collector () =
  let lock = Mutex.create () in
  let acc = ref [] in
  let push r =
    Mutex.lock lock;
    acc := r :: !acc;
    Mutex.unlock lock
  in
  let all () =
    Mutex.lock lock;
    let l = List.rev !acc in
    Mutex.unlock lock;
    l
  in
  push, all

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* ----- protocol: message round-trips ----- *)

let roundtrip_request r = P.request_of_json (Json.parse (Json.encode (P.request_to_json r)))
let roundtrip_response r = P.response_of_json (Json.parse (Json.encode (P.response_to_json r)))

let test_protocol_requests () =
  let spec =
    P.spec ~mode:Config.Structure_aware ~check:true ~jobs:2 ~gp_rounds:5 ~out:"/tmp/x"
      (P.Preset { name = "dp_mix_l"; seed = 3 })
  in
  List.iter
    (fun r -> Alcotest.(check bool) "request round-trips" true (roundtrip_request r = r))
    [
      P.Submit spec;
      P.Submit (P.spec (P.Bookshelf { basename = "bench/foo" }));
      P.Eco_submit
        {
          base = spec;
          edits =
            P.Edits
              [
                Eco.Move { cell = 4; dx = 1.5; dy = -3.0 };
                Eco.Resize { cell = 7; scale = 2.0 };
                Eco.Rewire { net = 2; pin_index = 1; to_cell = 9 };
                Eco.Add { near = 5; w = 6.0; nets = [ 1; 2 ] };
              ];
          threshold = Some 0.1;
          verify = true;
        };
      P.Eco_submit
        { base = spec; edits = P.Random_edits { ops = 6; seed = 42 }; threshold = None; verify = false };
      P.Ping;
      P.Shutdown;
    ]

let test_protocol_responses () =
  let stage =
    {
      Trace.name = "legal";
      wall_s = 0.25;
      t_s = 1.5;
      hpwl_before = 100.0;
      hpwl_after = 120.0;
      overflow = Some 0.5;
      vm_hwm_kb = 4096;
      heap_kb = 2048;
      levels = [];
      check = Some { Trace.ok = true; oracles = [ "legality" ]; violations = [] };
      extra = [ "job", Json.Num 7.0 ];
    }
  in
  List.iter
    (fun r -> Alcotest.(check bool) "response round-trips" true (roundtrip_response r = r))
    [
      P.Accepted { job = 3 };
      P.Rejected { reason = "queue full" };
      P.Event { job = 3; stage };
      P.Done { job = 3; hpwl = 1234.0; wall_s = 0.75; eco = None };
      P.Done
        { job = 4; hpwl = 99.0; wall_s = 0.5; eco = Some { P.fallback = false; dirty_fraction = 0.03 } };
      P.Failed { job = 3; reason = "boom" };
      P.Pong;
    ]

let test_protocol_malformed () =
  let expect_error name f = Alcotest.check_raises name (P.Protocol_error "") (fun () ->
      try f () with P.Protocol_error _ -> raise (P.Protocol_error ""))
  in
  expect_error "unknown op" (fun () -> ignore (P.request_of_json (Json.parse {|{"op":"nope"}|})));
  expect_error "missing spec" (fun () -> ignore (P.request_of_json (Json.parse {|{"op":"submit"}|})));
  expect_error "eco without edits" (fun () ->
      ignore (P.request_of_json (Json.parse {|{"op":"eco","base":{"src":{"kind":"bookshelf","basename":"x"},"mode":"baseline"}}|})));
  expect_error "bad mode" (fun () ->
      ignore (P.request_of_json (Json.parse {|{"op":"submit","spec":{"src":{"kind":"bookshelf","basename":"x"},"mode":"quantum"}}|})));
  expect_error "unknown response op" (fun () ->
      ignore (P.response_of_json (Json.parse {|{"op":"yo"}|})))

(* ----- protocol: framing ----- *)

let test_frame_roundtrip () =
  let payload = {|{"op":"ping"}|} in
  let decoded, rest = P.decode_frame (P.encode_frame payload) in
  Alcotest.(check string) "payload" payload decoded;
  Alcotest.(check int) "no trailing bytes" 0 rest;
  (* two frames back to back: the remainder is exactly the second frame *)
  let two = P.encode_frame payload ^ P.encode_frame "{}" in
  let _, rest = P.decode_frame two in
  Alcotest.(check int) "second frame pending" (String.length (P.encode_frame "{}")) rest

let test_frame_rejects () =
  let expect_error name f =
    match f () with
    | exception P.Protocol_error _ -> ()
    | _ -> Alcotest.failf "%s: expected Protocol_error" name
  in
  expect_error "truncated payload" (fun () ->
      let full = P.encode_frame {|{"op":"ping"}|} in
      P.decode_frame (String.sub full 0 (String.length full - 4)));
  expect_error "truncated header" (fun () -> P.decode_frame "DPP1 14");
  expect_error "bad magic" (fun () -> P.decode_frame "DPPX 2\n{}");
  expect_error "negative length" (fun () -> P.decode_frame "DPP1 -4\n{}");
  expect_error "oversized" (fun () -> P.decode_frame ~max_len:8 (P.encode_frame "{\"op\":\"ping\"}"));
  (* declared length far beyond the limit must be rejected before any
     allocation of that size *)
  expect_error "huge declared length" (fun () -> P.decode_frame "DPP1 99999999999\n{}")

let test_frame_fd_io () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  P.write_frame a {|{"op":"ping"}|};
  P.write_frame a "{}";
  Alcotest.(check (option string)) "first" (Some {|{"op":"ping"}|}) (P.read_frame b);
  Alcotest.(check (option string)) "second" (Some "{}") (P.read_frame b);
  (* truncated: a partial frame then writer close *)
  let partial = P.encode_frame {|{"op":"ping"}|} in
  ignore (Unix.write_substring a partial 0 (String.length partial - 3) : int);
  Unix.close a;
  (match P.read_frame b with
  | exception P.Protocol_error _ -> ()
  | _ -> Alcotest.fail "expected truncated-frame error");
  Unix.close b;
  (* clean EOF at a frame boundary is None, not an error *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close a;
  Alcotest.(check (option string)) "clean EOF" None (P.read_frame b);
  Unix.close b

(* ----- extraction cache ----- *)

let test_cache_hash () =
  let d1 = tiny_design () and d2 = tiny_design () in
  Alcotest.(check bool) "identical structure, equal keys" true
    (Int64.equal (Cache.hash_design d1) (Cache.hash_design d2));
  let other =
    Dpp_gen.Compose.build
      {
        Dpp_gen.Compose.sp_name = "srv_tiny";
        sp_seed = 24;  (* different seed: different glue structure *)
        sp_blocks = [ Dpp_gen.Compose.Adder 16; Regbank 16 ];
        sp_random_cells = 150;
        sp_utilization = 0.7;
      }
  in
  Alcotest.(check bool) "different structure, different keys" false
    (Int64.equal (Cache.hash_design d1) (Cache.hash_design other));
  (* moving a cell must not change the key: extraction is structural *)
  let moved = tiny_design () in
  Design.set_center moved 0 (Design.cell_center_x moved 0 +. 4.0) (Design.cell_center_y moved 0);
  Alcotest.(check bool) "positions do not key the cache" true
    (Int64.equal (Cache.hash_design d1) (Cache.hash_design moved))

let test_cache_lru () =
  let c = Cache.create ~capacity:2 in
  let entry =
    {
      Cache.slicer = { Dpp_extract.Slicer.groups = []; seeds_control = 0; seeds_chain = 0; columns_grown = 0 };
      metrics = Dpp_extract.Exmetrics.compare_to_truth ~truth:[] ~found:[];
    }
  in
  Cache.add c 1L entry;
  Cache.add c 2L entry;
  Alcotest.(check bool) "hit" true (Cache.find c 1L <> None);
  Cache.add c 3L entry;  (* 2 is now least recent: evicted *)
  Alcotest.(check bool) "evicted" true (Cache.find c 2L = None);
  Alcotest.(check bool) "recency respected" true (Cache.find c 1L <> None);
  let s = Cache.stats c in
  Alcotest.(check int) "size bounded" 2 s.Cache.size;
  Alcotest.(check int) "evictions counted" 1 s.Cache.evictions

let test_cache_extract_stage () =
  let cache = Cache.create ~capacity:4 in
  let cfg = { fast_cfg with Config.mode = Config.Structure_aware } in
  let stages =
    List.map
      (fun (s : Flow.stage) -> if s.Flow.name = "extract" then Cache.extract_stage cache else s)
      (Flow.stages cfg)
  in
  let r1 = Flow.run_stages ~stages (tiny_design ()) cfg in
  let r2 = Flow.run_stages ~stages (tiny_design ()) cfg in
  let s = Cache.stats cache in
  Alcotest.(check int) "one miss" 1 s.Cache.misses;
  Alcotest.(check int) "one hit" 1 s.Cache.hits;
  Alcotest.(check (float 0.0)) "same placement either way" r1.Flow.hpwl_final r2.Flow.hpwl_final;
  Alcotest.(check int) "same groups" (List.length r1.Flow.groups_used)
    (List.length r2.Flow.groups_used)

(* ----- scheduler ----- *)

let test_scheduler_runs_jobs () =
  let s = Scheduler.create ~workers:3 ~queue:16 in
  let count = Atomic.make 0 in
  let ids = collector () in
  let push, all = ids in
  for _ = 1 to 10 do
    match
      Scheduler.submit s (fun ~id ->
          push id;
          Atomic.incr count)
    with
    | `Queued _ -> ()
    | `Busy -> Alcotest.fail "queue unexpectedly full"
  done;
  Scheduler.drain s;
  Alcotest.(check int) "all jobs ran" 10 (Atomic.get count);
  let sorted = List.sort compare (all ()) in
  Alcotest.(check (list int)) "ids unique and dense" (List.init 10 (fun i -> i + 1)) sorted;
  Scheduler.shutdown s;
  Alcotest.(check int) "no orphaned workers" 0 (Scheduler.alive_workers s)

let test_scheduler_backpressure () =
  let s = Scheduler.create ~workers:1 ~queue:1 in
  let gate = Semaphore.Binary.make false in
  let started = Semaphore.Binary.make false in
  (* job 1 occupies the worker until released *)
  (match
     Scheduler.submit s (fun ~id:_ ->
         Semaphore.Binary.release started;
         Semaphore.Binary.acquire gate)
   with
  | `Queued _ -> ()
  | `Busy -> Alcotest.fail "first submit rejected");
  Semaphore.Binary.acquire started;
  (* job 2 fills the queue slot; job 3 must bounce *)
  (match Scheduler.submit s (fun ~id:_ -> ()) with
  | `Queued _ -> ()
  | `Busy -> Alcotest.fail "second submit rejected");
  (match Scheduler.submit s (fun ~id:_ -> ()) with
  | `Busy -> ()
  | `Queued _ -> Alcotest.fail "third submit should bounce off the full queue");
  Semaphore.Binary.release gate;
  Scheduler.drain s;
  Scheduler.shutdown s;
  (match Scheduler.submit s (fun ~id:_ -> ()) with
  | `Busy -> ()
  | `Queued _ -> Alcotest.fail "submit after shutdown should bounce");
  Alcotest.(check int) "workers joined" 0 (Scheduler.alive_workers s)

let test_scheduler_contains_raise () =
  let s = Scheduler.create ~workers:1 ~queue:4 in
  let ran = Atomic.make false in
  ignore (Scheduler.submit s (fun ~id:_ -> failwith "job explodes"));
  ignore (Scheduler.submit s (fun ~id:_ -> Atomic.set ran true));
  Scheduler.drain s;
  Alcotest.(check bool) "worker survived the raising job" true (Atomic.get ran);
  Scheduler.shutdown s

(* ----- end-to-end over a socketpair ----- *)

let with_server ?(workers = 2) ?spool f =
  let cfg = { Server.default_cfg with Server.workers; spool } in
  let t = Server.create ~cfg () in
  Fun.protect ~finally:(fun () -> Server.shutdown t) (fun () -> f t)

(* run one client conversation: send the requests, then read responses
   until [done_count] Done/Failed/Rejected verdicts have arrived *)
let converse t requests ~verdicts =
  let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let handler = Thread.create (fun () -> Server.handle_client t server) () in
  List.iter (P.send_request client) requests;
  let responses = ref [] in
  let seen = ref 0 in
  (try
     while !seen < verdicts do
       match P.recv_response client with
       | None -> seen := verdicts
       | Some r ->
         responses := r :: !responses;
         (match r with
         | P.Done _ | P.Failed _ | P.Rejected _ -> incr seen
         | _ -> ())
     done
   with P.Protocol_error _ -> ());
  Unix.close client;
  Thread.join handler;
  Unix.close server;
  List.rev !responses

let stage_names job responses =
  List.filter_map
    (function P.Event { job = j; stage } when j = job -> Some stage.Trace.name | _ -> None)
    responses

let test_e2e_single_job () =
  with_server (fun t ->
      let responses = converse t [ P.Submit (tiny_spec ~check:true ()) ] ~verdicts:1 in
      let job =
        match responses with
        | P.Accepted { job } :: _ -> job
        | _ -> Alcotest.fail "expected Accepted first"
      in
      Alcotest.(check (list string)) "stages stream in flow order"
        [ "init"; "gp"; "snap"; "legal"; "detail"; "flip"; "metrics" ]
        (stage_names job responses);
      match List.rev responses with
      | P.Done { job = j; hpwl; _ } :: _ ->
        Alcotest.(check int) "verdict attributed" job j;
        Alcotest.(check bool) "hpwl positive" true (hpwl > 0.0)
      | _ -> Alcotest.fail "expected Done last")

let test_e2e_ping_and_malformed_message () =
  with_server (fun t ->
      let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let handler = Thread.create (fun () -> Server.handle_client t server) () in
      P.send_request client P.Ping;
      Alcotest.(check bool) "pong" true (P.recv_response client = Some P.Pong);
      (* valid frame, nonsense message: Rejected, connection survives *)
      P.write_frame client {|{"op":"transmogrify"}|};
      (match P.recv_response client with
      | Some (P.Rejected _) -> ()
      | _ -> Alcotest.fail "expected Rejected for unknown op");
      P.send_request client P.Ping;
      Alcotest.(check bool) "still serving after rejection" true
        (P.recv_response client = Some P.Pong);
      Unix.close client;
      Thread.join handler;
      Unix.close server)

(* Regression: a Shutdown frame arriving over the real socket front-end must
   terminate the accept loop.  Closing the listening fd alone does not wake a
   thread blocked in accept(2), so close_listener must shut the socket down
   first; without that the daemon parks forever and this join never returns. *)
let test_e2e_socket_shutdown () =
  with_server ~workers:1 (fun t ->
      let path = in_dir "stop.sock" in
      let listener = Thread.create (fun () -> Server.listen_unix t ~path) () in
      let rec connect tries =
        match
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX path);
          fd
        with
        | fd -> fd
        | exception Unix.Unix_error _ when tries > 0 ->
          Thread.delay 0.05;
          connect (tries - 1)
      in
      let fd = connect 100 in
      P.send_request fd P.Ping;
      Alcotest.(check bool) "served over the socket" true (P.recv_response fd = Some P.Pong);
      P.send_request fd P.Shutdown;
      Alcotest.(check bool) "shutdown acknowledged" true (P.recv_response fd = Some P.Pong);
      Unix.close fd;
      Thread.join listener;
      Alcotest.(check bool) "stop latched" true (Server.stopping t))

let test_e2e_concurrent_clients () =
  with_server ~workers:3 (fun t ->
      let clients = 3 in
      let results = Array.make clients [] in
      let threads =
        List.init clients (fun k ->
            Thread.create
              (fun () -> results.(k) <- converse t [ P.Submit (tiny_spec ()) ] ~verdicts:1)
              ())
      in
      List.iter Thread.join threads;
      let jobs =
        Array.to_list results
        |> List.map (fun rs ->
               match rs with
               | P.Accepted { job } :: _ -> job
               | _ -> Alcotest.fail "client missing Accepted")
      in
      Alcotest.(check int) "distinct job ids" clients
        (List.length (List.sort_uniq compare jobs));
      List.iteri
        (fun k rs ->
          let mine = List.nth jobs k in
          (* every streamed message a client sees belongs to its own job *)
          List.iter
            (function
              | P.Event { job; _ } | P.Done { job; _ } | P.Failed { job; _ } ->
                Alcotest.(check int) "attribution" mine job
              | _ -> ())
            rs;
          match List.rev rs with
          | P.Done _ :: _ -> ()
          | _ -> Alcotest.failf "client %d: expected Done" k)
        (Array.to_list results))

let test_e2e_two_jobs_one_connection () =
  with_server ~workers:2 (fun t ->
      let spec = tiny_spec () in
      let responses = converse t [ P.Submit spec; P.Submit spec ] ~verdicts:2 in
      let jobs =
        List.filter_map (function P.Accepted { job } -> Some job | _ -> None) responses
      in
      Alcotest.(check int) "two accepted" 2 (List.length jobs);
      List.iter
        (fun j ->
          Alcotest.(check (list string)) "interleaved stream demultiplexes by job id"
            [ "init"; "gp"; "snap"; "legal"; "detail"; "flip"; "metrics" ]
            (stage_names j responses))
        jobs)

(* ----- fault injection ----- *)

let test_fault_disconnect_mid_stream () =
  with_server (fun t ->
      let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let handler = Thread.create (fun () -> Server.handle_client t server) () in
      let out = in_dir "disc" in
      P.send_request client (P.Submit (tiny_spec ~out ()));
      (* wait for acceptance, then vanish mid-stream *)
      (match P.recv_response client with
      | Some (P.Accepted _) -> ()
      | _ -> Alcotest.fail "expected Accepted");
      Unix.close client;
      Thread.join handler;
      Unix.close server;
      Server.drain t;
      Alcotest.(check bool) "job finished without a client" true
        (Sys.file_exists (out ^ ".pl"));
      Alcotest.(check int) "no failure recorded" 0 (Server.jobs_failed t))

let test_fault_malformed_frame_mid_job () =
  with_server (fun t ->
      let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let handler = Thread.create (fun () -> Server.handle_client t server) () in
      let out = in_dir "malformed" in
      P.send_request client (P.Submit (tiny_spec ~out ()));
      (match P.recv_response client with
      | Some (P.Accepted _) -> ()
      | _ -> Alcotest.fail "expected Accepted");
      (* garbage on the wire while the job runs: the connection is
         dropped (stream unsynchronizable) but the job must complete *)
      ignore (Unix.write_substring client "GARBAGE\n" 0 8 : int);
      Thread.join handler;
      Unix.close server;
      Unix.close client;
      Server.drain t;
      Alcotest.(check bool) "job survived the bad frame" true (Sys.file_exists (out ^ ".pl"));
      Alcotest.(check int) "job did not fail" 0 (Server.jobs_failed t))

(* SIGTERM mid-job, deterministically: abort right after the named stage
   checkpoints, restart a server over the same spool, resume, and compare
   against an uninterrupted run bit for bit. *)
let check_kill_resume ~kill_after () =
  let spool = in_dir (Printf.sprintf "spool_%s" kill_after) in
  if Sys.file_exists spool then
    Array.iter (fun f -> Sys.remove (Filename.concat spool f)) (Sys.readdir spool);
  let out_resumed = in_dir (Printf.sprintf "resumed_%s" kill_after) in
  let out_straight = in_dir (Printf.sprintf "straight_%s" kill_after) in
  (* uninterrupted reference *)
  with_server (fun t ->
      let push, all = collector () in
      ignore (Server.submit_request t (P.Submit (tiny_spec ~out:out_straight ())) ~reply_fn:push);
      Server.drain t;
      match List.rev (all ()) with
      | P.Done _ :: _ -> ()
      | _ -> Alcotest.fail "reference run should succeed");
  (* interrupted run: the job dies right after [kill_after] checkpoints *)
  with_server ~spool (fun t ->
      Server.interrupt_after t kill_after;
      let push, all = collector () in
      ignore (Server.submit_request t (P.Submit (tiny_spec ~out:out_resumed ())) ~reply_fn:push);
      Server.drain t;
      (match List.rev (all ()) with
      | P.Failed { reason; _ } :: _ ->
        Alcotest.(check bool) "failure names the interruption" true
          (String.length reason > 0 && String.sub reason 0 11 = "interrupted")
      | _ -> Alcotest.fail "interrupted job should report Failed");
      Alcotest.(check bool) "checkpoint spooled" true (Sys.readdir spool <> [||]));
  (* restart: a fresh server over the same spool resumes and finishes *)
  with_server ~spool (fun t ->
      let resumed = Server.resume t in
      Alcotest.(check int) "one spooled job resumed" 1 (List.length resumed);
      Server.drain t;
      Alcotest.(check int) "resumed job completed" 1 (Server.jobs_completed t);
      Alcotest.(check (list string)) "spool consumed" [] (Array.to_list (Sys.readdir spool)));
  Alcotest.(check string)
    (Printf.sprintf "kill after %s: resumed placement is bit-identical" kill_after)
    (read_file (out_straight ^ ".pl"))
    (read_file (out_resumed ^ ".pl"))

let test_kill_after_legal () = check_kill_resume ~kill_after:"legal" ()

(* gp is not a resumable boundary: the spool holds only the spec and the
   restarted server re-runs the deterministic flow from scratch *)
let test_kill_after_gp () = check_kill_resume ~kill_after:"gp" ()

(* ----- snapshot codec ----- *)

let test_snapshot_codec () =
  let s =
    {
      Snapshot.stage = "legal";
      design = "srv_tiny";
      cx = [| 1.5; 2.25; 3.0 |];
      cy = [| 0.5; 1.0; 8.0 |];
      orient = [| Dpp_geom.Orient.N; Dpp_geom.Orient.FN; Dpp_geom.Orient.N |];
      skip_ids = [| 2 |];
      flip_skip_ids = [||];
      obstacles = [ Dpp_geom.Rect.make ~xl:0.0 ~yl:0.0 ~xh:4.0 ~yh:2.0 ];
      bound = Some (Dpp_geom.Rect.make ~xl:1.0 ~yl:1.0 ~xh:3.0 ~yh:2.0);
      assignment = [| 0; 1; -1 |];
      failed = [ 2 ];
    }
  in
  Alcotest.(check bool) "snapshot encode/decode round-trips" true
    (Snapshot.decode (Snapshot.encode s) = s)

(* ----- suite ----- *)

let suite =
  [
    Alcotest.test_case "protocol request roundtrip" `Quick test_protocol_requests;
    Alcotest.test_case "protocol response roundtrip" `Quick test_protocol_responses;
    Alcotest.test_case "protocol malformed messages" `Quick test_protocol_malformed;
    Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame rejects truncated oversized" `Quick test_frame_rejects;
    Alcotest.test_case "frame fd io" `Quick test_frame_fd_io;
    Alcotest.test_case "cache structural hash" `Quick test_cache_hash;
    Alcotest.test_case "cache lru eviction" `Quick test_cache_lru;
    Alcotest.test_case "cache extract stage" `Slow test_cache_extract_stage;
    Alcotest.test_case "scheduler runs jobs" `Quick test_scheduler_runs_jobs;
    Alcotest.test_case "scheduler backpressure" `Quick test_scheduler_backpressure;
    Alcotest.test_case "scheduler contains raise" `Quick test_scheduler_contains_raise;
    Alcotest.test_case "e2e single job" `Slow test_e2e_single_job;
    Alcotest.test_case "e2e ping and malformed message" `Quick test_e2e_ping_and_malformed_message;
    Alcotest.test_case "e2e socket shutdown" `Quick test_e2e_socket_shutdown;
    Alcotest.test_case "e2e concurrent clients" `Slow test_e2e_concurrent_clients;
    Alcotest.test_case "e2e two jobs one connection" `Slow test_e2e_two_jobs_one_connection;
    Alcotest.test_case "fault disconnect mid stream" `Slow test_fault_disconnect_mid_stream;
    Alcotest.test_case "fault malformed frame mid job" `Slow test_fault_malformed_frame_mid_job;
    Alcotest.test_case "fault kill after legal resumes" `Slow test_kill_after_legal;
    Alcotest.test_case "fault kill after gp reruns" `Slow test_kill_after_gp;
    Alcotest.test_case "snapshot codec" `Quick test_snapshot_codec;
  ]
