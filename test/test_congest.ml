(* Tests for Dpp_congest.Rudy. *)

module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Builder = Dpp_netlist.Builder
module Rudy = Dpp_congest.Rudy
module Pins = Dpp_wirelen.Pins

let check_float = Alcotest.(check (float 1e-6))

(* one 2-pin net between known points on a known grid *)
let net_design x0 x1 =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:100.0 ~yh:100.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let mk name x =
    let id = Builder.add_cell b ~name ~master:"X" ~w:2.0 ~h:10.0 ~kind:Types.Movable in
    let p = Builder.add_pin b ~cell:id ~dir:Types.Input ~dx:1.0 ~dy:5.0 () in
    Builder.set_position b id ~x ~y:40.0;
    p
  in
  let p0 = mk "a" x0 and p1 = mk "b" x1 in
  ignore (Builder.add_net b [ p0; p1 ]);
  Builder.finish b

let test_rudy_mass () =
  (* total demand integrated over the die must equal the net's RUDY volume:
     density (w+h)/(w*h) times box area w*h = w + h (the half-perimeter) *)
  let d = net_design 10.0 60.0 in
  let cx, cy = Pins.centers_of_design d in
  let r = Rudy.compute ~nx:10 ~ny:10 d ~cx ~cy in
  let total =
    Array.fold_left ( +. ) 0.0 r.Rudy.demand *. r.Rudy.bin_w *. r.Rudy.bin_h
  in
  (* pins at x 11 and 61, same y: w = 50, h = max 1 -> volume 51 *)
  check_float "demand volume = half-perimeter" 51.0 total

let test_rudy_localized () =
  let d = net_design 10.0 20.0 in
  let cx, cy = Pins.centers_of_design d in
  let r = Rudy.compute ~nx:10 ~ny:10 d ~cx ~cy in
  (* all demand inside the net's bbox rows: y in [44,46] -> bin row 4 *)
  for iy = 0 to 9 do
    for ix = 0 to 9 do
      let v = r.Rudy.demand.((iy * 10) + ix) in
      if iy <> 4 && v > 1e-9 then Alcotest.failf "demand leaked to bin (%d,%d)" ix iy
    done
  done

let test_rudy_stats () =
  let d = net_design 10.0 60.0 in
  let cx, cy = Pins.centers_of_design d in
  let r = Rudy.compute ~nx:10 ~ny:10 d ~cx ~cy in
  let s = Rudy.stats r in
  Alcotest.(check bool) "max >= p95 >= avg" true
    (s.Rudy.max_ratio >= s.Rudy.p95_ratio && s.Rudy.p95_ratio >= s.Rudy.avg_ratio);
  Alcotest.(check bool) "fractions sane" true
    (s.Rudy.overflowed_bins >= 0.0 && s.Rudy.overflowed_bins <= 1.0)

let test_rudy_hotspots () =
  let d = net_design 10.0 15.0 in
  let cx, cy = Pins.centers_of_design d in
  let r = Rudy.compute ~nx:10 ~ny:10 d ~cx ~cy in
  match Rudy.hotspots r ~count:3 with
  | (ix, iy, ratio) :: _ ->
    Alcotest.(check bool) "hottest is where the net is" true (iy = 4 && ix <= 2);
    Alcotest.(check bool) "ratio positive" true (ratio > 0.0);
    check_float "accessor agrees" ratio (Rudy.ratio_at r ~ix ~iy)
  | [] -> Alcotest.fail "no hotspots"

let test_rudy_placement_sensitivity () =
  (* total RUDY demand volume equals the sum of net half-perimeters, so a
     shorter-wirelength placement must have lower average demand *)
  let d = Dpp_gen.Compose.build (List.nth Dpp_gen.Presets.suite 4) in
  let qp = Dpp_place.Qp.run ~seed:1 d in
  let gp = Dpp_place.Gp.run d Dpp_place.Gp.default_config ~cx:qp.Dpp_place.Qp.cx ~cy:qp.Dpp_place.Qp.cy in
  let pins = Pins.build d in
  let hp_qp = Dpp_wirelen.Hpwl.total pins ~cx:qp.Dpp_place.Qp.cx ~cy:qp.Dpp_place.Qp.cy in
  let hp_gp = Dpp_wirelen.Hpwl.total pins ~cx:gp.Dpp_place.Gp.cx ~cy:gp.Dpp_place.Gp.cy in
  let s_qp = Rudy.stats (Rudy.compute ~nx:16 ~ny:16 d ~cx:qp.Dpp_place.Qp.cx ~cy:qp.Dpp_place.Qp.cy) in
  let s_gp = Rudy.stats (Rudy.compute ~nx:16 ~ny:16 d ~cx:gp.Dpp_place.Gp.cx ~cy:gp.Dpp_place.Gp.cy) in
  let ordered = (hp_qp <= hp_gp) = (s_qp.Rudy.avg_ratio <= s_gp.Rudy.avg_ratio +. 1e-6) in
  Alcotest.(check bool) "average demand tracks wirelength" true ordered

let test_rudy_mass_grid_invariant () =
  (* the integrated demand volume is a property of the nets, not of the
     grid: every resolution must integrate to the same half-perimeter *)
  let d = net_design 10.0 60.0 in
  let cx, cy = Pins.centers_of_design d in
  List.iter
    (fun (nx, ny) ->
      let r = Rudy.compute ~nx ~ny d ~cx ~cy in
      let total =
        Array.fold_left ( +. ) 0.0 r.Rudy.demand *. r.Rudy.bin_w *. r.Rudy.bin_h
      in
      check_float (Printf.sprintf "volume at %dx%d" nx ny) 51.0 total)
    [ 1, 1; 5, 5; 10, 10; 16, 16; 64, 64; 10, 64 ]

let test_rudy_translation_invariance () =
  (* shifting the whole placement by an exact bin multiple shifts the
     demand map by the same bin offset, bit for bit *)
  let d = net_design 10.0 30.0 in
  let cx, cy = Pins.centers_of_design d in
  let nx = 10 and ny = 10 in
  let r1 = Rudy.compute ~nx ~ny d ~cx ~cy in
  let sx = 2.0 *. r1.Rudy.bin_w and sy = 3.0 *. r1.Rudy.bin_h in
  let r2 =
    Rudy.compute ~nx ~ny d
      ~cx:(Array.map (fun x -> x +. sx) cx)
      ~cy:(Array.map (fun y -> y +. sy) cy)
  in
  for iy = 0 to ny - 4 do
    for ix = 0 to nx - 3 do
      let a = r1.Rudy.demand.((iy * nx) + ix)
      and b = r2.Rudy.demand.(((iy + 3) * nx) + ix + 2) in
      if not (Float.equal a b) then
        Alcotest.failf "bin (%d,%d): %.17g vs shifted %.17g" ix iy a b
    done
  done

let test_rudy_pooled_equivalence () =
  (* the chunk-merged pooled scatter is bit-stable across worker counts,
     and agrees with the serial scatter to rounding *)
  let d = Dpp_gen.Channel.build ~pairs:40 () in
  let cx, cy = Pins.centers_of_design d in
  let serial = Rudy.compute ~nx:16 ~ny:16 d ~cx ~cy in
  let pooled =
    List.map
      (fun w ->
        Dpp_par.Pool.with_pool ~nworkers:w @@ fun pool ->
        (Rudy.compute ~pool ~nx:16 ~ny:16 d ~cx ~cy).Rudy.demand)
      [ 1; 2; 4; 8 ]
  in
  let base = List.hd pooled in
  List.iteri
    (fun k dem ->
      Array.iteri
        (fun b v ->
          if not (Float.equal base.(b) v) then
            Alcotest.failf "bin %d differs between 1 and %d workers" b
              (List.nth [ 1; 2; 4; 8 ] k))
        dem)
    pooled;
  Array.iteri
    (fun b v ->
      let s = serial.Rudy.demand.(b) in
      if abs_float (s -. v) > 1e-9 *. (1.0 +. abs_float s) then
        Alcotest.failf "bin %d: serial %.17g vs pooled %.17g" b s v)
    base

let test_rudy_two_net_fixture () =
  (* two nets with hand-computed per-bin values on a 10x10 grid over a
     100x100 die (bin area 100).  Net A: pins (11,45)-(61,45), weight 1:
     box [11,61]x[45,46], density 51/50.  Net B: pins (11,45)-(11,75),
     weight 2: degenerate width clamps to 1, box [11,12]x[45,75],
     density 2*31/30. *)
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:100.0 ~yh:100.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let mk name x y =
    let id = Builder.add_cell b ~name ~master:"X" ~w:2.0 ~h:10.0 ~kind:Types.Movable in
    let p = Builder.add_pin b ~cell:id ~dir:Types.Input ~dx:1.0 ~dy:5.0 () in
    Builder.set_position b id ~x ~y;
    p
  in
  let p0 = mk "a" 10.0 40.0 and p1 = mk "b" 60.0 40.0 and p2 = mk "c" 10.0 70.0 in
  (* a second pin at the same offset on cell "a": one pin per net *)
  let p0' = Builder.add_pin b ~cell:0 ~dir:Types.Output ~dx:1.0 ~dy:5.0 () in
  ignore (Builder.add_net b ~weight:1.0 [ p0; p1 ]);
  ignore (Builder.add_net b ~weight:2.0 [ p0'; p2 ]);
  let d = Builder.finish b in
  let cx, cy = Pins.centers_of_design d in
  let r = Rudy.compute ~nx:10 ~ny:10 d ~cx ~cy in
  let da = 1.0 *. (50.0 +. 1.0) /. (50.0 *. 1.0) in
  let db = 2.0 *. (1.0 +. 30.0) /. (1.0 *. 30.0) in
  let at ix iy = r.Rudy.demand.((iy * 10) + ix) in
  (* bin (1,4): 9x1 of net A and 1x5 of net B *)
  check_float "bin (1,4)" (((9.0 *. da) +. (5.0 *. db)) /. 100.0) (at 1 4);
  (* bin (3,4): net A only, full 10x1 *)
  check_float "bin (3,4)" (10.0 *. da /. 100.0) (at 3 4);
  (* bin (6,4): net A's last sliver, 1x1 *)
  check_float "bin (6,4)" (1.0 *. da /. 100.0) (at 6 4);
  (* bin (1,6): net B only, 1x10 *)
  check_float "bin (1,6)" (10.0 *. db /. 100.0) (at 1 6);
  (* bin (1,7): net B's top, 1x5 *)
  check_float "bin (1,7)" (5.0 *. db /. 100.0) (at 1 7);
  (* far corner: empty *)
  check_float "bin (9,9)" 0.0 (at 9 9)

let test_rudy_degenerate_grids () =
  (* non-positive grid requests collapse to the single-bin grid, and a
     zero-extent die falls back to unit bins — both stay finite *)
  let d = net_design 10.0 60.0 in
  let cx, cy = Pins.centers_of_design d in
  let r = Rudy.compute ~nx:0 ~ny:(-3) d ~cx ~cy in
  Alcotest.(check int) "collapsed nx" 1 r.Rudy.nx;
  Alcotest.(check int) "collapsed ny" 1 r.Rudy.ny;
  check_float "single-bin volume" 51.0 (r.Rudy.demand.(0) *. r.Rudy.bin_w *. r.Rudy.bin_h);
  let flat =
    { d with Dpp_netlist.Design.die = Rect.make ~xl:0.0 ~yl:40.0 ~xh:100.0 ~yh:40.0 }
  in
  let r = Rudy.compute ~nx:10 ~ny:10 flat ~cx ~cy in
  check_float "zero-height die: unit bin" 1.0 r.Rudy.bin_h;
  Array.iter
    (fun v ->
      if not (Float.is_finite v) || v < 0.0 then
        Alcotest.failf "non-finite or negative demand %.17g" v)
    r.Rudy.demand;
  let s = Rudy.stats r in
  Alcotest.(check bool) "stats finite" true
    (Float.is_finite s.Rudy.max_ratio && Float.is_finite s.Rudy.ace_ratio)

let test_rudy_weight_scales () =
  let d1 = net_design 10.0 60.0 in
  let cx, cy = Pins.centers_of_design d1 in
  let r1 = Rudy.compute ~nx:10 ~ny:10 d1 ~cx ~cy in
  (* double the net weight: total demand doubles *)
  let nets =
    Array.map (fun (n : Types.net) -> { n with Types.n_weight = 2.0 }) d1.Dpp_netlist.Design.nets
  in
  let d2 = { d1 with Dpp_netlist.Design.nets } in
  let r2 = Rudy.compute ~nx:10 ~ny:10 d2 ~cx ~cy in
  let tot r = Array.fold_left ( +. ) 0.0 r.Rudy.demand in
  check_float "weight scales demand" (2.0 *. tot r1) (tot r2)

let suite =
  [
    Alcotest.test_case "rudy mass conservation" `Quick test_rudy_mass;
    Alcotest.test_case "rudy localized" `Quick test_rudy_localized;
    Alcotest.test_case "rudy stats" `Quick test_rudy_stats;
    Alcotest.test_case "rudy hotspots" `Quick test_rudy_hotspots;
    Alcotest.test_case "rudy placement sensitivity" `Slow test_rudy_placement_sensitivity;
    Alcotest.test_case "rudy weight scaling" `Quick test_rudy_weight_scales;
    Alcotest.test_case "rudy mass grid invariance" `Quick test_rudy_mass_grid_invariant;
    Alcotest.test_case "rudy translation invariance" `Quick test_rudy_translation_invariance;
    Alcotest.test_case "rudy pooled equivalence" `Quick test_rudy_pooled_equivalence;
    Alcotest.test_case "rudy two-net fixture" `Quick test_rudy_two_net_fixture;
    Alcotest.test_case "rudy degenerate grids" `Quick test_rudy_degenerate_grids;
  ]
