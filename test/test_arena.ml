(* Tests for the scratch arena: buffer recycling semantics, the
   arena-on = arena-off bit-identity contract through Gp/Rudy/Netbox,
   reuse across runs, and domain confinement (concurrent workers with
   separate arenas must not perturb each other's trajectories). *)

module Arena = Dpp_util.Arena
module Design = Dpp_netlist.Design
module Pins = Dpp_wirelen.Pins
module Netbox = Dpp_wirelen.Netbox
module Rudy = Dpp_congest.Rudy
module Qp = Dpp_place.Qp
module Gp = Dpp_place.Gp

let eq_arr name a b =
  Alcotest.(check bool) name true (Array.for_all2 Float.equal a b)

(* ---------------- buffer semantics ---------------- *)

let test_floats_recycle_zeroed () =
  let t = Arena.create () in
  let a = Arena.floats t "k" 5 in
  Array.fill a 0 5 3.25;
  let b = Arena.floats t "k" 5 in
  Alcotest.(check bool) "same buffer back" true (a == b);
  Alcotest.(check bool) "zero-filled on recycle" true (Array.for_all (fun v -> v = 0.0) b);
  Alcotest.(check int) "one miss" 1 (Arena.misses t);
  Alcotest.(check int) "one hit" 1 (Arena.hits t)

let test_floats_size_change_reallocates () =
  let t = Arena.create () in
  let a = Arena.floats t "k" 5 in
  let b = Arena.floats t "k" 7 in
  Alcotest.(check bool) "fresh buffer" true (a != b);
  Alcotest.(check int) "new length" 7 (Array.length b)

let test_floats_raw_preserves_contents () =
  let t = Arena.create () in
  let a = Arena.floats_raw t "r" 4 in
  Array.fill a 0 4 1.5;
  let b = Arena.floats_raw t "r" 4 in
  Alcotest.(check bool) "same buffer back" true (a == b);
  Alcotest.(check bool) "contents untouched" true (Array.for_all (fun v -> v = 1.5) b)

let test_ints_recycle_zeroed () =
  let t = Arena.create () in
  let a = Arena.ints t "i" 6 in
  Array.fill a 0 6 9;
  let b = Arena.ints t "i" 6 in
  Alcotest.(check bool) "same buffer back" true (a == b);
  Alcotest.(check bool) "zero-filled" true (Array.for_all (fun v -> v = 0) b)

let test_cached_memoizes () =
  let t = Arena.create () in
  let built = ref 0 in
  let make () =
    Arena.cached t "c" (fun () ->
        incr built;
        Buffer.create 8)
  in
  let a = make () in
  let b = make () in
  Alcotest.(check bool) "same structure" true (a == b);
  Alcotest.(check int) "built once" 1 !built

let test_clear_drops () =
  let t = Arena.create () in
  let a = Arena.floats t "k" 5 in
  Arena.clear t;
  let b = Arena.floats t "k" 5 in
  Alcotest.(check bool) "reallocated after clear" true (a != b)

(* ---------------- arena-on = arena-off through the stack ------------- *)

let gp_cfg = { Gp.default_config with Gp.rounds = 5; inner_iters = 15 }

let run_gp ?arena d =
  let qp = Qp.run d in
  let r = Gp.run ?arena d gp_cfg ~cx:qp.Qp.cx ~cy:qp.Qp.cy in
  (* arena-backed results alias arena buffers: snapshot before reuse *)
  Array.copy r.Gp.cx, Array.copy r.Gp.cy, r.Gp.final_hpwl

let test_gp_arena_off_vs_on () =
  let d = Tutil.random_design ~cells:40 ~nets:50 3 in
  let cx0, cy0, h0 = run_gp d in
  let arena = Arena.create () in
  let cx1, cy1, h1 = run_gp ~arena d in
  eq_arr "cx identical" cx0 cx1;
  eq_arr "cy identical" cy0 cy1;
  Alcotest.(check bool) "hpwl identical" true (Float.equal h0 h1)

let test_gp_arena_reuse_across_runs () =
  let d = Tutil.random_design ~cells:40 ~nets:50 5 in
  let cx0, cy0, _ = run_gp d in
  let arena = Arena.create () in
  (* first run populates the arena, second recycles every buffer *)
  let _ = run_gp ~arena d in
  let cx2, cy2, _ = run_gp ~arena d in
  Alcotest.(check bool) "second run recycled buffers" true (Arena.hits arena > 0);
  eq_arr "recycled run cx identical" cx0 cx2;
  eq_arr "recycled run cy identical" cy0 cy2

let test_gp_arena_fuzz () =
  (* many small random designs: the trajectory must never depend on
     whether (or how often) an arena was threaded through *)
  for seed = 1 to 8 do
    let d = Tutil.random_design ~cells:(15 + (3 * seed)) ~nets:(20 + (2 * seed)) seed in
    let cx0, cy0, _ = run_gp d in
    let arena = Arena.create () in
    let _ = run_gp ~arena d in
    let cx1, cy1, _ = run_gp ~arena d in
    eq_arr (Printf.sprintf "seed %d cx" seed) cx0 cx1;
    eq_arr (Printf.sprintf "seed %d cy" seed) cy0 cy1
  done

let test_rudy_arena_identity () =
  let d = Tutil.random_design ~cells:30 ~nets:40 7 in
  let cx, cy = Pins.centers_of_design d in
  let fresh = Rudy.compute d ~cx ~cy in
  let arena = Arena.create () in
  let a1 = Rudy.compute ~arena d ~cx ~cy in
  eq_arr "first arena demand" fresh.Rudy.demand a1.Rudy.demand;
  let a2 = Rudy.compute ~arena d ~cx ~cy in
  eq_arr "recycled arena demand" fresh.Rudy.demand a2.Rudy.demand;
  Alcotest.(check bool) "grid recycled" true (Arena.hits arena > 0)

let test_netbox_reuse_identity () =
  let d = Tutil.random_design ~cells:30 ~nets:40 9 in
  let pins = Pins.build d in
  let cx, cy = Pins.centers_of_design d in
  let donor = Netbox.build pins ~cx:(Array.copy cx) ~cy:(Array.copy cy) in
  (* shift the placement, then rebuild fresh vs through the donor *)
  let cx2 = Array.map (fun v -> v +. 1.5) cx and cy2 = Array.map (fun v -> v -. 0.5) cy in
  let fresh = Netbox.build pins ~cx:(Array.copy cx2) ~cy:(Array.copy cy2) in
  let reused = Netbox.build ~reuse:donor pins ~cx:(Array.copy cx2) ~cy:(Array.copy cy2) in
  Alcotest.(check bool) "totals identical" true
    (Float.equal (Netbox.total fresh) (Netbox.total reused));
  for n = 0 to Design.num_nets d - 1 do
    let a0, a1, a2, a3 = Netbox.net_box fresh n in
    let b0, b1, b2, b3 = Netbox.net_box reused n in
    Alcotest.(check bool)
      (Printf.sprintf "net %d box" n)
      true
      (Float.equal a0 b0 && Float.equal a1 b1 && Float.equal a2 b2 && Float.equal a3 b3)
  done

let test_concurrent_domains_separate_arenas () =
  (* two worker domains place different designs at once, each with its
     own arena; both trajectories must equal their serial references
     (shared arena state would corrupt one or both) *)
  let d1 = Tutil.random_design ~cells:35 ~nets:45 11 in
  let d2 = Tutil.random_design ~cells:28 ~nets:36 13 in
  let ref1 = run_gp d1 and ref2 = run_gp d2 in
  let worker d = Domain.spawn (fun () -> run_gp ~arena:(Arena.create ()) d) in
  let w1 = worker d1 and w2 = worker d2 in
  let cx1, cy1, _ = Domain.join w1 and cx2, cy2, _ = Domain.join w2 in
  let rcx1, rcy1, _ = ref1 and rcx2, rcy2, _ = ref2 in
  eq_arr "domain 1 cx" rcx1 cx1;
  eq_arr "domain 1 cy" rcy1 cy1;
  eq_arr "domain 2 cx" rcx2 cx2;
  eq_arr "domain 2 cy" rcy2 cy2

let suite =
  [
    Alcotest.test_case "floats recycle zeroed" `Quick test_floats_recycle_zeroed;
    Alcotest.test_case "floats size change reallocates" `Quick test_floats_size_change_reallocates;
    Alcotest.test_case "floats_raw preserves contents" `Quick test_floats_raw_preserves_contents;
    Alcotest.test_case "ints recycle zeroed" `Quick test_ints_recycle_zeroed;
    Alcotest.test_case "cached memoizes" `Quick test_cached_memoizes;
    Alcotest.test_case "clear drops buffers" `Quick test_clear_drops;
    Alcotest.test_case "gp arena off vs on" `Quick test_gp_arena_off_vs_on;
    Alcotest.test_case "gp arena reuse across runs" `Quick test_gp_arena_reuse_across_runs;
    Alcotest.test_case "gp arena fuzz" `Slow test_gp_arena_fuzz;
    Alcotest.test_case "rudy arena identity" `Quick test_rudy_arena_identity;
    Alcotest.test_case "netbox reuse identity" `Quick test_netbox_reuse_identity;
    Alcotest.test_case "concurrent domains separate arenas" `Quick
      test_concurrent_domains_separate_arenas;
  ]
