(* Tests for Dpp_check (placement oracles), the per-stage Checkpoint wiring
   in the flow, and the legalizer idempotence property the oracles certify. *)

module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Builder = Dpp_netlist.Builder
module Design = Dpp_netlist.Design
module Pins = Dpp_wirelen.Pins
module Netbox = Dpp_wirelen.Netbox
module Model = Dpp_wirelen.Model
module Legal = Dpp_place.Legal
module Abacus = Dpp_place.Abacus
module Config = Dpp_core.Config
module Ctx = Dpp_core.Ctx
module Flow = Dpp_core.Flow
module Fuzz = Dpp_core.Fuzz
module Compose = Dpp_gen.Compose
module Trace = Dpp_report.Trace
module Json = Dpp_report.Json
module Check = Dpp_check

let check_design () =
  Compose.build
    {
      Compose.sp_name = "ck";
      sp_seed = 17;
      sp_blocks = [ Compose.Adder 8; Regbank 8 ];
      sp_random_cells = 150;
      sp_utilization = 0.7;
    }

let small_cfg =
  { Config.structure_aware with Config.gp_rounds = 6; gp_inner_iters = 20; detail_passes = 2 }

let baseline_cfg = { small_cfg with Config.mode = Config.Baseline }

(* one baseline run shared by the oracle and idempotence tests *)
let placed = lazy (Flow.run (check_design ()) baseline_cfg)

let final_coords (r : Flow.result) = Pins.centers_of_design r.Flow.design

let violation_strings vs = Check.Violation.strings vs

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

(* ----- legality oracle ----- *)

let test_legal_clean () =
  let r = Lazy.force placed in
  let cx, cy = final_coords r in
  Alcotest.(check (list string)) "flow output passes the legal oracle" []
    (violation_strings (Check.legal r.Flow.design ~cx ~cy))

let two_movables d =
  let ids = Design.movable_ids d in
  let narrow =
    Array.to_list ids
    |> List.filter (fun i -> (Design.cell d i).Types.c_height <= d.Design.row_height +. 1e-9)
  in
  match narrow with a :: b :: _ -> (a, b) | _ -> Alcotest.fail "need two movable cells"

let test_legal_detects_injected_overlap () =
  let r = Lazy.force placed in
  let d = r.Flow.design in
  let cx, cy = final_coords r in
  let a, b = two_movables d in
  cx.(a) <- cx.(b);
  cy.(a) <- cy.(b);
  let vs = Check.overlap_bounds d ~cx ~cy in
  Alcotest.(check bool) "overlap reported" true (vs <> []);
  let rendered = String.concat "\n" (violation_strings vs) in
  let name i = (Design.cell d i).Types.c_name in
  let mentions n = contains ~sub:n rendered in
  Alcotest.(check bool)
    (Printf.sprintf "report names the cells (%s, %s)" (name a) (name b))
    true
    (mentions (name a) && mentions (name b))

let test_finite_detects_nan () =
  let r = Lazy.force placed in
  let d = r.Flow.design in
  let cx, cy = final_coords r in
  let a, _ = two_movables d in
  cx.(a) <- Float.nan;
  Alcotest.(check bool) "NaN reported" true (Check.finite d ~cx ~cy <> [])

(* ----- legalizer idempotence (satellite): re-legalizing an already-legal
   placement must change nothing and stay clean under the oracle ----- *)

let test_legalizer_idempotent () =
  let r = Lazy.force placed in
  let d = r.Flow.design in
  let cx, cy = final_coords r in
  let legal = Legal.run d ~cx ~cy () in
  Alcotest.(check (list string)) "no cell failed to fit" []
    (List.map string_of_int legal.Legal.failed);
  Abacus.run d ~target_cx:cx ~legal ();
  let drift = ref 0.0 in
  Array.iter
    (fun i ->
      drift := max !drift (abs_float (legal.Legal.cx.(i) -. cx.(i)));
      drift := max !drift (abs_float (legal.Legal.cy.(i) -. cy.(i))))
    (Design.movable_ids d);
  Alcotest.(check bool)
    (Printf.sprintf "max displacement %.3g under 1e-6" !drift)
    true (!drift <= 1e-6);
  Alcotest.(check (list string)) "re-legalized placement passes the oracle" []
    (violation_strings (Check.legal d ~cx:legal.Legal.cx ~cy:legal.Legal.cy))

(* ----- netbox consistency oracle ----- *)

let test_netbox_sync_clean_and_corrupted () =
  let d = Fuzz.random_design ~seed:5 ~cells:60 ~nets:20 in
  let pins = Pins.build d in
  let cx, cy = Pins.centers_of_design d in
  let nb = Netbox.build pins ~cx ~cy in
  Alcotest.(check (list string)) "fresh cache is in sync" []
    (violation_strings (Check.netbox_sync nb));
  (* a direct coordinate write bypasses the cache's bookkeeping — exactly
     the corruption the oracle exists to catch *)
  let victim = (Design.movable_ids d).(0) in
  cx.(victim) <- cx.(victim) +. 7.0;
  let vs = Check.netbox_sync nb in
  Alcotest.(check bool) "stale cache reported" true (vs <> [])

(* ----- gradient oracle ----- *)

let test_gradient_oracle () =
  let d = Fuzz.random_design ~seed:11 ~cells:40 ~nets:15 in
  let gamma = max 1.0 (0.02 *. Rect.width d.Design.die) in
  List.iter
    (fun model ->
      Alcotest.(check (list string))
        (Printf.sprintf "%s gradient matches finite differences" (Model.kind_to_string model))
        []
        (violation_strings (Check.gradient ~samples:5 ~seed:3 ~model ~gamma d)))
    [ Model.Lse; Model.Wa ]

(* ----- validation oracle carries names, not indices ----- *)

let test_validate_oracle_names () =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:100.0 ~yh:100.0 in
  let b = Builder.create ~name:"badgrp" ~die ~row_height:10.0 ~site_width:1.0 () in
  let add name kind =
    Builder.add_cell b ~name ~master:"X" ~w:4.0 ~h:10.0 ~kind
  in
  let c0 = add "alpha" Types.Fixed and c1 = add "beta" Types.Movable in
  let p0 = Builder.add_pin b ~cell:c0 ~dir:Types.Output ()
  and p1 = Builder.add_pin b ~cell:c1 ~dir:Types.Input () in
  ignore (Builder.add_net b [ p0; p1 ]);
  (* a group may not contain a fixed cell — the classic labeling mistake *)
  Builder.add_group b (Dpp_netlist.Groups.make "g0" [| [| c0; c1 |] |]);
  let d = Builder.finish b in
  let vs = Check.validate d in
  Alcotest.(check bool) "fixed cell in a group is an error" true (vs <> []);
  let rendered = String.concat "\n" (violation_strings vs) in
  Alcotest.(check bool) "report names the cell (alpha), not an index" true
    (contains ~sub:"alpha" rendered);
  Alcotest.(check bool) "report names the group" true (contains ~sub:"group g0" rendered)

(* ----- bookshelf round-trip oracle ----- *)

let test_bookshelf_oracle_clean () =
  Alcotest.(check (list string)) "generated design round-trips" []
    (violation_strings (Check.bookshelf_roundtrip (check_design ())))

(* ----- flow --check wiring ----- *)

let test_flow_check_clean_both_modes () =
  let d = check_design () in
  let base, sa = Flow.run_both ~check:true d small_cfg in
  List.iter
    (fun (r : Flow.result) ->
      List.iter
        (fun (s : Trace.stage) ->
          match s.Trace.check with
          | None -> Alcotest.failf "stage %s has no check verdict" s.Trace.name
          | Some c ->
            Alcotest.(check bool)
              (Printf.sprintf "stage %s checked clean" s.Trace.name)
              true c.Trace.ok;
            Alcotest.(check bool)
              (Printf.sprintf "stage %s ran oracles" s.Trace.name)
              true (c.Trace.oracles <> []))
        r.Flow.stage_trace)
    [ base; sa ]

(* The acceptance criterion: an intentionally injected Netbox corruption is
   caught by check mode and attributed to the offending stage — not to a
   later one. *)
let test_mutation_caught_and_attributed () =
  let d = check_design () in
  let corrupt =
    {
      Flow.name = "corrupt";
      run =
        (fun ctx ->
          (* force the cache live, then poke a coordinate behind its back *)
          ignore (Ctx.netbox ctx);
          let victim = (Design.movable_ids ctx.Ctx.design).(0) in
          ctx.Ctx.cx.(victim) <- ctx.Ctx.cx.(victim) +. 7.0;
          ctx);
    }
  in
  let stages =
    Flow.stages baseline_cfg
    |> List.concat_map (fun s -> if s.Flow.name = "detail" then [ s; corrupt ] else [ s ])
  in
  match Flow.run_stages ~check:true ~stages d baseline_cfg with
  | _ -> Alcotest.fail "corruption went undetected"
  | exception Flow.Check_failed { stage; violations } ->
    Alcotest.(check string) "attributed to the injected stage" "corrupt" stage;
    Alcotest.(check bool) "netbox oracle fired" true
      (List.exists (String.starts_with ~prefix:"netbox") violations)

(* Without the netbox forced live the same poke is still caught, by the
   legality oracle (the +7.0 shift is off the site grid / overlapping). *)
let test_mutation_uncached_still_caught () =
  let d = check_design () in
  let corrupt =
    {
      Flow.name = "corrupt";
      run =
        (fun ctx ->
          let victim = (Design.movable_ids ctx.Ctx.design).(0) in
          ctx.Ctx.cx.(victim) <- ctx.Ctx.cx.(victim) +. 7.3;
          ctx);
    }
  in
  let stages =
    Flow.stages baseline_cfg
    |> List.concat_map (fun s -> if s.Flow.name = "flip" then [ s; corrupt ] else [ s ])
  in
  match Flow.run_stages ~check:true ~stages d baseline_cfg with
  | _ -> Alcotest.fail "corruption went undetected"
  | exception Flow.Check_failed { stage; _ } ->
    Alcotest.(check string) "attributed to the injected stage" "corrupt" stage

(* ----- stage-trace schema golden test (satellite) ----- *)

let test_trace_schema () =
  let d = check_design () in
  let r = Flow.run ~check:true d baseline_cfg in
  let json = Json.parse (Trace.to_json (Flow.trace_of_result r)) in
  let str path v = match Json.member path v with
    | Some s -> Json.to_string s
    | None -> Alcotest.failf "missing %S field" path
  in
  Alcotest.(check string) "design name" "ck" (str "design" json);
  Alcotest.(check string) "mode" "baseline" (str "mode" json);
  let stages =
    match Json.member "stages" json with
    | Some s -> Json.to_list s
    | None -> Alcotest.fail "missing stages array"
  in
  Alcotest.(check int) "one record per stage" (List.length r.Flow.stage_trace)
    (List.length stages);
  let expected_names = List.map (fun (s : Flow.stage) -> s.Flow.name) (Flow.stages baseline_cfg) in
  Alcotest.(check (list string)) "stage names in flow order" expected_names
    (List.map (str "name") stages);
  let last_t = ref 0.0 in
  List.iter
    (fun s ->
      let num path = match Json.member path s with
        | Some v -> Json.to_float v
        | None -> Alcotest.failf "missing %S field" path
      in
      let wall = num "wall_s" and t_s = num "t_s" in
      Alcotest.(check bool) "wall_s non-negative" true (wall >= 0.0);
      Alcotest.(check bool) "timestamps monotone" true (t_s >= !last_t);
      last_t := t_s;
      ignore (num "hpwl_before");
      ignore (num "hpwl_after");
      (match Json.member "overflow" s with
      | Some (Json.Null | Json.Num _) -> ()
      | _ -> Alcotest.fail "overflow must be null or a number");
      match Json.member "check" s with
      | Some (Json.Obj _ as c) ->
        Alcotest.(check bool) "check verdict ok" true
          (match Json.member "ok" c with Some b -> Json.to_bool b | None -> false);
        ignore (Json.to_list (Option.get (Json.member "oracles" c)));
        ignore (Json.to_list (Option.get (Json.member "violations" c)))
      | _ -> Alcotest.fail "check verdict missing from a --check run")
    stages

let test_trace_check_null_without_check () =
  let d = check_design () in
  let r = Flow.run d baseline_cfg in
  let json = Json.parse (Trace.to_json (Flow.trace_of_result r)) in
  let stages = Json.to_list (Option.get (Json.member "stages" json)) in
  List.iter
    (fun s ->
      match Json.member "check" s with
      | Some Json.Null -> ()
      | _ -> Alcotest.fail "check must be null outside --check runs")
    stages

let suite =
  [
    Alcotest.test_case "legal oracle clean on flow output" `Quick test_legal_clean;
    Alcotest.test_case "legal oracle detects injected overlap" `Quick
      test_legal_detects_injected_overlap;
    Alcotest.test_case "finite oracle detects NaN" `Quick test_finite_detects_nan;
    Alcotest.test_case "legalizer is idempotent" `Quick test_legalizer_idempotent;
    Alcotest.test_case "netbox oracle clean and corrupted" `Quick
      test_netbox_sync_clean_and_corrupted;
    Alcotest.test_case "gradient oracle" `Quick test_gradient_oracle;
    Alcotest.test_case "validate oracle carries names" `Quick test_validate_oracle_names;
    Alcotest.test_case "bookshelf oracle clean" `Quick test_bookshelf_oracle_clean;
    Alcotest.test_case "flow --check clean in both modes" `Slow
      test_flow_check_clean_both_modes;
    Alcotest.test_case "injected netbox corruption attributed" `Quick
      test_mutation_caught_and_attributed;
    Alcotest.test_case "uncached corruption still caught" `Quick
      test_mutation_uncached_still_caught;
    Alcotest.test_case "stage-trace schema (check mode)" `Quick test_trace_schema;
    Alcotest.test_case "stage-trace check null without --check" `Quick
      test_trace_check_null_without_check;
  ]
