(* The deterministic-equivalence suite for the domain-parallel kernels.

   Every comparison here is bit-exact ([Float.equal] per element, no
   tolerance): the wirelength and netbox kernels promise identity with
   the serial code at any worker count, the chunk-merged bell and RUDY
   kernels promise identity across worker counts, and the whole flow
   promises the same final placement at -jobs 1 and -jobs 4. *)

module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Builder = Dpp_netlist.Builder
module Design = Dpp_netlist.Design
module Pool = Dpp_par.Pool
module Pins = Dpp_wirelen.Pins
module Model = Dpp_wirelen.Model
module Par_grad = Dpp_wirelen.Par_grad
module Netbox = Dpp_wirelen.Netbox
module Grid = Dpp_density.Grid
module Bell = Dpp_density.Bell
module Rudy = Dpp_congest.Rudy
module Check = Dpp_check
module Config = Dpp_core.Config
module Flow = Dpp_core.Flow
module Gp = Dpp_place.Gp
module Trace = Dpp_report.Trace

let worker_counts = [ 1; 2; 3; 8 ]

let check_bits what a b =
  Alcotest.(check int) (what ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i v ->
      if not (Float.equal v b.(i)) then
        Alcotest.failf "%s[%d]: %.17g <> %.17g" what i v b.(i))
    a

let check_float what a b =
  if not (Float.equal a b) then Alcotest.failf "%s: %.17g <> %.17g" what a b

(* one net much larger than a static chunk of the (single-element) net
   list: all 60 pins of 30 cells *)
let huge_net_design () =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:200.0 ~yh:30.0 in
  let b = Builder.create ~name:"huge" ~die ~row_height:10.0 ~site_width:1.0 () in
  let pins = ref [] in
  for k = 0 to 29 do
    let id =
      Builder.add_cell b ~name:(Printf.sprintf "h%d" k) ~master:"X" ~w:4.0 ~h:10.0
        ~kind:Types.Movable
    in
    let p1 = Builder.add_pin b ~cell:id ~dir:Types.Input ~dx:1.0 ~dy:2.0 () in
    let p2 = Builder.add_pin b ~cell:id ~dir:Types.Output ~dx:3.0 ~dy:8.0 () in
    pins := p2 :: p1 :: !pins;
    Builder.set_position b id
      ~x:(float_of_int (k mod 10) *. 19.0)
      ~y:(float_of_int (k / 10) *. 10.0)
  done;
  ignore (Builder.add_net b !pins);
  Builder.finish b

(* seeded designs incl. the degenerate corners: no nets, one cell, one
   net larger than a chunk *)
let designs () =
  [
    "random", Tutil.random_design 3;
    "dense", Tutil.random_design ~cells:40 ~nets:60 7;
    "no nets", Tutil.random_design ~nets:0 5;
    "one cell", Tutil.random_design ~cells:1 ~nets:1 11;
    "huge net", huge_net_design ();
  ]

(* ----- pool mechanics ----- *)

let test_pool_chunks_partition () =
  List.iter
    (fun n ->
      let lo_prev = ref 0 in
      for c = 0 to Pool.chunk_count - 1 do
        let lo, hi = Pool.chunk_bounds ~n c in
        Alcotest.(check int) (Printf.sprintf "n=%d chunk %d contiguous" n c) !lo_prev lo;
        Alcotest.(check bool) "ordered" true (lo <= hi);
        lo_prev := hi
      done;
      Alcotest.(check int) (Printf.sprintf "n=%d covered" n) n !lo_prev)
    [ 0; 1; 5; 16; 17; 100; 1000 ]

let test_pool_iter_chunks_visits_once () =
  List.iter
    (fun w ->
      Pool.with_pool ~nworkers:w @@ fun pool ->
      List.iter
        (fun n ->
          let seen = Array.make (max 1 n) 0 in
          let chunks = ref 0 in
          let m = Mutex.create () in
          Pool.iter_chunks pool ~n (fun ~worker:_ ~chunk:_ ~lo ~hi ->
              Mutex.lock m;
              incr chunks;
              Mutex.unlock m;
              for i = lo to hi - 1 do
                seen.(i) <- seen.(i) + 1
              done);
          Alcotest.(check int)
            (Printf.sprintf "w=%d n=%d all chunks visited" w n)
            Pool.chunk_count !chunks;
          if n > 0 then
            Alcotest.(check bool)
              (Printf.sprintf "w=%d n=%d each index once" w n)
              true
              (Array.for_all (fun c -> c = 1) seen))
        [ 0; 1; 7; 16; 250 ])
    worker_counts

let test_pool_run_each_worker () =
  List.iter
    (fun w ->
      Pool.with_pool ~nworkers:w @@ fun pool ->
      let hits = Array.make w 0 in
      Pool.run pool (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool)
        (Printf.sprintf "w=%d every worker ran once" w)
        true
        (Array.for_all (fun c -> c = 1) hits))
    worker_counts

exception Boom

let test_pool_propagates_exceptions () =
  List.iter
    (fun w ->
      Pool.with_pool ~nworkers:w @@ fun pool ->
      let raised =
        try
          Pool.run pool (fun i -> if i = w - 1 then raise Boom);
          false
        with Boom -> true
      in
      Alcotest.(check bool) (Printf.sprintf "w=%d exception surfaces" w) true raised;
      (* the pool must stay usable after a failed job *)
      let ok = ref 0 in
      let m = Mutex.create () in
      Pool.run pool (fun _ ->
          Mutex.lock m;
          incr ok;
          Mutex.unlock m);
      Alcotest.(check int) "pool survives" w !ok)
    worker_counts

(* ----- wirelength: bit-identical to the serial kernels ----- *)

let test_model_kernels_bit_exact () =
  List.iter
    (fun (dname, d) ->
      let pins = Pins.build d in
      let nc = Design.num_cells d in
      let cx, cy = Pins.centers_of_design d in
      let gamma = 2.0 in
      List.iter
        (fun kind ->
          let kname = Model.kind_to_string kind in
          let gx = Array.make nc 0.0 and gy = Array.make nc 0.0 in
          let v_serial = Model.value_grad kind pins ~gamma ~cx ~cy ~gx ~gy in
          let val_serial = Model.value kind pins ~gamma ~cx ~cy in
          List.iter
            (fun w ->
              Pool.with_pool ~nworkers:w @@ fun pool ->
              let pg = Par_grad.create pool pins in
              let gx' = Array.make nc 0.0 and gy' = Array.make nc 0.0 in
              let v = Par_grad.value_grad pg pool kind ~gamma ~cx ~cy ~gx:gx' ~gy:gy' in
              let tag fmt = Printf.sprintf "%s %s w=%d %s" dname kname w fmt in
              check_float (tag "value_grad value") v_serial v;
              check_float (tag "value") val_serial (Par_grad.value pg pool kind ~gamma ~cx ~cy);
              check_bits (tag "gx") gx gx';
              check_bits (tag "gy") gy gy')
            worker_counts)
        [ Model.Lse; Model.Wa ])
    (designs ())

(* ----- density: bit-stable across worker counts ----- *)

let test_bell_worker_count_independent () =
  List.iter
    (fun (dname, d) ->
      let nx, ny = Grid.default_dims d in
      let grid = Grid.build d ~nx ~ny in
      let bell = Bell.create d ~grid ~target_density:0.9 in
      let nc = Design.num_cells d in
      let cx, cy = Pins.centers_of_design d in
      let run w =
        Pool.with_pool ~nworkers:w @@ fun pool ->
        let bp = Bell.par_create bell in
        let gx = Array.make nc 0.0 and gy = Array.make nc 0.0 in
        let v = Bell.par_value_grad bp pool ~cx ~cy ~gx ~gy in
        let v_only = Bell.par_value bp pool ~cx ~cy in
        v, v_only, gx, gy
      in
      let v1, vo1, gx1, gy1 = run 1 in
      check_float (dname ^ " value = value_grad value") v1 vo1;
      List.iter
        (fun w ->
          let v, vo, gx, gy = run w in
          let tag fmt = Printf.sprintf "%s w=%d %s" dname w fmt in
          check_float (tag "penalty") v1 v;
          check_float (tag "value") vo1 vo;
          check_bits (tag "gx") gx1 gx;
          check_bits (tag "gy") gy1 gy)
        worker_counts;
      (* the chunk-merged field must still agree with the serial kernel
         numerically (different summation order, same math) *)
      let v_serial = Bell.value bell ~cx ~cy in
      Alcotest.(check bool)
        (dname ^ " close to serial")
        true
        (abs_float (v1 -. v_serial) <= 1e-9 *. (1.0 +. abs_float v_serial)))
    (designs ())

(* ----- RUDY: bit-stable across worker counts ----- *)

let test_rudy_worker_count_independent () =
  List.iter
    (fun (dname, d) ->
      let cx, cy = Pins.centers_of_design d in
      let r1 = Pool.with_pool ~nworkers:1 (fun pool -> Rudy.compute ~pool d ~cx ~cy) in
      List.iter
        (fun w ->
          let rw = Pool.with_pool ~nworkers:w (fun pool -> Rudy.compute ~pool d ~cx ~cy) in
          Alcotest.(check int) (dname ^ " nx") r1.Rudy.nx rw.Rudy.nx;
          Alcotest.(check int) (dname ^ " ny") r1.Rudy.ny rw.Rudy.ny;
          check_bits (Printf.sprintf "%s w=%d demand" dname w) r1.Rudy.demand rw.Rudy.demand)
        worker_counts;
      let serial = Rudy.compute d ~cx ~cy in
      Array.iteri
        (fun i v ->
          if not (abs_float (v -. serial.Rudy.demand.(i)) <= 1e-9 *. (1.0 +. abs_float v))
          then Alcotest.failf "%s demand[%d] far from serial" dname i)
        r1.Rudy.demand)
    (designs ())

(* ----- netbox: pooled build and audit bit-identical to serial ----- *)

let test_netbox_pooled_build_bit_exact () =
  List.iter
    (fun (dname, d) ->
      let pins = Pins.build d in
      let cx, cy = Pins.centers_of_design d in
      let nb = Netbox.build pins ~cx ~cy in
      List.iter
        (fun w ->
          Pool.with_pool ~nworkers:w @@ fun pool ->
          let nbp = Netbox.build ~pool pins ~cx ~cy in
          check_float (Printf.sprintf "%s w=%d total" dname w) (Netbox.total nb)
            (Netbox.total nbp);
          for n = 0 to Design.num_nets d - 1 do
            if Array.length (Design.net d n).Types.n_pins >= 2 then begin
              let a0, a1, a2, a3 = Netbox.net_box nb n in
              let b0, b1, b2, b3 = Netbox.net_box nbp n in
              check_float (Printf.sprintf "%s net %d xmin" dname n) a0 b0;
              check_float (Printf.sprintf "%s net %d xmax" dname n) a1 b1;
              check_float (Printf.sprintf "%s net %d ymin" dname n) a2 b2;
              check_float (Printf.sprintf "%s net %d ymax" dname n) a3 b3
            end
          done;
          Alcotest.(check int)
            (Printf.sprintf "%s w=%d pooled audit clean" dname w)
            0
            (List.length (Netbox.audit ~pool nbp)))
        worker_counts)
    (designs ())

(* ----- the batched gradient oracle ----- *)

let test_gradient_oracle_pooled () =
  let d = Tutil.random_design ~cells:30 ~nets:40 17 in
  let gamma = 2.0 in
  List.iter
    (fun kind ->
      let serial = Check.gradient ~seed:5 ~model:kind ~gamma d in
      Alcotest.(check int)
        (Model.kind_to_string kind ^ " serial oracle clean")
        0 (List.length serial);
      List.iter
        (fun w ->
          Pool.with_pool ~nworkers:w @@ fun pool ->
          Alcotest.(check int)
            (Printf.sprintf "%s w=%d pooled oracle clean" (Model.kind_to_string kind) w)
            0
            (List.length (Check.gradient ~pool ~seed:5 ~model:kind ~gamma d)))
        worker_counts)
    [ Model.Lse; Model.Wa ]

(* ----- end-to-end: same trajectory at -jobs 1 and -jobs 4 ----- *)

let e2e_cfg jobs =
  {
    Config.structure_aware with
    Config.gp_rounds = 4;
    gp_inner_iters = 15;
    detail_passes = 1;
    jobs;
  }

let test_flow_trajectory_jobs_independent () =
  let spec = Dpp_gen.Presets.scaled ~name:"par_e2e" ~seed:5 ~cells:220 ~dp_fraction:0.4 in
  let d = Dpp_gen.Compose.build spec in
  let r1 = Flow.run ~check:true d (e2e_cfg 1) in
  let r4 = Flow.run ~check:true d (e2e_cfg 4) in
  check_bits "final x" r1.Flow.design.Design.x r4.Flow.design.Design.x;
  check_bits "final y" r1.Flow.design.Design.y r4.Flow.design.Design.y;
  let gp_hpwl r =
    Array.of_list (List.map (fun (ri : Gp.round_info) -> ri.Gp.hpwl) r.Flow.trace)
  in
  check_bits "gp hpwl series" (gp_hpwl r1) (gp_hpwl r4);
  let stage_hpwl r =
    Array.of_list
      (List.map (fun (s : Trace.stage) -> s.Trace.hpwl_after) r.Flow.stage_trace)
  in
  check_bits "stage hpwl series" (stage_hpwl r1) (stage_hpwl r4);
  check_float "final hpwl" r1.Flow.hpwl_final r4.Flow.hpwl_final

(* ----- back-end stages: Legal + Detail + Flip, any worker count ----- *)

let test_backend_stages_worker_count_independent () =
  (* Flip mutates [orient] and the pin view, so each run gets a fresh
     design built from the same seed *)
  let run_backend w =
    let d = Tutil.random_design ~cells:60 ~nets:80 17 in
    let nc = Design.num_cells d in
    let cx = Array.init nc (fun i -> Design.cell_center_x d i) in
    let cy = Array.init nc (fun i -> Design.cell_center_y d i) in
    Pool.with_pool ~nworkers:w @@ fun pool ->
    let legal = Dpp_place.Legal.run d ~pool ~cx ~cy () in
    let h = Dpp_netlist.Hypergraph.build d in
    let nb = Netbox.build (Pins.build d) ~cx:legal.Dpp_place.Legal.cx ~cy:legal.Dpp_place.Legal.cy in
    ignore (Dpp_place.Detail.run d ~pool ~max_passes:2 ~netbox:nb ~hypergraph:h ~legal ());
    let stats =
      Dpp_place.Flip.run d ~pool ~netbox:nb ~cx:legal.Dpp_place.Legal.cx
        ~cy:legal.Dpp_place.Legal.cy ()
    in
    ( Array.copy legal.Dpp_place.Legal.assignment,
      Array.copy legal.Dpp_place.Legal.cx,
      Array.copy legal.Dpp_place.Legal.cy,
      Array.copy d.Design.orient,
      stats.Dpp_place.Flip.flipped )
  in
  let a1, x1, y1, o1, f1 = run_backend 1 in
  List.iter
    (fun w ->
      let tag s = Printf.sprintf "w=%d %s" w s in
      let aw, xw, yw, ow, fw = run_backend w in
      Alcotest.(check bool) (tag "assignment") true (a1 = aw);
      check_bits (tag "cx") x1 xw;
      check_bits (tag "cy") y1 yw;
      Alcotest.(check bool) (tag "orient") true (o1 = ow);
      Alcotest.(check (list int)) (tag "flipped set") f1 fw)
    [ 2; 3; 8 ]

let suite =
  [
    Alcotest.test_case "chunk bounds partition" `Quick test_pool_chunks_partition;
    Alcotest.test_case "iter_chunks visits each index once" `Quick
      test_pool_iter_chunks_visits_once;
    Alcotest.test_case "run reaches every worker" `Quick test_pool_run_each_worker;
    Alcotest.test_case "worker exceptions propagate" `Quick test_pool_propagates_exceptions;
    Alcotest.test_case "WA/LSE kernels bit-exact vs serial" `Quick
      test_model_kernels_bit_exact;
    Alcotest.test_case "bell kernels worker-count independent" `Quick
      test_bell_worker_count_independent;
    Alcotest.test_case "RUDY worker-count independent" `Quick
      test_rudy_worker_count_independent;
    Alcotest.test_case "netbox pooled build bit-exact" `Quick
      test_netbox_pooled_build_bit_exact;
    Alcotest.test_case "gradient oracle clean under pools" `Quick test_gradient_oracle_pooled;
    Alcotest.test_case "backend stages worker-count independent" `Quick
      test_backend_stages_worker_count_independent;
    Alcotest.test_case "flow trajectory independent of -jobs" `Slow
      test_flow_trajectory_jobs_independent;
  ]
