(* Test driver: one Alcotest run over every library's suite. *)

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Error);
  Alcotest.run "dpp"
    [
      "util", Test_util.suite;
      "arena", Test_arena.suite;
      "geom", Test_geom.suite;
      "netlist", Test_netlist.suite;
      "bookshelf", Test_bookshelf.suite;
      "numeric", Test_numeric.suite;
      "wirelen", Test_wirelen.suite;
      "netbox", Test_netbox.suite;
      "steiner", Test_steiner.suite;
      "density", Test_density.suite;
      "gen", Test_gen.suite;
      "extract", Test_extract.suite;
      "structure", Test_structure.suite;
      "place", Test_place.suite;
      "coarsen", Test_coarsen.suite;
      "flow", Test_flow.suite;
      "eco", Test_eco.suite;
      "serve", Test_serve.suite;
      "check", Test_check.suite;
      "fuzz", Test_fuzz.suite;
      "soa", Test_soa.suite;
      "par", Test_par.suite;
      "report", Test_report.suite;
      "congest", Test_congest.suite;
      "routability", Test_routability.suite;
      "timing", Test_timing.suite;
      "viz", Test_viz.suite;
      "macros", Test_macros.suite;
      "experiment", Test_experiment.suite;
      "properties", Test_properties.suite;
      "corners", Test_corners.suite;
    ]
