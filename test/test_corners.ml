(* Corner-case tests for spots the main suites exercise only indirectly. *)

module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Builder = Dpp_netlist.Builder
module Design = Dpp_netlist.Design
module Kit = Dpp_gen.Kit
module Stdcells = Dpp_gen.Stdcells

let check_float = Alcotest.(check (float 1e-9))

(* ---------------- Kit ---------------- *)

let test_kit_naming () =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:100.0 ~yh:100.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let kit = Kit.create b ~prefix:"blk" in
  Alcotest.(check string) "first" "blk/x_0" (Kit.fresh_name kit "x");
  Alcotest.(check string) "second" "blk/x_1" (Kit.fresh_name kit "x");
  Alcotest.(check string) "separate stem" "blk/y_0" (Kit.fresh_name kit "y")

let test_kit_cell_pins () =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:100.0 ~yh:100.0 in
  let b = Builder.create ~die ~row_height:Stdcells.row_height ~site_width:1.0 () in
  let kit = Kit.create b ~prefix:"t" in
  let inst = Kit.cell kit Stdcells.fa in
  Alcotest.(check int) "fa inputs" 3 (Array.length inst.Kit.ins);
  Alcotest.(check int) "fa outputs" 2 (Array.length inst.Kit.outs);
  let d = Builder.finish b in
  (* pin directions recorded *)
  Array.iter
    (fun p ->
      Alcotest.(check bool) "input dir" true ((Design.pin d p).Types.p_dir = Types.Input))
    inst.Kit.ins;
  Array.iter
    (fun p ->
      Alcotest.(check bool) "output dir" true ((Design.pin d p).Types.p_dir = Types.Output))
    inst.Kit.outs

(* ---------------- Csvout / Series formatting ---------------- *)

let test_float_cell () =
  Alcotest.(check string) "compact" "1.5" (Dpp_util.Csvout.float_cell 1.5);
  Alcotest.(check string) "large" "1.23457e+08" (Dpp_util.Csvout.float_cell 123456789.0)

(* ---------------- Delay ---------------- *)

let test_delay_override () =
  let d = Dpp_timing.Delay.with_wire_delay 0.25 Dpp_timing.Delay.default in
  check_float "wire delay set" 0.25 d.Dpp_timing.Delay.wire_delay_per_unit;
  check_float "gate table untouched" 1.0 (d.Dpp_timing.Delay.gate_delay "INV")

(* ---------------- Dgroup ordering behaviour ---------------- *)

let test_chain_ordering_places_connected_stages_adjacent () =
  (* a 6-slice, 3-stage group whose stage connectivity is 0-2 and 2-1:
     the dataflow order is 0,2,1 so stage 2 must sit between 0 and 1 *)
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:300.0 ~yh:100.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let mk name =
    let id = Builder.add_cell b ~name ~master:"X" ~w:4.0 ~h:10.0 ~kind:Types.Movable in
    let i = Builder.add_pin b ~cell:id ~dir:Types.Input ~dx:1.0 ~dy:5.0 () in
    let o = Builder.add_pin b ~cell:id ~dir:Types.Output ~dx:3.0 ~dy:5.0 () in
    id, i, o
  in
  let rows =
    Array.init 6 (fun s ->
        let c0, _, o0 = mk (Printf.sprintf "a%d" s) in
        let c1, i1, _ = mk (Printf.sprintf "b%d" s) in
        let c2, i2, o2 = mk (Printf.sprintf "c%d" s) in
        (* connectivity: a -> c -> b *)
        ignore (Builder.add_net b [ o0; i2 ]);
        ignore (Builder.add_net b [ o2; i1 ]);
        [| c0; c1; c2 |])
  in
  Builder.add_group b (Dpp_netlist.Groups.make "g" rows);
  let d = Builder.finish b in
  let cx, cy = Dpp_wirelen.Pins.centers_of_design d in
  match Dpp_structure.Dgroup.build_all_ordered d d.Design.groups ~cx ~cy with
  | [ dg ] ->
    (* in the idealized array, |x(a) - x(c)| and |x(c) - x(b)| must both be
       smaller than |x(a) - x(b)| (stage c between a and b) *)
    let off_of cell =
      let rec find k = if dg.Dpp_structure.Dgroup.cells.(k) = cell then k else find (k + 1) in
      dg.Dpp_structure.Dgroup.off_x.(find 0)
    in
    let xa = off_of rows.(0).(0) and xb = off_of rows.(0).(1) and xc = off_of rows.(0).(2) in
    Alcotest.(check bool) "c between a and b" true
      (abs_float (xa -. xc) < abs_float (xa -. xb) && abs_float (xc -. xb) < abs_float (xa -. xb))
  | _ -> Alcotest.fail "expected one group"

(* ---------------- Netclass boundary ---------------- *)

let test_netclass_threshold_boundary () =
  (* a net with exactly max_data_degree movable cells is Data; one more is
     Control *)
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:200.0 ~yh:100.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let mk name =
    let id = Builder.add_cell b ~name ~master:"X" ~w:2.0 ~h:10.0 ~kind:Types.Movable in
    Builder.add_pin b ~cell:id ~dir:Types.Input ()
  in
  let pins5 = List.init 5 (fun k -> mk (Printf.sprintf "a%d" k)) in
  let pins6 = List.init 6 (fun k -> mk (Printf.sprintf "b%d" k)) in
  ignore (Builder.add_net b pins5);
  ignore (Builder.add_net b pins6);
  let d = Builder.finish b in
  let h = Dpp_netlist.Hypergraph.build d in
  let nc = Dpp_extract.Netclass.classify d h ~max_data_degree:5 in
  Alcotest.(check bool) "5 cells = data" true (Dpp_extract.Netclass.kind nc 0 = Dpp_extract.Netclass.Data);
  Alcotest.(check bool) "6 cells = control" true
    (Dpp_extract.Netclass.kind nc 1 = Dpp_extract.Netclass.Control)

(* ---------------- Nstats row integrity ---------------- *)

let test_nstats_csv_row () =
  let d = Dpp_gen.Compose.build (List.nth Dpp_gen.Presets.suite 4) in
  let s = Dpp_netlist.Nstats.compute d in
  let row = Dpp_netlist.Nstats.to_row s in
  Alcotest.(check int) "row arity" (List.length Dpp_netlist.Nstats.header) (List.length row);
  (* numeric columns parse *)
  List.iteri
    (fun i cell -> if i > 0 && float_of_string_opt cell = None then
        Alcotest.failf "column %d not numeric: %s" i cell)
    row

(* ---------------- Flip on symmetric-pin cells ---------------- *)

let test_flip_noop_on_symmetric_pins () =
  (* a cell whose single pin sits exactly at its center gains nothing from
     flipping: the pass must leave it at N *)
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:60.0 ~yh:20.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let c0 = Builder.add_cell b ~name:"sym" ~master:"X" ~w:4.0 ~h:10.0 ~kind:Types.Movable in
  let p0 = Builder.add_pin b ~cell:c0 ~dir:Types.Output ~dx:2.0 ~dy:5.0 () in
  let c1 = Builder.add_cell b ~name:"o" ~master:"X" ~w:4.0 ~h:10.0 ~kind:Types.Movable in
  let p1 = Builder.add_pin b ~cell:c1 ~dir:Types.Input ~dx:2.0 ~dy:5.0 () in
  ignore (Builder.add_net b [ p0; p1 ]);
  Builder.set_position b c0 ~x:0.0 ~y:0.0;
  Builder.set_position b c1 ~x:40.0 ~y:0.0;
  let d = Builder.finish b in
  let cx, cy = Dpp_wirelen.Pins.centers_of_design d in
  let stats = Dpp_place.Flip.run d ~cx ~cy () in
  Alcotest.(check int) "no flips" 0 stats.Dpp_place.Flip.flips;
  Alcotest.(check bool) "orientation unchanged" true
    (d.Design.orient.(c0) = Dpp_geom.Orient.N)

let suite =
  [
    Alcotest.test_case "kit naming" `Quick test_kit_naming;
    Alcotest.test_case "kit cell pins" `Quick test_kit_cell_pins;
    Alcotest.test_case "csv float cell" `Quick test_float_cell;
    Alcotest.test_case "delay override" `Quick test_delay_override;
    Alcotest.test_case "chain ordering adjacency" `Quick test_chain_ordering_places_connected_stages_adjacent;
    Alcotest.test_case "netclass boundary" `Quick test_netclass_threshold_boundary;
    Alcotest.test_case "nstats csv row" `Quick test_nstats_csv_row;
    Alcotest.test_case "flip symmetric noop" `Quick test_flip_noop_on_symmetric_pins;
  ]
