(* Tests for Dpp_report: table rendering and series output. *)

module Table = Dpp_report.Table
module Series = Dpp_report.Series

let test_table_render () =
  let out =
    Table.render ~title:"T" ~header:[ "name"; "v" ] [ [ "a"; "1.5" ]; [ "bb"; "20" ] ]
  in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "title + header + sep + 2 rows" 5 (List.length lines);
  Alcotest.(check string) "title first" "T" (List.hd lines);
  (* numeric right-alignment: "1.5" occupies width 3 right-aligned under "v" *)
  Alcotest.(check bool) "columns aligned" true
    (String.length (List.nth lines 3) = String.length (List.nth lines 4))

let test_table_short_rows_padded () =
  let out = Table.render ~title:"T" ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  Alcotest.(check bool) "renders without exception" true (String.length out > 0)

let test_geomean_row () =
  let rows = [ [ "a"; "2.0"; "x" ]; [ "b"; "8.0"; "y" ] ] in
  match Table.geomean_row ~label:"gm" rows with
  | [ l; v; nv ] ->
    Alcotest.(check string) "label" "gm" l;
    Alcotest.(check string) "geomean" "4" v;
    Alcotest.(check string) "non-numeric column dashed" "-" nv
  | _ -> Alcotest.fail "wrong arity"

let test_geomean_row_empty () =
  Alcotest.(check (list string)) "empty rows" [ "gm" ] (Table.geomean_row ~label:"gm" [])

let test_series_make_checks_arity () =
  Alcotest.(check bool) "arity mismatch rejected" true
    (try
       ignore
         (Series.make ~title:"f" ~x_label:"x" ~y_labels:[ "a"; "b" ] [ (1.0, [ 2.0 ]) ]);
       false
     with Invalid_argument _ -> true)

let test_series_csv () =
  let s =
    Series.make ~title:"f" ~x_label:"x" ~y_labels:[ "y" ] [ (1.0, [ 2.0 ]); (3.0, [ 4.0 ]) ]
  in
  let path = Filename.temp_file "dpp_series" ".csv" in
  Series.to_csv s ~path;
  let ic = open_in path in
  let header = input_line ic in
  let row = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "x,y" header;
  Alcotest.(check string) "row" "1,2" row

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Series.sparkline []);
  let s = Series.sparkline [ 0.0; 0.5; 1.0 ] in
  Alcotest.(check bool) "three glyphs" true (String.length s > 0);
  (* constant series does not crash (zero range) *)
  Alcotest.(check bool) "constant ok" true (String.length (Series.sparkline [ 2.0; 2.0 ]) > 0)

(* ----- the minimal JSON reader used by the trace schema tests ----- *)

module Json = Dpp_report.Json

let test_json_values () =
  let p = Json.parse in
  Alcotest.(check bool) "null" true (p "null" = Json.Null);
  Alcotest.(check bool) "bools" true (p "true" = Json.Bool true && p "false" = Json.Bool false);
  Alcotest.(check (float 1e-12)) "number" (-12.5e2) (Json.to_float (p "-12.5e2"));
  Alcotest.(check string) "string escapes" "a\"b\n\t\\" (Json.to_string (p {|"a\"b\n\t\\"|}));
  Alcotest.(check int) "array" 3 (List.length (Json.to_list (p "[1, 2, 3]")));
  Alcotest.(check bool) "empty array" true (Json.to_list (p "[]") = []);
  Alcotest.(check bool) "empty object" true (p "{}" = Json.Obj [])

let test_json_nested () =
  let v = Json.parse {|{"a": [1, {"b": true}], "c": null}|} in
  (match Json.member "a" v with
  | Some (Json.Arr [ Json.Num n; inner ]) ->
    Alcotest.(check (float 0.0)) "first element" 1.0 n;
    Alcotest.(check bool) "nested member" true
      (Json.member "b" inner = Some (Json.Bool true))
  | _ -> Alcotest.fail "array member lost");
  Alcotest.(check bool) "null member present" true (Json.member "c" v = Some Json.Null);
  Alcotest.(check bool) "missing member" true (Json.member "zzz" v = None)

let test_json_errors () =
  let rejects s =
    try
      ignore (Json.parse s);
      false
    with Json.Parse_error _ -> true
  in
  Alcotest.(check bool) "unterminated string" true (rejects {|"abc|});
  Alcotest.(check bool) "trailing garbage" true (rejects "1 2");
  Alcotest.(check bool) "bare word" true (rejects "nope");
  Alcotest.(check bool) "unclosed array" true (rejects "[1, 2");
  Alcotest.(check bool) "empty input" true (rejects "")

(* Regression: the stage parser must carry unknown fields through a
   round-trip instead of dropping them (an earlier reader rejected any
   schema extension outright).  The serve layer's event stream relies on
   this to tag stage payloads with job-level extras. *)
let test_trace_unknown_field_roundtrip () =
  let module Trace = Dpp_report.Trace in
  let src =
    {|{"name":"gp","wall_s":1.5,"t_s":2.0,"hpwl_before":100,"hpwl_after":90,
       "overflow":0.25,"levels":[],"check":null,
       "eco":{"fallback":false},"job":7,"new_metric":[1,2]}|}
  in
  let s = Trace.stage_of_json (Json.parse src) in
  Alcotest.(check string) "known field parsed" "gp" s.Trace.name;
  Alcotest.(check int) "unknown fields collected" 3 (List.length s.Trace.extra);
  Alcotest.(check bool) "unknown field value intact" true
    (List.assoc_opt "job" s.Trace.extra = Some (Json.Num 7.0));
  (* re-encode and re-parse: the extras must survive unchanged *)
  let s' = Trace.stage_of_json (Json.parse (Json.encode (Trace.stage_to_json s))) in
  Alcotest.(check bool) "extras survive re-encode" true (s'.Trace.extra = s.Trace.extra);
  Alcotest.(check bool) "stage equal after roundtrip" true (s' = s)

let suite =
  [
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table short rows" `Quick test_table_short_rows_padded;
    Alcotest.test_case "geomean row" `Quick test_geomean_row;
    Alcotest.test_case "geomean empty" `Quick test_geomean_row_empty;
    Alcotest.test_case "series arity" `Quick test_series_make_checks_arity;
    Alcotest.test_case "series csv" `Quick test_series_csv;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
    Alcotest.test_case "json values" `Quick test_json_values;
    Alcotest.test_case "json nested" `Quick test_json_nested;
    Alcotest.test_case "json errors" `Quick test_json_errors;
    Alcotest.test_case "trace unknown-field roundtrip" `Quick test_trace_unknown_field_roundtrip;
  ]
