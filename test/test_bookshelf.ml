(* Bookshelf round-trip tests: a generated design written and re-read must
   preserve all structure. *)

module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Groups = Dpp_netlist.Groups
module Bookshelf = Dpp_netlist.Bookshelf
module Validate = Dpp_netlist.Validate

let small_spec =
  {
    Dpp_gen.Compose.sp_name = "bs_test";
    sp_seed = 9;
    sp_blocks = [ Dpp_gen.Compose.Adder 8; Regbank 8 ];
    sp_random_cells = 120;
    sp_utilization = 0.7;
  }

let roundtrip d =
  let dir = Filename.temp_file "dpp_bs" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let base = Filename.concat dir "t" in
  Bookshelf.write d ~basename:base;
  let d' = Bookshelf.read ~basename:base in
  (* clean up *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir;
  d'

let test_roundtrip_counts () =
  let d = Dpp_gen.Compose.build small_spec in
  let d' = roundtrip d in
  Alcotest.(check int) "cells" (Design.num_cells d) (Design.num_cells d');
  Alcotest.(check int) "nets" (Design.num_nets d) (Design.num_nets d');
  Alcotest.(check int) "pins" (Design.num_pins d) (Design.num_pins d');
  Alcotest.(check int) "rows" d.Design.num_rows d'.Design.num_rows;
  Alcotest.(check int) "groups" (List.length d.Design.groups) (List.length d'.Design.groups)

let test_roundtrip_cells () =
  let d = Dpp_gen.Compose.build small_spec in
  let d' = roundtrip d in
  for i = 0 to Design.num_cells d - 1 do
    let c = Design.cell d i in
    (* names may be reordered only if ids changed; bookshelf preserves order *)
    let c' = Design.cell d' i in
    if c.Types.c_name <> c'.Types.c_name then
      Alcotest.failf "cell %d name %s <> %s" i c.Types.c_name c'.Types.c_name;
    if abs_float (c.Types.c_width -. c'.Types.c_width) > 1e-3 then
      Alcotest.failf "cell %d width differs" i;
    if c.Types.c_master <> c'.Types.c_master then Alcotest.failf "cell %d master differs" i;
    if Types.is_fixed_kind c.Types.c_kind <> Types.is_fixed_kind c'.Types.c_kind then
      Alcotest.failf "cell %d fixedness differs" i
  done

let test_roundtrip_positions () =
  let d = Dpp_gen.Compose.build small_spec in
  (* give the movables distinctive positions first *)
  Array.iteri
    (fun k i -> Design.set_center d i (10.0 +. float_of_int k) 15.0)
    (Design.movable_ids d);
  let d' = roundtrip d in
  for i = 0 to Design.num_cells d - 1 do
    if abs_float (d.Design.x.(i) -. d'.Design.x.(i)) > 1e-3 then
      Alcotest.failf "cell %d x differs: %f vs %f" i d.Design.x.(i) d'.Design.x.(i)
  done

let test_roundtrip_net_structure () =
  let d = Dpp_gen.Compose.build small_spec in
  let d' = roundtrip d in
  (* per net: the multiset of (cell name, pin offset) must match *)
  let key dd n =
    Array.to_list (Design.net dd n).Types.n_pins
    |> List.map (fun p ->
           let pin = Design.pin dd p in
           let c = Design.cell dd pin.Types.p_cell in
           ( c.Types.c_name,
             Float.round (pin.Types.p_dx *. 100.0),
             Float.round (pin.Types.p_dy *. 100.0) ))
    |> List.sort compare
  in
  for n = 0 to Design.num_nets d - 1 do
    if key d n <> key d' n then Alcotest.failf "net %d pin set differs" n
  done

let test_roundtrip_groups () =
  let d = Dpp_gen.Compose.build small_spec in
  let d' = roundtrip d in
  List.iter2
    (fun g g' ->
      Alcotest.(check string) "group name" g.Groups.g_name g'.Groups.g_name;
      Alcotest.(check int) "slices" (Groups.num_slices g) (Groups.num_slices g');
      Alcotest.(check int) "stages" (Groups.num_stages g) (Groups.num_stages g');
      if Groups.jaccard g g' < 1.0 then Alcotest.fail "group membership differs")
    d.Design.groups d'.Design.groups

let test_roundtrip_validates () =
  let d = Dpp_gen.Compose.build small_spec in
  let d' = roundtrip d in
  Alcotest.(check bool) "round-tripped design validates" true
    (Validate.is_clean (Validate.check d'))

(* ----- property tests over generated designs (oracle-driven) -----

   The same comparison the flow's check mode uses: write, re-read, and let
   Dpp_check.bookshelf_roundtrip report any structural difference.  Specs
   include movable macros (Ram blocks) and mixed regular structure. *)

let test_roundtrip_property () =
  List.iter
    (fun seed ->
      let d =
        Dpp_gen.Compose.build
          {
            Dpp_gen.Compose.sp_name = Printf.sprintf "bs_prop%d" seed;
            sp_seed = seed;
            sp_blocks = [ Dpp_gen.Compose.Ram (24, 4, 8); Adder 8; Regbank 8 ];
            sp_random_cells = 100 + (seed * 13 mod 60);
            sp_utilization = 0.6;
          }
      in
      match Dpp_check.bookshelf_roundtrip d with
      | [] -> ()
      | vs ->
        Alcotest.failf "seed %d: %s" seed
          (String.concat "; " (Dpp_check.Violation.strings vs)))
    [ 3; 5; 7 ]

(* Degenerate corners the writer and reader must both survive: fixed
   blockers, single-pin nets, coincident pin offsets.  (Unconnected pins
   are not representable in Bookshelf; the oracle excludes them.) *)
let test_roundtrip_adversarial () =
  let single_pin = ref false in
  List.iter
    (fun seed ->
      let d = Dpp_core.Fuzz.random_design ~seed ~cells:60 ~nets:20 in
      if Array.exists (fun (n : Types.net) -> Array.length n.Types.n_pins = 1) d.Design.nets
      then single_pin := true;
      match Dpp_check.bookshelf_roundtrip d with
      | [] -> ()
      | vs ->
        Alcotest.failf "seed %d: %s" seed
          (String.concat "; " (Dpp_check.Violation.strings vs)))
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "the sweep covered a single-pin net" true !single_pin

let test_missing_file () =
  Alcotest.(check bool) "missing aux raises" true
    (try
       ignore (Bookshelf.read ~basename:"/nonexistent/foo");
       false
     with Sys_error _ | Bookshelf.Parse_error _ -> true)

let test_malformed () =
  let path = Filename.temp_file "dpp_badaux" ".aux" in
  let oc = open_out path in
  output_string oc "complete nonsense\n";
  close_out oc;
  let base = Filename.chop_suffix path ".aux" in
  let result =
    try
      ignore (Bookshelf.read ~basename:base);
      false
    with Bookshelf.Parse_error _ -> true
  in
  Sys.remove path;
  Alcotest.(check bool) "malformed aux raises Parse_error" true result

let suite =
  [
    Alcotest.test_case "roundtrip counts" `Quick test_roundtrip_counts;
    Alcotest.test_case "roundtrip cells" `Quick test_roundtrip_cells;
    Alcotest.test_case "roundtrip positions" `Quick test_roundtrip_positions;
    Alcotest.test_case "roundtrip nets" `Quick test_roundtrip_net_structure;
    Alcotest.test_case "roundtrip groups" `Quick test_roundtrip_groups;
    Alcotest.test_case "roundtrip validates" `Quick test_roundtrip_validates;
    Alcotest.test_case "roundtrip property (macros)" `Quick test_roundtrip_property;
    Alcotest.test_case "roundtrip adversarial corners" `Quick test_roundtrip_adversarial;
    Alcotest.test_case "missing file" `Quick test_missing_file;
    Alcotest.test_case "malformed aux" `Quick test_malformed;
  ]
