(* End-to-end tests of the congestion-driven (routability) placement loop
   on the rt_channel stress preset: steering must buy a real congestion
   reduction at a bounded wirelength cost, the whole steered trajectory
   must be bit-identical at every worker count, and the inflation ledger
   must respect its budget. *)

module Config = Dpp_core.Config
module Flow = Dpp_core.Flow
module Gp = Dpp_place.Gp
module Qp = Dpp_place.Qp
module Rudy = Dpp_congest.Rudy
module Design = Dpp_netlist.Design
module Bell = Dpp_density.Bell
module Grid = Dpp_density.Grid
module Pins = Dpp_wirelen.Pins
module Check = Dpp_check

let channel = Dpp_gen.Channel.build ()

let flow ?(jobs = 1) ~routability () =
  let cfg =
    {
      Config.baseline with
      Config.multilevel = Config.Ml_off;
      jobs;
      routability;
    }
  in
  Flow.run ~check:true channel cfg

let test_congestion_improves () =
  let off = flow ~routability:false () in
  let on = flow ~routability:true () in
  let ace r = r.Flow.congestion.Rudy.ace_ratio in
  Alcotest.(check bool) "steering happened" true (on.Flow.rt_trace <> []);
  Alcotest.(check bool) "blind run keeps an empty ledger" true (off.Flow.rt_trace = []);
  (* the bench gate: >= 20% ACE reduction at <= 2% HPWL cost *)
  if not (ace on <= 0.8 *. ace off) then
    Alcotest.failf "ACE %.3f not 20%% under blind %.3f" (ace on) (ace off);
  if not (on.Flow.hpwl_final <= 1.02 *. off.Flow.hpwl_final) then
    Alcotest.failf "HPWL %.0f above 102%% of blind %.0f" on.Flow.hpwl_final
      off.Flow.hpwl_final

let test_jobs_determinism () =
  (* the full steered trajectory — coordinates and the rt ledger — must
     not depend on the worker count *)
  let r1 = flow ~jobs:1 ~routability:true () in
  let r4 = flow ~jobs:4 ~routability:true () in
  let coords r = r.Flow.design.Design.x, r.Flow.design.Design.y in
  let x1, y1 = coords r1 and x4, y4 = coords r4 in
  Array.iteri
    (fun i v ->
      if not (Float.equal v x4.(i) && Float.equal y1.(i) y4.(i)) then
        Alcotest.failf "cell %d placement depends on the worker count" i)
    x1;
  Alcotest.(check int) "ledger length" (List.length r1.Flow.rt_trace)
    (List.length r4.Flow.rt_trace);
  List.iter2
    (fun (a : Gp.rt_round) (b : Gp.rt_round) ->
      if
        not
          (a.Gp.rt_round = b.Gp.rt_round
          && Float.equal a.Gp.rt_max b.Gp.rt_max
          && Float.equal a.Gp.rt_ace b.Gp.rt_ace
          && Float.equal a.Gp.rt_overflowed b.Gp.rt_overflowed
          && Float.equal a.Gp.rt_best b.Gp.rt_best
          && a.Gp.rt_inflated = b.Gp.rt_inflated
          && Float.equal a.Gp.rt_virtual b.Gp.rt_virtual
          && Float.equal a.Gp.rt_budget b.Gp.rt_budget)
      then Alcotest.failf "rt ledger round %d depends on the worker count" a.Gp.rt_round)
    r1.Flow.rt_trace r4.Flow.rt_trace;
  match Check.rt_ledger r1.Flow.rt_trace with
  | [] -> ()
  | v :: _ -> Alcotest.failf "ledger oracle: %s" (Check.Violation.to_string v)

let gp_cfg =
  {
    Gp.default_config with
    Gp.rounds = 12;
    inner_iters = 30;
    routability = true;
    rt_interval = 2;
  }

let test_inflation_budget_clamped () =
  (* an absurdly low overflow threshold marks most bins congested, so the
     raw inflation demand far exceeds the budget; the uniform scale-back
     must keep every ledger entry at or under it *)
  let d = channel in
  let qp = Qp.run ~seed:1 d in
  let cfg = { gp_cfg with Gp.rt_overflow = 0.2; rt_max_inflate = 0.02 } in
  let r = Gp.run d cfg ~cx:qp.Qp.cx ~cy:qp.Qp.cy in
  Alcotest.(check bool) "ledger non-empty" true (r.Gp.rt_trace <> []);
  let saw_inflation = ref false in
  List.iter
    (fun (e : Gp.rt_round) ->
      if e.Gp.rt_inflated > 0 then saw_inflation := true;
      if e.Gp.rt_virtual > e.Gp.rt_budget +. 1e-6 then
        Alcotest.failf "round %d: virtual area %.1f above budget %.1f" e.Gp.rt_round
          e.Gp.rt_virtual e.Gp.rt_budget)
    r.Gp.rt_trace;
  Alcotest.(check bool) "inflation actually triggered" true !saw_inflation;
  (match List.rev r.Gp.rt_trace with
  | last :: _ ->
    Alcotest.(check int) "ledger closed: no inflated cells" 0 last.Gp.rt_inflated;
    Alcotest.(check (float 0.0)) "ledger closed: no virtual area" 0.0 last.Gp.rt_virtual
  | [] -> ());
  match Check.rt_ledger r.Gp.rt_trace with
  | [] -> ()
  | v :: _ -> Alcotest.failf "ledger oracle: %s" (Check.Violation.to_string v)

let test_bell_inflation_roundtrip () =
  let d = channel in
  let nx, ny = Grid.default_dims d in
  let grid = Grid.build d ~nx ~ny in
  let bell = Bell.create d ~grid ~target_density:0.9 in
  let cx, cy = Pins.centers_of_design d in
  let v0 = Bell.value bell ~cx ~cy in
  let factors = Array.init (Design.num_cells d) (fun i -> 1.0 +. (0.003 *. float_of_int i)) in
  Bell.set_inflation bell factors;
  let v_inflated = Bell.value bell ~cx ~cy in
  Alcotest.(check bool) "inflation changes the potential" true
    (not (Float.equal v0 v_inflated));
  Bell.reset_inflation bell;
  let v1 = Bell.value bell ~cx ~cy in
  if not (Float.equal v0 v1) then
    Alcotest.failf "reset_inflation not bit-exact: %.17g vs %.17g" v1 v0;
  Bell.set_inflation bell (Array.make (Design.num_cells d) 1.0);
  let v2 = Bell.value bell ~cx ~cy in
  if not (Float.equal v0 v2) then
    Alcotest.failf "all-ones inflation not bit-exact: %.17g vs %.17g" v2 v0

let test_rt_disabled_is_clean () =
  (* with routability off the rt machinery must be completely inert:
     empty ledger, and the ledger oracle accepts the empty list *)
  let d = channel in
  let qp = Qp.run ~seed:1 d in
  let r = Gp.run d { gp_cfg with Gp.routability = false } ~cx:qp.Qp.cx ~cy:qp.Qp.cy in
  Alcotest.(check bool) "no ledger" true (r.Gp.rt_trace = []);
  Alcotest.(check int) "oracle accepts empty ledger" 0
    (List.length (Check.rt_ledger r.Gp.rt_trace))

let suite =
  [
    Alcotest.test_case "congestion improves at bounded hpwl" `Slow test_congestion_improves;
    Alcotest.test_case "steered trajectory jobs-independent" `Slow test_jobs_determinism;
    Alcotest.test_case "inflation budget clamped" `Quick test_inflation_budget_clamped;
    Alcotest.test_case "bell inflation round-trip" `Quick test_bell_inflation_roundtrip;
    Alcotest.test_case "routability off is inert" `Quick test_rt_disabled_is_clean;
  ]
