(* Property tests for Dpp_wirelen.Netbox: the incremental total must equal
   a full Hpwl.total recompute after arbitrary move / flip / commit /
   rollback sequences, including degenerate nets. *)

module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Builder = Dpp_netlist.Builder
module Design = Dpp_netlist.Design
module Pins = Dpp_wirelen.Pins
module Hpwl = Dpp_wirelen.Hpwl
module Netbox = Dpp_wirelen.Netbox
module Rng = Dpp_util.Rng

let agree ~msg pins nb ~cx ~cy =
  let exact = Hpwl.total pins ~cx ~cy in
  let incremental = Netbox.total nb in
  if abs_float (exact -. incremental) > 1e-6 *. (1.0 +. abs_float exact) then
    Alcotest.failf "%s: incremental %.9f <> recompute %.9f" msg incremental exact

(* Random move/flip/commit/rollback exercise; every committed or rolled
   back state is compared against the full recompute, and every commit's
   delta is checked against the recomputed before/after difference. *)
let exercise (d : Design.t) ~seed ~ops =
  let rng = Rng.create seed in
  let pins = Pins.build d in
  let cx, cy = Pins.centers_of_design d in
  let nb = Netbox.build pins ~cx ~cy in
  agree ~msg:"initial" pins nb ~cx ~cy;
  let movable = Design.movable_ids d in
  let nm = Array.length movable in
  let die = d.Design.die in
  let random_cell () = movable.(Rng.int rng nm) in
  let random_x () = die.Rect.xl +. Rng.float rng (Rect.width die) in
  let random_y () = die.Rect.yl +. Rng.float rng (Rect.height die) in
  for op = 1 to ops do
    let msg = Printf.sprintf "op %d (seed %d)" op seed in
    match Rng.int rng 6 with
    | 0 | 1 ->
      (* stage 1-3 cell moves, check the delta, commit *)
      let before = Hpwl.total pins ~cx ~cy in
      for _ = 0 to Rng.int rng 3 do
        Netbox.move_cell nb (random_cell ()) (random_x ()) (random_y ())
      done;
      let delta = Netbox.delta nb in
      Netbox.commit nb;
      let after = Hpwl.total pins ~cx ~cy in
      if abs_float (before +. delta -. after) > 1e-6 *. (1.0 +. abs_float after) then
        Alcotest.failf "%s: delta %.9f but totals moved %.9f" msg delta (after -. before);
      agree ~msg pins nb ~cx ~cy
    | 2 ->
      (* moves (possibly re-moving the same cell) rolled back: the live
         coordinates and the committed total must be untouched *)
      let i = random_cell () in
      let ox = cx.(i) and oy = cy.(i) in
      Netbox.move_cell nb i (random_x ()) (random_y ());
      Netbox.move_cell nb i (random_x ()) (random_y ());
      Netbox.move_cell nb (random_cell ()) (random_x ()) (random_y ());
      ignore (Netbox.delta nb);
      Netbox.rollback nb;
      Alcotest.(check (float 0.0)) (msg ^ " x restored") ox cx.(i);
      Alcotest.(check (float 0.0)) (msg ^ " y restored") oy cy.(i);
      agree ~msg pins nb ~cx ~cy
    | 3 ->
      let i = random_cell () in
      Netbox.flip_cell nb i;
      let delta = Netbox.delta nb in
      let before = Netbox.total nb in
      Netbox.commit nb;
      agree ~msg:(msg ^ " flip commit") pins nb ~cx ~cy;
      Alcotest.(check (float 1e-9)) (msg ^ " flip delta") (before +. delta) (Netbox.total nb)
    | 4 ->
      let i = random_cell () in
      let offs = Array.map (fun p -> pins.Pins.off_x.(p)) (Design.cell d i).Types.c_pins in
      Netbox.flip_cell nb i;
      ignore (Netbox.delta nb);
      Netbox.rollback nb;
      Array.iteri
        (fun k p ->
          Alcotest.(check (float 0.0)) (msg ^ " offset restored") offs.(k) pins.Pins.off_x.(p))
        (Design.cell d i).Types.c_pins;
      agree ~msg:(msg ^ " flip rollback") pins nb ~cx ~cy
    | _ ->
      (* mixed transaction: move + flip together, commit or roll back *)
      Netbox.move_cell nb (random_cell ()) (random_x ()) (random_y ());
      Netbox.flip_cell nb (random_cell ());
      if Rng.int rng 2 = 0 then Netbox.commit nb else Netbox.rollback nb;
      agree ~msg:(msg ^ " mixed") pins nb ~cx ~cy
  done

(* Degenerate nets: a 1-pin net, an all-pins-coincident net, a pinless
   cell, and a pair of stacked cells sharing exact pin positions. *)
let degenerate_design () =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:80.0 ~yh:40.0 in
  let b = Builder.create ~name:"degen" ~die ~row_height:10.0 ~site_width:1.0 () in
  let mk name x y =
    let id = Builder.add_cell b ~name ~master:"X" ~w:4.0 ~h:10.0 ~kind:Types.Movable in
    Builder.set_position b id ~x ~y;
    id
  in
  let a = mk "a" 0.0 0.0 in
  let c1 = mk "c1" 20.0 10.0 in
  let c2 = mk "c2" 20.0 10.0 in
  let c3 = mk "c3" 20.0 10.0 in
  ignore (mk "pinless" 40.0 0.0);
  let lone = Builder.add_pin b ~cell:a ~dir:Types.Output ~dx:1.0 ~dy:5.0 () in
  ignore (Builder.add_net b [ lone ]);
  (* three cells stacked at one point, pins at the same offset: every pin
     of the net is coincident, so each is simultaneously the (non-unique)
     min and max of both axes *)
  let p1 = Builder.add_pin b ~cell:c1 ~dir:Types.Input ~dx:2.0 ~dy:5.0 () in
  let p2 = Builder.add_pin b ~cell:c2 ~dir:Types.Input ~dx:2.0 ~dy:5.0 () in
  let p3 = Builder.add_pin b ~cell:c3 ~dir:Types.Output ~dx:2.0 ~dy:5.0 () in
  ignore (Builder.add_net b [ p1; p2; p3 ]);
  let q1 = Builder.add_pin b ~cell:a ~dir:Types.Input ~dx:3.0 ~dy:2.0 () in
  let q2 = Builder.add_pin b ~cell:c1 ~dir:Types.Output ~dx:1.0 ~dy:2.0 () in
  ignore (Builder.add_net b ~weight:2.5 [ q1; q2 ]);
  Builder.finish b

let test_netbox_random_designs () =
  (* 5 designs x 1000 random transactions, dense and sparse *)
  List.iter
    (fun seed ->
      let d = Tutil.random_design ~cells:20 ~nets:25 ~die_w:100.0 ~die_rows:8 seed in
      exercise d ~seed ~ops:1000)
    [ 11; 23; 37; 58; 71 ]

let test_netbox_degenerate () = exercise (degenerate_design ()) ~seed:5 ~ops:1000

let test_netbox_weighted () =
  (* weights must scale deltas exactly like Hpwl.total *)
  let d = degenerate_design () in
  let pins = Pins.build d in
  let cx, cy = Pins.centers_of_design d in
  let nb = Netbox.build pins ~cx ~cy in
  Alcotest.(check (float 1e-9)) "build total" (Hpwl.total pins ~cx ~cy) (Netbox.total nb)

let qcheck_agreement =
  QCheck.Test.make ~count:40 ~name:"netbox equals recompute on random designs"
    QCheck.(pair (int_range 1 10_000) (int_range 4 40))
    (fun (seed, cells) ->
      let d = Tutil.random_design ~cells ~nets:(cells * 2) seed in
      exercise d ~seed ~ops:100;
      true)

let suite =
  [
    Alcotest.test_case "random move/commit/rollback x1000" `Quick test_netbox_random_designs;
    Alcotest.test_case "degenerate nets" `Quick test_netbox_degenerate;
    Alcotest.test_case "weighted build" `Quick test_netbox_weighted;
    QCheck_alcotest.to_alcotest qcheck_agreement;
  ]
