(* Tests for Dpp_coarsen and the multilevel Gp V-cycle: cluster
   integrity at every level, datapath groups never split, deterministic
   builds, interpolation geometry, GP convergence trend, and the
   multilevel-vs-flat quality bound. *)

module Rect = Dpp_geom.Rect
module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Pins = Dpp_wirelen.Pins
module Dgroup = Dpp_structure.Dgroup
module Coarsen = Dpp_coarsen
module Gp = Dpp_place.Gp
module Qp = Dpp_place.Qp
module Check = Dpp_check

let scaled_design ?(cells = 900) seed =
  Dpp_gen.Compose.build
    (Dpp_gen.Presets.scaled
       ~name:(Printf.sprintf "ml%d" seed)
       ~seed ~cells ~dp_fraction:0.5)

(* idealized datapath groups from the generator's ground truth *)
let dgroups_of d =
  let cx, cy = Pins.centers_of_design d in
  Dgroup.build_all_ordered d d.Design.groups ~cx ~cy

let build_levels ?(seed = 7) d =
  Coarsen.build ~groups:(dgroups_of d) ~min_cells:100 ~max_levels:3 ~seed d

let test_levels_pass_integrity_oracle () =
  let d = scaled_design 21 in
  let levels = build_levels d in
  Alcotest.(check bool) "coarsening produced levels" true (levels <> []);
  List.iteri
    (fun k lvl ->
      match Check.cluster_integrity lvl with
      | [] -> ()
      | vs ->
        Alcotest.failf "level %d: %s" (k + 1)
          (String.concat "; " (Check.Violation.strings vs)))
    levels

let test_groups_never_split () =
  let d = scaled_design 22 in
  let groups = dgroups_of d in
  let levels = build_levels d in
  let l1 = List.hd levels in
  Alcotest.(check int) "one cluster per datapath group" (List.length groups)
    (List.length l1.Coarsen.group_of);
  List.iter
    (fun (cid, (dg : Dgroup.t)) ->
      Array.iter
        (fun i ->
          Alcotest.(check int)
            (Printf.sprintf "group member %d stays in cluster" i)
            cid
            l1.Coarsen.cluster_of.(i))
        dg.Dgroup.cells)
    l1.Coarsen.group_of;
  (* the collapsed cluster stays whole at every deeper level too: it is
     protected, so it must remain a singleton all the way down *)
  List.iteri
    (fun k lvl ->
      if k > 0 then
        Array.iteri
          (fun cid p ->
            if p then
              Alcotest.(check int)
                (Printf.sprintf "level %d protected cluster %d singleton" (k + 1) cid)
                1
                (Array.length lvl.Coarsen.members.(lvl.Coarsen.cluster_of.(cid))))
          (List.nth levels (k - 1)).Coarsen.protected)
    levels

let test_build_deterministic () =
  let d = scaled_design 23 in
  let a = build_levels ~seed:11 d and b = build_levels ~seed:11 d in
  Alcotest.(check int) "same depth" (List.length a) (List.length b);
  List.iter2
    (fun (la : Coarsen.level) (lb : Coarsen.level) ->
      Alcotest.(check bool) "identical cluster map" true (la.Coarsen.cluster_of = lb.Coarsen.cluster_of);
      Alcotest.(check int) "identical coarse size" (Design.num_cells la.Coarsen.coarse)
        (Design.num_cells lb.Coarsen.coarse);
      Alcotest.(check int) "identical coarse nets" (Design.num_nets la.Coarsen.coarse)
        (Design.num_nets lb.Coarsen.coarse))
    a b

let test_reduction_without_groups () =
  let d = scaled_design 24 in
  let levels = Coarsen.build ~min_cells:100 ~max_levels:3 ~seed:5 d in
  Alcotest.(check bool) "levels exist" true (levels <> []);
  List.iter
    (fun (lvl : Coarsen.level) ->
      let fm = Array.length (Design.movable_ids lvl.Coarsen.fine) in
      let cm = Array.length (Design.movable_ids lvl.Coarsen.coarse) in
      Alcotest.(check bool)
        (Printf.sprintf "movables shrink (%d -> %d)" fm cm)
        true (cm < fm);
      Alcotest.(check bool) "nets do not grow" true
        (Design.num_nets lvl.Coarsen.coarse <= Design.num_nets lvl.Coarsen.fine))
    levels;
  (* below the floor no hierarchy is built *)
  Alcotest.(check (list reject)) "tiny design yields no levels" []
    (Coarsen.build ~min_cells:100_000 ~seed:5 d)

let test_interpolate_group_offsets () =
  let d = scaled_design 25 in
  let levels = build_levels d in
  let l1 = List.hd levels in
  let k = Design.num_cells l1.Coarsen.coarse in
  let die = d.Design.die in
  let ccx = Array.make k (Rect.width die /. 3.0) in
  let ccy = Array.make k (Rect.height die /. 3.0) in
  let cx, cy = Pins.centers_of_design d in
  Coarsen.interpolate l1 ~ccx ~ccy ~cx ~cy;
  List.iter
    (fun (_, (dg : Dgroup.t)) ->
      let n = Array.length dg.Dgroup.cells in
      let i0 = dg.Dgroup.cells.(0) in
      for j = 1 to n - 1 do
        let i = dg.Dgroup.cells.(j) in
        Alcotest.(check (float 1e-9)) "bit-order x offset preserved"
          (dg.Dgroup.off_x.(j) -. dg.Dgroup.off_x.(0))
          (cx.(i) -. cx.(i0));
        Alcotest.(check (float 1e-9)) "bit-order y offset preserved"
          (dg.Dgroup.off_y.(j) -. dg.Dgroup.off_y.(0))
          (cy.(i) -. cy.(i0))
      done)
    l1.Coarsen.group_of;
  (* every movable landed inside the die *)
  Array.iter
    (fun i ->
      Alcotest.(check bool) "x inside die" true (cx.(i) >= die.Rect.xl && cx.(i) <= die.Rect.xh);
      Alcotest.(check bool) "y inside die" true (cy.(i) >= die.Rect.yl && cy.(i) <= die.Rect.yh))
    (Design.movable_ids d)

let gp_config = { Gp.default_config with Gp.rounds = 12; inner_iters = 25 }

let test_gp_overflow_trend () =
  let d = scaled_design ~cells:600 26 in
  let qp = Qp.run ~seed:1 d in
  let r = Gp.run d gp_config ~cx:qp.Qp.cx ~cy:qp.Qp.cy in
  let ovs = List.map (fun (ri : Gp.round_info) -> ri.Gp.overflow) r.Gp.trace in
  (match ovs with
  | first :: _ :: _ ->
    let last = List.nth ovs (List.length ovs - 1) in
    Alcotest.(check bool)
      (Printf.sprintf "overflow decreases overall (%.3f -> %.3f)" first last)
      true (last <= first);
    (* the trend is monotone up to small spreading transients *)
    let worst = ref 0.0 in
    List.iteri
      (fun i ov ->
        if i > 0 then worst := max !worst (ov -. List.nth ovs (i - 1)))
      ovs;
    Alcotest.(check bool)
      (Printf.sprintf "no large overflow regression between rounds (worst +%.3f)" !worst)
      true (!worst < 0.05)
  | _ -> Alcotest.fail "gp trace too short")

let test_multilevel_vs_flat_hpwl () =
  let d = scaled_design ~cells:800 27 in
  let levels = Coarsen.build ~groups:(dgroups_of d) ~min_cells:150 ~max_levels:2 ~seed:9 d in
  Alcotest.(check bool) "hierarchy engaged" true (levels <> []);
  let qp = Qp.run ~seed:1 d in
  let flat = Gp.run d gp_config ~cx:(Array.copy qp.Qp.cx) ~cy:(Array.copy qp.Qp.cy) in
  let ml =
    Gp.run_multilevel d gp_config ~levels ~cx:(Array.copy qp.Qp.cx)
      ~cy:(Array.copy qp.Qp.cy)
  in
  let ratio = ml.Gp.result.Gp.final_hpwl /. flat.Gp.final_hpwl in
  Alcotest.(check bool)
    (Printf.sprintf "multilevel HPWL within a bounded factor of flat (ratio %.3f)" ratio)
    true
    (ratio > 0.5 && ratio < 1.5);
  Alcotest.(check int) "one trace entry per level" (List.length levels)
    (List.length ml.Gp.level_trace)

let test_disconnected_falls_back_flat () =
  (* PEKO nets are cell-disjoint: every connected component is one net
     (at most 8 cells), so the V-cycle has nothing to exploit and build
     must return [] — the flat-GP fallback — instead of coarsening dust *)
  let pk, _ = Dpp_gen.Peko.build ~name:"peko_cc" ~cells:4000 () in
  Alcotest.(check int) "flat fallback on disconnected design" 0
    (List.length (Coarsen.build ~min_cells:500 ~seed:3 pk));
  (* a connected design of the same scale still coarsens *)
  let d = scaled_design ~cells:900 31 in
  Alcotest.(check bool) "connected design still builds levels" true
    (Coarsen.build ~min_cells:150 ~max_levels:2 ~seed:3 d <> [])

let suite =
  [
    Alcotest.test_case "disconnected falls back flat" `Quick test_disconnected_falls_back_flat;
    Alcotest.test_case "levels pass integrity oracle" `Quick test_levels_pass_integrity_oracle;
    Alcotest.test_case "dgroups never split" `Quick test_groups_never_split;
    Alcotest.test_case "build deterministic" `Quick test_build_deterministic;
    Alcotest.test_case "reduction without groups" `Quick test_reduction_without_groups;
    Alcotest.test_case "interpolate group offsets" `Quick test_interpolate_group_offsets;
    Alcotest.test_case "gp overflow trend" `Slow test_gp_overflow_trend;
    Alcotest.test_case "multilevel vs flat hpwl" `Slow test_multilevel_vs_flat_hpwl;
  ]
