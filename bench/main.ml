(* Benchmark harness: regenerates every table and figure of the
   (reconstructed) evaluation, plus Bechamel micro-benchmarks of the
   computational kernels.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- -e T3   -- one experiment
     dune exec bench/main.exe -- -l      -- list experiment ids

   Experiment ids: T1 T2 T3 T4 T5 T6 F1 F2 F3 F4 F5 BM (see
   EXPERIMENTS.md). *)

module Experiment = Dpp_core.Experiment
module Series = Dpp_report.Series

let say fmt = Printf.printf (fmt ^^ "\n%!")

let rule () = say "%s" (String.make 78 '=')

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro_design =
  lazy
    (let spec =
       Dpp_gen.Presets.scaled ~name:"micro" ~seed:42 ~cells:2000 ~dp_fraction:0.5
     in
     Dpp_gen.Compose.build spec)

let micro_tests () =
  let open Bechamel in
  let d = Lazy.force micro_design in
  let pins = Dpp_wirelen.Pins.build d in
  let cx, cy = Dpp_wirelen.Pins.centers_of_design d in
  let n = Dpp_netlist.Design.num_cells d in
  let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
  let grid = Dpp_density.Grid.build d ~nx:24 ~ny:24 in
  let bell = Dpp_density.Bell.create d ~grid ~target_density:0.9 in
  let lse =
    Test.make ~name:"lse-value-grad" (Staged.stage (fun () ->
        Array.fill gx 0 n 0.0;
        Array.fill gy 0 n 0.0;
        ignore (Dpp_wirelen.Lse.value_grad pins ~gamma:5.0 ~cx ~cy ~gx ~gy)))
  in
  let wa =
    Test.make ~name:"wa-value-grad" (Staged.stage (fun () ->
        Array.fill gx 0 n 0.0;
        Array.fill gy 0 n 0.0;
        ignore (Dpp_wirelen.Wa.value_grad pins ~gamma:5.0 ~cx ~cy ~gx ~gy)))
  in
  let hpwl =
    Test.make ~name:"hpwl-total" (Staged.stage (fun () ->
        ignore (Dpp_wirelen.Hpwl.total pins ~cx ~cy)))
  in
  let density =
    Test.make ~name:"bell-value-grad" (Staged.stage (fun () ->
        Array.fill gx 0 n 0.0;
        Array.fill gy 0 n 0.0;
        ignore (Dpp_density.Bell.value_grad bell ~cx ~cy ~gx ~gy)))
  in
  let extract =
    Test.make ~name:"extraction" (Staged.stage (fun () ->
        ignore (Dpp_extract.Slicer.run d Dpp_extract.Slicer.default_config)))
  in
  let qp =
    Test.make ~name:"quadratic-init" (Staged.stage (fun () ->
        ignore (Dpp_place.Qp.run ~seed:1 d)))
  in
  [ lse; wa; hpwl; density; extract; qp ]

let run_micro () =
  let open Bechamel in
  say "BM: kernel micro-benchmarks (Bechamel; ~1s per kernel)";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 200) () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
      in
      let analyzed =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true
                       ~predictors:[| Measure.run |])
          (Toolkit.Instance.monotonic_clock) results
      in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> say "  %-24s %12.0f ns/run" name est
          | Some _ | None -> say "  %-24s (no estimate)" name)
        analyzed)
    (micro_tests ())

(* ------------------------------------------------------------------ *)
(* Detailed-placement move-evaluation microbenchmark                   *)
(* ------------------------------------------------------------------ *)

(* Same candidate cross-row swaps evaluated two ways: the Netbox
   incremental delta (what Detail/Flip now run on) against the classical
   full rescan of every touched net.  Emits BENCH_detail.json. *)
let run_detail_bench () =
  let module Design = Dpp_netlist.Design in
  let module Types = Dpp_netlist.Types in
  let module Pins = Dpp_wirelen.Pins in
  let module Hpwl = Dpp_wirelen.Hpwl in
  let module Netbox = Dpp_wirelen.Netbox in
  let module Rng = Dpp_util.Rng in
  let d = Lazy.force micro_design in
  let pins = Pins.build d in
  let cx, cy = Pins.centers_of_design d in
  let legal = Dpp_place.Legal.run d ~cx ~cy () in
  let lcx = legal.Dpp_place.Legal.cx and lcy = legal.Dpp_place.Legal.cy in
  let movable = Design.movable_ids d in
  let nm = Array.length movable in
  let rng = Rng.create 7 in
  let n_cands = 40_000 in
  let cands =
    Array.init n_cands (fun _ ->
        movable.(Rng.int rng nm), movable.(Rng.int rng nm))
  in
  (* weighted rescan of the union of both cells' nets, before/after the
     staged swap — the pre-refactor Detail.local_hpwl evaluation *)
  let module Hypergraph = Dpp_netlist.Hypergraph in
  let h = Hypergraph.build d in
  let local i j =
    let seen = Hashtbl.create 16 in
    List.iter
      (fun c -> Hypergraph.iter_nets_of_cell h c (fun n -> Hashtbl.replace seen n ()))
      [ i; j ];
    Hashtbl.fold
      (fun n () acc ->
        acc +. ((Design.net d n).Types.n_weight *. Hpwl.net pins ~cx:lcx ~cy:lcy n))
      seen 0.0
  in
  let rescan_eval (i, j) =
    let before = local i j in
    let xi = lcx.(i) and yi = lcy.(i) and xj = lcx.(j) and yj = lcy.(j) in
    lcx.(i) <- xj;
    lcy.(i) <- yj;
    lcx.(j) <- xi;
    lcy.(j) <- yi;
    let after = local i j in
    lcx.(i) <- xi;
    lcy.(i) <- yi;
    lcx.(j) <- xj;
    lcy.(j) <- yj;
    after -. before
  in
  let nb = Netbox.build pins ~cx:lcx ~cy:lcy in
  let netbox_eval (i, j) =
    let xi = lcx.(i) and yi = lcy.(i) and xj = lcx.(j) and yj = lcy.(j) in
    Netbox.move_cell nb i xj yj;
    Netbox.move_cell nb j xi yi;
    let delta = Netbox.delta nb in
    Netbox.rollback nb;
    delta
  in
  (* the two evaluators must agree before timing means anything *)
  Array.iteri
    (fun k cand ->
      if k < 2_000 then begin
        let dr = rescan_eval cand and dn = netbox_eval cand in
        if abs_float (dr -. dn) > 1e-6 then begin
          say "DP: MISMATCH on candidate %d: rescan %.9f netbox %.9f" k dr dn;
          exit 1
        end
      end)
    cands;
  let time_evals eval =
    let t0 = Unix.gettimeofday () in
    let acc = ref 0.0 in
    Array.iter (fun cand -> acc := !acc +. eval cand) cands;
    let dt = Unix.gettimeofday () -. t0 in
    ignore !acc;
    float_of_int n_cands /. dt
  in
  (* warm up, then measure *)
  ignore (time_evals rescan_eval);
  ignore (time_evals netbox_eval);
  let rescan_rate = time_evals rescan_eval in
  let netbox_rate = time_evals netbox_eval in
  let speedup = netbox_rate /. rescan_rate in
  say "DP: %d swap evaluations on %s (%d cells, %d nets)" n_cands d.Design.name
    (Design.num_cells d) (Design.num_nets d);
  say "  rescan  %12.0f moves/sec" rescan_rate;
  say "  netbox  %12.0f moves/sec" netbox_rate;
  say "  speedup %12.2fx" speedup;
  let oc = open_out "BENCH_detail.json" in
  Printf.fprintf oc
    {|{"design":"%s","cells":%d,"nets":%d,"evals":%d,"rescan_moves_per_sec":%.0f,"netbox_moves_per_sec":%.0f,"speedup":%.3f}
|}
    d.Design.name (Design.num_cells d) (Design.num_nets d) n_cands rescan_rate netbox_rate
    speedup;
  close_out oc;
  say "  written BENCH_detail.json"

(* ------------------------------------------------------------------ *)
(* Domain-parallel kernel sweep                                        *)
(* ------------------------------------------------------------------ *)

(* The pooled cost kernels at 1/2/4/8 worker domains.  Before timing,
   the 4-domain gradients are checked bit-for-bit against the serial
   kernels — a wrong parallel kernel benchmarked fast is worse than no
   benchmark.  Throughput numbers are whatever this machine gives
   (single-core containers show ~1x; the point of the sweep is the
   equivalence plus honest scaling data).  Emits BENCH_par.json. *)
let run_par_bench () =
  let module Design = Dpp_netlist.Design in
  let module Pins = Dpp_wirelen.Pins in
  let module Model = Dpp_wirelen.Model in
  let module Par_grad = Dpp_wirelen.Par_grad in
  let module Netbox = Dpp_wirelen.Netbox in
  let module Grid = Dpp_density.Grid in
  let module Bell = Dpp_density.Bell in
  let module Rudy = Dpp_congest.Rudy in
  let module Pool = Dpp_par.Pool in
  let d = Lazy.force micro_design in
  let pins = Pins.build d in
  let cx, cy = Pins.centers_of_design d in
  let n = Design.num_cells d in
  let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
  let gx' = Array.make n 0.0 and gy' = Array.make n 0.0 in
  let nx, ny = Grid.default_dims d in
  let grid = Grid.build d ~nx ~ny in
  let bell = Bell.create d ~grid ~target_density:0.9 in
  (* equivalence gate: pooled gradients at 4 domains vs the serial kernels *)
  Pool.with_pool ~nworkers:4 (fun pool ->
      let pg = Par_grad.create pool pins in
      List.iter
        (fun kind ->
          Array.fill gx 0 n 0.0;
          Array.fill gy 0 n 0.0;
          Array.fill gx' 0 n 0.0;
          Array.fill gy' 0 n 0.0;
          let vs = Model.value_grad kind pins ~gamma:5.0 ~cx ~cy ~gx ~gy in
          let vp = Par_grad.value_grad pg pool kind ~gamma:5.0 ~cx ~cy ~gx:gx' ~gy:gy' in
          let same =
            Float.equal vs vp
            && Array.for_all2 Float.equal gx gx'
            && Array.for_all2 Float.equal gy gy'
          in
          if not same then begin
            say "PAR: MISMATCH: %s pooled gradient differs from serial"
              (Model.kind_to_string kind);
            exit 1
          end)
        [ Model.Lse; Model.Wa ]);
  say "PAR: pooled gradients bit-identical to serial (LSE, WA) at 4 domains";
  let rate f =
    f ();
    f ();
    let t0 = Unix.gettimeofday () in
    let iters = ref 0 in
    while Unix.gettimeofday () -. t0 < 0.4 do
      f ();
      incr iters
    done;
    float_of_int !iters /. (Unix.gettimeofday () -. t0)
  in
  let levels =
    List.map
      (fun jobs ->
        Pool.with_pool ~nworkers:jobs @@ fun pool ->
        let pg = Par_grad.create pool pins in
        let bp = Bell.par_create bell in
        let nb = Netbox.build ~pool pins ~cx ~cy in
        let wa =
          rate (fun () ->
              ignore (Par_grad.value_grad pg pool Model.Wa ~gamma:5.0 ~cx ~cy ~gx ~gy))
        in
        let lse =
          rate (fun () ->
              ignore (Par_grad.value_grad pg pool Model.Lse ~gamma:5.0 ~cx ~cy ~gx ~gy))
        in
        let bellr = rate (fun () -> ignore (Bell.par_value_grad bp pool ~cx ~cy ~gx ~gy)) in
        let rudy = rate (fun () -> ignore (Rudy.compute ~pool d ~cx ~cy)) in
        let audit = rate (fun () -> ignore (Netbox.audit ~pool nb)) in
        (* whether the gradient kernel's chunk loop ran inline (auto-serial
           fallback: one effective core, one worker, or tiny work) rather
           than fanning out to the worker domains *)
        let fallback = Pool.auto_serial pool ~n:(Design.num_nets d) in
        say
          "  jobs %d: wa %8.1f/s  lse %8.1f/s  bell %8.1f/s  rudy %8.1f/s  audit %8.1f/s%s"
          jobs wa lse bellr rudy audit
          (if fallback then "  [serial fallback]" else "");
        jobs, wa, lse, bellr, rudy, audit, fallback)
      [ 1; 2; 4; 8 ]
  in
  let wa_at j =
    let _, wa, _, _, _, _, _ =
      List.find (fun (jobs, _, _, _, _, _, _) -> jobs = j) levels
    in
    wa
  in
  let speedup = wa_at 4 /. wa_at 1 in
  say "PAR: WA gradient speedup at 4 domains vs 1: %.2fx (machine has %d core%s)" speedup
    (Domain.recommended_domain_count ())
    (if Domain.recommended_domain_count () = 1 then "" else "s");
  let oc = open_out "BENCH_par.json" in
  Printf.fprintf oc
    {|{"design":"%s","cells":%d,"nets":%d,"chunk_count":%d,"cores":%d,"levels":[%s],"grad_speedup_4v1":%.3f}
|}
    d.Design.name (Design.num_cells d) (Design.num_nets d) Pool.chunk_count
    (Domain.recommended_domain_count ())
    (String.concat ","
       (List.map
          (fun (jobs, wa, lse, bellr, rudy, audit, fallback) ->
            Printf.sprintf
              {|{"jobs":%d,"wa_grad_per_sec":%.1f,"lse_grad_per_sec":%.1f,"bell_grad_per_sec":%.1f,"rudy_per_sec":%.1f,"netbox_audit_per_sec":%.1f,"fallback":%b}|}
              jobs wa lse bellr rudy audit fallback)
          levels))
    speedup;
  close_out oc;
  say "  written BENCH_par.json"

(* ------------------------------------------------------------------ *)
(* Parallel legalization & detailed placement                          *)
(* ------------------------------------------------------------------ *)

(* Three measurements behind one bit-exactness gate. (1) The gate:
   Legal+Detail+Flip on a fresh design at 1/2/4/8 worker domains must
   produce identical assignment, coordinates and orientations — a wrong
   parallel stage benchmarked fast is worse than no benchmark. (2) The
   headline serial win: the move pass's gap queries through the sorted
   Occ index against the old per-row list walk (List.filter + re-sort on
   every accepted move), same operation stream, costs verified equal
   first. (3) The 1/2/4/8-domain sweep of the full stages. Emits
   BENCH_legal.json. *)
let run_legal_bench () =
  let module Design = Dpp_netlist.Design in
  let module Types = Dpp_netlist.Types in
  let module Pins = Dpp_wirelen.Pins in
  let module Netbox = Dpp_wirelen.Netbox in
  let module Hypergraph = Dpp_netlist.Hypergraph in
  let module Rect = Dpp_geom.Rect in
  let module Pool = Dpp_par.Pool in
  let module Legal = Dpp_place.Legal in
  let module Occ = Dpp_place.Occ in
  let module Rng = Dpp_util.Rng in
  let build () =
    Dpp_gen.Compose.build
      (Dpp_gen.Presets.scaled ~name:"micro" ~seed:42 ~cells:2000 ~dp_fraction:0.5)
  in
  (* --- bit-exactness gate: the three stages across worker counts --- *)
  let backend jobs =
    let d = build () in
    let cx, cy = Pins.centers_of_design d in
    Pool.with_pool ~nworkers:jobs @@ fun pool ->
    let legal = Legal.run d ~pool ~cx ~cy () in
    let nb = Netbox.build (Pins.build d) ~cx:legal.Legal.cx ~cy:legal.Legal.cy in
    let h = Hypergraph.build d in
    ignore (Dpp_place.Detail.run d ~pool ~netbox:nb ~hypergraph:h ~legal ());
    ignore (Dpp_place.Flip.run d ~pool ~netbox:nb ~cx:legal.Legal.cx ~cy:legal.Legal.cy ());
    legal.Legal.assignment, legal.Legal.cx, legal.Legal.cy, Array.copy d.Design.orient
  in
  let a1, x1, y1, o1 = backend 1 in
  List.iter
    (fun jobs ->
      let a, x, y, o = backend jobs in
      if
        not
          (a = a1
          && Array.for_all2 Float.equal x x1
          && Array.for_all2 Float.equal y y1
          && o = o1)
      then begin
        say "LG: MISMATCH: Legal+Detail+Flip at %d domains differs from 1" jobs;
        exit 1
      end)
    [ 2; 4; 8 ];
  say "LG: Legal+Detail+Flip bit-identical at 1/2/4/8 worker domains";
  (* --- occupancy: sorted index vs the old per-row list walk --- *)
  let d = build () in
  let cx, cy = Pins.centers_of_design d in
  let legal = Legal.run d ~cx ~cy () in
  let lcx = legal.Legal.cx in
  let die = d.Design.die in
  let nrows = d.Design.num_rows in
  let site = d.Design.site_width in
  let align v = die.Rect.xl +. (ceil (((v -. die.Rect.xl) /. site) -. 1e-9) *. site) in
  let movable =
    Array.to_list (Design.movable_ids d)
    |> List.filter (fun i ->
           legal.Legal.assignment.(i) >= 0
           && (Design.cell d i).Types.c_height <= d.Design.row_height +. 1e-9)
    |> Array.of_list
  in
  let rng = Rng.create 11 in
  let n_ops = 200_000 in
  let ops =
    Array.init n_ops (fun q ->
        let i = movable.(Rng.int rng (Array.length movable)) in
        let w = (Design.cell d i).Types.c_width in
        let tx =
          min (max (lcx.(i) +. Rng.float_in rng (-40.0 *. w) (40.0 *. w)) die.Rect.xl)
            die.Rect.xh
        in
        i, tx, Rng.int rng 3 - 1, q mod 4 = 0)
  in
  let width i = (Design.cell d i).Types.c_width in
  (* the old move_pass gap walk over a sorted (xl, xh, cell) list *)
  let list_best_gap rows r ~w ~tx =
    let cursor = ref die.Rect.xl in
    let best = ref None in
    let consider_gap lo hi =
      if hi -. lo >= w then begin
        let xl = align (min (max (tx -. (w /. 2.0)) lo) (hi -. w)) in
        if xl >= lo -. 1e-9 && xl +. w <= hi +. 1e-9 then begin
          let cand_cx = xl +. (w /. 2.0) in
          let cost = abs_float (cand_cx -. tx) in
          match !best with
          | Some (bc, _) when bc <= cost -> ()
          | Some _ | None -> best := Some (cost, cand_cx)
        end
      end
    in
    List.iter
      (fun (lo, hi, _) ->
        if lo > !cursor then consider_gap !cursor lo;
        cursor := max !cursor hi)
      rows.(r);
    if die.Rect.xh > !cursor then consider_gap !cursor die.Rect.xh;
    !best
  in
  let fresh_rows () =
    let occ = Occ.build d ~cx:lcx ~cy:legal.Legal.cy in
    Array.init nrows (Occ.row_entries occ)
  in
  let clamp_row r = max 0 (min (nrows - 1) r) in
  (* correctness first: both backends must price every op identically *)
  begin
    let rows = fresh_rows () in
    let occ = Occ.build d ~cx:lcx ~cy:legal.Legal.cy in
    let cur_row = Array.copy legal.Legal.assignment in
    Array.iteri
      (fun q (i, tx, dr, accept) ->
        let w = width i in
        let r = clamp_row (cur_row.(i) + dr) in
        let bl = list_best_gap rows r ~w ~tx in
        let bo = Occ.best_gap occ r ~w ~tx ~align in
        (match bl, bo with
        | None, None -> ()
        | Some (cl, _), Some (co, _) when Float.equal cl co -> ()
        | _ ->
          say "LG: MISMATCH: op %d list and indexed gap queries disagree" q;
          exit 1);
        match bo with
        | Some (_, cand_cx) when accept ->
          (* apply the same move to both so the states stay comparable *)
          let orow = cur_row.(i) in
          rows.(orow) <- List.filter (fun (_, _, c) -> c <> i) rows.(orow);
          rows.(r) <-
            List.sort compare
              ((cand_cx -. (w /. 2.0), cand_cx +. (w /. 2.0), i) :: rows.(r));
          Occ.remove occ ~row:orow ~cell:i;
          Occ.insert occ ~row:r ~cell:i ~xl:(cand_cx -. (w /. 2.0))
            ~xh:(cand_cx +. (w /. 2.0));
          cur_row.(i) <- r
        | Some _ | None -> ())
      ops;
    say "LG: list and indexed occupancy agree on all %d gap queries" n_ops
  end;
  let time_list () =
    let rows = fresh_rows () in
    let cur_row = Array.copy legal.Legal.assignment in
    let acc = ref 0.0 in
    let t0 = Unix.gettimeofday () in
    Array.iter
      (fun (i, tx, dr, accept) ->
        let w = width i in
        let r = clamp_row (cur_row.(i) + dr) in
        match list_best_gap rows r ~w ~tx with
        | Some (cost, cand_cx) ->
          acc := !acc +. cost;
          if accept then begin
            let orow = cur_row.(i) in
            rows.(orow) <- List.filter (fun (_, _, c) -> c <> i) rows.(orow);
            rows.(r) <-
              List.sort compare
                ((cand_cx -. (w /. 2.0), cand_cx +. (w /. 2.0), i) :: rows.(r));
            cur_row.(i) <- r
          end
        | None -> ())
      ops;
    ignore !acc;
    float_of_int n_ops /. (Unix.gettimeofday () -. t0)
  in
  let time_occ () =
    let occ = Occ.build d ~cx:lcx ~cy:legal.Legal.cy in
    let cur_row = Array.copy legal.Legal.assignment in
    let acc = ref 0.0 in
    let t0 = Unix.gettimeofday () in
    Array.iter
      (fun (i, tx, dr, accept) ->
        let w = width i in
        let r = clamp_row (cur_row.(i) + dr) in
        match Occ.best_gap occ r ~w ~tx ~align with
        | Some (cost, cand_cx) ->
          acc := !acc +. cost;
          if accept then begin
            Occ.remove occ ~row:cur_row.(i) ~cell:i;
            Occ.insert occ ~row:r ~cell:i ~xl:(cand_cx -. (w /. 2.0))
              ~xh:(cand_cx +. (w /. 2.0));
            cur_row.(i) <- r
          end
        | None -> ())
      ops;
    ignore !acc;
    float_of_int n_ops /. (Unix.gettimeofday () -. t0)
  in
  ignore (time_list ());
  ignore (time_occ ());
  let list_rate = time_list () in
  let occ_rate = time_occ () in
  let occ_speedup = occ_rate /. list_rate in
  say "LG: %d gap queries (1 in 4 accepted) on %s (%d rows)" n_ops d.Design.name nrows;
  say "  list     %12.0f ops/sec" list_rate;
  say "  indexed  %12.0f ops/sec" occ_rate;
  say "  speedup  %12.2fx" occ_speedup;
  (* --- the full stages at 1/2/4/8 worker domains --- *)
  let rate f =
    f ();
    let t0 = Unix.gettimeofday () in
    let iters = ref 0 in
    while Unix.gettimeofday () -. t0 < 0.4 do
      f ();
      incr iters
    done;
    float_of_int !iters /. (Unix.gettimeofday () -. t0)
  in
  let levels =
    List.map
      (fun jobs ->
        let d = build () in
        let cx, cy = Pins.centers_of_design d in
        Pool.with_pool ~nworkers:jobs @@ fun pool ->
        let legal_rate = rate (fun () -> ignore (Legal.run d ~pool ~cx ~cy ())) in
        let legal = Legal.run d ~pool ~cx ~cy () in
        let nb = Netbox.build (Pins.build d) ~cx:legal.Legal.cx ~cy:legal.Legal.cy in
        let h = Hypergraph.build d in
        let t0 = Unix.gettimeofday () in
        ignore (Dpp_place.Detail.run d ~pool ~netbox:nb ~hypergraph:h ~legal ());
        let detail_s = Unix.gettimeofday () -. t0 in
        say "  jobs %d: legal %8.2f runs/s  detail %6.3f s" jobs legal_rate detail_s;
        jobs, legal_rate, detail_s)
      [ 1; 2; 4; 8 ]
  in
  let oc = open_out "BENCH_legal.json" in
  Printf.fprintf oc
    {|{"design":"%s","cells":%d,"nets":%d,"rows":%d,"occ_ops":%d,"occ_list_ops_per_sec":%.0f,"occ_indexed_ops_per_sec":%.0f,"occ_speedup":%.3f,"levels":[%s]}
|}
    d.Design.name (Design.num_cells d) (Design.num_nets d) nrows n_ops list_rate occ_rate
    occ_speedup
    (String.concat ","
       (List.map
          (fun (jobs, lr, ds) ->
            Printf.sprintf {|{"jobs":%d,"legal_runs_per_sec":%.2f,"detail_s":%.3f}|} jobs
              lr ds)
          levels));
  close_out oc;
  say "  written BENCH_legal.json"

(* ------------------------------------------------------------------ *)
(* Multilevel vs flat global placement                                 *)
(* ------------------------------------------------------------------ *)

(* Flat vs multilevel GP on the largest generated benchmark, behind two
   bit-determinism gates: the multilevel flow rerun at the same seed,
   and rerun at 4 worker domains, must both reproduce the exact final
   coordinates — a fast V-cycle that loses reproducibility is worse
   than no V-cycle.  Emits BENCH_ml.json. *)
let run_ml_bench () =
  let module Design = Dpp_netlist.Design in
  let module Flow = Dpp_core.Flow in
  let module Config = Dpp_core.Config in
  let module Trace = Dpp_report.Trace in
  let d =
    match Dpp_gen.Presets.by_name "dp_mix_l" with
    | Some spec -> Dpp_gen.Compose.build spec
    | None -> failwith "preset dp_mix_l missing"
  in
  let movables = Array.length (Design.movable_ids d) in
  say "ML: flat vs multilevel GP on %s (%d cells, %d movable)" d.Design.name
    (Design.num_cells d) movables;
  let cfg ml jobs = { Config.structure_aware with Config.multilevel = ml; jobs } in
  let gp_wall (r : Flow.result) = List.assoc "gp" r.Flow.times in
  let flat = Flow.run d (cfg Config.Ml_off 1) in
  let ml = Flow.run d (cfg Config.Ml_on 1) in
  let speedup = gp_wall flat /. gp_wall ml in
  let delta_pct =
    100.0 *. (ml.Flow.hpwl_final -. flat.Flow.hpwl_final) /. flat.Flow.hpwl_final
  in
  say "  flat: gp %6.2f s  HPWL %.0f" (gp_wall flat) flat.Flow.hpwl_final;
  say "  ml:   gp %6.2f s  HPWL %.0f" (gp_wall ml) ml.Flow.hpwl_final;
  say "  gp speedup %.2fx, final HPWL delta %+.2f%%" speedup delta_pct;
  let levels =
    match
      List.find_opt (fun (s : Trace.stage) -> s.Trace.name = "gp") ml.Flow.stage_trace
    with
    | Some s -> s.Trace.levels
    | None -> []
  in
  List.iter
    (fun (l : Trace.level) ->
      say "    level %d: %5d movables  hpwl %12.0f  overflow %.3f  %.2f s" l.Trace.index
        l.Trace.movables l.Trace.hpwl l.Trace.overflow l.Trace.wall_s)
    levels;
  (* determinism gates *)
  let same (a : Flow.result) (b : Flow.result) =
    Array.for_all2 Float.equal a.Flow.design.Design.x b.Flow.design.Design.x
    && Array.for_all2 Float.equal a.Flow.design.Design.y b.Flow.design.Design.y
  in
  let rerun_ok = same ml (Flow.run d (cfg Config.Ml_on 1)) in
  let jobs_ok = same ml (Flow.run d (cfg Config.Ml_on 4)) in
  if not rerun_ok then say "ML: MISMATCH: rerun at the same seed diverged";
  if not jobs_ok then say "ML: MISMATCH: 4-domain run diverged from 1-domain";
  if rerun_ok && jobs_ok then
    say "ML: bit-identical across rerun and across 1 vs 4 worker domains";
  if speedup < 2.0 then
    say "ML: warning: gp speedup %.2fx below the 2x target on this machine" speedup;
  if abs_float delta_pct > 2.0 then
    say "ML: warning: HPWL delta %+.2f%% outside the 2%% band" delta_pct;
  let oc = open_out "BENCH_ml.json" in
  Printf.fprintf oc
    {|{"design":"%s","cells":%d,"movables":%d,"flat_gp_s":%.3f,"ml_gp_s":%.3f,"gp_speedup":%.3f,"flat_hpwl":%.1f,"ml_hpwl":%.1f,"hpwl_delta_pct":%.3f,"deterministic_rerun":%b,"deterministic_jobs_1v4":%b,"levels":[%s]}
|}
    d.Design.name (Design.num_cells d) movables (gp_wall flat) (gp_wall ml) speedup
    flat.Flow.hpwl_final ml.Flow.hpwl_final delta_pct rerun_ok jobs_ok
    (String.concat ","
       (List.map
          (fun (l : Trace.level) ->
            Printf.sprintf
              {|{"index":%d,"movables":%d,"hpwl":%.1f,"overflow":%.4f,"wall_s":%.3f}|}
              l.Trace.index l.Trace.movables l.Trace.hpwl l.Trace.overflow l.Trace.wall_s)
          levels));
  close_out oc;
  say "  written BENCH_ml.json";
  if not (rerun_ok && jobs_ok) then exit 1

(* ------------------------------------------------------------------ *)
(* Routability: congestion-driven GP tradeoff                          *)
(* ------------------------------------------------------------------ *)

(* Congestion-blind vs congestion-steered placement on two designs: the
   rt_channel stress preset (a cell-free routing channel that the blind
   flow floods with crossing-net demand) and the big mixed datapath
   benchmark.  The steered run must hold two quality gates on the
   channel — ACE congestion down at least 20%, HPWL up at most 2% — and
   two hard determinism gates: the steered trajectory rerun at the same
   seed, and rerun at 4 worker domains, must reproduce the exact final
   coordinates.  Emits BENCH_rt.json. *)
let run_rt_bench () =
  let module Design = Dpp_netlist.Design in
  let module Flow = Dpp_core.Flow in
  let module Config = Dpp_core.Config in
  let module Rudy = Dpp_congest.Rudy in
  let row name (d : Design.t) base =
    let cfg rt jobs = { base with Config.routability = rt; jobs } in
    let off = Flow.run d (cfg false 1) in
    let on = Flow.run d (cfg true 1) in
    let ace (r : Flow.result) = r.Flow.congestion.Rudy.ace_ratio in
    let reduction = 100.0 *. (1.0 -. (ace on /. ace off)) in
    let hpwl_delta =
      100.0 *. (on.Flow.hpwl_final -. off.Flow.hpwl_final) /. off.Flow.hpwl_final
    in
    say "  %-10s off: ACE %.3f  max %.3f  HPWL %12.0f  Steiner %12.0f" name (ace off)
      off.Flow.congestion.Rudy.max_ratio off.Flow.hpwl_final off.Flow.steiner_final;
    say "  %-10s on:  ACE %.3f  max %.3f  HPWL %12.0f  Steiner %12.0f  (%d steering updates)"
      name (ace on) on.Flow.congestion.Rudy.max_ratio on.Flow.hpwl_final
      on.Flow.steiner_final
      (List.length on.Flow.rt_trace);
    say "  %-10s ACE reduction %.1f%%, HPWL delta %+.2f%%" name reduction hpwl_delta;
    let same (a : Flow.result) (b : Flow.result) =
      Array.for_all2 Float.equal a.Flow.design.Design.x b.Flow.design.Design.x
      && Array.for_all2 Float.equal a.Flow.design.Design.y b.Flow.design.Design.y
    in
    let rerun_ok = same on (Flow.run d (cfg true 1)) in
    let jobs_ok = same on (Flow.run d (cfg true 4)) in
    if not rerun_ok then say "RT: MISMATCH: %s steered rerun diverged" name;
    if not jobs_ok then say "RT: MISMATCH: %s 4-domain steered run diverged" name;
    let json =
      Printf.sprintf
        {|{"design":"%s","cells":%d,"off_ace":%.4f,"off_max":%.4f,"off_hpwl":%.1f,"off_steiner":%.1f,"on_ace":%.4f,"on_max":%.4f,"on_hpwl":%.1f,"on_steiner":%.1f,"steering_updates":%d,"ace_reduction_pct":%.2f,"hpwl_delta_pct":%.3f,"deterministic_rerun":%b,"deterministic_jobs_1v4":%b}|}
        name (Design.num_cells d) (ace off) off.Flow.congestion.Rudy.max_ratio
        off.Flow.hpwl_final off.Flow.steiner_final (ace on)
        on.Flow.congestion.Rudy.max_ratio on.Flow.hpwl_final on.Flow.steiner_final
        (List.length on.Flow.rt_trace)
        reduction hpwl_delta rerun_ok jobs_ok
    in
    json, reduction, hpwl_delta, rerun_ok && jobs_ok
  in
  let channel = Dpp_gen.Channel.build () in
  say "RT: congestion-blind vs congestion-steered placement";
  let j_ch, red_ch, dh_ch, det_ch =
    row "rt_channel" channel { Config.baseline with Config.multilevel = Config.Ml_off }
  in
  let dp =
    match Dpp_gen.Presets.by_name "dp_mix_l" with
    | Some spec -> Dpp_gen.Compose.build spec
    | None -> failwith "preset dp_mix_l missing"
  in
  let j_dp, _, _, det_dp = row "dp_mix_l" dp Config.structure_aware in
  (* quality gates apply to the channel preset, where congestion is the
     designed failure mode; on dp_mix_l the tradeoff is only reported *)
  if red_ch < 20.0 then
    say "RT: warning: channel ACE reduction %.1f%% below the 20%% target" red_ch;
  if dh_ch > 2.0 then
    say "RT: warning: channel HPWL delta %+.2f%% above the 2%% band" dh_ch;
  if det_ch && det_dp then
    say "RT: steered runs bit-identical across rerun and across 1 vs 4 worker domains";
  let oc = open_out "BENCH_rt.json" in
  Printf.fprintf oc {|{"rows":[%s,%s]}
|} j_ch j_dp;
  close_out oc;
  say "  written BENCH_rt.json";
  if not (det_ch && det_dp) then exit 1

(* ------------------------------------------------------------------ *)
(* XL scaling: the flat SoA core against the record kernels            *)
(* ------------------------------------------------------------------ *)

(* Kernel sweep over the XL preset family (10k .. 1m cells), behind
   two gates per size: (1) every SoA kernel — WA/LSE gradients, HPWL,
   serial bell density, serial RUDY, the net-box cache — must be
   bit-identical to the preserved record-path implementation in
   Dpp_refkernels; (2) the pooled kernels at 2 and 4 worker domains
   must be bit-identical to themselves at 1.  Only then are wall-clock,
   max-RSS (VmHWM) and Gc heap recorded, plus one full flow at 100k, a
   streaming-parse allocation note, and a PEKO run reporting the
   absolute optimality gap.  Emits BENCH_xl.json. *)
let run_xl_bench () =
  let module Design = Dpp_netlist.Design in
  let module Soa = Dpp_netlist.Soa in
  let module Bookshelf = Dpp_netlist.Bookshelf in
  let module Pins = Dpp_wirelen.Pins in
  let module Wa = Dpp_wirelen.Wa in
  let module Lse = Dpp_wirelen.Lse in
  let module Hpwl = Dpp_wirelen.Hpwl in
  let module Model = Dpp_wirelen.Model in
  let module Par_grad = Dpp_wirelen.Par_grad in
  let module Netbox = Dpp_wirelen.Netbox in
  let module Grid = Dpp_density.Grid in
  let module Bell = Dpp_density.Bell in
  let module Rudy = Dpp_congest.Rudy in
  let module Pool = Dpp_par.Pool in
  let module R = Dpp_refkernels.Record_path in
  let module Flow = Dpp_core.Flow in
  let module Config = Dpp_core.Config in
  (* The sweep's per-size top-heap mark is a committed, gated number:
     cap the major heap's growth headroom so the mark tracks the live
     set instead of the default 120% free-space slack.  Wall times are
     unaffected where it matters — every timed kernel runs after its
     own full-major settle in [best]. *)
  Gc.set { (Gc.get ()) with Gc.space_overhead = 80 };
  let vm_hwm_kb () =
    (* peak resident set so far, from the kernel's own accounting *)
    let ic = open_in "/proc/self/status" in
    let rec loop acc =
      match input_line ic with
      | line ->
        let acc =
          if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
            Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d" Fun.id
          else acc
        in
        loop acc
      | exception End_of_file ->
        close_in ic;
        acc
    in
    loop 0
  in
  let sec f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let best f =
    (* settle the heap first so one kernel's garbage doesn't bill the next *)
    Gc.full_major ();
    ignore (sec f);
    let a = sec f in
    let b = sec f in
    min a b
  in
  let eq_arr a b = Array.for_all2 Float.equal a b in
  let gate name ok =
    if not ok then begin
      say "XL: MISMATCH: %s" name;
      exit 1
    end
  in
  (* DPP_XL_MAX caps the sweep (and skips the xl1m flow below it) so CI's
     gating job can stop at 250k while the nightly/full run — and the
     committed BENCH_xl.json — covers the million-cell presets *)
  let all_sizes = [ "xl10k"; "xl25k"; "xl100k"; "xl250k"; "xl500k"; "xl1m" ] in
  let sizes =
    match Sys.getenv_opt "DPP_XL_MAX" with
    | None -> all_sizes
    | Some cap ->
      let rec take = function
        | [] -> []
        | s :: rest -> if s = cap then [ s ] else s :: take rest
      in
      take all_sizes
  in
  let gamma = 5.0 in
  let rows =
    List.map
      (fun name ->
        (* return the previous size's garbage to the OS before this size
           allocates, so the monotone top-heap / VmHWM marks sampled at
           the end of the row are this size's own working set, not the
           sweep's accumulation *)
        Gc.compact ();
        let t0 = Unix.gettimeofday () in
        let d = Option.get (Dpp_gen.Xl.by_name ~seed:1 name) in
        let gen_s = Unix.gettimeofday () -. t0 in
        let derive_s = sec (fun () -> ignore (Soa.of_design d)) in
        let pins = Pins.build d in
        let cx, cy = Pins.centers_of_design d in
        let n = Design.num_cells d in
        let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
        let gx' = Array.make n 0.0 and gy' = Array.make n 0.0 in
        let rp = R.Rpins.build d in
        let nx, ny = Grid.default_dims d in
        let grid = Grid.build d ~nx ~ny in
        let bell = Bell.create ~soa:pins.Pins.soa d ~grid ~target_density:0.9 in
        let rbell = R.Rbell.create d ~grid ~target_density:0.9 in
        (* --- gate 1: SoA kernels bit-identical to the record path --- *)
        gate
          (name ^ ": hpwl")
          (Float.equal (Hpwl.total pins ~cx ~cy) (R.hpwl_total rp ~cx ~cy));
        let grad_pair soa_f ref_f =
          Array.fill gx 0 n 0.0;
          Array.fill gy 0 n 0.0;
          Array.fill gx' 0 n 0.0;
          Array.fill gy' 0 n 0.0;
          let vs = soa_f ~gx ~gy in
          let vr = ref_f ~gx:gx' ~gy:gy' in
          Float.equal vs vr && eq_arr gx gx' && eq_arr gy gy'
        in
        gate
          (name ^ ": wa gradient")
          (grad_pair
             (fun ~gx ~gy -> Wa.value_grad pins ~gamma ~cx ~cy ~gx ~gy)
             (fun ~gx ~gy -> R.wa_value_grad rp ~gamma ~cx ~cy ~gx ~gy));
        gate
          (name ^ ": lse gradient")
          (grad_pair
             (fun ~gx ~gy -> Lse.value_grad pins ~gamma ~cx ~cy ~gx ~gy)
             (fun ~gx ~gy -> R.lse_value_grad rp ~gamma ~cx ~cy ~gx ~gy));
        gate
          (name ^ ": bell gradient")
          (grad_pair
             (fun ~gx ~gy -> Bell.value_grad bell ~cx ~cy ~gx ~gy)
             (fun ~gx ~gy -> R.Rbell.value_grad rbell ~cx ~cy ~gx ~gy));
        let rd = Rudy.compute ~pins ~nx ~ny d ~cx ~cy in
        let rr = R.rudy rp ~nx ~ny ~cx ~cy in
        gate (name ^ ": rudy demand map") (eq_arr rd.Rudy.demand rr);
        let nb = Netbox.build pins ~cx ~cy in
        let boxes_ok = ref true in
        for net = 0 to Design.num_nets d - 1 do
          let a0, a1, a2, a3 = Netbox.net_box nb net in
          let b0, b1, b2, b3 = R.net_box rp ~cx ~cy net in
          if
            not
              (Float.equal a0 b0 && Float.equal a1 b1 && Float.equal a2 b2
             && Float.equal a3 b3)
          then boxes_ok := false
        done;
        gate (name ^ ": net boxes") !boxes_ok;
        (* --- gate 2: pooled kernels bit-stable across worker counts --- *)
        let pooled jobs =
          (* each run rebuilds the pooled netbox and RUDY stores; collect
             the previous run's before stacking the next on the heap peak *)
          Gc.full_major ();
          Pool.with_pool ~nworkers:jobs @@ fun pool ->
          let pg = Par_grad.create pool pins in
          Array.fill gx 0 n 0.0;
          Array.fill gy 0 n 0.0;
          let v = Par_grad.value_grad pg pool Model.Wa ~gamma ~cx ~cy ~gx ~gy in
          let bp = Bell.par_create bell in
          Array.fill gx' 0 n 0.0;
          Array.fill gy' 0 n 0.0;
          let bv = Bell.par_value_grad bp pool ~cx ~cy ~gx:gx' ~gy:gy' in
          let rdp = Rudy.compute ~pool ~pins ~nx ~ny d ~cx ~cy in
          let nbp = Netbox.build ~pool pins ~cx ~cy in
          v, Array.copy gx, Array.copy gy, bv, Array.copy gx', Array.copy gy',
          rdp.Rudy.demand, Netbox.total nbp
        in
        let v1, px1, py1, b1, bx1, by1, rd1, nt1 = pooled 1 in
        List.iter
          (fun jobs ->
            let v, px, py, bv, bx, by, rdj, nt = pooled jobs in
            gate
              (Printf.sprintf "%s: jobs 1 vs %d" name jobs)
              (Float.equal v1 v && eq_arr px1 px && eq_arr py1 py
             && Float.equal b1 bv && eq_arr bx1 bx && eq_arr by1 by
             && eq_arr rd1 rdj && Float.equal nt1 nt))
          [ 2; 4 ];
        gate
          (name ^ ": pooled netbox vs serial build")
          (Float.equal nt1 (Netbox.total nb));
        (* --- only now: timings --- *)
        let clear () =
          Array.fill gx 0 n 0.0;
          Array.fill gy 0 n 0.0
        in
        let kernels =
          [
            ( "wa_grad",
              (fun () -> clear (); ignore (Wa.value_grad pins ~gamma ~cx ~cy ~gx ~gy)),
              fun () -> clear (); ignore (R.wa_value_grad rp ~gamma ~cx ~cy ~gx ~gy) );
            ( "lse_grad",
              (fun () -> clear (); ignore (Lse.value_grad pins ~gamma ~cx ~cy ~gx ~gy)),
              fun () -> clear (); ignore (R.lse_value_grad rp ~gamma ~cx ~cy ~gx ~gy) );
            ( "hpwl",
              (fun () -> ignore (Hpwl.total pins ~cx ~cy)),
              fun () -> ignore (R.hpwl_total rp ~cx ~cy) );
            ( "bell_grad",
              (fun () -> clear (); ignore (Bell.value_grad bell ~cx ~cy ~gx ~gy)),
              fun () -> clear (); ignore (R.Rbell.value_grad rbell ~cx ~cy ~gx ~gy) );
            ( "rudy",
              (fun () -> ignore (Rudy.compute ~pins ~nx ~ny d ~cx ~cy)),
              fun () -> ignore (R.rudy rp ~nx ~ny ~cx ~cy) );
            (* netbox is gated above but not timed here: Netbox.build
               constructs the whole incremental cache, which has no
               record-path counterpart cheaper than a bare rescan *)
          ]
        in
        let timed =
          List.map
            (fun (kname, soa_f, ref_f) ->
              let ts = best soa_f in
              let tr = best ref_f in
              kname, ts, tr)
            kernels
        in
        let heap = (Gc.stat ()).Gc.top_heap_words * (Sys.word_size / 8) / 1024 in
        let hwm = vm_hwm_kb () in
        say "  %-7s %7d cells %7d nets: soa derive %6.3f s, peak rss %d MB" name
          (Design.num_cells d) (Design.num_nets d) derive_s (hwm / 1024);
        List.iter
          (fun (kname, ts, tr) ->
            say "    %-13s soa %8.4f s  record %8.4f s  %5.2fx" kname ts tr (tr /. ts))
          timed;
        ( name,
          Design.num_cells d,
          Design.num_nets d,
          Design.num_pins d,
          gen_s,
          derive_s,
          timed,
          hwm,
          heap ))
      sizes
  in
  say "XL: all SoA kernels bit-identical to the record path on %s"
    (String.concat ", " sizes);
  say "XL: pooled kernels bit-stable at 1/2/4 worker domains on every size";
  (* per-stage memory ledger entries for the flow JSON objects: wall
     clock plus the VmHWM / top-heap marks each Trace.stage recorded *)
  let module Trace = Dpp_report.Trace in
  let stage_json (st : Trace.stage) =
    Printf.sprintf {|{"stage":"%s","s":%.2f,"vm_hwm_kb":%d,"heap_kb":%d}|} st.Trace.name
      st.Trace.wall_s st.Trace.vm_hwm_kb st.Trace.heap_kb
  in
  let say_stage (st : Trace.stage) =
    say "    %-8s %8.2f s  hwm %8.1f MB  heap %8.1f MB" st.Trace.name st.Trace.wall_s
      (float_of_int st.Trace.vm_hwm_kb /. 1024.)
      (float_of_int st.Trace.heap_kb /. 1024.)
  in
  (* --- full flows, each in a fresh child process ---
     VmHWM and top-heap are process-monotone, and the major-GC pacing the
     pooled sweep's domain spawn/join churn leaves behind balloons a
     subsequent in-process flow's heap several-fold (same allocation
     totals, far fewer major slices; Gc.compact does not reset it).
     Shelling out to dpp_place gives every flow a pristine process, so
     the ledgered per-stage marks are the flow's own.  On a preset,
     [--multilevel --jobs 1] is exactly the bench flow config below —
     verified bit-identical by final HPWL. *)
  let dpp_place_exe =
    (* the bench runs as _build/default/bench/main.exe; the placer
       binary is its sibling under bin/ *)
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      (Filename.concat "bin" "dpp_place.exe")
  in
  let flow_in_child preset =
    let tracef = Filename.temp_file "dpp_flow_" ".trace.json" in
    let cmd =
      Printf.sprintf "%s --preset %s --multilevel --jobs 1 --trace %s > /dev/null"
        (Filename.quote dpp_place_exe) (Filename.quote preset) (Filename.quote tracef)
    in
    let rc = Sys.command cmd in
    if rc <> 0 then begin
      Printf.eprintf "XL: flow child for %s exited %d (%s)\n%!" preset rc cmd;
      exit 1
    end;
    let ic = open_in tracef in
    let body = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove tracef;
    match Dpp_report.Json.parse body with
    | Dpp_report.Json.Arr (run :: _) -> Trace.of_json run
    | _ -> failwith "flow child wrote no trace run"
  in
  let final_of (tr : Trace.t) =
    match List.rev tr.Trace.stages with
    | last :: _ -> last
    | [] -> failwith "flow child trace has no stages"
  in
  (* cell counts come from the sweep rows when available so the parent
     never has to materialize the design a second time (at 1M cells the
     regeneration alone would shift the parent's own RSS baseline) *)
  let cells_of name =
    match List.find_opt (fun (n, _, _, _, _, _, _, _, _) -> n = name) rows with
    | Some (_, cells, _, _, _, _, _, _, _) -> cells
    | None -> Design.num_cells (Option.get (Dpp_gen.Xl.by_name ~seed:1 name))
  in
  (* --- one full flow at 100k --- *)
  let cfg = { Config.structure_aware with Config.multilevel = Config.Ml_on; jobs = 1 } in
  let ftr = flow_in_child "xl100k" in
  let flow_s = ftr.Trace.total_s in
  let flow_hpwl = (final_of ftr).Trace.hpwl_after in
  let flow_cells = cells_of "xl100k" in
  say "XL: full flow on xl100k (%d cells): %.1f s, final HPWL %.0f" flow_cells flow_s
    flow_hpwl;
  List.iter say_stage ftr.Trace.stages;
  (* --- streaming parse: wall-clock and allocation of Bookshelf.read ---
     runs after the xl100k flow on purpose: the reader's transient peak
     tops 1 GB, and the process-monotone VmHWM / top-heap marks in the
     flow's stage ledger must reflect the flow, not the parse apparatus
     (the xl1m flow below dwarfs the parse peak either way) *)
  let tmp = Filename.concat (Filename.get_temp_dir_name ()) "dpp_xl_parse" in
  let parse_design = "xl100k" in
  let pd = Option.get (Dpp_gen.Xl.by_name ~seed:1 parse_design) in
  Bookshelf.write pd ~basename:tmp;
  Gc.compact ();
  let s0 = Gc.stat () in
  let t0 = Unix.gettimeofday () in
  let pd' = Bookshelf.read ~basename:tmp in
  let read_s = Unix.gettimeofday () -. t0 in
  let s1 = Gc.stat () in
  let parse_mwords =
    (s1.Gc.minor_words -. s0.Gc.minor_words +. s1.Gc.major_words
   -. s0.Gc.major_words)
    /. 1e6
  in
  let parse_words_per_pin =
    parse_mwords *. 1e6 /. float_of_int (Design.num_pins pd')
  in
  List.iter (Sys.remove)
    (List.filter Sys.file_exists
       (List.map (fun e -> tmp ^ e) [ ".aux"; ".nodes"; ".nets"; ".pl"; ".scl"; ".masters"; ".groups" ]));
  say "XL: streaming Bookshelf.read of %s: %.2f s, %.1f Mwords allocated (%.0f words/pin)"
    parse_design read_s parse_mwords parse_words_per_pin;
  (* --- the million-cell flow: wall clock + peak RSS, end to end --- *)
  let flow_xl1m_json =
    if not (List.mem "xl1m" sizes) then "null"
    else begin
      let mtr = flow_in_child "xl1m" in
      let mlast = final_of mtr in
      let mcells = cells_of "xl1m" in
      say "XL: full flow on xl1m (%d cells): %.1f s, final HPWL %.0f, peak rss %d MB" mcells
        mtr.Trace.total_s mlast.Trace.hpwl_after
        (mlast.Trace.vm_hwm_kb / 1024);
      List.iter say_stage mtr.Trace.stages;
      Printf.sprintf
        {|{"design":"xl1m","cells":%d,"wall_s":%.2f,"hpwl":%.1f,"vm_hwm_kb":%d,"stages":[%s]}|}
        mcells mtr.Trace.total_s mlast.Trace.hpwl_after mlast.Trace.vm_hwm_kb
        (String.concat "," (List.map stage_json mtr.Trace.stages))
    end
  in
  (* --- PEKO: absolute optimality gap ---
     Flat GP: a PEKO netlist is fully disconnected (nets are cell-disjoint
     by construction), which degenerates the multilevel coarsening — the
     V-cycle merges each net-clique into one cluster and the refinement
     has nothing left to pull on (33.8x the optimum where flat GP reaches
     2.24x on the same instance). *)
  let peko_cells = 10_000 in
  let pk, pk_opt = Dpp_gen.Peko.build ~name:"peko10k" ~cells:peko_cells () in
  let flat_cfg = { cfg with Config.multilevel = Config.Ml_off } in
  let t0 = Unix.gettimeofday () in
  let pr = Flow.run pk flat_cfg in
  let peko_s = Unix.gettimeofday () -. t0 in
  let gap_pct = 100.0 *. ((pr.Flow.hpwl_final /. pk_opt) -. 1.0) in
  say "XL: PEKO %d cells: optimal %.0f, flow %.0f, gap %+.1f%% (%.1f s)"
    (Design.num_cells pk) pk_opt pr.Flow.hpwl_final gap_pct peko_s;
  (* --- JSON --- *)
  let largest, _, _, _, _, _, largest_timed, _, _ = List.nth rows (List.length rows - 1) in
  let oc = open_out "BENCH_xl.json" in
  Printf.fprintf oc
    {|{"sizes":[%s],"speedup_at_largest":{"size":"%s",%s},"determinism":{"jobs":[1,2,4],"bit_identical":true},"parse":{"design":"%s","read_s":%.3f,"alloc_mwords":%.1f,"words_per_pin":%.1f,"reader":"streaming"},"flow":{"design":"xl100k","cells":%d,"wall_s":%.2f,"hpwl":%.1f,"stages":[%s]},"flow_xl1m":%s,"peko":{"cells":%d,"optimal_hpwl":%.1f,"flow_hpwl":%.1f,"gap_pct":%.2f,"wall_s":%.2f}}
|}
    (String.concat ","
       (List.map
          (fun (name, cells, nets, npins, gen_s, derive_s, timed, hwm, heap) ->
            Printf.sprintf
              {|{"name":"%s","cells":%d,"nets":%d,"pins":%d,"gen_s":%.3f,"soa_derive_s":%.3f,"vm_hwm_kb":%d,"top_heap_kb":%d,"kernels":{%s}}|}
              name cells nets npins gen_s derive_s hwm heap
              (String.concat ","
                 (List.map
                    (fun (kname, ts, tr) ->
                      Printf.sprintf
                        {|"%s":{"soa_s":%.4f,"record_s":%.4f,"speedup":%.3f}|} kname ts
                        tr (tr /. ts))
                    timed)))
          rows))
    largest
    (String.concat ","
       (List.map
          (fun (kname, ts, tr) -> Printf.sprintf {|"%s":%.3f|} kname (tr /. ts))
          largest_timed))
    parse_design read_s parse_mwords parse_words_per_pin flow_cells flow_s flow_hpwl
    (String.concat "," (List.map stage_json ftr.Trace.stages))
    flow_xl1m_json
    (Design.num_cells pk) pk_opt pr.Flow.hpwl_final gap_pct peko_s;
  close_out oc;
  say "  written BENCH_xl.json"

(* ------------------------------------------------------------------ *)
(* Placement as a service: job throughput + incremental-ECO latency    *)
(* ------------------------------------------------------------------ *)

(* Drives the dpp_serve stack in-process (Server.submit_request — the
   same path the socket handler takes, minus the framing).  Two parts:

   - throughput: a batch of full placement jobs through the scheduler at
     1/2/4 worker domains, reported as jobs/sec per concurrency level;
   - incremental ECO: against a placed dp_mix_l base, a seeded edit list
     disturbing a few percent of the movables is re-placed through
     Eco_submit with the stage oracles on ([check]) and the clean-region
     bit-equality gate on ([verify]) — a Failed verdict fails the bench —
     and its warm wall time is compared with the from-scratch flow on
     the same base spec.  The ~3x speedup is a target (machine
     dependent, warning only); the equality/oracle gates are hard.

   Emits BENCH_srv.json. *)
let run_srv_bench () =
  let module P = Dpp_serve.Protocol in
  let module Server = Dpp_serve.Server in
  let collector () =
    let m = Mutex.create () in
    let all = ref [] in
    let push r = Mutex.protect m (fun () -> all := r :: !all) in
    let get () = Mutex.protect m (fun () -> List.rev !all) in
    push, get
  in
  let fast_spec ?check ?out ~seed name =
    {
      (P.spec ?check ?out (P.Preset { name; seed })) with
      P.gp_rounds = Some 6;
      gp_inner_iters = Some 15;
      detail_passes = Some 1;
    }
  in
  let submit_all t reqs push =
    List.iter
      (fun req ->
        match Server.submit_request t req ~reply_fn:push with
        | `Queued _ -> ()
        | `Busy -> failwith "SRV: queue refused a bench job")
      reqs
  in
  let finished get =
    List.filter_map
      (function
        | P.Done _ as r -> Some r
        | P.Failed { job; reason } -> failwith (Printf.sprintf "SRV: job %d failed: %s" job reason)
        | _ -> None)
      (get ())
  in
  (* --- throughput at 1/2/4 concurrent clients --- *)
  let njobs = 8 in
  let cores = Domain.recommended_domain_count () in
  say "SRV: %d placement jobs (dp_mix_s, short flow) through the scheduler" njobs;
  say "  host parallelism: %d (above it, extra clients only add GC synchronization)" cores;
  let throughput =
    List.map
      (fun clients ->
        let t =
          Server.create ~cfg:{ Server.default_cfg with Server.workers = clients; queue = 32 } ()
        in
        let push, get = collector () in
        let reqs =
          List.init njobs (fun i -> P.Submit (fast_spec ~seed:(100 + i) "dp_mix_s"))
        in
        let t0 = Unix.gettimeofday () in
        submit_all t reqs push;
        Server.drain t;
        let wall = Unix.gettimeofday () -. t0 in
        Server.shutdown t;
        if Server.alive_workers t <> 0 then failwith "SRV: orphaned worker domains";
        let done_ = List.length (finished get) in
        if done_ <> njobs then
          failwith (Printf.sprintf "SRV: %d of %d jobs finished" done_ njobs);
        let jps = float_of_int njobs /. wall in
        say "  %d client%s: %2d jobs in %6.2f s  ->  %5.2f jobs/s" clients
          (if clients = 1 then " " else "s")
          njobs wall jps;
        clients, wall, jps)
      [ 1; 2; 4 ]
  in
  (* --- incremental ECO vs from-scratch, equality- and oracle-gated --- *)
  let t = Server.create ~cfg:{ Server.default_cfg with Server.workers = 1 } () in
  let base = fast_spec ~check:true ~seed:1 "dp_mix_l" in
  let wall_of label get =
    match finished get with
    | [ P.Done { wall_s; eco; _ } ] -> wall_s, eco
    | rs -> failwith (Printf.sprintf "SRV: %s: expected one Done, got %d" label (List.length rs))
  in
  (* cold submit places and caches the base; a second submit is the
     honest from-scratch cost of the same spec (warm extraction cache) *)
  let push, get = collector () in
  submit_all t [ P.Submit base ] push;
  Server.drain t;
  ignore (wall_of "base" get);
  let push, get = collector () in
  submit_all t [ P.Submit base ] push;
  Server.drain t;
  let full_wall, _ = wall_of "full" get in
  let push, get = collector () in
  submit_all t
    [
      P.Eco_submit
        {
          base;
          edits = P.Random_edits { ops = 2; seed = 7 };
          threshold = None;
          verify = true;
        };
    ]
    push;
  Server.drain t;
  let eco_wall, eco_summary = wall_of "eco" get in
  Server.shutdown t;
  let dirty, fallback =
    match eco_summary with
    | Some e -> e.P.dirty_fraction, e.P.fallback
    | None -> failwith "SRV: eco job carried no summary"
  in
  if fallback then failwith "SRV: eco job fell back to the full flow";
  let speedup = full_wall /. eco_wall in
  say "  eco: dirty %.1f%% of movables, %6.3f s vs %6.2f s from scratch  ->  %.1fx" (100.0 *. dirty)
    eco_wall full_wall speedup;
  say "  gates: clean-region bit-equality (verify) and stage oracles (check) held";
  if dirty > 0.05 then
    say "SRV: warning: dirty fraction %.3f above the 5%% edit-locality target" dirty;
  if speedup < 3.0 then
    say "SRV: warning: eco speedup %.1fx below the 3x target on this machine" speedup;
  let oc = open_out "BENCH_srv.json" in
  Printf.fprintf oc
    {|{"jobs":%d,"host_parallelism":%d,"throughput":[%s],"eco":{"design":"dp_mix_l","full_wall_s":%.3f,"eco_wall_s":%.3f,"speedup":%.2f,"dirty_fraction":%.4f,"fallback":%b,"verified":true,"checked":true}}
|}
    njobs cores
    (String.concat ","
       (List.map
          (fun (c, w, j) ->
            Printf.sprintf {|{"clients":%d,"wall_s":%.3f,"jobs_per_s":%.3f}|} c w j)
          throughput))
    full_wall eco_wall speedup dirty fallback;
  close_out oc;
  say "  written BENCH_srv.json"

(* ------------------------------------------------------------------ *)

let experiments : (string * string * (unit -> unit)) list =
  [
    ( "T1",
      "benchmark statistics",
      fun () -> Experiment.print_table (Experiment.table1 ()) );
    ( "T2",
      "extraction quality",
      fun () -> Experiment.print_table (Experiment.table2 ()) );
    ( "T3+T4+T6",
      "main comparison + runtime breakdown + routability/timing",
      fun () ->
        let entries = Experiment.run_suite () in
        Experiment.print_table (Experiment.table3 entries);
        say "";
        Experiment.print_table (Experiment.table4 entries);
        say "";
        Experiment.print_table (Experiment.table6 entries) );
    ( "T5",
      "structure-mode ablation",
      fun () -> Experiment.print_table (Experiment.table5 ()) );
    ("F1", "GP convergence", fun () -> Series.print (Experiment.figure1 ()));
    ("F2", "dp-fraction sweep", fun () -> Series.print (Experiment.figure2 ()));
    ("F3", "beta ablation", fun () -> Series.print (Experiment.figure3 ()));
    ("F4", "runtime scaling", fun () -> Series.print (Experiment.figure4 ()));
    ("F5", "extraction noise robustness", fun () -> Series.print (Experiment.figure5 ()));
    ("BM", "kernel micro-benchmarks", run_micro);
    ("DP", "detailed-placement move-evaluation microbenchmark", run_detail_bench);
    ("PAR", "domain-parallel kernel sweep (1/2/4/8 worker domains)", run_par_bench);
    ( "LG",
      "parallel legalization & detailed placement (indexed occupancy, 1/2/4/8 domains)",
      run_legal_bench );
    ( "ML",
      "multilevel vs flat global placement (V-cycle speedup behind determinism gates)",
      run_ml_bench );
    ( "RT",
      "congestion-driven placement tradeoff (ACE/HPWL, off vs on, equality gated)",
      run_rt_bench );
    ( "XL",
      "flat SoA core vs record kernels at 10k..1m cells (bit-equality gated; DPP_XL_MAX caps)",
      run_xl_bench );
    ( "SRV",
      "placement-as-a-service throughput + incremental-ECO latency (equality gated)",
      run_srv_bench );
  ]

let matches selector (id, _, _) =
  String.lowercase_ascii selector = String.lowercase_ascii id
  || (selector = "T3" || selector = "T4" || selector = "T6") && id = "T3+T4+T6"

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Error);
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [ "-l" ] ->
    List.iter (fun (id, doc, _) -> say "%-6s %s" id doc) experiments
  | [ "-e"; sel ] -> (
    match List.find_opt (matches sel) experiments with
    | Some (id, doc, f) ->
      rule ();
      say "%s: %s" id doc;
      rule ();
      f ()
    | None ->
      say "unknown experiment %S; available experiments:" sel;
      List.iter (fun (id, doc, _) -> say "  %-9s %s" id doc) experiments;
      exit 1)
  | [] ->
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (id, doc, f) ->
        rule ();
        say "%s: %s" id doc;
        rule ();
        f ();
        say "")
      experiments;
    say "total bench time: %.1f s" (Unix.gettimeofday () -. t0)
  | _ ->
    say "usage: main.exe [-l | -e <experiment-id>]";
    exit 1
