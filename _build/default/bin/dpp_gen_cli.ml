(* dpp_gen_cli: generate synthetic datapath benchmarks as Bookshelf files.

     dpp_gen_cli --preset dp_add32 --out /tmp/dp_add32
     dpp_gen_cli --cells 5000 --dp-fraction 0.6 --seed 3 --out /tmp/custom  *)

open Cmdliner

let run preset cells dp_fraction seed out list_presets =
  if list_presets then begin
    List.iter print_endline Dpp_gen.Presets.names;
    0
  end
  else begin
    let spec =
      match preset with
      | Some name -> (
        match Dpp_gen.Presets.by_name name with
        | Some s -> Ok s
        | None -> Error (Printf.sprintf "unknown preset %S" name))
      | None -> (
        try Ok (Dpp_gen.Presets.scaled ~name:"custom" ~seed ~cells ~dp_fraction)
        with Invalid_argument msg -> Error msg)
    in
    match spec with
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
    | Ok spec -> (
      let d = Dpp_gen.Compose.build spec in
      let stats = Dpp_netlist.Nstats.compute d in
      Format.printf "%a@." Dpp_netlist.Nstats.pp stats;
      match out with
      | Some base ->
        Dpp_netlist.Bookshelf.write d ~basename:base;
        Printf.printf "written to %s.{aux,nodes,nets,pl,scl,masters,groups}\n" base;
        0
      | None ->
        Printf.printf "(no --out given: stats only)\n";
        0)
  end

let cmd =
  let preset =
    Arg.(value & opt (some string) None & info [ "preset" ] ~docv:"NAME" ~doc:"Built-in benchmark to generate.")
  in
  let cells = Arg.(value & opt int 2000 & info [ "cells" ] ~doc:"Target movable cell count (custom design).") in
  let dp_fraction =
    Arg.(value & opt float 0.5 & info [ "dp-fraction" ] ~doc:"Datapath fraction of movable cells (custom design).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let out = Arg.(value & opt (some string) None & info [ "out" ] ~docv:"BASE" ~doc:"Bookshelf output basename.") in
  let list_presets = Arg.(value & flag & info [ "list" ] ~doc:"List preset names and exit.") in
  let term = Term.(const run $ preset $ cells $ dp_fraction $ seed $ out $ list_presets) in
  Cmd.v (Cmd.info "dpp_gen" ~doc:"Synthetic datapath benchmark generator") term

let () = exit (Cmd.eval' cmd)
