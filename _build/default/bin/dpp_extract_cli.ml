(* dpp_extract_cli: run datapath extraction on a design and report the
   groups (and quality vs ground truth when labels exist).

     dpp_extract_cli --preset dp_alu32
     dpp_extract_cli --bookshelf /tmp/custom --min-slices 8              *)

open Cmdliner

let run preset bookshelf min_slices max_degree verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning));
  let design =
    match preset, bookshelf with
    | Some name, None -> (
      match Dpp_gen.Presets.by_name name with
      | Some spec -> Ok (Dpp_gen.Compose.build spec)
      | None -> Error (Printf.sprintf "unknown preset %S" name))
    | None, Some base -> (
      try Ok (Dpp_netlist.Bookshelf.read ~basename:base)
      with Dpp_netlist.Bookshelf.Parse_error m | Sys_error m -> Error m)
    | _ -> Error "give either --preset or --bookshelf"
  in
  match design with
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    1
  | Ok d ->
    let cfg =
      {
        Dpp_extract.Slicer.default_config with
        Dpp_extract.Slicer.min_slices;
        max_data_degree = max_degree;
      }
    in
    let t0 = Unix.gettimeofday () in
    let r = Dpp_extract.Slicer.run d cfg in
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "extracted %d groups in %.3fs (%d control seeds, %d chain seeds, %d grown)\n"
      (List.length r.Dpp_extract.Slicer.groups)
      dt r.Dpp_extract.Slicer.seeds_control r.Dpp_extract.Slicer.seeds_chain
      r.Dpp_extract.Slicer.columns_grown;
    List.iter
      (fun g ->
        Printf.printf "  %-8s %3d slices x %3d stages (%4d cells)  coupling %.3f  span %.2f\n"
          g.Dpp_netlist.Groups.g_name
          (Dpp_netlist.Groups.num_slices g)
          (Dpp_netlist.Groups.num_stages g)
          (Dpp_netlist.Groups.cell_count g)
          (Dpp_structure.Dgroup.internal_coupling d g)
          (Dpp_structure.Dgroup.slice_span d g))
      r.Dpp_extract.Slicer.groups;
    if d.Dpp_netlist.Design.groups <> [] then begin
      let m =
        Dpp_extract.Exmetrics.compare_to_truth ~truth:d.Dpp_netlist.Design.groups
          ~found:r.Dpp_extract.Slicer.groups
      in
      Printf.printf "vs ground truth: precision %.3f  recall %.3f  F1 %.3f  (%d/%d groups matched)\n"
        m.Dpp_extract.Exmetrics.precision m.Dpp_extract.Exmetrics.recall
        m.Dpp_extract.Exmetrics.f1 m.Dpp_extract.Exmetrics.matched_groups
        m.Dpp_extract.Exmetrics.found_groups
    end;
    0

let cmd =
  let preset = Arg.(value & opt (some string) None & info [ "preset" ] ~docv:"NAME") in
  let bookshelf = Arg.(value & opt (some string) None & info [ "bookshelf" ] ~docv:"BASE") in
  let min_slices = Arg.(value & opt int 4 & info [ "min-slices" ] ~doc:"Minimum group height.") in
  let max_degree =
    Arg.(value & opt int 5 & info [ "max-data-degree" ] ~doc:"Largest net treated as a data net.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ]) in
  let term = Term.(const run $ preset $ bookshelf $ min_slices $ max_degree $ verbose) in
  Cmd.v (Cmd.info "dpp_extract" ~doc:"Datapath regularity extraction") term

let () = exit (Cmd.eval' cmd)
