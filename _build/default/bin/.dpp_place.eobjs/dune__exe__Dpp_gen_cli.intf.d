bin/dpp_gen_cli.mli:
