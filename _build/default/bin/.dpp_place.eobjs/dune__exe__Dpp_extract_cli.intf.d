bin/dpp_extract_cli.mli:
