bin/dpp_place.ml: Arg Cmd Cmdliner Dpp_core Dpp_gen Dpp_netlist Dpp_viz Format List Logs Printf String Term
