bin/dpp_extract_cli.ml: Arg Cmd Cmdliner Dpp_extract Dpp_gen Dpp_netlist Dpp_structure List Logs Printf Term Unix
