bin/dpp_place.mli:
