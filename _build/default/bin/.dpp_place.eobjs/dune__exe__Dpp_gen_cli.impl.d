bin/dpp_gen_cli.ml: Arg Cmd Cmdliner Dpp_gen Dpp_netlist Format List Printf Term
