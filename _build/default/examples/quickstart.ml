(* Quickstart: generate a datapath-intensive design, run both placement
   flows, and print the comparison.

     dune exec examples/quickstart.exe                                     *)

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  (* 1. a synthetic benchmark: two adder pipelines in a sea of glue logic *)
  let spec =
    {
      Dpp_gen.Compose.sp_name = "quickstart";
      sp_seed = 7;
      sp_blocks =
        [ Dpp_gen.Compose.Regbank 16; Regbank 16; Adder 16; Regbank 16; Alu 16; Regbank 16 ];
      sp_random_cells = 500;
      sp_utilization = 0.7;
    }
  in
  let design = Dpp_gen.Compose.build spec in
  let stats = Dpp_netlist.Nstats.compute design in
  Format.printf "design: %a@." Dpp_netlist.Nstats.pp stats;
  (* 2. both flows on the same design *)
  let baseline, structure_aware = Dpp_core.Flow.run_both design Dpp_core.Config.structure_aware in
  (* 3. what happened *)
  (match structure_aware.Dpp_core.Flow.extraction with
  | Some (r, m) ->
    Format.printf "extraction: %d groups found, precision %.2f, recall %.2f@."
      (List.length r.Dpp_extract.Slicer.groups)
      m.Dpp_extract.Exmetrics.precision m.Dpp_extract.Exmetrics.recall
  | None -> ());
  Format.printf "baseline:        HPWL %8.0f   Steiner %8.0f   %.2fs@."
    baseline.Dpp_core.Flow.hpwl_final baseline.Dpp_core.Flow.steiner_final
    baseline.Dpp_core.Flow.total_time;
  Format.printf "structure-aware: HPWL %8.0f   Steiner %8.0f   %.2fs@."
    structure_aware.Dpp_core.Flow.hpwl_final structure_aware.Dpp_core.Flow.steiner_final
    structure_aware.Dpp_core.Flow.total_time;
  Format.printf "HPWL ratio (sa / baseline): %.4f  — below 1.0 means the paper's flow wins@."
    (structure_aware.Dpp_core.Flow.hpwl_final /. baseline.Dpp_core.Flow.hpwl_final)
