(* Driving the placement engines directly.

   The Flow module is one policy over the engine pieces; this example
   composes its own: weighted-average wirelength, soft alignment only
   (no rigid macros, no snapping), a tighter overflow target, and a final
   Bookshelf dump — the kind of experiment the library API is meant to
   make easy.

     dune exec examples/custom_flow.exe                                    *)

module Design = Dpp_netlist.Design
module Pins = Dpp_wirelen.Pins
module Hpwl = Dpp_wirelen.Hpwl

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let spec =
    {
      Dpp_gen.Compose.sp_name = "custom";
      sp_seed = 13;
      sp_blocks = [ Dpp_gen.Compose.Regbank 32; Regbank 32; Adder 32; Regbank 32 ];
      sp_random_cells = 400;
      sp_utilization = 0.7;
    }
  in
  let d = Dpp_gen.Compose.build spec in
  let pins = Pins.build d in
  (* 1. extraction, with a stricter minimum group height than the default *)
  let groups =
    (Dpp_extract.Slicer.run d
       { Dpp_extract.Slicer.default_config with Dpp_extract.Slicer.min_slices = 8 })
      .Dpp_extract.Slicer.groups
  in
  Format.printf "extracted %d groups@." (List.length groups);
  (* 2. initial placement *)
  let qp = Dpp_place.Qp.run ~seed:3 d in
  Format.printf "quadratic init: HPWL %.0f (PCG %d+%d iters)@."
    (Hpwl.total pins ~cx:qp.Dpp_place.Qp.cx ~cy:qp.Dpp_place.Qp.cy)
    qp.Dpp_place.Qp.iterations_x qp.Dpp_place.Qp.iterations_y;
  (* 3. global placement: WA model + soft alignment, tight spread *)
  let dgroups =
    Dpp_structure.Dgroup.build_all_ordered d groups ~cx:qp.Dpp_place.Qp.cx
      ~cy:qp.Dpp_place.Qp.cy
  in
  let gp_cfg =
    {
      Dpp_place.Gp.default_config with
      Dpp_place.Gp.model = Dpp_wirelen.Model.Wa;
      overflow_target = 0.08;
      beta = 2.0;
      groups = dgroups;
    }
  in
  let gp =
    Dpp_place.Gp.run d gp_cfg ~cx:qp.Dpp_place.Qp.cx ~cy:qp.Dpp_place.Qp.cy
      ~on_round:(fun ri ->
        Format.printf "  round %2d: hpwl %.0f overflow %.3f align %.2f@." ri.Dpp_place.Gp.round
          ri.Dpp_place.Gp.hpwl ri.Dpp_place.Gp.overflow ri.Dpp_place.Gp.align_error)
  in
  (* 4. legalize + refine *)
  let legal = Dpp_place.Legal.run d ~cx:gp.Dpp_place.Gp.cx ~cy:gp.Dpp_place.Gp.cy () in
  Dpp_place.Abacus.run d ~target_cx:gp.Dpp_place.Gp.cx ~legal ();
  let stats = Dpp_place.Detail.run d ~max_passes:4 ~legal () in
  let final = Hpwl.total pins ~cx:legal.Dpp_place.Legal.cx ~cy:legal.Dpp_place.Legal.cy in
  Format.printf "legal+detail: HPWL %.0f (detail recovered %.0f in %d moves)@." final
    (stats.Dpp_place.Detail.reorder_gain +. stats.Dpp_place.Detail.swap_gain)
    stats.Dpp_place.Detail.moves;
  (* 5. verify legality and export *)
  let violations =
    Dpp_place.Legality.check d ~cx:legal.Dpp_place.Legal.cx ~cy:legal.Dpp_place.Legal.cy
  in
  Format.printf "legality: %d violations@." (List.length violations);
  Pins.apply_centers d legal.Dpp_place.Legal.cx legal.Dpp_place.Legal.cy;
  let out = Filename.concat (Filename.get_temp_dir_name ()) "dpp_custom_flow" in
  Dpp_netlist.Bookshelf.write d ~basename:out;
  Format.printf "placed design written to %s.*@." out
