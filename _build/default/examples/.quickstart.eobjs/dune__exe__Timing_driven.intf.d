examples/timing_driven.mli:
