examples/alu_datapath.ml: Dpp_core Dpp_extract Dpp_gen Dpp_geom Dpp_netlist Format List Logs Printf String
