examples/quickstart.mli:
