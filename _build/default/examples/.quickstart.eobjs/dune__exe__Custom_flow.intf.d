examples/custom_flow.mli:
