examples/mixed_size.mli:
