examples/alu_datapath.mli:
