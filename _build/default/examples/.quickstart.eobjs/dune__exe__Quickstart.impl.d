examples/quickstart.ml: Dpp_core Dpp_extract Dpp_gen Dpp_netlist Format List Logs
