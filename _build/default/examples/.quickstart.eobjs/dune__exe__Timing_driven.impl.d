examples/timing_driven.ml: Dpp_core Dpp_gen Dpp_timing Dpp_wirelen Format List Logs
