examples/mixed_size.ml: Dpp_core Dpp_gen Dpp_netlist Dpp_place Dpp_structure Dpp_viz Dpp_wirelen Filename Format List Logs
