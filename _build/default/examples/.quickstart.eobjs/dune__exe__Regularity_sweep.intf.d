examples/regularity_sweep.mli:
