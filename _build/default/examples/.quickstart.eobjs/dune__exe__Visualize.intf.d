examples/visualize.mli:
