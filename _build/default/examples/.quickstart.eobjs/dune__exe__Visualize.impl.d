examples/visualize.ml: Dpp_congest Dpp_core Dpp_gen Dpp_netlist Dpp_viz Dpp_wirelen Filename Format Logs Printf
