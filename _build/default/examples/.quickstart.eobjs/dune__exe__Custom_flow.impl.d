examples/custom_flow.ml: Dpp_extract Dpp_gen Dpp_netlist Dpp_place Dpp_structure Dpp_wirelen Filename Format List Logs
