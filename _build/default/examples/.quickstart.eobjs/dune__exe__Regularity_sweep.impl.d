examples/regularity_sweep.ml: Dpp_core Dpp_gen Dpp_netlist Dpp_report Format List Logs Printf
