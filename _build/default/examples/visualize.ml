(* Plot what the flows do: side-by-side SVG of baseline vs structure-aware
   placements (datapath groups colored, glue gray), plus a congestion
   heat underlay on the single-design plot.

     dune exec examples/visualize.exe
     # then open /tmp/dpp_compare.svg and /tmp/dpp_congestion.svg          *)

module Pins = Dpp_wirelen.Pins

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let spec =
    match Dpp_gen.Presets.by_name "dp_add32" with
    | Some s -> s
    | None -> failwith "preset missing"
  in
  let design = Dpp_gen.Compose.build spec in
  let base, sa = Dpp_core.Flow.run_both design Dpp_core.Config.structure_aware in
  (* color the placements by the groups the structure-aware flow used *)
  let base_d =
    Dpp_netlist.Design.with_groups base.Dpp_core.Flow.design sa.Dpp_core.Flow.groups_used
  in
  let sa_d =
    Dpp_netlist.Design.with_groups sa.Dpp_core.Flow.design sa.Dpp_core.Flow.groups_used
  in
  let cmp = Filename.concat (Filename.get_temp_dir_name ()) "dpp_compare.svg" in
  Dpp_viz.Plot.compare_placements ~left:base_d ~right:sa_d
    ~left_title:
      (Printf.sprintf "baseline  HPWL %.0f" base.Dpp_core.Flow.hpwl_final)
    ~right_title:
      (Printf.sprintf "structure-aware  HPWL %.0f" sa.Dpp_core.Flow.hpwl_final)
    ~path:cmp ();
  Format.printf "side-by-side comparison: %s@." cmp;
  (* congestion underlay on the baseline *)
  let cx, cy = Pins.centers_of_design base_d in
  let rudy = Dpp_congest.Rudy.compute base_d ~cx ~cy in
  let st = Dpp_congest.Rudy.stats rudy in
  Format.printf "baseline congestion: max %.2f p95 %.2f (%.1f%% bins over)@."
    st.Dpp_congest.Rudy.max_ratio st.Dpp_congest.Rudy.p95_ratio
    (100.0 *. st.Dpp_congest.Rudy.overflowed_bins);
  let hot = Filename.concat (Filename.get_temp_dir_name ()) "dpp_congestion.svg" in
  Dpp_viz.Plot.placement ~congestion:rudy ~title:"baseline + RUDY heat" base_d ~path:hot;
  Format.printf "congestion plot: %s@." hot
