(* Timing-driven placement via net weighting.

   The classic loop: place -> lite STA -> criticality-based net weights ->
   re-place.  The weighted run shortens the critical path at a small
   wirelength cost.

     dune exec examples/timing_driven.exe                                  *)

module Pins = Dpp_wirelen.Pins
module Sta = Dpp_timing.Sta

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let spec =
    {
      Dpp_gen.Compose.sp_name = "timing";
      sp_seed = 21;
      sp_blocks = [ Dpp_gen.Compose.Regbank 16; Regbank 16; Adder 16; Regbank 16 ];
      sp_random_cells = 600;
      sp_utilization = 0.7;
    }
  in
  let design = Dpp_gen.Compose.build spec in
  let cfg = Dpp_core.Config.baseline in
  (* pass 1: plain wirelength-driven placement *)
  let r1 = Dpp_core.Flow.run design cfg in
  let sta = Sta.build design in
  let cx, cy = Pins.centers_of_design r1.Dpp_core.Flow.design in
  let t1 = Sta.analyze sta ~cx ~cy in
  Format.printf "pass 1: HPWL %.0f, critical delay %.1f (path %d cells, %d cycles broken)@."
    r1.Dpp_core.Flow.hpwl_final t1.Sta.critical_delay
    (List.length t1.Sta.critical_path)
    t1.Sta.broken_cycle_edges;
  (* pass 2: re-place with criticality-squared net weights *)
  let weighted = Sta.weighted_design ~alpha:4.0 design sta t1 in
  let r2 = Dpp_core.Flow.run weighted cfg in
  let cx2, cy2 = Pins.centers_of_design r2.Dpp_core.Flow.design in
  let t2 = Sta.analyze sta ~cx:cx2 ~cy:cy2 in
  (* measure plain (unweighted) HPWL of the second placement: the flow's
     own number is weighted and not comparable *)
  let plain_pins = Pins.build design in
  let hpwl2 = Dpp_wirelen.Hpwl.total plain_pins ~cx:cx2 ~cy:cy2 in
  Format.printf "pass 2: HPWL %.0f, critical delay %.1f@." hpwl2 t2.Sta.critical_delay;
  Format.printf "delay ratio %.3f at HPWL cost ratio %.3f@."
    (t2.Sta.critical_delay /. t1.Sta.critical_delay)
    (hpwl2 /. r1.Dpp_core.Flow.hpwl_final)
