(* Building a custom datapath with the block-level API.

   Shows the lower-level generator interface: instantiating blocks through
   a Kit, wiring their ports by hand, and inspecting what the extractor
   recovers — the workflow for adding new structured benchmark circuits.

     dune exec examples/alu_datapath.exe                                   *)

module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Builder = Dpp_netlist.Builder
module Groups = Dpp_netlist.Groups
module Kit = Dpp_gen.Kit
module Blocks = Dpp_gen.Blocks
module Stdcells = Dpp_gen.Stdcells

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  (* a hand-sized die: 48 rows of 260 sites *)
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:260.0 ~yh:480.0 in
  let b =
    Builder.create ~name:"alu_datapath" ~die ~row_height:Stdcells.row_height
      ~site_width:Stdcells.site_width ()
  in
  (* two register banks feed a 16-bit ALU; the result registers back *)
  let kit = Kit.create b ~prefix:"dp" in
  let rb_a = Blocks.register_bank kit ~name:"rb_a" ~bits:16 in
  let rb_b = Blocks.register_bank kit ~name:"rb_b" ~bits:16 in
  let alu = Blocks.alu kit ~name:"alu" ~bits:16 in
  let rb_r = Blocks.register_bank kit ~name:"rb_r" ~bits:16 in
  List.iter
    (fun blk ->
      match blk.Blocks.group with Some g -> Builder.add_group b g | None -> ())
    [ rb_a; rb_b; alu; rb_r ];
  (* wire ports: q buses of the source banks into the ALU operands,
     ALU results into the destination bank, bit by bit *)
  let bus_out blk stem =
    List.filter_map
      (fun (n, drv) ->
        if String.length n > String.length stem
           && String.sub n 0 (String.length stem) = stem
        then Some drv
        else None)
      blk.Blocks.out_ports
  in
  let bus_in blk stem =
    List.filter_map
      (fun (n, sinks) ->
        if String.length n > String.length stem
           && String.sub n 0 (String.length stem) = stem
        then Some sinks
        else None)
      blk.Blocks.in_ports
  in
  let connect_bus drivers sink_lists =
    List.iter2 (fun drv sinks -> ignore (Builder.add_net b (drv :: sinks))) drivers sink_lists
  in
  connect_bus (bus_out rb_a "q") (bus_in alu "a");
  connect_bus (bus_out rb_b "q") (bus_in alu "b");
  connect_bus (bus_out alu "r") (bus_in rb_r "d");
  (* everything else (register d-inputs, controls, carries) goes to pads *)
  let pad_idx = ref 0 in
  let in_pad sinks =
    let id =
      Builder.add_cell b
        ~name:(Printf.sprintf "pin%d" !pad_idx)
        ~master:"PAD_IN" ~w:1.0 ~h:1.0 ~kind:Types.Pad
    in
    incr pad_idx;
    let p = Builder.add_pin b ~cell:id ~dir:Types.Output () in
    ignore (Builder.add_net b (p :: sinks))
  in
  let out_pad drv =
    let id =
      Builder.add_cell b
        ~name:(Printf.sprintf "pout%d" !pad_idx)
        ~master:"PAD_OUT" ~w:1.0 ~h:1.0 ~kind:Types.Pad
    in
    incr pad_idx;
    let p = Builder.add_pin b ~cell:id ~dir:Types.Input () in
    ignore (Builder.add_net b [ drv; p ])
  in
  (* ports already consumed by the buses above must be skipped; the
     Builder raises on a double connection, so a wrong skip list cannot
     pass silently *)
  let starts_with s n = String.length n >= String.length s && String.sub n 0 (String.length s) = s in
  let skip_in blk n =
    (blk == alu && (starts_with "a" n || starts_with "b" n) && not (starts_with "cin" n))
    || (blk == rb_r && starts_with "d" n)
  in
  let skip_out blk n =
    ((blk == rb_a || blk == rb_b) && starts_with "q" n) || (blk == alu && starts_with "r" n)
  in
  List.iter
    (fun blk ->
      List.iter (fun (n, sinks) -> if not (skip_in blk n) then in_pad sinks) blk.Blocks.in_ports;
      List.iter (fun (n, drv) -> if not (skip_out blk n) then out_pad drv) blk.Blocks.out_ports)
    [ rb_a; rb_b; alu; rb_r ];
  let design = Builder.finish b in
  Format.printf "built %d cells, %d nets; %d labelled groups@."
    (Dpp_netlist.Design.num_cells design)
    (Dpp_netlist.Design.num_nets design)
    (List.length design.Dpp_netlist.Design.groups);
  (* what does the extractor see? *)
  let r = Dpp_extract.Slicer.run design Dpp_extract.Slicer.default_config in
  List.iter
    (fun g -> Format.printf "  extracted %a@." Groups.pp g)
    r.Dpp_extract.Slicer.groups;
  (* and place it.  This little block is almost all boundary I/O (its
     operand buses come straight from pads), so the default regularity
     filter would rightly stand down; lower the coupling threshold to
     force the structured treatment and see both numbers. *)
  let cfg = { Dpp_core.Config.structure_aware with Dpp_core.Config.min_coupling = 0.45 } in
  let base, sa = Dpp_core.Flow.run_both design cfg in
  Format.printf "structured groups used: %d@." (List.length sa.Dpp_core.Flow.groups_used);
  Format.printf "baseline HPWL %.0f, structure-aware HPWL %.0f (ratio %.3f)@."
    base.Dpp_core.Flow.hpwl_final sa.Dpp_core.Flow.hpwl_final
    (sa.Dpp_core.Flow.hpwl_final /. base.Dpp_core.Flow.hpwl_final)
