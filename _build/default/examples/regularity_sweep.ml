(* Where does structure-awareness pay?  A miniature of Figure 2: sweep the
   datapath fraction of a fixed-size design and watch the wirelength ratio
   cross 1.0.

     dune exec examples/regularity_sweep.exe                               *)

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Error);
  let cells = 1500 in
  let fractions = [ 0.1; 0.3; 0.5; 0.7 ] in
  Format.printf "sweeping datapath fraction at ~%d cells (smaller than the F2 bench run)@." cells;
  let rows =
    List.map
      (fun f ->
        let spec =
          Dpp_gen.Presets.scaled
            ~name:(Printf.sprintf "sw%.0f" (f *. 100.0))
            ~seed:(200 + int_of_float (f *. 100.0))
            ~cells ~dp_fraction:f
        in
        let d = Dpp_gen.Compose.build spec in
        let st = Dpp_netlist.Nstats.compute d in
        let base, sa = Dpp_core.Flow.run_both d Dpp_core.Config.structure_aware in
        let ratio = sa.Dpp_core.Flow.hpwl_final /. base.Dpp_core.Flow.hpwl_final in
        Format.printf "  dp-fraction %.2f: ratio %.4f@." st.Dpp_netlist.Nstats.s_datapath_fraction
          ratio;
        st.Dpp_netlist.Nstats.s_datapath_fraction, [ ratio ])
      fractions
  in
  let series =
    Dpp_report.Series.make ~title:"HPWL ratio vs datapath fraction" ~x_label:"dp-fraction"
      ~y_labels:[ "hpwl-ratio" ] rows
  in
  Dpp_report.Series.print series;
  let ratios = List.map (fun (_, ys) -> List.hd ys) rows in
  Format.printf "ratio sparkline: %s@." (Dpp_report.Series.sparkline ratios)
