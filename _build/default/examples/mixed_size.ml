(* Mixed-size placement: embedded RAM macros among datapath and glue.

   Movable multi-row macros ride the same rigid-macro machinery as the
   datapath arrays: one placement variable each in GP, snapped to the row
   grid, obstacles to the legalizer.  This example places a design with
   two RAMs and plots it.

     dune exec examples/mixed_size.exe                                     *)

module Pins = Dpp_wirelen.Pins

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let spec =
    {
      Dpp_gen.Compose.sp_name = "mixed";
      sp_seed = 33;
      sp_blocks =
        [
          Dpp_gen.Compose.Ram (36, 8, 16);
          Ram (28, 6, 8);
          Regbank 16;
          Regbank 16;
          Adder 16;
          Regbank 16;
        ];
      sp_random_cells = 700;
      sp_utilization = 0.6;
    }
  in
  let design = Dpp_gen.Compose.build spec in
  let macros = Dpp_structure.Dgroup.movable_macros design in
  Format.printf "design has %d movable macros and %d labelled datapath groups@."
    (List.length macros)
    (List.length design.Dpp_netlist.Design.groups);
  let base, sa = Dpp_core.Flow.run_both design Dpp_core.Config.structure_aware in
  Format.printf "baseline HPWL %.0f | structure-aware HPWL %.0f (ratio %.3f)@."
    base.Dpp_core.Flow.hpwl_final sa.Dpp_core.Flow.hpwl_final
    (sa.Dpp_core.Flow.hpwl_final /. base.Dpp_core.Flow.hpwl_final);
  (* confirm legality with the audit, including the multi-row macros *)
  List.iter
    (fun ((r : Dpp_core.Flow.result), tag) ->
      let cx, cy = Pins.centers_of_design r.Dpp_core.Flow.design in
      let v = Dpp_place.Legality.check r.Dpp_core.Flow.design ~cx ~cy in
      Format.printf "%s: %d legality violations@." tag (List.length v))
    [ (base, "baseline"); (sa, "structure-aware") ];
  let path = Filename.concat (Filename.get_temp_dir_name ()) "dpp_mixed.svg" in
  let placed =
    Dpp_netlist.Design.with_groups sa.Dpp_core.Flow.design sa.Dpp_core.Flow.groups_used
  in
  Dpp_viz.Plot.placement ~title:"mixed-size structure-aware" placed ~path;
  Format.printf "plot: %s@." path
