lib/wirelen/model.ml: Lse Wa
