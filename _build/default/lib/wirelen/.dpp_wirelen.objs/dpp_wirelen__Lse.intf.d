lib/wirelen/lse.mli: Pins
