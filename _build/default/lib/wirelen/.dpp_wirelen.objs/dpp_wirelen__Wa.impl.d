lib/wirelen/wa.ml: Array Dpp_netlist Pins
