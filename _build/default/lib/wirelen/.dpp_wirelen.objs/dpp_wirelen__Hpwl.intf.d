lib/wirelen/hpwl.mli: Dpp_netlist Pins
