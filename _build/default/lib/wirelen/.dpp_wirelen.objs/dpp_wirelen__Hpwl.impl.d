lib/wirelen/hpwl.ml: Array Dpp_netlist Pins
