lib/wirelen/model.mli: Pins
