lib/wirelen/pins.ml: Array Dpp_geom Dpp_netlist
