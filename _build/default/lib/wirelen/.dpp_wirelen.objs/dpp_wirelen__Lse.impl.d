lib/wirelen/lse.ml: Array Dpp_netlist Pins
