lib/wirelen/pins.mli: Dpp_netlist
