lib/wirelen/wa.mli: Pins
