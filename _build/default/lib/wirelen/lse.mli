(** Log-sum-exp smooth wirelength (Naylor et al. patent; the NTUplace3
    objective).  Per net and axis,

    [W = gamma * (log sum exp(x/gamma) + log sum exp(-x/gamma))]

    which overestimates HPWL and converges to it as [gamma -> 0].  Both
    value and gradient are computed with max-subtraction so large
    coordinates never overflow. *)

val value : Pins.t -> gamma:float -> cx:float array -> cy:float array -> float
(** Weighted total over all nets. *)

val value_grad :
  Pins.t ->
  gamma:float ->
  cx:float array ->
  cy:float array ->
  gx:float array ->
  gy:float array ->
  float
(** Weighted total; per-cell-center gradients are {e accumulated} into
    [gx]/[gy] (callers zero them first).  Fixed cells receive gradient
    contributions too — the placer simply ignores those slots. *)

val upper_bound_gap : gamma:float -> degree:int -> float
(** Theoretical per-net, per-axis gap bound [gamma * log(degree)]:
    [hpwl <= lse <= hpwl + 2 * gap].  Used by tests. *)
