type kind = Lse | Wa

let kind_to_string = function Lse -> "lse" | Wa -> "wa"

let kind_of_string = function
  | "lse" -> Some Lse
  | "wa" -> Some Wa
  | _ -> None

let value kind t ~gamma ~cx ~cy =
  match kind with
  | Lse -> Lse.value t ~gamma ~cx ~cy
  | Wa -> Wa.value t ~gamma ~cx ~cy

let value_grad kind t ~gamma ~cx ~cy ~gx ~gy =
  match kind with
  | Lse -> Lse.value_grad t ~gamma ~cx ~cy ~gx ~gy
  | Wa -> Wa.value_grad t ~gamma ~cx ~cy ~gx ~gy
