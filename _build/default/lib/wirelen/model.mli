(** Dispatch over the two smooth wirelength models so the global placer is
    parameterised by model choice (the F3/BM ablations flip this switch). *)

type kind = Lse | Wa

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

val value : kind -> Pins.t -> gamma:float -> cx:float array -> cy:float array -> float

val value_grad :
  kind ->
  Pins.t ->
  gamma:float ->
  cx:float array ->
  cy:float array ->
  gx:float array ->
  gy:float array ->
  float
