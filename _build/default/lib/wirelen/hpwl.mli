(** Half-perimeter wirelength — the exact (non-smooth) metric every table
    reports. *)

val net : Pins.t -> cx:float array -> cy:float array -> int -> float
(** Unweighted HPWL of one net (0 for degree < 2). *)

val total : Pins.t -> cx:float array -> cy:float array -> float
(** Net-weight-scaled sum over all nets. *)

val total_of_design : Dpp_netlist.Design.t -> float
(** Convenience: evaluates at the design's current placement. *)

val per_net : Pins.t -> cx:float array -> cy:float array -> float array
(** Unweighted HPWL per net (fresh array). *)
