module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types

type edge = { e_src : int; e_dst : int; e_net : int }

type t = {
  design : Design.t;
  delay : Delay.t;
  edges : edge array;  (** combinational-forward edges, back edges removed *)
  out_edges : int list array;  (** cell -> edge indices *)
  in_edges : int list array;
  is_endpoint : bool array;  (** registers and pads *)
  topo : int array;  (** cells in topological order of the DAG *)
  gate : float array;  (** per-cell intrinsic delay *)
  broken : int;
}

let src = Logs.Src.create "dpp.timing" ~doc:"static timing"

module Log = (val Logs.src_log src : Logs.LOG)

(* Driver of a net: the first Output pin's cell; None when the net has no
   output pin (e.g. pad-to-pad or degenerate nets). *)
let driver_of_net (d : Design.t) (net : Types.net) =
  let found = ref None in
  Array.iter
    (fun p ->
      let pin = Design.pin d p in
      if !found = None && pin.Types.p_dir = Types.Output then found := Some pin.Types.p_cell)
    net.Types.n_pins;
  !found

let build ?(delay = Delay.default) (d : Design.t) =
  let nc = Design.num_cells d in
  let is_endpoint =
    Array.init nc (fun i ->
        let c = Design.cell d i in
        Types.is_fixed_kind c.Types.c_kind || Delay.is_sequential c.Types.c_master)
  in
  let gate =
    Array.init nc (fun i -> delay.Delay.gate_delay (Design.cell d i).Types.c_master)
  in
  (* raw edges *)
  let raw = Dpp_util.Dyn.create () in
  Array.iter
    (fun (net : Types.net) ->
      match driver_of_net d net with
      | None -> ()
      | Some drv ->
        let seen = Hashtbl.create 8 in
        Array.iter
          (fun p ->
            let pin = Design.pin d p in
            let c = pin.Types.p_cell in
            if pin.Types.p_dir <> Types.Output && c <> drv && not (Hashtbl.mem seen c) then begin
              Hashtbl.add seen c ();
              Dpp_util.Dyn.push raw { e_src = drv; e_dst = c; e_net = net.Types.n_id }
            end)
          net.Types.n_pins)
    d.Design.nets;
  let raw = Dpp_util.Dyn.to_array raw in
  (* Break combinational cycles: DFS over the comb subgraph (edges whose
     destination is not an endpoint propagate), dropping back edges. *)
  let adj = Array.make nc [] in
  Array.iteri
    (fun k e -> if not is_endpoint.(e.e_dst) then adj.(e.e_src) <- (k, e.e_dst) :: adj.(e.e_src))
    raw;
  let color = Array.make nc 0 in
  (* 0 white, 1 gray, 2 black *)
  let keep = Array.make (Array.length raw) true in
  let broken = ref 0 in
  (* iterative DFS with an explicit stack of (node, remaining adjacency) *)
  for start = 0 to nc - 1 do
    if color.(start) = 0 then begin
      let stack = ref [ (start, ref adj.(start)) ] in
      color.(start) <- 1;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (u, rest) :: tl -> (
          match !rest with
          | [] ->
            color.(u) <- 2;
            stack := tl
          | (ek, v) :: more ->
            rest := more;
            if color.(v) = 1 then begin
              (* back edge: breaks a cycle *)
              keep.(ek) <- false;
              incr broken
            end
            else if color.(v) = 0 then begin
              color.(v) <- 1;
              stack := (v, ref adj.(v)) :: !stack
            end)
      done
    end
  done;
  if !broken > 0 then
    Log.warn (fun m -> m "broke %d combinational-loop edges" !broken);
  let edges = Array.of_list (List.filteri (fun k _ -> keep.(k)) (Array.to_list raw)) in
  let out_edges = Array.make nc [] and in_edges = Array.make nc [] in
  Array.iteri
    (fun k e ->
      out_edges.(e.e_src) <- k :: out_edges.(e.e_src);
      in_edges.(e.e_dst) <- k :: in_edges.(e.e_dst))
    edges;
  (* Kahn topological order over propagating edges (dst not endpoint) *)
  let indeg = Array.make nc 0 in
  Array.iter (fun e -> if not is_endpoint.(e.e_dst) then indeg.(e.e_dst) <- indeg.(e.e_dst) + 1) edges;
  let queue = Queue.create () in
  for i = 0 to nc - 1 do
    if indeg.(i) = 0 then Queue.push i queue
  done;
  let topo = Dpp_util.Dyn.create () in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Dpp_util.Dyn.push topo u;
    List.iter
      (fun ek ->
        let e = edges.(ek) in
        if not is_endpoint.(e.e_dst) then begin
          indeg.(e.e_dst) <- indeg.(e.e_dst) - 1;
          if indeg.(e.e_dst) = 0 then Queue.push e.e_dst queue
        end)
      out_edges.(u)
  done;
  {
    design = d;
    delay;
    edges;
    out_edges;
    in_edges;
    is_endpoint;
    topo = Dpp_util.Dyn.to_array topo;
    gate;
    broken = !broken;
  }

type report = {
  critical_delay : float;
  critical_path : int list;
  endpoint_arrivals : (int * float) list;
  broken_cycle_edges : int;
  net_criticality : float array;
}

let analyze t ~cx ~cy =
  let d = t.design in
  let nc = Design.num_cells d in
  let wire e =
    t.delay.Delay.wire_delay_per_unit
    *. (abs_float (cx.(e.e_src) -. cx.(e.e_dst)) +. abs_float (cy.(e.e_src) -. cy.(e.e_dst)))
  in
  (* launch time of a cell's output: endpoints launch at their own gate
     delay (clock-to-q / pad delay), combinational cells at arrival +
     gate *)
  let arr = Array.make nc 0.0 in
  let pred = Array.make nc (-1) in
  let launch u = (if t.is_endpoint.(u) then 0.0 else arr.(u)) +. t.gate.(u) in
  (* forward propagation in topo order *)
  Array.iter
    (fun u ->
      List.iter
        (fun ek ->
          let e = t.edges.(ek) in
          let a = launch e.e_src +. wire e in
          if a > arr.(e.e_dst) then begin
            arr.(e.e_dst) <- a;
            pred.(e.e_dst) <- e.e_src
          end)
        t.in_edges.(u))
    t.topo;
  (* endpoint arrivals (registers/pads with incoming edges) *)
  let endpoint_arrivals = ref [] in
  for i = 0 to nc - 1 do
    if t.is_endpoint.(i) && t.in_edges.(i) <> [] then begin
      (* endpoints are not in topo propagation above unless indeg 0; fold
         their arrival here *)
      List.iter
        (fun ek ->
          let e = t.edges.(ek) in
          let a = launch e.e_src +. wire e in
          if a > arr.(i) then begin
            arr.(i) <- a;
            pred.(i) <- e.e_src
          end)
        t.in_edges.(i);
      endpoint_arrivals := (i, arr.(i)) :: !endpoint_arrivals
    end
  done;
  let critical_delay, critical_end =
    List.fold_left
      (fun (best, cell) (i, a) -> if a > best then a, i else best, cell)
      (0.0, -1) !endpoint_arrivals
  in
  let critical_path =
    if critical_end < 0 then []
    else begin
      (* walk predecessors back to the launching endpoint; endpoints other
         than the capture point terminate the walk (register feedback --
         e.g. a DFF recirculation mux -- makes pred chains cyclic across
         endpoints, so running through them would never stop) *)
      let rec back c acc =
        if c < 0 then acc
        else if t.is_endpoint.(c) && acc <> [] then c :: acc
        else back pred.(c) (c :: acc)
      in
      back critical_end []
    end
  in
  (* backward pass: required launch times, then per-edge slack ->
     per-net criticality *)
  let req = Array.make nc infinity in
  let nn = Design.num_nets d in
  let net_criticality = Array.make nn 0.0 in
  if critical_delay > 0.0 then begin
    (* reverse topo: endpoints first *)
    let visit u =
      List.iter
        (fun ek ->
          let e = t.edges.(ek) in
          let dst_req =
            if t.is_endpoint.(e.e_dst) then critical_delay
            else req.(e.e_dst) -. t.gate.(e.e_dst)
          in
          let bound = dst_req -. wire e in
          if bound < req.(e.e_src) then req.(e.e_src) <- bound;
          let slack = dst_req -. wire e -. launch e.e_src in
          let crit = max 0.0 (min 1.0 (1.0 -. (slack /. critical_delay))) in
          if crit > net_criticality.(e.e_net) then net_criticality.(e.e_net) <- crit)
        t.out_edges.(u)
    in
    for k = Array.length t.topo - 1 downto 0 do
      visit t.topo.(k)
    done;
    (* endpoints can also drive edges (register outputs) *)
    for i = 0 to nc - 1 do
      if t.is_endpoint.(i) then visit i
    done
  end;
  {
    critical_delay;
    critical_path;
    endpoint_arrivals = List.rev !endpoint_arrivals;
    broken_cycle_edges = t.broken;
    net_criticality;
  }

let criticality _t report n = report.net_criticality.(n)

let weighted_design ?(alpha = 2.0) (d : Design.t) _t report =
  let nets =
    Array.map
      (fun (net : Types.net) ->
        let c = report.net_criticality.(net.Types.n_id) in
        { net with Types.n_weight = net.Types.n_weight *. (1.0 +. (alpha *. c *. c)) })
      d.Design.nets
  in
  { d with Design.nets; x = Array.copy d.Design.x; y = Array.copy d.Design.y }
