(** The delay model for the lite static timing analyzer: per-master gate
    delays (loosely proportional to logical effort / stage count of the
    synthetic library) plus a linear wire delay per Manhattan unit.

    Absolute values are arbitrary time units — only relative comparisons
    between placements of the same netlist are meaningful, which is all
    the evaluation uses them for. *)

type t = {
  gate_delay : string -> float;  (** master name -> intrinsic delay *)
  wire_delay_per_unit : float;  (** delay per Manhattan distance unit *)
}

val default : t
(** Gate delays: INV/BUF 1.0; NAND/NOR 1.2; AND/OR 1.5; XOR/XNOR/AOI/OAI
    1.8; MUX2 2.0; HA 2.5; FA 3.0; DFF/DFFR 1.5 (clock-to-q); unknown
    masters 1.5.  Wire delay 0.05 per unit (about one gate delay per 25
    sites, a plausible mid-2000s technology ratio). *)

val with_wire_delay : float -> t -> t

val is_sequential : string -> bool
(** Masters treated as registers (timing start/end points): DFF, DFFR. *)
