type t = { gate_delay : string -> float; wire_delay_per_unit : float }

let table =
  [
    "INV", 1.0;
    "BUF", 1.0;
    "NAND2", 1.2;
    "NOR2", 1.2;
    "AND2", 1.5;
    "OR2", 1.5;
    "XOR2", 1.8;
    "XNOR2", 1.8;
    "AOI21", 1.8;
    "OAI21", 1.8;
    "MUX2", 2.0;
    "HA", 2.5;
    "FA", 3.0;
    "DFF", 1.5;
    "DFFR", 1.5;
  ]

let default =
  {
    gate_delay =
      (fun master ->
        match List.assoc_opt master table with Some d -> d | None -> 1.5);
    wire_delay_per_unit = 0.05;
  }

let with_wire_delay w t = { t with wire_delay_per_unit = w }

let is_sequential master = master = "DFF" || master = "DFFR"
