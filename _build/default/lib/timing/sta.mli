(** Lite static timing analysis over a placed design.

    The timing graph has one node per cell; an edge runs from a net's
    driver cell to each of its sink cells.  Registers (see
    {!Delay.is_sequential}) and pads are timing {e endpoints}: arrivals do
    not propagate through them — paths start at register outputs / input
    pads (arrival = 0, the launching clock edge) and end at register
    inputs / output pads.  Combinational cycles (possible in generated or
    pathological netlists) are broken at DFS back edges with a warning
    counter in the result.

    Delays: per-master intrinsic gate delay plus a linear wire delay on
    the driver->sink Manhattan distance at the given placement.  The
    result of record is the {e critical path delay} — the quality metric
    timing-driven placement papers report; net criticalities feed the
    {!criticality} weighting hook. *)

type t
(** The levelized timing graph (placement-independent). *)

val build : ?delay:Delay.t -> Dpp_netlist.Design.t -> t

type report = {
  critical_delay : float;  (** worst endpoint arrival *)
  critical_path : int list;  (** cell ids, start to end *)
  endpoint_arrivals : (int * float) list;  (** per endpoint cell *)
  broken_cycle_edges : int;  (** combinational-loop edges ignored *)
  net_criticality : float array;  (** per net; prefer {!criticality} *)
}

val analyze : t -> cx:float array -> cy:float array -> report
(** Arrivals at the given cell-center placement. *)

val criticality : t -> report -> int -> float
(** Per-net criticality in [0, 1]: the worst "slack ratio" of any edge of
    the net — 1.0 for edges on the critical path, approaching 0 for edges
    with large slack against [critical_delay].  Used to derive net
    weights for timing-driven placement. *)

val weighted_design :
  ?alpha:float -> Dpp_netlist.Design.t -> t -> report -> Dpp_netlist.Design.t
(** A copy of the design whose net weights are
    [1 + alpha * criticality^2] (default [alpha = 2.0]) — the classic
    net-weighting hook for timing-driven analytical placement. *)
