lib/timing/sta.ml: Array Delay Dpp_netlist Dpp_util Hashtbl List Logs Queue
