lib/timing/sta.mli: Delay Dpp_netlist
