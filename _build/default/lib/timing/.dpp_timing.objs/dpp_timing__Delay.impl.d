lib/timing/delay.ml: List
