lib/timing/delay.mli:
