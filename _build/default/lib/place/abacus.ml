module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Rect = Dpp_geom.Rect

(* One Abacus cluster: [e] total weight, [w] total width, [q] the weighted
   sum of (target - offset) terms, [x] the placed left edge, [cells] in
   order. *)
type cluster = {
  mutable e : float;
  mutable q : float;
  mutable w : float;
  mutable x : float;
  mutable cells : int list;  (** reversed *)
}

let place ~lo ~hi c =
  let x = c.q /. c.e in
  c.x <- max lo (min (hi -. c.w) x)

let run (d : Design.t) ?(extra_obstacles = []) ?(skip = fun _ -> false) ~target_cx ~(legal : Legal.t) () =
  let nc = Design.num_cells d in
  (* group cells per row *)
  let per_row = Array.make d.Design.num_rows [] in
  for i = nc - 1 downto 0 do
    let r = legal.Legal.assignment.(i) in
    if r >= 0 && not (skip i) then per_row.(r) <- i :: per_row.(r)
  done;
  let obstacles =
    extra_obstacles
    @ (Array.to_list (Design.fixed_ids d)
      |> List.filter_map (fun i ->
             match (Design.cell d i).Types.c_kind with
             | Types.Fixed -> Rect.intersection (Design.cell_rect d i) d.Design.die
             | Types.Pad | Types.Movable -> None))
  in
  for r = 0 to d.Design.num_rows - 1 do
    let segments = Legal.row_segments_for_test d obstacles r in
    (* assign each cell of the row to the segment containing its legalized
       position *)
    let cells_by_segment =
      List.map
        (fun (lo, hi) ->
          let mine =
            List.filter
              (fun i ->
                let w = (Design.cell d i).Types.c_width in
                let xl = legal.Legal.cx.(i) -. (w /. 2.0) in
                xl >= lo -. 1e-6 && xl +. w <= hi +. 1e-6)
              per_row.(r)
          in
          lo, hi, mine)
        segments
    in
    List.iter
      (fun (lo, hi, cells) ->
        (* order by GP target left edge *)
        let ordered =
          List.map
            (fun i ->
              let w = (Design.cell d i).Types.c_width in
              target_cx.(i) -. (w /. 2.0), w, i)
            cells
          |> List.sort compare
        in
        let stack = ref [] in
        List.iter
          (fun (xl_target, w, i) ->
            let c = { e = 1.0; q = xl_target; w; x = 0.0; cells = [ i ] } in
            place ~lo ~hi c;
            let rec collapse c =
              match !stack with
              | prev :: rest when prev.x +. prev.w > c.x +. 1e-9 ->
                (* merge c into prev *)
                prev.q <- prev.q +. c.q -. (c.e *. prev.w);
                prev.e <- prev.e +. c.e;
                prev.w <- prev.w +. c.w;
                prev.cells <- c.cells @ prev.cells;
                stack := rest;
                place ~lo ~hi prev;
                collapse prev
              | _ -> stack := c :: !stack
            in
            collapse c)
          ordered;
        (* emit positions, snapped to the site grid (relative to the die
           origin) with a left-to-right aligned cursor so no overlap can
           reappear; cell widths are site multiples so alignment is
           preserved along the row *)
        let site = d.Design.site_width in
        let origin = d.Design.die.Rect.xl in
        let align_up v = origin +. (ceil (((v -. origin) /. site) -. 1e-9) *. site) in
        let align_round v = origin +. (Float.round ((v -. origin) /. site) *. site) in
        let cursor = ref (align_up lo) in
        List.iter
          (fun cluster ->
            let start = max !cursor (align_round cluster.x) in
            (* pull back (aligned) if the cluster would stick out *)
            let start =
              if start +. cluster.w > hi +. 1e-9 then
                max !cursor (align_round (hi -. cluster.w) -. site)
              else start
            in
            cursor := start;
            List.iter
              (fun i ->
                let w = (Design.cell d i).Types.c_width in
                legal.Legal.cx.(i) <- !cursor +. (w /. 2.0);
                cursor := !cursor +. w)
              (List.rev cluster.cells))
          (List.rev !stack))
      cells_by_segment
  done
