(** Abacus within-row placement (Spindler–Schlichtmann–Johannes): given the
    Tetris row assignment, re-place each row's cells at the minimum total
    squared displacement from their global-placement targets, by the
    classical cluster-merging dynamic program.  Runs independently per free
    segment, then snaps every cell to the site grid. *)

val run :
  Dpp_netlist.Design.t ->
  ?extra_obstacles:Dpp_geom.Rect.t list ->
  ?skip:(int -> bool) ->
  target_cx:float array ->
  legal:Legal.t ->
  unit ->
  unit
(** Mutates [legal.cx] in place ([legal.cy] stays on row centers).
    [target_cx] are the GP centers the displacement is measured against. *)
