(** Initial quadratic placement: minimise a quadratic net model with the
    fixed cells (pads, macros) as boundary conditions, solved per axis with
    Jacobi-PCG over the connectivity Laplacian.

    Net model: clique for nets of up to 4 cells (weight [1/(k-1)]), a
    Hamiltonian-cycle chain for larger nets (weight [2/k]) — the standard
    cheap star/clique compromise.  A weak anchor to the die center keeps
    the system positive definite for designs with no fixed pins, and a
    deterministic jitter of one site breaks the exact-overlap degeneracy
    the density model cannot see. *)

type result = {
  cx : float array;  (** cell centers, all cells (fixed untouched) *)
  cy : float array;
  iterations_x : int;
  iterations_y : int;
}

val run : ?seed:int -> Dpp_netlist.Design.t -> result
