(** Detailed placement: HPWL-greedy local refinement on a legal placement.

    Two move types, alternated for a bounded number of passes:

    - {b window reorder}: every window of three consecutive cells in a row
      is tried in all six orders (repacked at the window's left edge, which
      preserves legality because the total width is invariant);
    - {b global swap}: cells of equal width exchange positions across rows
      when that lowers the HPWL of their incident nets.

    Cells matched by [skip] (snapped datapath group members in the
    structure-aware flow) are never moved. *)

type stats = {
  passes : int;
  reorder_gain : float;  (** HPWL improvement from window reorders *)
  swap_gain : float;
  moves : int;
}

val run :
  Dpp_netlist.Design.t ->
  ?max_passes:int ->
  ?skip:(int -> bool) ->
  legal:Legal.t ->
  unit ->
  stats
(** Mutates [legal.cx]/[legal.cy] in place.  Default [max_passes] is 3;
    a pass that improves nothing stops the loop early. *)
