(** Tetris legalization: row assignment with left-to-right packing around
    fixed obstacles (and, in the structure-aware flow, around snapped
    datapath groups).

    Cells are processed in ascending target-x order; each is offered every
    row's free segments and takes the least-displacement feasible slot
    (squared Euclidean displacement of the cell center).  Site-grid
    snapping is applied by {!Abacus} afterwards. *)

type t = {
  assignment : int array;  (** cell -> row index (-1 for skipped/fixed cells) *)
  cx : float array;  (** legalized centers *)
  cy : float array;
  failed : int list;  (** cells that fit in no row (die overfull) *)
}

val run :
  Dpp_netlist.Design.t ->
  ?extra_obstacles:Dpp_geom.Rect.t list ->
  ?skip:(int -> bool) ->
  cx:float array ->
  cy:float array ->
  unit ->
  t
(** [skip] marks cells to leave untouched (snapped group members).  Input
    arrays are not modified. *)

val row_segments_for_test : Dpp_netlist.Design.t -> Dpp_geom.Rect.t list -> int -> (float * float) list
(** The free x-spans of a row given obstacle rectangles — shared with
    {!Abacus} and the tests. *)
