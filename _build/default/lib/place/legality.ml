module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Rect = Dpp_geom.Rect

type violation =
  | Outside of int
  | Off_row of int
  | Off_site of int
  | Overlap of int * int
  | Overlaps_fixed of int * int

let cell_rect_at (d : Design.t) i ~cx ~cy =
  let c = Design.cell d i in
  let w = c.Types.c_width and h = c.Types.c_height in
  Rect.make
    ~xl:(cx.(i) -. (w /. 2.0))
    ~yl:(cy.(i) -. (h /. 2.0))
    ~xh:(cx.(i) +. (w /. 2.0))
    ~yh:(cy.(i) +. (h /. 2.0))

let on_grid ~step ~origin ~tolerance v =
  let q = (v -. origin) /. step in
  abs_float (q -. Float.round q) <= tolerance /. step

let check ?(tolerance = 1e-6) (d : Design.t) ~cx ~cy =
  let movable = Design.movable_ids d in
  let die = d.Design.die in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  Array.iter
    (fun i ->
      let r = cell_rect_at d i ~cx ~cy in
      if not (Rect.contains_rect (Rect.expand die tolerance) r) then add (Outside i);
      if not (on_grid ~step:d.Design.row_height ~origin:die.Rect.yl ~tolerance r.Rect.yl) then
        add (Off_row i);
      if not (on_grid ~step:d.Design.site_width ~origin:die.Rect.xl ~tolerance r.Rect.xl) then
        add (Off_site i))
    movable;
  (* overlap sweep: cells join every row they span (multi-row macros span
     several), then neighbours within a row are compared *)
  let rows = Hashtbl.create 64 in
  Array.iter
    (fun i ->
      let h = (Design.cell d i).Types.c_height in
      let r0 = Design.row_of_y d (cy.(i) -. (h /. 2.0) +. 1e-9) in
      let r1 = Design.row_of_y d (cy.(i) +. (h /. 2.0) -. 1e-9) in
      for r = r0 to r1 do
        Hashtbl.replace rows r (i :: Option.value ~default:[] (Hashtbl.find_opt rows r))
      done)
    movable;
  Hashtbl.iter
    (fun _ cells ->
      let arr = Array.of_list cells in
      Array.sort
        (fun a b ->
          Float.compare
            (cx.(a) -. ((Design.cell d a).Types.c_width /. 2.0))
            (cx.(b) -. ((Design.cell d b).Types.c_width /. 2.0)))
        arr;
      for k = 0 to Array.length arr - 2 do
        let a = arr.(k) and b = arr.(k + 1) in
        let ra = cell_rect_at d a ~cx ~cy and rb = cell_rect_at d b ~cx ~cy in
        if ra.Rect.xh > rb.Rect.xl +. tolerance then
          add (Overlap (min a b, max a b))
      done)
    rows;
  (* fixed-cell overlaps *)
  let fixed_rects =
    Array.to_list (Design.fixed_ids d)
    |> List.filter_map (fun i ->
           match (Design.cell d i).Types.c_kind with
           | Types.Fixed -> Some (i, Design.cell_rect d i)
           | Types.Pad | Types.Movable -> None)
  in
  Array.iter
    (fun i ->
      let r = cell_rect_at d i ~cx ~cy in
      List.iter
        (fun (j, rf) ->
          if Rect.overlap_area r rf > tolerance then add (Overlaps_fixed (i, j)))
        fixed_rects)
    movable;
  List.rev !violations

let is_legal d ~cx ~cy = check d ~cx ~cy = []

let pp_violation (d : Design.t) ppf v =
  let name i = (Design.cell d i).Types.c_name in
  match v with
  | Outside i -> Format.fprintf ppf "cell %s outside the die" (name i)
  | Off_row i -> Format.fprintf ppf "cell %s not on a row boundary" (name i)
  | Off_site i -> Format.fprintf ppf "cell %s off the site grid" (name i)
  | Overlap (a, b) -> Format.fprintf ppf "cells %s and %s overlap" (name a) (name b)
  | Overlaps_fixed (a, b) -> Format.fprintf ppf "cell %s overlaps fixed %s" (name a) (name b)
