lib/place/legality.mli: Dpp_netlist Format
