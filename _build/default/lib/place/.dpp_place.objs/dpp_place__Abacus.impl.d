lib/place/abacus.ml: Array Dpp_geom Dpp_netlist Float Legal List
