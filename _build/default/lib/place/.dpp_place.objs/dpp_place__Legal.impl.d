lib/place/legal.ml: Array Dpp_geom Dpp_netlist List Logs
