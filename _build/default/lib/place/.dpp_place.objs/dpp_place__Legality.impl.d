lib/place/legality.ml: Array Dpp_geom Dpp_netlist Float Format Hashtbl List Option
