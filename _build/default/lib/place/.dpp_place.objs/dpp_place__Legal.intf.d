lib/place/legal.mli: Dpp_geom Dpp_netlist
