lib/place/gp.ml: Array Dpp_density Dpp_geom Dpp_netlist Dpp_numeric Dpp_structure Dpp_wirelen List
