lib/place/flip.mli: Dpp_netlist
