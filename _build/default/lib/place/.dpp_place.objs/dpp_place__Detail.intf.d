lib/place/detail.mli: Dpp_netlist Legal
