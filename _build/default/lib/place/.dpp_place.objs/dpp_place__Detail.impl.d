lib/place/detail.ml: Array Dpp_geom Dpp_netlist Dpp_wirelen Float Hashtbl Legal List Option
