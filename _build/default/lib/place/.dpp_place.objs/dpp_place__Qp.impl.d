lib/place/qp.ml: Array Dpp_geom Dpp_netlist Dpp_numeric Dpp_util
