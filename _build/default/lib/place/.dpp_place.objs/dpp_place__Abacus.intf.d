lib/place/abacus.mli: Dpp_geom Dpp_netlist Legal
