lib/place/flip.ml: Array Dpp_geom Dpp_netlist Dpp_wirelen
