lib/place/gp.mli: Dpp_geom Dpp_netlist Dpp_structure Dpp_wirelen
