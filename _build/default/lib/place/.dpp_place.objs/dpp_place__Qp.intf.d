lib/place/qp.mli: Dpp_netlist
