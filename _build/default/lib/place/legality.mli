(** Placement legality audit: the invariant the legalizer must establish
    and detailed placement must preserve.  Used by the test suite as an
    oracle and available to users for debugging.

    A placement is legal when every movable cell
    - lies fully inside the die,
    - sits exactly on a row (its bottom edge on a row boundary),
    - is aligned to the site grid,
    - overlaps no other movable cell and no fixed cell. *)

type violation =
  | Outside of int  (** cell id *)
  | Off_row of int
  | Off_site of int
  | Overlap of int * int  (** cell ids, first < second *)
  | Overlaps_fixed of int * int  (** movable, fixed *)

val check :
  ?tolerance:float ->
  Dpp_netlist.Design.t ->
  cx:float array ->
  cy:float array ->
  violation list
(** [tolerance] (default 1e-6) absorbs floating-point dust.  Coordinates
    are cell centers, as everywhere in the placer. *)

val is_legal : Dpp_netlist.Design.t -> cx:float array -> cy:float array -> bool

val pp_violation : Dpp_netlist.Design.t -> Format.formatter -> violation -> unit
