module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Rect = Dpp_geom.Rect
module Csr = Dpp_numeric.Csr
module Pcg = Dpp_numeric.Pcg
module Rng = Dpp_util.Rng

type result = { cx : float array; cy : float array; iterations_x : int; iterations_y : int }

let run ?(seed = 1) (d : Design.t) =
  let nc = Design.num_cells d in
  let movable = Design.movable_ids d in
  let m = Array.length movable in
  let var_of = Array.make nc (-1) in
  Array.iteri (fun v i -> var_of.(i) <- v) movable;
  let cx = Array.init nc (fun i -> Design.cell_center_x d i) in
  let cy = Array.init nc (fun i -> Design.cell_center_y d i) in
  if m > 0 then begin
    let trip = Csr.Triplets.create ~rows:m ~cols:m in
    let bx = Array.make m 0.0 and by = Array.make m 0.0 in
    let add_edge u v w =
      let vu = var_of.(u) and vv = var_of.(v) in
      match vu >= 0, vv >= 0 with
      | true, true ->
        Csr.Triplets.add trip vu vu w;
        Csr.Triplets.add trip vv vv w;
        Csr.Triplets.add trip vu vv (-.w);
        Csr.Triplets.add trip vv vu (-.w)
      | true, false ->
        Csr.Triplets.add trip vu vu w;
        bx.(vu) <- bx.(vu) +. (w *. cx.(v));
        by.(vu) <- by.(vu) +. (w *. cy.(v))
      | false, true ->
        Csr.Triplets.add trip vv vv w;
        bx.(vv) <- bx.(vv) +. (w *. cx.(u));
        by.(vv) <- by.(vv) +. (w *. cy.(u))
      | false, false -> ()
    in
    let h = Dpp_netlist.Hypergraph.build d in
    for n = 0 to Design.num_nets d - 1 do
      let cells = Dpp_netlist.Hypergraph.cells_of_net h n in
      let k = Array.length cells in
      if k >= 2 then begin
        let weight = (Design.net d n).Types.n_weight in
        if k <= 4 then begin
          let w = weight /. float_of_int (k - 1) in
          for a = 0 to k - 1 do
            for b = a + 1 to k - 1 do
              add_edge cells.(a) cells.(b) w
            done
          done
        end
        else begin
          let w = 2.0 *. weight /. float_of_int k in
          for a = 0 to k - 1 do
            add_edge cells.(a) cells.((a + 1) mod k) w
          done
        end
      end
    done;
    (* weak center anchor for positive definiteness *)
    let anchor = 1e-4 in
    let ctr_x = Rect.center_x d.Design.die and ctr_y = Rect.center_y d.Design.die in
    for v = 0 to m - 1 do
      Csr.Triplets.add trip v v anchor;
      bx.(v) <- bx.(v) +. (anchor *. ctr_x);
      by.(v) <- by.(v) +. (anchor *. ctr_y)
    done;
    let a = Csr.Triplets.to_csr trip in
    let sol_x, st_x = Pcg.solve ~max_iter:600 ~tol:1e-7 a bx in
    let sol_y, st_y = Pcg.solve ~max_iter:600 ~tol:1e-7 a by in
    (* scatter, with deterministic one-site jitter to break ties *)
    let rng = Rng.create seed in
    let die = d.Design.die in
    Array.iteri
      (fun v i ->
        let jx = Rng.float_in rng (-.d.Design.site_width) d.Design.site_width in
        let jy = Rng.float_in rng (-.d.Design.site_width) d.Design.site_width in
        let c = Design.cell d i in
        let hw = c.Types.c_width /. 2.0 and hh = c.Types.c_height /. 2.0 in
        cx.(i) <- max (die.Rect.xl +. hw) (min (die.Rect.xh -. hw) (sol_x.(v) +. jx));
        cy.(i) <- max (die.Rect.yl +. hh) (min (die.Rect.yh -. hh) (sol_y.(v) +. jy)))
      movable;
    { cx; cy; iterations_x = st_x.Pcg.iterations; iterations_y = st_y.Pcg.iterations }
  end
  else { cx; cy; iterations_x = 0; iterations_y = 0 }
