module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Rect = Dpp_geom.Rect

type segment = { seg_lo : float; seg_hi : float; mutable cursor : float }

type t = {
  assignment : int array;
  cx : float array;
  cy : float array;
  failed : int list;
}

let src = Logs.Src.create "dpp.legal" ~doc:"legalization"

module Log = (val Logs.src_log src : Logs.LOG)

(* Free segments of row [r]: the die span minus obstacle x-intervals. *)
let row_segments (d : Design.t) obstacles r =
  let die = d.Design.die in
  let y_lo = Design.row_y d r and y_hi = Design.row_y d r +. d.Design.row_height in
  let blocked =
    List.filter_map
      (fun (ob : Rect.t) ->
        if ob.Rect.yl < y_hi -. 1e-9 && ob.Rect.yh > y_lo +. 1e-9 then
          Some (max die.Rect.xl ob.Rect.xl, min die.Rect.xh ob.Rect.xh)
        else None)
      obstacles
    |> List.sort compare
  in
  let segments = ref [] in
  let cursor = ref die.Rect.xl in
  List.iter
    (fun (lo, hi) ->
      if lo > !cursor then
        segments := { seg_lo = !cursor; seg_hi = lo; cursor = !cursor } :: !segments;
      cursor := max !cursor hi)
    blocked;
  if !cursor < die.Rect.xh then
    segments := { seg_lo = !cursor; seg_hi = die.Rect.xh; cursor = !cursor } :: !segments;
  List.rev !segments

let row_segments_for_test d obstacles r =
  List.map (fun s -> s.seg_lo, s.seg_hi) (row_segments d obstacles r)

(* Greedy free-list legalization: rows hold mutable free-interval lists;
   each cell (in ascending target-x order) takes the least-cost feasible
   interval position, splitting the interval.  Unlike cursor-based Tetris
   this never strands capacity behind a cursor, so it only fails when the
   die is genuinely overfull.  The row scan expands outward from the
   target row and stops once the vertical displacement alone exceeds the
   best cost found (the usual pruning). *)
let run (d : Design.t) ?(extra_obstacles = []) ?(skip = fun _ -> false) ~cx ~cy () =
  let nc = Design.num_cells d in
  let obstacles =
    extra_obstacles
    @ (Array.to_list (Design.fixed_ids d)
      |> List.filter_map (fun i ->
             match (Design.cell d i).Types.c_kind with
             | Types.Fixed -> Rect.intersection (Design.cell_rect d i) d.Design.die
             | Types.Pad | Types.Movable -> None))
  in
  (* free intervals per row, as (lo, hi) lists sorted by lo *)
  let free =
    Array.init d.Design.num_rows (fun r ->
        ref (List.map (fun s -> s.seg_lo, s.seg_hi) (row_segments d obstacles r)))
  in
  let out_cx = Array.copy cx and out_cy = Array.copy cy in
  let assignment = Array.make nc (-1) in
  let todo =
    Array.to_list (Design.movable_ids d)
    |> List.filter (fun i -> not (skip i))
    |> List.map (fun i ->
           let w = (Design.cell d i).Types.c_width in
           cx.(i) -. (w /. 2.0), i)
    |> List.sort compare
  in
  let failed = ref [] in
  let place_in_row r w target_xl =
    (* best interval of row [r]: minimal |xl - target| with xl feasible *)
    let best = ref None in
    List.iter
      (fun (lo, hi) ->
        if hi -. lo >= w -. 1e-9 then begin
          let xl = min (max target_xl lo) (hi -. w) in
          let cost = abs_float (xl -. target_xl) in
          match !best with
          | Some (bc, _, _, _) when bc <= cost -> ()
          | Some _ | None -> best := Some (cost, lo, hi, xl)
        end)
      !(free.(r));
    !best
  in
  List.iter
    (fun (target_xl, i) ->
      let c = Design.cell d i in
      let w = c.Types.c_width in
      let target_row = Design.row_of_y d (cy.(i) -. (c.Types.c_height /. 2.0)) in
      let rh = d.Design.row_height in
      let best = ref None in
      let consider r =
        match place_in_row r w target_xl with
        | None -> ()
        | Some (dx, lo, hi, xl) ->
          let dy = abs_float (float_of_int (r - target_row)) *. rh in
          let cost = (dx *. dx) +. (dy *. dy) in
          (match !best with
          | Some (bc, _, _, _, _, _) when bc <= cost -> ()
          | Some _ | None -> best := Some (cost, r, lo, hi, xl, dy))
      in
      let dr = ref 0 in
      let continue = ref true in
      while !continue do
        let lo_row = target_row - !dr and hi_row = target_row + !dr in
        let any_valid = ref false in
        if lo_row >= 0 then begin
          any_valid := true;
          consider lo_row
        end;
        if !dr > 0 && hi_row < d.Design.num_rows then begin
          any_valid := true;
          consider hi_row
        end;
        (* prune: further rows cost at least (dr * rh)^2 *)
        let vert = float_of_int !dr *. rh in
        (match !best with
        | Some (bc, _, _, _, _, _) when vert *. vert > bc -> continue := false
        | Some _ | None -> ());
        if not !any_valid then continue := false;
        incr dr
      done;
      match !best with
      | Some (_, r, lo, hi, xl, _) ->
        (* split the interval *)
        let rest =
          List.concat_map
            (fun (l, h) ->
              if l = lo && h = hi then begin
                let left = if xl -. l > 1e-9 then [ l, xl ] else [] in
                let right = if h -. (xl +. w) > 1e-9 then [ xl +. w, h ] else [] in
                left @ right
              end
              else [ l, h ])
            !(free.(r))
        in
        free.(r) := rest;
        assignment.(i) <- r;
        out_cx.(i) <- xl +. (w /. 2.0);
        out_cy.(i) <- Design.row_y d r +. (d.Design.row_height /. 2.0)
      | None ->
        Log.err (fun m -> m "no row fits cell %s (w=%.1f)" c.Types.c_name w);
        failed := i :: !failed)
    todo;
  { assignment; cx = out_cx; cy = out_cy; failed = List.rev !failed }
