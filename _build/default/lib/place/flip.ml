module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Orient = Dpp_geom.Orient
module Pins = Dpp_wirelen.Pins
module Hpwl = Dpp_wirelen.Hpwl
module Hypergraph = Dpp_netlist.Hypergraph

type stats = { flips : int; gain : float }

let run (d : Design.t) ~cx ~cy =
  let pins = Pins.build d in
  let h = Hypergraph.build d in
  let flips = ref 0 and gain = ref 0.0 in
  let incident_hpwl i =
    let acc = ref 0.0 in
    Hypergraph.iter_nets_of_cell h i (fun n -> acc := !acc +. Hpwl.net pins ~cx ~cy n);
    !acc
  in
  Array.iter
    (fun i ->
      let c = Design.cell d i in
      if c.Types.c_height <= d.Design.row_height +. 1e-9 then begin
        let before = incident_hpwl i in
        (* mirror this cell's pin x-offsets in the shared Pins structure *)
        let saved = Array.map (fun p -> pins.Pins.off_x.(p)) c.Types.c_pins in
        Array.iter (fun p -> pins.Pins.off_x.(p) <- -.pins.Pins.off_x.(p)) c.Types.c_pins;
        let after = incident_hpwl i in
        if after < before -. 1e-9 then begin
          d.Design.orient.(i) <- Orient.flip_x d.Design.orient.(i);
          incr flips;
          gain := !gain +. (before -. after)
        end
        else
          Array.iteri (fun k p -> pins.Pins.off_x.(p) <- saved.(k)) c.Types.c_pins
      end)
    (Design.movable_ids d);
  { flips = !flips; gain = !gain }
