(** Cell orientation optimization: mirror a standard cell about its
    vertical axis ([N] <-> [FN]) when that shortens the HPWL of its
    incident nets.  Flipping keeps the cell's footprint and center, so it
    can never break legality, and it preserves datapath-array geometry —
    every cell is a candidate, group members included.

    A cheap, classical post-pass: typical gains are a fraction of a
    percent of HPWL, concentrated on asymmetric-pin cells. *)

type stats = { flips : int; gain : float }

val run : Dpp_netlist.Design.t -> cx:float array -> cy:float array -> stats
(** Greedy single pass over all movable cells at the given placement;
    mutates [design.orient] for accepted flips.  Multi-row macros (RAMs)
    are skipped — their pin symmetry assumptions do not hold. *)
