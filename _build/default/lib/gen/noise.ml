module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Rng = Dpp_util.Rng

(* The design's entity arrays are immutable in shape, so rewiring is a
   functional update of the net pin arrays plus consistent p_net fields. *)
let rewire ~rng ~fraction (d : Design.t) =
  if fraction < 0.0 || fraction > 1.0 then invalid_arg "Noise.rewire: fraction out of range";
  let nn = Design.num_nets d in
  (* work on mutable copies of the pin lists *)
  let net_pins = Array.init nn (fun n -> Array.copy (Design.net d n).Types.n_pins) in
  let is_driver p = (Design.pin d p).Types.p_dir = Types.Output in
  (* pick a random non-driver pin slot of net [n], if any *)
  let sink_slot n =
    let pins = net_pins.(n) in
    let sinks = ref [] in
    Array.iteri (fun k p -> if not (is_driver p) then sinks := k :: !sinks) pins;
    match !sinks with
    | [] -> None
    | l -> Some (List.nth l (Rng.int rng (List.length l)))
  in
  let eligible n = Array.length net_pins.(n) >= 2 in
  let swaps = int_of_float (Float.round (fraction *. float_of_int nn /. 2.0)) in
  let attempts = ref 0 in
  let done_swaps = ref 0 in
  while !done_swaps < swaps && !attempts < 20 * (swaps + 1) do
    incr attempts;
    let a = Rng.int rng nn and b = Rng.int rng nn in
    if a <> b && eligible a && eligible b then begin
      match sink_slot a, sink_slot b with
      | Some ka, Some kb ->
        let pa = net_pins.(a).(ka) and pb = net_pins.(b).(kb) in
        (* a pin may appear only once per net: skip degenerate swaps *)
        if
          (not (Array.exists (fun p -> p = pb) net_pins.(a)))
          && not (Array.exists (fun p -> p = pa) net_pins.(b))
        then begin
          net_pins.(a).(ka) <- pb;
          net_pins.(b).(kb) <- pa;
          incr done_swaps
        end
      | _, _ -> ()
    end
  done;
  (* rebuild consistent nets and pins *)
  let owner = Array.make (Design.num_pins d) (-1) in
  Array.iteri (fun n pins -> Array.iter (fun p -> owner.(p) <- n) pins) net_pins;
  let nets =
    Array.init nn (fun n -> { (Design.net d n) with Types.n_pins = net_pins.(n) })
  in
  let pins =
    Array.init (Design.num_pins d) (fun p -> { (Design.pin d p) with Types.p_net = owner.(p) })
  in
  {
    d with
    Design.nets;
    pins;
    x = Array.copy d.Design.x;
    y = Array.copy d.Design.y;
    orient = Array.copy d.Design.orient;
  }
