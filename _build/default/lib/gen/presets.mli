(** The benchmark suite (Table 1).  Names follow the paper's style:
    datapath-intensive designs of increasing size plus a mostly-random
    control, all deterministic in the given seed. *)

val suite : Compose.spec list
(** The seven Table-1..4 benchmarks: [dp_add16], [dp_alu16], [dp_shift32],
    [dp_mult8], [dp_mix_s], [dp_mix_l], [rand_ctrl]. *)

val by_name : string -> Compose.spec option

val names : string list

val scaled : name:string -> seed:int -> cells:int -> dp_fraction:float -> Compose.spec
(** Parameterized benchmark for the sweeps: a mix of adders/ALUs/register
    banks sized so datapath cells are roughly [dp_fraction] of the movable
    cells and the total is roughly [cells].  [dp_fraction] in [0, 0.95]. *)
