(** Parameterized gate-level datapath block generators.

    Each generator instantiates its cells and {e internal} nets through a
    {!Kit.t} and returns its boundary as ports: an input port is a list of
    sink pins waiting for a driver, an output port a driver pin waiting for
    sinks — {!Compose} stitches both into the surrounding design.  Each
    block also returns its exact ground-truth {!Dpp_netlist.Groups.t}
    (slices x stages), which is what extraction precision/recall is
    measured against.

    All blocks are bit-sliced with full per-slice isomorphism, matching the
    structures the DAC-2012 extractor targets: carry chains (adder,
    comparator), slice-spanning control nets (ALU op-select, shifter shift
    amount, register-bank clock/write-enable) and 2-D arrays
    (multiplier). *)

type block = {
  blk_name : string;
  in_ports : (string * int list) list;  (** logical input -> sink pins *)
  out_ports : (string * int) list;  (** logical output -> driver pin *)
  group : Dpp_netlist.Groups.t option;
      (** ground truth; [None] for structures with no bit-sliced regularity
          (RAM macros) *)
  cell_ids : int list;
}

val ripple_adder : Kit.t -> name:string -> bits:int -> block
(** Gate-level ripple-carry adder; 5 cells per bit (P/G/T cones), a carry
    chain, and per-bit a/b/s ports.  Slices = bits, stages = 5. *)

val alu : Kit.t -> name:string -> bits:int -> block
(** Per bit: AND/OR/XOR lanes plus an adder cone and a 4:1 mux tree driven
    by two op-select control nets spanning every bit.  Slices = bits,
    stages = 11. *)

val barrel_shifter : Kit.t -> name:string -> bits:int -> block
(** Log-depth barrel rotator; per level a bit-spanning select control net.
    Slices = bits, stages = ceil(log2 bits).  [bits] must be >= 2. *)

val register_bank : Kit.t -> name:string -> bits:int -> block
(** Per bit MUX2 (write-enable recirculation) -> DFF -> BUF, with clock and
    write-enable control nets.  Slices = bits, stages = 3. *)

val comparator : Kit.t -> name:string -> bits:int -> block
(** Per bit XNOR with an equality AND chain.  Slices = bits, stages = 2. *)

val multiplier : Kit.t -> name:string -> bits:int -> block
(** Carry-save array multiplier on [bits x bits] partial products: AND +
    FA/HA per array position.  Slices = bits (rows), stages = 2 * bits;
    row 0 has adder holes. *)

val carry_select_adder : Kit.t -> name:string -> bits:int -> block_size:int -> block
(** Carry-select adder: per bit two ripple cones (assuming carry-in 0 and
    1) plus a sum mux; at each [block_size] boundary a carry mux selects
    the block's true carry, which also drives the block's sum-mux selects
    (a block-spanning control net).  [bits] must be a multiple of
    [block_size] >= 2.  Slices = bits, stages = 11. *)

val priority_encoder : Kit.t -> name:string -> bits:int -> block
(** Priority encoder / arbiter chain: grant_i = req_i AND NOT
    any-higher-request, with an OR chain accumulating requests.  Slices =
    bits, stages = 3 (INV / AND / OR). *)

val ram : Kit.t -> name:string -> w_sites:int -> h_rows:int -> data_bits:int -> block
(** A movable multi-row macro (embedded memory): one cell of
    [w_sites x h_rows * row_height] with [data_bits] input and [data_bits]
    output pins on its left/right edges plus clock/enable controls.  No
    ground-truth group (nothing bit-sliced to extract); the flow places it
    as a movable macro.  [h_rows] must be >= 2. *)

val mux_tree : Kit.t -> name:string -> bits:int -> inputs:int -> block
(** Per output bit a balanced MUX2 tree selecting among [inputs] words,
    with level-select control nets spanning all bits.  [inputs] must be a
    power of two >= 2.  Slices = bits, stages = inputs - 1. *)
