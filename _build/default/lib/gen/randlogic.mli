(** Rent-style random glue logic: the irregular sea of gates the datapath
    blocks are embedded in.  Nets are wired with an index-locality window so
    the cloud has realistic short/long net mix rather than uniform spaghetti,
    and flip-flops contribute a shared clock control net. *)

type t = {
  rl_in_ports : (string * int list) list;  (** unconnected sink bundles *)
  rl_out_ports : (string * int) list;  (** unconnected driver pins *)
  rl_cells : int list;
}

val cloud : Kit.t -> rng:Dpp_util.Rng.t -> cells:int -> t
(** Generates [cells] cells.  Roughly 90% of outputs are wired internally
    (fanout 1–6, window-local), the rest exported as out ports; leftover
    input pins are exported in small bundles as in ports.  DFF clock pins
    are collected into a single ["clk"] in port. *)
