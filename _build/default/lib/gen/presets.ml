type spec = Compose.spec

let mk ?(utilization = 0.7) name seed blocks random_cells =
  {
    Compose.sp_name = name;
    sp_seed = seed;
    sp_blocks = blocks;
    sp_random_cells = random_cells;
    sp_utilization = utilization;
  }

(* Pipeline-structured block sets: register banks feed and drain every
   functional unit, so nearly every W-wide bus finds a block-to-block
   partner during composition — the signature of datapath-intensive
   designs (operands rarely come from random logic). *)
let adder_pipe w = [ Compose.Regbank w; Regbank w; Adder w; Regbank w ]
let alu_pipe w = [ Compose.Regbank w; Regbank w; Alu w; Regbank w ]
let shift_pipe w = [ Compose.Regbank w; Shifter w; Regbank w ]

let suite : spec list =
  [
    (* datapath-heavy: ~55-70% of movable cells in labelled groups; sizes
       chosen so legalization noise (a few percent on sub-1k designs) does
       not swamp the comparison *)
    mk "dp_add32" 101 (adder_pipe 32 @ adder_pipe 32 @ adder_pipe 32) 1100;
    mk "dp_alu32" 102 (alu_pipe 32 @ alu_pipe 16 @ adder_pipe 32) 1400;
    mk "dp_shift32" 103
      (shift_pipe 32 @ shift_pipe 32 @ shift_pipe 32 @ [ Compose.Muxtree (32, 4); Regbank 32 ])
      1300;
    mk "dp_mult8" 104
      [
        Compose.Multiplier 8; Multiplier 8; Multiplier 8; Regbank 8; Regbank 8; Regbank 8;
        Regbank 8; Regbank 8; Regbank 8; Adder 16; Regbank 16; Regbank 16;
      ]
      900;
    mk "dp_mix_s" 105
      (adder_pipe 32 @ alu_pipe 16 @ [ Compose.Comparator 16; Regbank 16 ])
      800;
    mk "dp_mix_l" 106
      (alu_pipe 32 @ adder_pipe 32 @ adder_pipe 32 @ shift_pipe 32 @ adder_pipe 16
      @ [
          Compose.Multiplier 8; Muxtree (16, 4); Comparator 32; Regbank 16;
          (* mixed-size: embedded memories ride the movable-macro path *)
          Ram (40, 8, 16); Ram (32, 6, 16);
        ])
      2400;
    (* control: almost no datapath, the regularity extractor should stand
       down and the flows should tie *)
    mk "rand_ctrl" 107 [ Compose.Adder 8 ] 3000;
  ]

let names = List.map (fun s -> s.Compose.sp_name) suite

let by_name n = List.find_opt (fun s -> s.Compose.sp_name = n) suite

(* Datapath "units" for parameterized sweeps: a large balanced pipeline
   stage and a small one, combined greedily so the requested fraction is
   approximated even on small designs. *)
let unit_blocks = adder_pipe 32 @ [ Compose.Alu 16; Regbank 16 ]
let unit_cells = (3 * (32 * 3)) + (32 * 5) + (16 * 11) + (16 * 3)
let small_unit_blocks = adder_pipe 16
let small_unit_cells = (3 * (16 * 3)) + (16 * 5)

let scaled ~name ~seed ~cells ~dp_fraction =
  if dp_fraction < 0.0 || dp_fraction > 0.95 then
    invalid_arg "Presets.scaled: dp_fraction out of range";
  if cells < 100 then invalid_arg "Presets.scaled: too few cells";
  let dp_target = int_of_float (dp_fraction *. float_of_int cells) in
  let units = dp_target / unit_cells in
  let small_units = (dp_target - (units * unit_cells)) / small_unit_cells in
  let blocks =
    List.concat (List.init units (fun _ -> unit_blocks))
    @ List.concat (List.init small_units (fun _ -> small_unit_blocks))
  in
  let dp_cells = (units * unit_cells) + (small_units * small_unit_cells) in
  let random = max 50 (cells - dp_cells) in
  mk name seed blocks random
