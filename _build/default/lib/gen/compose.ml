module Rng = Dpp_util.Rng
module Rect = Dpp_geom.Rect
module Builder = Dpp_netlist.Builder
module Types = Dpp_netlist.Types

type block_spec =
  | Adder of int
  | Alu of int
  | Shifter of int
  | Regbank of int
  | Comparator of int
  | Multiplier of int
  | Muxtree of int * int
  | Cselect of int * int
  | Prienc of int
  | Ram of int * int * int

type spec = {
  sp_name : string;
  sp_seed : int;
  sp_blocks : block_spec list;
  sp_random_cells : int;
  sp_utilization : float;
}

let block_spec_to_string = function
  | Adder b -> Printf.sprintf "adder%d" b
  | Alu b -> Printf.sprintf "alu%d" b
  | Shifter b -> Printf.sprintf "shift%d" b
  | Regbank b -> Printf.sprintf "reg%d" b
  | Comparator b -> Printf.sprintf "cmp%d" b
  | Multiplier b -> Printf.sprintf "mult%d" b
  | Muxtree (b, k) -> Printf.sprintf "mux%dx%d" b k
  | Cselect (b, k) -> Printf.sprintf "csel%d_%d" b k
  | Prienc b -> Printf.sprintf "pri%d" b
  | Ram (w, h, bits) -> Printf.sprintf "ram%dx%d_%d" w h bits

(* ------------------------------------------------------------------ *)
(* Port bookkeeping                                                   *)
(* ------------------------------------------------------------------ *)

type iport = { ip_owner : int; ip_stem : string; ip_bit : int; ip_sinks : int list }
type oport = { op_owner : int; op_stem : string; op_bit : int; op_driver : int }

(* "s12" -> ("s", 12); "w3_5" -> ("w3_", 5); "clk" -> ("clk", -1). *)
let split_bit name =
  let n = String.length name in
  let rec first_digit i = if i > 0 && name.[i - 1] >= '0' && name.[i - 1] <= '9' then first_digit (i - 1) else i in
  let d = first_digit n in
  if d = n then name, -1
  else String.sub name 0 d, int_of_string (String.sub name d (n - d))

type bus = { bus_stem : string; bus_owner : int; bus_bits : int list (* port indices, bit order *) }

(* Collect maximal runs of >= 4 consecutive bits of one (owner, stem) into
   buses; everything else stays scalar.  [bit_of k] and [key_of k] abstract
   over iport/oport arrays. *)
let find_buses ~count ~key_of ~bit_of =
  let tbl = Hashtbl.create 64 in
  for k = 0 to count - 1 do
    let key = key_of k in
    let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key (k :: prev)
  done;
  let buses = ref [] and scalars = ref [] in
  Hashtbl.iter
    (fun (owner, stem) ks ->
      let ks = List.sort (fun a b -> compare (bit_of a) (bit_of b)) ks in
      (* split into consecutive runs *)
      let flush run =
        match run with
        | [] -> ()
        | _ when List.length run >= 4 && bit_of (List.hd run) >= 0 ->
          buses := { bus_stem = stem; bus_owner = owner; bus_bits = List.rev run } :: !buses
        | _ -> scalars := List.rev_append run !scalars
      in
      let rec go run = function
        | [] -> flush run
        | k :: rest ->
          (match run with
          | prev :: _ when bit_of k = bit_of prev + 1 -> go (k :: run) rest
          | [] -> go [ k ] rest
          | _ ->
            flush run;
            go [ k ] rest)
      in
      go [] ks)
    tbl;
  (* Deterministic order: hash tables iterate in memory order, so sort. *)
  let bus_cmp a b = compare (a.bus_owner, a.bus_stem) (b.bus_owner, b.bus_stem) in
  List.sort bus_cmp !buses, List.sort compare !scalars

(* ------------------------------------------------------------------ *)

let die_for_area ~movable_area ~utilization =
  let core_area = movable_area /. utilization in
  let rh = Stdcells.row_height in
  let side = sqrt core_area in
  let rows = max 4 (int_of_float (ceil (side /. rh))) in
  let height = float_of_int rows *. rh in
  let width = Float.round (core_area /. height) in
  let width = max width (4.0 *. Stdcells.site_width) in
  Rect.make ~xl:0.0 ~yl:0.0 ~xh:width ~yh:height

let build spec =
  if spec.sp_blocks = [] && spec.sp_random_cells = 0 then
    invalid_arg "Compose.build: empty specification";
  if spec.sp_utilization <= 0.0 || spec.sp_utilization > 1.0 then
    invalid_arg "Compose.build: utilization must be in (0, 1]";
  let rng = Rng.create spec.sp_seed in
  let provisional = Rect.make ~xl:0.0 ~yl:0.0 ~xh:100.0 ~yh:Stdcells.row_height in
  let b =
    Builder.create ~name:spec.sp_name ~die:provisional ~row_height:Stdcells.row_height
      ~site_width:Stdcells.site_width ()
  in
  (* Instantiate blocks; owner ids 0.. for blocks, -1 for glue. *)
  let iports = Dpp_util.Dyn.create () in
  let oports = Dpp_util.Dyn.create () in
  let add_iports owner ports =
    List.iter
      (fun (name, sinks) ->
        let stem, bit = split_bit name in
        Dpp_util.Dyn.push iports { ip_owner = owner; ip_stem = stem; ip_bit = bit; ip_sinks = sinks })
      ports
  in
  let add_oports owner ports =
    List.iter
      (fun (name, driver) ->
        let stem, bit = split_bit name in
        Dpp_util.Dyn.push oports { op_owner = owner; op_stem = stem; op_bit = bit; op_driver = driver })
      ports
  in
  List.iteri
    (fun owner bs ->
      let name = Printf.sprintf "%s_%d" (block_spec_to_string bs) owner in
      let kit = Kit.create b ~prefix:name in
      let blk =
        match bs with
        | Adder bits -> Blocks.ripple_adder kit ~name ~bits
        | Alu bits -> Blocks.alu kit ~name ~bits
        | Shifter bits -> Blocks.barrel_shifter kit ~name ~bits
        | Regbank bits -> Blocks.register_bank kit ~name ~bits
        | Comparator bits -> Blocks.comparator kit ~name ~bits
        | Multiplier bits -> Blocks.multiplier kit ~name ~bits
        | Muxtree (bits, inputs) -> Blocks.mux_tree kit ~name ~bits ~inputs
        | Cselect (bits, block_size) -> Blocks.carry_select_adder kit ~name ~bits ~block_size
        | Prienc bits -> Blocks.priority_encoder kit ~name ~bits
        | Ram (w_sites, h_rows, data_bits) -> Blocks.ram kit ~name ~w_sites ~h_rows ~data_bits
      in
      (match blk.Blocks.group with Some g -> Builder.add_group b g | None -> ());
      add_iports owner blk.Blocks.in_ports;
      add_oports owner blk.Blocks.out_ports)
    spec.sp_blocks;
  if spec.sp_random_cells > 0 then begin
    let kit = Kit.create b ~prefix:"glue" in
    let cloud = Randlogic.cloud kit ~rng:(Rng.split rng) ~cells:spec.sp_random_cells in
    add_iports (-1) cloud.Randlogic.rl_in_ports;
    add_oports (-1) cloud.Randlogic.rl_out_ports
  end;
  (* Die sizing now that the area is known. *)
  let die = die_for_area ~movable_area:(Builder.movable_area b) ~utilization:spec.sp_utilization in
  Builder.set_die b die;
  (* ---------------- stitching ---------------- *)
  let ni = Dpp_util.Dyn.length iports and no = Dpp_util.Dyn.length oports in
  let ip k = Dpp_util.Dyn.get iports k in
  let op k = Dpp_util.Dyn.get oports k in
  let in_buses, in_scalars =
    find_buses ~count:ni ~key_of:(fun k -> (ip k).ip_owner, (ip k).ip_stem) ~bit_of:(fun k -> (ip k).ip_bit)
  in
  let out_buses, out_scalars =
    find_buses ~count:no ~key_of:(fun k -> (op k).op_owner, (op k).op_stem) ~bit_of:(fun k -> (op k).op_bit)
  in
  let used_in = Array.make ni false and used_out = Array.make no false in
  let pad_count = ref 0 in
  let new_pad dir =
    let kind_name = match dir with Types.Output -> "PAD_IN" | Types.Input | Types.Inout -> "PAD_OUT" in
    let id =
      Builder.add_cell b
        ~name:(Printf.sprintf "pad_%d" !pad_count)
        ~master:kind_name ~w:1.0 ~h:1.0 ~kind:Types.Pad
    in
    incr pad_count;
    Builder.add_pin b ~cell:id ~dir ~dx:0.5 ~dy:0.5 ()
  in
  (* 1. Pair equal-width buses bit-by-bit (different owners preferred). *)
  let out_bus_pool = ref out_buses in
  let take_out_bus width owner =
    let rec pick best acc = function
      | [] -> best, List.rev acc
      | bus :: rest ->
        if List.length bus.bus_bits = width then
          match best with
          | None -> pick (Some bus) acc rest
          | Some best_bus when best_bus.bus_owner = owner && bus.bus_owner <> owner ->
            (* prefer a cross-block pairing: put the same-owner one back *)
            pick (Some bus) (best_bus :: acc) rest
          | Some _ -> pick best (bus :: acc) rest
        else pick best (bus :: acc) rest
    in
    let best, rest = pick None [] !out_bus_pool in
    (match best with Some _ -> out_bus_pool := rest | None -> ());
    best
  in
  let leftover_in_scalars = ref (List.rev in_scalars) in
  List.iter
    (fun ib ->
      let width = List.length ib.bus_bits in
      match take_out_bus width ib.bus_owner with
      | Some ob when Rng.bernoulli rng 0.9 ->
        List.iter2
          (fun ik ok ->
            used_in.(ik) <- true;
            used_out.(ok) <- true;
            ignore (Builder.add_net b ((op ok).op_driver :: (ip ik).ip_sinks)))
          ib.bus_bits ob.bus_bits
      | Some ob ->
        (* deliberately unpaired 10%: back into the pool as scalars *)
        out_bus_pool := ob :: !out_bus_pool;
        leftover_in_scalars := List.rev_append ib.bus_bits !leftover_in_scalars
      | None -> leftover_in_scalars := List.rev_append ib.bus_bits !leftover_in_scalars)
    in_buses;
  (* 2. Unpaired buses connect to bus-ordered boundary pads: real designs
     route bus I/O through adjacent pads, and consecutive pad creation
     order lands them adjacently on the ring. *)
  (* in-buses that found no partner: wire every bit to its own input pad,
     in bit order *)
  let still_unpaired =
    List.filter (fun ik -> not used_in.(ik)) !leftover_in_scalars
    |> List.sort (fun a b -> compare ((ip a).ip_owner, (ip a).ip_stem, (ip a).ip_bit)
                      ((ip b).ip_owner, (ip b).ip_stem, (ip b).ip_bit))
  in
  (* count run lengths per (owner, stem): runs >= 4 get pad buses *)
  let runs = Hashtbl.create 64 in
  List.iter
    (fun ik ->
      let key = (ip ik).ip_owner, (ip ik).ip_stem in
      Hashtbl.replace runs key (1 + Option.value ~default:0 (Hashtbl.find_opt runs key)))
    still_unpaired;
  List.iter
    (fun ik ->
      let key = (ip ik).ip_owner, (ip ik).ip_stem in
      if (ip ik).ip_bit >= 0 && Option.value ~default:0 (Hashtbl.find_opt runs key) >= 4 then begin
        used_in.(ik) <- true;
        let pad = new_pad Types.Output in
        ignore (Builder.add_net b (pad :: (ip ik).ip_sinks))
      end)
    still_unpaired;
  (* unpaired out-buses: per-bit output pads, in bit order *)
  List.iter
    (fun bus ->
      if List.length bus.bus_bits >= 4 then
        List.iter
          (fun ok ->
            if not used_out.(ok) then begin
              used_out.(ok) <- true;
              let pad = new_pad Types.Input in
              ignore (Builder.add_net b [ (op ok).op_driver; pad ])
            end)
          bus.bus_bits)
    !out_bus_pool;
  (* 3'. Remaining out ports (scalars) form the driver pool. *)
  let driver_pool = Dpp_util.Dyn.create () in
  List.iter (fun bus -> List.iter (fun ok -> Dpp_util.Dyn.push driver_pool ok) bus.bus_bits) !out_bus_pool;
  List.iter (fun ok -> Dpp_util.Dyn.push driver_pool ok) out_scalars;
  let drivers = Dpp_util.Dyn.to_array driver_pool in
  Rng.shuffle rng drivers;
  let driver_cursor = ref 0 in
  let next_driver () =
    let rec go () =
      if !driver_cursor >= Array.length drivers then None
      else begin
        let ok = drivers.(!driver_cursor) in
        incr driver_cursor;
        if used_out.(ok) then go () else Some ok
      end
    in
    go ()
  in
  (* 3. Every remaining in port gets a driver: a pad sometimes, a leftover
     block/glue output otherwise. *)
  let scalars = Array.of_list !leftover_in_scalars in
  Rng.shuffle rng scalars;
  Array.iter
    (fun ik ->
      if not used_in.(ik) then begin
        used_in.(ik) <- true;
        let driver =
          if Rng.bernoulli rng 0.15 then new_pad Types.Output
          else
            match next_driver () with
            | Some ok ->
              used_out.(ok) <- true;
              (op ok).op_driver
            | None -> new_pad Types.Output
        in
        ignore (Builder.add_net b (driver :: (ip ik).ip_sinks))
      end)
    scalars;
  (* 4. Every remaining out port drives an output pad. *)
  for ok = 0 to no - 1 do
    if not used_out.(ok) then begin
      used_out.(ok) <- true;
      let pad_pin = new_pad Types.Input in
      ignore (Builder.add_net b [ (op ok).op_driver; pad_pin ])
    end
  done;
  (* 5. Place the pads around the die boundary, uniformly by index. *)
  let pads = ref [] in
  for i = 0 to !pad_count - 1 do
    match Builder.cell_id b (Printf.sprintf "pad_%d" i) with
    | Some id -> pads := id :: !pads
    | None -> ()
  done;
  let pads = Array.of_list (List.rev !pads) in
  let perimeter = 2.0 *. (Rect.width die +. Rect.height die) in
  Array.iteri
    (fun i id ->
      let s = (float_of_int i +. 0.5) /. float_of_int (max 1 (Array.length pads)) *. perimeter in
      let w = Rect.width die and h = Rect.height die in
      let x, y =
        if s < w then s, 0.0
        else if s < w +. h then w -. 1.0, s -. w
        else if s < (2.0 *. w) +. h then w -. (s -. w -. h), h -. 1.0
        else 0.0, h -. (s -. (2.0 *. w) -. h)
      in
      let x = max 0.0 (min (w -. 1.0) x) and y = max 0.0 (min (h -. 1.0) y) in
      Builder.set_position b id ~x ~y)
    pads;
  Builder.finish b
