(** The synthetic standard-cell library.

    Dimensions are in database units with [site_width = 1.0] and
    [row_height = 10.0]; widths follow rough industrial proportions (an
    inverter is 2 sites, a full-adder cone 7).  Pins are placed on a
    uniform horizontal strip at mid-height so Bookshelf round trips are
    exact. *)

type master = {
  m_name : string;
  m_width : float;
  m_inputs : int;
  m_outputs : int;
}

val row_height : float
val site_width : float

val inv : master
val buf : master
val nand2 : master
val nor2 : master
val and2 : master
val or2 : master
val xor2 : master
val xnor2 : master
val mux2 : master
val aoi21 : master
val oai21 : master
val ha : master
val fa : master
val dff : master
val dffr : master

val all : master list

val find : string -> master option
(** Lookup by [m_name]. *)

val pin_offset : master -> index:int -> float * float
(** Offset of the [index]-th pin (inputs first, then outputs) from the
    cell's lower-left corner. *)

val area : master -> float

val combinational : master list
(** Masters without state, used by the random-logic cloud. *)
