(** Instantiation helpers shared by the datapath block generators and the
    random-logic cloud: wraps {!Dpp_netlist.Builder} with master-driven pin
    creation and hierarchical naming. *)

type t

type instance = {
  id : int;  (** cell id *)
  ins : int array;  (** input pin ids, master order *)
  outs : int array;  (** output pin ids *)
}

val create : Dpp_netlist.Builder.t -> prefix:string -> t

val builder : t -> Dpp_netlist.Builder.t

val fresh_name : t -> string -> string
(** [fresh_name t stem] is ["<prefix>/<stem>_<k>"] with a per-stem counter. *)

val cell : t -> Stdcells.master -> instance
(** Instantiate a movable cell of the given master with all its pins. *)

val named_cell : t -> Stdcells.master -> string -> instance
(** Like {!cell} but with an explicit name stem. *)

val net : t -> ?name:string -> int list -> int
(** Create a net over the given pins. *)
