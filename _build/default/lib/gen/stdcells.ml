type master = { m_name : string; m_width : float; m_inputs : int; m_outputs : int }

let row_height = 10.0
let site_width = 1.0

let mk name width inputs outputs =
  { m_name = name; m_width = float_of_int width *. site_width; m_inputs = inputs; m_outputs = outputs }

let inv = mk "INV" 2 1 1
let buf = mk "BUF" 2 1 1
let nand2 = mk "NAND2" 3 2 1
let nor2 = mk "NOR2" 3 2 1
let and2 = mk "AND2" 3 2 1
let or2 = mk "OR2" 3 2 1
let xor2 = mk "XOR2" 4 2 1
let xnor2 = mk "XNOR2" 4 2 1
let mux2 = mk "MUX2" 5 3 1
let aoi21 = mk "AOI21" 4 3 1
let oai21 = mk "OAI21" 4 3 1
let ha = mk "HA" 5 2 2
let fa = mk "FA" 7 3 2
let dff = mk "DFF" 6 2 1
let dffr = mk "DFFR" 7 3 1

let all =
  [ inv; buf; nand2; nor2; and2; or2; xor2; xnor2; mux2; aoi21; oai21; ha; fa; dff; dffr ]

let find name = List.find_opt (fun m -> m.m_name = name) all

let pin_offset m ~index =
  let total = m.m_inputs + m.m_outputs in
  if index < 0 || index >= total then invalid_arg "Stdcells.pin_offset: bad index";
  let frac = (float_of_int index +. 1.0) /. (float_of_int total +. 1.0) in
  frac *. m.m_width, row_height /. 2.0

let area m = m.m_width *. row_height

let combinational =
  [ inv; buf; nand2; nor2; and2; or2; xor2; xnor2; mux2; aoi21; oai21; ha; fa ]
