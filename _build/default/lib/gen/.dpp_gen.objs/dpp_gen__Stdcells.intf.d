lib/gen/stdcells.mli:
