lib/gen/kit.ml: Array Dpp_netlist Hashtbl Option Printf Stdcells String
