lib/gen/noise.ml: Array Dpp_netlist Dpp_util Float List
