lib/gen/randlogic.ml: Array Dpp_util Float Fun Kit List Option Printf Stdcells
