lib/gen/blocks.mli: Dpp_netlist Kit
