lib/gen/presets.mli: Compose
