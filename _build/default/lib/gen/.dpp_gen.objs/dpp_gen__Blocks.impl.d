lib/gen/blocks.ml: Array Dpp_netlist Kit List Option Printf Stdcells
