lib/gen/kit.mli: Dpp_netlist Stdcells
