lib/gen/compose.ml: Array Blocks Dpp_geom Dpp_netlist Dpp_util Float Hashtbl Kit List Option Printf Randlogic Stdcells String
