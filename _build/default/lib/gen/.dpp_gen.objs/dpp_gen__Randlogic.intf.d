lib/gen/randlogic.mli: Dpp_util Kit
