lib/gen/noise.mli: Dpp_netlist Dpp_util
