lib/gen/presets.ml: Compose List
