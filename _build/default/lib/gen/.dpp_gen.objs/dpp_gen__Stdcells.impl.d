lib/gen/stdcells.ml: List
