lib/gen/compose.mli: Dpp_netlist
