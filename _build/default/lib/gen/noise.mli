(** Netlist noise injection for extraction-robustness studies.

    Real datapaths are never perfectly regular: synthesis restructures odd
    bits, scan chains thread through slices, ECOs rewire nets.  [rewire]
    models this by swapping sink pins between randomly chosen net pairs —
    each swap preserves all pin and net counts but breaks the structural
    isomorphism the extractor keys on at two places.  Figure 5 sweeps the
    noise fraction against extraction recall. *)

val rewire :
  rng:Dpp_util.Rng.t -> fraction:float -> Dpp_netlist.Design.t -> Dpp_netlist.Design.t
(** [rewire ~rng ~fraction d] returns a new design in which approximately
    [fraction] of the nets had one sink pin exchanged with another net.
    Only non-driver pins are swapped (every net keeps its driver), nets of
    degree < 2 are left alone, and the ground-truth group annotations are
    carried over unchanged (they still describe where the structure {e
    was}).  [fraction] must be in [0, 1].  The input design is not
    modified. *)
