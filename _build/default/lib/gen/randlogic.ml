module Rng = Dpp_util.Rng

type t = {
  rl_in_ports : (string * int list) list;
  rl_out_ports : (string * int) list;
  rl_cells : int list;
}

(* Master mix: mostly simple gates, some muxes/complex gates, ~9% DFFs. *)
let master_table =
  [
    15, Stdcells.inv;
    5, Stdcells.buf;
    14, Stdcells.nand2;
    9, Stdcells.nor2;
    9, Stdcells.and2;
    9, Stdcells.or2;
    7, Stdcells.xor2;
    4, Stdcells.xnor2;
    7, Stdcells.mux2;
    6, Stdcells.aoi21;
    6, Stdcells.oai21;
    9, Stdcells.dff;
  ]

let total_weight = List.fold_left (fun acc (w, _) -> acc + w) 0 master_table

let pick_master rng =
  let r = Rng.int rng total_weight in
  let rec go acc = function
    | [] -> Stdcells.inv
    | (w, m) :: rest -> if r < acc + w then m else go (acc + w) rest
  in
  go 0 master_table

let cloud kit ~rng ~cells =
  if cells < 1 then invalid_arg "Randlogic.cloud: cells < 1";
  let clk_sinks = ref [] in
  (* Instantiate; a DFF's clock pin (input 1) goes to the shared clock
     bundle, every other input pin enters the free pool for wiring. *)
  let insts = Array.make cells None in
  let free_inputs = Array.make cells [] in
  for j = 0 to cells - 1 do
    let m = pick_master rng in
    let inst = Kit.cell kit m in
    insts.(j) <- Some inst;
    if m == Stdcells.dff then begin
      clk_sinks := inst.Kit.ins.(1) :: !clk_sinks;
      free_inputs.(j) <- [ inst.Kit.ins.(0) ]
    end
    else free_inputs.(j) <- Array.to_list inst.Kit.ins
  done;
  let inst j = Option.get insts.(j) in
  let window = max 8 (cells / 20) in
  (* Draw a free sink pin near index [j]: locality window via a Gaussian,
     a few retries, then give up (caller handles the empty case). *)
  let draw_sink j =
    let attempt () =
      let k =
        int_of_float
          (Float.round (Rng.gaussian rng ~mean:(float_of_int j) ~stddev:(float_of_int window)))
      in
      let k = max 0 (min (cells - 1) k) in
      match free_inputs.(k) with
      | pin :: rest ->
        free_inputs.(k) <- rest;
        Some pin
      | [] -> None
    in
    let rec retry t =
      if t = 0 then None else match attempt () with Some p -> Some p | None -> retry (t - 1)
    in
    retry 6
  in
  let out_ports = ref [] in
  let port_idx = ref 0 in
  let export pin =
    out_ports := (Printf.sprintf "z%d" !port_idx, pin) :: !out_ports;
    incr port_idx
  in
  for j = 0 to cells - 1 do
    Array.iter
      (fun out_pin ->
        if Rng.bernoulli rng 0.08 then export out_pin
        else begin
          let fanout = 1 + Rng.int rng 5 in
          let sinks = List.filter_map (fun _ -> draw_sink j) (List.init fanout Fun.id) in
          match sinks with
          | [] -> export out_pin
          | _ -> ignore (Kit.net kit (out_pin :: sinks))
        end)
      (inst j).Kit.outs
  done;
  (* Remaining free inputs become in-port bundles of 1-4 pins. *)
  let leftovers = Array.to_list free_inputs |> List.concat in
  let in_ports = ref [] in
  let rec bundle idx pins =
    match pins with
    | [] -> ()
    | _ ->
      let k = 1 + Rng.int rng 4 in
      let rec take n acc rest =
        match n, rest with
        | 0, _ | _, [] -> List.rev acc, rest
        | n, p :: tl -> take (n - 1) (p :: acc) tl
      in
      let chunk, rest = take k [] pins in
      in_ports := (Printf.sprintf "i%d" idx, chunk) :: !in_ports;
      bundle (idx + 1) rest
  in
  bundle 0 leftovers;
  let in_ports =
    match !clk_sinks with [] -> List.rev !in_ports | clk -> ("clk", clk) :: List.rev !in_ports
  in
  {
    rl_in_ports = in_ports;
    rl_out_ports = List.rev !out_ports;
    rl_cells = List.init cells (fun j -> (inst j).Kit.id);
  }
