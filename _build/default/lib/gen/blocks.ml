module Groups = Dpp_netlist.Groups

type block = {
  blk_name : string;
  in_ports : (string * int list) list;
  out_ports : (string * int) list;
  group : Dpp_netlist.Groups.t option;
  cell_ids : int list;
}

let group_of_rows name rows =
  Groups.make name (Array.of_list (List.map Array.of_list rows))

let cells_of_rows rows = List.concat_map (List.filter (fun c -> c >= 0)) rows

(* --------------------------------------------------------------- *)

let ripple_adder kit ~name ~bits =
  if bits < 1 then invalid_arg "Blocks.ripple_adder: bits < 1";
  let in_ports = ref [] and out_ports = ref [] and rows = ref [] in
  (* carry into the current bit: [`Port] for bit 0, then the previous
     bit's OR output pin. *)
  let carry = ref `Port in
  let cin_port_sinks = ref [] in
  for i = 0 to bits - 1 do
    let xp = Kit.cell kit Stdcells.xor2 in
    let xs = Kit.cell kit Stdcells.xor2 in
    let ag = Kit.cell kit Stdcells.and2 in
    let at = Kit.cell kit Stdcells.and2 in
    let oc = Kit.cell kit Stdcells.or2 in
    (* p = a xor b feeds the sum xor and the transmit and *)
    ignore (Kit.net kit ~name:(Printf.sprintf "p%d" i) [ xp.Kit.outs.(0); xs.Kit.ins.(0); at.Kit.ins.(0) ]);
    ignore (Kit.net kit ~name:(Printf.sprintf "g%d" i) [ ag.Kit.outs.(0); oc.Kit.ins.(0) ]);
    ignore (Kit.net kit ~name:(Printf.sprintf "t%d" i) [ at.Kit.outs.(0); oc.Kit.ins.(1) ]);
    (match !carry with
    | `Port -> cin_port_sinks := [ xs.Kit.ins.(1); at.Kit.ins.(1) ]
    | `Pin p ->
      ignore (Kit.net kit ~name:(Printf.sprintf "c%d" i) [ p; xs.Kit.ins.(1); at.Kit.ins.(1) ]));
    carry := `Pin oc.Kit.outs.(0);
    in_ports :=
      (Printf.sprintf "b%d" i, [ xp.Kit.ins.(1); ag.Kit.ins.(1) ])
      :: (Printf.sprintf "a%d" i, [ xp.Kit.ins.(0); ag.Kit.ins.(0) ])
      :: !in_ports;
    out_ports := (Printf.sprintf "s%d" i, xs.Kit.outs.(0)) :: !out_ports;
    rows := [ xp.Kit.id; xs.Kit.id; ag.Kit.id; at.Kit.id; oc.Kit.id ] :: !rows
  done;
  (match !carry with
  | `Pin p -> out_ports := ("cout", p) :: !out_ports
  | `Port -> ());
  let in_ports = ("cin", !cin_port_sinks) :: List.rev !in_ports in
  {
    blk_name = name;
    in_ports;
    out_ports = List.rev !out_ports;
    group = Some (group_of_rows name (List.rev !rows));
    cell_ids = cells_of_rows (List.rev !rows);
  }

(* --------------------------------------------------------------- *)

let alu kit ~name ~bits =
  if bits < 1 then invalid_arg "Blocks.alu: bits < 1";
  let in_ports = ref [] and out_ports = ref [] and rows = ref [] in
  let sel0_sinks = ref [] and sel1_sinks = ref [] in
  let carry = ref `Port in
  let cin_port_sinks = ref [] in
  for i = 0 to bits - 1 do
    (* logic lanes *)
    let la = Kit.cell kit Stdcells.and2 in
    let lo = Kit.cell kit Stdcells.or2 in
    let lx = Kit.cell kit Stdcells.xor2 in
    (* adder cone, same construction as the ripple adder *)
    let xp = Kit.cell kit Stdcells.xor2 in
    let xs = Kit.cell kit Stdcells.xor2 in
    let ag = Kit.cell kit Stdcells.and2 in
    let at = Kit.cell kit Stdcells.and2 in
    let oc = Kit.cell kit Stdcells.or2 in
    ignore (Kit.net kit [ xp.Kit.outs.(0); xs.Kit.ins.(0); at.Kit.ins.(0) ]);
    ignore (Kit.net kit [ ag.Kit.outs.(0); oc.Kit.ins.(0) ]);
    ignore (Kit.net kit [ at.Kit.outs.(0); oc.Kit.ins.(1) ]);
    (match !carry with
    | `Port -> cin_port_sinks := [ xs.Kit.ins.(1); at.Kit.ins.(1) ]
    | `Pin p -> ignore (Kit.net kit [ p; xs.Kit.ins.(1); at.Kit.ins.(1) ]));
    carry := `Pin oc.Kit.outs.(0);
    (* 4:1 result mux: m1 = sel0 ? or : and, m2 = sel0 ? sum : xor,
       m3 = sel1 ? m2 : m1 *)
    let m1 = Kit.cell kit Stdcells.mux2 in
    let m2 = Kit.cell kit Stdcells.mux2 in
    let m3 = Kit.cell kit Stdcells.mux2 in
    ignore (Kit.net kit [ la.Kit.outs.(0); m1.Kit.ins.(0) ]);
    ignore (Kit.net kit [ lo.Kit.outs.(0); m1.Kit.ins.(1) ]);
    ignore (Kit.net kit [ lx.Kit.outs.(0); m2.Kit.ins.(0) ]);
    ignore (Kit.net kit [ xs.Kit.outs.(0); m2.Kit.ins.(1) ]);
    ignore (Kit.net kit [ m1.Kit.outs.(0); m3.Kit.ins.(0) ]);
    ignore (Kit.net kit [ m2.Kit.outs.(0); m3.Kit.ins.(1) ]);
    sel0_sinks := m1.Kit.ins.(2) :: m2.Kit.ins.(2) :: !sel0_sinks;
    sel1_sinks := m3.Kit.ins.(2) :: !sel1_sinks;
    in_ports :=
      (Printf.sprintf "b%d" i, [ la.Kit.ins.(1); lo.Kit.ins.(1); lx.Kit.ins.(1); xp.Kit.ins.(1); ag.Kit.ins.(1) ])
      :: (Printf.sprintf "a%d" i, [ la.Kit.ins.(0); lo.Kit.ins.(0); lx.Kit.ins.(0); xp.Kit.ins.(0); ag.Kit.ins.(0) ])
      :: !in_ports;
    out_ports := (Printf.sprintf "r%d" i, m3.Kit.outs.(0)) :: !out_ports;
    rows :=
      [ la.Kit.id; lo.Kit.id; lx.Kit.id; xp.Kit.id; xs.Kit.id; ag.Kit.id; at.Kit.id; oc.Kit.id;
        m1.Kit.id; m2.Kit.id; m3.Kit.id ]
      :: !rows
  done;
  (match !carry with
  | `Pin p -> out_ports := ("cout", p) :: !out_ports
  | `Port -> ());
  let in_ports =
    ("sel1", !sel1_sinks) :: ("sel0", !sel0_sinks) :: ("cin", !cin_port_sinks)
    :: List.rev !in_ports
  in
  {
    blk_name = name;
    in_ports;
    out_ports = List.rev !out_ports;
    group = Some (group_of_rows name (List.rev !rows));
    cell_ids = cells_of_rows (List.rev !rows);
  }

(* --------------------------------------------------------------- *)

let ceil_log2 n =
  let rec go k acc = if acc >= n then k else go (k + 1) (acc * 2) in
  go 0 1

let barrel_shifter kit ~name ~bits =
  if bits < 2 then invalid_arg "Blocks.barrel_shifter: bits < 2";
  let levels = ceil_log2 bits in
  (* muxes.(level).(bit) *)
  let muxes =
    Array.init levels (fun _ -> Array.init bits (fun _ -> Kit.cell kit Stdcells.mux2))
  in
  let in_ports = ref [] and out_ports = ref [] in
  (* data inputs feed level 0 (shift 1): d_i is the pass-through leg of
     bit i and the rotated leg of bit (i+1) mod bits *)
  for i = 0 to bits - 1 do
    in_ports :=
      ( Printf.sprintf "d%d" i,
        [ muxes.(0).(i).Kit.ins.(0); muxes.(0).((i + 1) mod bits).Kit.ins.(1) ] )
      :: !in_ports
  done;
  (* internal levels *)
  for l = 1 to levels - 1 do
    let shift = 1 lsl l in
    for i = 0 to bits - 1 do
      let dst_rot = (i + shift) mod bits in
      ignore
        (Kit.net kit
           [ muxes.(l - 1).(i).Kit.outs.(0); muxes.(l).(i).Kit.ins.(0); muxes.(l).(dst_rot).Kit.ins.(1) ])
    done
  done;
  (* select control nets, one per level, spanning every bit *)
  for l = 0 to levels - 1 do
    let sinks = Array.to_list (Array.map (fun m -> m.Kit.ins.(2)) muxes.(l)) in
    in_ports := (Printf.sprintf "sh%d" l, sinks) :: !in_ports
  done;
  for i = 0 to bits - 1 do
    out_ports := (Printf.sprintf "q%d" i, muxes.(levels - 1).(i).Kit.outs.(0)) :: !out_ports
  done;
  let rows =
    List.init bits (fun i -> List.init levels (fun l -> muxes.(l).(i).Kit.id))
  in
  {
    blk_name = name;
    in_ports = List.rev !in_ports;
    out_ports = List.rev !out_ports;
    group = Some (group_of_rows name rows);
    cell_ids = cells_of_rows rows;
  }

(* --------------------------------------------------------------- *)

let register_bank kit ~name ~bits =
  if bits < 1 then invalid_arg "Blocks.register_bank: bits < 1";
  let in_ports = ref [] and out_ports = ref [] and rows = ref [] in
  let clk_sinks = ref [] and we_sinks = ref [] in
  for i = 0 to bits - 1 do
    let mux = Kit.cell kit Stdcells.mux2 in
    let ff = Kit.cell kit Stdcells.dff in
    let buf = Kit.cell kit Stdcells.buf in
    ignore (Kit.net kit [ mux.Kit.outs.(0); ff.Kit.ins.(0) ]);
    (* recirculation: q feeds both the keep leg and the output buffer *)
    ignore (Kit.net kit [ ff.Kit.outs.(0); mux.Kit.ins.(0); buf.Kit.ins.(0) ]);
    clk_sinks := ff.Kit.ins.(1) :: !clk_sinks;
    we_sinks := mux.Kit.ins.(2) :: !we_sinks;
    in_ports := (Printf.sprintf "d%d" i, [ mux.Kit.ins.(1) ]) :: !in_ports;
    out_ports := (Printf.sprintf "q%d" i, buf.Kit.outs.(0)) :: !out_ports;
    rows := [ mux.Kit.id; ff.Kit.id; buf.Kit.id ] :: !rows
  done;
  let in_ports = ("we", !we_sinks) :: ("clk", !clk_sinks) :: List.rev !in_ports in
  {
    blk_name = name;
    in_ports;
    out_ports = List.rev !out_ports;
    group = Some (group_of_rows name (List.rev !rows));
    cell_ids = cells_of_rows (List.rev !rows);
  }

(* --------------------------------------------------------------- *)

let comparator kit ~name ~bits =
  if bits < 1 then invalid_arg "Blocks.comparator: bits < 1";
  let in_ports = ref [] and out_ports = ref [] and rows = ref [] in
  let chain = ref `Port in
  let chain_port_sinks = ref [] in
  for i = 0 to bits - 1 do
    let xn = Kit.cell kit Stdcells.xnor2 in
    let an = Kit.cell kit Stdcells.and2 in
    ignore (Kit.net kit [ xn.Kit.outs.(0); an.Kit.ins.(0) ]);
    (match !chain with
    | `Port -> chain_port_sinks := [ an.Kit.ins.(1) ]
    | `Pin p -> ignore (Kit.net kit [ p; an.Kit.ins.(1) ]));
    chain := `Pin an.Kit.outs.(0);
    in_ports :=
      (Printf.sprintf "b%d" i, [ xn.Kit.ins.(1) ]) :: (Printf.sprintf "a%d" i, [ xn.Kit.ins.(0) ])
      :: !in_ports;
    rows := [ xn.Kit.id; an.Kit.id ] :: !rows
  done;
  (match !chain with
  | `Pin p -> out_ports := [ ("eq", p) ]
  | `Port -> ());
  let in_ports = ("en", !chain_port_sinks) :: List.rev !in_ports in
  {
    blk_name = name;
    in_ports;
    out_ports = !out_ports;
    group = Some (group_of_rows name (List.rev !rows));
    cell_ids = cells_of_rows (List.rev !rows);
  }

(* --------------------------------------------------------------- *)

let multiplier kit ~name ~bits =
  if bits < 2 then invalid_arg "Blocks.multiplier: bits < 2";
  let n = bits in
  let ands = Array.init n (fun _ -> Array.init n (fun _ -> Kit.cell kit Stdcells.and2)) in
  (* adders.(r).(c) for r >= 1; HA at c = 0 and c = n-1, FA between *)
  let adders =
    Array.init n (fun r ->
        Array.init n (fun c ->
            if r = 0 then None
            else if c = 0 || c = n - 1 then Some (Kit.cell kit Stdcells.ha)
            else Some (Kit.cell kit Stdcells.fa)))
  in
  let adder r c = Option.get adders.(r).(c) in
  let in_ports = ref [] and out_ports = ref [] in
  (* operand ports: a_r spans row r, b_c spans column c *)
  for r = 0 to n - 1 do
    let sinks = List.init n (fun c -> ands.(r).(c).Kit.ins.(0)) in
    in_ports := (Printf.sprintf "a%d" r, sinks) :: !in_ports
  done;
  for c = 0 to n - 1 do
    let sinks = List.init n (fun r -> ands.(r).(c).Kit.ins.(1)) in
    in_ports := (Printf.sprintf "b%d" c, sinks) :: !in_ports
  done;
  (* partial products: pp(0,c>=1) feeds adder(1,c-1) leg 1 (the "sum from
     above"); pp(r>=1,c) feeds adder(r,c) leg 0; pp(0,0) is product bit 0 *)
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      let drv = ands.(r).(c).Kit.outs.(0) in
      if r = 0 then begin
        if c = 0 then out_ports := ("p0", drv) :: !out_ports
        else ignore (Kit.net kit [ drv; (adder 1 (c - 1)).Kit.ins.(1) ])
      end
      else ignore (Kit.net kit [ drv; (adder r c).Kit.ins.(0) ])
    done
  done;
  (* sums: s(r,0) is product bit r; s(r,c>=1) feeds adder(r+1,c-1) leg 1;
     final row sums are outputs *)
  for r = 1 to n - 1 do
    for c = 0 to n - 1 do
      let a = adder r c in
      let sum = a.Kit.outs.(0) in
      if c = 0 then out_ports := (Printf.sprintf "p%d" r, sum) :: !out_ports
      else if r = n - 1 then out_ports := (Printf.sprintf "p%d" (n - 1 + c), sum) :: !out_ports
      else ignore (Kit.net kit [ sum; (adder (r + 1) (c - 1)).Kit.ins.(1) ]);
      (* carries ripple right within the row: carry(r,c) -> adder(r,c+1)
         last leg; the row's MSB carry is exported *)
      let carry = a.Kit.outs.(1) in
      if c = n - 1 then out_ports := (Printf.sprintf "co%d" r, carry) :: !out_ports
      else begin
        let nxt = adder r (c + 1) in
        let leg = Array.length nxt.Kit.ins - 1 in
        ignore (Kit.net kit [ carry; nxt.Kit.ins.(leg) ])
      end
    done
  done;
  let rows =
    List.init n (fun r ->
        List.init n (fun c -> ands.(r).(c).Kit.id)
        @ List.init n (fun c -> match adders.(r).(c) with Some a -> a.Kit.id | None -> -1))
  in
  {
    blk_name = name;
    in_ports = List.rev !in_ports;
    out_ports = List.rev !out_ports;
    group = Some (group_of_rows name rows);
    cell_ids = cells_of_rows rows;
  }

(* --------------------------------------------------------------- *)

let mux_tree kit ~name ~bits ~inputs =
  if bits < 1 then invalid_arg "Blocks.mux_tree: bits < 1";
  if inputs < 2 || inputs land (inputs - 1) <> 0 then
    invalid_arg "Blocks.mux_tree: inputs must be a power of two >= 2";
  let levels = ceil_log2 inputs in
  let in_ports = ref [] and out_ports = ref [] and rows = ref [] in
  let sel_sinks = Array.make levels [] in
  for i = 0 to bits - 1 do
    (* level 0 has inputs/2 muxes, halving each level *)
    let tree =
      Array.init levels (fun l ->
          Array.init (inputs lsr (l + 1)) (fun _ -> Kit.cell kit Stdcells.mux2))
    in
    for l = 0 to levels - 1 do
      Array.iter (fun m -> sel_sinks.(l) <- m.Kit.ins.(2) :: sel_sinks.(l)) tree.(l)
    done;
    for k = 0 to inputs - 1 do
      let m = tree.(0).(k / 2) in
      in_ports := (Printf.sprintf "w%d_%d" k i, [ m.Kit.ins.(k mod 2) ]) :: !in_ports
    done;
    for l = 0 to levels - 2 do
      Array.iteri
        (fun k m ->
          let up = tree.(l + 1).(k / 2) in
          ignore (Kit.net kit [ m.Kit.outs.(0); up.Kit.ins.(k mod 2) ]))
        tree.(l)
    done;
    out_ports := (Printf.sprintf "y%d" i, tree.(levels - 1).(0).Kit.outs.(0)) :: !out_ports;
    let row = Array.to_list tree |> List.concat_map (fun lv -> Array.to_list (Array.map (fun m -> m.Kit.id) lv)) in
    rows := row :: !rows
  done;
  for l = 0 to levels - 1 do
    in_ports := (Printf.sprintf "sel%d" l, sel_sinks.(l)) :: !in_ports
  done;
  {
    blk_name = name;
    in_ports = List.rev !in_ports;
    out_ports = List.rev !out_ports;
    group = Some (group_of_rows name (List.rev !rows));
    cell_ids = cells_of_rows (List.rev !rows);
  }

(* --------------------------------------------------------------- *)

let carry_select_adder kit ~name ~bits ~block_size =
  if block_size < 2 then invalid_arg "Blocks.carry_select_adder: block_size < 2";
  if bits < block_size || bits mod block_size <> 0 then
    invalid_arg "Blocks.carry_select_adder: bits must be a positive multiple of block_size";
  let in_ports = ref [] and out_ports = ref [] and rows = ref [] in
  (* one ripple-cone step: given the carry source pin (or `Port), build the
     5-cell PGT cone for one bit and return (cells, sum driver, carry-out
     driver, carry sinks when the carry comes from a port/mux) *)
  let cone carry =
    let xp = Kit.cell kit Stdcells.xor2 in
    let xs = Kit.cell kit Stdcells.xor2 in
    let ag = Kit.cell kit Stdcells.and2 in
    let at = Kit.cell kit Stdcells.and2 in
    let oc = Kit.cell kit Stdcells.or2 in
    ignore (Kit.net kit [ xp.Kit.outs.(0); xs.Kit.ins.(0); at.Kit.ins.(0) ]);
    ignore (Kit.net kit [ ag.Kit.outs.(0); oc.Kit.ins.(0) ]);
    ignore (Kit.net kit [ at.Kit.outs.(0); oc.Kit.ins.(1) ]);
    let carry_sinks = [ xs.Kit.ins.(1); at.Kit.ins.(1) ] in
    (match carry with
    | `Pin p -> ignore (Kit.net kit (p :: carry_sinks))
    | `Defer -> ());
    ( [ xp.Kit.id; xs.Kit.id; ag.Kit.id; at.Kit.id; oc.Kit.id ],
      (xp, ag),
      xs.Kit.outs.(0),
      oc.Kit.outs.(0),
      carry_sinks )
  in
  let n_blocks = bits / block_size in
  (* block-boundary carry: `Port for the first block *)
  let block_carry = ref `Port in
  let cin_port_sinks = ref [] in
  for blk = 0 to n_blocks - 1 do
    (* two parallel chains within the block *)
    let c0 = ref `Defer and c1 = ref `Defer in
    let chain0_first_sinks = ref [] and chain1_first_sinks = ref [] in
    let sum_muxes = ref [] in
    for j = 0 to block_size - 1 do
      let i = (blk * block_size) + j in
      let cells0, (xp0, ag0), s0, co0, sinks0 = cone !c0 in
      let cells1, (xp1, ag1), s1, co1, sinks1 = cone !c1 in
      if j = 0 then begin
        chain0_first_sinks := sinks0;
        chain1_first_sinks := sinks1
      end;
      c0 := `Pin co0;
      c1 := `Pin co1;
      (* sum select mux *)
      let m = Kit.cell kit Stdcells.mux2 in
      ignore (Kit.net kit [ s0; m.Kit.ins.(0) ]);
      ignore (Kit.net kit [ s1; m.Kit.ins.(1) ]);
      sum_muxes := m :: !sum_muxes;
      in_ports :=
        (Printf.sprintf "b%d" i, [ xp0.Kit.ins.(1); ag0.Kit.ins.(1); xp1.Kit.ins.(1); ag1.Kit.ins.(1) ])
        :: (Printf.sprintf "a%d" i, [ xp0.Kit.ins.(0); ag0.Kit.ins.(0); xp1.Kit.ins.(0); ag1.Kit.ins.(0) ])
        :: !in_ports;
      out_ports := (Printf.sprintf "s%d" i, m.Kit.outs.(0)) :: !out_ports;
      rows := (cells0 @ cells1 @ [ m.Kit.id ]) :: !rows
    done;
    (* chain 0 assumes carry-in 0, chain 1 assumes carry-in 1: tie their
       first-bit carry inputs to the block select (both legs see the block
       carry so the structure stays fully wired; functional subtlety is
       irrelevant for placement) *)
    let select_sinks =
      List.map (fun m -> m.Kit.ins.(2)) !sum_muxes @ !chain0_first_sinks @ !chain1_first_sinks
    in
    (match !block_carry with
    | `Pin p -> ignore (Kit.net kit ~name:(Printf.sprintf "bc%d" blk) (p :: select_sinks))
    | `Port -> cin_port_sinks := select_sinks);
    (* block carry out: a mux choosing between the two chains' couts *)
    let cm = Kit.cell kit Stdcells.mux2 in
    (match !c0 with `Pin p -> ignore (Kit.net kit [ p; cm.Kit.ins.(0) ]) | `Defer -> ());
    (match !c1 with `Pin p -> ignore (Kit.net kit [ p; cm.Kit.ins.(1) ]) | `Defer -> ());
    (* its select is the incoming block carry: fold into the same net by
       deferring -- simpler: give it an own input port per block boundary *)
    in_ports := (Printf.sprintf "csel%d" blk, [ cm.Kit.ins.(2) ]) :: !in_ports;
    block_carry := `Pin cm.Kit.outs.(0);
    (* the carry mux belongs to the last slice of the block *)
    (match !rows with
    | last :: rest -> rows := (last @ [ cm.Kit.id ]) :: rest
    | [] -> ())
  done;
  (match !block_carry with
  | `Pin p -> out_ports := ("cout", p) :: !out_ports
  | `Port -> ());
  let in_ports = ("cin", !cin_port_sinks) :: List.rev !in_ports in
  (* rows are ragged (block-boundary slices carry one extra mux): pad to a
     rectangle with holes *)
  let rows = List.rev !rows in
  let stages = List.fold_left (fun m r -> max m (List.length r)) 0 rows in
  let rows = List.map (fun r -> r @ List.init (stages - List.length r) (fun _ -> -1)) rows in
  {
    blk_name = name;
    in_ports;
    out_ports = List.rev !out_ports;
    group = Some (group_of_rows name rows);
    cell_ids = cells_of_rows rows;
  }

(* --------------------------------------------------------------- *)

let priority_encoder kit ~name ~bits =
  if bits < 2 then invalid_arg "Blocks.priority_encoder: bits < 2";
  let in_ports = ref [] and out_ports = ref [] and rows = ref [] in
  (* any-higher chain: a_i = req_{i-1} OR a_{i-1}; grant_i = req_i AND NOT a_i *)
  let chain = ref `Port in
  let en_sinks = ref [] in
  for i = 0 to bits - 1 do
    let inv = Kit.cell kit Stdcells.inv in
    let grant = Kit.cell kit Stdcells.and2 in
    let acc = Kit.cell kit Stdcells.or2 in
    ignore (Kit.net kit [ inv.Kit.outs.(0); grant.Kit.ins.(1) ]);
    (match !chain with
    | `Port -> en_sinks := [ inv.Kit.ins.(0); acc.Kit.ins.(1) ]
    | `Pin p -> ignore (Kit.net kit [ p; inv.Kit.ins.(0); acc.Kit.ins.(1) ]));
    chain := `Pin acc.Kit.outs.(0);
    in_ports := (Printf.sprintf "r%d" i, [ grant.Kit.ins.(0); acc.Kit.ins.(0) ]) :: !in_ports;
    out_ports := (Printf.sprintf "g%d" i, grant.Kit.outs.(0)) :: !out_ports;
    rows := [ inv.Kit.id; grant.Kit.id; acc.Kit.id ] :: !rows
  done;
  (match !chain with
  | `Pin p -> out_ports := ("any", p) :: !out_ports
  | `Port -> ());
  let in_ports = ("en", !en_sinks) :: List.rev !in_ports in
  {
    blk_name = name;
    in_ports;
    out_ports = List.rev !out_ports;
    group = Some (group_of_rows name (List.rev !rows));
    cell_ids = cells_of_rows (List.rev !rows);
  }


(* --------------------------------------------------------------- *)

let ram kit ~name ~w_sites ~h_rows ~data_bits =
  if h_rows < 2 then invalid_arg "Blocks.ram: h_rows < 2";
  if w_sites < 4 then invalid_arg "Blocks.ram: w_sites < 4";
  if data_bits < 1 then invalid_arg "Blocks.ram: data_bits < 1";
  let b = Kit.builder kit in
  let w = float_of_int w_sites *. Stdcells.site_width in
  let h = float_of_int h_rows *. Stdcells.row_height in
  let id =
    Dpp_netlist.Builder.add_cell b ~name:(Kit.fresh_name kit "ram") ~master:"RAM" ~w ~h
      ~kind:Dpp_netlist.Types.Movable
  in
  let pin ~dir ~dx ~dy = Dpp_netlist.Builder.add_pin b ~cell:id ~dir ~dx ~dy () in
  let step = h /. float_of_int (data_bits + 1) in
  let in_ports = ref [] and out_ports = ref [] in
  for k = 0 to data_bits - 1 do
    let dy = step *. float_of_int (k + 1) in
    let din = pin ~dir:Dpp_netlist.Types.Input ~dx:0.0 ~dy in
    let dout = pin ~dir:Dpp_netlist.Types.Output ~dx:w ~dy in
    in_ports := (Printf.sprintf "d%d" k, [ din ]) :: !in_ports;
    out_ports := (Printf.sprintf "q%d" k, dout) :: !out_ports
  done;
  let clk = pin ~dir:Dpp_netlist.Types.Input ~dx:(w /. 2.0) ~dy:0.0 in
  let en = pin ~dir:Dpp_netlist.Types.Input ~dx:(w /. 4.0) ~dy:0.0 in
  let in_ports = ("en", [ en ]) :: ("clk", [ clk ]) :: List.rev !in_ports in
  {
    blk_name = name;
    in_ports;
    out_ports = List.rev !out_ports;
    group = None;
    cell_ids = [ id ];
  }
