module Builder = Dpp_netlist.Builder
module Types = Dpp_netlist.Types

type t = {
  b : Builder.t;
  prefix : string;
  counters : (string, int) Hashtbl.t;
}

type instance = { id : int; ins : int array; outs : int array }

let create b ~prefix = { b; prefix; counters = Hashtbl.create 16 }

let builder t = t.b

let fresh_name t stem =
  let k = Option.value ~default:0 (Hashtbl.find_opt t.counters stem) in
  Hashtbl.replace t.counters stem (k + 1);
  Printf.sprintf "%s/%s_%d" t.prefix stem k

let named_cell t (m : Stdcells.master) stem =
  let name = fresh_name t stem in
  let id =
    Builder.add_cell t.b ~name ~master:m.Stdcells.m_name ~w:m.Stdcells.m_width
      ~h:Stdcells.row_height ~kind:Types.Movable
  in
  let pin k dir =
    let dx, dy = Stdcells.pin_offset m ~index:k in
    Builder.add_pin t.b ~cell:id ~dir ~dx ~dy ()
  in
  let ins = Array.init m.Stdcells.m_inputs (fun k -> pin k Types.Input) in
  let outs =
    Array.init m.Stdcells.m_outputs (fun k -> pin (m.Stdcells.m_inputs + k) Types.Output)
  in
  { id; ins; outs }

let cell t m = named_cell t m (String.lowercase_ascii m.Stdcells.m_name)

let net t ?name pins =
  let name = match name with Some n -> Some (t.prefix ^ "/" ^ n) | None -> None in
  Builder.add_net t.b ?name pins
