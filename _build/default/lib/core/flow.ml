module Design = Dpp_netlist.Design
module Validate = Dpp_netlist.Validate
module Groups = Dpp_netlist.Groups
module Pins = Dpp_wirelen.Pins
module Hpwl = Dpp_wirelen.Hpwl
module Rsmt = Dpp_steiner.Rsmt
module Slicer = Dpp_extract.Slicer
module Exmetrics = Dpp_extract.Exmetrics
module Dgroup = Dpp_structure.Dgroup
module Alignment = Dpp_structure.Alignment
module Shaping = Dpp_structure.Shaping
module Qp = Dpp_place.Qp
module Gp = Dpp_place.Gp
module Legal = Dpp_place.Legal
module Abacus = Dpp_place.Abacus
module Detail = Dpp_place.Detail
module Timer = Dpp_util.Timer

exception Invalid_design of Validate.issue list

type result = {
  design : Design.t;
  config : Config.t;
  hpwl_init : float;
  hpwl_gp : float;
  hpwl_legal : float;
  hpwl_final : float;
  steiner_final : float;
  congestion : Dpp_congest.Rudy.stats;
  critical_delay : float;
  overflow_gp : float;
  align_error_final : float;
  groups_used : Groups.t list;
  extraction : (Slicer.result * Exmetrics.t) option;
  trace : Gp.round_info list;
  times : (string * float) list;
  total_time : float;
}

let src = Logs.Src.create "dpp.flow" ~doc:"placement flow"

module Log = (val Logs.src_log src : Logs.LOG)

let copy_design (d : Design.t) =
  { d with Design.x = Array.copy d.Design.x; y = Array.copy d.Design.y;
           orient = Array.copy d.Design.orient }

let run (input : Design.t) (cfg : Config.t) =
  let issues = Validate.check input in
  if not (Validate.is_clean issues) then raise (Invalid_design (Validate.errors issues));
  List.iter
    (fun i ->
      match i.Validate.severity with
      | Validate.Warning -> Log.warn (fun m -> m "%a" Validate.pp_issue i)
      | Validate.Error -> ())
    issues;
  let d = copy_design input in
  let timer = Timer.create () in
  (* ----- groups ----- *)
  let extraction, groups_used =
    match cfg.Config.mode with
    | Config.Baseline -> None, []
    | Config.Structure_aware -> (
      match cfg.Config.group_source with
      | Config.Ground_truth -> None, d.Design.groups
      | Config.Extracted ->
        let r = Timer.time timer "extract" (fun () -> Slicer.run d cfg.Config.extract) in
        let metrics =
          Exmetrics.compare_to_truth ~truth:d.Design.groups ~found:r.Slicer.groups
        in
        Log.info (fun m ->
            m "extraction: %d groups, precision %.3f recall %.3f"
              (List.length r.Slicer.groups) metrics.Exmetrics.precision
              metrics.Exmetrics.recall);
        Some (r, metrics), r.Slicer.groups)
  in
  (* ----- initial placement ----- *)
  let qp = Timer.time timer "init" (fun () -> Qp.run ~seed:cfg.Config.seed d) in
  (* idealized arrays are oriented by the connectivity-driven initial
     placement, so alignment works with the net forces, not against them *)
  (* regularity evaluation: structures dominated by boundary coupling lose
     wirelength when constrained, so they are dropped here *)
  let groups_kept =
    List.filter
      (fun g ->
        Dgroup.internal_coupling d g >= cfg.Config.min_coupling
        && Dgroup.slice_span d g <= cfg.Config.max_slice_span)
      groups_used
  in
  let dgroups =
    if groups_kept = [] then []
    else Dgroup.build_all_ordered d groups_kept ~cx:qp.Qp.cx ~cy:qp.Qp.cy
  in
  let pins = Pins.build d in
  let hpwl_init = Hpwl.total pins ~cx:qp.Qp.cx ~cy:qp.Qp.cy in
  (* ----- global placement ----- *)
  (* groups small enough to snap become rigid macros (primary mode);
     oversized ones and every group in the soft-ablation mode take the
     alignment-penalty path instead *)
  let snap_fraction = 0.25 in
  let die_area = Dpp_geom.Rect.area d.Design.die in
  let rigid_dgs, soft_dgs =
    match cfg.Config.mode, cfg.Config.structure with
    | Config.Baseline, _ -> [], []
    | Config.Structure_aware, Config.Soft_alignment -> [], dgroups
    | Config.Structure_aware, Config.Rigid_macros ->
      List.partition
        (fun dg ->
          dg.Dgroup.width *. dg.Dgroup.height <= snap_fraction *. die_area)
        dgroups
  in
  (* movable multi-row macros ride the rigid machinery in both modes *)
  let macro_dgs = List.map (Dgroup.of_movable_macro d) (Dgroup.movable_macros d) in
  let gp_cfg =
    {
      Gp.default_config with
      Gp.model = cfg.Config.model;
      target_density = cfg.Config.target_density;
      rounds = cfg.Config.gp_rounds;
      inner_iters = cfg.Config.gp_inner_iters;
      overflow_target = cfg.Config.overflow_target;
      beta =
        (match cfg.Config.mode with
        | Config.Baseline -> 0.0
        | Config.Structure_aware -> cfg.Config.beta);
      groups = soft_dgs;
      rigid_groups = rigid_dgs @ macro_dgs;
    }
  in
  let gp =
    Timer.time timer "gp" (fun () -> Gp.run d gp_cfg ~cx:qp.Qp.cx ~cy:qp.Qp.cy)
  in
  let cx = gp.Gp.cx and cy = gp.Gp.cy in
  (* ----- snapping: movable macros always; datapath groups in SA mode ----- *)
  let obstacles, skip =
    Timer.time timer "snap" (fun () ->
        (* movable multi-row macros must become row-aligned obstacles in
           every mode: the row legalizer cannot handle them *)
        let placed_macros = Shaping.snap ~max_die_fraction:1.0 d macro_dgs ~cx ~cy in
        let placed_groups =
          match cfg.Config.mode with
          | Config.Baseline -> []
          | Config.Structure_aware ->
            (* soft groups that fit also snap (they were pulled toward
               arrays by the penalty); Shaping drops oversized ones *)
            Shaping.snap ~max_die_fraction:snap_fraction
              ~extra_obstacles:(Shaping.obstacles placed_macros) d dgroups ~cx ~cy
        in
        let placed = placed_macros @ placed_groups in
        List.iter (fun p -> Shaping.apply p ~cx ~cy) placed;
        let members = Hashtbl.create 1024 in
        List.iter
          (fun p ->
            Array.iter (fun c -> Hashtbl.replace members c ()) p.Shaping.dgroup.Dgroup.cells)
          placed;
        Shaping.obstacles placed, fun i -> Hashtbl.mem members i)
  in
  (* ----- legalization ----- *)
  let legal =
    Timer.time timer "legal" (fun () ->
        let l = Legal.run d ~extra_obstacles:obstacles ~skip ~cx ~cy () in
        Abacus.run d ~extra_obstacles:obstacles ~skip ~target_cx:cx ~legal:l ();
        l)
  in
  if legal.Legal.failed <> [] then
    Log.err (fun m -> m "%d cells could not be legalized" (List.length legal.Legal.failed));
  let hpwl_legal = Hpwl.total pins ~cx:legal.Legal.cx ~cy:legal.Legal.cy in
  (* ----- detailed placement ----- *)
  let _stats =
    Timer.time timer "detail" (fun () ->
        Detail.run d ~max_passes:cfg.Config.detail_passes ~skip ~legal ())
  in
  let fx = legal.Legal.cx and fy = legal.Legal.cy in
  (* orientation optimization: free HPWL, cannot affect legality *)
  let _flip_stats = Timer.time timer "flip" (fun () -> Dpp_place.Flip.run d ~cx:fx ~cy:fy) in
  (* pin offsets changed where cells flipped: rebuild the metric view *)
  let pins = Pins.build d in
  let hpwl_final = Hpwl.total pins ~cx:fx ~cy:fy in
  let steiner_final, congestion, critical_delay =
    Timer.time timer "metrics" (fun () ->
        let st = Rsmt.total pins ~cx:fx ~cy:fy in
        let rudy = Dpp_congest.Rudy.compute d ~cx:fx ~cy:fy in
        let sta = Dpp_timing.Sta.build d in
        let timing = Dpp_timing.Sta.analyze sta ~cx:fx ~cy:fy in
        st, Dpp_congest.Rudy.stats rudy, timing.Dpp_timing.Sta.critical_delay)
  in
  let align_error_final =
    if dgroups = [] then 0.0 else Alignment.total_error dgroups ~cx:fx ~cy:fy
  in
  Pins.apply_centers d fx fy;
  {
    design = d;
    config = cfg;
    hpwl_init;
    hpwl_gp = gp.Gp.final_hpwl;
    hpwl_legal;
    hpwl_final;
    steiner_final;
    congestion;
    critical_delay;
    overflow_gp = gp.Gp.final_overflow;
    align_error_final;
    groups_used;
    extraction;
    trace = gp.Gp.trace;
    times = Timer.stages timer;
    total_time = Timer.total timer;
  }

let run_both input cfg =
  let base = run input { cfg with Config.mode = Config.Baseline } in
  let sa = run input { cfg with Config.mode = Config.Structure_aware } in
  base, sa
