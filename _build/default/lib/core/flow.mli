(** The end-to-end placement flow — the library's main entry point.

    {v
      validate -> [extract] -> QP init -> nonlinear GP (+ alignment)
               -> [group snap] -> Tetris + Abacus -> detailed placement
    v}

    Bracketed stages run only in [Structure_aware] mode.  The input design
    is never modified; the result carries a placed copy. *)

exception Invalid_design of Dpp_netlist.Validate.issue list
(** Raised when validation reports errors. *)

type result = {
  design : Dpp_netlist.Design.t;  (** placed copy of the input *)
  config : Config.t;
  hpwl_init : float;  (** after quadratic init *)
  hpwl_gp : float;
  hpwl_legal : float;
  hpwl_final : float;  (** after detailed placement *)
  steiner_final : float;
  congestion : Dpp_congest.Rudy.stats;  (** RUDY demand statistics at the final placement *)
  critical_delay : float;  (** lite-STA critical path delay at the final placement *)
  overflow_gp : float;
  align_error_final : float;  (** 0 when no groups are in play *)
  groups_used : Dpp_netlist.Groups.t list;  (** groups that steered placement *)
  extraction : (Dpp_extract.Slicer.result * Dpp_extract.Exmetrics.t) option;
      (** present when extraction ran; metrics compare against the design's
          ground-truth labels (empty truth yields trivial metrics) *)
  trace : Dpp_place.Gp.round_info list;
  times : (string * float) list;  (** stage name -> seconds, flow order *)
  total_time : float;
}

val run : Dpp_netlist.Design.t -> Config.t -> result

val run_both : Dpp_netlist.Design.t -> Config.t -> result * result
(** Baseline and structure-aware on the same design with otherwise equal
    settings — the Table 3 comparison.  The given config's [mode] is
    ignored. *)
