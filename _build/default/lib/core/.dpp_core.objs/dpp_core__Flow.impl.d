lib/core/flow.ml: Array Config Dpp_congest Dpp_extract Dpp_geom Dpp_netlist Dpp_place Dpp_steiner Dpp_structure Dpp_timing Dpp_util Dpp_wirelen Hashtbl List Logs
