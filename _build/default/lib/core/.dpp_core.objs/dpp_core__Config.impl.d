lib/core/config.ml: Dpp_extract Dpp_wirelen
