lib/core/config.mli: Dpp_extract Dpp_wirelen
