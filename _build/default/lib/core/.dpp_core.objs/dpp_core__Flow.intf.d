lib/core/flow.mli: Config Dpp_congest Dpp_extract Dpp_netlist Dpp_place
