lib/core/experiment.ml: Config Dpp_congest Dpp_extract Dpp_gen Dpp_netlist Dpp_place Dpp_report Dpp_util Flow List Printf Unix
