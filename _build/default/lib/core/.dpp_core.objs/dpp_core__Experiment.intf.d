lib/core/experiment.mli: Config Dpp_report Flow
