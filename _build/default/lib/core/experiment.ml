module Design = Dpp_netlist.Design
module Nstats = Dpp_netlist.Nstats
module Slicer = Dpp_extract.Slicer
module Exmetrics = Dpp_extract.Exmetrics
module Table = Dpp_report.Table
module Series = Dpp_report.Series
module Statx = Dpp_util.Statx

type table = { t_title : string; t_header : string list; t_rows : string list list }

let print_table t = Table.print ~title:t.t_title ~header:t.t_header t.t_rows

let suite_designs () =
  List.map (fun spec -> spec.Dpp_gen.Compose.sp_name, Dpp_gen.Compose.build spec)
    Dpp_gen.Presets.suite

(* ------------------------------------------------------------------ *)

let table1 () =
  let rows =
    List.map (fun (_, d) -> Nstats.to_row (Nstats.compute d)) (suite_designs ())
  in
  { t_title = "Table 1: benchmark statistics"; t_header = Nstats.header; t_rows = rows }

let table2 () =
  let rows =
    List.map
      (fun (name, d) ->
        let t0 = Unix.gettimeofday () in
        let r = Slicer.run d Slicer.default_config in
        let dt = Unix.gettimeofday () -. t0 in
        let m = Exmetrics.compare_to_truth ~truth:d.Design.groups ~found:r.Slicer.groups in
        Exmetrics.to_row name m @ [ Printf.sprintf "%.3f" dt ])
      (suite_designs ())
  in
  {
    t_title = "Table 2: datapath extraction quality (vs generator ground truth)";
    t_header = Exmetrics.header @ [ "time(s)" ];
    t_rows = rows;
  }

(* ------------------------------------------------------------------ *)

type t3_entry = { e_design : string; e_base : Flow.result; e_sa : Flow.result }

let run_suite ?(config = Config.structure_aware) () =
  List.map
    (fun (name, d) ->
      let base, sa = Flow.run_both d config in
      { e_design = name; e_base = base; e_sa = sa })
    (suite_designs ())

let table3 entries =
  let rows =
    List.map
      (fun e ->
        [
          e.e_design;
          Printf.sprintf "%.0f" e.e_base.Flow.hpwl_final;
          Printf.sprintf "%.0f" e.e_sa.Flow.hpwl_final;
          Printf.sprintf "%.4f" (e.e_sa.Flow.hpwl_final /. e.e_base.Flow.hpwl_final);
          Printf.sprintf "%.0f" e.e_base.Flow.steiner_final;
          Printf.sprintf "%.0f" e.e_sa.Flow.steiner_final;
          Printf.sprintf "%.4f" (e.e_sa.Flow.steiner_final /. e.e_base.Flow.steiner_final);
          string_of_int (List.length e.e_sa.Flow.groups_used);
          Printf.sprintf "%.2f" e.e_sa.Flow.align_error_final;
        ])
      entries
  in
  let rows = rows @ [ Table.geomean_row ~label:"geomean" rows ] in
  {
    t_title =
      "Table 3: placement quality, baseline vs structure-aware (ratio < 1 means \
       structure-aware wins)";
    t_header =
      [
        "design"; "HPWL-base"; "HPWL-sa"; "HPWL-ratio"; "StWL-base"; "StWL-sa"; "StWL-ratio";
        "#groups"; "align-err";
      ];
    t_rows = rows;
  }

let stage_time (r : Flow.result) stage =
  match List.assoc_opt stage r.Flow.times with Some t -> t | None -> 0.0

let table4 entries =
  let rows =
    List.map
      (fun e ->
        [
          e.e_design;
          Printf.sprintf "%.2f" e.e_base.Flow.total_time;
          Printf.sprintf "%.2f" (stage_time e.e_sa "extract");
          Printf.sprintf "%.2f" (stage_time e.e_sa "init");
          Printf.sprintf "%.2f" (stage_time e.e_sa "gp");
          Printf.sprintf "%.2f" (stage_time e.e_sa "snap");
          Printf.sprintf "%.2f" (stage_time e.e_sa "legal");
          Printf.sprintf "%.2f" (stage_time e.e_sa "detail");
          Printf.sprintf "%.2f" e.e_sa.Flow.total_time;
          Printf.sprintf "%.3f" (e.e_sa.Flow.total_time /. e.e_base.Flow.total_time);
        ])
      entries
  in
  {
    t_title = "Table 4: runtime (seconds); structure-aware broken down by stage";
    t_header =
      [
        "design"; "base-total"; "sa-extract"; "sa-init"; "sa-gp"; "sa-snap"; "sa-legal";
        "sa-detail"; "sa-total"; "ratio";
      ];
    t_rows = rows;
  }

let table6 entries =
  let rows =
    List.map
      (fun e ->
        let cb = e.e_base.Flow.congestion and cs = e.e_sa.Flow.congestion in
        [
          e.e_design;
          Printf.sprintf "%.3f" cb.Dpp_congest.Rudy.max_ratio;
          Printf.sprintf "%.3f" cs.Dpp_congest.Rudy.max_ratio;
          Printf.sprintf "%.3f" cb.Dpp_congest.Rudy.p95_ratio;
          Printf.sprintf "%.3f" cs.Dpp_congest.Rudy.p95_ratio;
          Printf.sprintf "%.1f" e.e_base.Flow.critical_delay;
          Printf.sprintf "%.1f" e.e_sa.Flow.critical_delay;
          Printf.sprintf "%.4f" (e.e_sa.Flow.critical_delay /. e.e_base.Flow.critical_delay);
        ])
      entries
  in
  {
    t_title =
      "Table 6: routability (RUDY demand ratios) and timing (lite-STA critical delay), \
       baseline vs structure-aware";
    t_header =
      [
        "design"; "max-base"; "max-sa"; "p95-base"; "p95-sa"; "delay-base"; "delay-sa";
        "delay-ratio";
      ];
    t_rows = rows;
  }

(* ------------------------------------------------------------------ *)

let ablation_designs = [ "dp_add32"; "dp_mult8"; "dp_mix_l" ]

let table5 () =
  let rows =
    List.concat_map
      (fun name ->
        match Dpp_gen.Presets.by_name name with
        | None -> []
        | Some spec ->
          let d = Dpp_gen.Compose.build spec in
          let base = Flow.run d Config.baseline in
          let run cfg = Flow.run d { cfg with Config.mode = Config.Structure_aware } in
          let rigid = run Config.structure_aware in
          let soft = run (Config.with_structure Config.Soft_alignment Config.structure_aware) in
          let unfiltered =
            run { Config.structure_aware with Config.min_coupling = 0.0; max_slice_span = 1e9 }
          in
          let cell r = Printf.sprintf "%.4f" (r.Flow.hpwl_final /. base.Flow.hpwl_final) in
          [
            [
              name;
              Printf.sprintf "%.0f" base.Flow.hpwl_final;
              cell rigid;
              cell soft;
              cell unfiltered;
            ];
          ])
      ablation_designs
  in
  {
    t_title =
      "Table 5: ablation — HPWL ratio vs baseline for rigid macros (default), soft \
       alignment, and with the regularity filter disabled";
    t_header = [ "design"; "HPWL-base"; "rigid"; "soft"; "no-filter" ];
    t_rows = rows;
  }

(* ------------------------------------------------------------------ *)

let figure1 ?(design = "dp_add32") () =
  let spec =
    match Dpp_gen.Presets.by_name design with
    | Some s -> s
    | None -> invalid_arg ("figure1: unknown design " ^ design)
  in
  let d = Dpp_gen.Compose.build spec in
  let base, sa = Flow.run_both d Config.structure_aware in
  let max_rounds = max (List.length base.Flow.trace) (List.length sa.Flow.trace) in
  let lookup trace k =
    match List.nth_opt trace k with
    | Some (ri : Dpp_place.Gp.round_info) -> ri.Dpp_place.Gp.hpwl, ri.Dpp_place.Gp.overflow
    | None -> (
      (* design converged: repeat the last point *)
      match List.rev trace with
      | ri :: _ -> ri.Dpp_place.Gp.hpwl, ri.Dpp_place.Gp.overflow
      | [] -> 0.0, 0.0)
  in
  let points =
    List.init max_rounds (fun k ->
        let bh, bo = lookup base.Flow.trace k in
        let sh, so = lookup sa.Flow.trace k in
        float_of_int (k + 1), [ bh; bo; sh; so ])
  in
  Series.make
    ~title:(Printf.sprintf "Figure 1: GP convergence on %s" design)
    ~x_label:"round"
    ~y_labels:[ "hpwl-base"; "ovf-base"; "hpwl-sa"; "ovf-sa" ]
    points

let figure2 ?(cells = 2500) () =
  let fractions = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8 ] in
  let points =
    List.map
      (fun f ->
        let spec =
          Dpp_gen.Presets.scaled
            ~name:(Printf.sprintf "sweep%02.0f" (100.0 *. f))
            ~seed:(300 + int_of_float (100.0 *. f))
            ~cells ~dp_fraction:f
        in
        let d = Dpp_gen.Compose.build spec in
        let base, sa = Flow.run_both d Config.structure_aware in
        let st = Nstats.compute d in
        ( st.Nstats.s_datapath_fraction,
          [
            sa.Flow.hpwl_final /. base.Flow.hpwl_final;
            sa.Flow.steiner_final /. base.Flow.steiner_final;
          ] ))
      fractions
  in
  Series.make
    ~title:
      (Printf.sprintf
         "Figure 2: structure-aware / baseline wirelength ratio vs datapath fraction (~%d \
          cells)"
         cells)
    ~x_label:"dp-fraction"
    ~y_labels:[ "hpwl-ratio"; "steiner-ratio" ]
    points

let figure3 ?(design = "dp_add32") () =
  let spec =
    match Dpp_gen.Presets.by_name design with
    | Some s -> s
    | None -> invalid_arg ("figure3: unknown design " ^ design)
  in
  let d = Dpp_gen.Compose.build spec in
  let base = Flow.run d Config.baseline in
  let betas = [ 0.0; 0.25; 0.5; 1.0; 2.0; 4.0; 8.0 ] in
  let points =
    List.map
      (fun beta ->
        let cfg =
          Config.with_beta beta
            (Config.with_structure Config.Soft_alignment Config.structure_aware)
        in
        let sa = Flow.run d cfg in
        beta, [ sa.Flow.hpwl_final /. base.Flow.hpwl_final; sa.Flow.align_error_final ])
      betas
  in
  Series.make
    ~title:
      (Printf.sprintf
         "Figure 3: soft-alignment weight sweep on %s (HPWL ratio vs baseline; final \
          alignment error)"
         design)
    ~x_label:"beta"
    ~y_labels:[ "hpwl-ratio"; "align-error" ]
    points

let figure4 ?(sizes = [ 1000; 2000; 4000; 8000 ]) () =
  let points =
    List.map
      (fun cells ->
        let spec =
          Dpp_gen.Presets.scaled
            ~name:(Printf.sprintf "scale%d" cells)
            ~seed:(500 + cells) ~cells ~dp_fraction:0.5
        in
        let d = Dpp_gen.Compose.build spec in
        let base, sa = Flow.run_both d Config.structure_aware in
        ( float_of_int (Design.num_cells d),
          [
            base.Flow.total_time;
            sa.Flow.total_time;
            sa.Flow.hpwl_final /. base.Flow.hpwl_final;
          ] ))
      sizes
  in
  Series.make ~title:"Figure 4: runtime scaling (seconds) and quality vs design size"
    ~x_label:"#cells"
    ~y_labels:[ "time-base"; "time-sa"; "hpwl-ratio" ]
    points

let figure5 ?(design = "dp_add32") () =
  let spec =
    match Dpp_gen.Presets.by_name design with
    | Some s -> s
    | None -> invalid_arg ("figure5: unknown design " ^ design)
  in
  let clean = Dpp_gen.Compose.build spec in
  let fractions = [ 0.0; 0.02; 0.05; 0.1; 0.2; 0.4 ] in
  let points =
    List.map
      (fun f ->
        let rng = Dpp_util.Rng.create (900 + int_of_float (1000.0 *. f)) in
        let d = Dpp_gen.Noise.rewire ~rng ~fraction:f clean in
        let r = Slicer.run d Slicer.default_config in
        let m = Exmetrics.compare_to_truth ~truth:d.Design.groups ~found:r.Slicer.groups in
        f, [ m.Exmetrics.precision; m.Exmetrics.recall ])
      fractions
  in
  Series.make
    ~title:
      (Printf.sprintf "Figure 5: extraction robustness vs rewiring noise on %s" design)
    ~x_label:"noise-fraction"
    ~y_labels:[ "precision"; "recall" ]
    points
