(** The reproduction experiments: one function per table/figure of the
    (reconstructed) evaluation.  `bench/main.exe` is a thin driver over
    this module; examples and tests reuse the pieces.

    All experiments are deterministic.  Designs come from
    {!Dpp_gen.Presets}; the flows from {!Flow}. *)

type table = { t_title : string; t_header : string list; t_rows : string list list }

val print_table : table -> unit

val table1 : unit -> table
(** Benchmark statistics. *)

val table2 : unit -> table
(** Extraction quality: per design, found/true groups, precision, recall,
    F1, extraction time. *)

type t3_entry = {
  e_design : string;
  e_base : Flow.result;
  e_sa : Flow.result;
}

val run_suite : ?config:Config.t -> unit -> t3_entry list
(** Both flows on every suite design (the expensive shared computation
    behind tables 3 and 4). *)

val table3 : t3_entry list -> table
(** Main result: HPWL and Steiner WL, baseline vs structure-aware, ratios
    and geometric means. *)

val table4 : t3_entry list -> table
(** Runtime breakdown per stage. *)

val table5 : unit -> table
(** Ablation: baseline vs rigid-macro vs soft-alignment vs unfiltered
    (regularity filter off) on three representative designs. *)

val table6 : t3_entry list -> table
(** Routability and timing: RUDY congestion statistics and the lite-STA
    critical path delay, baseline vs structure-aware. *)

val figure1 : ?design:string -> unit -> Dpp_report.Series.t
(** GP convergence: HPWL and overflow per round, both flows. *)

val figure2 : ?cells:int -> unit -> Dpp_report.Series.t
(** Wirelength ratio (structure-aware / baseline) vs datapath fraction. *)

val figure3 : ?design:string -> unit -> Dpp_report.Series.t
(** Soft-alignment beta sweep: HPWL ratio and final alignment error. *)

val figure4 : ?sizes:int list -> unit -> Dpp_report.Series.t
(** Runtime vs design size for both flows. *)

val figure5 : ?design:string -> unit -> Dpp_report.Series.t
(** Extraction robustness: precision/recall (and the resulting placement
    ratio) vs injected rewiring noise. *)
