(** Rectilinear Steiner minimal tree heuristic used as the routed-wirelength
    proxy in the evaluation tables.

    - degree 2: exact (Manhattan distance);
    - degree 3: exact (median-point star, a classical identity: the RSMT of
      three terminals equals their half-perimeter);
    - degree 4..10: iterated 1-Steiner over the Hanan grid (Kahng–Robins),
      within ~1% of optimal at these degrees;
    - degree > 10: falls back to the RMST (high-degree nets are control
      nets whose exact Steiner length matters little, and this mirrors how
      FLUTE-based flows break high-degree nets). *)

val length : (float * float) array -> float

val net_length : Dpp_wirelen.Pins.t -> cx:float array -> cy:float array -> int -> float
(** Steiner length of one net at the given cell centers. *)

val total : Dpp_wirelen.Pins.t -> cx:float array -> cy:float array -> float
(** Net-weighted total over the design. *)

val total_of_design : Dpp_netlist.Design.t -> float
