(** Rectilinear minimum spanning tree (Prim, dense O(k^2)) over a net's pin
    points.  The RMST is a guaranteed 1.5-approximation upper bound of the
    rectilinear Steiner minimal tree, and nets in placement benchmarks are
    small, so the dense variant is the right tool. *)

val length : (float * float) array -> float
(** Total Manhattan edge length of an RMST over the points; 0 for fewer
    than two points. *)

val edges : (float * float) array -> (int * int) list
(** The tree edges as index pairs (parent, child); empty for < 2 points. *)
