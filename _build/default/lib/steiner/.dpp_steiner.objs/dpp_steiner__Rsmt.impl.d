lib/steiner/rsmt.ml: Array Dpp_netlist Dpp_wirelen Mst
