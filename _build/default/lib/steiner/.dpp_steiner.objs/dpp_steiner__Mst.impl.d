lib/steiner/mst.ml: Array List
