lib/steiner/mst.mli:
