lib/steiner/rsmt.mli: Dpp_netlist Dpp_wirelen
