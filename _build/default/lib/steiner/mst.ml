let manhattan (x1, y1) (x2, y2) = abs_float (x1 -. x2) +. abs_float (y1 -. y2)

(* Dense Prim keyed on nearest in-tree point. *)
let build points =
  let k = Array.length points in
  if k < 2 then []
  else begin
    let in_tree = Array.make k false in
    let dist = Array.make k infinity in
    let parent = Array.make k (-1) in
    in_tree.(0) <- true;
    for j = 1 to k - 1 do
      dist.(j) <- manhattan points.(0) points.(j);
      parent.(j) <- 0
    done;
    let edges = ref [] in
    for _ = 1 to k - 1 do
      let best = ref (-1) in
      for j = 0 to k - 1 do
        if (not in_tree.(j)) && (!best < 0 || dist.(j) < dist.(!best)) then best := j
      done;
      let b = !best in
      in_tree.(b) <- true;
      edges := (parent.(b), b) :: !edges;
      for j = 0 to k - 1 do
        if not in_tree.(j) then begin
          let d = manhattan points.(b) points.(j) in
          if d < dist.(j) then begin
            dist.(j) <- d;
            parent.(j) <- b
          end
        end
      done
    done;
    List.rev !edges
  end

let edges points = build points

let length points =
  List.fold_left
    (fun acc (a, b) -> acc +. manhattan points.(a) points.(b))
    0.0 (build points)
