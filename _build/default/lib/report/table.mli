(** ASCII table rendering for the benchmark harness — every table the
    paper reports is printed through this module so the output is uniform
    and machine-greppable. *)

val print :
  ?out:out_channel -> title:string -> header:string list -> string list list -> unit
(** Column widths auto-size; cells that parse as numbers right-align.
    Rows shorter than the header are padded with empty cells. *)

val render : title:string -> header:string list -> string list list -> string
(** The same output as a string (used by tests). *)

val geomean_row : label:string -> ?skip:int -> string list list -> string list
(** Geometric mean over the numeric columns of the given rows: the first
    [skip] columns (default 1, the design-name column) get [label] and
    empty padding; non-numeric or non-positive entries yield ["-"]. *)
