lib/report/series.ml: Array Dpp_util Float List Printf String Table
