lib/report/table.ml: Array Buffer Dpp_util List Option Printf String
