lib/report/series.mli:
