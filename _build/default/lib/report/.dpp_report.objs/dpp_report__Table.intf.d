lib/report/table.mli:
