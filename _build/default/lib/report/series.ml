type t = {
  fig_title : string;
  x_label : string;
  y_labels : string list;
  points : (float * float list) list;
}

let make ~title ~x_label ~y_labels points =
  let arity = List.length y_labels in
  List.iter
    (fun (_, ys) ->
      if List.length ys <> arity then invalid_arg "Series.make: point arity mismatch")
    points;
  { fig_title = title; x_label; y_labels; points }

let print ?(out = stdout) t =
  let header = t.x_label :: t.y_labels in
  let rows =
    List.map
      (fun (x, ys) -> Printf.sprintf "%.6g" x :: List.map (Printf.sprintf "%.6g") ys)
      t.points
  in
  Table.print ~out ~title:t.fig_title ~header rows

let to_csv t ~path =
  let header = t.x_label :: t.y_labels in
  let rows =
    List.map
      (fun (x, ys) ->
        Dpp_util.Csvout.float_cell x :: List.map Dpp_util.Csvout.float_cell ys)
      t.points
  in
  Dpp_util.Csvout.write path (header :: rows)

let blocks = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline values =
  match values with
  | [] -> ""
  | _ ->
    let arr = Array.of_list values in
    let lo = Array.fold_left min infinity arr in
    let hi = Array.fold_left max neg_infinity arr in
    let range = hi -. lo in
    String.concat ""
      (List.map
         (fun v ->
           let idx =
             if range <= 0.0 then 4
             else int_of_float (Float.round ((v -. lo) /. range *. 8.0))
           in
           blocks.(max 0 (min 8 idx)))
         values)
