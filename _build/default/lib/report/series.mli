(** Figure data rendering: each figure in the evaluation is a set of named
    series over a common x axis, printed as aligned columns (directly
    plottable) plus an optional CSV dump for offline tooling. *)

type t = {
  fig_title : string;
  x_label : string;
  y_labels : string list;
  points : (float * float list) list;  (** x, one y per series *)
}

val make : title:string -> x_label:string -> y_labels:string list -> (float * float list) list -> t
(** @raise Invalid_argument if a point's arity disagrees with [y_labels]. *)

val print : ?out:out_channel -> t -> unit

val to_csv : t -> path:string -> unit

val sparkline : float list -> string
(** Unicode block-character mini-plot of one series (for quick log
    inspection); empty list yields the empty string. *)
