let is_numeric s = s <> "" && Option.is_some (float_of_string_opt s)

let pad width right s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    if right then fill ^ s else s ^ fill
  end

let render ~title ~header rows =
  let ncols = List.length header in
  let rows =
    List.map
      (fun r ->
        let n = List.length r in
        if n >= ncols then r else r @ List.init (ncols - n) (fun _ -> ""))
      rows
  in
  let all = header :: rows in
  let widths =
    List.init ncols (fun c ->
        List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let sep =
    String.concat "-+-" (List.map (fun w -> String.make w '-') widths)
  in
  let render_row row ~numeric_align =
    let cells =
      List.mapi
        (fun c cell ->
          let right = numeric_align && is_numeric cell in
          pad (List.nth widths c) right cell)
        row
    in
    Buffer.add_string buf (String.concat " | " cells);
    Buffer.add_char buf '\n'
  in
  render_row header ~numeric_align:false;
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter (fun r -> render_row r ~numeric_align:true) rows;
  Buffer.contents buf

let print ?(out = stdout) ~title ~header rows =
  output_string out (render ~title ~header rows);
  flush out

let geomean_row ~label ?(skip = 1) rows =
  match rows with
  | [] -> [ label ]
  | first :: _ ->
    let ncols = List.length first in
    List.init ncols (fun c ->
        if c = 0 then label
        else if c < skip then ""
        else begin
          let values =
            List.filter_map
              (fun row ->
                match float_of_string_opt (List.nth row c) with
                | Some v when v > 0.0 -> Some v
                | Some _ | None -> None)
              rows
          in
          if List.length values <> List.length rows then "-"
          else Printf.sprintf "%.4g" (Dpp_util.Statx.geomean (Array.of_list values))
        end)
