lib/viz/svg.mli:
