lib/viz/plot.mli: Dpp_congest Dpp_netlist
