lib/viz/svg.ml: Array Buffer Fun Printf String
