lib/viz/plot.ml: Array Dpp_congest Dpp_geom Dpp_netlist Hashtbl List Option Svg
