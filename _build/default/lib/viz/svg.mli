(** Minimal SVG writer — just enough shapes for placement plots, with no
    dependency beyond the standard library.  Coordinates are in user units;
    the viewBox maps them onto the canvas with y flipped so larger y is
    {e up}, matching placement convention. *)

type t

val create : width:float -> height:float -> ?margin:float -> unit -> t
(** A canvas whose viewBox covers [0..width] x [0..height] user units. *)

val rect :
  t ->
  x:float ->
  y:float ->
  w:float ->
  h:float ->
  ?fill:string ->
  ?stroke:string ->
  ?stroke_width:float ->
  ?opacity:float ->
  unit ->
  unit

val line : t -> x1:float -> y1:float -> x2:float -> y2:float -> ?stroke:string -> ?stroke_width:float -> unit -> unit

val text : t -> x:float -> y:float -> ?size:float -> ?fill:string -> string -> unit

val to_string : t -> string

val write : t -> path:string -> unit

val color_of_index : int -> string
(** A stable 12-color categorical palette, cycling. *)

val heat_color : float -> string
(** Blue->green->yellow->red ramp for a value in [0, 1] (clamped). *)
