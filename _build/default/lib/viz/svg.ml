type t = {
  width : float;
  height : float;
  margin : float;
  buf : Buffer.t;
}

let create ~width ~height ?(margin = 10.0) () =
  { width; height; margin; buf = Buffer.create 4096 }

(* user y grows up; SVG y grows down *)
let fy t y = t.height -. y

let esc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '&' -> Buffer.add_string b "&amp;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rect t ~x ~y ~w ~h ?(fill = "none") ?(stroke = "none") ?(stroke_width = 0.5) ?(opacity = 1.0)
    () =
  Buffer.add_string t.buf
    (Printf.sprintf
       "<rect x=\"%.3f\" y=\"%.3f\" width=\"%.3f\" height=\"%.3f\" fill=\"%s\" stroke=\"%s\" \
        stroke-width=\"%.3f\" fill-opacity=\"%.3f\"/>\n"
       x (fy t (y +. h)) w h fill stroke stroke_width opacity)

let line t ~x1 ~y1 ~x2 ~y2 ?(stroke = "black") ?(stroke_width = 0.5) () =
  Buffer.add_string t.buf
    (Printf.sprintf
       "<line x1=\"%.3f\" y1=\"%.3f\" x2=\"%.3f\" y2=\"%.3f\" stroke=\"%s\" stroke-width=\"%.3f\"/>\n"
       x1 (fy t y1) x2 (fy t y2) stroke stroke_width)

let text t ~x ~y ?(size = 8.0) ?(fill = "black") s =
  Buffer.add_string t.buf
    (Printf.sprintf "<text x=\"%.3f\" y=\"%.3f\" font-size=\"%.1f\" fill=\"%s\">%s</text>\n" x
       (fy t y) size fill (esc s))

let to_string t =
  Printf.sprintf
    "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
     <svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"%.3f %.3f %.3f %.3f\" width=\"%.0f\" \
     height=\"%.0f\">\n\
     %s</svg>\n"
    (-.t.margin) (-.t.margin)
    (t.width +. (2.0 *. t.margin))
    (t.height +. (2.0 *. t.margin))
    (t.width +. (2.0 *. t.margin))
    (t.height +. (2.0 *. t.margin))
    (Buffer.contents t.buf)

let write t ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let palette =
  [|
    "#4c72b0"; "#dd8452"; "#55a868"; "#c44e52"; "#8172b3"; "#937860"; "#da8bc3"; "#8c8c8c";
    "#ccb974"; "#64b5cd"; "#e377c2"; "#17becf";
  |]

let color_of_index i = palette.(((i mod Array.length palette) + Array.length palette) mod Array.length palette)

let heat_color v =
  let v = max 0.0 (min 1.0 v) in
  (* piecewise blue -> green -> yellow -> red *)
  let r, g, b =
    if v < 0.33 then begin
      let u = v /. 0.33 in
      0.0, u, 1.0 -. u
    end
    else if v < 0.66 then begin
      let u = (v -. 0.33) /. 0.33 in
      u, 1.0, 0.0
    end
    else begin
      let u = (v -. 0.66) /. 0.34 in
      1.0, 1.0 -. u, 0.0
    end
  in
  Printf.sprintf "#%02x%02x%02x"
    (int_of_float (255.0 *. r))
    (int_of_float (255.0 *. g))
    (int_of_float (255.0 *. b))
