module Rect = Dpp_geom.Rect
module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Groups = Dpp_netlist.Groups

(* draw one design into [svg] translated by (ox, oy) in user units *)
let draw_design svg ~scale ~ox ~oy ?congestion ~groups ?title (d : Design.t) =
  let die = d.Design.die in
  let sx x = ox +. (scale *. (x -. die.Rect.xl)) in
  let sy y = oy +. (scale *. (y -. die.Rect.yl)) in
  let w = scale *. Rect.width die and h = scale *. Rect.height die in
  (* congestion underlay *)
  (match congestion with
  | Some (r : Dpp_congest.Rudy.t) ->
    for iy = 0 to r.Dpp_congest.Rudy.ny - 1 do
      for ix = 0 to r.Dpp_congest.Rudy.nx - 1 do
        let ratio = Dpp_congest.Rudy.ratio_at r ~ix ~iy in
        if ratio > 0.5 then
          Svg.rect svg
            ~x:(sx (die.Rect.xl +. (float_of_int ix *. r.Dpp_congest.Rudy.bin_w)))
            ~y:(sy (die.Rect.yl +. (float_of_int iy *. r.Dpp_congest.Rudy.bin_h)))
            ~w:(scale *. r.Dpp_congest.Rudy.bin_w)
            ~h:(scale *. r.Dpp_congest.Rudy.bin_h)
            ~fill:(Svg.heat_color (ratio /. 2.0))
            ~opacity:0.35 ()
      done
    done
  | None -> ());
  (* die + rows *)
  Svg.rect svg ~x:(sx die.Rect.xl) ~y:(sy die.Rect.yl) ~w ~h ~stroke:"black" ~stroke_width:1.0 ();
  for r = 1 to d.Design.num_rows - 1 do
    let y = sy (Design.row_y d r) in
    Svg.line svg ~x1:(sx die.Rect.xl) ~y1:y ~x2:(sx die.Rect.xh) ~y2:y ~stroke:"#eeeeee"
      ~stroke_width:0.3 ()
  done;
  (* group membership colors *)
  let owner = Hashtbl.create 256 in
  List.iteri
    (fun gi g -> Array.iter (fun c -> Hashtbl.replace owner c gi) (Groups.cell_ids g))
    groups;
  Array.iter
    (fun (c : Types.cell) ->
      let i = c.Types.c_id in
      let r = Design.cell_rect d i in
      let fill, opacity =
        match c.Types.c_kind with
        | Types.Fixed -> "#333333", 0.9
        | Types.Pad -> "#000000", 0.9
        | Types.Movable -> (
          match Hashtbl.find_opt owner i with
          | Some gi -> Svg.color_of_index gi, 0.9
          | None -> "#bbbbbb", 0.7)
      in
      Svg.rect svg ~x:(sx r.Rect.xl) ~y:(sy r.Rect.yl) ~w:(scale *. Rect.width r)
        ~h:(scale *. Rect.height r) ~fill ~stroke:"white"
        ~stroke_width:(0.1 *. scale) ~opacity ())
    d.Design.cells;
  match title with
  | Some title -> Svg.text svg ~x:ox ~y:(oy +. h +. (4.0 *. scale)) ~size:(5.0 *. scale) title
  | None -> ()

let placement ?(scale = 2.0) ?groups ?congestion ?title (d : Design.t) ~path =
  let groups = Option.value groups ~default:d.Design.groups in
  let die = d.Design.die in
  let w = scale *. Rect.width die and h = scale *. Rect.height die in
  let svg = Svg.create ~width:w ~height:(h +. (12.0 *. scale)) () in
  draw_design svg ~scale ~ox:0.0 ~oy:0.0 ?congestion ~groups ?title d;
  Svg.write svg ~path

let compare_placements ?(scale = 2.0) ~left ~right ?(left_title = "left")
    ?(right_title = "right") ~path () =
  let wl = scale *. Rect.width left.Design.die in
  let wr = scale *. Rect.width right.Design.die in
  let h =
    max (scale *. Rect.height left.Design.die) (scale *. Rect.height right.Design.die)
  in
  let gap = 20.0 *. scale in
  let svg = Svg.create ~width:(wl +. gap +. wr) ~height:(h +. (12.0 *. scale)) () in
  draw_design svg ~scale ~ox:0.0 ~oy:0.0 ~groups:left.Design.groups ~title:left_title left;
  draw_design svg ~scale ~ox:(wl +. gap) ~oy:0.0 ~groups:right.Design.groups
    ~title:right_title right;
  Svg.write svg ~path
