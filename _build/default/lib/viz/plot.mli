(** Placement plots: the die, rows, cells (datapath groups colored, glue
    gray, fixed cells dark), and optionally a RUDY congestion heat
    underlay.  One call produces a self-contained SVG file — the quickest
    way to see what the flows actually did to a design. *)

val placement :
  ?scale:float ->
  ?groups:Dpp_netlist.Groups.t list ->
  ?congestion:Dpp_congest.Rudy.t ->
  ?title:string ->
  Dpp_netlist.Design.t ->
  path:string ->
  unit
(** Renders the design at its current positions.  [groups] defaults to the
    design's own annotations; [scale] is SVG units per database unit
    (default 2.0).  With [congestion], bins with demand ratio > 0.5 are
    shaded under the cells. *)

val compare_placements :
  ?scale:float ->
  left:Dpp_netlist.Design.t ->
  right:Dpp_netlist.Design.t ->
  ?left_title:string ->
  ?right_title:string ->
  path:string ->
  unit ->
  unit
(** Two placements of the same die side by side (baseline vs
    structure-aware, before vs after, ...). *)
