lib/congest/rudy.ml: Array Dpp_geom Dpp_netlist Dpp_util Dpp_wirelen Float List Option
