lib/congest/rudy.mli: Dpp_netlist
