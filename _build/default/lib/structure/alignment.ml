let group_value_grad (dg : Dgroup.t) ~cx ~cy ~gx ~gy ~want_grad =
  let n = Array.length dg.Dgroup.cells in
  let mx, my = Dgroup.origin_of_positions dg ~cx ~cy in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let c = dg.Dgroup.cells.(i) in
    let ex = cx.(c) -. dg.Dgroup.off_x.(i) -. mx in
    let ey = cy.(c) -. dg.Dgroup.off_y.(i) -. my in
    acc := !acc +. (ex *. ex) +. (ey *. ey);
    if want_grad then begin
      gx.(c) <- gx.(c) +. (2.0 *. ex);
      gy.(c) <- gy.(c) +. (2.0 *. ey)
    end
  done;
  !acc

let value dgs ~cx ~cy =
  List.fold_left
    (fun acc dg -> acc +. group_value_grad dg ~cx ~cy ~gx:[||] ~gy:[||] ~want_grad:false)
    0.0 dgs

let value_grad dgs ~cx ~cy ~gx ~gy =
  List.fold_left
    (fun acc dg -> acc +. group_value_grad dg ~cx ~cy ~gx ~gy ~want_grad:true)
    0.0 dgs

let total_error dgs ~cx ~cy =
  let cells = List.fold_left (fun acc dg -> acc + Array.length dg.Dgroup.cells) 0 dgs in
  if cells = 0 then 0.0
  else
    List.fold_left
      (fun acc dg ->
        acc
        +. (Dgroup.alignment_error dg ~cx ~cy *. float_of_int (Array.length dg.Dgroup.cells)))
      0.0 dgs
    /. float_of_int cells
